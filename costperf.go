package costperf

import (
	"costperf/internal/bwtree"
	"costperf/internal/core"
	"costperf/internal/llama"
	"costperf/internal/llama/logstore"
	"costperf/internal/lsm"
	"costperf/internal/masstree"
	"costperf/internal/sim"
	"costperf/internal/ssd"
	"costperf/internal/tc"
	"costperf/internal/workload"
)

// Cost model (paper Equations 1–8). These aliases re-export the model so
// downstream users work with the public package only.
type (
	// Costs holds the Section 4.1 infrastructure parameters.
	Costs = core.Costs
	// MainMemoryComparison parameterizes the Section 5 Bw-tree vs
	// MassTree analysis.
	MainMemoryComparison = core.MainMemoryComparison
	// CSSParams extends the model with compressed storage (Section 7.2).
	CSSParams = core.CSSParams
	// Figure is a regenerated paper figure (named series over an x axis).
	Figure = core.Figure
	// Series is one named data series of a Figure.
	Series = core.Series
	// Point is one sample of a Series.
	Point = core.Point
)

// PaperCosts returns the paper's Section 4.1 cost parameters.
func PaperCosts() Costs { return core.PaperCosts() }

// PaperComparison returns the paper's Section 5 point-experiment
// parameters (Mx ≈ 2.1, Px ≈ 2.6).
func PaperComparison() MainMemoryComparison { return core.PaperComparison() }

// DefaultCSS returns illustrative Figure 8 compression parameters.
func DefaultCSS() CSSParams { return core.DefaultCSS() }

// MixedThroughput is Equation 2; DeriveR is Equation 3.
func MixedThroughput(p0, f, r float64) float64 { return core.MixedThroughput(p0, f, r) }

// DeriveR recovers R from a measured (P0, PF) pair at miss fraction f
// (Equation 3).
func DeriveR(p0, pf, f float64) (float64, error) { return core.DeriveR(p0, pf, f) }

// Figure generators (paper Figures 1, 2, 3, 7, 8).
var (
	Figure1 = core.Figure1
	Figure2 = core.Figure2
	Figure3 = core.Figure3
	Figure7 = core.Figure7
	Figure8 = core.Figure8
	// Crossover locates where two sampled series intersect.
	Crossover = core.Crossover
)

// Simulation and device substrate.
type (
	// Session provides deterministic execution-cost accounting.
	Session = sim.Session
	// Tracker accumulates per-class operation costs (R, F, P0/PF).
	Tracker = sim.Tracker
	// CostProfile holds per-primitive execution charges.
	CostProfile = sim.CostProfile
	// Device is a simulated secondary-storage device.
	Device = ssd.Device
	// DeviceConfig describes a simulated device.
	DeviceConfig = ssd.Config
)

// NewSession creates a cost-accounting session.
func NewSession(p CostProfile) *Session { return sim.NewSession(p) }

// DefaultCostProfile returns the calibrated execution-cost profile.
func DefaultCostProfile() CostProfile { return sim.DefaultCosts() }

// NewDevice creates a simulated device.
func NewDevice(cfg DeviceConfig) *Device { return ssd.New(cfg) }

// Device presets (paper Sections 4.1, 7.1.2, 8.2, 8.3).
var (
	SamsungSSD    = ssd.SamsungSSD
	NextGenSSD    = ssd.NextGenSSD
	EnterpriseHDD = ssd.EnterpriseHDD
	CommodityHDD  = ssd.CommodityHDD
	NVRAM         = ssd.NVRAM
)

// Engine aliases.
type (
	// BwTree is the latch-free Bw-tree (Deuteronomy data component).
	BwTree = bwtree.Tree
	// MassTree is the main-memory comparator store.
	MassTree = masstree.Tree
	// LSMTree is the RocksDB-style log-structured merge tree.
	LSMTree = lsm.Tree
	// LogStore is LLAMA's log-structured storage layer.
	LogStore = logstore.Store
	// CacheManager applies eviction policy (LRU / five-minute rule).
	CacheManager = llama.Manager
	// TransactionComponent is the Deuteronomy TC.
	TransactionComponent = tc.TC
	// Tx is a transaction handle (snapshot isolation).
	Tx = tc.Tx
)

// Eviction policies for CacheManager.
const (
	PolicyNone      = llama.PolicyNone
	PolicyLRU       = llama.PolicyLRU
	PolicyBreakeven = llama.PolicyBreakeven
)

// NewMassTree creates a MassTree; session may be nil.
func NewMassTree(session *Session) *MassTree { return masstree.New(session) }

// DeuteronomyOptions configures NewDeuteronomy. The zero value gives a
// paper-like setup: a Samsung-class simulated SSD, 1 MiB write buffers,
// 4 MiB GC segments, 4 KiB max pages, and the breakeven eviction policy
// at the paper's T_i.
type DeuteronomyOptions struct {
	// Device overrides the simulated device (default SamsungSSD).
	Device *Device
	// Session enables cost accounting (default: a fresh session).
	Session *Session
	// MaxPageBytes is the Bw-tree split threshold (default 4096).
	MaxPageBytes int
	// ConsolidateAfter is the delta-chain consolidation threshold
	// (default 8).
	ConsolidateAfter int
	// WriteBufferBytes sizes the log store's flush buffer (default 1 MiB).
	WriteBufferBytes int
	// SegmentBytes is the log store's GC granularity (default 4 MiB).
	SegmentBytes int64
	// Policy selects the eviction policy (default PolicyBreakeven).
	Policy llama.Policy
	// BreakevenSeconds is T_i for PolicyBreakeven (default: the paper's
	// ≈45 s from PaperCosts).
	BreakevenSeconds float64
	// MemoryBudgetBytes caps the cache footprint (0 = unlimited).
	MemoryBudgetBytes int64
	// RetainDeltas keeps delta chains as a record cache on eviction
	// (Section 6.3). Default true.
	RetainDeltas *bool
}

// Deuteronomy bundles the full data-caching stack: Bw-tree over LLAMA
// (cache manager + log-structured store) on a simulated SSD.
type Deuteronomy struct {
	Tree    *BwTree
	Log     *LogStore
	Device  *Device
	Cache   *CacheManager
	Session *Session
}

// NewDeuteronomy assembles the data-caching stack.
func NewDeuteronomy(opts DeuteronomyOptions) (*Deuteronomy, error) {
	if opts.Device == nil {
		opts.Device = ssd.New(ssd.SamsungSSD)
	}
	if opts.Session == nil {
		opts.Session = sim.NewSession(sim.DefaultCosts())
	}
	if opts.WriteBufferBytes == 0 {
		opts.WriteBufferBytes = 1 << 20
	}
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = 4 << 20
	}
	// PolicyNone is the zero value, so it doubles as "default": the stack
	// always gets the breakeven policy (a caller that wants no eviction
	// simply never calls Sweep).
	if opts.Policy == llama.PolicyNone {
		opts.Policy = llama.PolicyBreakeven
	}
	if opts.BreakevenSeconds == 0 {
		opts.BreakevenSeconds = core.PaperCosts().BreakevenInterval()
	}
	retain := true
	if opts.RetainDeltas != nil {
		retain = *opts.RetainDeltas
	}
	st, err := logstore.Open(logstore.Config{
		Device:       opts.Device,
		BufferBytes:  opts.WriteBufferBytes,
		SegmentBytes: opts.SegmentBytes,
	})
	if err != nil {
		return nil, err
	}
	tree, err := bwtree.New(bwtree.Config{
		Store:            st,
		Session:          opts.Session,
		MaxPageBytes:     opts.MaxPageBytes,
		ConsolidateAfter: opts.ConsolidateAfter,
	})
	if err != nil {
		return nil, err
	}
	mgrCfg := llama.Config{
		Owner:            tree,
		Clock:            opts.Session.Clock(),
		Policy:           opts.Policy,
		BreakevenSeconds: opts.BreakevenSeconds,
		BudgetBytes:      opts.MemoryBudgetBytes,
		RetainDeltas:     retain,
	}
	if opts.MemoryBudgetBytes > 0 {
		mgrCfg.FootprintFn = tree.FootprintBytes
	}
	mgr, err := llama.NewManager(mgrCfg)
	if err != nil {
		return nil, err
	}
	return &Deuteronomy{Tree: tree, Log: st, Device: opts.Device, Cache: mgr, Session: opts.Session}, nil
}

// Put upserts a key (a latch-free delta update).
func (d *Deuteronomy) Put(key, val []byte) error { return d.Tree.Insert(key, val) }

// Get looks up a key.
func (d *Deuteronomy) Get(key []byte) ([]byte, bool, error) { return d.Tree.Get(key) }

// Delete removes a key.
func (d *Deuteronomy) Delete(key []byte) error { return d.Tree.Delete(key) }

// BlindPut upserts without requiring the target page in memory
// (Section 6.2).
func (d *Deuteronomy) BlindPut(key, val []byte) error { return d.Tree.BlindWrite(key, val) }

// Scan visits keys in order from start.
func (d *Deuteronomy) Scan(start []byte, limit int, fn func(k, v []byte) bool) error {
	return d.Tree.Scan(start, limit, fn)
}

// Sweep runs one eviction pass under the configured policy.
func (d *Deuteronomy) Sweep() (int, error) { return d.Cache.Sweep() }

// Checkpoint makes the tree durable; OpenDeuteronomy can rebuild from the
// device afterwards.
func (d *Deuteronomy) Checkpoint() error { return d.Tree.FlushAll() }

// CollectGarbage runs one log-store GC pass.
func (d *Deuteronomy) CollectGarbage() (int64, error) {
	return d.Log.CollectSegment(d.Tree.RelocateForGC, nil)
}

// OpenDeuteronomy recovers a checkpointed stack from an existing device.
func OpenDeuteronomy(device *Device, opts DeuteronomyOptions) (*Deuteronomy, error) {
	opts.Device = device
	if opts.Session == nil {
		opts.Session = sim.NewSession(sim.DefaultCosts())
	}
	if opts.WriteBufferBytes == 0 {
		opts.WriteBufferBytes = 1 << 20
	}
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = 4 << 20
	}
	st, err := logstore.Open(logstore.Config{
		Device:       device,
		BufferBytes:  opts.WriteBufferBytes,
		SegmentBytes: opts.SegmentBytes,
	})
	if err != nil {
		return nil, err
	}
	tree, err := bwtree.Open(bwtree.Config{
		Store:            st,
		Session:          opts.Session,
		MaxPageBytes:     opts.MaxPageBytes,
		ConsolidateAfter: opts.ConsolidateAfter,
	})
	if err != nil {
		return nil, err
	}
	if opts.BreakevenSeconds == 0 {
		opts.BreakevenSeconds = core.PaperCosts().BreakevenInterval()
	}
	if opts.Policy == llama.PolicyNone {
		opts.Policy = llama.PolicyBreakeven
	}
	mgr, err := llama.NewManager(llama.Config{
		Owner:            tree,
		Clock:            opts.Session.Clock(),
		Policy:           opts.Policy,
		BreakevenSeconds: opts.BreakevenSeconds,
		RetainDeltas:     true,
	})
	if err != nil {
		return nil, err
	}
	return &Deuteronomy{Tree: tree, Log: st, Device: device, Cache: mgr, Session: opts.Session}, nil
}

// NewLSM creates an LSM tree on a fresh Samsung-class device (or the one
// provided). session may be nil.
func NewLSM(device *Device, session *Session) (*LSMTree, error) {
	if device == nil {
		device = ssd.New(ssd.SamsungSSD)
	}
	return lsm.New(lsm.Config{Device: device, Session: session})
}

// NewTransactional stacks a Deuteronomy-style transaction component on a
// data component (use a Deuteronomy's Tree, or any DataComponent).
func NewTransactional(dc tc.DataComponent, logDevice *Device, session *Session) (*TransactionComponent, error) {
	if logDevice == nil {
		logDevice = ssd.New(ssd.SamsungSSD)
	}
	return tc.New(tc.Config{DC: dc, LogDevice: logDevice, Session: session})
}

// Workload generation.
type (
	// WorkloadMix is an operation mix (read/update/insert/blind/scan).
	WorkloadMix = workload.Mix
	// Generator produces operation streams.
	Generator = workload.Generator
	// GeneratorConfig configures a Generator.
	GeneratorConfig = workload.GeneratorConfig
	// Op is one generated operation.
	Op = workload.Op
)

// Standard mixes.
var (
	ReadOnly        = workload.ReadOnly
	ReadMostly      = workload.ReadMostly
	UpdateHeavy     = workload.UpdateHeavy
	BlindWriteHeavy = workload.BlindWriteHeavy
	ScanMix         = workload.ScanMix
)

// NewGenerator builds an operation generator.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) { return workload.NewGenerator(cfg) }

// Key chooser constructors.
var (
	NewUniformChooser    = workload.NewUniform
	NewZipfianChooser    = workload.NewZipfian
	NewHotColdChooser    = workload.NewHotCold
	NewSequentialChooser = workload.NewSequential
)

// Key renders record id i as an order-preserving 8-byte key.
func Key(i uint64) []byte { return workload.Key(i) }

// ValueFor deterministically generates a payload for key id i.
func ValueFor(i uint64, size int) []byte { return workload.ValueFor(i, size) }

// Extension model pieces (paper Sections 7.2 and 8.2, discussion items).
type (
	// NVRAMParams extends the model with a non-volatile memory tier.
	NVRAMParams = core.NVRAMParams
	// CMMParams models compressed main memory.
	CMMParams = core.CMMParams
)

// DefaultNVRAM returns illustrative Section 8.2 NVRAM parameters.
func DefaultNVRAM() NVRAMParams { return core.DefaultNVRAM() }

// DefaultCMM returns illustrative compressed-main-memory parameters.
func DefaultCMM() CMMParams { return core.DefaultCMM() }

// FigureNVRAM generates the three-tier residence cost chart.
var FigureNVRAM = core.FigureNVRAM

// LatencyModel estimates operation latencies (Section 8.1's microsecond
// discussion): MM operations complete in CPU time, SS operations add a
// device access.
type LatencyModel = core.LatencyModel

// PaperLatency returns the latency model with paper parameters.
func PaperLatency() LatencyModel { return core.PaperLatency() }
