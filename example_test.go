package costperf_test

import (
	"fmt"

	"costperf"
)

// The five-minute rule: compute the breakeven interval for the paper's
// Section 4.1 hardware parameters.
func ExampleCosts_breakevenInterval() {
	c := costperf.PaperCosts()
	fmt.Printf("T_i = %.1f s\n", c.BreakevenInterval())
	fmt.Printf("storage ratio = %.1fx\n", c.StorageCostRatio())
	// Output:
	// T_i = 45.2 s
	// storage ratio = 11.0x
}

// Equation 2: throughput of a mixed MM/SS workload.
func ExampleMixedThroughput() {
	p0 := 4e6 // all-in-memory ops/sec
	pf := costperf.MixedThroughput(p0, 0.10, 5.8)
	fmt.Printf("at 10%% misses: %.2fM ops/s\n", pf/1e6)
	// And Equation 3 inverts it.
	r, _ := costperf.DeriveR(p0, pf, 0.10)
	fmt.Printf("derived R = %.1f\n", r)
	// Output:
	// at 10% misses: 2.70M ops/s
	// derived R = 5.8
}

// The Section 5 comparison: when does a main-memory store become cheaper?
func ExampleMainMemoryComparison() {
	cmp := costperf.PaperComparison()
	fmt.Printf("6.1 GB: %.2g ops/s\n", cmp.BreakevenRate(6.1e9))
	fmt.Printf("100 GB: %.2g ops/s\n", cmp.BreakevenRate(100e9))
	// Output:
	// 6.1 GB: 7.3e+05 ops/s
	// 100 GB: 1.2e+07 ops/s
}

// Basic use of the data caching stack.
func ExampleNewDeuteronomy() {
	d, err := costperf.NewDeuteronomy(costperf.DeuteronomyOptions{})
	if err != nil {
		panic(err)
	}
	if err := d.Put([]byte("hello"), []byte("world")); err != nil {
		panic(err)
	}
	v, ok, err := d.Get([]byte("hello"))
	if err != nil || !ok {
		panic("lost the key")
	}
	fmt.Println(string(v))
	// Output:
	// world
}

// Transactions with snapshot isolation over the full stack.
func ExampleNewTransactional() {
	d, err := costperf.NewDeuteronomy(costperf.DeuteronomyOptions{})
	if err != nil {
		panic(err)
	}
	txc, err := costperf.NewTransactional(d.Tree, nil, d.Session)
	if err != nil {
		panic(err)
	}
	tx, _ := txc.Begin()
	tx.Write([]byte("account"), []byte("100"))
	if err := tx.Commit(); err != nil {
		panic(err)
	}
	r, _ := txc.Begin()
	v, _, _ := r.Read([]byte("account"))
	fmt.Println(string(v))
	// Output:
	// 100
}
