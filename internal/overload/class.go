package overload

import "context"

// Class is an operation's priority class: the currency of the brownout
// ladder. Classes are ordered — under pressure the limiter sheds the
// lowest class first and walks upward, so a value's position in this
// enum IS its shedding priority. ClassProbe sits above everything and is
// never shed: the circuit breaker's half-open probes are how a degraded
// store proves it recovered, and an admission queue that can starve them
// leaves the breaker stuck open forever.
type Class uint8

const (
	// ClassScan: range scans and other batch reads — the first rung shed
	// in a brownout (a missing scan is an inconvenience; a missing write
	// is an outage).
	ClassScan Class = iota
	// ClassLow: best-effort point ops (background tenants, bulk loads).
	ClassLow
	// ClassNormal: the default for interactive point ops.
	ClassNormal
	// ClassHigh: latency-sensitive tenants; shed only when the queue is
	// saturated outright.
	ClassHigh
	// ClassProbe: health and breaker probes. Never queued, never shed.
	// The wire layer refuses to accept this class from remote clients —
	// probes originate inside the process that owns the breaker.
	ClassProbe

	numClasses = int(ClassProbe) + 1
)

// String names the class for logs and snapshots.
func (c Class) String() string {
	switch c {
	case ClassScan:
		return "scan"
	case ClassLow:
		return "low"
	case ClassNormal:
		return "normal"
	case ClassHigh:
		return "high"
	case ClassProbe:
		return "probe"
	}
	return "class?"
}

// ParseClass maps a declared class name (e.g. workload.Tenant.Class)
// onto its Class; ok is false for unknown names and the empty string.
// ClassProbe is deliberately not parseable: probes cannot be declared
// by configuration, only originated by the breaker.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "scan":
		return ClassScan, true
	case "low":
		return ClassLow, true
	case "normal":
		return ClassNormal, true
	case "high":
		return ClassHigh, true
	}
	return ClassNormal, false
}

type classKey struct{}

// WithClass tags ctx with a priority class; everything downstream that
// admits work (the engine, and through it every shard's limiter) sheds
// by it.
func WithClass(ctx context.Context, c Class) context.Context {
	return context.WithValue(ctx, classKey{}, c)
}

// ClassFrom returns the class ctx carries, or def when it carries none.
func ClassFrom(ctx context.Context, def Class) Class {
	if ctx == nil {
		return def
	}
	if c, ok := ctx.Value(classKey{}).(Class); ok {
		return c
	}
	return def
}
