// Package overload is adaptive overload control: a gradient concurrency
// limiter with priority-aware shedding, replacing the engine's static
// admission semaphore.
//
// The controller is the gradient/AIMD family (TCP Vegas by way of
// Netflix's concurrency-limits): it keeps a latency floor — the store's
// no-queue service time — and compares each window's mean latency
// against it. Latency at the floor means spare capacity: the limit
// climbs by a sqrt additive probe. Latency past Tolerance times the
// floor means queueing inside the store: the limit multiplies down by
// the observed gradient. Because the signal is the *store's own*
// latency, the limit converges near the knee of the latency/concurrency
// curve instead of a hand-tuned constant — and re-converges when the
// store's capacity changes (a degraded mirror leg, a cold cache, a
// noisy neighbor).
//
// Two guards keep the controller honest:
//
//   - A vegas-style probe floor. Every ProbeInterval windows the limiter
//     serves one window at the minimum limit and re-measures the floor
//     from it. Without this, a long overload episode drags the floor
//     estimate upward until inflated latency looks normal — the
//     controller equivalent of the metastable failure it exists to
//     prevent.
//   - A Little's-law clamp. When congested, throughput × tolerated
//     latency bounds the concurrency the store can possibly use; the
//     limit never grows past a small multiple of it, so a latency
//     plateau (e.g. a store that queues internally) cannot inflate the
//     limit without bound.
//
// Admission is priority-aware (see Class): every class may run while
// the limit has room, but the wait queue is a brownout ladder — each
// class may only occupy a prefix of the queue, scans the shortest,
// ClassHigh the whole thing. As pressure rises the queue fills and the
// ladder sheds the lowest classes first, in strict order, while probes
// bypass the queue entirely.
package overload

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"costperf/internal/metrics"
)

// ErrShed is returned by Acquire when the caller's class has no queue
// room left: the operation is shed unserved. Front-ends map it onto
// their own overload sentinel (engine.ErrOverload).
var ErrShed = errors.New("overload: concurrency limit reached (shed)")

// Config configures a Limiter.
type Config struct {
	// Initial is the starting concurrency limit (default 64). In Static
	// mode it is the permanent limit.
	Initial int
	// Min is the lower clamp and the vegas probe level (default 2).
	Min int
	// Max is the upper clamp (default 4*Initial).
	Max int
	// MaxQueue bounds the wait queue for the highest class; lower
	// classes may only occupy a prefix of it (default 2*Initial).
	MaxQueue int
	// Static disables adaptation: the limit stays at Initial. The
	// brownout ladder and probe bypass still apply — Static is the old
	// semaphore, not the old blindness.
	Static bool
	// Window is the number of latency samples per gradient update
	// (default 64).
	Window int
	// Tolerance is how far past the floor the window mean may drift
	// before the limit backs off (default 2.0 — latency may double
	// before shrinking starts).
	Tolerance float64
	// Smoothing is the EWMA weight applied to limit *increases*;
	// decreases apply immediately — under collapse the limiter must
	// step down now, not after a moving average agrees (default 0.3).
	Smoothing float64
	// ProbeInterval is the number of windows between vegas floor
	// re-probes (default 16; <0 disables probing).
	ProbeInterval int
	// DepthGauge/PeakGauge, when non-nil, mirror the live queue depth
	// and its high-water mark (the engine points these at its
	// Stats.QueueDepth/QueuePeak so existing dashboards keep working).
	DepthGauge *metrics.Gauge
	PeakGauge  *metrics.Gauge
}

func (c *Config) setDefaults() {
	if c.Initial <= 0 {
		c.Initial = 64
	}
	if c.Min <= 0 {
		c.Min = 2
	}
	if c.Min > c.Initial {
		c.Min = c.Initial
	}
	if c.Max <= 0 {
		c.Max = 4 * c.Initial
	}
	if c.Max < c.Initial {
		c.Max = c.Initial
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.Initial
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.Tolerance <= 1 {
		c.Tolerance = 2.0
	}
	if c.Smoothing <= 0 || c.Smoothing > 1 {
		c.Smoothing = 0.3
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 16
	}
}

// Ticket is one admitted operation's slot. It must be released exactly
// once.
type Ticket struct {
	class   Class
	queued  bool
	wait    time.Duration
	granted time.Time
}

// Queued reports whether the ticket waited in the queue, and for how
// long.
func (t *Ticket) Queued() (bool, time.Duration) { return t.queued, t.wait }

// waiter is one queued Acquire.
type waiter struct {
	ch      chan struct{} // closed on grant
	granted time.Time
	done    bool // granted or abandoned (under l.mu)
}

// Limiter is the adaptive concurrency limiter. All methods are safe for
// concurrent use.
type Limiter struct {
	cfg   Config
	stats metrics.LimiterStats

	mu       sync.Mutex
	limit    float64 // live limit (clamped [Min, Max])
	inflight int
	queued   int
	qs       [numClasses][]*waiter

	// Gradient state (under mu): the current window's accumulation, the
	// latency floor, and the vegas probe cycle.
	winSum     float64 // ns
	winN       int
	winStart   time.Time
	floor      float64 // ns; 0 = unlearned
	lastSample float64 // ns; last window mean
	windows    int     // completed windows, drives the probe cadence
	probing    bool    // current window runs at Min to re-measure the floor
}

// NewLimiter builds a limiter.
func NewLimiter(cfg Config) *Limiter {
	cfg.setDefaults()
	l := &Limiter{cfg: cfg, limit: float64(cfg.Initial)}
	l.stats.Limit.Set(int64(cfg.Initial))
	return l
}

// Stats returns the limiter's meters.
func (l *Limiter) Stats() *metrics.LimiterStats { return &l.stats }

// Adaptive reports whether the limit is learned by the gradient (false:
// a static semaphore at Config.Initial).
func (l *Limiter) Adaptive() bool { return !l.cfg.Static }

// Limit returns the live concurrency limit.
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.effLimitLocked()
}

// effLimitLocked is the limit admission actually enforces right now: the
// gradient's limit, except during a vegas probe window, which serves at
// Min so the floor measurement sees an uncontended store.
func (l *Limiter) effLimitLocked() int {
	if l.probing {
		return l.cfg.Min
	}
	n := int(l.limit)
	if n < l.cfg.Min {
		n = l.cfg.Min
	}
	return n
}

// queueBound is the brownout ladder: the queue prefix each class may
// occupy. Scans shed once the queue is a quarter full, low-priority ops
// at half, and only ClassHigh may fill it — so as pressure rises the
// classes shed strictly lowest-first.
func (l *Limiter) queueBound(c Class) int {
	switch c {
	case ClassScan:
		return l.cfg.MaxQueue / 4
	case ClassLow:
		return l.cfg.MaxQueue / 2
	default:
		return l.cfg.MaxQueue
	}
}

// shedLocked meters one shed by class.
func (l *Limiter) shedLocked(c Class) {
	switch c {
	case ClassScan:
		l.stats.ShedScan.Inc()
	case ClassLow:
		l.stats.ShedLow.Inc()
	case ClassNormal:
		l.stats.ShedNormal.Inc()
	default:
		l.stats.ShedHigh.Inc()
	}
}

// WouldShed reports whether an Acquire at class would be shed right
// now — the cheap pre-flight the scatter-gather path uses to fail a hot
// shard's scan leg fast instead of feeding its queue.
func (l *Limiter) WouldShed(c Class) bool {
	if c == ClassProbe {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight >= l.effLimitLocked() && l.queued >= l.queueBound(c)
}

// Acquire admits one operation at the given class: immediately while
// the limit has room, after queueing when it does not, never for a
// request past its class's queue bound (ErrShed). A ctx that ends while
// queued returns ctx.Err(). ClassProbe bypasses both the limit and the
// queue. The returned ticket must be Released exactly once.
func (l *Limiter) Acquire(ctx context.Context, c Class) (*Ticket, error) {
	now := time.Now()
	l.mu.Lock()
	if c == ClassProbe {
		// Probes are how a degraded store proves recovery; they can not
		// be starved by load. Bypass the limit (the breaker allows one
		// probe at a time, so the overshoot is bounded at 1).
		l.inflight++
		l.grantStatsLocked()
		l.mu.Unlock()
		return &Ticket{class: c, granted: now}, nil
	}
	if l.inflight < l.effLimitLocked() && l.queued == 0 {
		l.inflight++
		l.grantStatsLocked()
		l.mu.Unlock()
		return &Ticket{class: c, granted: now}, nil
	}
	if l.queued >= l.queueBound(c) {
		l.shedLocked(c)
		l.mu.Unlock()
		return nil, ErrShed
	}
	w := &waiter{ch: make(chan struct{})}
	l.qs[c] = append(l.qs[c], w)
	l.queued++
	l.depthStatsLocked()
	l.mu.Unlock()

	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-w.ch:
		return &Ticket{class: c, queued: true, wait: w.granted.Sub(now), granted: w.granted}, nil
	case <-ctx.Done():
		l.mu.Lock()
		if w.done {
			// The grant raced our abort and won: the slot is ours. Run
			// with it — the store call will see the dead ctx immediately,
			// and the release path stays uniform.
			l.mu.Unlock()
			return &Ticket{class: c, queued: true, wait: w.granted.Sub(now), granted: w.granted}, nil
		}
		w.done = true
		for i, qw := range l.qs[c] {
			if qw == w {
				l.qs[c] = append(l.qs[c][:i], l.qs[c][i+1:]...)
				break
			}
		}
		l.queued--
		l.depthStatsLocked()
		l.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Release returns a ticket's slot, feeds the gradient controller (when
// sample is true and the limiter is adaptive), and grants queued
// waiters the freed capacity.
func (l *Limiter) Release(t *Ticket, sample bool) {
	lat := time.Since(t.granted)
	l.mu.Lock()
	l.inflight--
	l.stats.Inflight.Set(int64(l.inflight))
	if sample && !l.cfg.Static && t.class != ClassProbe {
		l.observeLocked(float64(lat.Nanoseconds()))
	}
	l.grantLocked()
	l.mu.Unlock()
}

// grantLocked hands freed capacity to queued waiters, highest class
// first, FIFO within a class.
func (l *Limiter) grantLocked() {
	for l.queued > 0 && l.inflight < l.effLimitLocked() {
		granted := false
		for c := numClasses - 1; c >= 0; c-- {
			if len(l.qs[c]) == 0 {
				continue
			}
			w := l.qs[c][0]
			l.qs[c] = l.qs[c][1:]
			l.queued--
			w.done = true
			w.granted = time.Now()
			l.inflight++
			l.grantStatsLocked()
			close(w.ch)
			granted = true
			break
		}
		if !granted {
			break
		}
	}
	l.depthStatsLocked()
}

func (l *Limiter) grantStatsLocked() {
	l.stats.Admitted.Inc()
	l.stats.Inflight.Set(int64(l.inflight))
}

func (l *Limiter) depthStatsLocked() {
	d := int64(l.queued)
	if l.cfg.DepthGauge != nil {
		l.cfg.DepthGauge.Set(d)
	}
	if l.cfg.PeakGauge != nil {
		l.cfg.PeakGauge.Max(d)
	}
}

// observeLocked accumulates one latency sample and runs a gradient
// update when the window fills.
func (l *Limiter) observeLocked(ns float64) {
	if l.winN == 0 {
		l.winStart = time.Now()
	}
	l.winSum += ns
	l.winN++
	if l.winN < l.cfg.Window {
		return
	}
	sample := l.winSum / float64(l.winN)
	elapsed := time.Since(l.winStart).Seconds()
	thr := 0.0
	if elapsed > 0 {
		thr = float64(l.winN) / elapsed
	}
	l.winSum, l.winN = 0, 0
	l.windows++
	l.updateLocked(sample, thr)
}

// updateLocked is one gradient step over a completed window.
func (l *Limiter) updateLocked(sample, thr float64) {
	if sample <= 0 {
		return
	}
	l.lastSample = sample

	if l.probing {
		// The probe window ran at Min: its mean is the closest thing to
		// the store's true no-queue latency we can measure live. Reset
		// the floor to it — this is what un-learns a floor inflated by a
		// long overload episode.
		l.floor = sample
		l.probing = false
	} else if l.floor == 0 || sample < l.floor {
		l.floor = sample
	}
	l.stats.FloorMicros.Set(int64(l.floor / 1e3))

	prev := l.limit
	// gradient <= 1: how far the window's latency sits past the
	// tolerated band. At or under tolerance the limit grows by the
	// additive sqrt probe; past it the limit multiplies down.
	g := l.cfg.Tolerance * l.floor / sample
	if g > 1 {
		g = 1
	}
	if g < 0.5 {
		g = 0.5
	}
	next := l.limit*g + math.Sqrt(l.limit)
	congested := sample > l.cfg.Tolerance*l.floor
	if congested && thr > 0 {
		// Little's law: a store completing thr ops/s at the tolerated
		// latency can use at most thr * (tol*floor) concurrency; 2x
		// headroom, and never below Min. Only applied when congested —
		// an idle window's throughput says nothing about capacity.
		little := 2 * thr * (l.cfg.Tolerance * l.floor / 1e9)
		if little < float64(l.cfg.Min) {
			little = float64(l.cfg.Min)
		}
		if next > little {
			next = little
		}
	}
	if next > prev {
		// Increases are smoothed; decreases act immediately.
		next = prev + l.cfg.Smoothing*(next-prev)
	}
	if next < float64(l.cfg.Min) {
		next = float64(l.cfg.Min)
	}
	if next > float64(l.cfg.Max) {
		next = float64(l.cfg.Max)
	}
	l.limit = next
	if int(next) > int(prev) {
		l.stats.LimitUps.Inc()
	} else if int(next) < int(prev) {
		l.stats.LimitDowns.Inc()
	}

	// Arm the next vegas probe window.
	if l.cfg.ProbeInterval > 0 && l.windows%l.cfg.ProbeInterval == 0 {
		l.probing = true
	}
	l.stats.Limit.Set(int64(l.effLimitLocked()))
}

// RetryAfter is the advisory backoff for a shed caller: roughly how
// long the current backlog needs to drain at the current service rate,
// clamped to a sane band. The wire server forwards it inside
// StatusOverload responses; honoring it is what turns a thundering-herd
// retry into a paced one.
func (l *Limiter) RetryAfter() time.Duration {
	l.mu.Lock()
	per := l.lastSample
	if per == 0 {
		per = l.floor
	}
	backlog := l.inflight + l.queued
	lim := l.effLimitLocked()
	l.mu.Unlock()
	if per == 0 {
		per = 1e6 // unlearned: assume 1ms service time
	}
	if lim < 1 {
		lim = 1
	}
	d := time.Duration(per * float64(backlog+1) / float64(lim))
	const lo, hi = 100 * time.Microsecond, 100 * time.Millisecond
	if d < lo {
		d = lo
	}
	if d > hi {
		d = hi
	}
	l.stats.RetryAfterMicros.Set(int64(d / time.Microsecond))
	return d
}
