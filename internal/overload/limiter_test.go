package overload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestClassParseAndString(t *testing.T) {
	for _, c := range []Class{ClassScan, ClassLow, ClassNormal, ClassHigh} {
		got, ok := ParseClass(c.String())
		if !ok || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ParseClass("probe"); ok {
		t.Fatal("ParseClass must refuse to mint probe class from config")
	}
	if _, ok := ParseClass(""); ok {
		t.Fatal("ParseClass accepted the empty string")
	}
	if c, ok := ParseClass("nope"); ok || c != ClassNormal {
		t.Fatalf("unknown class = %v, %v; want ClassNormal, false", c, ok)
	}
}

func TestClassContext(t *testing.T) {
	ctx := context.Background()
	if got := ClassFrom(ctx, ClassNormal); got != ClassNormal {
		t.Fatalf("untagged ctx class = %v", got)
	}
	if got := ClassFrom(nil, ClassScan); got != ClassScan {
		t.Fatalf("nil ctx class = %v", got)
	}
	ctx = WithClass(ctx, ClassHigh)
	if got := ClassFrom(ctx, ClassNormal); got != ClassHigh {
		t.Fatalf("tagged ctx class = %v, want high", got)
	}
}

func TestAcquireFastPath(t *testing.T) {
	l := NewLimiter(Config{Initial: 2, Static: true})
	ctx := context.Background()
	t1, err := l.Acquire(ctx, ClassNormal)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if q, _ := t1.Queued(); q {
		t.Fatal("fast-path acquire reported queued")
	}
	l.Release(t1, true)
	if got := l.Stats().Admitted.Value(); got != 1 {
		t.Fatalf("Admitted = %d, want 1", got)
	}
	if got := l.Stats().Inflight.Value(); got != 0 {
		t.Fatalf("Inflight = %d after release, want 0", got)
	}
}

// TestBrownoutLadder pins the shedding order: with the limit saturated,
// each class sheds once the queue reaches its prefix bound — scans at a
// quarter, low at half, normal and high only when the queue is full —
// and probes never shed at all.
func TestBrownoutLadder(t *testing.T) {
	const q = 8
	l := NewLimiter(Config{Initial: 1, MaxQueue: q, Static: true})
	ctx := context.Background()

	// Saturate the limit.
	hold, err := l.Acquire(ctx, ClassNormal)
	if err != nil {
		t.Fatalf("hold: %v", err)
	}

	// Fill the queue to scan's bound (q/4 = 2) with waiters. Each waiter
	// releases its own ticket once granted (grants go highest-class-first,
	// so the main goroutine cannot drain them in park order).
	var wg sync.WaitGroup
	park := func(n int, c Class) chan error {
		ch := make(chan error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tk, err := l.Acquire(ctx, c)
				if err == nil {
					l.Release(tk, false)
				}
				ch <- err
			}()
		}
		return ch
	}
	waitQueued := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			l.mu.Lock()
			n := l.queued
			l.mu.Unlock()
			if n == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("queue depth never reached %d", want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	scans := park(2, ClassScan)
	waitQueued(2)
	// Scan bound (2) reached: the next scan sheds, lower classes do not.
	if _, err := l.Acquire(ctx, ClassScan); !errors.Is(err, ErrShed) {
		t.Fatalf("scan past bound = %v, want ErrShed", err)
	}
	lows := park(2, ClassLow)
	waitQueued(4)
	// Low bound (4) reached: low sheds, normal still queues.
	if _, err := l.Acquire(ctx, ClassLow); !errors.Is(err, ErrShed) {
		t.Fatalf("low past bound = %v, want ErrShed", err)
	}
	normals := park(4, ClassNormal)
	waitQueued(8)
	// Queue full: everything but probes sheds.
	if _, err := l.Acquire(ctx, ClassNormal); !errors.Is(err, ErrShed) {
		t.Fatalf("normal past bound = %v, want ErrShed", err)
	}
	if _, err := l.Acquire(ctx, ClassHigh); !errors.Is(err, ErrShed) {
		t.Fatalf("high past full queue = %v, want ErrShed", err)
	}
	probe, err := l.Acquire(ctx, ClassProbe)
	if err != nil {
		t.Fatalf("probe through a full queue = %v, want admission", err)
	}
	l.Release(probe, false)

	st := l.Stats()
	if st.ShedScan.Value() != 1 || st.ShedLow.Value() != 1 ||
		st.ShedNormal.Value() != 1 || st.ShedHigh.Value() != 1 {
		t.Fatalf("shed by class = %s", st.String())
	}

	// Drain: everyone queued eventually runs.
	l.Release(hold, false)
	wg.Wait()
	for _, ch := range []chan error{scans, lows, normals} {
		for i := 0; i < cap(ch); i++ {
			if err := <-ch; err != nil {
				t.Fatalf("queued acquire failed: %v", err)
			}
		}
	}
	if got := st.Inflight.Value(); got != 0 {
		t.Fatalf("Inflight after drain = %d", got)
	}
}

// TestPriorityDequeueOrder pins that freed capacity goes to the highest
// queued class first.
func TestPriorityDequeueOrder(t *testing.T) {
	l := NewLimiter(Config{Initial: 1, MaxQueue: 8, Static: true})
	ctx := context.Background()
	hold, err := l.Acquire(ctx, ClassNormal)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan Class, 3)
	var wg sync.WaitGroup
	enqueue := func(c Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := l.Acquire(ctx, c)
			if err != nil {
				t.Errorf("acquire %v: %v", c, err)
				return
			}
			order <- c
			l.Release(tk, false)
		}()
		// Ensure deterministic arrival order: scan first, then normal,
		// then high.
		deadline := time.Now().Add(5 * time.Second)
		for {
			l.mu.Lock()
			n := len(l.qs[c])
			l.mu.Unlock()
			if n == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%v never queued", c)
			}
			time.Sleep(time.Millisecond)
		}
	}
	enqueue(ClassScan)
	enqueue(ClassNormal)
	enqueue(ClassHigh)
	l.Release(hold, false)
	wg.Wait()
	close(order)
	var got []Class
	for c := range order {
		got = append(got, c)
	}
	want := []Class{ClassHigh, ClassNormal, ClassScan}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
}

// TestQueuedAbort pins the ctx contract: a context that dies while
// queued surfaces its own error and leaves the queue clean.
func TestQueuedAbort(t *testing.T) {
	l := NewLimiter(Config{Initial: 1, MaxQueue: 4, Static: true})
	hold, err := l.Acquire(context.Background(), ClassNormal)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx, ClassNormal); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued abort = %v, want DeadlineExceeded", err)
	}
	l.mu.Lock()
	depth := l.queued
	l.mu.Unlock()
	if depth != 0 {
		t.Fatalf("queue depth after abort = %d, want 0", depth)
	}
	l.Release(hold, false)
	// The limiter still works after the abandoned waiter.
	tk, err := l.Acquire(context.Background(), ClassNormal)
	if err != nil {
		t.Fatalf("acquire after abort: %v", err)
	}
	l.Release(tk, false)
}

// drive feeds the controller synthetic windows directly: a white-box
// shortcut that makes gradient behavior deterministic.
func drive(l *Limiter, windows int, sampleNs, thr float64) {
	for i := 0; i < windows; i++ {
		l.mu.Lock()
		l.windows++
		l.updateLocked(sampleNs, thr)
		l.mu.Unlock()
	}
}

// TestGradientShrinksUnderCongestion pins the AIMD down direction:
// latency far past tolerance*floor multiplies the limit down toward Min.
func TestGradientShrinksUnderCongestion(t *testing.T) {
	l := NewLimiter(Config{Initial: 64, Min: 2, Max: 256, ProbeInterval: -1})
	// Learn a 100us floor.
	drive(l, 1, 100e3, 1000)
	// Then 10x-inflated latency at modest throughput: the limit must
	// collapse toward what Little's law supports (2 * 1000/s * 200us = 0.4
	// -> clamped to Min).
	drive(l, 20, 1e6, 1000)
	if got := l.Limit(); got > 8 {
		t.Fatalf("limit after sustained congestion = %d, want near Min", got)
	}
	if l.Stats().LimitDowns.Value() == 0 {
		t.Fatal("no down updates recorded")
	}
}

// TestGradientGrowsWhenHealthy pins the additive up direction: latency
// at the floor grows the limit by ~sqrt(limit) per window.
func TestGradientGrowsWhenHealthy(t *testing.T) {
	l := NewLimiter(Config{Initial: 4, Min: 2, Max: 256, ProbeInterval: -1})
	drive(l, 1, 100e3, 1e5)
	before := l.Limit()
	drive(l, 30, 100e3, 1e5)
	after := l.Limit()
	if after <= before {
		t.Fatalf("limit did not grow under healthy latency: %d -> %d", before, after)
	}
	if after > 256 {
		t.Fatalf("limit %d exceeded Max", after)
	}
	if l.Stats().LimitUps.Value() == 0 {
		t.Fatal("no up updates recorded")
	}
}

// TestVegasProbeResetsFloor pins the probe cycle: after ProbeInterval
// windows the limiter serves one window at Min, and that window's
// sample resets (not just lowers) the floor — un-learning an inflated
// baseline.
func TestVegasProbeResetsFloor(t *testing.T) {
	l := NewLimiter(Config{Initial: 16, Min: 2, Max: 64, ProbeInterval: 4})
	drive(l, 3, 200e3, 1e4)
	if l.Limit() == 2 {
		t.Fatal("probing engaged too early")
	}
	drive(l, 1, 200e3, 1e4) // 4th window arms the probe
	if got := l.Limit(); got != 2 {
		t.Fatalf("probe window effective limit = %d, want Min", got)
	}
	// The probe window measures a HIGHER latency than the learned floor
	// (the store got slower); a min-tracking floor would ignore it, the
	// vegas reset must adopt it.
	drive(l, 1, 500e3, 1e4)
	l.mu.Lock()
	floor := l.floor
	probing := l.probing
	l.mu.Unlock()
	if probing {
		t.Fatal("probe window did not clear")
	}
	if floor != 500e3 {
		t.Fatalf("floor after probe = %v, want 500e3 (reset, not min)", floor)
	}
}

// TestStaticModeDoesNotAdapt pins Static: the limit stays at Initial no
// matter what latency does.
func TestStaticModeDoesNotAdapt(t *testing.T) {
	l := NewLimiter(Config{Initial: 8, Static: true})
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		tk, err := l.Acquire(ctx, ClassNormal)
		if err != nil {
			t.Fatal(err)
		}
		l.Release(tk, true)
	}
	if got := l.Limit(); got != 8 {
		t.Fatalf("static limit = %d, want 8", got)
	}
	if l.Stats().LimitUps.Value()+l.Stats().LimitDowns.Value() != 0 {
		t.Fatal("static limiter recorded gradient updates")
	}
}

func TestWouldShed(t *testing.T) {
	l := NewLimiter(Config{Initial: 1, MaxQueue: 4, Static: true})
	ctx := context.Background()
	if l.WouldShed(ClassScan) {
		t.Fatal("idle limiter would shed")
	}
	hold, _ := l.Acquire(ctx, ClassNormal)
	// Limit saturated, queue empty: scan bound is 4/4 = 1 > 0, so a scan
	// would still queue; but once one waiter parks, scans shed.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tk, err := l.Acquire(ctx, ClassNormal)
		if err == nil {
			l.Release(tk, false)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !l.WouldShed(ClassScan) {
		if time.Now().After(deadline) {
			t.Fatal("WouldShed(scan) never became true")
		}
		time.Sleep(time.Millisecond)
	}
	if l.WouldShed(ClassProbe) {
		t.Fatal("WouldShed(probe) must always be false")
	}
	if l.WouldShed(ClassHigh) {
		t.Fatal("high would shed with a near-empty queue")
	}
	l.Release(hold, false)
	wg.Wait()
}

func TestRetryAfterBounds(t *testing.T) {
	l := NewLimiter(Config{Initial: 4})
	d := l.RetryAfter()
	if d < 100*time.Microsecond || d > 100*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want within [100us, 100ms]", d)
	}
	// A huge backlog clamps at the cap.
	drive(l, 1, 50e6, 10)
	l.mu.Lock()
	l.inflight = 1000
	l.mu.Unlock()
	if d := l.RetryAfter(); d != 100*time.Millisecond {
		t.Fatalf("RetryAfter under backlog = %v, want 100ms cap", d)
	}
	l.mu.Lock()
	l.inflight = 0
	l.mu.Unlock()
	if l.Stats().RetryAfterMicros.Value() == 0 {
		t.Fatal("RetryAfterMicros gauge never set")
	}
}

// TestLimiterConcurrentHammer drives mixed classes through a tiny
// adaptive limiter under -race: no deadlock, accounting consistent, and
// clean final state.
func TestLimiterConcurrentHammer(t *testing.T) {
	l := NewLimiter(Config{Initial: 4, Min: 2, Max: 16, MaxQueue: 8, Window: 16})
	var wg sync.WaitGroup
	var granted, shed atomicCount
	classes := []Class{ClassScan, ClassLow, ClassNormal, ClassHigh}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				c := classes[(w+i)%len(classes)]
				ctx := context.Background()
				if i%7 == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
					defer cancel()
				}
				tk, err := l.Acquire(ctx, c)
				if err != nil {
					if !errors.Is(err, ErrShed) && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("acquire: %v", err)
					}
					if errors.Is(err, ErrShed) {
						shed.inc()
					}
					continue
				}
				granted.inc()
				l.Release(tk, true)
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Admitted.Value() != granted.v() {
		t.Fatalf("Admitted = %d, granted tickets = %d", st.Admitted.Value(), granted.v())
	}
	if st.ShedTotal() != shed.v() {
		t.Fatalf("ShedTotal = %d, callers saw %d", st.ShedTotal(), shed.v())
	}
	if st.Inflight.Value() != 0 {
		t.Fatalf("Inflight after drain = %d", st.Inflight.Value())
	}
	l.mu.Lock()
	depth := l.queued
	lim := l.limit
	l.mu.Unlock()
	if depth != 0 {
		t.Fatalf("queue depth after drain = %d", depth)
	}
	if lim < 2 || lim > 16 {
		t.Fatalf("limit %v escaped [Min, Max]", lim)
	}
}

type atomicCount struct {
	mu sync.Mutex
	n  int64
}

func (c *atomicCount) inc() { c.mu.Lock(); c.n++; c.mu.Unlock() }
func (c *atomicCount) v() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// TestConfigDefaults pins the zero-value normalization.
func TestConfigDefaults(t *testing.T) {
	var c Config
	c.setDefaults()
	if c.Initial != 64 || c.Min != 2 || c.Max != 256 || c.MaxQueue != 128 {
		t.Fatalf("defaults = %+v", c)
	}
	c2 := Config{Initial: 4, Min: 100}
	c2.setDefaults()
	if c2.Min != 4 {
		t.Fatalf("Min above Initial = %d, want clamped to Initial", c2.Min)
	}
	_ = fmt.Sprintf("%v", ClassProbe) // String coverage for probe
}
