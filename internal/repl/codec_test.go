package repl

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"costperf/internal/fault"
)

func randFrame(rng *rand.Rand) Frame {
	f := Frame{
		Epoch:   rng.Uint64(),
		From:    rng.Int63() - rng.Int63(), // includes negatives (probe frames)
		To:      rng.Int63(),
		Durable: rng.Int63(),
	}
	if rng.Intn(4) > 0 {
		f.Payload = make([]byte, rng.Intn(512))
		rng.Read(f.Payload)
	}
	f.CRC = frameCRC(f.Payload)
	return f
}

func TestShipFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		f := randFrame(rng)
		g, err := DecodeShipFrame(EncodeFrame(f))
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		if g.Epoch != f.Epoch || g.From != f.From || g.To != f.To ||
			g.Durable != f.Durable || g.CRC != f.CRC || !bytes.Equal(g.Payload, f.Payload) {
			t.Fatalf("round trip %d: %+v != %+v", i, g, f)
		}
	}
	// The resync probe (negative From, no payload) survives too.
	probe := Frame{Epoch: 7, From: probeFrom}
	g, err := DecodeShipFrame(EncodeFrame(probe))
	if err != nil || g.From != probeFrom || g.Epoch != 7 {
		t.Fatalf("probe round trip: %+v, %v", g, err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		a := Ack{Epoch: rng.Uint64(), Applied: rng.Int63(), OK: rng.Intn(2) == 0}
		if !a.OK {
			a.Reason = "nak: resync"
		}
		b, err := DecodeAck(EncodeAck(a))
		if err != nil || b != a {
			t.Fatalf("round trip %d: %+v != %+v (%v)", i, b, a, err)
		}
	}
}

// TestCodecCorruptionMatrix mirrors the wire/frame property test on the
// replication codec: truncations and bit flips of an encoded message must
// yield typed corrupt-class errors — never a panic and never a silently
// different message.
func TestCodecCorruptionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		f := randFrame(rng)
		enc := EncodeFrame(f)

		cut := rng.Intn(len(enc))
		if _, err := DecodeShipFrame(enc[:cut]); !errors.Is(err, fault.ErrCorrupt) {
			t.Fatalf("truncate@%d: got %v, want corrupt-class", cut, err)
		}

		flipped := append([]byte(nil), enc...)
		bit := rng.Intn(len(flipped) * 8)
		flipped[bit/8] ^= 1 << (bit % 8)
		g, err := DecodeShipFrame(flipped)
		if err == nil {
			// The outer CRC caught nothing only if the flip never happened
			// to matter — then the decode must agree with the original.
			if g.Epoch != f.Epoch || g.From != f.From || !bytes.Equal(g.Payload, f.Payload) {
				t.Fatalf("bitflip@%d: silently different frame", bit)
			}
		} else if !errors.Is(err, fault.ErrCorrupt) {
			t.Fatalf("bitflip@%d: got %v, want corrupt-class", bit, err)
		}

		a := Ack{Epoch: f.Epoch, Applied: f.To, OK: true}
		encA := EncodeAck(a)
		cutA := rng.Intn(len(encA))
		if _, err := DecodeAck(encA[:cutA]); !errors.Is(err, fault.ErrCorrupt) {
			t.Fatalf("ack truncate@%d: got %v, want corrupt-class", cutA, err)
		}
	}
}

// TestLinkCarriesCodec pins that the in-process link really routes
// messages through the byte codec (payloads arrive equal but not aliased).
func TestLinkCarriesCodec(t *testing.T) {
	l := NewLink(nil)
	defer l.Close()
	f := Frame{Epoch: 1, From: 0, To: 4, Durable: 4, Payload: []byte("abcd")}
	f.CRC = frameCRC(f.Payload)
	l.SendFrame(f)
	got := <-l.Frames()
	if !bytes.Equal(got.Payload, f.Payload) || got.To != f.To {
		t.Fatalf("link delivered %+v, want %+v", got, f)
	}
	if len(f.Payload) > 0 && &got.Payload[0] == &f.Payload[0] {
		t.Fatal("payload aliased: frame did not cross a byte boundary")
	}
	l.SendAck(Ack{Epoch: 1, Applied: 4, OK: true})
	if a := <-l.Acks(); !a.OK || a.Applied != 4 {
		t.Fatalf("ack delivered %+v", a)
	}
}
