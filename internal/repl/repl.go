// Package repl replicates a transaction component's recovery log to a warm
// standby: continuous log shipping, point-in-time recovery, and automatic
// failover with epoch fencing.
//
// The Deuteronomy split (internal/tc) makes the recovery log the natural
// replication boundary: every committed write exists as a framed,
// CRC-covered record at a known LSN, and replay is the same blind-update
// path as normal operation. So replication here is byte shipping:
//
//   - Shipper tails the primary's durable log [cursor, DurableLSN) in LSN
//     order, cuts record-aligned batches, and streams them over a Link
//     with a bounded in-flight window, per-batch acks, and jittered
//     exponential-backoff resends. Cursors are resumable: a restarted
//     shipper asks the standby where it is and continues from there.
//
//   - Standby verifies each frame (epoch, CRC, LSN continuity), persists
//     the bytes to its own log device at identical offsets — the standby
//     log is a byte-identical prefix of the primary's — applies the
//     records to its data component, and tracks applied-LSN lag for
//     stale-bounded reads and PITR checkpoints.
//
//   - Cluster glues both into an engine.Store: writes are semi-synchronous
//     (acked to the caller only after the standby acked the commit's LSN,
//     so failover never loses an acknowledged write), and when the primary
//     latches degraded the cluster drains the ack window, fences the old
//     primary behind an epoch bump, and promotes the standby in place.
//
// In the paper's cost terms (Eq. 4-6) a warm standby rents a second copy
// of the flash plus the ship bandwidth, like mirroring — but the second
// copy is a full store that can take over service, not just a redundant
// leg (see DESIGN.md, "Replication & PITR").
package repl

import "errors"

// Typed errors.
var (
	// ErrFenced rejects a commit or frame carrying a stale epoch: the
	// sender was demoted by a failover it has not observed.
	ErrFenced = errors.New("repl: fenced (stale epoch)")
	// ErrTooStale is returned by standby reads when the applied-LSN lag
	// exceeds the configured staleness bound.
	ErrTooStale = errors.New("repl: standby lag exceeds staleness bound")
	// ErrBeyondApplied rejects a PITR target past what the standby has
	// applied: those bytes have not been shipped yet.
	ErrBeyondApplied = errors.New("repl: PITR target beyond applied LSN")
	// ErrBeforeRetention rejects a PITR target below the oldest retained
	// checkpoint: the log prefix before it is eligible for archival and
	// no longer guaranteed reconstructible.
	ErrBeforeRetention = errors.New("repl: PITR target below retained checkpoint window")
	// ErrStopped is returned by waits after the shipper or standby halted.
	ErrStopped = errors.New("repl: stopped")
	// ErrShipTimeout is returned when a semi-synchronous write could not
	// confirm standby application within the configured bound; the write
	// is durable on the primary but was never acknowledged to the caller.
	ErrShipTimeout = errors.New("repl: timed out waiting for standby ack")
	// ErrPromoted is returned by shipper operations after failover
	// dissolved the old primary/standby pairing.
	ErrPromoted = errors.New("repl: cluster already promoted")
)
