package repl

import (
	"math/rand"
	"sync"
	"time"

	"costperf/internal/metrics"
	"costperf/internal/tc"
)

// ShipperConfig configures a Shipper.
type ShipperConfig struct {
	// TC is the primary whose recovery log is tailed (required).
	TC *tc.TC
	// Link carries frames to the standby and acks back (required).
	Link *Link
	// Epoch stamps every frame (default 1). A shipper never changes epoch;
	// failover stops it and fences its frames at the standby.
	Epoch uint64
	// BatchBytes bounds the payload of one frame (default 32 KiB); a
	// single record larger than this still ships whole.
	BatchBytes int
	// Window bounds unacked frames in flight (default 4).
	Window int
	// AckTimeout is how long the shipper waits for any ack on a full or
	// partial window before rewinding to the last confirmed cursor and
	// resending (default 10ms).
	AckTimeout time.Duration
	// RetryBase/RetryMax bound the jittered exponential backoff between
	// resends and resyncs (defaults 1ms / 50ms); each sleep is drawn from
	// [d/2, d] and d doubles per consecutive failure.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Poll is the idle tail-poll interval while no new bytes are durable
	// (default 200µs).
	Poll time.Duration
	// Seed seeds the backoff jitter (default 1).
	Seed int64
	// Stats, when non-nil, is the shared counter block to meter into (the
	// cluster passes one block to both ends); nil allocates an own block.
	Stats *metrics.ReplStats
}

func (c *ShipperConfig) setDefaults() {
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 32 << 10
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 10 * time.Millisecond
	}
	if c.RetryBase <= 0 {
		c.RetryBase = time.Millisecond
	}
	if c.RetryMax < c.RetryBase {
		c.RetryMax = 50 * time.Millisecond
		if c.RetryMax < c.RetryBase {
			c.RetryMax = c.RetryBase
		}
	}
	if c.Poll <= 0 {
		c.Poll = 200 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Shipper tails the primary's durable recovery log and streams
// record-aligned batches to the standby. Its cursor is resumable: it
// starts (and recovers from naks and timeouts) by asking the standby for
// its applied LSN, so a killed and restarted shipper continues without
// gaps, and duplicates are absorbed by the standby's idempotent apply.
type Shipper struct {
	cfg   ShipperConfig
	stats *metrics.ReplStats

	mu      sync.Mutex
	acked   int64 // highest standby-confirmed LSN (-1 until first contact)
	advance chan struct{}
	fin     bool // run loop exited (fenced or stopped)

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewShipper creates a shipper; call Start to begin shipping.
func NewShipper(cfg ShipperConfig) *Shipper {
	cfg.setDefaults()
	s := &Shipper{
		cfg:     cfg,
		stats:   cfg.Stats,
		acked:   -1,
		advance: make(chan struct{}),
		stop:    make(chan struct{}),
	}
	if s.stats == nil {
		s.stats = &metrics.ReplStats{}
	}
	return s
}

// Stats returns the shipper's counter block.
func (s *Shipper) Stats() *metrics.ReplStats { return s.stats }

// Start launches the ship loop.
func (s *Shipper) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.run()
	}()
}

// Stop halts the ship loop and wakes all waiters with ErrStopped.
func (s *Shipper) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// AckedLSN returns the highest LSN the standby has confirmed applying
// (-1 before first contact).
func (s *Shipper) AckedLSN() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// WaitShipped blocks until the standby has confirmed applying the log
// through lsn — the semi-synchronous commit gate: a cluster write is
// acknowledged to its caller only after this returns nil.
func (s *Shipper) WaitShipped(lsn int64, timeout time.Duration) error {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		s.mu.Lock()
		if s.acked >= lsn {
			s.mu.Unlock()
			return nil
		}
		if s.fin {
			s.mu.Unlock()
			return ErrStopped
		}
		ch := s.advance
		s.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			return ErrShipTimeout
		case <-s.stop:
			return ErrStopped
		}
	}
}

// Drain waits until everything durable on the primary right now has been
// confirmed by the standby (the pre-promotion ack-window drain). It is
// best-effort under a bounded timeout: if the primary's log device died
// mid-ship, only already-shipped bytes can drain, and every write the
// cluster ever acknowledged is among them.
func (s *Shipper) Drain(timeout time.Duration) error {
	return s.WaitShipped(s.cfg.TC.DurableLSN(), timeout)
}

// setAcked advances the confirmed cursor and wakes WaitShipped waiters.
func (s *Shipper) setAcked(lsn int64) {
	s.mu.Lock()
	if lsn > s.acked {
		s.acked = lsn
		s.stats.AckedLSN.Set(lsn)
		close(s.advance)
		s.advance = make(chan struct{})
	}
	s.mu.Unlock()
}

// finish marks the loop done and releases waiters.
func (s *Shipper) finish() {
	s.mu.Lock()
	s.fin = true
	close(s.advance)
	s.advance = make(chan struct{})
	s.mu.Unlock()
}

// backoffSleep sleeps a jittered interval in [d/2, d] and doubles d up to
// RetryMax (interruptible by Stop).
func (s *Shipper) backoffSleep(d *time.Duration, rng *rand.Rand) {
	cur := *d
	if cur <= 0 {
		cur = s.cfg.RetryBase
	}
	half := cur / 2
	if half <= 0 {
		half = cur
	}
	j := half + time.Duration(rng.Int63n(int64(half)+1))
	*d = cur * 2
	if *d > s.cfg.RetryMax {
		*d = s.cfg.RetryMax
	}
	t := time.NewTimer(j)
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.stop:
	}
}

func (s *Shipper) run() {
	defer s.finish()
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	backoff := s.cfg.RetryBase
	cursor := int64(-1)  // unknown: resync with the standby first
	var inflight []int64 // end LSNs of sent, unacked frames

	rewind := func(to int64) {
		cursor = to
		inflight = inflight[:0]
	}

	for {
		select {
		case <-s.stop:
			return
		default:
		}

		// Resync: ask the standby for its applied LSN and resume there.
		// This is both the cold-start handshake and the recovery path
		// after a kill — the cursor lives on the standby, not here.
		if cursor < 0 {
			s.cfg.Link.SendFrame(Frame{Epoch: s.cfg.Epoch, From: probeFrom, Durable: s.cfg.TC.DurableLSN()})
			a, ok := s.awaitAck(s.cfg.AckTimeout)
			if !ok {
				select {
				case <-s.stop:
					return
				default:
				}
				s.backoffSleep(&backoff, rng)
				continue
			}
			if a.Epoch > s.cfg.Epoch || (!a.OK && a.Reason == "fenced") {
				return // demoted: a newer epoch owns the standby
			}
			if a.Epoch != s.cfg.Epoch {
				continue
			}
			s.setAcked(a.Applied)
			rewind(a.Applied)
			backoff = s.cfg.RetryBase
			continue
		}

		durable := s.cfg.TC.DurableLSN()

		// Fill the in-flight window with record-aligned batches.
		fillErr := false
		for len(inflight) < s.cfg.Window && cursor < durable {
			batch, end, err := tc.ReadLogBatch(s.cfg.TC.LogDevice(), cursor, durable, s.cfg.BatchBytes)
			if err != nil {
				// Primary log unreadable (crash mid-ship): keep backing
				// off and retrying — every byte the cluster acked is
				// already on the standby, and promotion will stop us.
				fillErr = true
				break
			}
			if len(batch) == 0 {
				break
			}
			s.cfg.Link.SendFrame(Frame{
				Epoch: s.cfg.Epoch, From: cursor, To: end, Durable: durable,
				CRC: frameCRC(batch), Payload: batch,
			})
			s.stats.BatchesShipped.Inc()
			s.stats.BytesShipped.Add(int64(len(batch)))
			s.stats.ShipCursor.Set(end)
			inflight = append(inflight, end)
			cursor = end
		}
		if fillErr {
			s.backoffSleep(&backoff, rng)
			continue
		}

		if len(inflight) == 0 {
			// Idle tail: wait briefly for new durable bytes, absorbing
			// stray acks (e.g. duplicates the network manufactured).
			select {
			case a := <-s.cfg.Link.Acks():
				if a.Epoch > s.cfg.Epoch || (!a.OK && a.Reason == "fenced") {
					return
				}
				if a.OK && a.Epoch == s.cfg.Epoch {
					s.setAcked(a.Applied)
				}
			case <-time.After(s.cfg.Poll):
			case <-s.stop:
				return
			}
			continue
		}

		// Await progress on the window.
		select {
		case a := <-s.cfg.Link.Acks():
			if a.Epoch > s.cfg.Epoch || (!a.OK && a.Reason == "fenced") {
				return
			}
			if a.Epoch != s.cfg.Epoch {
				continue
			}
			if !a.OK {
				// Gap or verification nak: the standby told us where it
				// really is; rewind there and refill.
				s.stats.Naks.Inc()
				s.stats.Resends.Inc()
				s.setAcked(a.Applied)
				rewind(a.Applied)
				s.backoffSleep(&backoff, rng)
				continue
			}
			s.stats.AcksOK.Inc()
			s.setAcked(a.Applied)
			// Drop confirmed frames from the window.
			keep := inflight[:0]
			for _, end := range inflight {
				if end > a.Applied {
					keep = append(keep, end)
				}
			}
			inflight = keep
			backoff = s.cfg.RetryBase
		case <-time.After(s.cfg.AckTimeout):
			// The whole window went silent (drops or a partition):
			// rewind to the confirmed cursor and resend after a jittered
			// exponential backoff.
			s.stats.Resends.Inc()
			s.mu.Lock()
			confirmed := s.acked
			s.mu.Unlock()
			if confirmed < 0 {
				confirmed = 0
			}
			rewind(confirmed)
			s.backoffSleep(&backoff, rng)
		case <-s.stop:
			return
		}
	}
}

// awaitAck waits up to d for one ack.
func (s *Shipper) awaitAck(d time.Duration) (Ack, bool) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case a := <-s.cfg.Link.Acks():
		return a, true
	case <-t.C:
		return Ack{}, false
	case <-s.stop:
		return Ack{}, false
	}
}
