package repl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/sim"
	"costperf/internal/ssd"
	"costperf/internal/tc"
)

// ClusterConfig assembles a replicated pair: a primary TC whose log is
// shipped to a warm standby, with automatic failover between them.
type ClusterConfig struct {
	// PrimaryDC / PrimaryLog build the primary TC (both required).
	PrimaryDC  tc.DataComponent
	PrimaryLog ssd.Dev
	// StandbyDC / StandbyLog build the standby (both required). The standby
	// log receives shipped bytes at primary-identical offsets.
	StandbyDC  tc.DataComponent
	StandbyLog ssd.Dev
	// Net injects network faults into the link (nil = perfect network).
	Net *fault.NetInjector
	// CommitWait bounds the semi-synchronous ack wait per write (default
	// 2s): a Put returns nil only once the standby confirmed applying the
	// log through the commit, so an acknowledged write survives losing the
	// primary wholesale.
	CommitWait time.Duration
	// AutoFailover, when set, promotes the standby as soon as the primary
	// latches degraded — from the background watcher or inline when a
	// write surfaces tc.ErrDegraded.
	AutoFailover bool
	// WatchEvery paces the background health watcher (default 2ms; only
	// used with AutoFailover).
	WatchEvery time.Duration
	// PromoteDrain bounds the pre-promotion ack-window drain (default 1s).
	PromoteDrain time.Duration
	// MaxStaleBytes bounds standby reads (see StandbyConfig).
	MaxStaleBytes int64
	// Retain bounds the standby's PITR checkpoint ring (see StandbyConfig).
	Retain int
	// Shipper tuning (zero values take ShipperConfig defaults).
	BatchBytes int
	Window     int
	AckTimeout time.Duration
	RetryBase  time.Duration
	RetryMax   time.Duration
	Poll       time.Duration
	Seed       int64
	// LogBufferBytes / ReadCacheBytes / Session / Obs / Retry pass through
	// to both TCs.
	LogBufferBytes int
	ReadCacheBytes int64
	Session        *sim.Session
	Obs            *obs.Tracer
	Retry          fault.RetryPolicy
}

// Cluster is a replicated store: an engine.Store whose writes are
// semi-synchronously shipped to a warm standby, and which fails over to it
// — draining the ack window, fencing the old primary behind an epoch bump,
// and promoting the standby's state in place — when the primary latches
// degraded. Safe for concurrent use.
type Cluster struct {
	cfg   ClusterConfig
	stats metrics.ReplStats

	epoch  atomic.Uint64
	health metrics.Health // cluster-level: stays healthy across a failover

	mu       sync.Mutex
	primary  *tc.TC
	link     *Link
	shipper  *Shipper
	standby  *Standby
	promoted bool

	promoteOnce sync.Once
	promoteErr  error

	stopWatch chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
	closed    atomic.Bool
}

// NewCluster builds the pair, starts shipping, and (with AutoFailover)
// starts the health watcher.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.PrimaryDC == nil || cfg.PrimaryLog == nil {
		return nil, errors.New("repl: cluster needs a primary DC and log device")
	}
	if cfg.StandbyDC == nil || cfg.StandbyLog == nil {
		return nil, errors.New("repl: cluster needs a standby DC and log device")
	}
	if cfg.CommitWait <= 0 {
		cfg.CommitWait = 2 * time.Second
	}
	if cfg.WatchEvery <= 0 {
		cfg.WatchEvery = 2 * time.Millisecond
	}
	if cfg.PromoteDrain <= 0 {
		cfg.PromoteDrain = time.Second
	}
	c := &Cluster{cfg: cfg, stopWatch: make(chan struct{})}
	c.epoch.Store(1)
	// Snapshots of the primary's tracer then report ship volume, lag, and
	// the extra replication leg in the live cost model.
	cfg.Obs.FoldRepl(&c.stats)
	cfg.Obs.FoldHealth(&c.health)

	primary, err := tc.New(tc.Config{
		DC:             cfg.PrimaryDC,
		LogDevice:      cfg.PrimaryLog,
		LogBufferBytes: cfg.LogBufferBytes,
		ReadCacheBytes: cfg.ReadCacheBytes,
		Session:        cfg.Session,
		Retry:          cfg.Retry,
		Obs:            cfg.Obs,
		CommitGate:     c.gateFor(1),
	})
	if err != nil {
		return nil, err
	}
	c.primary = primary

	c.link = NewLink(cfg.Net)
	c.standby = NewStandby(StandbyConfig{
		Link:          c.link,
		LogDevice:     cfg.StandbyLog,
		DC:            cfg.StandbyDC,
		Epoch:         1,
		MaxStaleBytes: cfg.MaxStaleBytes,
		Retain:        cfg.Retain,
		Retry:         cfg.Retry,
		Stats:         &c.stats,
	})
	c.shipper = NewShipper(ShipperConfig{
		TC:         primary,
		Link:       c.link,
		Epoch:      1,
		BatchBytes: cfg.BatchBytes,
		Window:     cfg.Window,
		AckTimeout: cfg.AckTimeout,
		RetryBase:  cfg.RetryBase,
		RetryMax:   cfg.RetryMax,
		Poll:       cfg.Poll,
		Seed:       cfg.Seed,
		Stats:      &c.stats,
	})
	c.standby.Start()
	c.shipper.Start()

	if cfg.AutoFailover {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.watch()
		}()
	}
	return c, nil
}

// gateFor builds the epoch fence installed as a TC's CommitGate: commits
// are admitted only while the cluster's epoch still matches the one the TC
// was created under.
func (c *Cluster) gateFor(epoch uint64) func() error {
	return func() error {
		if c.epoch.Load() != epoch {
			c.stats.FencedWrites.Inc()
			return fmt.Errorf("%w: epoch %d superseded by %d", ErrFenced, epoch, c.epoch.Load())
		}
		return nil
	}
}

// watch promotes as soon as the primary latches degraded.
func (c *Cluster) watch() {
	t := time.NewTicker(c.cfg.WatchEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.mu.Lock()
			p, done := c.primary, c.promoted
			c.mu.Unlock()
			if done {
				return
			}
			if p.Stats().Health.Degraded() {
				c.Promote()
				return
			}
		case <-c.stopWatch:
			return
		}
	}
}

// Stats returns the cluster's shared replication counters.
func (c *Cluster) Stats() *metrics.ReplStats { return &c.stats }

// Epoch returns the current fencing epoch (1 until failover).
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// Promoted reports whether failover has happened.
func (c *Cluster) Promoted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.promoted
}

// Primary returns the TC currently serving writes (the promoted standby's
// TC after failover).
func (c *Cluster) Primary() *tc.TC {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primary
}

// Standby returns the standby half (still readable after promotion; its
// receive loop is stopped).
func (c *Cluster) Standby() *Standby { return c.standby }

// Shipper returns the shipping half (stopped after promotion).
func (c *Cluster) Shipper() *Shipper { return c.shipper }

// StandbyGet serves a stale-bounded read from the standby replica.
func (c *Cluster) StandbyGet(key []byte) ([]byte, bool, error) {
	return c.standby.Get(key)
}

// Promote fails over to the standby: bump the epoch (fencing every commit
// the old primary tries from now on), drain the ack'd window, seal the
// standby, and build a new TC over the standby's state that continues the
// shipped log in place. Idempotent; safe to call concurrently.
func (c *Cluster) Promote() error {
	c.promoteOnce.Do(func() { c.promoteErr = c.promote() })
	return c.promoteErr
}

func (c *Cluster) promote() error {
	old := c.Primary()
	newEpoch := c.epoch.Add(1)

	// Fence first, then drain: after the epoch bump no new commit can
	// enter the old primary's log, so the drain target is final. The
	// flush and drain are best-effort — if the primary's device is gone,
	// only already-durable bytes exist, and everything the cluster ever
	// acknowledged was standby-confirmed at Put time.
	_ = old.Flush()
	_ = c.shipper.Drain(c.cfg.PromoteDrain)
	c.shipper.Stop()
	c.standby.Stop()
	appliedLSN, maxTS := c.standby.Seal(newEpoch)

	replacement, err := tc.New(tc.Config{
		DC:             c.cfg.StandbyDC,
		LogDevice:      c.cfg.StandbyLog,
		LogBufferBytes: c.cfg.LogBufferBytes,
		ReadCacheBytes: c.cfg.ReadCacheBytes,
		Session:        c.cfg.Session,
		Retry:          c.cfg.Retry,
		Obs:            c.cfg.Obs,
		CommitGate:     c.gateFor(newEpoch),
		LogStartLSN:    appliedLSN,
		InitialClock:   maxTS,
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.primary = replacement
	c.promoted = true
	c.mu.Unlock()
	c.stats.Promotions.Inc()
	return nil
}

// failoverWorthy reports whether an operation error should trigger
// promotion: only a latched-degraded primary qualifies. Conflicts,
// fencing, timeouts, and transient I/O errors must not — failing over on
// an ordinary write-write conflict would burn the one standby for nothing.
func failoverWorthy(err error) bool {
	return errors.Is(err, tc.ErrDegraded)
}

// op runs fn against the current primary, failing over and retrying once
// if the primary proves degraded mid-operation.
func (c *Cluster) op(fn func(p *tc.TC) error) error {
	err := fn(c.Primary())
	if err == nil || !c.cfg.AutoFailover {
		return err
	}
	if !failoverWorthy(err) {
		return err
	}
	if perr := c.Promote(); perr != nil {
		return errors.Join(err, perr)
	}
	return fn(c.Primary())
}

// Get serves a read from the current primary.
func (c *Cluster) Get(ctx context.Context, key []byte) (val []byte, ok bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	err = c.op(func(p *tc.TC) error {
		tx, berr := p.Begin()
		if berr != nil {
			return berr
		}
		defer tx.Abort()
		val, ok, err = tx.Read(key)
		return err
	})
	return val, ok, err
}

// Put writes through the current primary, semi-synchronously: it returns
// nil only after the write is durable on the primary AND the standby has
// acknowledged applying the log through it. After failover there is no
// standby left, so writes are single-copy again (like the seed TC).
func (c *Cluster) Put(ctx context.Context, key, val []byte) error {
	return c.write(ctx, func(tx *tc.Tx) error { return tx.Write(key, val) })
}

// Delete removes key with the same semi-synchronous guarantee as Put.
func (c *Cluster) Delete(ctx context.Context, key []byte) error {
	return c.write(ctx, func(tx *tc.Tx) error { return tx.Delete(key) })
}

func (c *Cluster) write(ctx context.Context, mutate func(*tc.Tx) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.op(func(p *tc.TC) error {
		tx, err := p.Begin()
		if err != nil {
			return err
		}
		if err := mutate(tx); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		if err := p.Flush(); err != nil {
			return err
		}
		c.mu.Lock()
		promoted, cur := c.promoted, c.primary
		c.mu.Unlock()
		if promoted {
			if cur != p {
				// The commit raced onto the old primary just before its gate
				// flipped: it exists only on the demoted log and may never
				// have been shipped. Never acknowledge it.
				c.stats.FencedWrites.Inc()
				return fmt.Errorf("%w: write stranded on demoted primary", ErrFenced)
			}
			return nil // single-copy: the pair dissolved at failover
		}
		return c.shipper.WaitShipped(p.DurableLSN(), c.cfg.CommitWait)
	})
}

// Scan runs a snapshot scan on the current primary.
func (c *Cluster) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.op(func(p *tc.TC) error {
		tx, err := p.Begin()
		if err != nil {
			return err
		}
		defer tx.Abort()
		return tx.Scan(start, limit, fn)
	})
}

// Health exposes the cluster-level health: it stays healthy across a
// failover (that is the point of the standby) and latches degraded only
// when no replica can serve — the promoted primary itself latching.
func (c *Cluster) Health() *metrics.Health {
	c.mu.Lock()
	p, promoted := c.primary, c.promoted
	c.mu.Unlock()
	if promoted && p.Stats().Health.Degraded() {
		c.health.Degrade("promoted primary degraded: " + p.Stats().Health.Reason())
	}
	return &c.health
}

// Close stops shipping and both TCs.
func (c *Cluster) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.stopOnce.Do(func() { close(c.stopWatch) })
	c.wg.Wait()
	c.shipper.Stop()
	c.standby.Stop()
	c.link.Close()
	err := c.Primary().Close()
	return err
}
