package repl

import (
	"fmt"
	"sync"

	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/ssd"
	"costperf/internal/tc"
)

// Checkpoint is a recorded (LSN, commit-timestamp) pair the standby can
// replay back to. The retained ring gates PITR: the log prefix below the
// oldest retained checkpoint is eligible for archival and no longer a
// guaranteed recovery target.
type Checkpoint struct {
	LSN int64
	TS  uint64
}

// StandbyConfig configures a Standby.
type StandbyConfig struct {
	// Link delivers frames from the shipper (required).
	Link *Link
	// LogDevice receives the shipped log bytes at primary-identical offsets
	// (required): the standby log is a byte-for-byte prefix of the
	// primary's, so LSNs mean the same thing on both sides.
	LogDevice ssd.Dev
	// DC is the standby's data component (required); shipped records are
	// applied to it with the same blind updates recovery uses.
	DC tc.DataComponent
	// Epoch is the lowest epoch the standby accepts (default 1). Seal
	// raises it, fencing the demoted primary's in-flight frames.
	Epoch uint64
	// MaxStaleBytes bounds Get: reads fail with ErrTooStale when the
	// applied-LSN lag behind the primary's durable LSN exceeds it
	// (0 = serve regardless of lag).
	MaxStaleBytes int64
	// Retain bounds the checkpoint ring (default 8); recording one more
	// drops the oldest and advances the PITR retention floor.
	Retain int
	// Retry bounds the backoff loop around standby log writes; the zero
	// value takes fault.DefaultRetry.
	Retry fault.RetryPolicy
	// Stats, when non-nil, is the shared counter block (nil allocates one).
	Stats *metrics.ReplStats
}

// Standby receives shipped log batches, persists them to its own log
// device, applies them to its data component, and acks. It can serve
// stale-bounded reads, record PITR checkpoints, and be promoted in place.
// Safe for concurrent use.
type Standby struct {
	cfg   StandbyConfig
	stats *metrics.ReplStats

	mu      sync.Mutex
	epoch   uint64
	applied int64  // every log byte below this is persisted and applied
	maxTS   uint64 // highest commit timestamp applied
	durable int64  // primary's durable LSN as of the last frame seen
	cks     []Checkpoint
	sealed  bool
	health  metrics.Health

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewStandby creates a standby; call Start to begin receiving.
func NewStandby(cfg StandbyConfig) *Standby {
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 8
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry = fault.DefaultRetry()
	}
	s := &Standby{
		cfg:   cfg,
		stats: cfg.Stats,
		epoch: cfg.Epoch,
		stop:  make(chan struct{}),
	}
	if s.stats == nil {
		s.stats = &metrics.ReplStats{}
	}
	return s
}

// Stats returns the standby's counter block.
func (s *Standby) Stats() *metrics.ReplStats { return s.stats }

// Health exposes the standby's latched health (degrades when its own log
// device persistently fails).
func (s *Standby) Health() *metrics.Health { return &s.health }

// Start launches the receive loop.
func (s *Standby) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.run()
	}()
}

// Stop halts the receive loop.
func (s *Standby) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

func (s *Standby) run() {
	for {
		select {
		case f := <-s.cfg.Link.Frames():
			if ack, ok := s.Handle(f); ok {
				s.cfg.Link.SendAck(ack)
			}
		case <-s.stop:
			return
		}
	}
}

// AppliedLSN returns the LSN through which the standby has persisted and
// applied the shipped log.
func (s *Standby) AppliedLSN() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// MaxAppliedTS returns the highest commit timestamp applied.
func (s *Standby) MaxAppliedTS() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxTS
}

// LagBytes returns how far the standby trails the primary's durable LSN,
// as of the last frame it saw.
func (s *Standby) LagBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	lag := s.durable - s.applied
	if lag < 0 {
		lag = 0
	}
	return lag
}

// Get serves a read from the standby's data component, bounded by the
// configured staleness: if the applied log trails the primary's durable
// LSN by more than MaxStaleBytes, the read fails with ErrTooStale rather
// than silently returning old data.
func (s *Standby) Get(key []byte) ([]byte, bool, error) {
	if max := s.cfg.MaxStaleBytes; max > 0 {
		if lag := s.LagBytes(); lag > max {
			return nil, false, fmt.Errorf("%w: lag %d > %d bytes", ErrTooStale, lag, max)
		}
	}
	return s.cfg.DC.Get(key)
}

// Handle processes one frame and returns the ack to send (ok=false means
// no response, e.g. after Stop raced a queued frame on a sealed standby —
// never in normal operation). Exported for deterministic tests; the
// receive loop calls it for every delivered frame.
func (s *Standby) Handle(f Frame) (Ack, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Epoch fence: a frame from a demoted primary is refused so its
	// un-drained window can never overwrite post-promotion state.
	if f.Epoch < s.epoch || s.sealed {
		s.stats.FencedFrames.Inc()
		return Ack{Epoch: s.epoch, Applied: s.applied, OK: false, Reason: "fenced"}, true
	}

	if f.Durable > s.durable {
		s.durable = f.Durable
		s.stats.PrimaryDurable.Set(f.Durable)
	}

	// Resync probe: report where we are.
	if f.From < 0 {
		return s.ackLocked(true, ""), true
	}

	switch {
	case f.To <= s.applied:
		// A resend or network duplicate of bytes already applied: absorb
		// and re-ack so the shipper advances.
		s.stats.DupBatches.Inc()
		return s.ackLocked(true, ""), true
	case f.From > s.applied:
		// A gap: an earlier frame was dropped. Nak with our applied LSN so
		// the shipper rewinds there.
		s.stats.GapNaks.Inc()
		return s.ackLocked(false, "gap"), true
	}

	// f.From <= applied < f.To: the frame extends our log. Verify the
	// payload before any of it touches disk or the data component.
	if frameCRC(f.Payload) != f.CRC {
		return s.ackLocked(false, "corrupt"), true
	}
	if f.From+int64(len(f.Payload)) != f.To {
		return s.ackLocked(false, "corrupt"), true
	}

	// Persist first, apply second: once acked, the bytes must survive a
	// standby restart, and replaying them is idempotent (blind writes).
	fresh := f.Payload[s.applied-f.From:] // record-aligned: applied is a batch boundary
	err := s.cfg.Retry.Do(nil, func() error {
		return s.cfg.LogDevice.WriteAt(s.applied, fresh, nil)
	})
	if err != nil {
		// Persistent standby log failure (device full, torn writes):
		// latch degraded and nak — the shipper keeps retrying, the
		// operator sees the latch.
		s.health.Degrade("standby log write: " + err.Error())
		return s.ackLocked(false, "store"), true
	}

	records, maxTS, _, aerr := tc.ApplyLogBytes(fresh, s.cfg.DC)
	if aerr != nil {
		return s.ackLocked(false, "apply"), true
	}
	s.applied = f.To
	if maxTS > s.maxTS {
		s.maxTS = maxTS
	}
	s.stats.BatchesApplied.Inc()
	s.stats.RecordsApplied.Add(int64(records))
	s.stats.BytesApplied.Add(int64(len(fresh)))
	s.stats.AppliedLSN.Set(s.applied)
	return s.ackLocked(true, ""), true
}

func (s *Standby) ackLocked(ok bool, reason string) Ack {
	return Ack{Epoch: s.epoch, Applied: s.applied, OK: ok, Reason: reason}
}

// MarkCheckpoint records the current applied position as a PITR target
// and returns it. The ring keeps the newest Retain checkpoints; the
// oldest retained one is the retention floor below which PITR refuses.
func (s *Standby) MarkCheckpoint() Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck := Checkpoint{LSN: s.applied, TS: s.maxTS}
	s.cks = append(s.cks, ck)
	if len(s.cks) > s.cfg.Retain {
		s.cks = s.cks[len(s.cks)-s.cfg.Retain:]
	}
	return ck
}

// Checkpoints returns the retained checkpoint ring, oldest first.
func (s *Standby) Checkpoints() []Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Checkpoint(nil), s.cks...)
}

// retentionFloor is the oldest retained checkpoint's LSN (0 if none was
// ever recorded: the whole shipped prefix is still replayable).
func (s *Standby) retentionFloorLocked() int64 {
	if len(s.cks) == 0 {
		return 0
	}
	return s.cks[0].LSN
}

// PITRToLSN reconstructs, into dst, the exact state as of the given
// batch-boundary LSN by replaying the standby's shipped log prefix. The
// target must not exceed what has been shipped and applied
// (ErrBeyondApplied) and must not predate the retention floor
// (ErrBeforeRetention).
func (s *Standby) PITRToLSN(lsn int64, dst tc.DataComponent) (tc.RecoverResult, error) {
	s.mu.Lock()
	applied, floor := s.applied, s.retentionFloorLocked()
	s.mu.Unlock()
	if lsn > applied {
		return tc.RecoverResult{}, fmt.Errorf("%w: target %d > applied %d", ErrBeyondApplied, lsn, applied)
	}
	if lsn < floor {
		return tc.RecoverResult{}, fmt.Errorf("%w: target %d < floor %d", ErrBeforeRetention, lsn, floor)
	}
	return tc.RecoverTo(s.cfg.LogDevice, dst, tc.RecoverOpts{MaxLSN: lsn})
}

// PITRToTime reconstructs, into dst, the state as of commit timestamp ts:
// every record with commitTS <= ts, none after. The timestamp must not
// exceed the highest applied one (ErrBeyondApplied), and the reconstructed
// LSN must clear the retention floor.
func (s *Standby) PITRToTime(ts uint64, dst tc.DataComponent) (tc.RecoverResult, error) {
	s.mu.Lock()
	applied, maxTS, floor := s.applied, s.maxTS, s.retentionFloorLocked()
	s.mu.Unlock()
	if ts > maxTS {
		return tc.RecoverResult{}, fmt.Errorf("%w: target ts %d > applied ts %d", ErrBeyondApplied, ts, maxTS)
	}
	res, err := tc.RecoverTo(s.cfg.LogDevice, dst, tc.RecoverOpts{MaxLSN: applied, MaxTS: ts})
	if err != nil {
		return res, err
	}
	if res.Replay.TruncatedAt < floor {
		return res, fmt.Errorf("%w: ts %d resolves to LSN %d < floor %d", ErrBeforeRetention, ts, res.Replay.TruncatedAt, floor)
	}
	return res, nil
}

// Seal promotes the standby's fence to newEpoch and stops accepting
// frames entirely; it returns the applied LSN and highest applied commit
// timestamp — exactly the LogStartLSN and InitialClock a promoted TC
// needs to continue the shipped log in place.
func (s *Standby) Seal(newEpoch uint64) (appliedLSN int64, maxTS uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if newEpoch > s.epoch {
		s.epoch = newEpoch
	}
	s.sealed = true
	return s.applied, s.maxTS
}
