package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"costperf/internal/fault"
	"costperf/internal/ssd"
	"costperf/internal/tc"
)

// mapDC is a trivial data component for tests: a mutex-guarded map that
// also implements tc.Scanner.
type mapDC struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapDC() *mapDC { return &mapDC{m: map[string][]byte{}} }

func (d *mapDC) Get(key []byte) ([]byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.m[string(key)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

func (d *mapDC) BlindWrite(key, val []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m[string(key)] = append([]byte(nil), val...)
	return nil
}

func (d *mapDC) Delete(key []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.m, string(key))
	return nil
}

func (d *mapDC) Scan(start []byte, limit int, fn func(key, val []byte) bool) error {
	d.mu.Lock()
	keys := make([]string, 0, len(d.m))
	for k := range d.m {
		if k >= string(start) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	type kv struct{ k, v []byte }
	var out []kv
	for _, k := range keys {
		out = append(out, kv{[]byte(k), append([]byte(nil), d.m[k]...)})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	d.mu.Unlock()
	for _, p := range out {
		if !fn(p.k, p.v) {
			return nil
		}
	}
	return nil
}

func (d *mapDC) snapshot() map[string][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string][]byte, len(d.m))
	for k, v := range d.m {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

func sameState(t *testing.T, want, got map[string][]byte, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d keys, want %d", label, len(got), len(want))
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("%s: missing key %q", label, k)
		}
		if !bytes.Equal(v, gv) {
			t.Fatalf("%s: key %q = %q, want %q", label, k, gv, v)
		}
	}
}

func newDev(name string) *ssd.Device {
	return ssd.New(ssd.Config{Name: name, MaxIOPS: 1e6, LatencySec: 1e-6})
}

type pair struct {
	c          *Cluster
	primaryDC  *mapDC
	standbyDC  *mapDC
	primaryLog *ssd.Device
	standbyLog *ssd.Device
}

func newPair(t *testing.T, net *fault.NetInjector, tune func(*ClusterConfig)) *pair {
	t.Helper()
	p := &pair{
		primaryDC:  newMapDC(),
		standbyDC:  newMapDC(),
		primaryLog: newDev("plog"),
		standbyLog: newDev("slog"),
	}
	cfg := ClusterConfig{
		PrimaryDC:  p.primaryDC,
		PrimaryLog: p.primaryLog,
		StandbyDC:  p.standbyDC,
		StandbyLog: p.standbyLog,
		Net:        net,
		CommitWait: 5 * time.Second,
		AckTimeout: 5 * time.Millisecond,
		RetryBase:  200 * time.Microsecond,
		RetryMax:   5 * time.Millisecond,
		BatchBytes: 512,
		Seed:       1,
	}
	if tune != nil {
		tune(&cfg)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	p.c = c
	return p
}

func TestClusterConvergence(t *testing.T) {
	p := newPair(t, nil, nil)
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := p.c.Put(ctx, k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 50; i += 2 {
		if err := p.c.Delete(ctx, []byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	// Every Put was acked, so the standby already applied everything.
	sameState(t, p.primaryDC.snapshot(), p.standbyDC.snapshot(), "standby")
	if got, want := p.c.Standby().AppliedLSN(), p.c.Primary().DurableLSN(); got != want {
		t.Fatalf("standby applied %d, want primary durable %d", got, want)
	}
	if p.c.Stats().BatchesShipped.Value() == 0 || p.c.Stats().RecordsApplied.Value() != 225 {
		t.Fatalf("unexpected ship stats: %s", p.c.Stats())
	}
	// Standby reads serve the replicated data within the staleness bound.
	v, ok, err := p.c.StandbyGet([]byte("key-0101"))
	if err != nil || !ok || string(v) != "val-101" {
		t.Fatalf("standby get = %q/%v/%v", v, ok, err)
	}
}

func TestClusterConvergesOverLossyLink(t *testing.T) {
	net := fault.NewNetInjector(7)
	net.SetRates(0.15, 0.10, 0.10)
	p := newPair(t, net, nil)
	ctx := context.Background()
	for i := 0; i < 150; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		if err := p.c.Put(ctx, k, bytes.Repeat([]byte{byte(i)}, 1+i%40)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	sameState(t, p.primaryDC.snapshot(), p.standbyDC.snapshot(), "standby after lossy link")
	st := p.c.Stats()
	if st.Resends.Value() == 0 {
		t.Fatalf("expected resends over a 15%%-drop link: %s", st)
	}
	if ns := net.Stats(); ns.Dropped == 0 || ns.Duplicated == 0 || ns.Held == 0 {
		t.Fatalf("injector exercised nothing: %+v", ns)
	}
	// Duplicates were absorbed, not applied twice.
	if st.RecordsApplied.Value() != 150 {
		t.Fatalf("records applied = %d, want exactly 150: %s", st.RecordsApplied.Value(), st)
	}
}

func TestPartitionTimesOutThenHeals(t *testing.T) {
	net := fault.NewNetInjector(3)
	p := newPair(t, net, func(c *ClusterConfig) { c.CommitWait = 50 * time.Millisecond })
	ctx := context.Background()
	if err := p.c.Put(ctx, []byte("a"), []byte("1")); err != nil {
		t.Fatalf("put before partition: %v", err)
	}
	net.Partition()
	err := p.c.Put(ctx, []byte("b"), []byte("2"))
	if !errors.Is(err, ErrShipTimeout) {
		t.Fatalf("put under partition = %v, want ErrShipTimeout", err)
	}
	net.Heal()
	if err := p.c.Put(ctx, []byte("c"), []byte("3")); err != nil {
		t.Fatalf("put after heal: %v", err)
	}
	// The timed-out write was durable on the primary; once the partition
	// healed the shipper caught the standby up — nothing durable is lost.
	sameState(t, p.primaryDC.snapshot(), p.standbyDC.snapshot(), "standby after heal")
	if v, ok, _ := p.standbyDC.Get([]byte("b")); !ok || string(v) != "2" {
		t.Fatalf("standby missing the timed-out-but-durable write: %q/%v", v, ok)
	}
}

func TestForcedPromotionFencesOldPrimary(t *testing.T) {
	p := newPair(t, nil, nil)
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		if err := p.c.Put(ctx, []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	old := p.c.Primary()
	oldDurable := old.DurableLSN()
	if err := p.c.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if !p.c.Promoted() || p.c.Epoch() != 2 {
		t.Fatalf("promoted=%v epoch=%d, want true/2", p.c.Promoted(), p.c.Epoch())
	}
	// The old primary is fenced: its commits are rejected by the epoch gate.
	tx, err := old.Begin()
	if err != nil {
		t.Fatalf("begin on old primary: %v", err)
	}
	tx.Write([]byte("stale"), []byte("write"))
	if err := tx.Commit(); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-primary commit = %v, want ErrFenced", err)
	}
	if p.c.Stats().FencedWrites.Value() == 0 {
		t.Fatal("fenced write not counted")
	}
	// The new primary serves every acked write and accepts new ones.
	for i := 0; i < 40; i++ {
		v, ok, err := p.c.Get(ctx, []byte(fmt.Sprintf("k%02d", i)))
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("get k%02d after promotion = %q/%v/%v", i, v, ok, err)
		}
	}
	if err := p.c.Put(ctx, []byte("post"), []byte("failover")); err != nil {
		t.Fatalf("put after promotion: %v", err)
	}
	// The promoted TC continued the shipped log in place: new appends land
	// at or after the old durable LSN, keeping history PITR-addressable.
	if got := p.c.Primary().DurableLSN(); got <= oldDurable {
		t.Fatalf("promoted durable LSN %d, want > %d (log continued in place)", got, oldDurable)
	}
	if p.c.Stats().Promotions.Value() != 1 {
		t.Fatalf("promotions = %d, want 1", p.c.Stats().Promotions.Value())
	}
}

func TestAutoFailoverOnDegradedPrimary(t *testing.T) {
	inj := fault.NewInjector(1)
	p := newPair(t, nil, func(c *ClusterConfig) {
		c.AutoFailover = true
		c.WatchEvery = time.Millisecond
	})
	p.primaryLog.SetFaultInjector(inj)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := p.c.Put(ctx, []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Kill the primary's log device persistently: the TC latches degraded,
	// and either the inline ErrDegraded path or the watcher promotes.
	inj.FailNextWrites(1 << 30, fault.ClassPersistent)
	deadline := time.Now().Add(5 * time.Second)
	for !p.c.Promoted() {
		// Keep poking writes: the first few fail while the latch trips.
		_ = p.c.Put(ctx, []byte("poke"), []byte("x"))
		if time.Now().After(deadline) {
			t.Fatal("auto failover never promoted")
		}
		time.Sleep(time.Millisecond)
	}
	// Post-failover the cluster serves reads and writes again.
	if err := p.c.Put(ctx, []byte("after"), []byte("failover")); err != nil {
		t.Fatalf("put after auto failover: %v", err)
	}
	for i := 0; i < 20; i++ {
		v, ok, err := p.c.Get(ctx, []byte(fmt.Sprintf("k%02d", i)))
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("acked write k%02d lost across failover: %q/%v/%v", i, v, ok, err)
		}
	}
	if h := p.c.Health(); h.Degraded() {
		t.Fatalf("cluster health degraded after successful failover: %s", h)
	}
}

func TestStandbyStaleBoundAndFrameVerification(t *testing.T) {
	link := NewLink(nil)
	dc := newMapDC()
	s := NewStandby(StandbyConfig{
		Link: link, LogDevice: newDev("slog"), DC: dc,
		MaxStaleBytes: 100,
	})
	// A probe reporting a far-ahead durable LSN drives the lag over bound.
	ack, _ := s.Handle(Frame{Epoch: 1, From: probeFrom, Durable: 4096})
	if !ack.OK || ack.Applied != 0 {
		t.Fatalf("probe ack = %+v", ack)
	}
	if _, _, err := s.Get([]byte("k")); !errors.Is(err, ErrTooStale) {
		t.Fatalf("stale get = %v, want ErrTooStale", err)
	}
	// A gap frame is nak'd with the applied cursor.
	ack, _ = s.Handle(Frame{Epoch: 1, From: 50, To: 60, Durable: 4096, Payload: make([]byte, 10)})
	if ack.OK || ack.Reason != "gap" || ack.Applied != 0 {
		t.Fatalf("gap ack = %+v", ack)
	}
	// A corrupt payload is nak'd before anything is applied.
	ack, _ = s.Handle(Frame{Epoch: 1, From: 0, To: 10, Durable: 4096, CRC: 0xdeadbeef, Payload: make([]byte, 10)})
	if ack.OK || ack.Reason != "corrupt" {
		t.Fatalf("corrupt ack = %+v", ack)
	}
	// After Seal, frames from the old epoch are fenced.
	s.Seal(2)
	ack, _ = s.Handle(Frame{Epoch: 1, From: probeFrom})
	if ack.OK || ack.Reason != "fenced" || ack.Epoch != 2 {
		t.Fatalf("fenced ack = %+v", ack)
	}
	st := s.Stats()
	if st.GapNaks.Value() != 1 || st.FencedFrames.Value() != 1 {
		t.Fatalf("stats = %s", st)
	}
}

func TestLinkHoldReordersDelivery(t *testing.T) {
	net := fault.NewNetInjector(1)
	net.SetRates(0, 0, 1) // hold everything possible
	l := NewLink(net)
	l.SendFrame(Frame{From: 1}) // held
	l.SendFrame(Frame{From: 2}) // wants hold, slot busy: delivered, then releases 1
	a := <-l.Frames()
	b := <-l.Frames()
	if a.From != 2 || b.From != 1 {
		t.Fatalf("delivery order = %d,%d, want 2,1 (reordered)", a.From, b.From)
	}
}

func TestPITRCheckpointsAndGates(t *testing.T) {
	p := newPair(t, nil, func(c *ClusterConfig) { c.Retain = 2 })
	ctx := context.Background()
	put := func(k, v string) {
		t.Helper()
		if err := p.c.Put(ctx, []byte(k), []byte(v)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	// Phase 1: initial values.
	for i := 0; i < 10; i++ {
		put(fmt.Sprintf("k%02d", i), "a")
	}
	ck1 := p.c.Standby().MarkCheckpoint()
	oracle1 := p.primaryDC.snapshot()
	// Phase 2: overwrite some, delete some, add some.
	for i := 0; i < 5; i++ {
		put(fmt.Sprintf("k%02d", i), "b")
	}
	if err := p.c.Delete(ctx, []byte("k07")); err != nil {
		t.Fatalf("delete: %v", err)
	}
	put("new", "c")
	ck2 := p.c.Standby().MarkCheckpoint()
	oracle2 := p.primaryDC.snapshot()
	// Phase 3: more churn past the last checkpoint.
	put("tail", "d")

	// PITR to each checkpoint reproduces the exact oracle state.
	for _, tc2 := range []struct {
		name   string
		ck     Checkpoint
		oracle map[string][]byte
	}{{"ck1", ck1, oracle1}, {"ck2", ck2, oracle2}} {
		dst := newMapDC()
		res, err := p.c.Standby().PITRToLSN(tc2.ck.LSN, dst)
		if err != nil {
			t.Fatalf("PITRToLSN(%s): %v", tc2.name, err)
		}
		if res.Replay.TruncatedAt != tc2.ck.LSN {
			t.Fatalf("PITR %s reconstructed to %d, want %d", tc2.name, res.Replay.TruncatedAt, tc2.ck.LSN)
		}
		sameState(t, tc2.oracle, dst.snapshot(), "PITR "+tc2.name)

		dst2 := newMapDC()
		if _, err := p.c.Standby().PITRToTime(tc2.ck.TS, dst2); err != nil {
			t.Fatalf("PITRToTime(%s): %v", tc2.name, err)
		}
		sameState(t, tc2.oracle, dst2.snapshot(), "PITR-by-time "+tc2.name)
	}

	// Gates: beyond what shipped, and below the retention floor.
	if _, err := p.c.Standby().PITRToLSN(p.c.Standby().AppliedLSN()+64, newMapDC()); !errors.Is(err, ErrBeyondApplied) {
		t.Fatalf("beyond-applied PITR = %v, want ErrBeyondApplied", err)
	}
	// Retain=2 kept {ck1, ck2}; a third mark evicts ck1, moving the floor.
	p.c.Standby().MarkCheckpoint()
	if got := p.c.Standby().Checkpoints(); len(got) != 2 || got[0].LSN != ck2.LSN {
		t.Fatalf("checkpoint ring = %+v, want oldest = ck2 (%d)", got, ck2.LSN)
	}
	if _, err := p.c.Standby().PITRToLSN(ck1.LSN, newMapDC()); !errors.Is(err, ErrBeforeRetention) {
		t.Fatalf("below-floor PITR = %v, want ErrBeforeRetention", err)
	}
}

// TestShipperResumesAtEveryBatchBoundary is the cursor-resume property
// test: for each seed, the shipper is killed after reaching every single
// batch boundary in the log and restarted cold. The restarted shipper must
// resync off the standby and resume without a gap (final state converges)
// and without double-applying (RecordsApplied counts each commit exactly
// once). Odd seeds run the sweep over a lossy, reordering link.
func TestShipperResumesAtEveryBatchBoundary(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const batchBytes = 256
			primaryDC, standbyDC := newMapDC(), newMapDC()
			plog, slog := newDev("plog"), newDev("slog")
			primary, err := tc.New(tc.Config{DC: primaryDC, LogDevice: plog})
			if err != nil {
				t.Fatalf("tc.New: %v", err)
			}
			// Seed-dependent workload: record sizes vary so batch
			// boundaries land differently per seed.
			commits := 60 + int(seed)*7
			for i := 0; i < commits; i++ {
				tx, err := primary.Begin()
				if err != nil {
					t.Fatalf("begin: %v", err)
				}
				k := []byte(fmt.Sprintf("s%d-k%03d", seed, i))
				v := bytes.Repeat([]byte{byte(i)}, 1+(i*int(seed))%97)
				if err := tx.Write(k, v); err != nil {
					t.Fatalf("write: %v", err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatalf("commit: %v", err)
				}
			}
			if err := primary.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			durable := primary.DurableLSN()

			// Enumerate every batch boundary the shipper will cut.
			var boundaries []int64
			for cur := int64(0); cur < durable; {
				_, end, err := tc.ReadLogBatch(plog, cur, durable, batchBytes)
				if err != nil {
					t.Fatalf("ReadLogBatch: %v", err)
				}
				boundaries = append(boundaries, end)
				cur = end
			}
			if len(boundaries) < 10 {
				t.Fatalf("workload too small: only %d batches", len(boundaries))
			}

			var net *fault.NetInjector
			if seed%2 == 1 {
				net = fault.NewNetInjector(seed)
				net.SetRates(0.10, 0.10, 0.10)
			}
			link := NewLink(net)
			standby := NewStandby(StandbyConfig{Link: link, LogDevice: slog, DC: standbyDC})
			standby.Start()
			defer standby.Stop()

			// Kill the shipper at every batch boundary and restart cold.
			for _, lsn := range boundaries {
				sh := NewShipper(ShipperConfig{
					TC: primary, Link: link, BatchBytes: batchBytes,
					Window: 1, AckTimeout: 5 * time.Millisecond,
					RetryBase: 200 * time.Microsecond, RetryMax: 2 * time.Millisecond,
					Seed: seed, Stats: standby.Stats(),
				})
				sh.Start()
				if err := sh.WaitShipped(lsn, 10*time.Second); err != nil {
					t.Fatalf("WaitShipped(%d): %v", lsn, err)
				}
				sh.Stop() // killed at (or past) this batch boundary
			}

			// No gap: the standby converged to the full durable log.
			if got := standby.AppliedLSN(); got != durable {
				t.Fatalf("standby applied %d, want %d", got, durable)
			}
			sameState(t, primaryDC.snapshot(), standbyDC.snapshot(), "standby after kill sweep")
			// No duplicate application: despite resends and restarts, each
			// commit record was applied exactly once.
			if got := standby.Stats().RecordsApplied.Value(); got != int64(commits) {
				t.Fatalf("records applied = %d, want exactly %d (stats: %s)",
					got, commits, standby.Stats())
			}
			// The standby log is a byte-identical prefix of the primary's.
			pb, err := plog.ReadAt(0, int(durable), nil)
			if err != nil {
				t.Fatalf("read primary log: %v", err)
			}
			sb, err := slog.ReadAt(0, int(durable), nil)
			if err != nil {
				t.Fatalf("read standby log: %v", err)
			}
			if !bytes.Equal(pb, sb) {
				t.Fatal("standby log diverged from primary log bytes")
			}
		})
	}
}
