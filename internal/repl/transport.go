package repl

import (
	"hash/crc32"
	"sync"

	"costperf/internal/fault"
)

// Frame is one shipped batch of recovery-log bytes. From/To are LSNs
// (device offsets) bounding the payload; Durable is the primary's durable
// LSN at ship time, which the standby uses to measure its lag. A Frame
// with a negative From carries no payload: it is the shipper's resync
// probe, asking the standby to report its applied LSN.
type Frame struct {
	Epoch   uint64
	From    int64
	To      int64
	Durable int64
	CRC     uint32 // IEEE CRC over Payload
	Payload []byte
}

// probeFrom marks a resync probe.
const probeFrom = int64(-1)

// frameCRC computes the payload checksum a Frame must carry.
func frameCRC(payload []byte) uint32 { return crc32.ChecksumIEEE(payload) }

// Ack is the standby's response to one frame. Applied is the standby's
// applied LSN after handling it — on a nak this doubles as the resync
// cursor the shipper should back up to.
type Ack struct {
	Epoch   uint64
	Applied int64
	OK      bool
	Reason  string
}

// linkQueue bounds each direction of the in-process link; overflow drops
// the message, like a congested network path, and the shipper's resend
// machinery recovers.
const linkQueue = 128

// Link is the fault-injectable in-process transport between a shipper and
// a standby: two bounded channels with a fault.NetInjector deciding, per
// message, whether to drop, duplicate, or hold (reorder) it. A held
// message is delivered right after the next message in the same direction
// — the minimal reordering a windowed protocol must tolerate. Safe for
// concurrent use.
type Link struct {
	mu     sync.Mutex
	net    *fault.NetInjector
	frames chan Frame
	acks   chan Ack
	heldF  *Frame
	heldA  *Ack
	closed bool
}

// NewLink returns a link; net may be nil for a perfect network.
func NewLink(net *fault.NetInjector) *Link {
	return &Link{
		net:    net,
		frames: make(chan Frame, linkQueue),
		acks:   make(chan Ack, linkQueue),
	}
}

func (l *Link) outcome() fault.NetOutcome {
	if l.net == nil {
		return fault.NetOutcome{}
	}
	return l.net.Outcome()
}

// SendFrame ships a frame toward the standby, subject to network faults.
// The frame crosses the link as bytes: it is serialized through the shared
// framing codec (internal/wire/frame) and decoded on the way in, exactly
// as a socket transport would carry it, so every replication test also
// exercises the codec.
func (l *Link) SendFrame(f Frame) {
	g, err := DecodeShipFrame(EncodeFrame(f))
	if err != nil {
		return // undecodable on arrival: the network ate a torn message
	}
	f = g
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	out := l.outcome()
	if out.Drop {
		return
	}
	if out.Hold && l.heldF == nil {
		cp := f
		l.heldF = &cp
		return
	}
	l.pushFrameLocked(f)
	if out.Dup {
		l.pushFrameLocked(f)
	}
	if l.heldF != nil {
		held := *l.heldF
		l.heldF = nil
		l.pushFrameLocked(held)
	}
}

// SendAck ships an ack toward the shipper, subject to the same faults and
// the same byte-level round trip as SendFrame.
func (l *Link) SendAck(a Ack) {
	b, err := DecodeAck(EncodeAck(a))
	if err != nil {
		return
	}
	a = b
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	out := l.outcome()
	if out.Drop {
		return
	}
	if out.Hold && l.heldA == nil {
		cp := a
		l.heldA = &cp
		return
	}
	l.pushAckLocked(a)
	if out.Dup {
		l.pushAckLocked(a)
	}
	if l.heldA != nil {
		held := *l.heldA
		l.heldA = nil
		l.pushAckLocked(held)
	}
}

func (l *Link) pushFrameLocked(f Frame) {
	select {
	case l.frames <- f:
	default: // queue overflow: the network dropped it
	}
}

func (l *Link) pushAckLocked(a Ack) {
	select {
	case l.acks <- a:
	default:
	}
}

// Frames is the standby's receive channel.
func (l *Link) Frames() <-chan Frame { return l.frames }

// Acks is the shipper's receive channel.
func (l *Link) Acks() <-chan Ack { return l.acks }

// Close makes subsequent sends no-ops (receivers drain what is queued).
func (l *Link) Close() {
	l.mu.Lock()
	l.closed = true
	l.heldF, l.heldA = nil, nil
	l.mu.Unlock()
}
