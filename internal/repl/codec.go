package repl

import (
	"encoding/binary"
	"fmt"

	"costperf/internal/fault"
	"costperf/internal/wire/frame"
)

// Byte codec for the ship link's messages, built on the shared
// length-prefixed CRC framing (internal/wire/frame) that the client-facing
// wire protocol uses too. Link runs every frame and ack through it, so the
// replication suites — including the failover chaos soak — exercise the
// exact serialization a socket transport would carry.
//
// Encoded ship-frame payload layout (inside one frame.Append envelope):
//
//	epoch(8) from(8) to(8) durable(8) crc(4) payload...
//
// Encoded ack payload layout:
//
//	epoch(8) applied(8) ok(1) reason...
const (
	shipFrameHeader = 8 + 8 + 8 + 8 + 4
	ackHeader       = 8 + 8 + 1
)

// ErrBadMessage reports an envelope that decoded cleanly but whose inner
// payload is malformed — corrupt-class, like every framing error.
var ErrBadMessage = fmt.Errorf("repl: malformed link message (%w)", fault.ErrCorrupt)

// EncodeFrame serializes a ship frame into one framed message.
func EncodeFrame(f Frame) []byte {
	inner := make([]byte, shipFrameHeader, shipFrameHeader+len(f.Payload))
	binary.BigEndian.PutUint64(inner[0:8], f.Epoch)
	binary.BigEndian.PutUint64(inner[8:16], uint64(f.From))
	binary.BigEndian.PutUint64(inner[16:24], uint64(f.To))
	binary.BigEndian.PutUint64(inner[24:32], uint64(f.Durable))
	binary.BigEndian.PutUint32(inner[32:36], f.CRC)
	inner = append(inner, f.Payload...)
	return frame.Append(nil, inner)
}

// DecodeShipFrame decodes one framed ship-frame message. Truncated,
// bit-flipped, or oversized inputs yield typed corrupt-class errors.
func DecodeShipFrame(b []byte) (Frame, error) {
	inner, rest, err := frame.Decode(b, 0)
	if err != nil {
		return Frame{}, err
	}
	if len(rest) != 0 || len(inner) < shipFrameHeader {
		return Frame{}, ErrBadMessage
	}
	f := Frame{
		Epoch:   binary.BigEndian.Uint64(inner[0:8]),
		From:    int64(binary.BigEndian.Uint64(inner[8:16])),
		To:      int64(binary.BigEndian.Uint64(inner[16:24])),
		Durable: int64(binary.BigEndian.Uint64(inner[24:32])),
		CRC:     binary.BigEndian.Uint32(inner[32:36]),
	}
	if n := len(inner) - shipFrameHeader; n > 0 {
		f.Payload = append([]byte(nil), inner[shipFrameHeader:]...)
	}
	return f, nil
}

// EncodeAck serializes an ack into one framed message.
func EncodeAck(a Ack) []byte {
	inner := make([]byte, ackHeader, ackHeader+len(a.Reason))
	binary.BigEndian.PutUint64(inner[0:8], a.Epoch)
	binary.BigEndian.PutUint64(inner[8:16], uint64(a.Applied))
	if a.OK {
		inner[16] = 1
	}
	inner = append(inner, a.Reason...)
	return frame.Append(nil, inner)
}

// DecodeAck decodes one framed ack message.
func DecodeAck(b []byte) (Ack, error) {
	inner, rest, err := frame.Decode(b, 0)
	if err != nil {
		return Ack{}, err
	}
	if len(rest) != 0 || len(inner) < ackHeader || inner[16] > 1 {
		return Ack{}, ErrBadMessage
	}
	return Ack{
		Epoch:   binary.BigEndian.Uint64(inner[0:8]),
		Applied: int64(binary.BigEndian.Uint64(inner[8:16])),
		OK:      inner[16] == 1,
		Reason:  string(inner[ackHeader:]),
	}, nil
}
