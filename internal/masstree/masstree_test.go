package masstree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"costperf/internal/sim"
	"costperf/internal/workload"
)

func TestBasicPutGetDelete(t *testing.T) {
	tr := New(nil)
	if _, ok := tr.Get([]byte("a")); ok {
		t.Fatal("empty tree found a key")
	}
	tr.Put([]byte("a"), []byte("1"))
	tr.Put([]byte("b"), []byte("2"))
	if v, ok := tr.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("a = %q,%v", v, ok)
	}
	tr.Put([]byte("a"), []byte("1v2"))
	if v, _ := tr.Get([]byte("a")); string(v) != "1v2" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if !tr.Delete([]byte("a")) {
		t.Fatal("delete reported absent")
	}
	if _, ok := tr.Get([]byte("a")); ok {
		t.Fatal("deleted key found")
	}
	if tr.Delete([]byte("a")) {
		t.Fatal("double delete reported present")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestLongKeysCreateLayers(t *testing.T) {
	tr := New(nil)
	// Keys sharing the first 8 bytes force a second trie layer.
	tr.Put([]byte("prefix00-alpha"), []byte("A"))
	tr.Put([]byte("prefix00-beta"), []byte("B"))
	tr.Put([]byte("prefix00"), []byte("C")) // exactly one slice
	if tr.Stats().Layers.Value() == 0 {
		t.Fatal("no layers created for shared 8-byte prefix")
	}
	for k, want := range map[string]string{
		"prefix00-alpha": "A", "prefix00-beta": "B", "prefix00": "C",
	} {
		if v, ok := tr.Get([]byte(k)); !ok || string(v) != want {
			t.Fatalf("%q = %q,%v want %q", k, v, ok, want)
		}
	}
	if _, ok := tr.Get([]byte("prefix00-gamma")); ok {
		t.Fatal("absent deep key found")
	}
	// Deleting the deep keys unlinks the sub-layer.
	tr.Delete([]byte("prefix00-alpha"))
	tr.Delete([]byte("prefix00-beta"))
	if v, ok := tr.Get([]byte("prefix00")); !ok || string(v) != "C" {
		t.Fatalf("shallow key lost after sub-layer deletes: %q,%v", v, ok)
	}
}

func TestEmptyAndZeroKeys(t *testing.T) {
	tr := New(nil)
	tr.Put([]byte{}, []byte("empty"))
	tr.Put([]byte{0}, []byte("zero"))
	tr.Put([]byte{0, 0}, []byte("zerozero"))
	if v, ok := tr.Get([]byte{}); !ok || string(v) != "empty" {
		t.Fatalf("empty key = %q,%v", v, ok)
	}
	if v, ok := tr.Get([]byte{0}); !ok || string(v) != "zero" {
		t.Fatalf("zero key = %q,%v", v, ok)
	}
	if v, ok := tr.Get([]byte{0, 0}); !ok || string(v) != "zerozero" {
		t.Fatalf("zerozero key = %q,%v", v, ok)
	}
}

func TestManyKeysAndScanOrder(t *testing.T) {
	tr := New(nil)
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Put(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 24))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(workload.Key(uint64(i)))
		if !ok || !bytes.Equal(v, workload.ValueFor(uint64(i), 24)) {
			t.Fatalf("key %d wrong (ok=%v)", i, ok)
		}
	}
	var prev []byte
	count := 0
	tr.Scan(nil, 0, func(k, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order")
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan visited %d, want %d", count, n)
	}
}

func TestScanStartLimitMixedLengths(t *testing.T) {
	tr := New(nil)
	keys := []string{"a", "ab", "abcdefgh", "abcdefghx", "abcdefghy", "b", "prefix00-a", "prefix00-b", "z"}
	for _, k := range keys {
		tr.Put([]byte(k), []byte("v:"+k))
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	// Full scan order.
	var got []string
	tr.Scan(nil, 0, func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != len(sorted) {
		t.Fatalf("scan = %v, want %v", got, sorted)
	}
	for i := range sorted {
		if got[i] != sorted[i] {
			t.Fatalf("scan[%d] = %q, want %q (full %v)", i, got[i], sorted[i], got)
		}
	}
	// Bounded scan from a key inside a deep layer.
	got = nil
	tr.Scan([]byte("abcdefghy"), 3, func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"abcdefghy", "b", "prefix00-a"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("bounded scan = %v, want %v", got, want)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 100; i++ {
		tr.Put(workload.Key(uint64(i)), []byte("v"))
	}
	n := 0
	tr.Scan(nil, 0, func(_, _ []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

// Model-based equivalence with a Go map.
func TestOrderedMapEquivalence(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
		Val  uint16
	}
	f := func(ops []op) bool {
		tr := New(nil)
		model := map[string]string{}
		for _, o := range ops {
			// Vary key length to exercise layers.
			k := fmt.Sprintf("key-%05d", o.Key%300)
			if o.Key%3 == 0 {
				k = fmt.Sprintf("sharedprefix-%05d-long-suffix-%d", o.Key%50, o.Key%7)
			}
			v := fmt.Sprintf("val-%d", o.Val)
			switch o.Kind % 3 {
			case 0:
				tr.Put([]byte(k), []byte(v))
				model[k] = v
			case 1:
				tr.Delete([]byte(k))
				delete(model, k)
			case 2:
				got, ok := tr.Get([]byte(k))
				want, wok := model[k]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		okAll := true
		tr.Scan(nil, 0, func(k, v []byte) bool {
			if i >= len(keys) || string(k) != keys[i] || string(v) != model[keys[i]] {
				okAll = false
				return false
			}
			i++
			return true
		})
		return okAll && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 1000; i++ {
		tr.Put(workload.Key(uint64(i)), []byte("init"))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				id := uint64(rng.Intn(1000))
				if w%2 == 0 {
					tr.Put(workload.Key(id), []byte(fmt.Sprintf("w%d", w)))
				} else {
					tr.Get(workload.Key(id))
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d after concurrent ops", tr.Len())
	}
}

func TestFootprintGrowsAndShrinks(t *testing.T) {
	tr := New(nil)
	base := tr.FootprintBytes()
	for i := 0; i < 1000; i++ {
		tr.Put(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64))
	}
	grown := tr.FootprintBytes()
	if grown <= base {
		t.Fatal("footprint did not grow")
	}
	if grown < 1000*(8+64) {
		t.Fatalf("footprint %d below raw data", grown)
	}
	for i := 0; i < 1000; i++ {
		tr.Delete(workload.Key(uint64(i)))
	}
	if tr.FootprintBytes() >= grown {
		t.Fatal("footprint did not shrink after deletes")
	}
}

func TestMemoryExpansionExceedsBwTreeStyleBase(t *testing.T) {
	// The trie stores fixed-fanout nodes and per-entry overhead; its
	// footprint per byte of data should exceed 1 (the M_x > 1 regime of
	// paper Section 5.1).
	tr := New(nil)
	const n = 5000
	raw := 0
	for i := 0; i < n; i++ {
		k := workload.Key(uint64(i))
		v := workload.ValueFor(uint64(i), 32)
		tr.Put(k, v)
		raw += len(k) + len(v)
	}
	if got := float64(tr.FootprintBytes()) / float64(raw); got <= 1 {
		t.Fatalf("expansion = %v, want > 1", got)
	}
}

func TestCostAccounting(t *testing.T) {
	sess := sim.NewSession(sim.DefaultCosts())
	tr := New(sess)
	for i := 0; i < 1000; i++ {
		tr.Put(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 32))
	}
	sess.Tracker().Reset()
	for i := 0; i < 500; i++ {
		tr.Get(workload.Key(uint64(i)))
	}
	tk := sess.Tracker()
	if tk.Ops(sim.OpMM) != 500 {
		t.Fatalf("MM ops = %d, want 500", tk.Ops(sim.OpMM))
	}
	if tk.Ops(sim.OpSS) != 0 {
		t.Fatal("main-memory store recorded SS ops")
	}
	if tk.MeanCost(sim.OpMM) <= 0 {
		t.Fatal("no cost recorded")
	}
}

func TestSliceRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) > 8 {
			raw = raw[:8]
		}
		sk, _ := cut(raw)
		return bytes.Equal(sliceToBytes(sk), raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlicedKeyOrderMatchesByteOrder(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > 8 {
			a = a[:8]
		}
		if len(b) > 8 {
			b = b[:8]
		}
		ska, _ := cut(a)
		skb, _ := cut(b)
		cmp := bytes.Compare(a, b)
		switch {
		case cmp < 0:
			return ska.less(skb)
		case cmp > 0:
			return skb.less(ska)
		default:
			return ska.equal(skb)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
