// Package masstree implements a MassTree (Mao, Kohler, Morris, EuroSys
// 2012) — the main-memory key-value store the paper compares the Bw-tree
// against (Section 5).
//
// Structure follows the original: a trie of B+tree layers, where each
// layer indexes one 8-byte slice of the key. Keys that share their first
// 8·h bytes meet in layer h; border (leaf) nodes store key suffixes inline
// and spawn a deeper layer only when two keys share a full slice but
// differ later. Entries within a layer are ordered by (keyslice,
// slice-length), which equals byte-lexicographic order of the original
// keys.
//
// Simplifications relative to the C++ original, documented in DESIGN.md:
// concurrency uses a readers-writer lock per tree instead of optimistic
// node versioning (reads still proceed concurrently), and border nodes are
// Go slices rather than permutation-encoded arrays. Neither changes the
// cost-model quantities measured from this implementation: the memory
// expansion M_x (pointer-rich trie nodes, fixed fanout, inline suffixes)
// and the execution advantage P_x (no mapping-table indirection, no delta
// chains) are structural.
package masstree

import (
	"bytes"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/sim"
)

// fanout is the maximum entries per node (the original uses 15).
const fanout = 15

// slicedKey is one 8-byte slice of a key plus the number of key bytes it
// represents (0..8). Ordering by (slice, length) equals lexicographic
// ordering of the underlying bytes because short slices are zero-padded.
type slicedKey struct {
	slice  uint64
	length uint8
}

func (a slicedKey) less(b slicedKey) bool {
	if a.slice != b.slice {
		return a.slice < b.slice
	}
	return a.length < b.length
}

func (a slicedKey) equal(b slicedKey) bool {
	return a.slice == b.slice && a.length == b.length
}

// cut splits a key into its first slice and the remainder.
func cut(key []byte) (slicedKey, []byte) {
	var buf [8]byte
	n := copy(buf[:], key)
	return slicedKey{slice: binary.BigEndian.Uint64(buf[:]), length: uint8(n)}, key[min(n, len(key)):]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// entry is one border-node slot: either a value (with the key's remaining
// suffix stored inline) or a link to the next trie layer.
type entry struct {
	key    slicedKey
	suffix []byte // remaining key bytes beyond this slice (value entries)
	val    []byte
	link   *layer // non-nil for layer links; val/suffix unused then
}

// border is a leaf node of a layer's B+tree.
type border struct {
	entries []entry
}

// interior is an internal node: children[i] covers keys < keys[i].
type interior struct {
	keys     []slicedKey
	children []node
}

type node interface{ isNode() }

func (*border) isNode()   {}
func (*interior) isNode() {}

// layer is one trie layer: a B+tree over slicedKeys.
type layer struct {
	root node
}

func newLayer() *layer { return &layer{root: &border{}} }

// Memory accounting approximations (bytes). The original masstree
// allocates fixed-width nodes — 15 slots of keyslice + permutation +
// pointer regardless of fill — so node overhead is charged at full width;
// per-entry overhead covers the suffix/value slice headers.
const (
	entryOverhead  = 48             // per-entry slice headers + value box
	borderOverhead = 64 + fanout*40 // fixed-width border node
	layerOverhead  = 48
)

// Stats counts tree events.
type Stats struct {
	Gets    metrics.Counter
	Puts    metrics.Counter
	Deletes metrics.Counter
	Scans   metrics.Counter
	Layers  metrics.Counter
	Splits  metrics.Counter
}

// Tree is a MassTree. All methods are safe for concurrent use; reads take
// a shared lock and proceed concurrently.
type Tree struct {
	mu      sync.RWMutex
	top     *layer
	session *sim.Session
	obs     *obs.Tracer
	stats   Stats
	mem     atomic.Int64
	count   atomic.Int64
}

// New creates an empty tree. session enables execution-cost accounting
// (may be nil).
func New(session *sim.Session) *Tree {
	t := &Tree{top: newLayer(), session: session}
	t.mem.Store(layerOverhead + borderOverhead)
	return t
}

// Stats returns the tree's counters.
func (t *Tree) Stats() *Stats { return &t.stats }

// SetObs installs a tracer receiving one span per operation (see
// internal/obs). MassTree is a pure main-memory structure, so its spans
// are always hits — they anchor the measured MM op latency (the paper's
// 1/ROPS) that SS-touching stores are compared against. Nil disables.
func (t *Tree) SetObs(tr *obs.Tracer) { t.obs = tr }

// Len returns the number of live keys.
func (t *Tree) Len() int { return int(t.count.Load()) }

// FootprintBytes returns the approximate main-memory footprint — the M_x
// numerator of paper Section 5.1.
func (t *Tree) FootprintBytes() int64 { return t.mem.Load() }

func (t *Tree) begin() *sim.Charger {
	if t.session == nil {
		return nil
	}
	return t.session.Begin()
}

func chase(ch *sim.Charger, n int) {
	if ch != nil {
		ch.Chase(n)
	}
}

func compare(ch *sim.Charger, n int) {
	if ch != nil {
		ch.Compare(n)
	}
}

// Get returns the value stored for key.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	sp := t.obs.Start(obs.OpGet)
	defer sp.End(nil)
	ch := t.begin()
	t.mu.RLock()
	val, ok := t.top.get(key, ch)
	t.mu.RUnlock()
	t.stats.Gets.Inc()
	if ch != nil {
		if ok {
			ch.Copy(len(val))
		}
		ch.Settle()
	}
	return val, ok
}

func (l *layer) get(key []byte, ch *sim.Charger) ([]byte, bool) {
	sk, rest := cut(key)
	b := l.descend(sk, ch)
	i := b.search(sk, ch)
	if i < 0 {
		return nil, false
	}
	e := &b.entries[i]
	if e.link != nil {
		chase(ch, 1)
		return e.link.get(rest, ch)
	}
	compare(ch, 1)
	if !bytes.Equal(e.suffix, rest) {
		return nil, false
	}
	return e.val, true
}

// descend walks the layer's B+tree to the border responsible for sk.
func (l *layer) descend(sk slicedKey, ch *sim.Charger) *border {
	n := l.root
	for {
		switch v := n.(type) {
		case *border:
			return v
		case *interior:
			i := sort.Search(len(v.keys), func(i int) bool { return sk.less(v.keys[i]) })
			// Cache-crafted node: fixed-fanout uint64 keyslice search within
			// prefetched cache lines (the masstree design point).
			compare(ch, 1)
			chase(ch, 1)
			n = v.children[i]
		}
	}
}

// search returns the index of the entry matching sk, or -1.
func (b *border) search(sk slicedKey, ch *sim.Charger) int {
	i := sort.Search(len(b.entries), func(i int) bool { return !b.entries[i].key.less(sk) })
	compare(ch, 2)
	if i < len(b.entries) && b.entries[i].key.equal(sk) {
		return i
	}
	return -1
}

// Put inserts or overwrites key -> val.
func (t *Tree) Put(key, val []byte) {
	sp := t.obs.Start(obs.OpPut)
	defer sp.End(nil)
	key = append([]byte(nil), key...)
	val = append([]byte(nil), val...)
	ch := t.begin()
	t.mu.Lock()
	added, memDelta := t.top.put(key, val, ch, &t.stats)
	t.mu.Unlock()
	t.stats.Puts.Inc()
	t.mem.Add(int64(memDelta))
	if added {
		t.count.Add(1)
	}
	if ch != nil {
		ch.Copy(len(key) + len(val))
		ch.Settle()
	}
}

// put returns (newKey, memoryDelta).
func (l *layer) put(key, val []byte, ch *sim.Charger, st *Stats) (bool, int) {
	sk, rest := cut(key)
	b := l.descend(sk, ch)
	i := b.search(sk, ch)
	if i >= 0 {
		e := &b.entries[i]
		if e.link != nil {
			chase(ch, 1)
			return e.link.put(rest, val, ch, st)
		}
		if bytes.Equal(e.suffix, rest) {
			delta := len(val) - len(e.val)
			e.val = val
			return false, delta
		}
		// Two keys share this full slice but differ in their suffixes:
		// create the next trie layer and push both down (the masstree
		// layer-creation rule).
		nl := newLayer()
		st.Layers.Inc()
		_, d1 := nl.put(e.suffix, e.val, ch, st)
		_, d2 := nl.put(rest, val, ch, st)
		freed := len(e.suffix) + len(e.val)
		e.suffix, e.val, e.link = nil, nil, nl
		return true, layerOverhead + borderOverhead + d1 + d2 - freed
	}
	// New entry in this layer.
	ne := entry{key: sk, suffix: append([]byte(nil), rest...), val: val}
	delta := entryOverhead + len(ne.suffix) + len(val)
	delta += l.insert(ne, ch, st)
	return true, delta
}

// insert adds an entry to the layer's B+tree, splitting as needed.
// It returns the extra memory consumed by structural growth.
func (l *layer) insert(ne entry, ch *sim.Charger, st *Stats) int {
	grown := 0
	split, sepKey, right := insertRec(l.root, ne, ch, st, &grown)
	if split {
		l.root = &interior{keys: []slicedKey{sepKey}, children: []node{l.root, right}}
		grown += borderOverhead
	}
	return grown
}

// insertRec inserts into the subtree rooted at n. If the node splits it
// returns (true, separator, rightSibling).
func insertRec(n node, ne entry, ch *sim.Charger, st *Stats, grown *int) (bool, slicedKey, node) {
	switch v := n.(type) {
	case *border:
		i := sort.Search(len(v.entries), func(i int) bool { return !v.entries[i].key.less(ne.key) })
		compare(ch, 4)
		v.entries = append(v.entries, entry{})
		copy(v.entries[i+1:], v.entries[i:])
		v.entries[i] = ne
		if len(v.entries) <= fanout {
			return false, slicedKey{}, nil
		}
		st.Splits.Inc()
		m := len(v.entries) / 2
		right := &border{entries: append([]entry(nil), v.entries[m:]...)}
		v.entries = v.entries[:m]
		*grown += borderOverhead
		return true, right.entries[0].key, right
	case *interior:
		i := sort.Search(len(v.keys), func(i int) bool { return ne.key.less(v.keys[i]) })
		compare(ch, 4)
		chase(ch, 1)
		split, sep, right := insertRec(v.children[i], ne, ch, st, grown)
		if !split {
			return false, slicedKey{}, nil
		}
		v.keys = append(v.keys, slicedKey{})
		copy(v.keys[i+1:], v.keys[i:])
		v.keys[i] = sep
		v.children = append(v.children, nil)
		copy(v.children[i+2:], v.children[i+1:])
		v.children[i+1] = right
		if len(v.keys) <= fanout {
			return false, slicedKey{}, nil
		}
		st.Splits.Inc()
		m := len(v.keys) / 2
		sepUp := v.keys[m]
		ri := &interior{
			keys:     append([]slicedKey(nil), v.keys[m+1:]...),
			children: append([]node(nil), v.children[m+1:]...),
		}
		v.keys = v.keys[:m]
		v.children = v.children[:m+1]
		*grown += borderOverhead
		return true, sepUp, ri
	}
	return false, slicedKey{}, nil
}

// Delete removes key, returning whether it was present. Border nodes are
// not rebalanced (lazy deletion, as in the original's common case); empty
// sub-layers are unlinked when their last key disappears.
func (t *Tree) Delete(key []byte) bool {
	sp := t.obs.Start(obs.OpDelete)
	defer sp.End(nil)
	ch := t.begin()
	t.mu.Lock()
	removed, memDelta := t.top.del(key, ch)
	t.mu.Unlock()
	t.stats.Deletes.Inc()
	t.mem.Add(int64(memDelta))
	if removed {
		t.count.Add(-1)
	}
	if ch != nil {
		ch.Settle()
	}
	return removed
}

func (l *layer) del(key []byte, ch *sim.Charger) (bool, int) {
	sk, rest := cut(key)
	b := l.descend(sk, ch)
	i := b.search(sk, ch)
	if i < 0 {
		return false, 0
	}
	e := &b.entries[i]
	if e.link != nil {
		chase(ch, 1)
		removed, delta := e.link.del(rest, ch)
		if removed && e.link.empty() {
			delta -= layerOverhead + borderOverhead
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			delta -= entryOverhead
		}
		return removed, delta
	}
	compare(ch, 1)
	if !bytes.Equal(e.suffix, rest) {
		return false, 0
	}
	freed := entryOverhead + len(e.suffix) + len(e.val)
	b.entries = append(b.entries[:i], b.entries[i+1:]...)
	return true, -freed
}

func (l *layer) empty() bool {
	b, ok := l.root.(*border)
	return ok && len(b.entries) == 0
}
