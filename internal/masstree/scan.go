package masstree

import (
	"bytes"
	"sort"

	"costperf/internal/obs"
	"costperf/internal/sim"
)

// Scan visits key/value pairs in ascending byte order starting at start
// (inclusive), calling fn until it returns false or limit pairs have been
// visited (limit <= 0 means unlimited). The scan holds a shared lock, so
// it observes a consistent snapshot.
func (t *Tree) Scan(start []byte, limit int, fn func(key, val []byte) bool) {
	sp := t.obs.Start(obs.OpScan)
	defer sp.End(nil)
	ch := t.begin()
	t.mu.RLock()
	visited := 0
	t.top.scan(nil, start, limit, &visited, fn, ch)
	t.mu.RUnlock()
	t.stats.Scans.Inc()
	if ch != nil {
		ch.Settle()
	}
}

// scan walks the layer in order. prefix is the key bytes consumed by outer
// layers; start is the remaining lower bound within this layer (nil = from
// the beginning).
func (l *layer) scan(prefix, start []byte, limit int, visited *int, fn func(k, v []byte) bool, ch *sim.Charger) bool {
	var startSK slicedKey
	if len(start) > 0 {
		startSK, _ = cut(start)
	}
	return scanNode(l.root, prefix, start, startSK, limit, visited, fn, ch)
}

func scanNode(n node, prefix, start []byte, startSK slicedKey, limit int, visited *int, fn func(k, v []byte) bool, ch *sim.Charger) bool {
	switch v := n.(type) {
	case *interior:
		i := 0
		if len(start) > 0 {
			i = sort.Search(len(v.keys), func(i int) bool { return startSK.less(v.keys[i]) })
			compare(ch, 4)
		}
		for ; i < len(v.children); i++ {
			chase(ch, 1)
			if !scanNode(v.children[i], prefix, start, startSK, limit, visited, fn, ch) {
				return false
			}
		}
		return true
	case *border:
		for i := range v.entries {
			e := &v.entries[i]
			if len(start) > 0 && e.key.less(startSK) {
				continue // strictly before the bound's slice
			}
			sliceBytes := sliceToBytes(e.key)
			if e.link != nil {
				// Keys below share prefix+sliceBytes. Propagate the
				// remaining bound only when the bound lies inside this
				// exact slice.
				var sub []byte
				if len(start) > 0 && e.key.equal(startSK) {
					_, sub = cut(start)
				}
				if !e.link.scan(append(append([]byte(nil), prefix...), sliceBytes...), sub, limit, visited, fn, ch) {
					return false
				}
				continue
			}
			full := make([]byte, 0, len(prefix)+len(sliceBytes)+len(e.suffix))
			full = append(full, prefix...)
			full = append(full, sliceBytes...)
			full = append(full, e.suffix...)
			if len(start) > 0 && e.key.equal(startSK) && bytes.Compare(fullSuffix(e), start) < 0 {
				continue // same slice but below the bound
			}
			if limit > 0 && *visited >= limit {
				return false
			}
			if !fn(full, e.val) {
				return false
			}
			*visited++
			if limit > 0 && *visited >= limit {
				return false
			}
		}
		return true
	}
	return true
}

// fullSuffix reconstructs the key bytes from this layer downward for an
// in-slice bound comparison.
func fullSuffix(e *entry) []byte {
	sb := sliceToBytes(e.key)
	out := make([]byte, 0, len(sb)+len(e.suffix))
	out = append(out, sb...)
	out = append(out, e.suffix...)
	return out
}

// sliceToBytes converts a slicedKey back to its original bytes.
func sliceToBytes(sk slicedKey) []byte {
	var buf [8]byte
	buf[0] = byte(sk.slice >> 56)
	buf[1] = byte(sk.slice >> 48)
	buf[2] = byte(sk.slice >> 40)
	buf[3] = byte(sk.slice >> 32)
	buf[4] = byte(sk.slice >> 24)
	buf[5] = byte(sk.slice >> 16)
	buf[6] = byte(sk.slice >> 8)
	buf[7] = byte(sk.slice)
	return buf[:sk.length]
}
