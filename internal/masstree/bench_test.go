package masstree

import (
	"sync/atomic"
	"testing"

	"costperf/internal/workload"
)

func loadMT(b *testing.B, n uint64) *Tree {
	b.Helper()
	tr := New(nil)
	for i := uint64(0); i < n; i++ {
		tr.Put(workload.Key(i), workload.ValueFor(i, 100))
	}
	return tr
}

func BenchmarkGet(b *testing.B) {
	const keys = 100000
	tr := loadMT(b, keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(workload.Key(uint64(i) % keys))
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New(nil)
	val := workload.ValueFor(1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(workload.Key(uint64(i)), val)
	}
}

func BenchmarkPutLongSharedPrefixes(b *testing.B) {
	// Exercises trie-layer creation: keys share their first 16 bytes.
	tr := New(nil)
	val := []byte("v")
	prefix := []byte("sharedprefixpart")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := append(append([]byte(nil), prefix...), workload.Key(uint64(i))...)
		tr.Put(key, val)
	}
}

func BenchmarkScan100(b *testing.B) {
	const keys = 100000
	tr := loadMT(b, keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.Scan(workload.Key(uint64(i)%(keys-200)), 100, func(_, _ []byte) bool {
			n++
			return true
		})
	}
}

func BenchmarkGetParallel(b *testing.B) {
	const keys = 100000
	tr := loadMT(b, keys)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			tr.Get(workload.Key(uint64(i) % keys))
		}
	})
}
