package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"costperf/internal/metrics"
	"costperf/internal/ssd"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassNone},
		{ErrTransient, ClassTransient},
		{fmt.Errorf("wrapped: %w", ErrTransient), ClassTransient},
		{ssd.ErrInjectedRead, ClassTransient},
		{ssd.ErrInjectedWrite, ClassTransient},
		{ErrPersistent, ClassPersistent},
		{ErrCrashed, ClassPersistent},
		{ssd.ErrClosed, ClassPersistent},
		{ssd.ErrNoSpace, ClassPersistent},
		{fmt.Errorf("log: %w", ssd.ErrNoSpace), ClassPersistent},
		{errors.New("mystery"), ClassPersistent},
		{fmt.Errorf("store: bad frame (%w)", ErrCorrupt), ClassCorrupt},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryAbsorbsTransient(t *testing.T) {
	var m metrics.RetryStats
	fails := 2
	err := DefaultRetry().Do(&m, func() error {
		if fails > 0 {
			fails--
			return ErrTransient
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if m.Attempts.Value() != 3 || m.Retries.Value() != 2 || m.Absorbed.Value() != 1 {
		t.Fatalf("meter = %s, want attempts=3 retries=2 absorbed=1", m.String())
	}
	if m.BackoffMicros.Value() <= 0 {
		t.Fatalf("expected backoff time to be metered, got %d", m.BackoffMicros.Value())
	}
}

func TestRetryStopsOnPersistent(t *testing.T) {
	var m metrics.RetryStats
	calls := 0
	err := DefaultRetry().Do(&m, func() error {
		calls++
		return ErrPersistent
	})
	if !errors.Is(err, ErrPersistent) {
		t.Fatalf("Do = %v, want ErrPersistent", err)
	}
	if calls != 1 {
		t.Fatalf("persistent error retried: %d calls", calls)
	}
	if m.Retries.Value() != 0 || m.Exhausted.Value() != 0 {
		t.Fatalf("meter = %s, want no retries", m.String())
	}
}

func TestRetryExhaustion(t *testing.T) {
	var m metrics.RetryStats
	p := RetryPolicy{MaxAttempts: 3}
	calls := 0
	err := p.Do(&m, func() error {
		calls++
		return ErrTransient
	})
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("Do = %v, want ErrTransient", err)
	}
	if calls != 3 {
		t.Fatalf("got %d attempts, want 3", calls)
	}
	if m.Exhausted.Value() != 1 || m.Absorbed.Value() != 0 {
		t.Fatalf("meter = %s, want exhausted=1", m.String())
	}
}

func TestRetryNilMeter(t *testing.T) {
	if err := DefaultRetry().Do(nil, func() error { return nil }); err != nil {
		t.Fatalf("Do with nil meter: %v", err)
	}
}

func newDev() *ssd.Device {
	return ssd.New(ssd.Config{Name: "test", MaxIOPS: 1e6, LatencySec: 1e-6})
}

func TestInjectorScheduledFailures(t *testing.T) {
	dev := newDev()
	in := NewInjector(1)
	dev.SetFaultInjector(in)
	in.FailWrite(2, ClassTransient)
	in.FailRead(1, ClassPersistent)

	if err := dev.WriteAt(0, []byte("aaaa"), nil); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	err := dev.WriteAt(4, []byte("bbbb"), nil)
	if !IsTransient(err) {
		t.Fatalf("write 2 = %v, want transient", err)
	}
	if err := dev.WriteAt(4, []byte("bbbb"), nil); err != nil {
		t.Fatalf("write 3 (retry): %v", err)
	}
	_, err = dev.ReadAt(0, 4, nil)
	if Classify(err) != ClassPersistent {
		t.Fatalf("read 1 = %v, want persistent", err)
	}
	got, err := dev.ReadAt(0, 8, nil)
	if err != nil || string(got) != "aaaabbbb" {
		t.Fatalf("read 2 = %q, %v", got, err)
	}
}

func TestInjectorFailNextCounters(t *testing.T) {
	dev := newDev()
	in := NewInjector(1)
	dev.SetFaultInjector(in)
	if err := dev.WriteAt(0, []byte("data"), nil); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	in.FailNextReads(2, ClassTransient)
	for i := 0; i < 2; i++ {
		if _, err := dev.ReadAt(0, 4, nil); !IsTransient(err) {
			t.Fatalf("read %d = %v, want transient", i, err)
		}
	}
	if _, err := dev.ReadAt(0, 4, nil); err != nil {
		t.Fatalf("read after budget: %v", err)
	}
}

func TestInjectorTearWriteSilent(t *testing.T) {
	dev := newDev()
	in := NewInjector(1)
	dev.SetFaultInjector(in)
	in.TearWrite(1, 3)
	if err := dev.WriteAt(0, []byte{1, 2, 3, 4, 5, 6}, nil); err != nil {
		t.Fatalf("torn write should report success, got %v", err)
	}
	got, err := dev.ReadAt(0, 6, nil)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	want := []byte{1, 2, 3, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("torn write persisted %v, want %v", got, want)
		}
	}
}

func TestInjectorCrashAtWrite(t *testing.T) {
	dev := newDev()
	in := NewInjector(1)
	dev.SetFaultInjector(in)
	in.CrashAtWrite(2, 2)

	if err := dev.WriteAt(0, []byte("good"), nil); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	err := dev.WriteAt(4, []byte("doom"), nil)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write = %v, want ErrCrashed", err)
	}
	if !in.Crashed() {
		t.Fatal("injector should report crashed")
	}
	if _, err := dev.ReadAt(0, 4, nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read = %v, want ErrCrashed", err)
	}
	if err := dev.WriteAt(8, []byte("more"), nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v, want ErrCrashed", err)
	}

	in.Repair()
	if in.Crashed() {
		t.Fatal("Repair should clear the crash state")
	}
	got, err := dev.ReadAt(0, 8, nil)
	if err != nil {
		t.Fatalf("post-repair read: %v", err)
	}
	want := []byte{'g', 'o', 'o', 'd', 'd', 'o', 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("surviving bytes = %v, want %v (torn prefix only)", got, want)
		}
	}
}

func TestInjectorBitFlip(t *testing.T) {
	dev := newDev()
	in := NewInjector(1)
	dev.SetFaultInjector(in)
	in.FlipBitOnRead(1, 0)
	if err := dev.WriteAt(0, []byte{0x00, 0xFF}, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := dev.ReadAt(0, 2, nil)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got[0] != 0x01 {
		t.Fatalf("flipped read = %#x, want 0x01", got[0])
	}
	got, err = dev.ReadAt(0, 2, nil)
	if err != nil || got[0] != 0x00 {
		t.Fatalf("second read = %#x, %v; flip should be one-shot", got[0], err)
	}

	in.FlipBitOnWrite(2, 8)
	if err := dev.WriteAt(4, []byte{0xAA, 0x00}, nil); err != nil {
		t.Fatalf("flipped write should report success: %v", err)
	}
	got, err = dev.ReadAt(4, 2, nil)
	if err != nil || got[1] != 0x01 {
		t.Fatalf("media after flipped write = %v, %v; want byte 1 = 0x01", got, err)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() []int {
		dev := newDev()
		in := NewInjector(42)
		dev.SetFaultInjector(in)
		in.SetWriteErrorRate(0.3)
		var failed []int
		for i := 0; i < 50; i++ {
			if err := dev.WriteAt(int64(i*8), []byte("01234567"), nil); err != nil {
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("rate 0.3 over 50 writes produced no failures")
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs differ at %d: %v vs %v", i, a, b)
		}
	}
}

func TestInjectorLatencySpikes(t *testing.T) {
	dev := newDev()
	in := NewInjector(7)
	dev.SetFaultInjector(in)
	in.SetLatencySpikes(1.0, 0.5)
	if err := dev.WriteAt(0, []byte("x"), nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := dev.BusySeconds(); got < 0.5 {
		t.Fatalf("busy = %v, want >= 0.5 (latency spike)", got)
	}
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("seed=7,read=0.001,write=0.002,latency=0.01:0.002,crash=5,crashkeep=2,flipread=3:17")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	dev := newDev()
	dev.SetFaultInjector(in)
	for i := int64(0); i < 4; i++ {
		if err := dev.WriteAt(i*4, []byte("abcd"), nil); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := dev.WriteAt(16, []byte("abcd"), nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write 5 = %v, want ErrCrashed", err)
	}

	for _, bad := range []string{
		"nonsense",
		"seed=x",
		"read=2",
		"latency=0.5",
		"crash=0",
		"flipread=3",
		"bogus=1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", bad)
		}
	}
}

func TestParseSpecEmpty(t *testing.T) {
	if _, err := ParseSpec(""); err != nil {
		t.Fatalf("empty spec should be a no-fault injector: %v", err)
	}
}

func TestDoCtxCancelAbortsBackoff(t *testing.T) {
	// A huge backoff budget that a live sleep would take minutes to burn:
	// cancellation mid-backoff must abort immediately with the ctx error.
	p := RetryPolicy{MaxAttempts: 4, BaseDelaySec: 60, MaxDelaySec: 60}
	ctx, cancel := context.WithCancel(context.Background())
	var m metrics.RetryStats
	calls := 0
	start := time.Now()
	err := p.DoCtx(ctx, &m, func() error {
		calls++
		cancel() // fires while DoCtx is about to enter the backoff sleep
		return ErrTransient
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DoCtx = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times after cancellation, want 1", calls)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("backoff ignored cancellation: took %v", elapsed)
	}
}

func TestDoCtxDeadlineAbortsBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseDelaySec: 60, MaxDelaySec: 60}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.DoCtx(ctx, nil, func() error { return ErrTransient })
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DoCtx = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("backoff outlived the deadline: took %v", elapsed)
	}
}

func TestDoCtxPreCancelledMakesNoAttempts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := DefaultRetry().DoCtx(ctx, nil, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DoCtx = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("pre-cancelled context still ran the op %d times", calls)
	}
}

func TestDoCtxBackgroundStaysVirtual(t *testing.T) {
	// With a non-cancellable context the backoff must stay virtual (metered,
	// not slept), preserving the speed of deterministic experiment runs.
	p := RetryPolicy{MaxAttempts: 3, BaseDelaySec: 60, MaxDelaySec: 60}
	var m metrics.RetryStats
	start := time.Now()
	err := p.DoCtx(context.Background(), &m, func() error { return ErrTransient })
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("DoCtx = %v, want ErrTransient", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("background context slept for real: %v", elapsed)
	}
	if m.BackoffMicros.Value() != 2*60e6 {
		t.Fatalf("virtual backoff = %dus, want %dus", m.BackoffMicros.Value(), int64(2*60e6))
	}
}

func TestClassifyAborted(t *testing.T) {
	for _, err := range []error{
		context.Canceled,
		context.DeadlineExceeded,
		fmt.Errorf("op: %w", context.Canceled),
	} {
		if got := Classify(err); got != ClassAborted {
			t.Errorf("Classify(%v) = %v, want aborted", err, got)
		}
	}
}
