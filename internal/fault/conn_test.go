package fault

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// pipePair returns a faulted client end and the raw server end.
func pipePair(inj *NetInjector) (*Conn, net.Conn) {
	a, b := net.Pipe()
	return WrapConn(a, inj), b
}

// readOne reads one message (up to 64 bytes) with a timeout guard.
func readOne(t *testing.T, c net.Conn) string {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return string(buf[:n])
}

func TestConnDropAndDeliver(t *testing.T) {
	inj := NewNetInjector(1)
	fc, peer := pipePair(inj)
	defer fc.Close()
	defer peer.Close()

	inj.SetRates(1, 0, 0) // drop everything
	if n, err := fc.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("dropped write: n=%d err=%v (must report success)", n, err)
	}
	inj.SetRates(0, 0, 0)
	go fc.Write([]byte("kept"))
	if got := readOne(t, peer); got != "kept" {
		t.Fatalf("got %q, want %q", got, "kept")
	}
	if st := inj.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped=%d, want 1", st.Dropped)
	}
}

func TestConnDup(t *testing.T) {
	inj := NewNetInjector(1)
	fc, peer := pipePair(inj)
	defer fc.Close()
	defer peer.Close()

	inj.SetRates(0, 1, 0)
	go fc.Write([]byte("m"))
	if a, b := readOne(t, peer), readOne(t, peer); a != "m" || b != "m" {
		t.Fatalf("got %q %q, want duplicated %q", a, b, "m")
	}
}

func TestConnHoldReorders(t *testing.T) {
	inj := NewNetInjector(1)
	fc, peer := pipePair(inj)
	defer fc.Close()
	defer peer.Close()

	inj.SetRates(0, 0, 1)
	if _, err := fc.Write([]byte("first")); err != nil { // held
		t.Fatalf("held write: %v", err)
	}
	inj.SetRates(0, 0, 0)
	go fc.Write([]byte("second"))
	if got := readOne(t, peer); got != "second" {
		t.Fatalf("got %q, want reordered %q", got, "second")
	}
	if got := readOne(t, peer); got != "first" {
		t.Fatalf("got %q, want held %q", got, "first")
	}
}

func TestConnHalfClose(t *testing.T) {
	inj := NewNetInjector(1)
	fc, peer := pipePair(inj)
	defer fc.Close()
	defer peer.Close()

	inj.SetConnFaults(1, 0)
	if _, err := fc.Write([]byte("gone")); err != nil {
		t.Fatalf("half-closing write must report success: %v", err)
	}
	inj.SetConnFaults(0, 0)
	if _, err := fc.Write([]byte("also gone")); err != nil {
		t.Fatalf("write after half-close must report success: %v", err)
	}
	// The opposite direction still flows.
	go peer.Write([]byte("inbound"))
	if got := readOne(t, fc); got != "inbound" {
		t.Fatalf("read after half-close: got %q", got)
	}
	if st := inj.Stats(); st.HalfCloses != 1 {
		t.Fatalf("halfCloses=%d, want 1", st.HalfCloses)
	}
}

func TestConnStallHonorsDeadlineAndClose(t *testing.T) {
	inj := NewNetInjector(1)
	fc, peer := pipePair(inj)
	defer peer.Close()

	inj.SetConnFaults(0, 1)
	fc.SetWriteDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	_, err := fc.Write([]byte("wedged"))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled write: got %v, want deadline exceeded", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatalf("stall returned too fast (%v): did not block", time.Since(start))
	}

	// The conn stays wedged; Close unblocks a stalled writer without a
	// deadline.
	fc.SetWriteDeadline(time.Time{})
	done := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("still wedged"))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	fc.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("close-unblocked write: got %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled write not unblocked by Close")
	}
	if st := inj.Stats(); st.Stalls != 1 {
		t.Fatalf("stalls=%d, want 1", st.Stalls)
	}
}

// TestConnOutcomeDeterminism pins that two injectors with the same seed
// produce identical outcome sequences including the new modes.
func TestConnOutcomeDeterminism(t *testing.T) {
	a, b := NewNetInjector(42), NewNetInjector(42)
	a.SetRates(0.1, 0.1, 0.1)
	b.SetRates(0.1, 0.1, 0.1)
	a.SetConnFaults(0.05, 0.05)
	b.SetConnFaults(0.05, 0.05)
	for i := 0; i < 1000; i++ {
		if oa, ob := a.Outcome(), b.Outcome(); oa != ob {
			t.Fatalf("outcome %d diverged: %+v vs %+v", i, oa, ob)
		}
	}
}
