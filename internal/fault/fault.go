// Package fault is the deterministic fault-injection and fault-handling
// layer of the storage stack. It has two halves:
//
//   - Injector: a seeded, programmable implementation of ssd.FaultInjector
//     that can produce transient and persistent read/write errors, latency
//     spikes, torn (prefix-only) writes, bit-flip corruption, and crash
//     points that simulate power loss mid-flush.
//
//   - Classification and retry: Classify sorts any I/O error into
//     transient / persistent / corrupt, and RetryPolicy implements the
//     bounded exponential-backoff retry loop every I/O consumer in the
//     stack (LLAMA log store, Bw-tree page I/O, TC recovery log, LSM
//     tables) uses to absorb transient faults. Retries are metered through
//     metrics.RetryStats so fault absorption is observable.
//
// The paper's cost/performance analysis (and Deuteronomy's recovery story
// it builds on) assumes the caching stack keeps serving when secondary
// storage misbehaves; this package makes that assumption testable.
package fault

import (
	"context"
	"errors"
	"time"

	"costperf/internal/metrics"
	"costperf/internal/ssd"
)

// Class is the retry-relevant classification of an I/O error.
type Class int

const (
	// ClassNone is a nil error.
	ClassNone Class = iota
	// ClassTransient errors may clear on retry (media hiccup, injected
	// transient fault).
	ClassTransient
	// ClassPersistent errors will not clear on retry (device crashed or
	// closed, persistent injected fault, unknown errors). Consumers react
	// by surfacing the error and, for writes, latching a degraded state.
	ClassPersistent
	// ClassCorrupt errors mean the bytes came back but failed
	// verification (checksum mismatch, undecodable frame). Retrying may
	// help only if the corruption was injected on the read path; the
	// stack treats it as a distinct, loudly-surfaced condition.
	ClassCorrupt
	// ClassAborted errors mean the request itself was cancelled or its
	// deadline expired (context.Canceled / context.DeadlineExceeded):
	// the store is fine, the caller just stopped waiting. Consumers must
	// neither retry nor latch a degraded state for aborted operations.
	ClassAborted
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassCorrupt:
		return "corrupt"
	case ClassAborted:
		return "aborted"
	default:
		return "persistent"
	}
}

// Sentinel errors. Injected faults and store-level verification failures
// wrap one of these so Classify works uniformly across the stack.
var (
	// ErrTransient marks an error that may clear on retry.
	ErrTransient = errors.New("fault: transient I/O error")
	// ErrPersistent marks an error that will not clear on retry.
	ErrPersistent = errors.New("fault: persistent I/O error")
	// ErrCorrupt is the canonical corruption marker; logstore.ErrCorrupt,
	// lsm.ErrCorrupt, and the TC log's decode errors all wrap it.
	ErrCorrupt = errors.New("fault: data corruption detected")
	// ErrCrashed is returned for every I/O after a crash point fired:
	// the simulated device lost power and stays down until Repair.
	ErrCrashed = errors.New("fault: device crashed (simulated power loss)")
)

// Classify sorts err into a Class. Unknown errors classify as persistent:
// retrying an error we cannot identify risks looping on a hard failure.
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassNone
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ClassAborted
	case errors.Is(err, ErrCorrupt), errors.Is(err, ssd.ErrCorrupt):
		// ssd.ErrCorrupt covers the mirror's verified-read failures,
		// including ssd.ErrQuarantined (which wraps it): bytes failed
		// verification on every available copy, so retrying cannot help.
		return ClassCorrupt
	case errors.Is(err, ErrTransient),
		errors.Is(err, ssd.ErrInjectedRead),
		errors.Is(err, ssd.ErrInjectedWrite):
		return ClassTransient
	case errors.Is(err, ssd.ErrNoSpace):
		// A full device stays full until something is trimmed; stated
		// explicitly (though it is also the default) because flush paths
		// rely on it to latch read-only instead of retrying.
		return ClassPersistent
	default:
		return ClassPersistent
	}
}

// IsTransient reports whether err may clear on retry.
func IsTransient(err error) bool { return Classify(err) == ClassTransient }

// RetryPolicy bounds the exponential-backoff retry loop used around device
// I/O. The zero value takes the defaults below.
type RetryPolicy struct {
	// MaxAttempts is the total attempt bound, first try included
	// (default 4).
	MaxAttempts int
	// BaseDelaySec is the backoff before the first retry, in virtual
	// seconds; it doubles per retry (default 100µs, one SSD latency).
	BaseDelaySec float64
	// MaxDelaySec caps the per-retry backoff (default 5ms).
	MaxDelaySec float64
}

// DefaultRetry returns the stack-wide default policy.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelaySec: 100e-6, MaxDelaySec: 5e-3}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetry()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelaySec <= 0 {
		p.BaseDelaySec = d.BaseDelaySec
	}
	if p.MaxDelaySec <= 0 {
		p.MaxDelaySec = d.MaxDelaySec
	}
	return p
}

// Do runs op, retrying transient failures with exponential backoff up to
// the policy's attempt bound. Persistent and corrupt errors return
// immediately — retrying cannot help and would double-apply side effects.
// Every attempt and backoff is metered through m (which may be nil).
func (p RetryPolicy) Do(m *metrics.RetryStats, op func() error) error {
	return p.DoCtx(context.Background(), m, op)
}

// DoCtx is Do with cancellation: the context is checked before every
// attempt, and when it is cancellable (ctx.Done() != nil) the backoff
// between attempts becomes a real, interruptible sleep — a cancelled
// context aborts the backoff immediately with the context's error rather
// than after the remaining budget. Non-cancellable contexts (Background)
// keep Do's purely-virtual backoff, so single-threaded experiment runs
// stay deterministic and fast.
func (p RetryPolicy) DoCtx(ctx context.Context, m *metrics.RetryStats, op func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p = p.withDefaults()
	delay := p.BaseDelaySec
	retried := false
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if m != nil {
			m.Attempts.Inc()
		}
		err := op()
		if err == nil {
			if retried && m != nil {
				m.Absorbed.Inc()
			}
			return nil
		}
		if Classify(err) != ClassTransient {
			return err
		}
		if attempt >= p.MaxAttempts {
			if m != nil {
				m.Exhausted.Inc()
			}
			return err
		}
		retried = true
		if m != nil {
			m.Retries.Inc()
			m.BackoffMicros.Add(int64(delay * 1e6))
		}
		if ctx.Done() != nil {
			timer := time.NewTimer(time.Duration(delay * float64(time.Second)))
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
		}
		delay *= 2
		if delay > p.MaxDelaySec {
			delay = p.MaxDelaySec
		}
	}
}
