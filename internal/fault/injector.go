package fault

import (
	"fmt"
	"math/rand"
	"sync"

	"costperf/internal/ssd"
)

// event is one scheduled, one-shot fault keyed to the Nth read or write.
type event struct {
	class Class // ClassTransient or ClassPersistent; ClassNone = no error
	tear  bool
	keep  int
	flip  bool
	bit   int64
	crash bool
}

// Injector is a deterministic, seeded fault plan implementing
// ssd.FaultInjector. Faults are either scheduled against the Nth read or
// write the device performs after installation (exact, reproducible crash
// points) or probabilistic from the seeded generator (identical fault
// sequences for identical seeds and I/O orders). Safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	reads  int64
	writes int64

	crashed bool

	readRate   float64 // transient read-error probability
	writeRate  float64 // transient write-error probability
	latProb    float64 // latency-spike probability
	latSpike   float64 // extra busy seconds per spike
	nextReads  int64   // fail the next N reads...
	nextRClass Class   // ...with this class
	nextWrites int64
	nextWClass Class

	readEvents  map[int64]event
	writeEvents map[int64]event
}

// NewInjector returns an injector whose probabilistic faults are driven by
// the given seed.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:         rand.New(rand.NewSource(seed)),
		readEvents:  map[int64]event{},
		writeEvents: map[int64]event{},
	}
}

// FailRead schedules the nth read (1-based, counted from installation) to
// fail with the given class.
func (in *Injector) FailRead(nth int64, class Class) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.readEvents[nth] = event{class: class}
}

// FailWrite schedules the nth write to fail with the given class. Nothing
// reaches the media.
func (in *Injector) FailWrite(nth int64, class Class) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writeEvents[nth] = event{class: class}
}

// FailNextReads makes the next n reads fail with the given class.
func (in *Injector) FailNextReads(n int64, class Class) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.nextReads, in.nextRClass = n, class
}

// FailNextWrites makes the next n writes fail with the given class.
func (in *Injector) FailNextWrites(n int64, class Class) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.nextWrites, in.nextWClass = n, class
}

// TearWrite silently truncates the nth write to its first keep bytes: the
// device reports success, and only checksum verification can catch the
// damage later (a lying-firmware torn write).
func (in *Injector) TearWrite(nth int64, keep int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writeEvents[nth] = event{tear: true, keep: keep}
}

// CrashAtWrite simulates power loss mid-flush: the nth write persists only
// its first keep bytes, fails with ErrCrashed, and every subsequent I/O
// fails with ErrCrashed until Repair.
func (in *Injector) CrashAtWrite(nth int64, keep int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writeEvents[nth] = event{class: ClassPersistent, tear: true, keep: keep, crash: true}
}

// FlipBitOnWrite corrupts the nth write: bit (modulo the write length) is
// flipped in the bytes that reach the media. The write reports success.
func (in *Injector) FlipBitOnWrite(nth int64, bit int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writeEvents[nth] = event{flip: true, bit: bit}
}

// FlipBitOnRead corrupts the nth read's returned bytes (the media stays
// intact — a transfer-path corruption).
func (in *Injector) FlipBitOnRead(nth int64, bit int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.readEvents[nth] = event{flip: true, bit: bit}
}

// SetReadErrorRate makes each read fail transiently with probability p.
func (in *Injector) SetReadErrorRate(p float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.readRate = p
}

// SetWriteErrorRate makes each write fail transiently with probability p.
func (in *Injector) SetWriteErrorRate(p float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writeRate = p
}

// SetLatencySpikes adds extraSec of device-busy time to each I/O with
// probability p.
func (in *Injector) SetLatencySpikes(p, extraSec float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.latProb, in.latSpike = p, extraSec
}

// Crashed reports whether a crash point has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Repair simulates the post-crash reboot: the crash state and all
// scheduled one-shot events are cleared (probabilistic rates — the
// environment — persist). Data already lost stays lost; the consumer
// re-opens its stores over the surviving device contents.
func (in *Injector) Repair() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashed = false
	in.nextReads, in.nextWrites = 0, 0
	in.readEvents = map[int64]event{}
	in.writeEvents = map[int64]event{}
}

// Counts returns the number of reads and writes observed so far.
func (in *Injector) Counts() (reads, writes int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.reads, in.writes
}

func classErr(class Class, op string, n int64) error {
	base := ErrTransient
	if class == ClassPersistent {
		base = ErrPersistent
	}
	return fmt.Errorf("fault: injected %s failure at %s #%d: %w", class, op, n, base)
}

// ReadFault implements ssd.FaultInjector.
func (in *Injector) ReadFault(off int64, length int) ssd.FaultOutcome {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.reads++
	if in.crashed {
		return ssd.FaultOutcome{Err: fmt.Errorf("read %d bytes at %d: %w", length, off, ErrCrashed)}
	}
	var fo ssd.FaultOutcome
	if in.latProb > 0 && in.rng.Float64() < in.latProb {
		fo.ExtraBusySec = in.latSpike
	}
	if ev, ok := in.readEvents[in.reads]; ok {
		delete(in.readEvents, in.reads)
		if ev.flip {
			fo.Flip, fo.FlipBit = true, ev.bit
		}
		if ev.class != ClassNone {
			fo.Err = classErr(ev.class, "read", in.reads)
		}
		return fo
	}
	if in.nextReads > 0 {
		in.nextReads--
		fo.Err = classErr(in.nextRClass, "read", in.reads)
		return fo
	}
	if in.readRate > 0 && in.rng.Float64() < in.readRate {
		fo.Err = classErr(ClassTransient, "read", in.reads)
	}
	return fo
}

// WriteFault implements ssd.FaultInjector.
func (in *Injector) WriteFault(off int64, data []byte) ssd.FaultOutcome {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writes++
	if in.crashed {
		return ssd.FaultOutcome{Err: fmt.Errorf("write %d bytes at %d: %w", len(data), off, ErrCrashed)}
	}
	var fo ssd.FaultOutcome
	if in.latProb > 0 && in.rng.Float64() < in.latProb {
		fo.ExtraBusySec = in.latSpike
	}
	if ev, ok := in.writeEvents[in.writes]; ok {
		delete(in.writeEvents, in.writes)
		if ev.tear {
			fo.Tear, fo.TearKeep = true, ev.keep
		}
		if ev.flip {
			fo.Flip, fo.FlipBit = true, ev.bit
		}
		if ev.crash {
			in.crashed = true
			fo.Err = fmt.Errorf("write %d bytes at %d: %w", len(data), off, ErrCrashed)
			return fo
		}
		if ev.class != ClassNone {
			fo.Err = classErr(ev.class, "write", in.writes)
		}
		return fo
	}
	if in.nextWrites > 0 {
		in.nextWrites--
		fo.Err = classErr(in.nextWClass, "write", in.writes)
		return fo
	}
	if in.writeRate > 0 && in.rng.Float64() < in.writeRate {
		fo.Err = classErr(ClassTransient, "write", in.writes)
	}
	return fo
}
