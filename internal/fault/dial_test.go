package fault

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestPartitionRefusesFreshDials is the regression test for the chaos
// loophole where a partition only applied to already-established
// connections: a component could dodge migration-link chaos by dialing a
// fresh connection mid-partition. Dials made while partitioned must be
// refused, and a connection dialed after healing must still honor a
// later partition.
func TestPartitionRefusesFreshDials(t *testing.T) {
	inj := NewNetInjector(1)
	dialed := 0
	var serverEnd net.Conn
	dial := WrapDial(func() (net.Conn, error) {
		dialed++
		c, s := net.Pipe()
		serverEnd = s
		return c, nil
	}, inj)

	inj.Partition()
	if _, err := dial(); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial during partition: got %v, want ErrPartitioned", err)
	}
	if dialed != 0 {
		t.Fatalf("underlying dial ran %d times during the partition", dialed)
	}
	if got := inj.Stats().DialsRefused; got != 1 {
		t.Fatalf("DialsRefused = %d, want 1", got)
	}

	inj.Heal()
	c, err := dial()
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	if _, ok := c.(*Conn); !ok {
		t.Fatalf("healed dial returned %T, want *fault.Conn (faults must apply to fresh connections)", c)
	}

	// The freshly dialed connection is already subject to the injector: a
	// partition starting after the dial eats its writes.
	inj.Partition()
	got := make(chan int, 1)
	go func() {
		buf := make([]byte, 16)
		serverEnd.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, _ := serverEnd.Read(buf)
		got <- n
	}()
	if _, err := c.Write([]byte("frame-1")); err != nil {
		t.Fatalf("write during partition: %v", err)
	}
	if n := <-got; n != 0 {
		t.Fatalf("peer received %d bytes through a partition", n)
	}

	// DialErr itself must not consume a bounded partition's message
	// budget: refused SYNs are not delivered messages.
	inj.Heal()
	inj.PartitionFor(2)
	for i := 0; i < 10; i++ {
		if _, err := dial(); !errors.Is(err, ErrPartitioned) {
			t.Fatalf("dial %d during bounded partition: got %v, want ErrPartitioned", i, err)
		}
	}
	if !inj.Partitioned() {
		t.Fatal("bounded partition healed by refused dials alone")
	}
	inj.Outcome()
	inj.Outcome()
	if inj.Partitioned() {
		t.Fatal("bounded partition did not heal after its message budget")
	}
	if _, err := dial(); err != nil {
		t.Fatalf("dial after bounded partition healed: %v", err)
	}
}

func TestWrapDialNilInjector(t *testing.T) {
	dial := WrapDial(func() (net.Conn, error) {
		c, _ := net.Pipe()
		return c, nil
	}, nil)
	c, err := dial()
	if err != nil {
		t.Fatalf("nil-injector dial: %v", err)
	}
	if _, ok := c.(*Conn); ok {
		t.Fatal("nil-injector dial wrapped the connection for no reason")
	}
}
