package fault

import (
	"net"
	"os"
	"sync"
	"time"
)

// Conn wraps a net.Conn and applies a NetInjector's per-message outcomes
// to every Write call. The contract with the protocol layer is that one
// Write carries exactly one self-delimiting frame (internal/wire/frame
// writes frames that way), so the injector's message-granular faults map
// cleanly onto a byte stream:
//
//   - Drop: the write reports success but the frame never leaves — the
//     stream stays decodable because whole frames are the loss unit.
//   - Dup: the frame is transmitted twice back to back.
//   - Hold: the frame is delivered right after the next one (minimal
//     reordering).
//   - HalfClose: this direction dies silently — the frame, and every
//     later write on this Conn, reports success and vanishes, while
//     reads keep flowing. The peer only notices through missing traffic.
//   - Stall: the connection wedges — this write, and every later one,
//     blocks until the write deadline expires or the Conn is closed, like
//     a peer that stopped draining its receive window.
//
// Reads pass through untouched. Partitions programmed on the injector
// surface as drops (every message eaten until heal), matching the
// injector's message-link semantics.
//
// Stall honors SetWriteDeadline/SetDeadline, returning os.ErrDeadlineExceeded
// exactly as a real socket write would on a zero-window peer, so callers'
// deadline-based stall eviction logic sees the real thing.
type Conn struct {
	net.Conn
	inj *NetInjector

	wmu     sync.Mutex
	held    []byte // one frame held for reordering
	outDead bool   // half-closed: writes succeed but vanish
	stalled bool   // wedged: writes block until deadline/close

	// The write deadline has its own lock so SetWriteDeadline never
	// queues behind a stalled Write holding wmu.
	dmu      sync.Mutex
	deadline time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

// WrapConn wraps c; inj may be nil for a perfect network.
func WrapConn(c net.Conn, inj *NetInjector) *Conn {
	return &Conn{Conn: c, inj: inj, closed: make(chan struct{})}
}

// Write applies one injector outcome to the frame in p.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.stalled {
		return c.stallLocked()
	}
	var out NetOutcome
	if c.inj != nil {
		out = c.inj.Outcome()
	}
	switch {
	case out.Stall:
		c.stalled = true
		return c.stallLocked()
	case out.HalfClose:
		c.outDead = true
		c.held = nil
		return len(p), nil
	case c.outDead || out.Drop:
		return len(p), nil
	case out.Hold && c.held == nil:
		c.held = append([]byte(nil), p...)
		return len(p), nil
	}
	if _, err := c.Conn.Write(p); err != nil {
		return 0, err
	}
	if out.Dup {
		if _, err := c.Conn.Write(p); err != nil {
			return 0, err
		}
	}
	if c.held != nil {
		held := c.held
		c.held = nil
		if _, err := c.Conn.Write(held); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// stallLocked blocks a wedged write until the write deadline or Close.
// Caller holds wmu (so later writes queue behind the stall, exactly like
// a full kernel send buffer).
func (c *Conn) stallLocked() (int, error) {
	c.dmu.Lock()
	deadline := c.deadline
	c.dmu.Unlock()
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return 0, os.ErrDeadlineExceeded
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-c.closed:
		return 0, net.ErrClosed
	case <-timeout:
		return 0, os.ErrDeadlineExceeded
	}
}

// SetWriteDeadline records the deadline for the stall path and passes it
// through to the wrapped conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.dmu.Lock()
	c.deadline = t
	c.dmu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

// SetDeadline records the write half for the stall path and passes the
// whole deadline through.
func (c *Conn) SetDeadline(t time.Time) error {
	c.dmu.Lock()
	c.deadline = t
	c.dmu.Unlock()
	return c.Conn.SetDeadline(t)
}

// Close unblocks any stalled writer and closes the wrapped conn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}
