package fault

import "net"

// WrapDial subjects a dial function to the injector, closing the gap a
// plain WrapConn leaves: a connection dialed *after* a partition starts
// must not escape it. The returned dialer refuses with ErrPartitioned
// while the injector is partitioned, and wraps every successful
// connection in a Conn so the injector's message-granular faults (and
// any later partition) apply to it from the first byte.
func WrapDial(dial func() (net.Conn, error), inj *NetInjector) func() (net.Conn, error) {
	if inj == nil {
		return dial
	}
	return func() (net.Conn, error) {
		if err := inj.DialErr(); err != nil {
			return nil, err
		}
		c, err := dial()
		if err != nil {
			return nil, err
		}
		return WrapConn(c, inj), nil
	}
}
