package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec builds an Injector from a compact comma-separated spec, used by
// the kvbench -faults flag. Keys:
//
//	seed=N           rng seed for probabilistic faults (default 1)
//	read=P           transient read-error probability
//	write=P          transient write-error probability
//	latency=P:SEC    latency spikes: probability P, SEC extra busy seconds
//	crash=N          simulate power loss at the Nth device write
//	crashkeep=B      bytes of the crashing write that survive (default 0)
//	flipread=N:BIT   flip BIT on the Nth read
//	flipwrite=N:BIT  flip BIT on the Nth write
//
// Example: "seed=7,read=0.001,write=0.001,latency=0.01:0.002,crash=5000".
func ParseSpec(s string) (*Injector, error) {
	seed := int64(1)
	var crashAt int64
	crashKeep := 0
	type pair struct{ a, b int64 }
	var flipReads, flipWrites []pair
	var readRate, writeRate, latProb, latSpike float64

	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("fault: spec field %q is not key=value", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", val, err)
			}
			seed = n
		case "read", "write":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("fault: bad %s probability %q", key, val)
			}
			if key == "read" {
				readRate = p
			} else {
				writeRate = p
			}
		case "latency":
			ps, secs, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("fault: latency wants P:SEC, got %q", val)
			}
			p, err1 := strconv.ParseFloat(ps, 64)
			sec, err2 := strconv.ParseFloat(secs, 64)
			if err1 != nil || err2 != nil || p < 0 || p > 1 || sec < 0 {
				return nil, fmt.Errorf("fault: bad latency spec %q", val)
			}
			latProb, latSpike = p, sec
		case "crash":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: bad crash write index %q", val)
			}
			crashAt = n
		case "crashkeep":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("fault: bad crashkeep %q", val)
			}
			crashKeep = n
		case "flipread", "flipwrite":
			ns, bits, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("fault: %s wants N:BIT, got %q", key, val)
			}
			n, err1 := strconv.ParseInt(ns, 10, 64)
			bit, err2 := strconv.ParseInt(bits, 10, 64)
			if err1 != nil || err2 != nil || n < 1 || bit < 0 {
				return nil, fmt.Errorf("fault: bad %s spec %q", key, val)
			}
			if key == "flipread" {
				flipReads = append(flipReads, pair{n, bit})
			} else {
				flipWrites = append(flipWrites, pair{n, bit})
			}
		default:
			return nil, fmt.Errorf("fault: unknown spec key %q", key)
		}
	}

	in := NewInjector(seed)
	in.SetReadErrorRate(readRate)
	in.SetWriteErrorRate(writeRate)
	in.SetLatencySpikes(latProb, latSpike)
	if crashAt > 0 {
		in.CrashAtWrite(crashAt, crashKeep)
	}
	for _, p := range flipReads {
		in.FlipBitOnRead(p.a, p.b)
	}
	for _, p := range flipWrites {
		in.FlipBitOnWrite(p.a, p.b)
	}
	return in, nil
}
