package fault

import (
	"errors"
	"math/rand"
	"sync"
)

// NetOutcome describes what the simulated network does to one message on a
// replication link. The zero value delivers the message untouched.
type NetOutcome struct {
	// Drop loses the message entirely (the sender learns nothing).
	Drop bool
	// Dup delivers the message twice back to back.
	Dup bool
	// Hold delays the message past the next one sent on the link — the
	// minimal reordering a window of in-flight batches must survive.
	Hold bool
	// HalfClose kills this direction of the connection from here on: the
	// message, and every later one sent the same way, silently vanishes
	// while the opposite direction keeps flowing — a half-closed socket
	// whose peer will only notice through missing acks. Interpreted by
	// connection-shaped transports (fault.Conn); message links ignore it.
	HalfClose bool
	// Stall wedges the sender: the transport blocks the send until its
	// write deadline expires or the connection is closed — a peer that
	// stopped draining its receive buffer. Interpreted by fault.Conn.
	Stall bool
}

// NetStats counts what the injector did, for test reconciliation.
type NetStats struct {
	Messages     int64 // outcomes issued
	Dropped      int64 // includes messages eaten by a partition
	Duplicated   int64
	Held         int64
	Partitions   int64 // partition episodes started
	HalfCloses   int64 // half-close episodes triggered
	Stalls       int64 // stall episodes triggered
	DialsRefused int64 // connection attempts refused by a partition
}

// NetInjector is a seeded fault model for an in-process replication link:
// probabilistic drops, duplicate delivery, and reordering, plus explicit
// partitions that eat every message until healed (or for a bounded count,
// so seeded sweeps stay deterministic). Safe for concurrent use.
type NetInjector struct {
	mu        sync.Mutex
	rng       *rand.Rand
	drop      float64
	dup       float64
	hold      float64
	halfClose float64
	stall     float64

	partitioned   bool
	partitionLeft int64 // when >0, drop this many more messages then heal

	stats NetStats
}

// NewNetInjector returns an injector seeded for reproducible runs. All
// rates start at zero: the network is perfect until told otherwise.
func NewNetInjector(seed int64) *NetInjector {
	return &NetInjector{rng: rand.New(rand.NewSource(seed))}
}

// SetRates programs the per-message probabilities of dropping, duplicating,
// and holding (reordering) a message. Rates outside [0,1] are clamped.
func (n *NetInjector) SetRates(drop, dup, hold float64) {
	clamp := func(p float64) float64 {
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.drop, n.dup, n.hold = clamp(drop), clamp(dup), clamp(hold)
}

// SetConnFaults programs the per-message probabilities of the two
// connection-shaped faults: half-closing the sender's direction and
// stalling the sender indefinitely. They only have an effect on
// transports that interpret them (fault.Conn); rates outside [0,1] are
// clamped.
func (n *NetInjector) SetConnFaults(halfClose, stall float64) {
	clamp := func(p float64) float64 {
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.halfClose, n.stall = clamp(halfClose), clamp(stall)
}

// Partition starts dropping every message until Heal.
func (n *NetInjector) Partition() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.partitioned {
		n.stats.Partitions++
	}
	n.partitioned = true
	n.partitionLeft = 0
}

// PartitionFor drops the next count messages, then heals on its own —
// bounded partitions keep seeded chaos runs guaranteed to re-converge.
func (n *NetInjector) PartitionFor(count int64) {
	if count <= 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.partitioned {
		n.stats.Partitions++
	}
	n.partitioned = true
	n.partitionLeft = count
}

// Heal ends a partition.
func (n *NetInjector) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned = false
	n.partitionLeft = 0
}

// Partitioned reports whether the link is currently partitioned.
func (n *NetInjector) Partitioned() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitioned
}

// ErrPartitioned refuses a connection attempt made while the injector is
// partitioned: a real partition eats SYNs just like established traffic,
// so chaos must not be dodgeable by a fresh dial.
var ErrPartitioned = errors.New("fault: network partitioned")

// DialErr is the dial-time gate: non-nil (ErrPartitioned) while a
// partition is in effect. Every transport that establishes connections
// under this injector must consult it before succeeding a dial — a
// partition applies to connections dialed after it starts, not only to
// messages on connections that already exist. Refused dials are counted
// but never consume a bounded partition's message budget (a refused SYN
// is not a delivered message).
func (n *NetInjector) DialErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitioned {
		n.stats.DialsRefused++
		return ErrPartitioned
	}
	return nil
}

// Outcome decides the fate of one message. A partition wins over the
// probabilistic faults; drop, duplicate, and hold are mutually exclusive
// per message (a window of batches exercises their combinations anyway).
func (n *NetInjector) Outcome() NetOutcome {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Messages++
	if n.partitioned {
		if n.partitionLeft > 0 {
			n.partitionLeft--
			if n.partitionLeft == 0 {
				n.partitioned = false
			}
		}
		n.stats.Dropped++
		return NetOutcome{Drop: true}
	}
	switch p := n.rng.Float64(); {
	case p < n.drop:
		n.stats.Dropped++
		return NetOutcome{Drop: true}
	case p < n.drop+n.dup:
		n.stats.Duplicated++
		return NetOutcome{Dup: true}
	case p < n.drop+n.dup+n.hold:
		n.stats.Held++
		return NetOutcome{Hold: true}
	case p < n.drop+n.dup+n.hold+n.halfClose:
		n.stats.HalfCloses++
		return NetOutcome{HalfClose: true}
	case p < n.drop+n.dup+n.hold+n.halfClose+n.stall:
		n.stats.Stalls++
		return NetOutcome{Stall: true}
	}
	return NetOutcome{}
}

// Stats returns a copy of the injector's counters.
func (n *NetInjector) Stats() NetStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}
