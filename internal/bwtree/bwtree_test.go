package bwtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"costperf/internal/llama/logstore"
	"costperf/internal/sim"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

func newMemTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func newStoredTree(t *testing.T) (*Tree, *logstore.Store, *ssd.Device) {
	t.Helper()
	dev := ssd.New(ssd.SamsungSSD)
	st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 14, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	return tr, st, dev
}

func mustInsert(t *testing.T, tr *Tree, k, v string) {
	t.Helper()
	if err := tr.Insert([]byte(k), []byte(v)); err != nil {
		t.Fatalf("insert %q: %v", k, err)
	}
}

func mustGet(t *testing.T, tr *Tree, k, want string) {
	t.Helper()
	v, ok, err := tr.Get([]byte(k))
	if err != nil {
		t.Fatalf("get %q: %v", k, err)
	}
	if !ok {
		t.Fatalf("get %q: not found, want %q", k, want)
	}
	if string(v) != want {
		t.Fatalf("get %q = %q, want %q", k, v, want)
	}
}

func mustAbsent(t *testing.T, tr *Tree, k string) {
	t.Helper()
	_, ok, err := tr.Get([]byte(k))
	if err != nil {
		t.Fatalf("get %q: %v", k, err)
	}
	if ok {
		t.Fatalf("get %q: found, want absent", k)
	}
}

func TestBasicCRUD(t *testing.T) {
	tr := newMemTree(t)
	mustAbsent(t, tr, "a")
	mustInsert(t, tr, "a", "1")
	mustInsert(t, tr, "b", "2")
	mustGet(t, tr, "a", "1")
	mustGet(t, tr, "b", "2")
	mustInsert(t, tr, "a", "1v2") // overwrite
	mustGet(t, tr, "a", "1v2")
	if err := tr.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	mustAbsent(t, tr, "a")
	mustGet(t, tr, "b", "2")
	if err := tr.Delete([]byte("never")); err != nil {
		t.Fatal(err) // idempotent
	}
}

func TestClosedTree(t *testing.T) {
	tr := newMemTree(t)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Get([]byte("x")); err != ErrClosed {
		t.Fatalf("get err = %v", err)
	}
	if err := tr.Insert([]byte("x"), []byte("y")); err != ErrClosed {
		t.Fatalf("insert err = %v", err)
	}
	if err := tr.Scan(nil, 0, func(_, _ []byte) bool { return true }); err != ErrClosed {
		t.Fatalf("scan err = %v", err)
	}
}

func TestManyKeysSplitsAndOrder(t *testing.T) {
	tr := newMemTree(t)
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		k := workload.Key(uint64(i))
		if err := tr.Insert(k, workload.ValueFor(uint64(i), 32)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats().Splits.Value() == 0 {
		t.Fatal("no splits after 5000 inserts")
	}
	if tr.Stats().Consolidations.Value() == 0 {
		t.Fatal("no consolidations")
	}
	// All present.
	for i := 0; i < n; i++ {
		v, ok, err := tr.Get(workload.Key(uint64(i)))
		if err != nil || !ok {
			t.Fatalf("key %d missing: %v", i, err)
		}
		if !bytes.Equal(v, workload.ValueFor(uint64(i), 32)) {
			t.Fatalf("key %d value mismatch", i)
		}
	}
	// Scan order is total and complete.
	var prev []byte
	count := 0
	if err := tr.Scan(nil, 0, func(k, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order: %x then %x", prev, k)
		}
		prev = append(prev[:0], k...)
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan visited %d, want %d", count, n)
	}
}

func TestScanStartAndLimit(t *testing.T) {
	tr := newMemTree(t)
	for i := 0; i < 100; i++ {
		mustInsert(t, tr, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i))
	}
	var got []string
	if err := tr.Scan([]byte("k050"), 5, func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"k050", "k051", "k052", "k053", "k054"}
	if len(got) != len(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Early stop by fn.
	n := 0
	if err := tr.Scan(nil, 0, func(_, _ []byte) bool { n++; return n < 3 }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

// Model-based property test: the tree behaves as an ordered map.
func TestOrderedMapEquivalence(t *testing.T) {
	type op struct {
		Kind byte // 0 insert, 1 delete, 2 get
		Key  uint16
		Val  uint16
	}
	f := func(ops []op) bool {
		tr, err := New(Config{MaxPageBytes: 512, ConsolidateAfter: 4})
		if err != nil {
			return false
		}
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("key-%05d", o.Key%500)
			v := fmt.Sprintf("val-%d", o.Val)
			switch o.Kind % 3 {
			case 0:
				if err := tr.Insert([]byte(k), []byte(v)); err != nil {
					return false
				}
				model[k] = v
			case 1:
				if err := tr.Delete([]byte(k)); err != nil {
					return false
				}
				delete(model, k)
			case 2:
				got, ok, err := tr.Get([]byte(k))
				if err != nil {
					return false
				}
				want, wok := model[k]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			}
		}
		// Final full comparison via scan.
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		okAll := true
		err = tr.Scan(nil, 0, func(k, v []byte) bool {
			if i >= len(keys) || string(k) != keys[i] || string(v) != model[keys[i]] {
				okAll = false
				return false
			}
			i++
			return true
		})
		return err == nil && okAll && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushEvictLoadRoundTrip(t *testing.T) {
	tr, _, dev := newStoredTree(t)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Flush and evict every leaf.
	for _, pid := range tr.Pages() {
		if err := tr.EvictPage(pid, false); err != nil {
			t.Fatalf("evict %d: %v", pid, err)
		}
		if tr.PageResident(pid) {
			t.Fatalf("page %d still resident after evict", pid)
		}
	}
	if tr.Stats().PageEvictions.Value() == 0 {
		t.Fatal("no evictions counted")
	}
	readsBefore := dev.Stats().Reads.Value()
	// Every key must read back via load (with I/O).
	for i := 0; i < n; i++ {
		v, ok, err := tr.Get(workload.Key(uint64(i)))
		if err != nil || !ok {
			t.Fatalf("key %d after evict: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, workload.ValueFor(uint64(i), 64)) {
			t.Fatalf("key %d corrupt after reload", i)
		}
	}
	if dev.Stats().Reads.Value() == readsBefore {
		t.Fatal("no device reads during reloads")
	}
	if tr.Stats().PageLoads.Value() == 0 {
		t.Fatal("no page loads counted")
	}
}

func TestEvictionShrinksFootprint(t *testing.T) {
	tr, _, _ := newStoredTree(t)
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	before := tr.FootprintBytes()
	for _, pid := range tr.Pages() {
		if err := tr.EvictPage(pid, false); err != nil {
			t.Fatal(err)
		}
	}
	after := tr.FootprintBytes()
	if after >= before/2 {
		t.Fatalf("footprint %d -> %d; eviction should reclaim most memory", before, after)
	}
}

func TestBlindWriteAvoidsReadIO(t *testing.T) {
	// Paper Section 6.2: a blind update does not need to read the data page
	// being updated.
	tr, _, dev := newStoredTree(t)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	for _, pid := range tr.Pages() {
		if err := tr.EvictPage(pid, false); err != nil {
			t.Fatal(err)
		}
	}
	readsBefore := dev.Stats().Reads.Value()
	for i := 0; i < 500; i++ {
		if err := tr.BlindWrite(workload.Key(uint64(i)), []byte("blind-v2")); err != nil {
			t.Fatal(err)
		}
	}
	if got := dev.Stats().Reads.Value(); got != readsBefore {
		t.Fatalf("blind writes issued %d read I/Os, want 0", got-readsBefore)
	}
	// The blind values win on subsequent reads (which may now load pages).
	for i := 0; i < 500; i++ {
		v, ok, err := tr.Get(workload.Key(uint64(i)))
		if err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
		if string(v) != "blind-v2" {
			t.Fatalf("key %d = %q, want blind value", i, v)
		}
	}
}

func TestDeltaRetentionServesReadsWithoutIO(t *testing.T) {
	// Paper Section 6.3: retained deltas act as a record cache — a read of
	// a delta-cached record needs no I/O even though the base is evicted.
	tr, st, dev := newStoredTree(t)
	for i := 0; i < 200; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Consolidate everything so delta chains are empty, then update key 7:
	// its delta is the only in-memory record after eviction.
	for i := 0; i < 200; i += 10 {
		if err := tr.Consolidate(workload.Key(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, pid := range tr.Pages() {
		if err := tr.FlushPage(pid); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Insert(workload.Key(7), []byte("hot-record")); err != nil {
		t.Fatal(err)
	}
	for _, pid := range tr.Pages() {
		if err := tr.EvictPage(pid, true); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the log's write buffer so cold reads must hit the device.
	if err := st.Flush(nil); err != nil {
		t.Fatal(err)
	}
	readsBefore := dev.Stats().Reads.Value()
	v, ok, err := tr.Get(workload.Key(7))
	if err != nil || !ok {
		t.Fatalf("hot record: ok=%v err=%v", ok, err)
	}
	if string(v) != "hot-record" {
		t.Fatalf("hot record = %q", v)
	}
	if got := dev.Stats().Reads.Value(); got != readsBefore {
		t.Fatalf("record-cached read issued %d I/Os, want 0", got-readsBefore)
	}
	// A cold record on the same pages does need I/O.
	if _, ok, err := tr.Get(workload.Key(150)); err != nil || !ok {
		t.Fatalf("cold record: ok=%v err=%v", ok, err)
	}
	if dev.Stats().Reads.Value() == readsBefore {
		t.Fatal("cold read should have issued I/O")
	}
}

func TestCheckpointRecovery(t *testing.T) {
	dev := ssd.New(ssd.SamsungSSD)
	st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 14, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1500
	for i := 0; i < n; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 48)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Delete(workload.Key(10)); err != nil {
		t.Fatal(err)
	}
	if err := tr.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: new store over the same device, recover the tree.
	st2, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 14, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(Config{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr2.Get(workload.Key(uint64(i)))
		if err != nil {
			t.Fatalf("recovered get %d: %v", i, err)
		}
		if i == 10 {
			if ok {
				t.Fatal("deleted key 10 resurrected")
			}
			continue
		}
		if !ok || !bytes.Equal(v, workload.ValueFor(uint64(i), 48)) {
			t.Fatalf("recovered key %d wrong (ok=%v)", i, ok)
		}
	}
	// Recovered tree accepts new writes.
	if err := tr2.Insert([]byte("post"), []byte("recovery")); err != nil {
		t.Fatal(err)
	}
	mustGet(t, tr2, "post", "recovery")
}

func TestOpenWithoutCheckpoint(t *testing.T) {
	dev := ssd.New(ssd.SamsungSSD)
	st, _ := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 14, SegmentBytes: 1 << 16})
	if _, err := Open(Config{Store: st}); err != ErrNoCheckpoint {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestDeltaFlushesHappen(t *testing.T) {
	tr, _, _ := newStoredTree(t)
	for i := 0; i < 50; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Base flush first.
	for _, pid := range tr.Pages() {
		if err := tr.FlushPage(pid); err != nil {
			t.Fatal(err)
		}
	}
	base := tr.Stats().PageFlushes.Value()
	if base == 0 {
		t.Fatal("no base flushes")
	}
	// A few more updates (below consolidation threshold) then flush again:
	// must be incremental delta flushes.
	for i := 0; i < 3; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	for _, pid := range tr.Pages() {
		if err := tr.FlushPage(pid); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats().DeltaFlushes.Value() == 0 {
		t.Fatal("no incremental delta flushes")
	}
}

func TestGCPreservesData(t *testing.T) {
	tr, st, _ := newStoredTree(t)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Create log garbage: repeated flush cycles with updates between.
	for round := 0; round < 5; round++ {
		for i := 0; i < n; i += 7 {
			if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i+round), 64)); err != nil {
				t.Fatal(err)
			}
		}
		for _, pid := range tr.Pages() {
			if err := tr.FlushPage(pid); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Flush(nil); err != nil {
		t.Fatal(err)
	}
	// Run several GC passes.
	for pass := 0; pass < 10; pass++ {
		if _, err := st.CollectSegment(tr.RelocateForGC, nil); err != nil {
			t.Fatalf("GC pass %d: %v", pass, err)
		}
	}
	// Evict everything and verify all data survives GC relocation.
	for _, pid := range tr.Pages() {
		if err := tr.EvictPage(pid, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		_, ok, err := tr.Get(workload.Key(uint64(i)))
		if err != nil {
			t.Fatalf("key %d after GC: %v", i, err)
		}
		if !ok {
			t.Fatalf("key %d lost after GC", i)
		}
	}
}

func TestConcurrentInsertGet(t *testing.T) {
	tr := newMemTree(t)
	const workers = 8
	const each = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := uint64(w*each + i)
				if err := tr.Insert(workload.Key(id), workload.ValueFor(id, 24)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if i%3 == 0 {
					if _, _, err := tr.Get(workload.Key(id)); err != nil {
						t.Errorf("get: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for i := 0; i < each; i++ {
			id := uint64(w*each + i)
			v, ok, err := tr.Get(workload.Key(id))
			if err != nil || !ok {
				t.Fatalf("key %d: ok=%v err=%v", id, ok, err)
			}
			if !bytes.Equal(v, workload.ValueFor(id, 24)) {
				t.Fatalf("key %d corrupt", id)
			}
		}
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	tr := newMemTree(t)
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), []byte("init")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				id := uint64(rng.Intn(1000))
				switch rng.Intn(4) {
				case 0:
					_ = tr.Insert(workload.Key(id), []byte(fmt.Sprintf("w%d", w)))
				case 1:
					_ = tr.Delete(workload.Key(id))
				case 2:
					_, _, _ = tr.Get(workload.Key(id))
				case 3:
					_ = tr.Scan(workload.Key(id), 10, func(_, _ []byte) bool { return true })
				}
			}
		}(w)
	}
	wg.Wait()
	// Structural sanity: full scan is ordered.
	var prev []byte
	if err := tr.Scan(nil, 0, func(k, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order after concurrency")
		}
		prev = append(prev[:0], k...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCostAccountingMMvsSS(t *testing.T) {
	sess := sim.NewSession(sim.DefaultCosts())
	dev := ssd.New(ssd.SamsungSSD)
	st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 14, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Store: st, Session: sess})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	sess.Tracker().Reset()
	// Warm reads: MM class.
	for i := 0; i < 500; i++ {
		if _, _, err := tr.Get(workload.Key(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := sess.Tracker().Ops(sim.OpSS); got != 0 {
		t.Fatalf("warm reads recorded %d SS ops", got)
	}
	// Evict all, cold reads: SS class.
	for _, pid := range tr.Pages() {
		if err := tr.EvictPage(pid, false); err != nil {
			t.Fatal(err)
		}
	}
	sess.Tracker().Reset()
	for i := 0; i < 200; i++ {
		// Use distinct pages: stride through the keyspace.
		if _, _, err := tr.Get(workload.Key(uint64(i * (n / 200)))); err != nil {
			t.Fatal(err)
		}
	}
	tk := sess.Tracker()
	if tk.Ops(sim.OpSS) == 0 {
		t.Fatal("cold reads recorded no SS ops")
	}
	r := tk.R()
	if r < 2 || r > 40 {
		t.Fatalf("measured R = %v, implausible", r)
	}
}

func TestUtilizationAndPageSize(t *testing.T) {
	tr := newMemTree(t)
	for i := 0; i < 20000; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Consolidate everything so pages reflect steady state.
	for _, pid := range tr.Pages() {
		hdr := tr.header(pid, nil)
		_ = hdr
	}
	u := tr.Utilization()
	if u <= 0.2 || u > 1.2 {
		t.Fatalf("utilization = %v, implausible", u)
	}
	ps := tr.AveragePageBytes()
	if ps <= 0 || ps > 4096 {
		t.Fatalf("average page bytes = %v", ps)
	}
}

func TestFootprintNonNegativeAndTracksInserts(t *testing.T) {
	tr := newMemTree(t)
	base := tr.FootprintBytes()
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	grown := tr.FootprintBytes()
	if grown <= base {
		t.Fatalf("footprint did not grow: %d -> %d", base, grown)
	}
	// At least the raw data must be accounted.
	if grown < 1000*(8+64) {
		t.Fatalf("footprint %d below raw data volume", grown)
	}
}

func TestEvictIndexPageRefused(t *testing.T) {
	tr, _, _ := newStoredTree(t)
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	root := tr.RootPID()
	if tr.header(root, nil).isLeaf {
		t.Skip("tree did not grow an index root")
	}
	if err := tr.EvictPage(root, false); err == nil {
		t.Fatal("evicting index page should fail")
	}
}

func TestEvictWithoutStoreFails(t *testing.T) {
	tr := newMemTree(t)
	mustInsert(t, tr, "a", "1")
	if err := tr.EvictPage(tr.RootPID(), false); err != ErrNoStore {
		t.Fatalf("err = %v, want ErrNoStore", err)
	}
	if err := tr.FlushPage(tr.RootPID()); err != ErrNoStore {
		t.Fatalf("flush err = %v, want ErrNoStore", err)
	}
	if err := tr.FlushAll(); err != ErrNoStore {
		t.Fatalf("flushall err = %v, want ErrNoStore", err)
	}
}

func TestLenMatchesInserts(t *testing.T) {
	tr := newMemTree(t)
	for i := 0; i < 777; i++ {
		mustInsert(t, tr, fmt.Sprintf("%06d", i), "v")
	}
	for i := 0; i < 100; i++ {
		if err := tr.Delete([]byte(fmt.Sprintf("%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tr.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 677 {
		t.Fatalf("Len = %d, want 677", n)
	}
}
