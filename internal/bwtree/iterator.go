package bwtree

import (
	"bytes"
	"sort"
)

// Iterator is a pull-based cursor over the tree in ascending key order.
// It materializes one page view at a time (the consolidated snapshot of
// that page's delta chain) and steps through it; moving past a page's
// range follows the B-link side structure via a fresh descent, so
// iteration is weakly consistent across pages exactly like Scan.
//
// An Iterator is used by a single goroutine. Key and Value return slices
// owned by the underlying page snapshot; copy them to retain beyond the
// next call to Next.
type Iterator struct {
	t    *Tree
	keys [][]byte
	vals [][]byte
	high []byte // current page's exclusive upper bound (nil = rightmost)
	i    int
	err  error
	done bool
}

// NewIterator returns an iterator positioned before the first key >=
// start (nil starts at the beginning). Call Next to advance to the first
// entry.
func (t *Tree) NewIterator(start []byte) *Iterator {
	if t.closed.Load() {
		return &Iterator{t: t, err: ErrClosed, done: true}
	}
	it := &Iterator{t: t}
	it.seekPage(start)
	if it.err == nil {
		// Position before the first qualifying entry.
		it.i = sort.Search(len(it.keys), func(i int) bool {
			return bytes.Compare(it.keys[i], start) >= 0
		}) - 1
	}
	return it
}

// seekPage loads the page view owning key.
func (it *Iterator) seekPage(key []byte) {
	ch := it.t.begin()
	defer settle(ch)
	leaf, hdr, _, err := it.t.descend(key, ch)
	if err != nil {
		it.err = err
		it.done = true
		return
	}
	keys, vals, high, err := it.t.pageView(leaf, hdr, ch)
	if err != nil {
		it.err = err
		it.done = true
		return
	}
	it.keys, it.vals, it.high = keys, vals, high
}

// Next advances to the next entry, returning false at the end of the tree
// or on error (check Err).
func (it *Iterator) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	it.i++
	for it.i >= len(it.keys) {
		if it.high == nil {
			it.done = true
			return false
		}
		// Step into the next page's range.
		cont := it.high
		it.seekPage(cont)
		if it.err != nil {
			return false
		}
		it.i = sort.Search(len(it.keys), func(i int) bool {
			return bytes.Compare(it.keys[i], cont) >= 0
		})
	}
	return true
}

// Key returns the current entry's key (valid after a true Next).
func (it *Iterator) Key() []byte { return it.keys[it.i] }

// Value returns the current entry's value (valid after a true Next).
func (it *Iterator) Value() []byte { return it.vals[it.i] }

// Err returns the error that terminated iteration, if any.
func (it *Iterator) Err() error { return it.err }
