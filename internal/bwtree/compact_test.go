package bwtree

import (
	"bytes"
	"testing"

	"costperf/internal/workload"
)

// fill builds a multi-level tree and returns it.
func fillTree(t *testing.T, n int) *Tree {
	t.Helper()
	tr, err := New(Config{MaxPageBytes: 1024, ConsolidateAfter: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 32)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func consolidateAll(t *testing.T, tr *Tree) {
	t.Helper()
	for _, pid := range tr.Pages() {
		hdr := tr.header(pid, nil)
		if hdr.chainLen > 0 {
			if base, ok := chainBottom(hdr.head).(*leafBase); ok && len(base.keys) > 0 {
				if err := tr.Consolidate(base.keys[0]); err != nil {
					t.Fatal(err)
				}
			} else if err := tr.Consolidate(hdr.highKey); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestCheckInvariantsOnHealthyTree(t *testing.T) {
	tr := fillTree(t, 5000)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactNoEmptyLeavesIsNoop(t *testing.T) {
	tr := fillTree(t, 2000)
	before := len(tr.Pages())
	removed, err := tr.CompactEmptyLeaves()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("removed %d pages from a full tree", removed)
	}
	if got := len(tr.Pages()); got != before {
		t.Fatalf("page count changed %d -> %d", before, got)
	}
}

func TestCompactRemovesEmptiedLeaves(t *testing.T) {
	const n = 5000
	tr := fillTree(t, n)
	// Empty a large middle range.
	for i := 1000; i < 4000; i++ {
		if err := tr.Delete(workload.Key(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	consolidateAll(t, tr)
	before := len(tr.Pages())
	memBefore := tr.FootprintBytes()
	removed, err := tr.CompactEmptyLeaves()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("no pages removed after mass deletion")
	}
	// removed counts leaves plus merged index pages; Pages() counts leaves.
	if got := len(tr.Pages()); got >= before || before-got > removed {
		t.Fatalf("pages %d -> %d, removed %d", before, got, removed)
	}
	if tr.FootprintBytes() >= memBefore {
		t.Fatal("footprint did not shrink")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All surviving data reads back; deleted keys stay gone.
	for i := 0; i < n; i++ {
		v, ok, err := tr.Get(workload.Key(uint64(i)))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if i >= 1000 && i < 4000 {
			if ok {
				t.Fatalf("deleted key %d resurrected", i)
			}
			continue
		}
		if !ok || !bytes.Equal(v, workload.ValueFor(uint64(i), 32)) {
			t.Fatalf("key %d wrong after compaction (ok=%v)", i, ok)
		}
	}
	// Scans traverse the spliced side chain correctly.
	count := 0
	var prev []byte
	if err := tr.Scan(nil, 0, func(k, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("scan out of order after compaction")
		}
		prev = append(prev[:0], k...)
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != n-3000 {
		t.Fatalf("scan count %d, want %d", count, n-3000)
	}
	// New inserts into the absorbed range land correctly.
	if err := tr.Insert(workload.Key(2000), []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := tr.Get(workload.Key(2000)); !ok || string(v) != "reborn" {
		t.Fatalf("reinserted key = %q,%v", v, ok)
	}
}

func TestCompactCollapsesRoot(t *testing.T) {
	const n = 5000
	tr := fillTree(t, n)
	depthBefore := tr.Depth()
	if depthBefore < 2 {
		t.Skip("tree did not grow multi-level")
	}
	// Delete everything except a handful of keys.
	for i := 10; i < n; i++ {
		if err := tr.Delete(workload.Key(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	consolidateAll(t, tr)
	if _, err := tr.CompactEmptyLeaves(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Depth(); got >= depthBefore {
		t.Fatalf("depth %d -> %d, want shrink", depthBefore, got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok, _ := tr.Get(workload.Key(uint64(i))); !ok {
			t.Fatalf("survivor key %d lost", i)
		}
	}
	// Tree remains fully usable: grow it again.
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactWithStoreInvalidatesRecords(t *testing.T) {
	tr, st, _ := newStoredTree(t)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	for _, pid := range tr.Pages() {
		if err := tr.FlushPage(pid); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(nil); err != nil {
		t.Fatal(err)
	}
	for i := 500; i < 2500; i++ {
		if err := tr.Delete(workload.Key(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	consolidateAll(t, tr)
	utilBefore := st.Utilization()
	removed, err := tr.CompactEmptyLeaves()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("nothing compacted")
	}
	if st.Utilization() >= utilBefore {
		t.Fatalf("log utilization %v -> %v; retired pages should invalidate records",
			utilBefore, st.Utilization())
	}
	// The tree survives flush + GC + eviction round trips afterwards.
	for _, pid := range tr.Pages() {
		if err := tr.FlushPage(pid); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CollectSegment(tr.RelocateForGC, nil); err != nil {
		t.Fatal(err)
	}
	for _, pid := range tr.Pages() {
		if err := tr.EvictPage(pid, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if _, ok, err := tr.Get(workload.Key(uint64(i))); err != nil || !ok {
			t.Fatalf("key %d after compact+GC+evict: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestDepth(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 1 {
		t.Fatalf("empty tree depth = %d", tr.Depth())
	}
	for i := 0; i < 10000; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Depth() < 2 {
		t.Fatalf("depth = %d after 10k inserts", tr.Depth())
	}
}
