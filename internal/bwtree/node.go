// Package bwtree implements a latch-free Bw-tree (Levandoski, Lomet,
// Sengupta, ICDE 2013) — the Deuteronomy data component the paper's cost
// analysis is built around.
//
// Structure updates never modify a page in place. Each logical page is
// reached through the LLAMA mapping table; an update prepends an immutable
// delta record to the page's delta chain with a single compare-and-swap on
// the page's mapping entry. Chains are periodically consolidated into new
// base pages. Pages are variable size and ~100% utilized when flushed
// (paper Section 4.1), and splits follow the B-link pattern with side
// pointers so readers never block.
//
// The tree integrates with the log-structured store for page flushes,
// evictions, and read-misses, and supports the paper's blind updates
// (Section 6.2): a delta can be prepended to a page whose base is only on
// secondary storage without reading it back.
package bwtree

import (
	"costperf/internal/llama/logstore"
	"costperf/internal/llama/mapping"
)

// node is one link of a page's delta chain. Node values are immutable
// once published through the mapping table.
type node interface{ isNode() }

// insertDelta records an upsert of key -> val.
type insertDelta struct {
	key, val []byte
	next     node
}

// deleteDelta records the removal of key.
type deleteDelta struct {
	key  []byte
	next node
}

// leafBase is a consolidated leaf page: parallel sorted key/value slices.
// B-link fields: highKey is the exclusive upper bound of this page's key
// range (nil = +inf) and right is the side pointer to the next leaf.
type leafBase struct {
	keys [][]byte
	vals [][]byte

	highKey []byte
	right   mapping.PID
}

// indexBase is a consolidated index page. children[i] covers keys in
// [keys[i-1], keys[i]); children[len(keys)] covers the rest up to highKey.
// Index pages also carry B-link side pointers.
type indexBase struct {
	keys     [][]byte
	children []mapping.PID

	highKey []byte
	right   mapping.PID
}

// diskRef terminates an in-memory chain whose base page has been evicted:
// the remainder of the page's state lives at addr in the log store. Deltas
// prepended above a diskRef are exactly the paper's blind-update record
// cache (Sections 6.2–6.3).
type diskRef struct {
	addr logstore.Address
}

func (*insertDelta) isNode() {}
func (*deleteDelta) isNode() {}
func (*leafBase) isNode()    {}
func (*indexBase) isNode()   {}
func (*diskRef) isNode()     {}

// pageHeader is the mapping-table entry for a page. Headers are immutable;
// every update installs a fresh header via CAS.
type pageHeader struct {
	// head is the top of the delta chain (never nil: at minimum a base
	// page or a diskRef).
	head node
	// highKey is the exclusive upper bound of the page's key range (nil =
	// +inf) and right the B-link side pointer — kept in the header so an
	// evicted page can still be bounds-checked without I/O.
	highKey []byte
	right   mapping.PID
	// addr is the durable address of the most recently flushed state for
	// this page (nil Address if never flushed).
	addr logstore.Address
	// diskChain lists every log record composing the page's durable state,
	// newest first (addr == diskChain[0]); used to invalidate superseded
	// records and to answer GC liveness queries.
	diskChain []logstore.Address
	// dirtyBase is set when the in-memory base diverges from the durable
	// state in a way an incremental delta flush cannot express (e.g. after
	// consolidation); the next flush must write a full base.
	dirtyBase bool
	// chainLen counts in-memory deltas above the base/diskRef; it triggers
	// consolidation.
	chainLen int
	// unflushed counts deltas prepended since the last flush; an
	// incremental flush writes only these (paper Figure 5).
	unflushed int
	// memBytes approximates the page's main-memory footprint.
	memBytes int
	// lastAccess is the virtual-time (seconds) of the last access, for
	// T_i-based eviction.
	lastAccess float64
	// isLeaf records whether the page is a leaf.
	isLeaf bool
	// level is the page's height above the leaves (leaf = 0). SMO
	// completion uses it to install index entries at the correct level.
	level int
}

// Memory accounting approximations. sliceOverhead covers the Go slice
// header plus allocator rounding; nodeOverhead covers a delta node.
const (
	sliceOverhead = 24
	nodeOverhead  = 48
	headerBytes   = 96
)

func bytesKV(key, val []byte) int {
	return len(key) + len(val) + 2*sliceOverhead
}

func (b *leafBase) memSize() int {
	n := headerBytes + len(b.highKey)
	for i := range b.keys {
		n += bytesKV(b.keys[i], b.vals[i])
	}
	return n
}

func (b *indexBase) memSize() int {
	n := headerBytes + len(b.highKey)
	for i := range b.keys {
		n += len(b.keys[i]) + sliceOverhead + 8
	}
	n += 8 // rightmost child
	return n
}

// contentBytes is the logical payload size of a consolidated leaf — the
// quantity the paper's page-size model (Section 4.1) is about: variable
// size pages store only the bytes the data needs.
func (b *leafBase) contentBytes() int {
	n := 0
	for i := range b.keys {
		n += len(b.keys[i]) + len(b.vals[i])
	}
	return n
}
