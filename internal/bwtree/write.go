package bwtree

import (
	"context"
	"errors"

	"costperf/internal/obs"
	"costperf/internal/sim"
)

// Insert upserts key -> val by prepending an insert delta to the owning
// leaf's chain with a single CAS — the Bw-tree's latch-free update.
func (t *Tree) Insert(key, val []byte) error {
	if err := t.write(key, val, false, false, t.begin()); err != nil {
		return err
	}
	t.stats.Inserts.Inc()
	return nil
}

// InsertCtx is Insert bounded by ctx.
func (t *Tree) InsertCtx(ctx context.Context, key, val []byte) error {
	if err := t.write(key, val, false, false, t.beginCtx(ctx)); err != nil {
		return err
	}
	t.stats.Inserts.Inc()
	return nil
}

// Delete removes key (idempotent: deleting an absent key succeeds).
func (t *Tree) Delete(key []byte) error {
	if err := t.write(key, nil, true, false, t.begin()); err != nil {
		return err
	}
	t.stats.Deletes.Inc()
	return nil
}

// DeleteCtx is Delete bounded by ctx.
func (t *Tree) DeleteCtx(ctx context.Context, key []byte) error {
	if err := t.write(key, nil, true, false, t.beginCtx(ctx)); err != nil {
		return err
	}
	t.stats.Deletes.Inc()
	return nil
}

// BlindWrite upserts key -> val without requiring the leaf's base page to
// be in main memory (paper Section 6.2): if the base is evicted, the delta
// is prepended above the diskRef and no read I/O occurs.
func (t *Tree) BlindWrite(key, val []byte) error {
	if err := t.write(key, val, false, true, t.begin()); err != nil {
		return err
	}
	t.stats.BlindWrites.Inc()
	return nil
}

// BlindWriteCtx is BlindWrite bounded by ctx.
func (t *Tree) BlindWriteCtx(ctx context.Context, key, val []byte) error {
	if err := t.write(key, val, false, true, t.beginCtx(ctx)); err != nil {
		return err
	}
	t.stats.BlindWrites.Inc()
	return nil
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (t *Tree) write(key, val []byte, isDelete, blind bool, ch *sim.Charger) (err error) {
	op := obs.OpPut
	if isDelete {
		op = obs.OpDelete
	}
	sp := t.cfg.Obs.Start(op)
	defer func() { sp.End(err) }()
	if t.closed.Load() {
		abandon(ch)
		return ErrClosed
	}
	key = cloneBytes(key)
	val = cloneBytes(val)
	for attempt := 0; ; attempt++ {
		if attempt > 1<<16 {
			abandon(ch)
			return errors.New("bwtree: write live-locked")
		}
		if err := ch.Err(); err != nil {
			abandon(ch) // cancelled before the delta was installed
			return err
		}
		leaf, hdr, parent, err := t.descend(key, ch)
		if err != nil {
			abandon(ch)
			return err
		}
		// A non-blind write of a fully evicted page is still prepended as a
		// delta (every Bw-tree update is a delta), but we count it as an MM
		// operation only if no I/O happened; nothing here reads the base.
		var delta node
		var deltaBytes int
		if isDelete {
			delta = &deleteDelta{key: key, next: hdr.head}
			deltaBytes = len(key) + sliceOverhead + nodeOverhead
		} else {
			delta = &insertDelta{key: key, val: val, next: hdr.head}
			deltaBytes = bytesKV(key, val) + nodeOverhead
		}
		nh := *hdr
		nh.head = delta
		nh.chainLen = hdr.chainLen + 1
		nh.unflushed = hdr.unflushed + 1
		nh.memBytes = hdr.memBytes + deltaBytes
		nh.lastAccess = t.now()
		if ch != nil {
			ch.Copy(len(key) + len(val))
		}
		if !t.install(leaf, hdr, &nh) {
			continue // chain changed under us; retry
		}
		settle(ch)
		// Maintenance outside the charged operation: consolidate long
		// chains (and split oversized pages). Blind writes skip
		// consolidation when the base is not resident — that is the whole
		// point of a blind update.
		if nh.chainLen >= t.cfg.ConsolidateAfter {
			mch := t.maintenanceCharger()
			if _, isDisk := chainBottom(nh.head).(*diskRef); !isDisk || !blind {
				if err := t.consolidate(leaf, mch); err != nil && !errors.Is(err, errRetryConsolidate) {
					return err
				}
			}
			_ = parent
		}
		return nil
	}
}

// maintenanceCharger attributes background work (consolidation, splits,
// flushes) as additional cost without counting extra operations.
func (t *Tree) maintenanceCharger() *sim.Charger {
	if t.cfg.Session == nil {
		return nil
	}
	return t.cfg.Session.Begin()
}

// chainBottom returns the terminal node of a delta chain (a base page or
// a diskRef).
func chainBottom(n node) node {
	for {
		switch v := n.(type) {
		case *insertDelta:
			n = v.next
		case *deleteDelta:
			n = v.next
		default:
			return n
		}
	}
}
