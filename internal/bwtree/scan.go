package bwtree

import (
	"bytes"
	"context"
	"errors"
	"sort"

	"costperf/internal/llama/mapping"
	"costperf/internal/obs"
	"costperf/internal/sim"
)

// Scan visits key/value pairs in ascending key order starting at start
// (inclusive), calling fn for each until fn returns false or limit pairs
// have been visited (limit <= 0 means unlimited). The visited view of each
// page is a consistent snapshot (delta chain applied); across pages the
// scan is weakly consistent, like Bw-tree scans generally.
func (t *Tree) Scan(start []byte, limit int, fn func(key, val []byte) bool) error {
	return t.scan(start, limit, fn, t.begin())
}

// ScanCtx is Scan bounded by ctx: the context is checked between pages, so
// a cancelled long scan stops loading evicted pages promptly.
func (t *Tree) ScanCtx(ctx context.Context, start []byte, limit int, fn func(key, val []byte) bool) error {
	return t.scan(start, limit, fn, t.beginCtx(ctx))
}

func (t *Tree) scan(start []byte, limit int, fn func(key, val []byte) bool, ch *sim.Charger) (err error) {
	sp := t.cfg.Obs.Start(obs.OpScan)
	defer func() { sp.End(err) }()
	if t.closed.Load() {
		abandon(ch)
		return ErrClosed
	}
	defer settle(ch)
	t.stats.Scans.Inc()

	visited := 0
	cur := start
	for {
		if err := ch.Err(); err != nil {
			return err
		}
		leaf, hdr, _, err := t.descend(cur, ch)
		if err != nil {
			return err
		}
		loads0 := t.stats.PageLoads.Value()
		keys, vals, highKey, err := t.pageView(leaf, hdr, ch)
		if t.stats.PageLoads.Value() != loads0 {
			sp.Miss() // an evicted page was loaded from the log store
		}
		if err != nil {
			return err
		}
		i := sort.Search(len(keys), func(i int) bool { return bytes.Compare(keys[i], cur) >= 0 })
		compare(ch, log2ceil(len(keys)))
		for ; i < len(keys); i++ {
			if limit > 0 && visited >= limit {
				return nil
			}
			if !fn(keys[i], vals[i]) {
				return nil
			}
			visited++
		}
		if limit > 0 && visited >= limit {
			return nil
		}
		if highKey == nil {
			return nil // rightmost page
		}
		cur = highKey // continue at the next page's key range
	}
}

// pageView materializes the consolidated view of a leaf (loading it from
// the log store if evicted) without installing anything, and returns the
// page's exclusive upper bound for scan continuation.
func (t *Tree) pageView(pid mapping.PID, hdr *pageHeader, ch *sim.Charger) ([][]byte, [][]byte, []byte, error) {
	for {
		ov, bottom := collectDeltas(hdr.head, ch)
		base, ok := bottom.(*leafBase)
		if !ok {
			ref, isRef := bottom.(*diskRef)
			if !isRef {
				return nil, nil, nil, errors.New("bwtree: malformed leaf chain")
			}
			if err := t.loadPage(pid, ref, ch); err != nil {
				return nil, nil, nil, err
			}
			hdr = t.header(pid, ch)
			continue
		}
		keys, vals := applyOverlay(base, ov, hdr.highKey, ch)
		return keys, vals, hdr.highKey, nil
	}
}

// Len counts the live keys in the tree by scanning — O(n), intended for
// tests and experiments.
func (t *Tree) Len() (int, error) {
	n := 0
	err := t.Scan(nil, 0, func(_, _ []byte) bool {
		n++
		return true
	})
	return n, err
}

// Utilization returns the average fill of consolidated leaf pages relative
// to MaxPageBytes — the quantity behind the paper's page-size model
// (Section 4.1: B-tree ~70%, Bw-tree ~100% of variable-size pages).
func (t *Tree) Utilization() float64 {
	var used, pages int64
	t.table.Range(func(_ mapping.PID, hdr *pageHeader) bool {
		if hdr == nil || !hdr.isLeaf {
			return true
		}
		if base, ok := chainBottom(hdr.head).(*leafBase); ok && len(base.keys) > 0 {
			used += int64(base.contentBytes())
			pages++
		}
		return true
	})
	if pages == 0 {
		return 0
	}
	return float64(used) / float64(pages) / float64(t.cfg.MaxPageBytes)
}

// AveragePageBytes returns the mean logical content size of leaf pages —
// the paper's P_s (≈2.7 KB for 4K max pages in their system).
func (t *Tree) AveragePageBytes() float64 {
	var used, pages int64
	t.table.Range(func(_ mapping.PID, hdr *pageHeader) bool {
		if hdr == nil || !hdr.isLeaf {
			return true
		}
		if base, ok := chainBottom(hdr.head).(*leafBase); ok && len(base.keys) > 0 {
			used += int64(base.contentBytes())
			pages++
		}
		return true
	})
	if pages == 0 {
		return 0
	}
	return float64(used) / float64(pages)
}

// Pages returns the PIDs of all leaf pages (for experiment harnesses that
// drive eviction policies).
func (t *Tree) Pages() []mapping.PID {
	var out []mapping.PID
	t.table.Range(func(pid mapping.PID, hdr *pageHeader) bool {
		if hdr != nil && hdr.isLeaf {
			out = append(out, pid)
		}
		return true
	})
	return out
}

// PageResident reports whether the leaf's base page is in main memory.
func (t *Tree) PageResident(pid mapping.PID) bool {
	hdr := t.header(pid, nil)
	_, isRef := chainBottom(hdr.head).(*diskRef)
	return !isRef
}
