package bwtree

import (
	"errors"
	"fmt"

	"costperf/internal/llama/logstore"
	"costperf/internal/llama/mapping"
)

// CompactEmptyLeaves removes leaves emptied by deletions, merging each
// into its left sibling under the same parent (the Bw-tree merge SMO,
// restricted to the same-parent case that keeps index routing sound), and
// collapses single-child roots. It returns the number of pages removed.
//
// This is a maintenance operation: the caller must guarantee no
// concurrent readers or writers (quiesced tree), the same contract as an
// offline compaction in production stores. State changes still go through
// the usual immutable-header installs, so a violated contract fails CAS
// rather than corrupting the tree.
//
// Durable state: a removed page's log records are invalidated so GC can
// reclaim them; the absorbing sibling and the parent are marked dirty and
// re-flush on the next FlushPage/FlushAll.
func (t *Tree) CompactEmptyLeaves() (int, error) {
	removed := 0
	for {
		n, err := t.compactPass()
		if err != nil {
			return removed, err
		}
		removed += n
		if n == 0 {
			break
		}
	}
	if err := t.collapseRoot(); err != nil {
		return removed, err
	}
	return removed, nil
}

// compactPass performs one sweep over all index pages, merging at most
// one empty child per parent per pass (parent headers change under us
// otherwise).
func (t *Tree) compactPass() (int, error) {
	removed := 0
	var firstErr error
	t.table.Range(func(pid mapping.PID, hdr *pageHeader) bool {
		if hdr == nil || hdr.isLeaf {
			return true
		}
		n, err := t.mergeEmptyChild(pid)
		if err != nil {
			firstErr = err
			return false
		}
		removed += n
		return true
	})
	return removed, firstErr
}

// mergeEmptyChild finds the first removable child of parent (index
// i >= 1, same-parent left sibling) and merges it away: empty leaves
// vanish into their left sibling's key range; underfull index siblings
// merge their entries (levels stay uniform, so the split machinery's
// level-based routing is preserved).
func (t *Tree) mergeEmptyChild(parent mapping.PID) (int, error) {
	phdr := t.header(parent, nil)
	idx, ok := phdr.head.(*indexBase)
	if !ok || len(idx.keys) == 0 {
		return 0, nil
	}
	for i := 1; i < len(idx.children); i++ {
		child := idx.children[i]
		chdr := t.header(child, nil)
		left := idx.children[i-1]
		lhdr := t.header(left, nil)
		if lhdr.right != child || lhdr.isLeaf != chdr.isLeaf || lhdr.level != chdr.level {
			// The side chain disagrees with the parent (e.g. an
			// uncompleted split in between); skip this candidate.
			continue
		}
		var nl pageHeader
		if chdr.isLeaf {
			if !t.leafEmpty(chdr) {
				continue
			}
			// The left sibling absorbs the empty page's key range.
			nl = *lhdr
			nl.highKey = chdr.highKey
			nl.right = chdr.right
			nl.dirtyBase = true
			if base, isBase := chainBottom(lhdr.head).(*leafBase); isBase {
				nb := &leafBase{keys: base.keys, vals: base.vals, highKey: chdr.highKey, right: chdr.right}
				nl.head = spliceBottom(lhdr.head, nb)
			}
		} else {
			// Index sibling merge: combine when the result stays within a
			// page. The separator between them is the left's high key.
			ci, okC := chdr.head.(*indexBase)
			li, okL := lhdr.head.(*indexBase)
			if !okC || !okL {
				continue
			}
			if li.memSize()+ci.memSize() > t.cfg.MaxPageBytes && len(li.keys)+len(ci.keys) > 1 {
				continue
			}
			nk := make([][]byte, 0, len(li.keys)+1+len(ci.keys))
			nk = append(nk, li.keys...)
			nk = append(nk, lhdr.highKey)
			nk = append(nk, ci.keys...)
			nc := make([]mapping.PID, 0, len(li.children)+len(ci.children))
			nc = append(nc, li.children...)
			nc = append(nc, ci.children...)
			merged := &indexBase{keys: nk, children: nc, highKey: chdr.highKey, right: chdr.right}
			nl = *lhdr
			nl.head = merged
			nl.highKey = chdr.highKey
			nl.right = chdr.right
			nl.memBytes = merged.memSize()
			nl.dirtyBase = true
		}
		if !t.install(left, lhdr, &nl) {
			return 0, errors.New("bwtree: concurrent access during CompactEmptyLeaves")
		}
		// The parent drops the separator and the child pointer.
		nk := make([][]byte, 0, len(idx.keys)-1)
		nk = append(nk, idx.keys[:i-1]...)
		nk = append(nk, idx.keys[i:]...)
		nc := make([]mapping.PID, 0, len(idx.children)-1)
		nc = append(nc, idx.children[:i]...)
		nc = append(nc, idx.children[i+1:]...)
		ni := &indexBase{keys: nk, children: nc, highKey: idx.highKey, right: idx.right}
		np := *phdr
		np.head = ni
		np.memBytes = ni.memSize()
		np.dirtyBase = true
		if !t.install(parent, phdr, &np) {
			return 0, errors.New("bwtree: concurrent access during CompactEmptyLeaves")
		}
		// Retire the merged-away page: invalidate its durable records,
		// free its PID.
		t.retirePage(child, chdr)
		return 1, nil
	}
	return 0, nil
}

// leafEmpty reports whether a leaf's consolidated view holds no keys and
// its chain carries no pending deltas. Evicted pages are not inspected
// (their durable state may be non-empty); they are simply skipped.
func (t *Tree) leafEmpty(hdr *pageHeader) bool {
	if hdr.chainLen != 0 {
		return false
	}
	base, ok := hdr.head.(*leafBase)
	return ok && len(base.keys) == 0
}

// retirePage invalidates a removed page's durable records and recycles
// its PID.
func (t *Tree) retirePage(pid mapping.PID, hdr *pageHeader) {
	if t.cfg.Store != nil {
		for _, a := range hdr.diskChain {
			t.cfg.Store.Invalidate(a)
		}
	}
	t.mem.Add(-int64(hdr.memBytes))
	t.table.Free(pid)
}

// collapseRoot shrinks the tree when the root is an index page with a
// single child: the child's content moves up into the root PID.
func (t *Tree) collapseRoot() error {
	for {
		rhdr := t.header(t.root, nil)
		idx, ok := rhdr.head.(*indexBase)
		if !ok || len(idx.children) != 1 {
			return nil
		}
		childPID := idx.children[0]
		chdr := t.header(childPID, nil)
		// An evicted child must come back: its durable records carry the
		// child PID, which is about to be retired.
		if ref, isRef := chainBottom(chdr.head).(*diskRef); isRef {
			if err := t.loadPage(childPID, ref, nil); err != nil {
				return err
			}
			continue
		}
		nr := *chdr
		// The moved content re-flushes under the root PID.
		nr.addr = logstore.Address{}
		nr.diskChain = nil
		nr.dirtyBase = true
		if !t.install(t.root, rhdr, &nr) {
			return errors.New("bwtree: concurrent access during CompactEmptyLeaves")
		}
		// Net memory effect: install charged (child - old root); retiring
		// the child PID below releases the child's bytes, leaving exactly
		// the old root index reclaimed.
		t.retirePage(childPID, chdr)
	}
}

// Depth returns the tree height (1 = root is a leaf) — for tests and
// experiments.
func (t *Tree) Depth() int {
	d := 1
	pid := t.root
	for {
		hdr := t.header(pid, nil)
		if hdr.isLeaf {
			return d
		}
		idx, ok := hdr.head.(*indexBase)
		if !ok || len(idx.children) == 0 {
			return d
		}
		pid = idx.children[0]
		d++
	}
}

// CheckInvariants walks the whole tree verifying structural invariants:
// key ordering within and across pages, child ranges consistent with
// parent separators, side-chain completeness at the leaf level, and level
// consistency. It is an O(n) diagnostic for tests.
func (t *Tree) CheckInvariants() error {
	// Leaf side chain: strictly ascending high keys, full coverage.
	pid, _, _, err := t.descend(nil, nil)
	if err != nil {
		return err
	}
	var prevHigh []byte
	seen := map[mapping.PID]bool{}
	for {
		if seen[pid] {
			return fmt.Errorf("bwtree: leaf side-chain cycle at %d", pid)
		}
		seen[pid] = true
		hdr := t.header(pid, nil)
		if !hdr.isLeaf {
			return fmt.Errorf("bwtree: non-leaf %d in leaf chain", pid)
		}
		if hdr.level != 0 {
			return fmt.Errorf("bwtree: leaf %d has level %d", pid, hdr.level)
		}
		if base, ok := chainBottom(hdr.head).(*leafBase); ok {
			for i := 1; i < len(base.keys); i++ {
				if string(base.keys[i-1]) >= string(base.keys[i]) {
					return fmt.Errorf("bwtree: leaf %d keys out of order", pid)
				}
			}
			if len(base.keys) > 0 && hdr.highKey != nil &&
				string(base.keys[len(base.keys)-1]) >= string(hdr.highKey) {
				return fmt.Errorf("bwtree: leaf %d key beyond high key", pid)
			}
		}
		if prevHigh != nil && hdr.highKey != nil && string(hdr.highKey) <= string(prevHigh) {
			return fmt.Errorf("bwtree: leaf chain high keys not ascending at %d", pid)
		}
		if hdr.highKey == nil {
			return nil // rightmost leaf
		}
		prevHigh = hdr.highKey
		pid = hdr.right
	}
}
