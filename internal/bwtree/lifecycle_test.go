package bwtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"costperf/internal/llama/logstore"
	"costperf/internal/ssd"
)

// TestLifecycleModelProperty is the heavyweight correctness test: a long
// random interleaving of CRUD operations with every lifecycle event the
// storage stack supports — page flushes, base eviction (with and without
// delta retention), blind writes to evicted pages, log-store GC,
// checkpoint + crash recovery, and quiesced compaction — continuously
// checked against a plain map model and the structural invariant walker.
func TestLifecycleModelProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runLifecycle(t, seed)
		})
	}
}

func runLifecycle(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dev := ssd.New(ssd.SamsungSSD)
	newStore := func() *logstore.Store {
		st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 14, SegmentBytes: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := newStore()
	tr, err := New(Config{Store: st, MaxPageBytes: 1024, ConsolidateAfter: 4})
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}

	key := func() []byte { return []byte(fmt.Sprintf("key-%05d", rng.Intn(800))) }
	val := func() string { return fmt.Sprintf("val-%d", rng.Int63()) }

	verifySample := func(tag string) {
		t.Helper()
		// Check 30 random model keys plus 10 random absent keys.
		for i := 0; i < 30; i++ {
			k := key()
			got, ok, err := tr.Get(k)
			if err != nil {
				t.Fatalf("%s: get %q: %v", tag, k, err)
			}
			want, wok := model[string(k)]
			if ok != wok || (ok && string(got) != want) {
				t.Fatalf("%s: get %q = %q,%v want %q,%v", tag, k, got, ok, want, wok)
			}
		}
	}
	verifyFull := func(tag string) {
		t.Helper()
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		if err := tr.Scan(nil, 0, func(k, v []byte) bool {
			if i >= len(keys) {
				t.Fatalf("%s: scan surplus key %q", tag, k)
			}
			if string(k) != keys[i] || string(v) != model[keys[i]] {
				t.Fatalf("%s: scan[%d] = %q,%q want %q,%q", tag, i, k, v, keys[i], model[keys[i]])
			}
			i++
			return true
		}); err != nil {
			t.Fatalf("%s: scan: %v", tag, err)
		}
		if i != len(keys) {
			t.Fatalf("%s: scan visited %d of %d keys", tag, i, len(keys))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: invariants: %v", tag, err)
		}
	}

	const steps = 4000
	for step := 0; step < steps; step++ {
		switch r := rng.Intn(100); {
		case r < 45: // insert/update
			k, v := key(), val()
			if err := tr.Insert(k, []byte(v)); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			model[string(k)] = v
		case r < 55: // blind write
			k, v := key(), val()
			if err := tr.BlindWrite(k, []byte(v)); err != nil {
				t.Fatalf("step %d blind: %v", step, err)
			}
			model[string(k)] = v
		case r < 65: // delete
			k := key()
			if err := tr.Delete(k); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			delete(model, string(k))
		case r < 85: // read
			verifySample(fmt.Sprintf("step %d", step))
		case r < 90: // flush + maybe evict some pages
			pids := tr.Pages()
			for _, pid := range pids {
				if rng.Intn(3) == 0 {
					if err := tr.EvictPage(pid, rng.Intn(2) == 0); err != nil {
						t.Fatalf("step %d evict: %v", step, err)
					}
				}
			}
		case r < 93: // log GC
			if err := st.Flush(nil); err != nil {
				t.Fatalf("step %d flush: %v", step, err)
			}
			if _, err := st.CollectSegment(tr.RelocateForGC, nil); err != nil {
				t.Fatalf("step %d gc: %v", step, err)
			}
		case r < 96: // quiesced compaction
			if _, err := tr.CompactEmptyLeaves(); err != nil {
				t.Fatalf("step %d compact: %v", step, err)
			}
		default: // checkpoint + crash + recover
			if err := tr.FlushAll(); err != nil {
				t.Fatalf("step %d checkpoint: %v", step, err)
			}
			if err := st.Close(); err != nil {
				t.Fatalf("step %d close: %v", step, err)
			}
			st = newStore()
			tr, err = Open(Config{Store: st, MaxPageBytes: 1024, ConsolidateAfter: 4})
			if err != nil {
				t.Fatalf("step %d recover: %v", step, err)
			}
		}
		if step%1000 == 999 {
			verifyFull(fmt.Sprintf("step %d", step))
		}
	}
	verifyFull("final")
}

// TestEvictLoadStressConcurrent hammers eviction and loading from multiple
// goroutines against concurrent readers and writers — the race pattern
// the read-miss splice (loadPage) must survive.
func TestEvictLoadStressConcurrent(t *testing.T) {
	dev := ssd.New(ssd.SamsungSSD)
	st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 16, SegmentBytes: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 2000
	for i := 0; i < keys; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 8)
	for w := 0; w < 3; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				k := []byte(fmt.Sprintf("k%05d", rng.Intn(keys)))
				if rng.Intn(2) == 0 {
					if _, _, err := tr.Get(k); err != nil {
						done <- err
						return
					}
				} else {
					if err := tr.Insert(k, []byte(fmt.Sprintf("w%d", w))); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 2; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 100; i++ {
				pids := tr.Pages()
				pid := pids[rng.Intn(len(pids))]
				if err := tr.EvictPage(pid, rng.Intn(2) == 0); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for i := 0; i < 5; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Everything still present.
	for i := 0; i < keys; i++ {
		if _, ok, err := tr.Get([]byte(fmt.Sprintf("k%05d", i))); err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
