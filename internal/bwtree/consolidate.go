package bwtree

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sort"

	"costperf/internal/llama/logstore"
	"costperf/internal/llama/mapping"
	"costperf/internal/sim"
)

// errRetryConsolidate signals a benign CAS race during consolidation; the
// state it wanted to replace is gone and the work is unnecessary.
var errRetryConsolidate = errors.New("bwtree: consolidation raced")

// overlay is the net effect of a delta chain: newest-wins per key.
type overlay struct {
	keys    [][]byte
	vals    [][]byte // nil value slot means deleted
	deleted []bool
}

// collectDeltas walks the chain and produces a newest-wins overlay plus
// the chain's terminal node.
func collectDeltas(head node, ch *sim.Charger) (map[string]*struct {
	val     []byte
	deleted bool
}, node) {
	seen := make(map[string]*struct {
		val     []byte
		deleted bool
	})
	n := head
	for {
		switch v := n.(type) {
		case *insertDelta:
			chase(ch, 1)
			if _, ok := seen[string(v.key)]; !ok {
				seen[string(v.key)] = &struct {
					val     []byte
					deleted bool
				}{val: v.val}
			}
			n = v.next
		case *deleteDelta:
			chase(ch, 1)
			if _, ok := seen[string(v.key)]; !ok {
				seen[string(v.key)] = &struct {
					val     []byte
					deleted bool
				}{deleted: true}
			}
			n = v.next
		default:
			return seen, n
		}
	}
}

// applyOverlay merges a base page with a delta overlay into fresh sorted
// key/value slices. Keys outside [nil, highKey) are dropped (they belong
// to a right sibling after a split).
func applyOverlay(base *leafBase, ov map[string]*struct {
	val     []byte
	deleted bool
}, highKey []byte, ch *sim.Charger) ([][]byte, [][]byte) {
	keys := make([][]byte, 0, len(base.keys)+len(ov))
	vals := make([][]byte, 0, len(base.keys)+len(ov))
	inRange := func(k []byte) bool {
		return highKey == nil || bytes.Compare(k, highKey) < 0
	}
	for i := range base.keys {
		k := base.keys[i]
		if !inRange(k) {
			continue
		}
		if e, ok := ov[string(k)]; ok {
			if !e.deleted {
				keys = append(keys, k)
				vals = append(vals, e.val)
			}
			delete(ov, string(k))
			continue
		}
		keys = append(keys, k)
		vals = append(vals, base.vals[i])
	}
	// Remaining overlay entries are new keys.
	extra := make([]string, 0, len(ov))
	for k, e := range ov {
		if !e.deleted && inRange([]byte(k)) {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	if len(extra) > 0 {
		merged := make([][]byte, 0, len(keys)+len(extra))
		mergedV := make([][]byte, 0, len(keys)+len(extra))
		i := 0
		for _, ks := range extra {
			k := []byte(ks)
			for i < len(keys) && bytes.Compare(keys[i], k) < 0 {
				merged = append(merged, keys[i])
				mergedV = append(mergedV, vals[i])
				i++
			}
			merged = append(merged, k)
			mergedV = append(mergedV, ov[ks].val)
		}
		merged = append(merged, keys[i:]...)
		mergedV = append(mergedV, vals[i:]...)
		keys, vals = merged, mergedV
	}
	if ch != nil {
		ch.Compare(len(keys))
	}
	return keys, vals
}

// consolidate rebuilds pid's leaf as a single base page, splitting it if
// the result exceeds MaxPageBytes. It retries internal CAS races a few
// times and returns errRetryConsolidate if the page keeps changing (the
// next writer will consolidate).
func (t *Tree) consolidate(pid mapping.PID, ch *sim.Charger) error {
	for attempt := 0; attempt < 4; attempt++ {
		hdr := t.header(pid, ch)
		if !hdr.isLeaf {
			return nil
		}
		if hdr.chainLen == 0 {
			if base, ok := hdr.head.(*leafBase); ok && base.memSize() > t.cfg.MaxPageBytes && len(base.keys) > 1 {
				if err := t.split(pid, hdr, base, ch); err != nil {
					if errors.Is(err, errRetryConsolidate) {
						continue
					}
					return err
				}
			}
			abandonMaint(t, ch)
			return nil
		}
		ov, bottom := collectDeltas(hdr.head, ch)
		base, ok := bottom.(*leafBase)
		if !ok {
			// Base is on secondary storage: load it first, then retry.
			ref := bottom.(*diskRef)
			if err := t.loadPage(pid, ref, ch); err != nil {
				return err
			}
			continue
		}
		keys, vals := applyOverlay(base, ov, hdr.highKey, ch)
		nb := &leafBase{keys: keys, vals: vals, highKey: hdr.highKey, right: hdr.right}
		nh := &pageHeader{
			head:       nb,
			highKey:    hdr.highKey,
			right:      hdr.right,
			addr:       hdr.addr,
			diskChain:  hdr.diskChain,
			dirtyBase:  true,
			memBytes:   nb.memSize(),
			lastAccess: hdr.lastAccess,
			isLeaf:     true,
		}
		if !t.install(pid, hdr, nh) {
			continue
		}
		t.stats.Consolidations.Inc()
		if nb.memSize() > t.cfg.MaxPageBytes && len(nb.keys) > 1 {
			if err := t.split(pid, nh, nb, ch); err != nil && !errors.Is(err, errRetryConsolidate) {
				return err
			}
		}
		abandonMaint(t, ch)
		return nil
	}
	abandonMaint(t, ch)
	return errRetryConsolidate
}

// abandonMaint settles maintenance cost as background SS-class work is not
// an operation; we fold it into the tracker as extra cost on the class the
// charger reached.
func abandonMaint(t *Tree, ch *sim.Charger) {
	if ch == nil {
		return
	}
	t.cfg.Session.Tracker().AddCost(ch.Class(), ch.Cost())
	ch.Abandon()
}

// split divides a consolidated leaf in two (B-link style): the left half
// keeps the PID, the right half gets a new PID reachable through the
// left's side pointer, and the parent gains an index entry. Readers never
// block: until the parent is updated they reach the right half through the
// side pointer.
func (t *Tree) split(pid mapping.PID, hdr *pageHeader, base *leafBase, ch *sim.Charger) error {
	mid := splitPoint(base)
	sep := base.keys[mid]
	rightPID, err := t.table.Allocate()
	if err != nil {
		return err
	}
	rb := &leafBase{
		keys:    append([][]byte(nil), base.keys[mid:]...),
		vals:    append([][]byte(nil), base.vals[mid:]...),
		highKey: hdr.highKey,
		right:   hdr.right,
	}
	rh := &pageHeader{
		head: rb, highKey: hdr.highKey, right: hdr.right,
		dirtyBase: true, memBytes: rb.memSize(), lastAccess: hdr.lastAccess, isLeaf: true,
	}
	t.table.Store(rightPID, rh)

	lb := &leafBase{
		keys:    append([][]byte(nil), base.keys[:mid]...),
		vals:    append([][]byte(nil), base.vals[:mid]...),
		highKey: sep,
		right:   rightPID,
	}
	lh := &pageHeader{
		head: lb, highKey: sep, right: rightPID,
		addr: hdr.addr, dirtyBase: true, memBytes: lb.memSize(), lastAccess: hdr.lastAccess, isLeaf: true,
	}
	if !t.install(pid, hdr, lh) {
		t.table.Free(rightPID)
		return errRetryConsolidate
	}
	t.mem.Add(int64(rh.memBytes))
	t.stats.Splits.Inc()
	return t.insertIndexEntry(0, lb.keys[0], sep, rightPID, ch)
}

// splitPoint picks the index where the page's bytes divide roughly in half.
func splitPoint(base *leafBase) int {
	total := 0
	for i := range base.keys {
		total += bytesKV(base.keys[i], base.vals[i])
	}
	acc := 0
	for i := range base.keys {
		acc += bytesKV(base.keys[i], base.vals[i])
		if acc >= total/2 && i+1 < len(base.keys) {
			return i + 1
		}
	}
	return len(base.keys) / 2
}

// insertIndexEntry completes a split: it installs (sep -> rightPID) into
// the index page one level above the split page whose key range covers
// sep, growing the tree at the root if necessary. routeKey is any key
// inside the left half's range; it routes the descent to the correct
// subtree. childLevel is the split page's level (leaf = 0).
func (t *Tree) insertIndexEntry(childLevel int, routeKey, sep []byte, rightPID mapping.PID, ch *sim.Charger) error {
	targetLevel := childLevel + 1
	for attempt := 0; ; attempt++ {
		if attempt > 1<<16 {
			return errors.New("bwtree: SMO completion live-locked")
		}
		if attempt > 0 {
			runtime.Gosched()
		}
		rhdr := t.header(t.root, ch)
		if rhdr.level < targetLevel {
			// The tree is not tall enough yet: the root itself is a page
			// with a pending split. Grow it if that split is ours;
			// otherwise wait for the owning SMO to grow it.
			done, err := t.growRoot(sep, rightPID, ch)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
			continue
		}
		// Descend to the index page at targetLevel whose range covers
		// routeKey, following side pointers at every level.
		pid, hdr := t.root, rhdr
		ok := true
		for hdr.level > targetLevel {
			for !hdr.covers(routeKey) {
				pid = hdr.right
				hdr = t.header(pid, ch)
			}
			idx, isIdx := hdr.head.(*indexBase)
			if !isIdx {
				ok = false
				break
			}
			i := sort.Search(len(idx.keys), func(i int) bool {
				return bytes.Compare(routeKey, idx.keys[i]) < 0
			})
			pid = idx.children[i]
			hdr = t.header(pid, ch)
		}
		if !ok || hdr.level != targetLevel {
			continue
		}
		// B-link fixup: the entry belongs in the index page covering sep,
		// which may be to the right of the one covering routeKey.
		for !hdr.covers(sep) {
			pid = hdr.right
			hdr = t.header(pid, ch)
		}
		if hdr.level != targetLevel {
			continue
		}
		idx, isIdx := hdr.head.(*indexBase)
		if !isIdx {
			continue
		}
		i := sort.Search(len(idx.keys), func(i int) bool {
			return bytes.Compare(sep, idx.keys[i]) < 0
		})
		// Idempotence: already installed?
		if i > 0 && bytes.Equal(idx.keys[i-1], sep) {
			return nil
		}
		nk := make([][]byte, 0, len(idx.keys)+1)
		nk = append(nk, idx.keys[:i]...)
		nk = append(nk, sep)
		nk = append(nk, idx.keys[i:]...)
		nc := make([]mapping.PID, 0, len(idx.children)+1)
		nc = append(nc, idx.children[:i+1]...)
		nc = append(nc, rightPID)
		nc = append(nc, idx.children[i+1:]...)
		ni := &indexBase{keys: nk, children: nc, highKey: idx.highKey, right: idx.right}
		nh := &pageHeader{
			head: ni, highKey: hdr.highKey, right: hdr.right,
			addr: hdr.addr, diskChain: hdr.diskChain, dirtyBase: true,
			memBytes: ni.memSize(), lastAccess: hdr.lastAccess,
			isLeaf: false, level: hdr.level,
		}
		if !t.install(pid, hdr, nh) {
			continue
		}
		if ni.memSize() > t.cfg.MaxPageBytes && len(ni.keys) > 2 {
			if err := t.splitIndex(pid, ch); err != nil && !errors.Is(err, errRetryConsolidate) {
				return err
			}
		}
		return nil
	}
}

// growRoot replaces a splitting root page (leaf or index) with a new index
// root over {old content moved to a fresh PID, right sibling}. It returns
// true when the (sep, rightPID) split has been anchored.
func (t *Tree) growRoot(sep []byte, rightPID mapping.PID, ch *sim.Charger) (bool, error) {
	rootPID := t.root
	hdr := t.header(rootPID, ch)
	// Only the SMO whose split produced the root's current side link may
	// grow it; other SMOs wait for it.
	if hdr.right != rightPID || !bytes.Equal(hdr.highKey, sep) {
		return false, nil
	}
	// The moved half must be memory-resident so it can re-flush under its
	// new PID; load it if a concurrent evictor raced us.
	if ref, ok := chainBottom(hdr.head).(*diskRef); ok {
		if err := t.loadPage(rootPID, ref, ch); err != nil {
			return false, err
		}
		return false, nil // retry with the loaded state
	}
	leftPID, err := t.table.Allocate()
	if err != nil {
		return false, err
	}
	lh := *hdr // copy of the split left half, now living at leftPID
	// The moved page's durable records carry the root's PID; it must
	// re-flush under its new identity.
	oldChain := lh.diskChain
	lh.addr = logstore.Address{}
	lh.diskChain = nil
	lh.dirtyBase = true
	t.table.Store(leftPID, &lh)
	t.mem.Add(int64(lh.memBytes))

	ni := &indexBase{keys: [][]byte{sep}, children: []mapping.PID{leftPID, rightPID}}
	nh := &pageHeader{head: ni, memBytes: ni.memSize(), lastAccess: hdr.lastAccess,
		isLeaf: false, level: hdr.level + 1}
	if !t.install(rootPID, hdr, nh) {
		t.mem.Add(-int64(lh.memBytes))
		t.table.Free(leftPID)
		return false, nil // retry
	}
	// The old root-PID records no longer describe any page state.
	if t.cfg.Store != nil {
		for _, a := range oldChain {
			t.cfg.Store.Invalidate(a)
		}
	}
	return true, nil
}

// splitIndex splits an oversized index page, B-link style, and recurses
// into the parent.
func (t *Tree) splitIndex(pid mapping.PID, ch *sim.Charger) error {
	hdr := t.header(pid, ch)
	idx, ok := hdr.head.(*indexBase)
	if !ok || len(idx.keys) < 3 {
		return nil
	}
	m := len(idx.keys) / 2
	sep := idx.keys[m]
	rightPID, err := t.table.Allocate()
	if err != nil {
		return err
	}
	ri := &indexBase{
		keys:     append([][]byte(nil), idx.keys[m+1:]...),
		children: append([]mapping.PID(nil), idx.children[m+1:]...),
		highKey:  idx.highKey,
		right:    idx.right,
	}
	rh := &pageHeader{head: ri, highKey: hdr.highKey, right: hdr.right,
		memBytes: ri.memSize(), lastAccess: hdr.lastAccess, isLeaf: false, level: hdr.level}
	t.table.Store(rightPID, rh)

	li := &indexBase{
		keys:     append([][]byte(nil), idx.keys[:m]...),
		children: append([]mapping.PID(nil), idx.children[:m+1]...),
		highKey:  sep,
		right:    rightPID,
	}
	lh := &pageHeader{head: li, highKey: sep, right: rightPID,
		addr: hdr.addr, diskChain: hdr.diskChain, dirtyBase: true,
		memBytes: li.memSize(), lastAccess: hdr.lastAccess, isLeaf: false, level: hdr.level}
	if !t.install(pid, hdr, lh) {
		t.table.Free(rightPID)
		return errRetryConsolidate
	}
	t.mem.Add(int64(rh.memBytes))
	t.stats.Splits.Inc()
	return t.insertIndexEntry(hdr.level, li.keys[0], sep, rightPID, ch)
}

// Consolidate forces consolidation of the leaf owning key — exposed for
// tests and experiments.
func (t *Tree) Consolidate(key []byte) error {
	ch := t.maintenanceCharger()
	leaf, _, _, err := t.descend(key, ch)
	if err != nil {
		abandonMaint(t, ch)
		return err
	}
	err = t.consolidate(leaf, ch)
	if errors.Is(err, errRetryConsolidate) {
		return nil
	}
	return err
}

var _ = fmt.Sprintf // keep fmt import if unused later
