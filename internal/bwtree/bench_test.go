package bwtree

import (
	"sync/atomic"
	"testing"

	"costperf/internal/llama/logstore"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

func benchTree(b *testing.B, stored bool) *Tree {
	b.Helper()
	cfg := Config{}
	if stored {
		dev := ssd.New(ssd.SamsungSSD)
		st, err := logstore.Open(logstore.Config{Device: dev, BufferBytes: 1 << 20, SegmentBytes: 4 << 20})
		if err != nil {
			b.Fatal(err)
		}
		cfg.Store = st
	}
	tr, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func loadTree(b *testing.B, tr *Tree, n uint64) {
	b.Helper()
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(workload.Key(i), workload.ValueFor(i, 100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetWarm(b *testing.B) {
	tr := benchTree(b, false)
	const keys = 100000
	loadTree(b, tr, keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Get(workload.Key(uint64(i) % keys)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := benchTree(b, false)
	val := workload.ValueFor(1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlindWrite(b *testing.B) {
	tr := benchTree(b, false)
	const keys = 100000
	loadTree(b, tr, keys)
	val := []byte("blind-value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.BlindWrite(workload.Key(uint64(i)%keys), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan100(b *testing.B) {
	tr := benchTree(b, false)
	const keys = 100000
	loadTree(b, tr, keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := tr.Scan(workload.Key(uint64(i)%(keys-200)), 100, func(_, _ []byte) bool {
			n++
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlushEvictLoadCycle(b *testing.B) {
	tr := benchTree(b, true)
	const keys = 10000
	loadTree(b, tr, keys)
	pids := tr.Pages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pid := pids[i%len(pids)]
		if err := tr.EvictPage(pid, false); err != nil {
			b.Fatal(err)
		}
		// A read through the page forces the reload.
		if _, _, err := tr.Get(workload.Key(uint64(i*37) % keys)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetParallel(b *testing.B) {
	tr := benchTree(b, false)
	const keys = 100000
	loadTree(b, tr, keys)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			if _, _, err := tr.Get(workload.Key(i % keys)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkInsertParallel(b *testing.B) {
	tr := benchTree(b, false)
	val := workload.ValueFor(1, 100)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			if err := tr.Insert(workload.Key(uint64(i)*7919), val); err != nil {
				b.Fatal(err)
			}
		}
	})
}
