package bwtree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"costperf/internal/fault"
	"costperf/internal/llama/logstore"
	"costperf/internal/llama/mapping"
	"costperf/internal/sim"
)

// storeRead reads a log record, retrying transient device faults under the
// tree's retry policy. Corrupt and persistent errors surface immediately;
// the charger's context (if any) aborts both the I/O and the backoff.
func (t *Tree) storeRead(addr logstore.Address, ch *sim.Charger) (logstore.Record, error) {
	var rec logstore.Record
	err := t.cfg.Retry.DoCtx(ch.Context(), &t.stats.Retry, func() error {
		var rerr error
		rec, rerr = t.cfg.Store.Read(addr, ch)
		return rerr
	})
	return rec, err
}

// storeAppend appends a log record with degraded-state semantics: once a
// persistent storage failure is seen the tree latches read-only and all
// further flush work fails fast with ErrDegraded instead of risking a
// half-written durable state.
func (t *Tree) storeAppend(pid uint64, kind logstore.Kind, payload []byte, ch *sim.Charger) (logstore.Address, error) {
	if t.stats.Health.Degraded() {
		return logstore.Address{}, ErrDegraded
	}
	addr, err := t.cfg.Store.Append(pid, kind, payload, ch)
	if err != nil && fault.Classify(err) == fault.ClassPersistent {
		t.stats.Health.Degrade(fmt.Sprintf("append page %d: %v", pid, err))
	}
	return addr, err
}

// On-log payload subtypes (first payload byte).
const (
	payloadLeafBase  = 1
	payloadIndexBase = 2
	payloadDeltas    = 3
	payloadMeta      = 4
)

// metaPID tags the checkpoint metadata record in the log (mapping PID 0 is
// reserved, so it cannot collide with a real page).
const metaPID = 0

// Delta ops inside a flushed delta batch.
const (
	deltaOpInsert = 1
	deltaOpDelete = 2
)

// ErrNoCheckpoint is returned by Open when the log contains no checkpoint
// metadata record.
var ErrNoCheckpoint = errors.New("bwtree: no checkpoint in log")

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putBytes(buf *bytes.Buffer, b []byte) {
	putUvarint(buf, uint64(len(b)))
	buf.Write(b)
}

type reader struct {
	b   []byte
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = errors.New("bwtree: truncated payload")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.err = errors.New("bwtree: truncated payload")
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[:n])
	r.b = r.b[n:]
	return out
}

func putAddr(buf *bytes.Buffer, a logstore.Address) {
	putUvarint(buf, uint64(a.Off))
	putUvarint(buf, uint64(a.Len))
}

func (r *reader) addr() logstore.Address {
	off := r.uvarint()
	l := r.uvarint()
	return logstore.Address{Off: int64(off), Len: int32(l)}
}

// encodeLeafBase serializes a consolidated leaf: only the bytes the page
// actually holds are written (variable-size pages, paper Figure 5).
func encodeLeafBase(b *leafBase) []byte {
	var buf bytes.Buffer
	buf.WriteByte(payloadLeafBase)
	if b.highKey == nil {
		buf.WriteByte(0)
	} else {
		buf.WriteByte(1)
		putBytes(&buf, b.highKey)
	}
	putUvarint(&buf, uint64(b.right))
	putUvarint(&buf, uint64(len(b.keys)))
	for i := range b.keys {
		putBytes(&buf, b.keys[i])
		putBytes(&buf, b.vals[i])
	}
	return buf.Bytes()
}

func decodeLeafBase(p []byte) (*leafBase, error) {
	r := &reader{b: p[1:]}
	b := &leafBase{}
	if len(p) < 2 {
		return nil, errors.New("bwtree: short leaf payload")
	}
	if p[1] == 1 {
		r.b = p[2:]
		b.highKey = r.bytes()
	} else {
		r.b = p[2:]
	}
	b.right = mapping.PID(r.uvarint())
	n := r.uvarint()
	b.keys = make([][]byte, 0, n)
	b.vals = make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		b.keys = append(b.keys, r.bytes())
		b.vals = append(b.vals, r.bytes())
	}
	if r.err != nil {
		return nil, r.err
	}
	return b, nil
}

func encodeIndexBase(b *indexBase, level int) []byte {
	var buf bytes.Buffer
	buf.WriteByte(payloadIndexBase)
	putUvarint(&buf, uint64(level))
	if b.highKey == nil {
		buf.WriteByte(0)
	} else {
		buf.WriteByte(1)
		putBytes(&buf, b.highKey)
	}
	putUvarint(&buf, uint64(b.right))
	putUvarint(&buf, uint64(len(b.keys)))
	for i := range b.keys {
		putBytes(&buf, b.keys[i])
	}
	for _, c := range b.children {
		putUvarint(&buf, uint64(c))
	}
	return buf.Bytes()
}

func decodeIndexBase(p []byte) (*indexBase, int, error) {
	if len(p) < 3 {
		return nil, 0, errors.New("bwtree: short index payload")
	}
	r := &reader{b: p[1:]}
	level := int(r.uvarint())
	if r.err != nil || len(r.b) == 0 {
		return nil, 0, errors.New("bwtree: short index payload")
	}
	hasHigh := r.b[0] == 1
	r.b = r.b[1:]
	b := &indexBase{}
	if hasHigh {
		b.highKey = r.bytes()
	}
	b.right = mapping.PID(r.uvarint())
	n := r.uvarint()
	b.keys = make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		b.keys = append(b.keys, r.bytes())
	}
	b.children = make([]mapping.PID, 0, n+1)
	for i := uint64(0); i <= n; i++ {
		b.children = append(b.children, mapping.PID(r.uvarint()))
	}
	if r.err != nil {
		return nil, 0, r.err
	}
	return b, level, nil
}

// flatDelta is one entry of a flushed delta batch.
type flatDelta struct {
	op       byte
	key, val []byte
}

// encodeDeltaBatch serializes the unflushed deltas (newest first) with a
// pointer to the previous durable state — the paper's incremental flush
// (Figure 5: "need only store delta updates when the base page has
// previously been stored").
func encodeDeltaBatch(deltas []flatDelta, prev logstore.Address) []byte {
	var buf bytes.Buffer
	buf.WriteByte(payloadDeltas)
	putAddr(&buf, prev)
	putUvarint(&buf, uint64(len(deltas)))
	for _, d := range deltas {
		buf.WriteByte(d.op)
		putBytes(&buf, d.key)
		if d.op == deltaOpInsert {
			putBytes(&buf, d.val)
		}
	}
	return buf.Bytes()
}

func decodeDeltaBatch(p []byte) ([]flatDelta, logstore.Address, error) {
	r := &reader{b: p[1:]}
	prev := r.addr()
	n := r.uvarint()
	out := make([]flatDelta, 0, n)
	for i := uint64(0); i < n; i++ {
		if r.err != nil || len(r.b) == 0 {
			return nil, prev, errors.New("bwtree: truncated delta batch")
		}
		op := r.b[0]
		r.b = r.b[1:]
		d := flatDelta{op: op}
		d.key = r.bytes()
		if op == deltaOpInsert {
			d.val = r.bytes()
		}
		out = append(out, d)
	}
	if r.err != nil {
		return nil, prev, r.err
	}
	return out, prev, nil
}

// readDurableState reconstructs a page's consolidated content from the log
// by following the record chain from addr back to the base, applying delta
// batches newest-wins. It also returns the page's level (0 for leaves) and
// the chain addresses (newest first).
func (t *Tree) readDurableState(addr logstore.Address, ch *sim.Charger) (node, int, []logstore.Address, error) {
	var chain []logstore.Address
	var batches [][]flatDelta // newest first
	cur := addr
	for hop := 0; ; hop++ {
		if hop > 1024 {
			return nil, 0, nil, errors.New("bwtree: durable chain too long")
		}
		if cur.IsNil() {
			return nil, 0, nil, errors.New("bwtree: durable chain ends without base")
		}
		rec, err := t.storeRead(cur, ch)
		if err != nil {
			return nil, 0, nil, err
		}
		chain = append(chain, cur)
		if len(rec.Payload) == 0 {
			return nil, 0, nil, errors.New("bwtree: empty payload")
		}
		switch rec.Payload[0] {
		case payloadDeltas:
			ds, prev, err := decodeDeltaBatch(rec.Payload)
			if err != nil {
				return nil, 0, nil, err
			}
			batches = append(batches, ds)
			cur = prev
		case payloadLeafBase:
			base, err := decodeLeafBase(rec.Payload)
			if err != nil {
				return nil, 0, nil, err
			}
			return applyBatches(base, batches), 0, chain, nil
		case payloadIndexBase:
			idx, level, err := decodeIndexBase(rec.Payload)
			if err != nil {
				return nil, 0, nil, err
			}
			if len(batches) > 0 {
				return nil, 0, nil, errors.New("bwtree: delta batches over index page")
			}
			return idx, level, chain, nil
		default:
			return nil, 0, nil, fmt.Errorf("bwtree: unknown payload subtype %d", rec.Payload[0])
		}
	}
}

// applyBatches folds flushed delta batches (newest first) into a base.
func applyBatches(base *leafBase, batches [][]flatDelta) *leafBase {
	if len(batches) == 0 {
		return base
	}
	type entry struct {
		val     []byte
		deleted bool
	}
	seen := map[string]*entry{}
	for _, batch := range batches { // newest batch first; within a batch newest first
		for _, d := range batch {
			if _, ok := seen[string(d.key)]; ok {
				continue
			}
			seen[string(d.key)] = &entry{val: d.val, deleted: d.op == deltaOpDelete}
		}
	}
	keys := make([][]byte, 0, len(base.keys)+len(seen))
	vals := make([][]byte, 0, len(base.keys)+len(seen))
	for i := range base.keys {
		k := base.keys[i]
		if e, ok := seen[string(k)]; ok {
			if !e.deleted {
				keys = append(keys, k)
				vals = append(vals, e.val)
			}
			delete(seen, string(k))
			continue
		}
		keys = append(keys, k)
		vals = append(vals, base.vals[i])
	}
	extra := make([]string, 0, len(seen))
	for k, e := range seen {
		if !e.deleted {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, ks := range extra {
		k := []byte(ks)
		i := sort.Search(len(keys), func(i int) bool { return bytes.Compare(keys[i], k) >= 0 })
		keys = append(keys, nil)
		vals = append(vals, nil)
		copy(keys[i+1:], keys[i:])
		copy(vals[i+1:], vals[i:])
		keys[i] = k
		vals[i] = seen[ks].val
	}
	return &leafBase{keys: keys, vals: vals, highKey: base.highKey, right: base.right}
}

// loadPage brings an evicted page back into main memory: it reads the
// durable state from the log store (an SS operation) and splices it under
// any in-memory deltas that accumulated above the diskRef (blind updates).
func (t *Tree) loadPage(pid mapping.PID, ref *diskRef, ch *sim.Charger) error {
	if t.cfg.Store == nil {
		return ErrNoStore
	}
	state, _, _, err := t.readDurableState(ref.addr, ch)
	if err != nil {
		return err
	}
	base, ok := state.(*leafBase)
	if !ok {
		return fmt.Errorf("bwtree: loaded page %d is not a leaf", pid)
	}
	for {
		hdr := t.header(pid, ch)
		// Verify the chain still bottoms out in the same diskRef.
		if bot, ok := chainBottom(hdr.head).(*diskRef); !ok || bot != ref {
			return nil // another loader (or writer) already resolved it
		}
		nh := *hdr
		nh.head = spliceBottom(hdr.head, base)
		nh.memBytes = hdr.memBytes + base.memSize()
		if t.install(pid, hdr, &nh) {
			t.stats.PageLoads.Inc()
			return nil
		}
	}
}

// spliceBottom rebuilds a delta chain with a new terminal node.
func spliceBottom(head node, bottom node) node {
	var deltas []node
	n := head
	for {
		switch v := n.(type) {
		case *insertDelta:
			deltas = append(deltas, v)
			n = v.next
		case *deleteDelta:
			deltas = append(deltas, v)
			n = v.next
		default:
			out := bottom
			for i := len(deltas) - 1; i >= 0; i-- {
				switch d := deltas[i].(type) {
				case *insertDelta:
					out = &insertDelta{key: d.key, val: d.val, next: out}
				case *deleteDelta:
					out = &deleteDelta{key: d.key, next: out}
				}
			}
			return out
		}
	}
}

// collectUnflushed gathers the newest n deltas of a chain as flat records
// (newest first).
func collectUnflushed(head node, n int) []flatDelta {
	out := make([]flatDelta, 0, n)
	cur := head
	for len(out) < n {
		switch v := cur.(type) {
		case *insertDelta:
			out = append(out, flatDelta{op: deltaOpInsert, key: v.key, val: v.val})
			cur = v.next
		case *deleteDelta:
			out = append(out, flatDelta{op: deltaOpDelete, key: v.key})
			cur = v.next
		default:
			return out
		}
	}
	return out
}

// FlushPage makes the page's current state durable. Clean or
// delta-flushable pages write only their unflushed deltas (incremental
// flush); consolidated/dirty pages write a full variable-size base.
func (t *Tree) FlushPage(pid mapping.PID) error {
	if t.cfg.Store == nil {
		return ErrNoStore
	}
	ch := t.maintenanceCharger()
	defer abandonMaint(t, ch)
	for {
		hdr := t.header(pid, ch)
		if hdr.unflushed == 0 && !hdr.dirtyBase && !hdr.addr.IsNil() {
			return nil // already durable
		}
		if !hdr.isLeaf {
			idx, ok := hdr.head.(*indexBase)
			if !ok {
				return fmt.Errorf("bwtree: index page %d not resident", pid)
			}
			addr, err := t.storeAppend(uint64(pid), logstore.KindBase, encodeIndexBase(idx, hdr.level), ch)
			if err != nil {
				return err
			}
			nh := *hdr
			old := nh.diskChain
			nh.addr = addr
			nh.diskChain = []logstore.Address{addr}
			nh.unflushed = 0
			nh.dirtyBase = false
			if t.install(pid, hdr, &nh) {
				for _, a := range old {
					t.cfg.Store.Invalidate(a)
				}
				t.stats.PageFlushes.Inc()
				return nil
			}
			continue
		}
		// Incremental delta flush: base unchanged since last flush.
		if !hdr.dirtyBase && !hdr.addr.IsNil() {
			deltas := collectUnflushed(hdr.head, hdr.unflushed)
			payload := encodeDeltaBatch(deltas, hdr.addr)
			addr, err := t.storeAppend(uint64(pid), logstore.KindDelta, payload, ch)
			if err != nil {
				return err
			}
			nh := *hdr
			nh.addr = addr
			nh.diskChain = append([]logstore.Address{addr}, hdr.diskChain...)
			nh.unflushed = 0
			if t.install(pid, hdr, &nh) {
				t.stats.DeltaFlushes.Inc()
				return nil
			}
			continue
		}
		// Full base flush: consolidate in memory first if needed.
		base, ok := hdr.head.(*leafBase)
		if !ok {
			if err := t.consolidate(pid, t.maintenanceCharger()); err != nil && !errors.Is(err, errRetryConsolidate) {
				return err
			}
			continue
		}
		addr, err := t.storeAppend(uint64(pid), logstore.KindBase, encodeLeafBase(base), ch)
		if err != nil {
			return err
		}
		nh := *hdr
		old := nh.diskChain
		nh.addr = addr
		nh.diskChain = []logstore.Address{addr}
		nh.unflushed = 0
		nh.dirtyBase = false
		if t.install(pid, hdr, &nh) {
			for _, a := range old {
				t.cfg.Store.Invalidate(a)
			}
			t.stats.PageFlushes.Inc()
			return nil
		}
	}
}

// EvictPage drops a leaf's base page from main memory, flushing first if
// needed. When retainDeltas is true, in-memory deltas above the base are
// kept as a record cache (paper Section 6.3: "keep delta updates in main
// memory even when evicting a base page"); otherwise the whole in-memory
// state is dropped.
func (t *Tree) EvictPage(pid mapping.PID, retainDeltas bool) error {
	if t.cfg.Store == nil {
		return ErrNoStore
	}
	for {
		hdr := t.header(pid, nil)
		if !hdr.isLeaf {
			return fmt.Errorf("bwtree: refusing to evict index page %d", pid)
		}
		if _, already := chainBottom(hdr.head).(*diskRef); already && (!retainDeltas && hdr.chainLen == 0 || retainDeltas) {
			return nil // nothing resident to evict
		}
		if hdr.unflushed > 0 || hdr.dirtyBase || hdr.addr.IsNil() {
			if err := t.FlushPage(pid); err != nil {
				return err
			}
			continue
		}
		ref := &diskRef{addr: hdr.addr}
		nh := *hdr
		if retainDeltas {
			nh.head = spliceBottom(hdr.head, ref)
			nh.memBytes = hdr.memBytes - baseSize(hdr.head)
		} else {
			nh.head = ref
			nh.chainLen = 0
			nh.memBytes = headerBytes
		}
		if t.install(pid, hdr, &nh) {
			t.stats.PageEvictions.Inc()
			return nil
		}
	}
}

// baseSize returns the in-memory size of the chain's terminal base page
// (0 if the bottom is already a diskRef).
func baseSize(head node) int {
	switch b := chainBottom(head).(type) {
	case *leafBase:
		return b.memSize()
	case *indexBase:
		return b.memSize()
	default:
		return 0
	}
}

// FlushAll makes every page durable and appends checkpoint metadata, then
// flushes the log's write buffer. After FlushAll, Open can rebuild the
// tree from the device.
func (t *Tree) FlushAll() error {
	if t.cfg.Store == nil {
		return ErrNoStore
	}
	var err error
	t.table.Range(func(pid mapping.PID, _ *pageHeader) bool {
		if e := t.FlushPage(pid); e != nil {
			err = e
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteByte(payloadMeta)
	putUvarint(&buf, uint64(t.root))
	putUvarint(&buf, uint64(t.table.MaxPID()))
	addr, err := t.storeAppend(metaPID, logstore.KindBase, buf.Bytes(), nil)
	if err != nil {
		return err
	}
	t.metaMu.Lock()
	old := t.metaAddr
	t.metaAddr = addr
	t.metaMu.Unlock()
	if !old.IsNil() {
		t.cfg.Store.Invalidate(old)
	}
	return t.cfg.Store.Flush(nil)
}

// Open rebuilds a tree from a previously checkpointed log store. Index
// pages are loaded eagerly (the paper's assumption: index pages stay
// cached); leaf pages start evicted and load on first access.
func Open(cfg Config) (*Tree, error) {
	cfg.setDefaults()
	if cfg.Store == nil {
		return nil, ErrNoStore
	}
	latest := map[uint64]logstore.Address{}
	var checkpointed map[uint64]logstore.Address
	var root mapping.PID
	var maxPID mapping.PID
	sawMeta := false
	var metaAddr logstore.Address
	err := cfg.Store.Scan(func(rec logstore.Record, addr logstore.Address) bool {
		if rec.PID == metaPID {
			if len(rec.Payload) > 0 && rec.Payload[0] == payloadMeta {
				r := &reader{b: rec.Payload[1:]}
				root = mapping.PID(r.uvarint())
				maxPID = mapping.PID(r.uvarint())
				if r.err == nil {
					sawMeta = true
					metaAddr = addr
					// Snapshot the mapping as of this checkpoint. Records
					// after the last meta belong to a FlushAll that never
					// committed (torn by a crash mid-flush): trusting them
					// can resurrect a parent page that references children
					// whose records were lost in the tear. Recovery must be
					// checkpoint-consistent, so only records at or before
					// the last durable meta are used.
					checkpointed = make(map[uint64]logstore.Address, len(latest))
					for pid, a := range latest {
						checkpointed[pid] = a
					}
				}
			}
			return true
		}
		latest[rec.PID] = addr
		return true
	})
	if err != nil {
		return nil, err
	}
	if !sawMeta {
		return nil, ErrNoCheckpoint
	}
	t := &Tree{cfg: cfg, table: mapping.New[pageHeader](cfg.MaxPIDs), root: root}
	// Track the live checkpoint record so GC relocates rather than drops it.
	t.metaAddr = metaAddr
	for pidRaw, addr := range checkpointed {
		pid := mapping.PID(pidRaw)
		if pid > maxPID {
			maxPID = pid
		}
		state, level, chain, err := t.readDurableState(addr, nil)
		if err != nil {
			return nil, fmt.Errorf("bwtree: recovering page %d: %w", pid, err)
		}
		switch s := state.(type) {
		case *indexBase:
			h := &pageHeader{
				head: s, highKey: s.highKey, right: s.right,
				addr: addr, diskChain: chain, memBytes: s.memSize(), isLeaf: false, level: level,
			}
			t.table.Store(pid, h)
			t.mem.Add(int64(h.memBytes))
		case *leafBase:
			h := &pageHeader{
				head: &diskRef{addr: addr}, highKey: s.highKey, right: s.right,
				addr: addr, diskChain: chain, memBytes: headerBytes, isLeaf: true,
			}
			t.table.Store(pid, h)
			t.mem.Add(int64(h.memBytes))
		}
	}
	// Reserve recovered PIDs so future allocations do not collide.
	if cur := t.table.MaxPID(); cur < maxPID {
		t.table.Store(maxPID, nil)
	}
	if t.table.Get(root) == nil {
		return nil, fmt.Errorf("bwtree: root page %d missing from log", root)
	}
	return t, nil
}

// RelocateForGC is the log-store GC callback: it reports whether the
// record at oldAddr is part of some page's durable state and, if so,
// preserves the page's data before the segment is trimmed. Single-record
// pages are re-appended as-is; multi-record chains are rewritten as a
// fresh consolidated base (invalidating the rest of the old chain).
func (t *Tree) RelocateForGC(rec logstore.Record, oldAddr logstore.Address) bool {
	if rec.PID == metaPID {
		// Checkpoint metadata: relocate only the latest checkpoint record.
		t.metaMu.Lock()
		latest := t.metaAddr
		t.metaMu.Unlock()
		if latest != oldAddr {
			return false // superseded checkpoint
		}
		na, err := t.storeAppend(metaPID, logstore.KindBase, rec.Payload, nil)
		if err != nil {
			return false
		}
		t.metaMu.Lock()
		t.metaAddr = na
		t.metaMu.Unlock()
		return true
	}
	pid := mapping.PID(rec.PID)
	if t.table.Get(pid) == nil {
		return false
	}
	for {
		hdr := t.header(pid, nil)
		live := false
		for _, a := range hdr.diskChain {
			if a == oldAddr {
				live = true
				break
			}
		}
		if !live {
			return false
		}
		if len(hdr.diskChain) == 1 && hdr.addr == oldAddr {
			// Sole record: relocate verbatim.
			na, err := t.storeAppend(rec.PID, rec.Kind, rec.Payload, nil)
			if err != nil {
				return false
			}
			nh := *hdr
			nh.addr = na
			nh.diskChain = []logstore.Address{na}
			if _, ok := chainBottom(hdr.head).(*diskRef); ok {
				nh.head = spliceBottom(hdr.head, &diskRef{addr: na})
			}
			if t.install(pid, hdr, &nh) {
				return true
			}
			continue
		}
		// Multi-record chain: rewrite the page's full state as a fresh
		// base, invalidating the rest of the old chain.
		if err := t.rewriteDurable(pid); err != nil {
			return false
		}
		return false // old record replaced, not relocated verbatim
	}
}

// rewriteDurable re-appends a page's complete durable state as a single
// fresh base record and invalidates the old multi-record chain, preserving
// the page's residency (an evicted page stays evicted).
func (t *Tree) rewriteDurable(pid mapping.PID) error {
	for {
		hdr := t.header(pid, nil)
		if hdr.addr.IsNil() {
			return nil
		}
		if !hdr.isLeaf {
			idx, ok := hdr.head.(*indexBase)
			if !ok {
				return fmt.Errorf("bwtree: index page %d not resident", pid)
			}
			na, err := t.storeAppend(uint64(pid), logstore.KindBase, encodeIndexBase(idx, hdr.level), nil)
			if err != nil {
				return err
			}
			nh := *hdr
			old := hdr.diskChain
			nh.addr = na
			nh.diskChain = []logstore.Address{na}
			if t.install(pid, hdr, &nh) {
				for _, a := range old {
					t.cfg.Store.Invalidate(a)
				}
				return nil
			}
			continue
		}
		// Leaf: reconstruct the durable state (not the in-memory state —
		// unflushed in-memory deltas stay unflushed).
		state, _, _, err := t.readDurableState(hdr.addr, nil)
		if err != nil {
			return err
		}
		base, ok := state.(*leafBase)
		if !ok {
			return fmt.Errorf("bwtree: page %d durable state is not a leaf", pid)
		}
		na, err := t.storeAppend(uint64(pid), logstore.KindBase, encodeLeafBase(base), nil)
		if err != nil {
			return err
		}
		nh := *hdr
		old := hdr.diskChain
		nh.addr = na
		nh.diskChain = []logstore.Address{na}
		if _, isRef := chainBottom(hdr.head).(*diskRef); isRef {
			nh.head = spliceBottom(hdr.head, &diskRef{addr: na})
		}
		if t.install(pid, hdr, &nh) {
			for _, a := range old {
				t.cfg.Store.Invalidate(a)
			}
			return nil
		}
	}
}
