package bwtree

import (
	"bytes"
	"fmt"
	"testing"

	"costperf/internal/workload"
)

func TestIteratorFullWalk(t *testing.T) {
	tr := newMemTree(t)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 24)); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.NewIterator(nil)
	count := 0
	var prev []byte
	for it.Next() {
		k := it.Key()
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("iterator out of order")
		}
		if !bytes.Equal(it.Value(), workload.ValueFor(workload.KeyID(k), 24)) {
			t.Fatalf("value mismatch at key %d", workload.KeyID(k))
		}
		prev = append(prev[:0], k...)
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("visited %d, want %d", count, n)
	}
}

func TestIteratorSeek(t *testing.T) {
	tr := newMemTree(t)
	for i := 0; i < 100; i++ {
		mustInsert(t, tr, fmt.Sprintf("k%03d", i), "v")
	}
	it := tr.NewIterator([]byte("k050"))
	var got []string
	for i := 0; i < 3 && it.Next(); i++ {
		got = append(got, string(it.Key()))
	}
	want := "[k050 k051 k052]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Seek between keys lands on the next one.
	it2 := tr.NewIterator([]byte("k050x"))
	if !it2.Next() || string(it2.Key()) != "k051" {
		t.Fatalf("between-keys seek = %q", it2.Key())
	}
	// Seek past the end yields nothing.
	it3 := tr.NewIterator([]byte("zzz"))
	if it3.Next() {
		t.Fatal("iterator past end returned an entry")
	}
	if it3.Err() != nil {
		t.Fatal(it3.Err())
	}
}

func TestIteratorEmptyTree(t *testing.T) {
	tr := newMemTree(t)
	it := tr.NewIterator(nil)
	if it.Next() {
		t.Fatal("empty tree iterator returned an entry")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestIteratorAcrossEvictedPages(t *testing.T) {
	tr, st, _ := newStoredTree(t)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 48)); err != nil {
			t.Fatal(err)
		}
	}
	for _, pid := range tr.Pages() {
		if err := tr.EvictPage(pid, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(nil); err != nil {
		t.Fatal(err)
	}
	it := tr.NewIterator(nil)
	count := 0
	for it.Next() {
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("visited %d across evicted pages, want %d", count, n)
	}
}

func TestIteratorClosedTree(t *testing.T) {
	tr := newMemTree(t)
	tr.Close()
	it := tr.NewIterator(nil)
	if it.Next() {
		t.Fatal("closed-tree iterator advanced")
	}
	if it.Err() != ErrClosed {
		t.Fatalf("err = %v", it.Err())
	}
}

func TestIteratorMatchesScan(t *testing.T) {
	tr := newMemTree(t)
	for i := 0; i < 1000; i += 3 {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 16)); err != nil {
			t.Fatal(err)
		}
	}
	var scanKeys []uint64
	if err := tr.Scan(nil, 0, func(k, _ []byte) bool {
		scanKeys = append(scanKeys, workload.KeyID(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	it := tr.NewIterator(nil)
	i := 0
	for it.Next() {
		if i >= len(scanKeys) || workload.KeyID(it.Key()) != scanKeys[i] {
			t.Fatalf("iterator diverges from Scan at %d", i)
		}
		i++
	}
	if i != len(scanKeys) {
		t.Fatalf("iterator visited %d, Scan visited %d", i, len(scanKeys))
	}
}
