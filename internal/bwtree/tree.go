package bwtree

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"costperf/internal/fault"
	"costperf/internal/llama/logstore"
	"costperf/internal/llama/mapping"
	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/sim"
)

// Common errors.
var (
	ErrClosed  = errors.New("bwtree: closed")
	ErrNoStore = errors.New("bwtree: no log store configured")
	// ErrDegraded is returned by flush/evict paths after a persistent
	// storage failure latched the tree read-only (see Stats.Health).
	ErrDegraded = errors.New("bwtree: tree degraded (read-only)")
)

// Config configures a Tree.
type Config struct {
	// Store is the log-structured secondary storage. Nil runs the tree as
	// a pure main-memory structure (flush/evict unavailable).
	Store *logstore.Store
	// Session provides execution-cost accounting; nil disables it.
	Session *sim.Session
	// MaxPageBytes triggers a split when a consolidated leaf exceeds it.
	// Default 4096 (paper Section 4.1: 4K max pages).
	MaxPageBytes int
	// ConsolidateAfter is the delta-chain length that triggers
	// consolidation. Default 8.
	ConsolidateAfter int
	// MaxPIDs bounds the mapping table (0 = unbounded).
	MaxPIDs uint64
	// Retry bounds the backoff loop around log-store page reads; the zero
	// value takes fault.DefaultRetry.
	Retry fault.RetryPolicy
	// Obs, when non-nil, receives one tracing span per public operation
	// (page-load misses marked; see internal/obs). Nil traces nothing at
	// zero cost.
	Obs *obs.Tracer
}

func (c *Config) setDefaults() {
	if c.MaxPageBytes == 0 {
		c.MaxPageBytes = 4096
	}
	if c.ConsolidateAfter == 0 {
		c.ConsolidateAfter = 8
	}
}

// Stats counts tree-level events.
type Stats struct {
	Gets           metrics.Counter
	Inserts        metrics.Counter
	Deletes        metrics.Counter
	BlindWrites    metrics.Counter
	Scans          metrics.Counter
	Consolidations metrics.Counter
	Splits         metrics.Counter
	PageLoads      metrics.Counter // read-misses served from the log store
	PageEvictions  metrics.Counter
	PageFlushes    metrics.Counter
	DeltaFlushes   metrics.Counter
	CASFailures    metrics.Counter
	// Retry meters the transient-fault retry budget spent on page I/O.
	Retry metrics.RetryStats
	// Health latches degraded (read-only) after a persistent flush failure.
	Health metrics.Health
}

// Tree is a latch-free Bw-tree. All methods are safe for concurrent use.
type Tree struct {
	cfg    Config
	table  *mapping.Table[pageHeader]
	root   mapping.PID
	stats  Stats
	mem    atomic.Int64 // approximate main-memory footprint in bytes
	closed atomic.Bool

	metaMu   sync.Mutex
	metaAddr logstore.Address // latest checkpoint metadata record
}

// New creates an empty tree.
func New(cfg Config) (*Tree, error) {
	cfg.setDefaults()
	t := &Tree{cfg: cfg, table: mapping.New[pageHeader](cfg.MaxPIDs)}
	rootPID, err := t.table.Allocate()
	if err != nil {
		return nil, err
	}
	t.root = rootPID
	base := &leafBase{}
	hdr := &pageHeader{head: base, memBytes: base.memSize(), isLeaf: true}
	t.table.Store(rootPID, hdr)
	t.mem.Store(int64(hdr.memBytes))
	return t, nil
}

// Stats returns the tree's counters.
func (t *Tree) Stats() *Stats { return &t.stats }

// FootprintBytes returns the approximate main-memory footprint of the tree
// (pages plus deltas currently cached). This is the quantity compared
// against MassTree's footprint to measure M_x (paper Section 5.1).
func (t *Tree) FootprintBytes() int64 { return t.mem.Load() }

// RootPID exposes the root page id (for experiments and debugging).
func (t *Tree) RootPID() mapping.PID { return t.root }

func (t *Tree) begin() *sim.Charger {
	if t.cfg.Session == nil {
		return nil
	}
	return t.cfg.Session.Begin()
}

// beginCtx is begin with the operation's context bound to the charger, so
// cancellation propagates down the I/O path even when no Session is
// configured (a detached charger carries only the context then).
func (t *Tree) beginCtx(ctx context.Context) *sim.Charger {
	if t.cfg.Session == nil {
		return sim.DetachedCharger(ctx)
	}
	return t.cfg.Session.Begin().WithContext(ctx)
}

func (t *Tree) now() float64 {
	if t.cfg.Session == nil {
		return 0
	}
	return t.cfg.Session.Clock().Now()
}

func settle(ch *sim.Charger) {
	if ch != nil {
		ch.Settle()
	}
}

func abandon(ch *sim.Charger) {
	if ch != nil {
		ch.Abandon()
	}
}

func chase(ch *sim.Charger, n int) {
	if ch != nil {
		ch.Chase(n)
	}
}

func compare(ch *sim.Charger, n int) {
	if ch != nil {
		ch.Compare(n)
	}
}

// header returns the current mapping entry for pid.
func (t *Tree) header(pid mapping.PID, ch *sim.Charger) *pageHeader {
	chase(ch, 2) // mapping-table slot, then the header it points at
	h := t.table.Get(pid)
	if h == nil {
		panic(fmt.Sprintf("bwtree: dangling PID %d", pid))
	}
	return h
}

// install CASes a new header, adjusting the footprint gauge.
func (t *Tree) install(pid mapping.PID, old, next *pageHeader) bool {
	if t.table.CompareAndSwap(pid, old, next) {
		t.mem.Add(int64(next.memBytes - old.memBytes))
		return true
	}
	t.stats.CASFailures.Inc()
	return false
}

// covers reports whether the page's key range includes key.
func (h *pageHeader) covers(key []byte) bool {
	return h.highKey == nil || bytes.Compare(key, h.highKey) < 0
}

// descend walks from the root to the leaf page responsible for key,
// following B-link side pointers at every level. It returns the leaf PID,
// its current header, and the PID of the index page it was reached from
// (NilPID when the root is the leaf).
func (t *Tree) descend(key []byte, ch *sim.Charger) (mapping.PID, *pageHeader, mapping.PID, error) {
	pid := t.root
	parent := mapping.NilPID
	for depth := 0; ; depth++ {
		if depth > 128 {
			return 0, nil, 0, errors.New("bwtree: descent too deep (corrupt structure)")
		}
		hdr := t.header(pid, ch)
		// B-link: if the key is beyond this page's range, go right. This
		// handles splits whose parent update has not completed.
		if !hdr.covers(key) {
			compare(ch, 1)
			pid = hdr.right
			continue
		}
		if hdr.isLeaf {
			return pid, hdr, parent, nil
		}
		idx, ok := hdr.head.(*indexBase)
		if !ok {
			return 0, nil, 0, fmt.Errorf("bwtree: index page %d has non-index head %T", pid, hdr.head)
		}
		i := sort.Search(len(idx.keys), func(i int) bool {
			return bytes.Compare(key, idx.keys[i]) < 0
		})
		compare(ch, log2ceil(len(idx.keys)))
		parent = pid
		pid = idx.children[i]
	}
}

func log2ceil(n int) int {
	c := 0
	for v := 1; v < n; v <<= 1 {
		c++
	}
	if c == 0 {
		c = 1
	}
	return c
}

// needLoad signals that the chain bottoms out in an unloaded diskRef and
// the delta chain did not decide the lookup.
type needLoad struct{ ref *diskRef }

func (e *needLoad) Error() string { return "bwtree: page not in memory" }

// chainSearch looks up key in a leaf chain, walking deltas first.
func (t *Tree) chainSearch(hdr *pageHeader, key []byte, ch *sim.Charger) ([]byte, bool, error) {
	n := hdr.head
	for {
		switch v := n.(type) {
		case *insertDelta:
			compare(ch, 1)
			chase(ch, 1)
			if bytes.Equal(v.key, key) {
				return v.val, true, nil
			}
			n = v.next
		case *deleteDelta:
			compare(ch, 1)
			chase(ch, 1)
			if bytes.Equal(v.key, key) {
				return nil, false, nil
			}
			n = v.next
		case *leafBase:
			i := sort.Search(len(v.keys), func(i int) bool {
				return bytes.Compare(v.keys[i], key) >= 0
			})
			compare(ch, log2ceil(len(v.keys)))
			if i < len(v.keys) && bytes.Equal(v.keys[i], key) {
				return v.vals[i], true, nil
			}
			return nil, false, nil
		case *diskRef:
			return nil, false, &needLoad{ref: v}
		default:
			return nil, false, fmt.Errorf("bwtree: unexpected chain node %T", n)
		}
	}
}

// Get returns the value for key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	return t.get(key, t.begin())
}

// GetCtx is Get bounded by ctx: page loads from the log store (and their
// retry backoffs) abort promptly once ctx is cancelled or past deadline.
func (t *Tree) GetCtx(ctx context.Context, key []byte) ([]byte, bool, error) {
	return t.get(key, t.beginCtx(ctx))
}

func (t *Tree) get(key []byte, ch *sim.Charger) ([]byte, bool, error) {
	sp := t.cfg.Obs.Start(obs.OpGet)
	if t.closed.Load() {
		abandon(ch)
		sp.End(ErrClosed)
		return nil, false, ErrClosed
	}
	for {
		if err := ch.Err(); err != nil {
			abandon(ch)
			sp.End(err)
			return nil, false, err
		}
		leaf, hdr, _, err := t.descend(key, ch)
		if err != nil {
			abandon(ch)
			sp.End(err)
			return nil, false, err
		}
		t.touch(leaf, hdr)
		val, found, serr := t.chainSearch(hdr, key, ch)
		if serr == nil {
			t.stats.Gets.Inc()
			if found && ch != nil {
				ch.Copy(len(val))
			}
			settle(ch)
			sp.End(nil)
			return val, found, nil
		}
		var nl *needLoad
		if errors.As(serr, &nl) {
			sp.Miss() // the delta chain bottomed out in a flushed page
			if err := t.loadPage(leaf, nl.ref, ch); err != nil {
				abandon(ch)
				sp.End(err)
				return nil, false, err
			}
			continue // retry with the loaded page
		}
		abandon(ch)
		sp.End(serr)
		return nil, false, serr
	}
}

// touch records an access time for eviction policies. It is best-effort:
// a failed CAS (concurrent writer) is simply skipped — last-access times
// are advisory.
func (t *Tree) touch(pid mapping.PID, hdr *pageHeader) {
	if t.cfg.Session == nil {
		return
	}
	now := t.now()
	if now <= hdr.lastAccess {
		return
	}
	nh := *hdr
	nh.lastAccess = now
	t.install(pid, hdr, &nh)
}

// LastAccess returns the virtual-time of the page's last access.
func (t *Tree) LastAccess(pid mapping.PID) float64 {
	return t.header(pid, nil).lastAccess
}

// Close marks the tree closed.
func (t *Tree) Close() error {
	t.closed.Store(true)
	return nil
}
