package workload

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	gen, err := NewGenerator(GeneratorConfig{
		Keys:    200,
		Mix:     Mix{Read: 1, Update: 1, Insert: 0.2, BlindWrite: 0.5, Scan: 0.3, Delete: 0.1},
		Chooser: NewZipfian(3, 0.9),
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Generate the expected stream with an identical generator.
	ref, err := NewGenerator(GeneratorConfig{
		Keys:    200,
		Mix:     Mix{Read: 1, Update: 1, Insert: 0.2, BlindWrite: 0.5, Scan: 0.3, Delete: 0.1},
		Chooser: NewZipfian(3, 0.9),
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	want := make([]Op, n)
	for i := range want {
		want[i] = ref.Next()
	}

	var buf bytes.Buffer
	count, err := Record(gen, n, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("recorded %d, want %d", count, n)
	}

	i := 0
	applied, err := Replay(&buf, func(op Op) error {
		w := want[i]
		if op.Kind != w.Kind || !bytes.Equal(op.Key, w.Key) ||
			!bytes.Equal(op.Value, w.Value) || op.ScanLen != w.ScanLen {
			t.Fatalf("op %d = %+v, want %+v", i, op, w)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != n {
		t.Fatalf("replayed %d, want %d", applied, n)
	}
}

func TestTraceBadMagic(t *testing.T) {
	if _, err := NewTraceReader(bytes.NewReader([]byte("NOPE1234"))); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewTraceReader(bytes.NewReader(nil)); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestTraceTruncated(t *testing.T) {
	gen, _ := NewGenerator(GeneratorConfig{Keys: 10, Mix: ReadMostly, Chooser: NewUniform(1)})
	var buf bytes.Buffer
	if _, err := Record(gen, 20, &buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Chop mid-record: replay returns an error (not silent loss) unless the
	// cut lands exactly on a boundary.
	cut := raw[:len(raw)-3]
	_, err := Replay(bytes.NewReader(cut), func(Op) error { return nil })
	if err == nil {
		t.Skip("cut landed on a record boundary")
	}
	if !errors.Is(err, ErrBadTrace) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceCorruptKind(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0x63) // kind = 99
	if _, err := Replay(&buf, func(Op) error { return nil }); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplayApplyError(t *testing.T) {
	gen, _ := NewGenerator(GeneratorConfig{Keys: 10, Mix: ReadOnly, Chooser: NewUniform(1)})
	var buf bytes.Buffer
	if _, err := Record(gen, 5, &buf); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	n, err := Replay(&buf, func(Op) error { return boom })
	if !errors.Is(err, boom) || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

// Property: arbitrary op sequences survive the trace round trip.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		var ops []Op
		for i, s := range seeds {
			kind := OpKind(int(s) % 6)
			op := Op{Kind: kind, Key: Key(uint64(s))}
			switch kind {
			case OpUpdate, OpInsert, OpBlindWrite:
				op.Value = ValueFor(uint64(i), int(s)%50)
			case OpScan:
				op.ScanLen = int(s) % 100
			}
			ops = append(ops, op)
		}
		var buf bytes.Buffer
		tw, err := NewTraceWriter(&buf)
		if err != nil {
			return false
		}
		for _, op := range ops {
			if err := tw.Append(op); err != nil {
				return false
			}
		}
		if err := tw.Flush(); err != nil {
			return false
		}
		i := 0
		_, err = Replay(&buf, func(op Op) error {
			w := ops[i]
			if op.Kind != w.Kind || !bytes.Equal(op.Key, w.Key) ||
				!bytes.Equal(op.Value, w.Value) || op.ScanLen != w.ScanLen {
				return errors.New("mismatch")
			}
			i++
			return nil
		})
		return err == nil && i == len(ops)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
