package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"costperf/internal/overload"
)

// Scenarios are the named, composable workload shapes behind kvbench's
// -matrix mode: every PR runs the same matrix, so the persisted
// BENCH_matrix.json trajectory compares like with like. A scenario is a
// sequence of phases (contiguous fractions of the run), each interleaving
// one or more tenants — a (mix, distribution) pair — on the same store.
// Everything is deterministic per seed and self-describing: the scenario
// definition itself is embedded in the benchmark snapshot.

// DistSpec is a declarative, JSON-stable description of a key-popularity
// distribution. Unlike a live KeyChooser it can be embedded in scenario
// definitions and benchmark snapshots; Chooser instantiates it.
type DistSpec struct {
	// Kind is "uniform", "zipfian", "hotcold", or "sequential".
	Kind string `json:"kind"`
	// Theta is the zipfian skew in (0,1); 0 means the YCSB default 0.99.
	Theta float64 `json:"theta,omitempty"`
	// HotFrac/HotProb parameterize hotcold; zero means the 0.1/0.9 default.
	HotFrac float64 `json:"hot_frac,omitempty"`
	HotProb float64 `json:"hot_prob,omitempty"`
	// RotateFrac shifts every chosen key by this fraction of the keyspace
	// (mod n). Phases that agree on Kind but differ in RotateFrac model a
	// flash crowd: the popularity *shape* persists while the hot set moves.
	RotateFrac float64 `json:"rotate_frac,omitempty"`
}

// Validate reports whether the spec describes a constructible chooser.
func (d DistSpec) Validate() error {
	switch d.Kind {
	case "uniform", "sequential":
	case "zipfian":
		if d.Theta != 0 && (d.Theta <= 0 || d.Theta >= 1) {
			return fmt.Errorf("workload: zipfian theta %v out of (0,1)", d.Theta)
		}
	case "hotcold":
		if d.HotFrac < 0 || d.HotFrac > 1 {
			return fmt.Errorf("workload: hotcold hotFrac %v out of [0,1]", d.HotFrac)
		}
		if d.HotProb < 0 || d.HotProb > 1 {
			return fmt.Errorf("workload: hotcold hotProb %v out of [0,1]", d.HotProb)
		}
	default:
		return fmt.Errorf("workload: unknown distribution kind %q", d.Kind)
	}
	if d.RotateFrac < 0 || d.RotateFrac >= 1 {
		return fmt.Errorf("workload: rotateFrac %v out of [0,1)", d.RotateFrac)
	}
	return nil
}

// Chooser instantiates the spec with the given seed.
func (d DistSpec) Chooser(seed int64) (KeyChooser, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var c KeyChooser
	switch d.Kind {
	case "uniform":
		c = NewUniform(seed)
	case "zipfian":
		theta := d.Theta
		if theta == 0 {
			theta = 0.99
		}
		c = NewZipfian(seed, theta)
	case "hotcold":
		hf, hp := d.HotFrac, d.HotProb
		if hf == 0 && hp == 0 {
			hf, hp = 0.1, 0.9
		}
		c = NewHotCold(seed, hf, hp)
	case "sequential":
		c = NewSequential()
	}
	if d.RotateFrac > 0 {
		c = rotated{inner: c, frac: d.RotateFrac}
	}
	return c, nil
}

// String renders the spec compactly, e.g. "zipfian(0.99)+rot33%".
func (d DistSpec) String() string {
	var b strings.Builder
	switch d.Kind {
	case "zipfian":
		theta := d.Theta
		if theta == 0 {
			theta = 0.99
		}
		fmt.Fprintf(&b, "zipfian(%.2f)", theta)
	case "hotcold":
		hf, hp := d.HotFrac, d.HotProb
		if hf == 0 && hp == 0 {
			hf, hp = 0.1, 0.9
		}
		fmt.Fprintf(&b, "hotcold(%.2f/%.2f)", hf, hp)
	default:
		b.WriteString(d.Kind)
	}
	if d.RotateFrac > 0 {
		fmt.Fprintf(&b, "+rot%.0f%%", 100*d.RotateFrac)
	}
	return b.String()
}

// rotated shifts every chosen key by a fixed fraction of the keyspace.
type rotated struct {
	inner KeyChooser
	frac  float64
}

// Next implements KeyChooser.
func (r rotated) Next(n uint64) uint64 {
	return (r.inner.Next(n) + uint64(float64(n)*r.frac)) % n
}

// Tenant is one (mix, distribution) pair sharing the store with the other
// tenants of its phase; Weight is its share of the phase's operations.
type Tenant struct {
	Name   string   `json:"name"`
	Weight float64  `json:"weight"`
	Mix    Mix      `json:"mix"`
	Dist   DistSpec `json:"dist"`
	// Class is the tenant's admission priority class, one of
	// internal/overload.ParseClass's names ("scan", "low", "normal",
	// "high"). Empty means untagged: each op takes the engine's per-op
	// default (scans shed first, everything else is normal). Drivers
	// read it back per op through ScenarioGen.NextTagged.
	Class string `json:"class,omitempty"`
}

// Phase is a contiguous fraction of a scenario's operations.
type Phase struct {
	Name string `json:"name"`
	// Frac is the phase's share of the run; phase fracs are normalized.
	Frac    float64  `json:"frac"`
	Tenants []Tenant `json:"tenants"`
}

// Scenario is a named workload shape: an ordered sequence of phases.
type Scenario struct {
	Name   string  `json:"name"`
	Desc   string  `json:"desc"`
	Phases []Phase `json:"phases"`
}

// Validate checks the scenario is runnable.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: scenario without a name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: scenario %q has no phases", s.Name)
	}
	var frac float64
	for _, p := range s.Phases {
		if p.Frac <= 0 {
			return fmt.Errorf("workload: scenario %q phase %q frac %v <= 0", s.Name, p.Name, p.Frac)
		}
		frac += p.Frac
		if len(p.Tenants) == 0 {
			return fmt.Errorf("workload: scenario %q phase %q has no tenants", s.Name, p.Name)
		}
		var w float64
		for _, tn := range p.Tenants {
			if tn.Weight <= 0 {
				return fmt.Errorf("workload: scenario %q tenant %q weight %v <= 0", s.Name, tn.Name, tn.Weight)
			}
			w += tn.Weight
			if err := tn.Mix.Validate(); err != nil {
				return fmt.Errorf("scenario %q tenant %q: %w", s.Name, tn.Name, err)
			}
			if err := tn.Dist.Validate(); err != nil {
				return fmt.Errorf("scenario %q tenant %q: %w", s.Name, tn.Name, err)
			}
			if tn.Class != "" {
				if _, ok := overload.ParseClass(tn.Class); !ok {
					return fmt.Errorf("workload: scenario %q tenant %q: unknown priority class %q", s.Name, tn.Name, tn.Class)
				}
			}
		}
	}
	return nil
}

// Describe renders a one-line, self-describing summary of the scenario.
func (s Scenario) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", s.Name)
	for i, p := range s.Phases {
		if i > 0 {
			b.WriteString(" |")
		}
		fmt.Fprintf(&b, " %s[", p.Name)
		for j, tn := range p.Tenants {
			if j > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%s/%s", tn.Name, tn.Dist)
		}
		b.WriteByte(']')
	}
	return b.String()
}

// ScenarioConfig sizes a scenario run.
type ScenarioConfig struct {
	// Keys is the initial keyspace size (records 0..Keys-1 assumed loaded).
	Keys uint64
	// ValueSize is the payload size for generated writes.
	ValueSize int
	// Ops is the total operation count across all phases.
	Ops int
	// Seed drives every random choice; same seed, same op stream.
	Seed int64
}

// ScenarioGen generates a scenario's operation stream: phase by phase, each
// op drawn from a deterministically chosen tenant's generator. The whole
// stream is a pure function of (scenario, config) — kvbench relies on this
// so every store in a matrix column sees the identical workload.
type ScenarioGen struct {
	total   int
	emitted int
	cur     int
	phases  []genPhase
}

type genPhase struct {
	ops     int // ops allotted to this phase
	done    int
	rng     *rand.Rand // tenant selection
	cum     []float64  // cumulative normalized tenant weights
	gens    []*Generator
	classes []string // per-tenant priority class ("" = untagged)
}

// deriveSeed mixes the run seed with a stable hash of the location parts,
// so each phase/tenant generator gets an independent but reproducible
// stream regardless of how other phases evolve.
func deriveSeed(seed int64, parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return seed ^ int64(h.Sum64())
}

// NewScenarioGen validates and instantiates the scenario.
func NewScenarioGen(s Scenario, cfg ScenarioConfig) (*ScenarioGen, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if cfg.Ops <= 0 {
		return nil, fmt.Errorf("workload: scenario %q with %d ops", s.Name, cfg.Ops)
	}
	if cfg.Keys == 0 {
		return nil, fmt.Errorf("workload: scenario %q with zero keyspace", s.Name)
	}
	var totalFrac float64
	for _, p := range s.Phases {
		totalFrac += p.Frac
	}
	g := &ScenarioGen{total: cfg.Ops}
	allotted := 0
	for i, p := range s.Phases {
		gp := genPhase{
			ops: int(float64(cfg.Ops) * p.Frac / totalFrac),
			rng: rand.New(rand.NewSource(deriveSeed(cfg.Seed, s.Name, p.Name, fmt.Sprint(i)))),
		}
		if i == len(s.Phases)-1 {
			gp.ops = cfg.Ops - allotted // rounding remainder lands in the tail
		}
		allotted += gp.ops
		var wTotal float64
		for _, tn := range p.Tenants {
			wTotal += tn.Weight
		}
		acc := 0.0
		for j, tn := range p.Tenants {
			tseed := deriveSeed(cfg.Seed, s.Name, p.Name, tn.Name, fmt.Sprint(i, j))
			chooser, err := tn.Dist.Chooser(tseed)
			if err != nil {
				return nil, err
			}
			gen, err := NewGenerator(GeneratorConfig{
				Keys: cfg.Keys, ValueSize: cfg.ValueSize,
				Mix: tn.Mix, Chooser: chooser, Seed: tseed,
			})
			if err != nil {
				return nil, err
			}
			acc += tn.Weight / wTotal
			gp.cum = append(gp.cum, acc)
			gp.gens = append(gp.gens, gen)
			gp.classes = append(gp.classes, tn.Class)
		}
		gp.cum[len(gp.cum)-1] = 1 // guard against FP drift
		g.phases = append(g.phases, gp)
	}
	return g, nil
}

// Next returns the next operation, or ok=false when the scenario's Ops
// have all been emitted.
func (g *ScenarioGen) Next() (op Op, ok bool) {
	op, _, ok = g.NextTagged()
	return op, ok
}

// NextTagged returns the next operation plus the generating tenant's
// priority class name ("" when the tenant declared none). The Op stream
// is byte-identical to Next's — the class rides alongside, never inside,
// the trace-codec-stable Op — so a recorded trace of a classed scenario
// replays unchanged.
func (g *ScenarioGen) NextTagged() (op Op, class string, ok bool) {
	if g.emitted >= g.total {
		return Op{}, "", false
	}
	for g.cur < len(g.phases)-1 && g.phases[g.cur].done >= g.phases[g.cur].ops {
		g.cur++
	}
	p := &g.phases[g.cur]
	idx := len(p.cum) - 1
	u := p.rng.Float64()
	for i, c := range p.cum {
		if u <= c {
			idx = i
			break
		}
	}
	p.done++
	g.emitted++
	return p.gens[idx].Next(), p.classes[idx], true
}

// Remaining returns how many operations the generator will still emit.
func (g *ScenarioGen) Remaining() int { return g.total - g.emitted }

// GenerateScenario materialises the full op stream of a scenario run.
func GenerateScenario(s Scenario, cfg ScenarioConfig) ([]Op, error) {
	g, err := NewScenarioGen(s, cfg)
	if err != nil {
		return nil, err
	}
	ops := make([]Op, 0, cfg.Ops)
	for {
		op, ok := g.Next()
		if !ok {
			return ops, nil
		}
		ops = append(ops, op)
	}
}

// one wraps a single-tenant phase: the common case.
func one(name string, frac float64, mix Mix, dist DistSpec) Phase {
	return Phase{Name: name, Frac: frac, Tenants: []Tenant{{Name: name, Weight: 1, Mix: mix, Dist: dist}}}
}

// builtinScenarios is the standing matrix: the access spectra of the
// paper's Figures 2, 3, and 8 (skew, hot-set drift) plus the structural
// shapes (scans, churn, growth, multi-tenancy) the related benchmark
// suites sweep. Names are stable: BENCH_matrix.json keys and the CI
// regression gate match on them.
var builtinScenarios = []Scenario{
	{
		Name: "hot-zipf",
		Desc: "YCSB-B point ops under zipfian hot keys (theta 0.99): the paper's skewed-access baseline",
		Phases: []Phase{
			one("steady", 1, ReadMostly, DistSpec{Kind: "zipfian", Theta: 0.99}),
		},
	},
	{
		Name: "skew-sweep",
		Desc: "update-heavy mix swept across rising zipfian skew (theta 0.60 -> 0.80 -> 0.99), the Fig 2/3 access spectrum",
		Phases: []Phase{
			one("theta60", 1, UpdateHeavy, DistSpec{Kind: "zipfian", Theta: 0.60}),
			one("theta80", 1, UpdateHeavy, DistSpec{Kind: "zipfian", Theta: 0.80}),
			one("theta99", 1, UpdateHeavy, DistSpec{Kind: "zipfian", Theta: 0.99}),
		},
	},
	{
		Name: "flash-crowd",
		Desc: "read-mostly traffic whose 5% hot set absorbs 95% of accesses and rotates to a new key range each phase",
		Phases: []Phase{
			one("crowd1", 1, ReadMostly, DistSpec{Kind: "hotcold", HotFrac: 0.05, HotProb: 0.95}),
			one("crowd2", 1, ReadMostly, DistSpec{Kind: "hotcold", HotFrac: 0.05, HotProb: 0.95, RotateFrac: 0.33}),
			one("crowd3", 1, ReadMostly, DistSpec{Kind: "hotcold", HotFrac: 0.05, HotProb: 0.95, RotateFrac: 0.66}),
		},
	},
	{
		Name: "scan-heavy",
		Desc: "range-scan dominated mix over uniform keys: the ordered-store (range query) column of the index benchmarks",
		Phases: []Phase{
			one("steady", 1, Mix{Read: 0.3, Update: 0.1, Scan: 0.6}, DistSpec{Kind: "uniform"}),
		},
	},
	{
		Name: "churn",
		Desc: "delete/TTL churn: inserts and deletes dominate, the live set turns over continuously",
		Phases: []Phase{
			one("steady", 1, Mix{Read: 0.2, Insert: 0.4, Delete: 0.4}, DistSpec{Kind: "uniform"}),
		},
	},
	{
		Name: "insert-grow",
		Desc: "insert-only append growth: the bulk-load / dataset-growth column of the index benchmarks",
		Phases: []Phase{
			one("grow", 1, Mix{Insert: 1}, DistSpec{Kind: "sequential"}),
		},
	},
	{
		Name: "mixed-tenant",
		Desc: "two tenants interleaved on one store: a zipfian read-mostly OLTP tenant and a uniform blind-write batch tenant",
		Phases: []Phase{
			{
				Name: "steady", Frac: 1,
				Tenants: []Tenant{
					{Name: "oltp", Weight: 0.7, Mix: ReadMostly, Dist: DistSpec{Kind: "zipfian", Theta: 0.99}},
					{Name: "batch", Weight: 0.3, Mix: BlindWriteHeavy, Dist: DistSpec{Kind: "uniform"}},
				},
			},
		},
	},
}

// Scenarios returns the built-in scenario matrix (a copy; callers may
// reorder or extend freely).
func Scenarios() []Scenario {
	return append([]Scenario(nil), builtinScenarios...)
}

// ScenarioNames lists the built-in scenario names in matrix order.
func ScenarioNames() []string {
	names := make([]string, len(builtinScenarios))
	for i, s := range builtinScenarios {
		names[i] = s.Name
	}
	return names
}

// ScenarioByName looks up a built-in scenario.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range builtinScenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
