package workload

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property and fuzz coverage for the generator layer: the scenario matrix
// (and every BENCH_matrix.json diff) rests on three invariants — same
// seed means byte-identical op stream, mixes normalize from any
// non-negative weights, and choosers never step outside the keyspace.

// traceBytes serializes an op stream with the trace codec, giving a
// byte-exact fingerprint of generator output.
func traceBytes(t *testing.T, ops []Op) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := tw.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGeneratorDeterminismProperty(t *testing.T) {
	prop := func(seed int64, keysRaw uint16, theta float64) bool {
		keys := uint64(keysRaw%5000) + 2
		theta = math.Mod(math.Abs(theta), 0.98) + 0.01 // (0,1)
		gen := func() []Op {
			g, err := NewGenerator(GeneratorConfig{
				Keys: keys, ValueSize: 24,
				Mix:     Mix{Read: 0.4, Update: 0.2, Insert: 0.2, Scan: 0.1, Delete: 0.1},
				Chooser: NewZipfian(seed, theta), Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			ops := make([]Op, 0, 500)
			for i := 0; i < 500; i++ {
				ops = append(ops, g.Next())
			}
			return ops
		}
		return bytes.Equal(traceBytes(t, gen()), traceBytes(t, gen()))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioDeterminismProperty(t *testing.T) {
	prop := func(seed int64, pick uint8) bool {
		scs := Scenarios()
		sc := scs[int(pick)%len(scs)]
		cfg := ScenarioConfig{Keys: 400, ValueSize: 16, Ops: 600, Seed: seed}
		a, err := GenerateScenario(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateScenario(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return bytes.Equal(traceBytes(t, a), traceBytes(t, b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMixNormalizationProperty(t *testing.T) {
	// Any non-negative weights with positive total normalize: generated
	// op-kind frequencies track weight/total regardless of scale.
	prop := func(r, u, i, bw uint8) bool {
		mix := Mix{Read: float64(r), Update: float64(u), Insert: float64(i), BlindWrite: float64(bw)}
		total := mix.total()
		if total == 0 {
			return mix.Validate() != nil // all-zero must be rejected
		}
		g, err := NewGenerator(GeneratorConfig{
			Keys: 100, Mix: mix, Chooser: NewUniform(1), Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		const n = 4000
		counts := map[OpKind]float64{}
		for j := 0; j < n; j++ {
			counts[g.Next().Kind]++
		}
		for kind, want := range map[OpKind]float64{
			OpRead: float64(r), OpUpdate: float64(u),
			OpInsert: float64(i), OpBlindWrite: float64(bw),
		} {
			if got, want := counts[kind]/n, want/total; math.Abs(got-want) > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMixZeroAndNegativeWeights(t *testing.T) {
	if err := (Mix{}).Validate(); err == nil {
		t.Error("zero mix accepted")
	}
	if err := (Mix{Read: -1, Update: 2}).Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	// Unnormalized weights are fine: 300/100 is 75%/25%.
	g, err := NewGenerator(GeneratorConfig{
		Keys: 10, Mix: Mix{Read: 300, Update: 100}, Chooser: NewUniform(1), Seed: 1,
	})
	if err != nil {
		t.Fatalf("unnormalized mix rejected: %v", err)
	}
	reads := 0
	for i := 0; i < 2000; i++ {
		if g.Next().Kind == OpRead {
			reads++
		}
	}
	if f := float64(reads) / 2000; f < 0.70 || f > 0.80 {
		t.Errorf("read fraction %.3f, want ~0.75 from 300:100 weights", f)
	}
}

func TestZipfianBoundsProperty(t *testing.T) {
	prop := func(seed int64, theta float64, nRaw uint32) bool {
		theta = math.Mod(math.Abs(theta), 0.98) + 0.01 // (0,1)
		n := uint64(nRaw%100000) + 1
		z := NewZipfian(seed, theta)
		for i := 0; i < 200; i++ {
			if z.Next(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChooserBoundsProperty(t *testing.T) {
	// Every chooser kind, including rotated wrappers, stays inside [0, n)
	// even while n grows between calls (inserts grow the keyspace).
	specs := []DistSpec{
		{Kind: "uniform"},
		{Kind: "zipfian", Theta: 0.99},
		{Kind: "hotcold", HotFrac: 0.05, HotProb: 0.95},
		{Kind: "sequential"},
		{Kind: "zipfian", Theta: 0.6, RotateFrac: 0.5},
		{Kind: "hotcold", RotateFrac: 0.9},
	}
	prop := func(seed int64, nRaw uint16) bool {
		// Modest keyspace: the zipfian chooser recomputes its zeta cache
		// for every new n, and this property grows n on each call.
		n := uint64(nRaw%2000) + 1
		for _, d := range specs {
			c, err := d.Chooser(seed)
			if err != nil {
				t.Fatal(err)
			}
			m := n
			for i := 0; i < 100; i++ {
				if c.Next(m) >= m {
					return false
				}
				m++ // grow like inserts do
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func FuzzZipfianBounds(f *testing.F) {
	f.Add(int64(1), 0.99, uint32(1000))
	f.Add(int64(-7), 0.5, uint32(1))
	f.Add(int64(42), 0.01, uint32(2))
	f.Fuzz(func(t *testing.T, seed int64, theta float64, n uint32) {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return
		}
		theta = math.Mod(math.Abs(theta), 0.98) + 0.01
		keyspace := uint64(n%1000000) + 1
		z := NewZipfian(seed, theta)
		for i := 0; i < 64; i++ {
			if k := z.Next(keyspace); k >= keyspace {
				t.Fatalf("Next(%d) = %d out of range (theta=%v)", keyspace, k, theta)
			}
		}
	})
}

func FuzzScenarioGen(f *testing.F) {
	f.Add(int64(1), uint16(100), uint16(50), uint8(0))
	f.Add(int64(99), uint16(3), uint16(1), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, keys, ops uint16, pick uint8) {
		scs := Scenarios()
		sc := scs[int(pick)%len(scs)]
		cfg := ScenarioConfig{
			Keys: uint64(keys) + 1, ValueSize: 8, Ops: int(ops) + 1, Seed: seed,
		}
		got, err := GenerateScenario(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != cfg.Ops {
			t.Fatalf("%s: %d ops, want %d", sc.Name, len(got), cfg.Ops)
		}
		// Keys must stay inside the (growing) keyspace: inserts extend it
		// by at most one per op.
		limit := cfg.Keys + uint64(cfg.Ops)
		for _, op := range got {
			if id := KeyID(op.Key); id >= limit {
				t.Fatalf("%s: key %d outside keyspace bound %d", sc.Name, id, limit)
			}
		}
	})
}

// Guard rand import: HotCold's hot-set boundary behaviour under extreme
// rotation is covered above; this pins the uniform path's determinism.
func TestUniformDeterministic(t *testing.T) {
	a, b := NewUniform(5), NewUniform(5)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		n := uint64(r.Intn(1000) + 1)
		if x, y := a.Next(n), b.Next(n); x != y {
			t.Fatalf("uniform choosers with same seed diverged: %d vs %d", x, y)
		}
	}
}
