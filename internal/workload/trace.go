package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace recording and replay: experiments can capture the exact operation
// stream they ran and replay it elsewhere (a different engine, a different
// configuration) for apples-to-apples comparisons — the methodology the
// paper's "same workload on both systems" measurements rely on.

// traceMagic opens every trace stream.
var traceMagic = [4]byte{'C', 'P', 'T', '1'}

// ErrBadTrace is returned when a stream is not a valid trace.
var ErrBadTrace = errors.New("workload: invalid trace")

// TraceWriter serializes operations to a stream.
type TraceWriter struct {
	w     *bufio.Writer
	count int64
	err   error
}

// NewTraceWriter starts a trace on w.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	return &TraceWriter{w: bw}, nil
}

func (t *TraceWriter) uvarint(v uint64) {
	if t.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, t.err = t.w.Write(buf[:n])
}

func (t *TraceWriter) bytes(b []byte) {
	t.uvarint(uint64(len(b)))
	if t.err != nil {
		return
	}
	_, t.err = t.w.Write(b)
}

// Append records one operation.
func (t *TraceWriter) Append(op Op) error {
	if t.err != nil {
		return t.err
	}
	t.uvarint(uint64(op.Kind))
	t.bytes(op.Key)
	switch op.Kind {
	case OpUpdate, OpInsert, OpBlindWrite:
		t.bytes(op.Value)
	case OpScan:
		t.uvarint(uint64(op.ScanLen))
	}
	if t.err == nil {
		t.count++
	}
	return t.err
}

// Count returns the number of operations recorded.
func (t *TraceWriter) Count() int64 { return t.count }

// Flush drains the writer's buffer.
func (t *TraceWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// TraceReader replays a recorded trace.
type TraceReader struct {
	r *bufio.Reader
}

// NewTraceReader validates the stream header and returns a reader.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if hdr != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	return &TraceReader{r: br}, nil
}

func (t *TraceReader) bytes() ([]byte, error) {
	n, err := binary.ReadUvarint(t.r)
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("%w: implausible field length %d", ErrBadTrace, n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(t.r, b); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	return b, nil
}

// Next returns the next operation, or io.EOF at the end of the trace.
func (t *TraceReader) Next() (Op, error) {
	kindRaw, err := binary.ReadUvarint(t.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Op{}, io.EOF
		}
		return Op{}, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	kind := OpKind(kindRaw)
	if kind < OpRead || kind > OpDelete {
		return Op{}, fmt.Errorf("%w: unknown op kind %d", ErrBadTrace, kindRaw)
	}
	op := Op{Kind: kind}
	if op.Key, err = t.bytes(); err != nil {
		return Op{}, err
	}
	switch kind {
	case OpUpdate, OpInsert, OpBlindWrite:
		if op.Value, err = t.bytes(); err != nil {
			return Op{}, err
		}
	case OpScan:
		n, err := binary.ReadUvarint(t.r)
		if err != nil {
			return Op{}, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		op.ScanLen = int(n)
	}
	return op, nil
}

// Record captures n operations from a generator into w and returns the
// recorded operations' count.
func Record(gen *Generator, n int, w io.Writer) (int64, error) {
	tw, err := NewTraceWriter(w)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if err := tw.Append(gen.Next()); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}

// Replay feeds every operation of a trace to apply, stopping on the first
// error. It returns the number of operations applied.
func Replay(r io.Reader, apply func(Op) error) (int64, error) {
	tr, err := NewTraceReader(r)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		op, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := apply(op); err != nil {
			return n, err
		}
		n++
	}
}
