// Package workload generates the key/value access patterns that drive every
// experiment in this repository: uniform and zipfian key popularity,
// hot/cold working sets (the access-frequency spectrum of the paper's
// Figures 2, 3, and 8), and YCSB-style operation mixes including the blind
// updates of paper Section 6.2.
//
// Generators are deterministic given a seed so experiments are repeatable.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// OpKind is the kind of a generated operation.
type OpKind int

const (
	// OpRead looks up a key.
	OpRead OpKind = iota
	// OpUpdate is a read-modify-write of an existing key.
	OpUpdate
	// OpInsert adds a new key.
	OpInsert
	// OpBlindWrite overwrites a key without depending on its prior state
	// (paper Section 6.2: these need not read the base page).
	OpBlindWrite
	// OpScan reads a short ordered range starting at a key.
	OpScan
	// OpDelete removes a key.
	OpDelete
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpBlindWrite:
		return "blindwrite"
	case OpScan:
		return "scan"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one generated operation.
type Op struct {
	Kind    OpKind
	Key     []byte
	Value   []byte // set for Update/Insert/BlindWrite
	ScanLen int    // set for Scan
}

// Key renders record identifier i as a fixed-width big-endian key so that
// numeric order equals lexicographic byte order (required by the ordered
// stores' range scans).
func Key(i uint64) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], i)
	return k[:]
}

// KeyID inverts Key.
func KeyID(k []byte) uint64 {
	if len(k) != 8 {
		panic(fmt.Sprintf("workload: key length %d, want 8", len(k)))
	}
	return binary.BigEndian.Uint64(k)
}

// ValueFor deterministically produces a value of the given size for key id i,
// so tests can verify payload integrity after eviction/recovery round trips.
func ValueFor(i uint64, size int) []byte {
	v := make([]byte, size)
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], i*0x9e3779b97f4a7c15+1)
	for j := range v {
		v[j] = seed[j%8] ^ byte(j)
	}
	return v
}

// KeyChooser selects which record an operation targets.
type KeyChooser interface {
	// Next returns a record id in [0, n) for a keyspace of size n.
	Next(n uint64) uint64
}

// Uniform chooses keys uniformly at random.
type Uniform struct {
	rng *rand.Rand
}

// NewUniform returns a uniform chooser with the given seed.
func NewUniform(seed int64) *Uniform {
	return &Uniform{rng: rand.New(rand.NewSource(seed))}
}

// Next implements KeyChooser.
func (u *Uniform) Next(n uint64) uint64 {
	if n == 0 {
		panic("workload: empty keyspace")
	}
	return uint64(u.rng.Int63n(int64(n)))
}

// Zipfian chooses keys with a zipfian popularity distribution (YCSB's
// default skew θ=0.99 unless configured otherwise). Item 0 is the hottest.
type Zipfian struct {
	rng   *rand.Rand
	theta float64

	// cached state for the current n (Gray et al. quick zipf generation)
	n     uint64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipfian returns a zipfian chooser with skew theta in (0, 1).
func NewZipfian(seed int64, theta float64) *Zipfian {
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: zipfian theta %v out of (0,1)", theta))
	}
	return &Zipfian{rng: rand.New(rand.NewSource(seed)), theta: theta}
}

func zeta(n uint64, theta float64) float64 {
	var z float64
	for i := uint64(1); i <= n; i++ {
		z += 1 / math.Pow(float64(i), theta)
	}
	return z
}

func (z *Zipfian) prepare(n uint64) {
	if z.n == n {
		return
	}
	z.n = n
	z.zetan = zeta(n, z.theta)
	z.zeta2 = zeta(2, z.theta)
	z.alpha = 1 / (1 - z.theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - z.zeta2/z.zetan)
}

// Next implements KeyChooser.
func (z *Zipfian) Next(n uint64) uint64 {
	if n == 0 {
		panic("workload: empty keyspace")
	}
	if n == 1 {
		return 0
	}
	z.prepare(n)
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// HotCold draws from a small hot set with the given probability and from the
// cold remainder otherwise — directly modelling the hot/cold data spectrum
// the paper's cost analysis turns on.
type HotCold struct {
	rng     *rand.Rand
	hotFrac float64 // fraction of the keyspace that is hot
	hotProb float64 // probability an access goes to the hot set
}

// NewHotCold returns a chooser where hotFrac of keys receive hotProb of
// accesses (e.g. 0.1, 0.9 for a 90/10 skew).
func NewHotCold(seed int64, hotFrac, hotProb float64) *HotCold {
	if hotFrac <= 0 || hotFrac > 1 {
		panic(fmt.Sprintf("workload: hotFrac %v out of (0,1]", hotFrac))
	}
	if hotProb < 0 || hotProb > 1 {
		panic(fmt.Sprintf("workload: hotProb %v out of [0,1]", hotProb))
	}
	return &HotCold{rng: rand.New(rand.NewSource(seed)), hotFrac: hotFrac, hotProb: hotProb}
}

// Next implements KeyChooser.
func (h *HotCold) Next(n uint64) uint64 {
	if n == 0 {
		panic("workload: empty keyspace")
	}
	hot := uint64(float64(n) * h.hotFrac)
	if hot == 0 {
		hot = 1
	}
	if h.rng.Float64() < h.hotProb {
		return uint64(h.rng.Int63n(int64(hot)))
	}
	if hot >= n {
		return uint64(h.rng.Int63n(int64(n)))
	}
	return hot + uint64(h.rng.Int63n(int64(n-hot)))
}

// Sequential cycles through the keyspace in order (bulk loads, scans).
type Sequential struct {
	next uint64
}

// NewSequential returns a sequential chooser starting at 0.
func NewSequential() *Sequential { return &Sequential{} }

// Next implements KeyChooser.
func (s *Sequential) Next(n uint64) uint64 {
	if n == 0 {
		panic("workload: empty keyspace")
	}
	k := s.next % n
	s.next++
	return k
}
