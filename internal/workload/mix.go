package workload

import (
	"fmt"
	"math/rand"
)

// Mix describes an operation mix as relative weights. Weights need not sum
// to 1; they are normalized. A zero Mix is invalid.
type Mix struct {
	Read       float64
	Update     float64
	Insert     float64
	BlindWrite float64
	Scan       float64
	Delete     float64
}

// Standard mixes, named after the YCSB workloads they approximate plus
// paper-specific mixes.
var (
	// ReadOnly is the paper's Section 5 read-only comparison workload.
	ReadOnly = Mix{Read: 1}
	// ReadMostly approximates YCSB-B: 95% reads, 5% updates.
	ReadMostly = Mix{Read: 0.95, Update: 0.05}
	// UpdateHeavy approximates YCSB-A: 50% reads, 50% updates.
	UpdateHeavy = Mix{Read: 0.5, Update: 0.5}
	// BlindWriteHeavy exercises paper Section 6.2: mostly blind updates.
	BlindWriteHeavy = Mix{Read: 0.2, BlindWrite: 0.8}
	// ScanMix adds short range scans.
	ScanMix = Mix{Read: 0.7, Update: 0.25, Scan: 0.05}
)

func (m Mix) total() float64 {
	return m.Read + m.Update + m.Insert + m.BlindWrite + m.Scan + m.Delete
}

// Validate reports whether the mix has positive total weight and no
// negative components.
func (m Mix) Validate() error {
	for _, w := range []float64{m.Read, m.Update, m.Insert, m.BlindWrite, m.Scan, m.Delete} {
		if w < 0 {
			return fmt.Errorf("workload: negative mix weight %v", w)
		}
	}
	if m.total() <= 0 {
		return fmt.Errorf("workload: mix has zero total weight")
	}
	return nil
}

// Generator produces a stream of operations over a keyspace.
type Generator struct {
	cfg   GeneratorConfig
	rng   *rand.Rand
	n     uint64 // current keyspace size (grows with inserts)
	cdf   [6]float64
	kinds [6]OpKind
}

// GeneratorConfig configures a Generator.
type GeneratorConfig struct {
	// Keys is the initial keyspace size (records 0..Keys-1 assumed loaded).
	Keys uint64
	// ValueSize is the payload size for generated writes.
	ValueSize int
	// Mix is the operation mix.
	Mix Mix
	// Chooser selects keys for read/update/blind-write/scan/delete.
	// Inserts always append at the end of the keyspace.
	Chooser KeyChooser
	// ScanLen is the range length for scan operations (default 10).
	ScanLen int
	// Seed drives the op-kind selection.
	Seed int64
}

// NewGenerator validates cfg and returns a generator.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	if err := cfg.Mix.Validate(); err != nil {
		return nil, err
	}
	if cfg.Keys == 0 {
		return nil, fmt.Errorf("workload: zero keyspace")
	}
	if cfg.Chooser == nil {
		return nil, fmt.Errorf("workload: nil Chooser")
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 100
	}
	if cfg.ScanLen <= 0 {
		cfg.ScanLen = 10
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), n: cfg.Keys}
	total := cfg.Mix.total()
	weights := []float64{cfg.Mix.Read, cfg.Mix.Update, cfg.Mix.Insert, cfg.Mix.BlindWrite, cfg.Mix.Scan, cfg.Mix.Delete}
	kinds := []OpKind{OpRead, OpUpdate, OpInsert, OpBlindWrite, OpScan, OpDelete}
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		g.cdf[i] = acc
		g.kinds[i] = kinds[i]
	}
	g.cdf[len(g.cdf)-1] = 1 // guard against FP drift
	return g, nil
}

// Keys returns the current keyspace size (initial keys plus inserts so far).
func (g *Generator) Keys() uint64 { return g.n }

// Next returns the next operation.
func (g *Generator) Next() Op {
	u := g.rng.Float64()
	kind := g.kinds[len(g.kinds)-1]
	for i, c := range g.cdf {
		if u <= c {
			kind = g.kinds[i]
			break
		}
	}
	switch kind {
	case OpInsert:
		id := g.n
		g.n++
		return Op{Kind: OpInsert, Key: Key(id), Value: ValueFor(id, g.cfg.ValueSize)}
	case OpScan:
		id := g.cfg.Chooser.Next(g.n)
		return Op{Kind: OpScan, Key: Key(id), ScanLen: g.cfg.ScanLen}
	case OpUpdate, OpBlindWrite:
		id := g.cfg.Chooser.Next(g.n)
		return Op{Kind: kind, Key: Key(id), Value: ValueFor(id+uint64(g.rng.Int63()), g.cfg.ValueSize)}
	case OpDelete:
		id := g.cfg.Chooser.Next(g.n)
		return Op{Kind: OpDelete, Key: Key(id)}
	default:
		id := g.cfg.Chooser.Next(g.n)
		return Op{Kind: OpRead, Key: Key(id)}
	}
}
