package workload

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestBuiltinScenariosValidate(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 6 {
		t.Fatalf("built-in matrix has %d scenarios, want >= 6", len(scs))
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %q: %v", sc.Name, err)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Desc == "" {
			t.Errorf("scenario %q has no description", sc.Name)
		}
	}
}

func TestScenarioByName(t *testing.T) {
	for _, name := range ScenarioNames() {
		sc, ok := ScenarioByName(name)
		if !ok || sc.Name != name {
			t.Fatalf("ScenarioByName(%q) = %v, %v", name, sc.Name, ok)
		}
	}
	if _, ok := ScenarioByName("no-such-scenario"); ok {
		t.Fatal("ScenarioByName accepted an unknown name")
	}
}

func TestScenarioValidateRejects(t *testing.T) {
	valid := Tenant{Name: "t", Weight: 1, Mix: ReadOnly, Dist: DistSpec{Kind: "uniform"}}
	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"no name", Scenario{Phases: []Phase{{Name: "p", Frac: 1, Tenants: []Tenant{valid}}}}, "without a name"},
		{"no phases", Scenario{Name: "s"}, "no phases"},
		{"zero frac", Scenario{Name: "s", Phases: []Phase{{Name: "p", Frac: 0, Tenants: []Tenant{valid}}}}, "frac"},
		{"no tenants", Scenario{Name: "s", Phases: []Phase{{Name: "p", Frac: 1}}}, "no tenants"},
		{"zero weight", Scenario{Name: "s", Phases: []Phase{{Name: "p", Frac: 1,
			Tenants: []Tenant{{Name: "t", Weight: 0, Mix: ReadOnly, Dist: DistSpec{Kind: "uniform"}}}}}}, "weight"},
		{"bad mix", Scenario{Name: "s", Phases: []Phase{{Name: "p", Frac: 1,
			Tenants: []Tenant{{Name: "t", Weight: 1, Mix: Mix{}, Dist: DistSpec{Kind: "uniform"}}}}}}, "zero total weight"},
		{"bad dist", Scenario{Name: "s", Phases: []Phase{{Name: "p", Frac: 1,
			Tenants: []Tenant{{Name: "t", Weight: 1, Mix: ReadOnly, Dist: DistSpec{Kind: "nope"}}}}}}, "unknown distribution"},
	}
	for _, tc := range cases {
		err := tc.sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestDistSpecValidate(t *testing.T) {
	good := []DistSpec{
		{Kind: "uniform"},
		{Kind: "sequential"},
		{Kind: "zipfian"},
		{Kind: "zipfian", Theta: 0.5},
		{Kind: "hotcold"},
		{Kind: "hotcold", HotFrac: 0.2, HotProb: 0.8},
		{Kind: "uniform", RotateFrac: 0.5},
	}
	for _, d := range good {
		if err := d.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", d, err)
		}
		if _, err := d.Chooser(1); err != nil {
			t.Errorf("%v: Chooser: %v", d, err)
		}
	}
	bad := []DistSpec{
		{Kind: "weird"},
		{Kind: "zipfian", Theta: 1.5},
		{Kind: "zipfian", Theta: -0.1},
		{Kind: "hotcold", HotFrac: 2},
		{Kind: "hotcold", HotProb: -1},
		{Kind: "uniform", RotateFrac: 1},
		{Kind: "uniform", RotateFrac: -0.1},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("%v: Validate accepted an invalid spec", d)
		}
		if _, err := d.Chooser(1); err == nil {
			t.Errorf("%v: Chooser accepted an invalid spec", d)
		}
	}
}

func TestScenarioGenEmitsExactOps(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, ops := range []int{1, 7, 100, 1000} {
			got, err := GenerateScenario(sc, ScenarioConfig{Keys: 500, ValueSize: 16, Ops: ops, Seed: 3})
			if err != nil {
				t.Fatalf("%s/%d: %v", sc.Name, ops, err)
			}
			if len(got) != ops {
				t.Fatalf("%s: generated %d ops, want %d", sc.Name, len(got), ops)
			}
		}
	}
}

func TestScenarioGenDeterministic(t *testing.T) {
	cfg := ScenarioConfig{Keys: 1000, ValueSize: 32, Ops: 2000, Seed: 42}
	for _, sc := range Scenarios() {
		a, err := GenerateScenario(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateScenario(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !opsEqual(a, b) {
			t.Errorf("scenario %q: same seed produced different op streams", sc.Name)
		}
		if sc.Name == "insert-grow" {
			continue // pure append: the stream is seed-independent by design
		}
		cfg2 := cfg
		cfg2.Seed = 43
		c, err := GenerateScenario(sc, cfg2)
		if err != nil {
			t.Fatal(err)
		}
		if opsEqual(a, c) {
			t.Errorf("scenario %q: different seeds produced identical op streams", sc.Name)
		}
	}
}

func TestFlashCrowdRotatesHotSet(t *testing.T) {
	sc, ok := ScenarioByName("flash-crowd")
	if !ok {
		t.Fatal("flash-crowd scenario missing")
	}
	const keys, ops = 10000, 30000
	all, err := GenerateScenario(sc, ScenarioConfig{Keys: keys, ValueSize: 16, Ops: ops, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The hottest key of the first phase should not be hot in the last:
	// the 5% hot set moved by RotateFrac of the keyspace.
	hot := func(ops []Op) uint64 {
		counts := map[uint64]int{}
		for _, op := range ops {
			counts[KeyID(op.Key)]++
		}
		var best uint64
		for k, n := range counts {
			if n > counts[best] {
				best = k
			}
		}
		return best
	}
	first, last := all[:ops/3], all[2*ops/3:]
	h1, h3 := hot(first), hot(last)
	if d := int64(h3) - int64(h1); d > -1000 && d < 1000 {
		t.Errorf("hot set did not rotate: phase1 hottest %d, phase3 hottest %d", h1, h3)
	}
}

func TestMixedTenantInterleaves(t *testing.T) {
	sc, ok := ScenarioByName("mixed-tenant")
	if !ok {
		t.Fatal("mixed-tenant scenario missing")
	}
	ops, err := GenerateScenario(sc, ScenarioConfig{Keys: 5000, ValueSize: 16, Ops: 20000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var blind, read int
	for _, op := range ops {
		switch op.Kind {
		case OpBlindWrite:
			blind++
		case OpRead:
			read++
		}
	}
	// The batch tenant (30% weight, 80% blind writes) should contribute
	// roughly 24% blind writes; the oltp tenant most of the reads.
	if frac := float64(blind) / float64(len(ops)); frac < 0.15 || frac > 0.35 {
		t.Errorf("blind-write fraction %.3f outside mixed-tenant expectation [0.15, 0.35]", frac)
	}
	if frac := float64(read) / float64(len(ops)); frac < 0.55 {
		t.Errorf("read fraction %.3f too low for a 70%% read-mostly tenant", frac)
	}
}

func TestRotatedChooserStaysInRange(t *testing.T) {
	d := DistSpec{Kind: "hotcold", HotFrac: 0.05, HotProb: 0.95, RotateFrac: 0.9}
	c, err := d.Chooser(11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if k := c.Next(777); k >= 777 {
			t.Fatalf("rotated chooser returned %d >= 777", k)
		}
	}
}

func TestScenarioDescribeAndJSON(t *testing.T) {
	sc, _ := ScenarioByName("flash-crowd")
	desc := sc.Describe()
	for _, want := range []string{"flash-crowd:", "hotcold(0.05/0.95)", "rot33%"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe() = %q, missing %q", desc, want)
		}
	}
	// Scenario definitions are embedded in BENCH_matrix.json: they must
	// round-trip through JSON unchanged.
	buf, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != sc.Name || len(back.Phases) != len(sc.Phases) {
		t.Fatalf("JSON round trip mangled the scenario: %+v", back)
	}
	if back.Phases[1].Tenants[0].Dist.RotateFrac != 0.33 {
		t.Fatalf("JSON round trip lost RotateFrac: %+v", back.Phases[1].Tenants[0].Dist)
	}
}

func TestScenarioGenConfigErrors(t *testing.T) {
	sc, _ := ScenarioByName("hot-zipf")
	if _, err := NewScenarioGen(sc, ScenarioConfig{Keys: 0, Ops: 10}); err == nil {
		t.Error("zero keyspace accepted")
	}
	if _, err := NewScenarioGen(sc, ScenarioConfig{Keys: 10, Ops: 0}); err == nil {
		t.Error("zero ops accepted")
	}
	if _, err := NewScenarioGen(Scenario{}, ScenarioConfig{Keys: 10, Ops: 10}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func opsEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].ScanLen != b[i].ScanLen ||
			string(a[i].Key) != string(b[i].Key) || string(a[i].Value) != string(b[i].Value) {
			return false
		}
	}
	return true
}

// TestTenantClassTagging pins the priority-class ride-along: classed
// tenants validate against the overload class names, NextTagged reports
// each op's tenant class without perturbing the Op stream (the trace
// codec's Op is untouched), and unknown classes are rejected.
func TestTenantClassTagging(t *testing.T) {
	classed := Scenario{
		Name: "classed",
		Phases: []Phase{{
			Name: "p", Frac: 1,
			Tenants: []Tenant{
				{Name: "oltp", Weight: 0.5, Mix: ReadMostly, Dist: DistSpec{Kind: "uniform"}, Class: "high"},
				{Name: "batch", Weight: 0.3, Mix: BlindWriteHeavy, Dist: DistSpec{Kind: "uniform"}, Class: "low"},
				{Name: "untagged", Weight: 0.2, Mix: ReadMostly, Dist: DistSpec{Kind: "uniform"}},
			},
		}},
	}
	if err := classed.Validate(); err != nil {
		t.Fatalf("classed scenario invalid: %v", err)
	}

	bad := classed
	bad.Phases = []Phase{{Name: "p", Frac: 1, Tenants: []Tenant{
		{Name: "x", Weight: 1, Mix: ReadMostly, Dist: DistSpec{Kind: "uniform"}, Class: "urgent"},
	}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "urgent") {
		t.Fatalf("unknown class validated: %v", err)
	}
	probe := bad
	probe.Phases[0].Tenants[0].Class = "probe"
	if err := probe.Validate(); err == nil {
		t.Fatal("probe class must not be claimable by a tenant")
	}

	cfg := ScenarioConfig{Keys: 1000, ValueSize: 16, Ops: 3000, Seed: 7}
	g1, err := NewScenarioGen(classed, cfg)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	g2, err := NewScenarioGen(classed, cfg)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	seen := map[string]int{}
	for {
		op1, class, ok := g1.NextTagged()
		op2, ok2 := g2.Next()
		if ok != ok2 {
			t.Fatal("NextTagged and Next disagree on stream length")
		}
		if !ok {
			break
		}
		if op1.Kind != op2.Kind || string(op1.Key) != string(op2.Key) {
			t.Fatal("NextTagged perturbed the op stream")
		}
		switch class {
		case "high", "low", "":
			seen[class]++
		default:
			t.Fatalf("op tagged with undeclared class %q", class)
		}
	}
	if seen["high"] == 0 || seen["low"] == 0 || seen[""] == 0 {
		t.Fatalf("class mixture missing tenants: %v", seen)
	}
}
