package workload

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeyRoundTrip(t *testing.T) {
	for _, id := range []uint64{0, 1, 255, 1 << 20, math.MaxUint64} {
		if got := KeyID(Key(id)); got != id {
			t.Errorf("KeyID(Key(%d)) = %d", id, got)
		}
	}
}

func TestKeyOrderMatchesNumericOrder(t *testing.T) {
	f := func(a, b uint64) bool {
		cmp := bytes.Compare(Key(a), Key(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyIDWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for short key")
		}
	}()
	KeyID([]byte{1, 2, 3})
}

func TestValueForDeterministic(t *testing.T) {
	a := ValueFor(42, 64)
	b := ValueFor(42, 64)
	if !bytes.Equal(a, b) {
		t.Fatal("ValueFor not deterministic")
	}
	c := ValueFor(43, 64)
	if bytes.Equal(a, c) {
		t.Fatal("different ids produced identical values")
	}
	if len(a) != 64 {
		t.Fatalf("len = %d, want 64", len(a))
	}
}

func TestUniformCoverage(t *testing.T) {
	u := NewUniform(1)
	const n = 10
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		k := u.Next(n)
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != n {
		t.Fatalf("uniform covered %d/%d keys in 1000 draws", len(seen), n)
	}
}

func TestUniformEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty keyspace")
		}
	}()
	NewUniform(1).Next(0)
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(1, 0.99)
	const n, draws = 1000, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := z.Next(n)
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Item 0 must be by far the most popular; the top 10 items should
	// account for a large share of accesses under theta=0.99.
	top := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(top)))
	var top10 int
	for _, c := range top[:10] {
		top10 += c
	}
	if frac := float64(top10) / draws; frac < 0.3 {
		t.Fatalf("top-10 share = %v, want >= 0.3 for zipfian skew", frac)
	}
	if counts[0] < counts[n-1] {
		t.Fatal("item 0 should be hotter than the tail")
	}
}

func TestZipfianSingleKey(t *testing.T) {
	z := NewZipfian(1, 0.5)
	if got := z.Next(1); got != 0 {
		t.Fatalf("Next(1) = %d, want 0", got)
	}
}

func TestZipfianBadThetaPanics(t *testing.T) {
	for _, theta := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("theta=%v did not panic", theta)
				}
			}()
			NewZipfian(1, theta)
		}()
	}
}

func TestZipfianAdaptsToGrowingKeyspace(t *testing.T) {
	z := NewZipfian(7, 0.9)
	for _, n := range []uint64{10, 100, 10000} {
		for i := 0; i < 100; i++ {
			if k := z.Next(n); k >= n {
				t.Fatalf("key %d out of range %d", k, n)
			}
		}
	}
}

func TestHotColdSkew(t *testing.T) {
	h := NewHotCold(1, 0.1, 0.9)
	const n, draws = 1000, 50000
	hotHits := 0
	for i := 0; i < draws; i++ {
		k := h.Next(n)
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		if k < 100 { // hot set = first 10%
			hotHits++
		}
	}
	frac := float64(hotHits) / draws
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction = %v, want ~0.9", frac)
	}
}

func TestHotColdDegenerate(t *testing.T) {
	// hotFrac=1 means every access is in the "hot" range.
	h := NewHotCold(1, 1.0, 0.5)
	for i := 0; i < 100; i++ {
		if k := h.Next(10); k >= 10 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestHotColdBadParamsPanic(t *testing.T) {
	for _, c := range []struct{ frac, prob float64 }{
		{0, 0.5}, {-1, 0.5}, {1.5, 0.5}, {0.1, -0.1}, {0.1, 1.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("frac=%v prob=%v did not panic", c.frac, c.prob)
				}
			}()
			NewHotCold(1, c.frac, c.prob)
		}()
	}
}

func TestSequentialWraps(t *testing.T) {
	s := NewSequential()
	want := []uint64{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := s.Next(3); got != w {
			t.Fatalf("draw %d = %d, want %d", i, got, w)
		}
	}
}

func TestMixValidate(t *testing.T) {
	if err := ReadOnly.Validate(); err != nil {
		t.Fatalf("ReadOnly invalid: %v", err)
	}
	if err := (Mix{}).Validate(); err == nil {
		t.Fatal("zero mix should be invalid")
	}
	if err := (Mix{Read: -1, Update: 2}).Validate(); err == nil {
		t.Fatal("negative weight should be invalid")
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{
		Keys:    1000,
		Mix:     Mix{Read: 0.5, Update: 0.5},
		Chooser: NewUniform(1),
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpKind]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		op := g.Next()
		counts[op.Kind]++
		if op.Kind == OpRead && op.Value != nil {
			t.Fatal("read op carries a value")
		}
		if op.Kind == OpUpdate && op.Value == nil {
			t.Fatal("update op missing value")
		}
	}
	rf := float64(counts[OpRead]) / draws
	if rf < 0.45 || rf > 0.55 {
		t.Fatalf("read fraction = %v, want ~0.5", rf)
	}
	if counts[OpInsert] != 0 || counts[OpScan] != 0 {
		t.Fatal("unexpected op kinds generated")
	}
}

func TestGeneratorInsertGrowsKeyspace(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{
		Keys:    10,
		Mix:     Mix{Insert: 1},
		Chooser: NewUniform(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		op := g.Next()
		if op.Kind != OpInsert {
			t.Fatalf("kind = %v, want insert", op.Kind)
		}
		if got := KeyID(op.Key); got != uint64(10+i) {
			t.Fatalf("insert key = %d, want %d", got, 10+i)
		}
	}
	if g.Keys() != 15 {
		t.Fatalf("Keys = %d, want 15", g.Keys())
	}
}

func TestGeneratorScanLen(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{
		Keys:    100,
		Mix:     Mix{Scan: 1},
		Chooser: NewUniform(1),
		ScanLen: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	op := g.Next()
	if op.Kind != OpScan || op.ScanLen != 25 {
		t.Fatalf("op = %+v, want scan len 25", op)
	}
}

func TestGeneratorConfigErrors(t *testing.T) {
	cases := []GeneratorConfig{
		{Keys: 0, Mix: ReadOnly, Chooser: NewUniform(1)},
		{Keys: 10, Mix: Mix{}, Chooser: NewUniform(1)},
		{Keys: 10, Mix: ReadOnly, Chooser: nil},
	}
	for i, cfg := range cases {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpRead: "read", OpUpdate: "update", OpInsert: "insert",
		OpBlindWrite: "blindwrite", OpScan: "scan", OpDelete: "delete",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if OpKind(42).String() != "OpKind(42)" {
		t.Error("unknown kind string")
	}
}

// Property: generator only produces keys within the (growing) keyspace.
func TestGeneratorKeyRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := NewGenerator(GeneratorConfig{
			Keys:    50,
			Mix:     Mix{Read: 1, Update: 1, Insert: 0.2, BlindWrite: 1, Scan: 0.3},
			Chooser: NewUniform(seed),
			Seed:    seed,
		})
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			op := g.Next()
			if KeyID(op.Key) >= g.Keys() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
