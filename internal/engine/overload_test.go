package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"costperf/internal/fault"
	"costperf/internal/masstree"
	"costperf/internal/metrics"
	"costperf/internal/overload"
)

// TestProbeExemptFromAdmission is the regression test for the breaker
// starvation bug: under sustained overload the admission queue used to
// shed the breaker's half-open probe, leaving the circuit latched
// probing with no verdict ever arriving. Probes now bypass admission
// (ClassProbe), so the probe lands in the store even while the queue is
// full and every ordinary request is being shed.
func TestProbeExemptFromAdmission(t *testing.T) {
	fs := newFakeStore()
	e := newTestEngine(t, Config{
		Store:            fs,
		MaxConcurrent:    1,
		MaxQueue:         1,
		BreakerThreshold: 1,
		ProbeBackoff:     time.Millisecond,
	})
	ctx := context.Background()

	// Trip the breaker with one persistent write failure.
	fs.setPutErr(fmt.Errorf("dev: %w", fault.ErrPersistent))
	if err := e.Put(ctx, []byte("k"), []byte("v")); !errors.Is(err, fault.ErrPersistent) {
		t.Fatalf("tripping Put = %v, want the store error", err)
	}
	if e.Stats().Breaker.State() != metrics.HealthDegraded {
		t.Fatalf("breaker = %v, want open", e.Stats().Breaker.State())
	}
	fs.setPutErr(nil)

	// Saturate admission: one Get runs (blocked in the store), one more
	// fills the queue. Every further ordinary request is shed.
	fs.block = make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			if _, _, err := e.Get(ctx, []byte("k")); err != nil {
				t.Errorf("saturating Get: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().QueuePeak.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("admission queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := e.Get(ctx, []byte("k")); !errors.Is(err, ErrOverload) {
		t.Fatalf("Get with a full queue = %v, want ErrOverload", err)
	}

	// The store must see the probe even though admission is saturated.
	// The probe Put also blocks on fs.block, so release the gate once the
	// probe has reached the store.
	var probeSeen atomic.Bool
	fs.putHook = func() {
		probeSeen.Store(true)
		close(fs.block)
	}
	var probed bool
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		err := e.Put(ctx, []byte("p"), []byte("v"))
		if err == nil {
			probed = true
			break
		}
		// Until the jittered backoff elapses the circuit fails writes
		// fast; a full admission queue must never surface ErrOverload for
		// what would have been the probe.
		if !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("Put while open = %v, want ErrCircuitOpen until the probe", err)
		}
		time.Sleep(time.Millisecond)
	}
	if !probed {
		t.Fatal("breaker never admitted its probe through the saturated queue")
	}
	if !probeSeen.Load() {
		t.Fatal("probe reported success without reaching the store")
	}
	if e.Stats().Breaker.State() != metrics.HealthHealthy {
		t.Fatalf("breaker after probe = %v, want closed", e.Stats().Breaker.State())
	}
	wg.Wait()
}

// TestGateBeforeAdmission pins the fail-fast ordering: writes rejected
// by the breaker or read-only health never consume admission capacity.
func TestGateBeforeAdmission(t *testing.T) {
	fs := newFakeStore()
	fs.hasHP = true
	fs.health.Degrade("test")
	e := newTestEngine(t, Config{Store: fs, MaxConcurrent: 1, MaxQueue: 1})
	ctx := context.Background()
	before := e.Stats().Admitted.Value()
	for i := 0; i < 5; i++ {
		if err := e.Put(ctx, []byte("k"), []byte("v")); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("Put on degraded store = %v, want ErrReadOnly", err)
		}
	}
	if got := e.Stats().Admitted.Value(); got != before {
		t.Fatalf("read-only rejects consumed %d admission slots", got-before)
	}
	if got := e.Stats().ReadOnlyRejects.Value(); got != 5 {
		t.Fatalf("ReadOnlyRejects = %d, want 5", got)
	}
}

// TestQueueStatsConsistentUnderRaces (satellite of the overload PR)
// hammers the admission queue with concurrent sheds, cancels, and
// successes under -race and asserts the depth gauges stay consistent:
// depth returns to zero, the peak never exceeds MaxQueue, and every
// issued op is accounted for exactly once.
func TestQueueStatsConsistentUnderRaces(t *testing.T) {
	e := newTestEngine(t, Config{
		Store:         WrapMassTree(masstree.New(nil)),
		MaxConcurrent: 2,
		MaxQueue:      4,
	})
	const workers, opsPer = 12, 150
	var wg sync.WaitGroup
	var ok, shed, aborted atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("k%d", w))
			for i := 0; i < opsPer; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch i % 3 {
				case 1:
					// A deadline short enough to sometimes expire while
					// queued: the shed/cancel race the gauges must survive.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5)*10*time.Microsecond)
				case 2:
					ctx, cancel = context.WithCancel(ctx)
					if i%6 == 2 {
						cancel()
					}
				}
				err := e.Put(ctx, key, []byte("v"))
				cancel()
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrOverload):
					shed.Add(1)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					aborted.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()

	st := e.Stats()
	if got := st.QueueDepth.Value(); got != 0 {
		t.Fatalf("QueueDepth after drain = %d, want 0", got)
	}
	if peak := st.QueuePeak.Value(); peak > 4 {
		t.Fatalf("QueuePeak = %d exceeded MaxQueue 4", peak)
	}
	if got := st.Shed.Value(); got != shed.Load() {
		t.Fatalf("Stats.Shed = %d, callers saw %d", got, shed.Load())
	}
	if total := ok.Load() + shed.Load() + aborted.Load(); total != workers*opsPer {
		t.Fatalf("accounted ops = %d, want %d", total, workers*opsPer)
	}
	// Every admitted op released its slot: the limiter agrees with the
	// engine's own counters and holds no residual inflight.
	lst := e.Limiter().Stats()
	if got := lst.Inflight.Value(); got != 0 {
		t.Fatalf("limiter Inflight after drain = %d, want 0", got)
	}
	if st.Admitted.Value() != lst.Admitted.Value() {
		t.Fatalf("engine Admitted = %d, limiter Admitted = %d", st.Admitted.Value(), lst.Admitted.Value())
	}
}

// TestAdaptiveLimitConvergesDown drives an adaptive engine over a store
// whose latency inflates with concurrency and asserts the limit walks
// down from its initial setting — the tentpole behavior in miniature
// (the full metastable sweep lives in internal/integration).
func TestAdaptiveLimitConvergesDown(t *testing.T) {
	fs := newFakeStore()
	e := newTestEngine(t, Config{
		Store:         fs,
		MaxConcurrent: 32,
		Adaptive:      true,
		AdaptiveMin:   2,
		AdaptiveMax:   64,
		LimitWindow:   8,
	})
	// Latency grows with inflight: more concurrency, slower store — the
	// signature of a saturated device the limiter must back away from.
	var inflight atomic.Int64
	fs.putHook = func() {
		n := inflight.Add(1)
		defer inflight.Add(-1)
		time.Sleep(time.Duration(n) * 200 * time.Microsecond)
	}
	// Drive load until the controller has demonstrably stepped down: the
	// vegas probe window re-measures the true floor (the first windows
	// may learn an inflated one, since the store is congested from the
	// first op), after which the steady congested windows multiply the
	// limit down. Converge-or-timeout rather than a fixed op count keeps
	// the test robust to scheduler noise.
	ctx := context.Background()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("k%d", w))
			for !stop.Load() {
				_ = e.Put(ctx, key, []byte("v"))
			}
		}(w)
	}
	deadline := time.Now().Add(20 * time.Second)
	for e.Limiter().Stats().LimitDowns.Value() == 0 {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("no downward gradient updates within 20s: %s", e.Limiter().Stats().String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if e.Limiter().Stats().LimitDowns.Value() == 0 {
		t.Fatal("no downward gradient updates recorded")
	}
}

// TestClassTaggedOpsShedInOrder pins the context-class plumbing end to
// end: with the queue saturated, a scan-tagged op sheds while a
// high-tagged op still queues.
func TestClassTaggedOpsShedInOrder(t *testing.T) {
	fs := newFakeStore()
	fs.block = make(chan struct{})
	e := newTestEngine(t, Config{Store: fs, MaxConcurrent: 1, MaxQueue: 8})
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := e.Get(ctx, []byte("k")); err != nil {
			t.Errorf("holder Get: %v", err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for e.Limiter().Stats().Inflight.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("holder never entered the store")
		}
		time.Sleep(time.Millisecond)
	}
	// Two queued normal ops bring the queue to scan's bound (8/4 = 2).
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := e.Get(ctx, []byte("k")); err != nil {
				t.Errorf("queued Get: %v", err)
			}
		}()
	}
	for e.Stats().QueueDepth.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never reached scan's bound")
		}
		time.Sleep(time.Millisecond)
	}

	// A scan sheds at its bound...
	err := e.Scan(ctx, nil, 1, func(k, v []byte) bool { return true })
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("Scan at scan bound = %v, want ErrOverload", err)
	}
	// ...but the same queue admits a high-class Get.
	wg.Add(1)
	go func() {
		defer wg.Done()
		hctx := overload.WithClass(ctx, overload.ClassHigh)
		if _, _, err := e.Get(hctx, []byte("k")); err != nil {
			t.Errorf("high Get: %v", err)
		}
	}()
	for e.Stats().QueueDepth.Value() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("high-class op never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if got := e.Limiter().Stats().ShedScan.Value(); got != 1 {
		t.Fatalf("ShedScan = %d, want 1", got)
	}
	close(fs.block)
	wg.Wait()
}
