package engine

import (
	"testing"
	"time"
)

// TestProbeJitterBounds pins the jitter contract: every drawn interval lies
// in [d/2, d], the draws actually vary, and a fixed seed reproduces the
// same schedule.
func TestProbeJitterBounds(t *testing.T) {
	mk := func(seed int64) *Engine {
		e, err := New(Config{Store: newFakeStore(), ProbeJitterSeed: seed})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return e
	}
	e := mk(42)
	const d = 80 * time.Millisecond
	var samples []time.Duration
	distinct := false
	for i := 0; i < 1000; i++ {
		j := e.jitter(d)
		if j < d/2 || j > d {
			t.Fatalf("jitter(%v) sample %d = %v, want within [%v, %v]", d, i, j, d/2, d)
		}
		if len(samples) > 0 && j != samples[0] {
			distinct = true
		}
		samples = append(samples, j)
	}
	if !distinct {
		t.Fatal("jitter returned the same interval 1000 times; probes would synchronize")
	}
	// Same seed, same schedule: seeded sweeps stay reproducible.
	e2 := mk(42)
	for i, want := range samples {
		if got := e2.jitter(d); got != want {
			t.Fatalf("sample %d: seed 42 replay = %v, want %v", i, got, want)
		}
	}
	// A different seed must not produce the identical schedule.
	e3 := mk(43)
	same := true
	for _, want := range samples {
		if e3.jitter(d) != want {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter schedules")
	}
}

// TestProbeBackoffDoubling pins the exponential schedule: a trip arms at
// the base interval, each failed probe doubles it, and the cap holds.
func TestProbeBackoffDoubling(t *testing.T) {
	e, err := New(Config{
		Store:           newFakeStore(),
		ProbeBackoff:    10 * time.Millisecond,
		ProbeMaxBackoff: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	arm := func(reset bool, want time.Duration) {
		t.Helper()
		before := time.Now()
		e.armProbe(reset)
		after := time.Now()
		e.probeMu.Lock()
		wait := e.probeWait
		e.probeMu.Unlock()
		if wait != want {
			t.Fatalf("probeWait = %v, want %v", wait, want)
		}
		// The armed deadline honors the jitter bounds around the wait.
		at := time.Unix(0, e.probeAt.Load())
		if at.Before(before.Add(want/2)) || at.After(after.Add(want)) {
			t.Fatalf("probe armed at %v, want within [now+%v, now+%v]", at.Sub(before), want/2, want)
		}
	}
	arm(true, 10*time.Millisecond)   // fresh trip: base
	arm(false, 20*time.Millisecond)  // failed probe: doubled
	arm(false, 40*time.Millisecond)  // doubled again
	arm(false, 40*time.Millisecond)  // capped at ProbeMaxBackoff
	arm(true, 10*time.Millisecond)   // next trip restarts at base
}
