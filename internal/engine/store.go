package engine

import (
	"context"

	"costperf/internal/btree"
	"costperf/internal/bwtree"
	"costperf/internal/lsm"
	"costperf/internal/masstree"
	"costperf/internal/metrics"
	"costperf/internal/tc"
)

// Store is the uniform concurrent front-end every engine wraps: the five
// stores of the reproduction (Bw-tree/LLAMA, B-tree, MassTree, LSM, TC)
// differ in structure and durability story, but behind this interface they
// all take a context on every operation so deadlines and cancellation
// propagate down into device waits and retry loops.
type Store interface {
	// Get returns the value for key.
	Get(ctx context.Context, key []byte) ([]byte, bool, error)
	// Put upserts key -> val.
	Put(ctx context.Context, key, val []byte) error
	// Delete removes key (idempotent).
	Delete(ctx context.Context, key []byte) error
	// Scan visits live pairs with key >= start in order until fn returns
	// false or limit pairs are visited (limit <= 0 means unlimited).
	Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error
	// Health exposes the store's own latching health indicator, or nil for
	// stores that cannot degrade (pure main-memory structures).
	Health() *metrics.Health
	// Close releases the store.
	Close() error
}

// --- Bw-tree ---

type bwStore struct{ t *bwtree.Tree }

// WrapBwTree adapts a Bw-tree (with its LLAMA log store) to Store. Puts
// use blind writes: the paper's Section 6.2 update path that avoids read
// I/O when the base page is evicted.
func WrapBwTree(t *bwtree.Tree) Store { return &bwStore{t: t} }

func (s *bwStore) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	return s.t.GetCtx(ctx, key)
}
func (s *bwStore) Put(ctx context.Context, key, val []byte) error {
	return s.t.BlindWriteCtx(ctx, key, val)
}
func (s *bwStore) Delete(ctx context.Context, key []byte) error {
	return s.t.DeleteCtx(ctx, key)
}
func (s *bwStore) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	return s.t.ScanCtx(ctx, start, limit, fn)
}
func (s *bwStore) Health() *metrics.Health { return &s.t.Stats().Health }
func (s *bwStore) Close() error            { return s.t.Close() }

// --- B-tree ---

type btStore struct{ t *btree.Tree }

// WrapBTree adapts the classic buffer-pool B-tree to Store. The tree's
// health latches degraded only when its backing device reports
// unrecoverable corruption (an ssd.Mirror quarantining a page); ordinary
// persistent device failures still surface as operation errors handled by
// the engine's circuit breaker.
func WrapBTree(t *btree.Tree) Store { return &btStore{t: t} }

func (s *btStore) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	return s.t.GetCtx(ctx, key)
}
func (s *btStore) Put(ctx context.Context, key, val []byte) error {
	return s.t.InsertCtx(ctx, key, val)
}
func (s *btStore) Delete(ctx context.Context, key []byte) error {
	return s.t.DeleteCtx(ctx, key)
}
func (s *btStore) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	return s.t.ScanCtx(ctx, start, limit, fn)
}
func (s *btStore) Health() *metrics.Health { return &s.t.Stats().Health }
func (s *btStore) Close() error            { return s.t.Close() }

// --- LSM ---

type lsmStore struct{ t *lsm.Tree }

// WrapLSM adapts the LSM tree to Store. Close flushes the memtable so the
// manifest commit point covers everything acknowledged.
func WrapLSM(t *lsm.Tree) Store { return &lsmStore{t: t} }

func (s *lsmStore) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	return s.t.GetCtx(ctx, key)
}
func (s *lsmStore) Put(ctx context.Context, key, val []byte) error {
	return s.t.PutCtx(ctx, key, val)
}
func (s *lsmStore) Delete(ctx context.Context, key []byte) error {
	return s.t.DeleteCtx(ctx, key)
}
func (s *lsmStore) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	return s.t.ScanCtx(ctx, start, limit, fn)
}
func (s *lsmStore) Health() *metrics.Health { return &s.t.Stats().Health }
func (s *lsmStore) Close() error            { return s.t.Flush() }

// --- MassTree ---

type mtStore struct{ t *masstree.Tree }

// WrapMassTree adapts the main-memory MassTree to Store. Operations never
// touch secondary storage, so the context is checked only at entry; the
// store cannot degrade and Close is a no-op.
func WrapMassTree(t *masstree.Tree) Store { return &mtStore{t: t} }

func (s *mtStore) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	v, ok := s.t.Get(key)
	return v, ok, nil
}
func (s *mtStore) Put(ctx context.Context, key, val []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.t.Put(key, val)
	return nil
}
func (s *mtStore) Delete(ctx context.Context, key []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.t.Delete(key)
	return nil
}
func (s *mtStore) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.t.Scan(start, limit, fn)
	return nil
}
func (s *mtStore) Health() *metrics.Health { return nil }
func (s *mtStore) Close() error            { return nil }

// --- Transactional component ---

type tcStore struct{ t *tc.TC }

// WrapTC adapts the transactional component to Store: each operation runs
// as a single-key transaction (begin, op, commit). Write-write conflicts
// surface as tc.ErrConflict — the engine does not retry them, matching the
// TC's first-committer-wins semantics.
func WrapTC(t *tc.TC) Store { return &tcStore{t: t} }

func (s *tcStore) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	tx, err := s.t.Begin()
	if err != nil {
		return nil, false, err
	}
	defer tx.Abort()
	return tx.Read(key)
}

func (s *tcStore) Put(ctx context.Context, key, val []byte) error {
	return s.commit1(ctx, func(tx *tc.Tx) error { return tx.Write(key, val) })
}

func (s *tcStore) Delete(ctx context.Context, key []byte) error {
	return s.commit1(ctx, func(tx *tc.Tx) error { return tx.Delete(key) })
}

func (s *tcStore) commit1(ctx context.Context, op func(*tc.Tx) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tx, err := s.t.Begin()
	if err != nil {
		return err
	}
	if err := op(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func (s *tcStore) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tx, err := s.t.Begin()
	if err != nil {
		return err
	}
	defer tx.Abort()
	return tx.Scan(start, limit, fn)
}

func (s *tcStore) Health() *metrics.Health { return &s.t.Stats().Health }
func (s *tcStore) Close() error            { return s.t.Close() }
