// Package engine is the concurrent service front-end of the storage stack:
// a uniform wrapper that turns each store of the reproduction into a
// bounded, deadline-aware, overload-shedding service.
//
// The paper's cost/performance analysis treats each store as an engine
// serving a request stream; this package supplies the request-stream
// machinery the data structures themselves do not model:
//
//   - Deadlines. Every operation takes a context; DefaultTimeout bounds
//     requests that arrive without one. Cancellation propagates down the
//     charger into SSD waits and retry backoffs, so an abandoned request
//     stops burning the IOPS the cost model meters.
//
//   - Admission control. Concurrency in the store is bounded by an
//     internal/overload limiter: MaxConcurrent operations run at once
//     (or, with Adaptive set, a gradient-controlled limit that tracks
//     the store's latency knee), and up to MaxQueue more wait in a
//     priority-ordered queue. Beyond each priority class's queue bound
//     the engine fails fast with ErrOverload instead of letting latency
//     collapse — shedding is observable via Stats.Shed, the limiter's
//     per-class counters, queue depth, and wait-time histograms.
//     Operations carry a priority class in their context
//     (overload.WithClass); scans default to the first-shed class,
//     point ops to normal, and the breaker's half-open probes bypass
//     admission entirely so sustained overload can never starve the
//     probe that would prove recovery.
//
//   - Circuit breaking. A store whose own Health has latched degraded is
//     read-only: writes fail fast with ErrReadOnly. Independently, a run
//     of persistent write failures trips the engine's breaker open
//     (ErrCircuitOpen); once a jittered backoff interval has elapsed, the
//     next write is admitted as a half-open probe whose outcome closes the
//     circuit or re-opens it. Each failed probe doubles the backoff up to
//     ProbeMaxBackoff, and every interval is jittered across [d/2, d] so a
//     fleet of engines over a flapping store cannot synchronize into probe
//     storms.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"costperf/internal/backoff"
	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/overload"
)

// Typed front-end errors.
var (
	// ErrOverload is returned when MaxConcurrent operations are running
	// and MaxQueue more are already waiting: the request is shed unserved.
	ErrOverload = errors.New("engine: overloaded (admission queue full)")
	// ErrCircuitOpen is returned by writes while the engine's breaker is
	// open after sustained persistent failures.
	ErrCircuitOpen = errors.New("engine: circuit open (writes failing fast)")
	// ErrReadOnly is returned by writes when the store's own health has
	// latched degraded: reads keep being served, writes cannot be trusted.
	ErrReadOnly = errors.New("engine: store degraded (read-only)")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("engine: closed")
)

// Config configures an Engine.
type Config struct {
	// Store is the wrapped store (required).
	Store Store
	// MaxConcurrent bounds in-store concurrency (default 64). With
	// Adaptive set it is only the starting point — the live limit moves
	// within [AdaptiveMin, AdaptiveMax] as the limiter tracks the store's
	// observed latency.
	MaxConcurrent int
	// MaxQueue bounds the admission wait queue for the highest priority
	// class; lower classes may only occupy a prefix of it (scans a
	// quarter, low-priority ops half — see overload.Class), so under
	// pressure the engine sheds strictly lowest-class-first. A request
	// past its class's bound is shed with ErrOverload
	// (default 2*MaxConcurrent).
	MaxQueue int
	// Adaptive enables the gradient concurrency limiter: instead of a
	// fixed MaxConcurrent, the engine measures each operation's in-store
	// latency and moves the limit toward the knee of the store's
	// latency/concurrency curve — down multiplicatively when latency
	// inflates past tolerance, up by a sqrt probe when it sits at the
	// floor. See internal/overload for the controller.
	Adaptive bool
	// AdaptiveMin/AdaptiveMax clamp the adaptive limit (defaults 2 and
	// 4*MaxConcurrent). Ignored unless Adaptive.
	AdaptiveMin int
	AdaptiveMax int
	// LimitWindow is the number of latency samples per gradient update
	// (default 64). Smaller windows converge faster at the cost of noise.
	// Ignored unless Adaptive.
	LimitWindow int
	// DefaultTimeout is applied to operations whose context carries no
	// deadline (0 = no default deadline).
	DefaultTimeout time.Duration
	// BreakerThreshold is the run of consecutive persistent write
	// failures that trips the circuit open (default 5).
	BreakerThreshold int
	// ProbeBackoff is the base interval before the open breaker admits a
	// half-open probe (default 10ms). Each failed probe doubles the
	// interval up to ProbeMaxBackoff; every interval is drawn jittered
	// from [d/2, d] so probes desynchronize across engines.
	ProbeBackoff time.Duration
	// ProbeMaxBackoff caps the doubling (default 100*ProbeBackoff).
	ProbeMaxBackoff time.Duration
	// ProbeJitterSeed seeds the jitter source (default 1); tests pin it
	// for reproducible schedules.
	ProbeJitterSeed int64
	// Obs, when non-nil, receives one tracing span per front-end
	// operation, with shed/read-only/circuit rejections tagged as shed
	// outcomes (see internal/obs). Nil traces nothing at zero cost.
	Obs *obs.Tracer
}

func (c *Config) setDefaults() error {
	if c.Store == nil {
		return errors.New("engine: nil store")
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.ProbeBackoff <= 0 {
		c.ProbeBackoff = 10 * time.Millisecond
	}
	if c.ProbeMaxBackoff <= 0 {
		c.ProbeMaxBackoff = 100 * c.ProbeBackoff
	}
	if c.ProbeMaxBackoff < c.ProbeBackoff {
		c.ProbeMaxBackoff = c.ProbeBackoff
	}
	if c.ProbeJitterSeed == 0 {
		c.ProbeJitterSeed = 1
	}
	return nil
}

// Stats meters the front-end. All fields are safe for concurrent use.
type Stats struct {
	// Admitted counts operations that acquired an execution slot.
	Admitted metrics.Counter
	// Shed counts requests rejected with ErrOverload (queue full).
	Shed metrics.Counter
	// Timeouts counts operations that ended with a deadline-exceeded
	// context (while queued or while executing).
	Timeouts metrics.Counter
	// Cancels counts operations that ended cancelled (not by deadline).
	Cancels metrics.Counter
	// ReadOnlyRejects counts writes refused because the store's own
	// health is degraded.
	ReadOnlyRejects metrics.Counter
	// CircuitRejects counts writes refused by the open breaker.
	CircuitRejects metrics.Counter
	// QueueDepth is the current number of admission waiters; QueuePeak is
	// its high-water mark.
	QueueDepth metrics.Gauge
	QueuePeak  metrics.Gauge
	// WaitMicros samples wall-clock admission wait per queued operation;
	// OpMicros samples wall-clock execution latency of admitted
	// operations (both in microseconds).
	WaitMicros metrics.Histogram
	OpMicros   metrics.Histogram
	// Breaker is the circuit state: healthy = closed, degraded = open,
	// probing = half-open. Its Probes/Restores counters meter the
	// half-open cycle; Degradations counts trips (including re-trips
	// after failed probes).
	Breaker metrics.Health
}

// String renders the front-end counters for experiment logs.
func (s *Stats) String() string {
	return fmt.Sprintf("admitted=%d shed=%d timeouts=%d cancels=%d readonly=%d circuit=%d qpeak=%d breaker=%s",
		s.Admitted.Value(), s.Shed.Value(), s.Timeouts.Value(), s.Cancels.Value(),
		s.ReadOnlyRejects.Value(), s.CircuitRejects.Value(), s.QueuePeak.Value(), s.Breaker.String())
}

// Engine is the concurrent front-end. All methods are safe for concurrent
// use.
type Engine struct {
	cfg   Config
	lim   *overload.Limiter
	stats Stats

	consecFail atomic.Int64 // consecutive persistent write failures
	closed     atomic.Bool

	// Probe scheduling: probeAt is the earliest wall-clock nanosecond at
	// which the open breaker admits a half-open probe (atomic, read on the
	// rejected-write fast path); probeWait and the jitter source change
	// only on breaker transitions, under probeMu.
	probeAt   atomic.Int64
	probeMu   sync.Mutex
	probeWait time.Duration
	probeSrc  *backoff.Source
}

// New creates an engine over the given store.
func New(cfg Config) (*Engine, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg: cfg,
		probeSrc: backoff.New(backoff.Policy{
			Base: cfg.ProbeBackoff,
			Max:  cfg.ProbeMaxBackoff,
		}, cfg.ProbeJitterSeed),
	}
	e.lim = overload.NewLimiter(overload.Config{
		Initial:    cfg.MaxConcurrent,
		Min:        cfg.AdaptiveMin,
		Max:        cfg.AdaptiveMax,
		MaxQueue:   cfg.MaxQueue,
		Static:     !cfg.Adaptive,
		Window:     cfg.LimitWindow,
		DepthGauge: &e.stats.QueueDepth,
		PeakGauge:  &e.stats.QueuePeak,
	})
	cfg.Obs.FoldLimiter(e.lim.Stats())
	return e, nil
}

// Stats returns the engine's counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// Limiter exposes the admission limiter: the shard router consults it
// for fail-fast scatter decisions (WouldShed) and the wire server for
// retry-after hints; obs folds its stats into cost snapshots.
func (e *Engine) Limiter() *overload.Limiter { return e.lim }

// RetryAfterHint is the advisory backoff a shed caller should wait
// before retrying, derived from the limiter's live backlog (the wire
// server forwards it inside StatusOverload responses).
func (e *Engine) RetryAfterHint() time.Duration { return e.lim.RetryAfter() }

// Store returns the wrapped store (for harnesses that need direct access,
// e.g. to force a checkpoint).
func (e *Engine) Store() Store { return e.cfg.Store }

// admit acquires an execution slot at the given priority class, applying
// the default deadline. The returned done func releases the slot and must
// be called exactly once when err is nil.
func (e *Engine) admit(parent context.Context, class overload.Class) (ctx context.Context, done func(), err error) {
	if e.closed.Load() {
		return nil, nil, ErrClosed
	}
	if parent == nil {
		parent = context.Background()
	}
	ctx = parent
	cancel := func() {}
	if e.cfg.DefaultTimeout > 0 {
		if _, has := parent.Deadline(); !has {
			ctx, cancel = context.WithTimeout(parent, e.cfg.DefaultTimeout)
		}
	}
	tk, aerr := e.lim.Acquire(ctx, class)
	if aerr != nil {
		cancel()
		if errors.Is(aerr, overload.ErrShed) {
			// Past this class's queue bound: shed rather than waiting —
			// bounded queues keep shed requests cheap and waiting requests'
			// latency bounded.
			e.stats.Shed.Inc()
			return nil, nil, ErrOverload
		}
		e.noteAbort(aerr)
		// Wrap rather than fold into ErrOverload: the caller's clock
		// ran out while queued, which is a deadline/cancel outcome, and
		// front-ends that translate errors into status codes (the wire
		// server) must report it as such, not as load shedding.
		return nil, nil, fmt.Errorf("engine: admission wait aborted: %w", aerr)
	}
	if queued, wait := tk.Queued(); queued {
		e.stats.WaitMicros.Observe(float64(wait.Microseconds()))
	}
	e.stats.Admitted.Inc()
	opStart := time.Now()
	done = func() {
		// Release feeds the op's in-store latency to the gradient
		// controller — the signal the adaptive limit steers by.
		e.lim.Release(tk, true)
		e.stats.OpMicros.Observe(float64(time.Since(opStart).Microseconds()))
		cancel()
	}
	return ctx, done, nil
}

// admitWrite admits a gated write. An ordinary write carries the class
// its context declares (normal by default); the breaker's half-open
// probe is admitted at ClassProbe, which bypasses both the limit and the
// queue — under sustained overload the admission queue used to be able
// to shed the probe, leaving the breaker latched probing with no verdict
// ever coming (the bug this exemption fixes). If probe admission still
// fails (the engine closed underneath it), the half-open slot is
// returned to the open state and the probe re-armed, so the breaker
// cannot leak its single probe token.
func (e *Engine) admitWrite(parent context.Context, probe bool) (context.Context, func(), error) {
	class := overload.ClassFrom(parent, overload.ClassNormal)
	if probe {
		class = overload.ClassProbe
	}
	ctx, done, err := e.admit(parent, class)
	if err != nil && probe {
		e.stats.Breaker.Degrade("probe aborted in admission")
		e.rearmProbe()
	}
	return ctx, done, err
}

// noteAbort meters a context-terminated operation.
func (e *Engine) noteAbort(err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		e.stats.Timeouts.Inc()
	case errors.Is(err, context.Canceled):
		e.stats.Cancels.Inc()
	}
}

// gateWrite decides whether a write may proceed. It returns probe=true
// when the write was admitted as the breaker's half-open probe.
func (e *Engine) gateWrite() (probe bool, err error) {
	if h := e.cfg.Store.Health(); h != nil && h.Degraded() {
		e.stats.ReadOnlyRejects.Inc()
		return false, ErrReadOnly
	}
	switch e.stats.Breaker.State() {
	case metrics.HealthHealthy:
		return false, nil
	case metrics.HealthProbing:
		// A probe is in flight; everyone else keeps failing fast.
		e.stats.CircuitRejects.Inc()
		return false, ErrCircuitOpen
	default: // open
		if time.Now().UnixNano() >= e.probeAt.Load() && e.stats.Breaker.Probe() {
			return true, nil
		}
		e.stats.CircuitRejects.Inc()
		return false, ErrCircuitOpen
	}
}

// jitter draws a probe interval uniformly from [d/2, d] — the full-period
// half-jitter that keeps a fleet of breakers over the same flapping store
// from probing in lockstep while still honoring the backoff's order of
// magnitude (see internal/backoff, which owns the draw).
func (e *Engine) jitter(d time.Duration) time.Duration {
	return e.probeSrc.Jitter(d)
}

// armProbe schedules the breaker's next half-open probe. A fresh trip
// (reset) restarts the backoff at ProbeBackoff; a failed probe doubles it
// up to ProbeMaxBackoff. The armed deadline is jittered (see jitter).
func (e *Engine) armProbe(reset bool) {
	e.probeMu.Lock()
	if reset || e.probeWait <= 0 {
		e.probeWait = e.cfg.ProbeBackoff
	} else {
		e.probeWait *= 2
		if e.probeWait > e.cfg.ProbeMaxBackoff {
			e.probeWait = e.cfg.ProbeMaxBackoff
		}
	}
	e.probeAt.Store(time.Now().Add(e.jitter(e.probeWait)).UnixNano())
	e.probeMu.Unlock()
}

// rearmProbe schedules another probe at the current backoff, neither
// resetting nor doubling it (used when a probe aborts without verdict).
func (e *Engine) rearmProbe() {
	e.probeMu.Lock()
	if e.probeWait <= 0 {
		e.probeWait = e.cfg.ProbeBackoff
	}
	e.probeAt.Store(time.Now().Add(e.jitter(e.probeWait)).UnixNano())
	e.probeMu.Unlock()
}

// noteWrite folds a write's outcome into the breaker state machine.
func (e *Engine) noteWrite(err error, probe bool) {
	switch fault.Classify(err) {
	case fault.ClassNone:
		e.consecFail.Store(0)
		if probe {
			e.stats.Breaker.Restore()
		}
	case fault.ClassAborted:
		// The caller stopped waiting; this says nothing about the store.
		// An aborted probe releases the half-open slot back to open and
		// re-arms at the current backoff without doubling it.
		if probe {
			e.stats.Breaker.Degrade("probe aborted")
			e.rearmProbe()
		}
	case fault.ClassPersistent:
		if probe {
			// The store is still bad: reopen and back the probe cadence
			// off exponentially (jittered) so a long outage is probed ever
			// more rarely instead of at a synchronized fixed rate.
			e.stats.Breaker.Degrade(fmt.Sprintf("probe failed: %v", err))
			e.armProbe(false)
			return
		}
		if e.consecFail.Add(1) >= int64(e.cfg.BreakerThreshold) &&
			e.stats.Breaker.Degrade(fmt.Sprintf("persistent failures: %v", err)) {
			// Fresh trip: restart the backoff at its base.
			e.armProbe(true)
		}
	default:
		// Transient (retry budget exhausted) or corrupt: surfaced to the
		// caller but not a sustained-failure signal; the run restarts.
		e.consecFail.Store(0)
		if probe {
			e.stats.Breaker.Restore()
		}
	}
}

// endSpan finishes a front-end span: rejections that never reached the
// store (overload shedding, read-only writes, the open circuit) are shed
// outcomes; everything else classifies by error.
func endSpan(sp *obs.Span, err error) {
	if errors.Is(err, ErrOverload) || errors.Is(err, ErrReadOnly) || errors.Is(err, ErrCircuitOpen) {
		sp.EndOutcome(obs.OutcomeShed)
		return
	}
	sp.End(err)
}

// Get returns the value for key.
func (e *Engine) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	sp := e.cfg.Obs.Start(obs.OpGet)
	ctx, done, err := e.admit(ctx, overload.ClassFrom(ctx, overload.ClassNormal))
	if err != nil {
		endSpan(&sp, err)
		return nil, false, err
	}
	defer done()
	v, ok, err := e.cfg.Store.Get(ctx, key)
	if err != nil {
		e.noteAbort(err)
	}
	endSpan(&sp, err)
	return v, ok, err
}

// Put upserts key -> val.
func (e *Engine) Put(ctx context.Context, key, val []byte) error {
	sp := e.cfg.Obs.Start(obs.OpPut)
	probe, err := e.gateWrite()
	if err != nil {
		// Gating runs before admission: a rejected write fails fast
		// without consuming queue room from requests that can be served.
		endSpan(&sp, err)
		return err
	}
	ctx, done, err := e.admitWrite(ctx, probe)
	if err != nil {
		endSpan(&sp, err)
		return err
	}
	defer done()
	err = e.cfg.Store.Put(ctx, key, val)
	e.noteWrite(err, probe)
	if err != nil {
		e.noteAbort(err)
	}
	endSpan(&sp, err)
	return err
}

// Delete removes key.
func (e *Engine) Delete(ctx context.Context, key []byte) error {
	sp := e.cfg.Obs.Start(obs.OpDelete)
	probe, err := e.gateWrite()
	if err != nil {
		endSpan(&sp, err)
		return err
	}
	ctx, done, err := e.admitWrite(ctx, probe)
	if err != nil {
		endSpan(&sp, err)
		return err
	}
	defer done()
	err = e.cfg.Store.Delete(ctx, key)
	e.noteWrite(err, probe)
	if err != nil {
		e.noteAbort(err)
	}
	endSpan(&sp, err)
	return err
}

// Scan visits live pairs with key >= start in order until fn returns false
// or limit pairs are visited (limit <= 0 means unlimited).
func (e *Engine) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	sp := e.cfg.Obs.Start(obs.OpScan)
	// Scans default to the first-shed class: a brownout drops batch reads
	// before it drops anyone's writes.
	ctx, done, err := e.admit(ctx, overload.ClassFrom(ctx, overload.ClassScan))
	if err != nil {
		endSpan(&sp, err)
		return err
	}
	defer done()
	err = e.cfg.Store.Scan(ctx, start, limit, fn)
	if err != nil {
		e.noteAbort(err)
	}
	endSpan(&sp, err)
	return err
}

// Close marks the engine closed (new operations fail with ErrClosed;
// in-flight operations finish) and closes the store.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	return e.cfg.Store.Close()
}
