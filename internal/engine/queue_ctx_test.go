package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"costperf/internal/metrics"
)

// blockingStore parks every operation until release is closed.
type blockingStore struct {
	entered chan struct{} // one tick per operation that started
	release chan struct{}
	once    sync.Once
}

func newBlockingStore() *blockingStore {
	return &blockingStore{entered: make(chan struct{}, 16), release: make(chan struct{})}
}

func (s *blockingStore) wait(ctx context.Context) error {
	s.entered <- struct{}{}
	select {
	case <-s.release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *blockingStore) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	return nil, false, s.wait(ctx)
}
func (s *blockingStore) Put(ctx context.Context, key, val []byte) error { return s.wait(ctx) }
func (s *blockingStore) Delete(ctx context.Context, key []byte) error   { return s.wait(ctx) }
func (s *blockingStore) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	return s.wait(ctx)
}
func (s *blockingStore) Health() *metrics.Health { return nil }
func (s *blockingStore) Close() error            { s.once.Do(func() { close(s.release) }); return nil }

// TestQueueAbortReturnsCtxError is the regression test for deadline
// accuracy in the admission queue: a request whose context expires while
// it waits for a slot must surface ctx.Err() (wrapped, still matching
// errors.Is) — not ErrOverload, which would make a wire front-end report
// "server shedding load" for what was the client's own clock running out.
func TestQueueAbortReturnsCtxError(t *testing.T) {
	st := newBlockingStore()
	defer st.Close()
	e, err := New(Config{Store: st, MaxConcurrent: 1, MaxQueue: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the only slot.
	hold, holdCancel := context.WithCancel(context.Background())
	defer holdCancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Get(hold, []byte("k"))
	}()
	<-st.entered // the slot-holder is inside the store

	// Deadline expires while queued.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err = e.Get(ctx, []byte("k"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-abort error = %v, want DeadlineExceeded", err)
	}
	if errors.Is(err, ErrOverload) {
		t.Fatalf("queued-abort error %v must not be ErrOverload", err)
	}
	if !strings.Contains(err.Error(), "admission") {
		t.Fatalf("queued-abort error %q should say it died in the admission queue", err)
	}
	if got := e.Stats().Timeouts.Value(); got != 1 {
		t.Fatalf("timeouts = %d, want 1", got)
	}

	// Cancellation (not deadline) while queued maps to context.Canceled.
	ctx2, cancel2 := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := e.Get(ctx2, []byte("k"))
		errCh <- err
	}()
	// Wait until the request is parked in the queue, then cancel it.
	for e.Stats().QueueDepth.Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel2()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued-cancel error = %v, want Canceled", err)
	}

	// Queue overflow still sheds with ErrOverload (unchanged semantics).
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ { // fill MaxQueue
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Get(context.Background(), []byte("k"))
		}()
	}
	for e.Stats().QueueDepth.Value() < 4 {
		time.Sleep(time.Millisecond)
	}
	if _, _, err := e.Get(context.Background(), []byte("k")); !errors.Is(err, ErrOverload) {
		t.Fatalf("overflow error = %v, want ErrOverload", err)
	}

	holdCancel()
	st.Close()
	wg.Wait()
	<-done
}
