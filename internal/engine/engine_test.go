package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"costperf/internal/fault"
	"costperf/internal/masstree"
	"costperf/internal/metrics"
)

// fakeStore is a controllable Store for front-end tests.
type fakeStore struct {
	mu      sync.Mutex
	data    map[string][]byte
	putErr  error         // returned by Put when non-nil
	block   chan struct{} // when non-nil, ops wait on it (honoring ctx)
	health  metrics.Health
	hasHP   bool
	putHook func()
}

func newFakeStore() *fakeStore { return &fakeStore{data: map[string][]byte{}} }

func (f *fakeStore) wait(ctx context.Context) error {
	if f.block == nil {
		return nil
	}
	select {
	case <-f.block:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (f *fakeStore) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := f.wait(ctx); err != nil {
		return nil, false, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.data[string(key)]
	return v, ok, nil
}

func (f *fakeStore) Put(ctx context.Context, key, val []byte) error {
	if f.putHook != nil {
		f.putHook()
	}
	if err := f.wait(ctx); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.putErr != nil {
		return f.putErr
	}
	f.data[string(key)] = val
	return nil
}

func (f *fakeStore) Delete(ctx context.Context, key []byte) error {
	if err := f.wait(ctx); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.data, string(key))
	return nil
}

func (f *fakeStore) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	return f.wait(ctx)
}

func (f *fakeStore) Health() *metrics.Health {
	if !f.hasHP {
		return nil
	}
	return &f.health
}

func (f *fakeStore) Close() error { return nil }

func (f *fakeStore) setPutErr(err error) {
	f.mu.Lock()
	f.putErr = err
	f.mu.Unlock()
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestEngineBasicOps(t *testing.T) {
	e := newTestEngine(t, Config{Store: newFakeStore()})
	ctx := context.Background()
	if err := e.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok, err := e.Get(ctx, []byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if err := e.Delete(ctx, []byte("k")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok, _ := e.Get(ctx, []byte("k")); ok {
		t.Fatal("key survived Delete")
	}
	if got := e.Stats().Admitted.Value(); got != 4 {
		t.Fatalf("Admitted = %d, want 4", got)
	}
}

func TestEngineOverloadSheds(t *testing.T) {
	fs := newFakeStore()
	fs.block = make(chan struct{})
	e := newTestEngine(t, Config{Store: fs, MaxConcurrent: 1, MaxQueue: 1})
	ctx := context.Background()

	// Occupy the only execution slot.
	running := make(chan struct{})
	var once sync.Once
	fs.putHook = func() { once.Do(func() { close(running) }) }
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = e.Put(ctx, []byte("a"), []byte("1"))
	}()
	<-running

	// Occupy the only queue slot.
	queued := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		queued <- e.Put(ctx, []byte("b"), []byte("2"))
	}()
	waitFor(t, func() bool { return e.Stats().QueuePeak.Value() == 1 })

	// Third request: slot busy, queue full -> shed.
	if err := e.Put(ctx, []byte("c"), []byte("3")); !errors.Is(err, ErrOverload) {
		t.Fatalf("Put = %v, want ErrOverload", err)
	}
	if got := e.Stats().Shed.Value(); got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}

	close(fs.block)
	wg.Wait()
	if err := <-queued; err != nil {
		t.Fatalf("queued Put: %v", err)
	}
	if e.Stats().WaitMicros.Count() != 1 {
		t.Fatalf("WaitMicros count = %d, want 1 (one queued op)", e.Stats().WaitMicros.Count())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEngineDefaultTimeout(t *testing.T) {
	fs := newFakeStore()
	fs.block = make(chan struct{}) // never closed: ops hang until deadline
	e := newTestEngine(t, Config{Store: fs, DefaultTimeout: 20 * time.Millisecond})
	_, _, err := e.Get(context.Background(), []byte("k"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get = %v, want DeadlineExceeded", err)
	}
	if got := e.Stats().Timeouts.Value(); got != 1 {
		t.Fatalf("Timeouts = %d, want 1", got)
	}
}

func TestEngineCallerDeadlineWins(t *testing.T) {
	fs := newFakeStore()
	fs.block = make(chan struct{})
	e := newTestEngine(t, Config{Store: fs, DefaultTimeout: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := e.Get(ctx, []byte("k"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("caller deadline was replaced by the longer default")
	}
}

func TestEngineReadOnlyOnDegradedStore(t *testing.T) {
	fs := newFakeStore()
	fs.hasHP = true
	e := newTestEngine(t, Config{Store: fs})
	ctx := context.Background()
	if err := e.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put before degrade: %v", err)
	}
	fs.health.Degrade("device gone")
	if err := e.Put(ctx, []byte("k"), []byte("v2")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put = %v, want ErrReadOnly", err)
	}
	// Reads keep being served.
	if v, ok, err := e.Get(ctx, []byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after degrade = %q, %v, %v", v, ok, err)
	}
	if got := e.Stats().ReadOnlyRejects.Value(); got != 1 {
		t.Fatalf("ReadOnlyRejects = %d, want 1", got)
	}
}

func TestEngineBreakerTripAndRecover(t *testing.T) {
	fs := newFakeStore()
	persistent := fmt.Errorf("dev: %w", fault.ErrPersistent)
	e := newTestEngine(t, Config{Store: fs, BreakerThreshold: 3, ProbeBackoff: 20 * time.Millisecond})
	ctx := context.Background()

	fs.setPutErr(persistent)
	// First failures pass through until the threshold trips the breaker.
	for i := 0; i < 3; i++ {
		if err := e.Put(ctx, []byte("k"), []byte("v")); !errors.Is(err, fault.ErrPersistent) {
			t.Fatalf("Put %d = %v, want the store error", i, err)
		}
	}
	if e.Stats().Breaker.State() != metrics.HealthDegraded {
		t.Fatalf("breaker = %v, want open", e.Stats().Breaker.State())
	}
	// Open circuit: before the jittered backoff (>= ProbeBackoff/2) has
	// elapsed, writes fail fast without reaching the store...
	if err := e.Put(ctx, []byte("k"), []byte("v")); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Put = %v, want ErrCircuitOpen", err)
	}
	// ...until the backoff elapses and a write is admitted as the probe,
	// which fails and re-opens the circuit with a doubled backoff.
	var probed bool
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		err := e.Put(ctx, []byte("k"), []byte("v"))
		if errors.Is(err, fault.ErrPersistent) {
			probed = true
			break
		}
		if !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("Put while open = %v, want ErrCircuitOpen or the store error", err)
		}
		time.Sleep(time.Millisecond)
	}
	if !probed {
		t.Fatal("breaker never admitted a failing probe")
	}
	if e.Stats().Breaker.State() != metrics.HealthDegraded {
		t.Fatalf("breaker after failed probe = %v, want open", e.Stats().Breaker.State())
	}

	// Fault clears: the next probe closes the circuit.
	fs.setPutErr(nil)
	var recovered bool
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if err := e.Put(ctx, []byte("k"), []byte("v")); err == nil {
			recovered = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !recovered {
		t.Fatal("breaker never admitted a successful probe")
	}
	if e.Stats().Breaker.State() != metrics.HealthHealthy {
		t.Fatalf("breaker after successful probe = %v, want closed", e.Stats().Breaker.State())
	}
	// Closed circuit: writes flow normally again.
	if err := e.Put(ctx, []byte("k2"), []byte("v2")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if e.Stats().Breaker.Probes.Value() < 2 || e.Stats().Breaker.Restores.Value() != 1 {
		t.Fatalf("probes=%d restores=%d, want >=2 probes and exactly 1 restore",
			e.Stats().Breaker.Probes.Value(), e.Stats().Breaker.Restores.Value())
	}
}

func TestEngineTransientDoesNotTrip(t *testing.T) {
	fs := newFakeStore()
	e := newTestEngine(t, Config{Store: fs, BreakerThreshold: 2})
	ctx := context.Background()
	fs.setPutErr(fmt.Errorf("dev: %w", fault.ErrTransient))
	for i := 0; i < 10; i++ {
		if err := e.Put(ctx, []byte("k"), []byte("v")); !errors.Is(err, fault.ErrTransient) {
			t.Fatalf("Put %d = %v, want transient passthrough", i, err)
		}
	}
	if e.Stats().Breaker.State() != metrics.HealthHealthy {
		t.Fatal("transient errors tripped the breaker")
	}
}

func TestEngineClosed(t *testing.T) {
	e := newTestEngine(t, Config{Store: newFakeStore()})
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := e.Get(context.Background(), []byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestEngineConcurrentMixed hammers a real store through the front-end
// under -race: correctness of the counters and no deadlock under a tiny
// concurrency limit.
func TestEngineConcurrentMixed(t *testing.T) {
	e := newTestEngine(t, Config{
		Store:         WrapMassTree(masstree.New(nil)),
		MaxConcurrent: 4,
		MaxQueue:      8,
	})
	ctx := context.Background()
	const workers, opsPer = 8, 200
	var wg sync.WaitGroup
	var shed, okOps atomicCounter
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := []byte(fmt.Sprintf("w%d-k%d", w, i%17))
				var err error
				switch i % 3 {
				case 0:
					err = e.Put(ctx, key, []byte("v"))
				case 1:
					_, _, err = e.Get(ctx, key)
				default:
					err = e.Scan(ctx, key, 4, func(_, _ []byte) bool { return true })
				}
				if errors.Is(err, ErrOverload) {
					shed.inc()
				} else if err != nil {
					t.Errorf("op: %v", err)
				} else {
					okOps.inc()
				}
			}
		}(w)
	}
	wg.Wait()
	st := e.Stats()
	if st.Admitted.Value() != okOps.val() {
		t.Fatalf("Admitted = %d, completed = %d", st.Admitted.Value(), okOps.val())
	}
	if st.Shed.Value() != shed.val() {
		t.Fatalf("Shed = %d, callers saw %d", st.Shed.Value(), shed.val())
	}
	if st.OpMicros.Count() != okOps.val() {
		t.Fatalf("OpMicros count = %d, want %d", st.OpMicros.Count(), okOps.val())
	}
	if st.QueueDepth.Value() != 0 {
		t.Fatalf("QueueDepth = %d after drain, want 0", st.QueueDepth.Value())
	}
}

type atomicCounter struct {
	mu sync.Mutex
	n  int64
}

func (c *atomicCounter) inc() { c.mu.Lock(); c.n++; c.mu.Unlock() }
func (c *atomicCounter) val() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
