package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"

	"costperf/internal/sim"
	"costperf/internal/ssd"
)

// kv is one sorted-run entry.
type kv struct {
	key       []byte
	val       []byte
	tombstone bool
}

// bloom is a simple double-hashing Bloom filter (10 bits/key, 7 probes —
// RocksDB's default flavor).
type bloom struct {
	bits []uint64
	k    int
}

func newBloom(n int) *bloom {
	if n < 1 {
		n = 1
	}
	words := (n*10 + 63) / 64
	return &bloom{bits: make([]uint64, words), k: 7}
}

func bloomHashes(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	// Murmur-style finalizer decorrelates the second hash from the first.
	h2 := h1
	h2 ^= h2 >> 33
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	h2 *= 0xc4ceb9fe1a85ec53
	h2 ^= h2 >> 33
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

func (b *bloom) add(key []byte) {
	h1, h2 := bloomHashes(key)
	n := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (b *bloom) mayContain(key []byte) bool {
	h1, h2 := bloomHashes(key)
	n := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// indexEntry locates one record inside a table's data region.
type indexEntry struct {
	key []byte
	off int64 // absolute device offset of the encoded record
	len int32
}

// sstable is an immutable sorted run. The index and bloom filter stay in
// main memory (as RocksDB keeps them cached); record data lives on the
// device and is read with one I/O per lookup.
type sstable struct {
	id       uint64
	level    int
	index    []indexEntry
	filter   *bloom
	min, max []byte
	dataOff  int64
	dataLen  int64
	entries  int
}

// recordCRCSize prefixes every record with a CRC32 of its body, so torn or
// bit-flipped table data is detected instead of decoded as garbage.
const recordCRCSize = 4

// encodeRecord frames one KV for the device:
// crc(4) | flags(1) | klen | key | vlen | val.
func encodeRecord(e kv) []byte {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(make([]byte, recordCRCSize)) // CRC placeholder
	flags := byte(0)
	if e.tombstone {
		flags = 1
	}
	buf.WriteByte(flags)
	n := binary.PutUvarint(tmp[:], uint64(len(e.key)))
	buf.Write(tmp[:n])
	buf.Write(e.key)
	n = binary.PutUvarint(tmp[:], uint64(len(e.val)))
	buf.Write(tmp[:n])
	buf.Write(e.val)
	out := buf.Bytes()
	binary.BigEndian.PutUint32(out, crc32.ChecksumIEEE(out[recordCRCSize:]))
	return out
}

// parseRecord decodes one record from the front of raw, returning the entry
// and the framed bytes consumed. Checksum or structure failures wrap
// ErrCorrupt — the caller (recovery, lookup) must treat the data as damaged
// rather than silently truncating.
func parseRecord(raw []byte) (kv, int, error) {
	if len(raw) < recordCRCSize+3 {
		return kv{}, 0, fmt.Errorf("%w: truncated record", ErrCorrupt)
	}
	crc := binary.BigEndian.Uint32(raw)
	rest := raw[recordCRCSize:]
	e := kv{tombstone: rest[0] == 1}
	rest = rest[1:]
	kl, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)) < uint64(n)+kl {
		return kv{}, 0, fmt.Errorf("%w: truncated key", ErrCorrupt)
	}
	rest = rest[n:]
	key := rest[:kl]
	rest = rest[kl:]
	vl, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)) < uint64(n)+vl {
		return kv{}, 0, fmt.Errorf("%w: truncated value", ErrCorrupt)
	}
	rest = rest[n:]
	val := rest[:vl]
	consumed := len(raw) - len(rest) + int(vl)
	if crc32.ChecksumIEEE(raw[recordCRCSize:consumed]) != crc {
		return kv{}, 0, fmt.Errorf("%w: record checksum mismatch", ErrCorrupt)
	}
	e.key = append([]byte(nil), key...)
	e.val = append([]byte(nil), val...)
	return e, consumed, nil
}

func decodeRecord(raw []byte) (kv, error) {
	e, consumed, err := parseRecord(raw)
	if err != nil {
		return kv{}, err
	}
	if consumed != len(raw) {
		return kv{}, fmt.Errorf("%w: record length mismatch", ErrCorrupt)
	}
	return e, nil
}

// writeTable writes a sorted run to the device in a single large write
// starting at off, returning the table and the next free offset.
func writeTable(dev ssd.Dev, id uint64, level int, entries []kv, off int64) (*sstable, int64, error) {
	if len(entries) == 0 {
		return nil, off, fmt.Errorf("lsm: empty table")
	}
	t := &sstable{
		id: id, level: level,
		filter:  newBloom(len(entries)),
		min:     entries[0].key,
		max:     entries[len(entries)-1].key,
		dataOff: off,
		entries: len(entries),
	}
	var data bytes.Buffer
	for _, e := range entries {
		rec := encodeRecord(e)
		t.index = append(t.index, indexEntry{
			key: e.key,
			off: off + int64(data.Len()),
			len: int32(len(rec)),
		})
		t.filter.add(e.key)
		data.Write(rec)
	}
	t.dataLen = int64(data.Len())
	if err := dev.WriteAt(off, data.Bytes(), nil); err != nil {
		return nil, off, err
	}
	return t, off + t.dataLen, nil
}

// get looks up key: bloom check, in-memory binary search, then one device
// read for the record.
func (t *sstable) get(dev ssd.Dev, key []byte, ch *sim.Charger) (kv, bool, error) {
	if ch != nil {
		ch.Hash()
	}
	if !t.filter.mayContain(key) {
		return kv{}, false, nil
	}
	i := search(t.index, key)
	if ch != nil {
		ch.Compare(ilog2(len(t.index)))
	}
	if i >= len(t.index) || !bytes.Equal(t.index[i].key, key) {
		return kv{}, false, nil
	}
	raw, err := dev.ReadAt(t.index[i].off, int(t.index[i].len), ch)
	if err != nil {
		return kv{}, false, err
	}
	e, err := decodeRecord(raw)
	if err != nil {
		// The transfer succeeded but the record failed verification: count
		// a failed physical read, not a logical one.
		dev.Stats().ReclassifyRead()
		return kv{}, false, err
	}
	return e, true, nil
}

// readAll loads every record of the table (used by compaction and scans).
func (t *sstable) readAll(dev ssd.Dev, ch *sim.Charger) ([]kv, error) {
	raw, err := dev.ReadAt(t.dataOff, int(t.dataLen), ch)
	if err != nil {
		return nil, err
	}
	out := make([]kv, 0, t.entries)
	for i := range t.index {
		rel := t.index[i].off - t.dataOff
		e, err := decodeRecord(raw[rel : rel+int64(t.index[i].len)])
		if err != nil {
			// One failed record spoils the whole verified transfer.
			dev.Stats().ReclassifyRead()
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// overlaps reports whether the table's key range intersects [lo, hi].
func (t *sstable) overlaps(lo, hi []byte) bool {
	return bytes.Compare(t.min, hi) <= 0 && bytes.Compare(lo, t.max) <= 0
}

func search(index []indexEntry, key []byte) int {
	lo, hi := 0, len(index)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(index[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func ilog2(n int) int {
	c := 1
	for v := 1; v < n; v <<= 1 {
		c++
	}
	return c
}
