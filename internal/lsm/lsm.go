package lsm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/sim"
	"costperf/internal/ssd"
)

var (
	// ErrCorrupt is returned when on-device table or manifest data fails
	// checksum or structural verification. It wraps fault.ErrCorrupt so
	// Classify recognizes it across the stack.
	ErrCorrupt = fmt.Errorf("lsm: corrupt record (%w)", fault.ErrCorrupt)
	// ErrDegraded is returned by write paths after a persistent device
	// write failure latched the tree read-only.
	ErrDegraded = errors.New("lsm: tree degraded (read-only)")
)

// Config configures a Tree.
type Config struct {
	// Device is the backing flash device — a plain *ssd.Device or an
	// *ssd.Mirror for checksum-verified, self-healing storage.
	Device ssd.Dev
	// MemtableBytes triggers a flush to level 0 (default 256 KiB).
	MemtableBytes int
	// L0Tables triggers an L0 -> L1 compaction (default 4).
	L0Tables int
	// LevelBytesBase is the size budget of level 1; each deeper level gets
	// 10x more (default 1 MiB).
	LevelBytesBase int64
	// MaxLevels bounds the tree depth (default 7).
	MaxLevels int
	// Session enables execution-cost accounting (may be nil).
	Session *sim.Session
	// Retry bounds the backoff loop around device I/O; the zero value
	// takes fault.DefaultRetry.
	Retry fault.RetryPolicy
	// Obs, when non-nil, receives one tracing span per operation; table
	// reads and synchronous flushes mark the span as having touched the
	// device. Nil traces nothing at zero cost.
	Obs *obs.Tracer
}

func (c *Config) setDefaults() error {
	if c.Device == nil {
		return errors.New("lsm: nil device")
	}
	if c.MemtableBytes == 0 {
		c.MemtableBytes = 256 << 10
	}
	if c.L0Tables == 0 {
		c.L0Tables = 4
	}
	if c.LevelBytesBase == 0 {
		c.LevelBytesBase = 1 << 20
	}
	if c.MaxLevels == 0 {
		c.MaxLevels = 7
	}
	return nil
}

// Stats counts tree events.
type Stats struct {
	Gets        metrics.Counter
	Puts        metrics.Counter
	Deletes     metrics.Counter
	Scans       metrics.Counter
	Flushes     metrics.Counter
	Compactions metrics.Counter
	BloomSkips  metrics.Counter
	TableReads  metrics.Counter
	// Retry meters fault absorption around device I/O.
	Retry metrics.RetryStats
	// Health latches the tree read-only after a persistent write failure.
	Health metrics.Health
}

// Tree is the LSM store. It is safe for concurrent use (writers serialize
// on an internal mutex; compaction runs inline on the triggering writer,
// as in a single-threaded RocksDB configuration).
type Tree struct {
	cfg         Config
	mu          sync.RWMutex
	mem         *memtable
	levels      [][]*sstable // levels[0] newest-first; deeper levels sorted by min key
	tail        int64        // next free device offset
	nextID      uint64
	manifestSeq uint64
	stats       Stats
}

// New creates an empty tree. Table data starts above the manifest slots so
// the tree is recoverable with Open after the first flush commits.
func New(cfg Config) (*Tree, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:    cfg,
		mem:    newMemtable(),
		levels: make([][]*sstable, cfg.MaxLevels),
		tail:   tablesBase,
	}
	t.attachDeviceHealth()
	return t, nil
}

// attachDeviceHealth latches the tree read-only when a self-healing device
// (ssd.Mirror) reports unrecoverable dual-leg corruption.
func (t *Tree) attachDeviceHealth() {
	if ha, ok := t.cfg.Device.(interface {
		AttachHealth(*metrics.Health)
	}); ok {
		ha.AttachHealth(&t.stats.Health)
	}
}

// Stats returns the tree's counters.
func (t *Tree) Stats() *Stats { return &t.stats }

func (t *Tree) begin() *sim.Charger {
	if t.cfg.Session == nil {
		return nil
	}
	return t.cfg.Session.Begin()
}

// beginCtx is begin with the operation's context bound to the charger, so
// cancellation propagates into table I/O and retry backoffs even when no
// Session is configured.
func (t *Tree) beginCtx(ctx context.Context) *sim.Charger {
	if t.cfg.Session == nil {
		return sim.DetachedCharger(ctx)
	}
	return t.cfg.Session.Begin().WithContext(ctx)
}

func settle(ch *sim.Charger) {
	if ch != nil {
		ch.Settle()
	}
}

// Put inserts or overwrites key -> val. Like all LSM updates it is blind:
// no secondary storage is read (paper Section 6.2).
func (t *Tree) Put(key, val []byte) error {
	return t.write(append([]byte(nil), key...), append([]byte(nil), val...), false, t.begin())
}

// PutCtx is Put bounded by ctx: a triggered memtable flush (and its retry
// backoff) aborts promptly when ctx is cancelled.
func (t *Tree) PutCtx(ctx context.Context, key, val []byte) error {
	return t.write(append([]byte(nil), key...), append([]byte(nil), val...), false, t.beginCtx(ctx))
}

// Delete removes key by writing a tombstone (also blind).
func (t *Tree) Delete(key []byte) error {
	return t.write(append([]byte(nil), key...), nil, true, t.begin())
}

// DeleteCtx is Delete bounded by ctx.
func (t *Tree) DeleteCtx(ctx context.Context, key []byte) error {
	return t.write(append([]byte(nil), key...), nil, true, t.beginCtx(ctx))
}

func (t *Tree) write(key, val []byte, tombstone bool, ch *sim.Charger) error {
	op := obs.OpPut
	if tombstone {
		op = obs.OpDelete
	}
	sp := t.cfg.Obs.Start(op)
	if t.stats.Health.Degraded() {
		sp.End(ErrDegraded)
		return ErrDegraded
	}
	if err := ch.Err(); err != nil {
		sp.End(err)
		return err // cancelled before the memtable was touched
	}
	t.mu.Lock()
	t.mem.put(key, val, tombstone, ch)
	if ch != nil {
		ch.Copy(len(key) + len(val))
	}
	var err error
	if t.mem.bytes >= t.cfg.MemtableBytes {
		sp.Miss() // this write pays for the synchronous flush I/O
		err = t.flushLocked(ch)
	}
	t.mu.Unlock()
	if tombstone {
		t.stats.Deletes.Inc()
	} else {
		t.stats.Puts.Inc()
	}
	settle(ch)
	sp.End(err)
	return err
}

// writeTableRetried writes a sorted run through the retry loop (a rewrite
// at the same offset is idempotent) and latches the tree degraded on a
// persistent write failure. The charger's context (if any) aborts the
// write and its backoff; an aborted write does not degrade the tree.
func (t *Tree) writeTableRetried(id uint64, level int, entries []kv, off int64, ch *sim.Charger) (*sstable, int64, error) {
	var tbl *sstable
	var next int64
	err := t.cfg.Retry.DoCtx(ch.Context(), &t.stats.Retry, func() error {
		var werr error
		tbl, next, werr = writeTable(t.cfg.Device, id, level, entries, off)
		return werr
	})
	if err != nil && fault.Classify(err) == fault.ClassPersistent {
		t.stats.Health.Degrade(fmt.Sprintf("table %d write: %v", id, err))
	}
	return tbl, next, err
}

// tableReadAll loads a whole table through the retry loop.
func (t *Tree) tableReadAll(tbl *sstable, ch *sim.Charger) ([]kv, error) {
	var out []kv
	err := t.cfg.Retry.DoCtx(ch.Context(), &t.stats.Retry, func() error {
		var rerr error
		out, rerr = tbl.readAll(t.cfg.Device, ch)
		return rerr
	})
	return out, err
}

// flushLocked writes the memtable to a new L0 table (one large write),
// commits it with a manifest write, and triggers compaction as needed. The
// memtable is discarded only after its table is durably written, so a
// failed flush loses nothing.
func (t *Tree) flushLocked(ch *sim.Charger) error {
	if t.mem.count == 0 {
		return nil
	}
	if t.stats.Health.Degraded() {
		return ErrDegraded
	}
	entries := make([]kv, 0, t.mem.count)
	for e := t.mem.first(); e != nil; e = e.next[0] {
		entries = append(entries, kv{key: e.key, val: e.val, tombstone: e.tombstone})
	}
	tbl, next, err := t.writeTableRetried(t.nextID, 0, entries, t.tail, ch)
	if err != nil {
		return err
	}
	t.nextID++
	t.tail = next
	t.levels[0] = append([]*sstable{tbl}, t.levels[0]...) // newest first
	t.mem = newMemtable()
	t.stats.Flushes.Inc()
	// Durable commit point: the flushed data is recoverable once the
	// manifest referencing its table is on the device.
	if err := t.writeManifestLocked(); err != nil {
		return err
	}
	return t.maybeCompactLocked(ch)
}

// Flush forces the memtable out (exposed for tests and checkpoints).
func (t *Tree) Flush() error {
	ch := t.begin()
	t.mu.Lock()
	err := t.flushLocked(ch)
	t.mu.Unlock()
	if ch != nil {
		if err != nil {
			ch.Abandon()
		} else {
			ch.Settle()
		}
	}
	return err
}

// Get returns the value for key, searching memtable, then L0 newest-first,
// then one candidate table per deeper level.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	return t.get(key, t.begin())
}

// GetCtx is Get bounded by ctx: table reads and their retry backoffs abort
// promptly once ctx is cancelled or past deadline.
func (t *Tree) GetCtx(ctx context.Context, key []byte) ([]byte, bool, error) {
	return t.get(key, t.beginCtx(ctx))
}

func (t *Tree) get(key []byte, ch *sim.Charger) (_ []byte, _ bool, err error) {
	sp := t.cfg.Obs.Start(obs.OpGet)
	if err := ch.Err(); err != nil {
		sp.End(err)
		return nil, false, err
	}
	t.mu.RLock()
	defer func() {
		t.mu.RUnlock()
		t.stats.Gets.Inc()
		settle(ch)
		sp.End(err)
	}()
	if v, tomb, found := t.mem.get(key, ch); found {
		return v, !tomb && true, nil
	}
	for _, tbl := range t.levels[0] {
		e, found, err := t.tableGet(tbl, key, ch, &sp)
		if err != nil {
			return nil, false, err
		}
		if found {
			return e.val, !e.tombstone, nil
		}
	}
	for lvl := 1; lvl < len(t.levels); lvl++ {
		tables := t.levels[lvl]
		i := sort.Search(len(tables), func(i int) bool {
			return bytes.Compare(key, tables[i].max) <= 0
		})
		if i >= len(tables) || bytes.Compare(key, tables[i].min) < 0 {
			continue
		}
		e, found, err := t.tableGet(tables[i], key, ch, &sp)
		if err != nil {
			return nil, false, err
		}
		if found {
			return e.val, !e.tombstone, nil
		}
	}
	return nil, false, nil
}

func (t *Tree) tableGet(tbl *sstable, key []byte, ch *sim.Charger, sp *obs.Span) (kv, bool, error) {
	if !tbl.filter.mayContain(key) {
		if ch != nil {
			ch.Hash()
		}
		t.stats.BloomSkips.Inc()
		return kv{}, false, nil
	}
	t.stats.TableReads.Inc()
	sp.Miss() // bloom filter passed: this lookup reads the table on device
	var e kv
	var found bool
	err := t.cfg.Retry.DoCtx(ch.Context(), &t.stats.Retry, func() error {
		var gerr error
		e, found, gerr = tbl.get(t.cfg.Device, key, ch)
		return gerr
	})
	return e, found, err
}

// levelBytes sums a level's data bytes.
func levelBytes(tables []*sstable) int64 {
	var n int64
	for _, t := range tables {
		n += t.dataLen
	}
	return n
}

// maybeCompactLocked runs leveled compaction until every level is within
// budget.
func (t *Tree) maybeCompactLocked(ch *sim.Charger) error {
	for {
		if len(t.levels[0]) > t.cfg.L0Tables {
			if err := t.compactLocked(0, ch); err != nil {
				return err
			}
			continue
		}
		done := true
		budget := t.cfg.LevelBytesBase
		for lvl := 1; lvl < len(t.levels)-1; lvl++ {
			if levelBytes(t.levels[lvl]) > budget {
				if err := t.compactLocked(lvl, ch); err != nil {
					return err
				}
				done = false
				break
			}
			budget *= 10
		}
		if done {
			return nil
		}
	}
}

// compactLocked merges level lvl into lvl+1: all tables of L0 (they
// overlap), or the largest table of deeper levels, plus every overlapping
// table below. The compaction is staged: the live table set is not touched
// until every replacement table is durably written, so a failed (or
// crashed) compaction leaves the tree — in memory and on device — exactly
// as it was.
func (t *Tree) compactLocked(lvl int, ch *sim.Charger) error {
	// Select inputs without mutating the live table set.
	var ups []*sstable
	upIdx := -1
	if lvl == 0 {
		ups = append(ups, t.levels[0]...)
	} else {
		// Pick the largest table to push down.
		for i, tb := range t.levels[lvl] {
			if upIdx < 0 || tb.dataLen > t.levels[lvl][upIdx].dataLen {
				upIdx = i
			}
		}
		ups = []*sstable{t.levels[lvl][upIdx]}
	}
	lo, hi := ups[0].min, ups[0].max
	for _, tb := range ups {
		if bytes.Compare(tb.min, lo) < 0 {
			lo = tb.min
		}
		if bytes.Compare(tb.max, hi) > 0 {
			hi = tb.max
		}
	}
	next := lvl + 1
	var downs, keep []*sstable
	for _, tb := range t.levels[next] {
		if tb.overlaps(lo, hi) {
			downs = append(downs, tb)
		} else {
			keep = append(keep, tb)
		}
	}

	// K-way merge: newest source wins per key. Sources ordered newest
	// first: ups are newer than downs; within L0 ups are already
	// newest-first; a deeper "up" level has a single table.
	sources := make([][]kv, 0, len(ups)+len(downs))
	for _, tb := range ups {
		entries, err := t.tableReadAll(tb, nil)
		if err != nil {
			return err
		}
		sources = append(sources, entries)
	}
	for _, tb := range downs {
		entries, err := t.tableReadAll(tb, nil)
		if err != nil {
			return err
		}
		sources = append(sources, entries)
	}
	merged := mergeSources(sources, next == len(t.levels)-1)
	if ch != nil {
		for _, s := range sources {
			ch.Compare(len(s))
		}
	}

	// Write merged runs as tables capped near the memtable size. Allocation
	// state advances in locals and commits only if every write succeeds.
	var newTables []*sstable
	newTail, nextID := t.tail, t.nextID
	capBytes := int64(t.cfg.MemtableBytes)
	for start := 0; start < len(merged); {
		var sz int64
		end := start
		for end < len(merged) && sz < capBytes {
			sz += int64(len(merged[end].key) + len(merged[end].val) + 8)
			end++
		}
		tbl, nt, err := t.writeTableRetried(nextID, next, merged[start:end], newTail, ch)
		if err != nil {
			return err
		}
		nextID++
		newTail = nt
		newTables = append(newTables, tbl)
		start = end
	}

	// All replacement tables are durable: commit the new table set.
	t.tail, t.nextID = newTail, nextID
	if lvl == 0 {
		t.levels[0] = nil
	} else {
		t.levels[lvl] = append(t.levels[lvl][:upIdx], t.levels[lvl][upIdx+1:]...)
	}
	keep = append(keep, newTables...)
	sort.Slice(keep, func(i, j int) bool { return bytes.Compare(keep[i].min, keep[j].min) < 0 })
	t.levels[next] = keep
	t.stats.Compactions.Inc()

	// Durable commit point before reclaiming inputs: once the manifest no
	// longer references the old tables, trimming them cannot orphan data.
	if err := t.writeManifestLocked(); err != nil {
		return err
	}
	for _, tb := range append(ups, downs...) {
		if err := t.cfg.Device.Trim(tb.dataOff, tb.dataLen); err != nil {
			// Post-commit cleanup failure leaks space, not data.
			return fmt.Errorf("lsm: trim table %d: %w", tb.id, err)
		}
		t.cfg.Device.Stats().GCReclaimed.Add(tb.dataLen)
	}
	return nil
}

// mergeSources merges newest-first sources; dropTombs elides tombstones
// (safe only at the bottom level).
func mergeSources(sources [][]kv, dropTombs bool) []kv {
	type cursor struct {
		src []kv
		pos int
	}
	curs := make([]cursor, len(sources))
	for i, s := range sources {
		curs[i] = cursor{src: s}
	}
	var out []kv
	for {
		best := -1
		for i := range curs {
			if curs[i].pos >= len(curs[i].src) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			c := bytes.Compare(curs[i].src[curs[i].pos].key, curs[best].src[curs[best].pos].key)
			if c < 0 {
				best = i
			}
			// c == 0: earlier source (newer) wins; keep best.
		}
		if best == -1 {
			return out
		}
		e := curs[best].src[curs[best].pos]
		key := e.key
		for i := range curs {
			for curs[i].pos < len(curs[i].src) && bytes.Equal(curs[i].src[curs[i].pos].key, key) {
				curs[i].pos++ // consume duplicates in all sources
			}
		}
		if e.tombstone && dropTombs {
			continue
		}
		out = append(out, e)
	}
}

// Scan visits live keys >= start in order, merging the memtable with all
// tables, until fn returns false or limit pairs are visited (limit <= 0
// means unlimited). It holds a shared lock for a consistent snapshot.
func (t *Tree) Scan(start []byte, limit int, fn func(k, v []byte) bool) error {
	return t.scan(start, limit, fn, t.begin())
}

// ScanCtx is Scan bounded by ctx: the context aborts table reads between
// levels, so a cancelled scan stops issuing large sequential I/Os.
func (t *Tree) ScanCtx(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	return t.scan(start, limit, fn, t.beginCtx(ctx))
}

func (t *Tree) scan(start []byte, limit int, fn func(k, v []byte) bool, ch *sim.Charger) (err error) {
	sp := t.cfg.Obs.Start(obs.OpScan)
	if err := ch.Err(); err != nil {
		sp.End(err)
		return err
	}
	t.mu.RLock()
	defer func() {
		t.mu.RUnlock()
		t.stats.Scans.Inc()
		settle(ch)
		sp.End(err)
	}()

	// Materialize sources newest-first. Scans over on-device tables read
	// each table once (large sequential reads, charged to the charger).
	var sources [][]kv
	var memRun []kv
	for e := t.mem.seek(start); e != nil; e = e.next[0] {
		memRun = append(memRun, kv{key: e.key, val: e.val, tombstone: e.tombstone})
	}
	sources = append(sources, memRun)
	for _, tbl := range t.levels[0] {
		sp.Miss() // each table contributes a sequential device read
		entries, err := t.tableReadAll(tbl, ch)
		if err != nil {
			return err
		}
		sources = append(sources, trimBelow(entries, start))
	}
	for lvl := 1; lvl < len(t.levels); lvl++ {
		var run []kv
		for _, tbl := range t.levels[lvl] {
			if bytes.Compare(tbl.max, start) < 0 {
				continue
			}
			sp.Miss()
			entries, err := t.tableReadAll(tbl, ch)
			if err != nil {
				return err
			}
			run = append(run, trimBelow(entries, start)...)
		}
		sources = append(sources, run)
	}
	merged := mergeSources(sources, true)
	visited := 0
	for _, e := range merged {
		if limit > 0 && visited >= limit {
			return nil
		}
		if !fn(e.key, e.val) {
			return nil
		}
		visited++
	}
	return nil
}

func trimBelow(entries []kv, start []byte) []kv {
	i := sort.Search(len(entries), func(i int) bool {
		return bytes.Compare(entries[i].key, start) >= 0
	})
	return entries[i:]
}

// TableCount returns the number of SSTables per level (for tests and
// experiment output).
func (t *Tree) TableCount() []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]int, len(t.levels))
	for i, lvl := range t.levels {
		out[i] = len(lvl)
	}
	return out
}

// MemtableBytes reports the current memtable size.
func (t *Tree) MemtableBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mem.bytes
}

// DiskBytes returns the total data bytes of all live SSTables — the
// numerator of space amplification (live on-device bytes vs live data).
func (t *Tree) DiskBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for _, lvl := range t.levels {
		n += levelBytes(lvl)
	}
	return n
}
