package lsm

import (
	"bytes"
	"errors"
	"sort"
	"sync"

	"costperf/internal/metrics"
	"costperf/internal/sim"
	"costperf/internal/ssd"
)

// Config configures a Tree.
type Config struct {
	// Device is the backing flash device.
	Device *ssd.Device
	// MemtableBytes triggers a flush to level 0 (default 256 KiB).
	MemtableBytes int
	// L0Tables triggers an L0 -> L1 compaction (default 4).
	L0Tables int
	// LevelBytesBase is the size budget of level 1; each deeper level gets
	// 10x more (default 1 MiB).
	LevelBytesBase int64
	// MaxLevels bounds the tree depth (default 7).
	MaxLevels int
	// Session enables execution-cost accounting (may be nil).
	Session *sim.Session
}

func (c *Config) setDefaults() error {
	if c.Device == nil {
		return errors.New("lsm: nil device")
	}
	if c.MemtableBytes == 0 {
		c.MemtableBytes = 256 << 10
	}
	if c.L0Tables == 0 {
		c.L0Tables = 4
	}
	if c.LevelBytesBase == 0 {
		c.LevelBytesBase = 1 << 20
	}
	if c.MaxLevels == 0 {
		c.MaxLevels = 7
	}
	return nil
}

// Stats counts tree events.
type Stats struct {
	Gets        metrics.Counter
	Puts        metrics.Counter
	Deletes     metrics.Counter
	Scans       metrics.Counter
	Flushes     metrics.Counter
	Compactions metrics.Counter
	BloomSkips  metrics.Counter
	TableReads  metrics.Counter
}

// Tree is the LSM store. It is safe for concurrent use (writers serialize
// on an internal mutex; compaction runs inline on the triggering writer,
// as in a single-threaded RocksDB configuration).
type Tree struct {
	cfg    Config
	mu     sync.RWMutex
	mem    *memtable
	levels [][]*sstable // levels[0] newest-first; deeper levels sorted by min key
	tail   int64        // next free device offset
	nextID uint64
	stats  Stats
}

// New creates an empty tree.
func New(cfg Config) (*Tree, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	return &Tree{
		cfg:    cfg,
		mem:    newMemtable(),
		levels: make([][]*sstable, cfg.MaxLevels),
	}, nil
}

// Stats returns the tree's counters.
func (t *Tree) Stats() *Stats { return &t.stats }

func (t *Tree) begin() *sim.Charger {
	if t.cfg.Session == nil {
		return nil
	}
	return t.cfg.Session.Begin()
}

func settle(ch *sim.Charger) {
	if ch != nil {
		ch.Settle()
	}
}

// Put inserts or overwrites key -> val. Like all LSM updates it is blind:
// no secondary storage is read (paper Section 6.2).
func (t *Tree) Put(key, val []byte) error {
	return t.write(append([]byte(nil), key...), append([]byte(nil), val...), false)
}

// Delete removes key by writing a tombstone (also blind).
func (t *Tree) Delete(key []byte) error {
	return t.write(append([]byte(nil), key...), nil, true)
}

func (t *Tree) write(key, val []byte, tombstone bool) error {
	ch := t.begin()
	t.mu.Lock()
	t.mem.put(key, val, tombstone, ch)
	if ch != nil {
		ch.Copy(len(key) + len(val))
	}
	var err error
	if t.mem.bytes >= t.cfg.MemtableBytes {
		err = t.flushLocked(ch)
	}
	t.mu.Unlock()
	if tombstone {
		t.stats.Deletes.Inc()
	} else {
		t.stats.Puts.Inc()
	}
	settle(ch)
	return err
}

// flushLocked writes the memtable to a new L0 table (one large write) and
// triggers compaction as needed.
func (t *Tree) flushLocked(ch *sim.Charger) error {
	if t.mem.count == 0 {
		return nil
	}
	entries := make([]kv, 0, t.mem.count)
	for e := t.mem.first(); e != nil; e = e.next[0] {
		entries = append(entries, kv{key: e.key, val: e.val, tombstone: e.tombstone})
	}
	tbl, next, err := writeTable(t.cfg.Device, t.nextID, 0, entries, t.tail)
	if err != nil {
		return err
	}
	t.nextID++
	t.tail = next
	t.levels[0] = append([]*sstable{tbl}, t.levels[0]...) // newest first
	t.mem = newMemtable()
	t.stats.Flushes.Inc()
	return t.maybeCompactLocked(ch)
}

// Flush forces the memtable out (exposed for tests and checkpoints).
func (t *Tree) Flush() error {
	ch := t.begin()
	t.mu.Lock()
	err := t.flushLocked(ch)
	t.mu.Unlock()
	if ch != nil {
		if err != nil {
			ch.Abandon()
		} else {
			ch.Settle()
		}
	}
	return err
}

// Get returns the value for key, searching memtable, then L0 newest-first,
// then one candidate table per deeper level.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	ch := t.begin()
	t.mu.RLock()
	defer func() {
		t.mu.RUnlock()
		t.stats.Gets.Inc()
		settle(ch)
	}()
	if v, tomb, found := t.mem.get(key, ch); found {
		return v, !tomb && true, nil
	}
	for _, tbl := range t.levels[0] {
		e, found, err := t.tableGet(tbl, key, ch)
		if err != nil {
			return nil, false, err
		}
		if found {
			return e.val, !e.tombstone, nil
		}
	}
	for lvl := 1; lvl < len(t.levels); lvl++ {
		tables := t.levels[lvl]
		i := sort.Search(len(tables), func(i int) bool {
			return bytes.Compare(key, tables[i].max) <= 0
		})
		if i >= len(tables) || bytes.Compare(key, tables[i].min) < 0 {
			continue
		}
		e, found, err := t.tableGet(tables[i], key, ch)
		if err != nil {
			return nil, false, err
		}
		if found {
			return e.val, !e.tombstone, nil
		}
	}
	return nil, false, nil
}

func (t *Tree) tableGet(tbl *sstable, key []byte, ch *sim.Charger) (kv, bool, error) {
	if !tbl.filter.mayContain(key) {
		if ch != nil {
			ch.Hash()
		}
		t.stats.BloomSkips.Inc()
		return kv{}, false, nil
	}
	t.stats.TableReads.Inc()
	return tbl.get(t.cfg.Device, key, ch)
}

// levelBytes sums a level's data bytes.
func levelBytes(tables []*sstable) int64 {
	var n int64
	for _, t := range tables {
		n += t.dataLen
	}
	return n
}

// maybeCompactLocked runs leveled compaction until every level is within
// budget.
func (t *Tree) maybeCompactLocked(ch *sim.Charger) error {
	for {
		if len(t.levels[0]) > t.cfg.L0Tables {
			if err := t.compactLocked(0, ch); err != nil {
				return err
			}
			continue
		}
		done := true
		budget := t.cfg.LevelBytesBase
		for lvl := 1; lvl < len(t.levels)-1; lvl++ {
			if levelBytes(t.levels[lvl]) > budget {
				if err := t.compactLocked(lvl, ch); err != nil {
					return err
				}
				done = false
				break
			}
			budget *= 10
		}
		if done {
			return nil
		}
	}
}

// compactLocked merges level lvl into lvl+1: all tables of L0 (they
// overlap), or the largest table of deeper levels, plus every overlapping
// table below.
func (t *Tree) compactLocked(lvl int, ch *sim.Charger) error {
	t.stats.Compactions.Inc()
	var ups []*sstable
	if lvl == 0 {
		ups = append(ups, t.levels[0]...)
		t.levels[0] = nil
	} else {
		// Pick the largest table to push down.
		maxI := 0
		for i, tb := range t.levels[lvl] {
			if tb.dataLen > t.levels[lvl][maxI].dataLen {
				maxI = i
			}
		}
		ups = []*sstable{t.levels[lvl][maxI]}
		t.levels[lvl] = append(t.levels[lvl][:maxI], t.levels[lvl][maxI+1:]...)
	}
	lo, hi := ups[0].min, ups[0].max
	for _, tb := range ups {
		if bytes.Compare(tb.min, lo) < 0 {
			lo = tb.min
		}
		if bytes.Compare(tb.max, hi) > 0 {
			hi = tb.max
		}
	}
	next := lvl + 1
	var downs, keep []*sstable
	for _, tb := range t.levels[next] {
		if tb.overlaps(lo, hi) {
			downs = append(downs, tb)
		} else {
			keep = append(keep, tb)
		}
	}

	// K-way merge: newest source wins per key. Sources ordered newest
	// first: ups are newer than downs; within L0 ups are already
	// newest-first; a deeper "up" level has a single table.
	sources := make([][]kv, 0, len(ups)+len(downs))
	for _, tb := range ups {
		entries, err := tb.readAll(t.cfg.Device, nil)
		if err != nil {
			return err
		}
		sources = append(sources, entries)
	}
	for _, tb := range downs {
		entries, err := tb.readAll(t.cfg.Device, nil)
		if err != nil {
			return err
		}
		sources = append(sources, entries)
	}
	merged := mergeSources(sources, next == len(t.levels)-1)
	if ch != nil {
		for _, s := range sources {
			ch.Compare(len(s))
		}
	}

	// Write merged runs as tables capped near the memtable size.
	var newTables []*sstable
	capBytes := int64(t.cfg.MemtableBytes)
	for start := 0; start < len(merged); {
		var sz int64
		end := start
		for end < len(merged) && sz < capBytes {
			sz += int64(len(merged[end].key) + len(merged[end].val) + 8)
			end++
		}
		tbl, nt, err := writeTable(t.cfg.Device, t.nextID, next, merged[start:end], t.tail)
		if err != nil {
			return err
		}
		t.nextID++
		t.tail = nt
		newTables = append(newTables, tbl)
		start = end
	}
	// Reclaim old tables' media.
	for _, tb := range ups {
		t.cfg.Device.Trim(tb.dataOff, tb.dataLen)
		t.cfg.Device.Stats().GCReclaimed.Add(tb.dataLen)
	}
	for _, tb := range downs {
		t.cfg.Device.Trim(tb.dataOff, tb.dataLen)
		t.cfg.Device.Stats().GCReclaimed.Add(tb.dataLen)
	}
	keep = append(keep, newTables...)
	sort.Slice(keep, func(i, j int) bool { return bytes.Compare(keep[i].min, keep[j].min) < 0 })
	t.levels[next] = keep
	return nil
}

// mergeSources merges newest-first sources; dropTombs elides tombstones
// (safe only at the bottom level).
func mergeSources(sources [][]kv, dropTombs bool) []kv {
	type cursor struct {
		src []kv
		pos int
	}
	curs := make([]cursor, len(sources))
	for i, s := range sources {
		curs[i] = cursor{src: s}
	}
	var out []kv
	for {
		best := -1
		for i := range curs {
			if curs[i].pos >= len(curs[i].src) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			c := bytes.Compare(curs[i].src[curs[i].pos].key, curs[best].src[curs[best].pos].key)
			if c < 0 {
				best = i
			}
			// c == 0: earlier source (newer) wins; keep best.
		}
		if best == -1 {
			return out
		}
		e := curs[best].src[curs[best].pos]
		key := e.key
		for i := range curs {
			for curs[i].pos < len(curs[i].src) && bytes.Equal(curs[i].src[curs[i].pos].key, key) {
				curs[i].pos++ // consume duplicates in all sources
			}
		}
		if e.tombstone && dropTombs {
			continue
		}
		out = append(out, e)
	}
}

// Scan visits live keys >= start in order, merging the memtable with all
// tables, until fn returns false or limit pairs are visited (limit <= 0
// means unlimited). It holds a shared lock for a consistent snapshot.
func (t *Tree) Scan(start []byte, limit int, fn func(k, v []byte) bool) error {
	ch := t.begin()
	t.mu.RLock()
	defer func() {
		t.mu.RUnlock()
		t.stats.Scans.Inc()
		settle(ch)
	}()

	// Materialize sources newest-first. Scans over on-device tables read
	// each table once (large sequential reads, charged to the charger).
	var sources [][]kv
	var memRun []kv
	for e := t.mem.seek(start); e != nil; e = e.next[0] {
		memRun = append(memRun, kv{key: e.key, val: e.val, tombstone: e.tombstone})
	}
	sources = append(sources, memRun)
	for _, tbl := range t.levels[0] {
		entries, err := tbl.readAll(t.cfg.Device, ch)
		if err != nil {
			return err
		}
		sources = append(sources, trimBelow(entries, start))
	}
	for lvl := 1; lvl < len(t.levels); lvl++ {
		var run []kv
		for _, tbl := range t.levels[lvl] {
			if bytes.Compare(tbl.max, start) < 0 {
				continue
			}
			entries, err := tbl.readAll(t.cfg.Device, ch)
			if err != nil {
				return err
			}
			run = append(run, trimBelow(entries, start)...)
		}
		sources = append(sources, run)
	}
	merged := mergeSources(sources, true)
	visited := 0
	for _, e := range merged {
		if limit > 0 && visited >= limit {
			return nil
		}
		if !fn(e.key, e.val) {
			return nil
		}
		visited++
	}
	return nil
}

func trimBelow(entries []kv, start []byte) []kv {
	i := sort.Search(len(entries), func(i int) bool {
		return bytes.Compare(entries[i].key, start) >= 0
	})
	return entries[i:]
}

// TableCount returns the number of SSTables per level (for tests and
// experiment output).
func (t *Tree) TableCount() []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]int, len(t.levels))
	for i, lvl := range t.levels {
		out[i] = len(lvl)
	}
	return out
}

// MemtableBytes reports the current memtable size.
func (t *Tree) MemtableBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mem.bytes
}

// DiskBytes returns the total data bytes of all live SSTables — the
// numerator of space amplification (live on-device bytes vs live data).
func (t *Tree) DiskBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for _, lvl := range t.levels {
		n += levelBytes(lvl)
	}
	return n
}
