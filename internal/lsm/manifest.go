package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"costperf/internal/fault"
)

// The manifest makes the LSM tree recoverable: every flush and compaction
// commits the resulting table set by writing a sequence-numbered, CRC-framed
// manifest into one of two ping-pong slots at the head of the device. A
// crash between table writes and the manifest commit simply leaves the
// previous manifest (and previous table set) authoritative; old tables are
// trimmed only after the new manifest is durable.
const (
	manifestMagic     = 0xE7
	manifestSlots     = 2
	manifestSlotBytes = 64 << 10
	// tablesBase is the first device offset used for table data; the
	// manifest slots live below it.
	tablesBase = int64(manifestSlots * manifestSlotBytes)
	// manifest frame: magic(1) | len(4) | crc(4) | body
	manifestHeaderSize = 9
)

// ErrNoManifest is returned by Open when no valid manifest exists on the
// device (nothing was ever committed, or both slots are corrupt).
var ErrNoManifest = errors.New("lsm: no valid manifest on device")

// tableMeta is the durable description of one sstable; the in-memory index
// and bloom filter are rebuilt from the data region at Open.
type tableMeta struct {
	id      uint64
	level   int
	dataOff int64
	dataLen int64
	entries int
}

// encodeManifest serializes the commit point: seq, allocation state, and
// the full table set (L0 in newest-first order, deeper levels by min key).
func encodeManifest(seq uint64, nextID uint64, tail int64, tables []tableMeta) []byte {
	var body []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		body = append(body, tmp[:n]...)
	}
	put(seq)
	put(nextID)
	put(uint64(tail))
	put(uint64(len(tables)))
	for _, m := range tables {
		put(m.id)
		put(uint64(m.level))
		put(uint64(m.dataOff))
		put(uint64(m.dataLen))
		put(uint64(m.entries))
	}
	out := make([]byte, manifestHeaderSize+len(body))
	out[0] = manifestMagic
	binary.BigEndian.PutUint32(out[1:], uint32(len(body)))
	binary.BigEndian.PutUint32(out[5:], crc32.ChecksumIEEE(body))
	copy(out[manifestHeaderSize:], body)
	return out
}

func decodeManifest(body []byte) (seq, nextID uint64, tail int64, tables []tableMeta, err error) {
	pos := 0
	get := func() uint64 {
		if err != nil {
			return 0
		}
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			err = fmt.Errorf("%w: truncated manifest", ErrCorrupt)
			return 0
		}
		pos += n
		return v
	}
	seq = get()
	nextID = get()
	tail = int64(get())
	n := get()
	if err != nil {
		return 0, 0, 0, nil, err
	}
	tables = make([]tableMeta, 0, n)
	for i := uint64(0); i < n; i++ {
		m := tableMeta{
			id:      get(),
			level:   int(get()),
			dataOff: int64(get()),
			dataLen: int64(get()),
			entries: int(get()),
		}
		if err != nil {
			return 0, 0, 0, nil, err
		}
		tables = append(tables, m)
	}
	return seq, nextID, tail, tables, nil
}

// tableMetas snapshots the live table set in manifest order. Caller holds
// t.mu.
func (t *Tree) tableMetasLocked() []tableMeta {
	var out []tableMeta
	for _, lvl := range t.levels {
		for _, tb := range lvl {
			out = append(out, tableMeta{
				id: tb.id, level: tb.level,
				dataOff: tb.dataOff, dataLen: tb.dataLen, entries: tb.entries,
			})
		}
	}
	return out
}

// writeManifestLocked commits the current table set: the next sequence
// number is framed into the slot the previous manifest does not occupy, so
// a torn manifest write leaves the old commit point intact. Caller holds
// t.mu.
func (t *Tree) writeManifestLocked() error {
	seq := t.manifestSeq + 1
	framed := encodeManifest(seq, t.nextID, t.tail, t.tableMetasLocked())
	if len(framed) > manifestSlotBytes {
		return fmt.Errorf("lsm: manifest (%d bytes) exceeds slot size %d", len(framed), manifestSlotBytes)
	}
	slot := int64(seq%manifestSlots) * manifestSlotBytes
	err := t.cfg.Retry.Do(&t.stats.Retry, func() error {
		return t.cfg.Device.WriteAt(slot, framed, nil)
	})
	if err != nil {
		if fault.Classify(err) == fault.ClassPersistent {
			t.stats.Health.Degrade(fmt.Sprintf("manifest write: %v", err))
		}
		return err
	}
	t.manifestSeq = seq
	return nil
}

// readManifestSlot parses one slot; returns an error if the slot holds no
// valid frame.
func readManifestSlot(raw []byte) (seq, nextID uint64, tail int64, tables []tableMeta, err error) {
	if len(raw) < manifestHeaderSize || raw[0] != manifestMagic {
		return 0, 0, 0, nil, fmt.Errorf("%w: no manifest frame", ErrCorrupt)
	}
	blen := binary.BigEndian.Uint32(raw[1:])
	crc := binary.BigEndian.Uint32(raw[5:])
	if int(blen) > len(raw)-manifestHeaderSize {
		return 0, 0, 0, nil, fmt.Errorf("%w: torn manifest frame", ErrCorrupt)
	}
	body := raw[manifestHeaderSize : manifestHeaderSize+int(blen)]
	if crc32.ChecksumIEEE(body) != crc {
		return 0, 0, 0, nil, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	return decodeManifest(body)
}

// Open rebuilds a tree from the newest valid manifest on the device: table
// indexes and bloom filters are reconstructed by re-parsing each table's
// CRC-framed data region. Returns ErrNoManifest if no commit point exists.
func Open(cfg Config) (*Tree, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	retry := cfg.Retry
	var best struct {
		ok     bool
		seq    uint64
		nextID uint64
		tail   int64
		tables []tableMeta
	}
	hw := cfg.Device.HighWater()
	for slot := 0; slot < manifestSlots; slot++ {
		off := int64(slot) * manifestSlotBytes
		length := int64(manifestSlotBytes)
		if off >= hw {
			continue
		}
		if off+length > hw {
			length = hw - off
		}
		var raw []byte
		err := retry.Do(nil, func() error {
			var rerr error
			raw, rerr = cfg.Device.ReadAt(off, int(length), nil)
			return rerr
		})
		if err != nil {
			return nil, err
		}
		seq, nextID, tail, tables, err := readManifestSlot(raw)
		if err != nil {
			continue // torn or empty slot: the other slot decides
		}
		if !best.ok || seq > best.seq {
			best.ok, best.seq, best.nextID, best.tail, best.tables = true, seq, nextID, tail, tables
		}
	}
	if !best.ok {
		return nil, ErrNoManifest
	}
	t := &Tree{
		cfg:         cfg,
		mem:         newMemtable(),
		levels:      make([][]*sstable, cfg.MaxLevels),
		tail:        best.tail,
		nextID:      best.nextID,
		manifestSeq: best.seq,
	}
	t.attachDeviceHealth()
	for _, m := range best.tables {
		tbl, err := t.loadTable(m)
		if err != nil {
			return nil, fmt.Errorf("lsm: recovering table %d: %w", m.id, err)
		}
		if m.level >= len(t.levels) {
			return nil, fmt.Errorf("%w: table %d on level %d beyond max %d", ErrCorrupt, m.id, m.level, len(t.levels)-1)
		}
		// Manifest order is authoritative: L0 newest-first, deeper levels
		// sorted by min key.
		t.levels[m.level] = append(t.levels[m.level], tbl)
	}
	return t, nil
}

// loadTable rebuilds one sstable's in-memory index and bloom filter by
// sequentially re-parsing its data region.
func (t *Tree) loadTable(m tableMeta) (*sstable, error) {
	var raw []byte
	err := t.cfg.Retry.Do(&t.stats.Retry, func() error {
		var rerr error
		raw, rerr = t.cfg.Device.ReadAt(m.dataOff, int(m.dataLen), nil)
		return rerr
	})
	if err != nil {
		return nil, err
	}
	tbl := &sstable{
		id: m.id, level: m.level,
		filter:  newBloom(m.entries),
		dataOff: m.dataOff, dataLen: m.dataLen,
		entries: m.entries,
	}
	off := 0
	for off < len(raw) {
		e, consumed, err := parseRecord(raw[off:])
		if err != nil {
			return nil, err
		}
		tbl.index = append(tbl.index, indexEntry{
			key: e.key,
			off: m.dataOff + int64(off),
			len: int32(consumed),
		})
		tbl.filter.add(e.key)
		off += consumed
	}
	if len(tbl.index) != m.entries {
		return nil, fmt.Errorf("%w: table %d has %d records, manifest says %d",
			ErrCorrupt, m.id, len(tbl.index), m.entries)
	}
	tbl.min = tbl.index[0].key
	tbl.max = tbl.index[len(tbl.index)-1].key
	return tbl, nil
}

// ManifestSeq returns the sequence number of the last committed manifest
// (0 before the first commit).
func (t *Tree) ManifestSeq() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.manifestSeq
}
