package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"costperf/internal/sim"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

func newTree(t *testing.T) (*Tree, *ssd.Device) {
	t.Helper()
	dev := ssd.New(ssd.SamsungSSD)
	tr, err := New(Config{
		Device:         dev,
		MemtableBytes:  8 << 10, // small to force flushes/compactions
		L0Tables:       3,
		LevelBytesBase: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dev
}

func TestMemtableBasics(t *testing.T) {
	m := newMemtable()
	m.put([]byte("b"), []byte("2"), false, nil)
	m.put([]byte("a"), []byte("1"), false, nil)
	m.put([]byte("c"), []byte("3"), false, nil)
	if v, tomb, found := m.get([]byte("b"), nil); !found || tomb || string(v) != "2" {
		t.Fatalf("get b = %q,%v,%v", v, tomb, found)
	}
	if _, _, found := m.get([]byte("zz"), nil); found {
		t.Fatal("found absent key")
	}
	// Ordered iteration.
	var keys []string
	for e := m.first(); e != nil; e = e.next[0] {
		keys = append(keys, string(e.key))
	}
	if fmt.Sprint(keys) != "[a b c]" {
		t.Fatalf("order = %v", keys)
	}
	// Overwrite and tombstone.
	m.put([]byte("a"), []byte("1v2"), false, nil)
	m.put([]byte("b"), nil, true, nil)
	if v, _, _ := m.get([]byte("a"), nil); string(v) != "1v2" {
		t.Fatal("overwrite failed")
	}
	if _, tomb, found := m.get([]byte("b"), nil); !found || !tomb {
		t.Fatal("tombstone lost")
	}
	if m.count != 3 {
		t.Fatalf("count = %d, want 3", m.count)
	}
}

func TestBloomFilter(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.add(workload.Key(uint64(i)))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain(workload.Key(uint64(i))) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	fp := 0
	for i := 10000; i < 20000; i++ {
		if b.mayContain(workload.Key(uint64(i))) {
			fp++
		}
	}
	if rate := float64(fp) / 10000; rate > 0.05 {
		t.Fatalf("false positive rate %v too high", rate)
	}
}

func TestSSTableRoundTrip(t *testing.T) {
	dev := ssd.New(ssd.SamsungSSD)
	entries := []kv{
		{key: []byte("a"), val: []byte("1")},
		{key: []byte("b"), val: nil, tombstone: true},
		{key: []byte("c"), val: bytes.Repeat([]byte("x"), 500)},
	}
	tbl, next, err := writeTable(dev, 1, 0, entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next != tbl.dataLen {
		t.Fatalf("next offset %d != dataLen %d", next, tbl.dataLen)
	}
	for _, e := range entries {
		got, found, err := tbl.get(dev, e.key, nil)
		if err != nil || !found {
			t.Fatalf("get %q: %v %v", e.key, found, err)
		}
		if got.tombstone != e.tombstone || !bytes.Equal(got.val, e.val) {
			t.Fatalf("get %q = %+v", e.key, got)
		}
	}
	if _, found, _ := tbl.get(dev, []byte("zz"), nil); found {
		t.Fatal("found absent key")
	}
	all, err := tbl.readAll(dev, nil)
	if err != nil || len(all) != 3 {
		t.Fatalf("readAll = %d,%v", len(all), err)
	}
}

func TestPutGetThroughFlushesAndCompactions(t *testing.T) {
	tr, _ := newTree(t)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Put(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats().Flushes.Value() == 0 {
		t.Fatal("no memtable flushes")
	}
	if tr.Stats().Compactions.Value() == 0 {
		t.Fatal("no compactions")
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr.Get(workload.Key(uint64(i)))
		if err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, workload.ValueFor(uint64(i), 64)) {
			t.Fatalf("key %d corrupt", i)
		}
	}
	// Levels 1+ must be range-disjoint.
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	for lvl := 1; lvl < len(tr.levels); lvl++ {
		tables := tr.levels[lvl]
		for i := 1; i < len(tables); i++ {
			if bytes.Compare(tables[i-1].max, tables[i].min) >= 0 {
				t.Fatalf("level %d tables overlap", lvl)
			}
		}
	}
}

func TestOverwritesAndDeletesAcrossLevels(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 2000; i++ {
		if err := tr.Put(workload.Key(uint64(i)), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite a subset and delete another after data reached deep levels.
	for i := 0; i < 2000; i += 4 {
		if err := tr.Put(workload.Key(uint64(i)), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 2000; i += 4 {
		if err := tr.Delete(workload.Key(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		v, ok, err := tr.Get(workload.Key(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		switch i % 4 {
		case 0:
			if !ok || string(v) != "v2" {
				t.Fatalf("key %d = %q,%v want v2", i, v, ok)
			}
		case 1:
			if ok {
				t.Fatalf("deleted key %d resurrected", i)
			}
		default:
			if !ok || string(v) != "v1" {
				t.Fatalf("key %d = %q,%v want v1", i, v, ok)
			}
		}
	}
}

func TestScanMergedOrder(t *testing.T) {
	tr, _ := newTree(t)
	const n = 3000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		if err := tr.Put(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 16)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 10 {
		if err := tr.Delete(workload.Key(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var prev []byte
	count := 0
	if err := tr.Scan(nil, 0, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("scan out of order")
		}
		if workload.KeyID(k)%10 == 0 {
			t.Fatalf("deleted key %d in scan", workload.KeyID(k))
		}
		prev = append(prev[:0], k...)
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := n - n/10
	if count != want {
		t.Fatalf("scan visited %d, want %d", count, want)
	}
	// Bounded scan.
	var got []uint64
	if err := tr.Scan(workload.Key(101), 4, func(k, _ []byte) bool {
		got = append(got, workload.KeyID(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != 101 {
		t.Fatalf("bounded scan = %v", got)
	}
}

func TestBlindWritesNoReadIO(t *testing.T) {
	// LSM updates never read the device (paper Section 6.2), except when a
	// flush triggers compaction.
	tr, dev := newTree(t)
	for i := 0; i < 200; i++ {
		if err := tr.Put(workload.Key(uint64(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Under the flush threshold: zero reads.
	if dev.Stats().Reads.Value() != 0 {
		t.Fatalf("puts issued %d reads", dev.Stats().Reads.Value())
	}
}

func TestLargeWritesOnly(t *testing.T) {
	// All device writes are whole tables (log-structuring).
	tr, dev := newTree(t)
	for i := 0; i < 3000; i++ {
		if err := tr.Put(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	w := dev.Stats().Writes.Value()
	if w == 0 {
		t.Fatal("no writes")
	}
	if avg := dev.Stats().BytesWritten.Value() / w; avg < 1024 {
		t.Fatalf("average device write = %d bytes; LSM writes should be large", avg)
	}
}

func TestBloomSkipsColdTables(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 3000; i++ {
		if err := tr.Put(workload.Key(uint64(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	// Misses on absent keys should mostly be answered by blooms.
	before := tr.Stats().TableReads.Value()
	for i := 100000; i < 100500; i++ {
		if _, ok, err := tr.Get(workload.Key(uint64(i))); err != nil || ok {
			t.Fatalf("absent key found: %v %v", ok, err)
		}
	}
	reads := tr.Stats().TableReads.Value() - before
	if tr.Stats().BloomSkips.Value() == 0 {
		t.Fatal("bloom filters never consulted")
	}
	if reads > 100 {
		t.Fatalf("%d table reads for 500 absent keys; blooms should skip most", reads)
	}
}

func TestCostAccountingColdVsWarm(t *testing.T) {
	sess := sim.NewSession(sim.DefaultCosts())
	dev := ssd.New(ssd.SamsungSSD)
	tr, err := New(Config{Device: dev, MemtableBytes: 8 << 10, L0Tables: 3,
		LevelBytesBase: 64 << 10, Session: sess})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tr.Put(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	sess.Tracker().Reset()
	for i := 0; i < 500; i++ {
		if _, _, err := tr.Get(workload.Key(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	tk := sess.Tracker()
	if tk.Ops(sim.OpSS) == 0 {
		t.Fatal("cold gets recorded no SS operations")
	}
}

func TestConcurrentReadsAndWrites(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 1000; i++ {
		if err := tr.Put(workload.Key(uint64(i)), []byte("init")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				id := uint64(rng.Intn(1000))
				switch rng.Intn(3) {
				case 0:
					if err := tr.Put(workload.Key(id), []byte(fmt.Sprintf("w%d", w))); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 1:
					if _, _, err := tr.Get(workload.Key(id)); err != nil {
						t.Errorf("get: %v", err)
						return
					}
				case 2:
					if err := tr.Scan(workload.Key(id), 5, func(_, _ []byte) bool { return true }); err != nil {
						t.Errorf("scan: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestOrderedMapEquivalence(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
		Val  uint16
	}
	f := func(ops []op) bool {
		dev := ssd.New(ssd.SamsungSSD)
		tr, err := New(Config{Device: dev, MemtableBytes: 2 << 10, L0Tables: 2, LevelBytesBase: 8 << 10})
		if err != nil {
			return false
		}
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("key-%05d", o.Key%300)
			v := fmt.Sprintf("val-%d", o.Val)
			switch o.Kind % 3 {
			case 0:
				if err := tr.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
				model[k] = v
			case 1:
				if err := tr.Delete([]byte(k)); err != nil {
					return false
				}
				delete(model, k)
			case 2:
				got, ok, err := tr.Get([]byte(k))
				if err != nil {
					return false
				}
				want, wok := model[k]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			}
		}
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		okAll := true
		err = tr.Scan(nil, 0, func(k, v []byte) bool {
			if i >= len(keys) || string(k) != keys[i] || string(v) != model[keys[i]] {
				okAll = false
				return false
			}
			i++
			return true
		})
		return err == nil && okAll && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestMergeSourcesNewestWins(t *testing.T) {
	newer := []kv{{key: []byte("a"), val: []byte("new")}, {key: []byte("c"), tombstone: true}}
	older := []kv{{key: []byte("a"), val: []byte("old")}, {key: []byte("b"), val: []byte("b1")}, {key: []byte("c"), val: []byte("c1")}}
	out := mergeSources([][]kv{newer, older}, false)
	if len(out) != 3 {
		t.Fatalf("merged %d entries, want 3", len(out))
	}
	if string(out[0].val) != "new" {
		t.Fatalf("a = %q, want newest", out[0].val)
	}
	if !out[2].tombstone {
		t.Fatal("tombstone lost without dropTombs")
	}
	out = mergeSources([][]kv{newer, older}, true)
	if len(out) != 2 {
		t.Fatalf("dropTombs merged %d entries, want 2", len(out))
	}
}
