package lsm

import (
	"testing"

	"costperf/internal/ssd"
	"costperf/internal/workload"
)

func benchLSM(b *testing.B) *Tree {
	b.Helper()
	tr, err := New(Config{Device: ssd.New(ssd.SamsungSSD)})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkPut(b *testing.B) {
	tr := benchLSM(b)
	val := workload.ValueFor(1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(workload.Key(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetAcrossLevels(b *testing.B) {
	tr := benchLSM(b)
	const keys = 50000
	for i := uint64(0); i < keys; i++ {
		if err := tr.Put(workload.Key(i), workload.ValueFor(i, 100)); err != nil {
			b.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Get(workload.Key(uint64(i) % keys)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetAbsentViaBlooms(b *testing.B) {
	tr := benchLSM(b)
	const keys = 50000
	for i := uint64(0); i < keys; i++ {
		if err := tr.Put(workload.Key(i), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := tr.Get(workload.Key(uint64(i) + 10*keys)); err != nil || ok {
			b.Fatal("absent key found")
		}
	}
}

func BenchmarkMemtablePut(b *testing.B) {
	m := newMemtable()
	val := []byte("value-payload-100bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.put(workload.Key(uint64(i)), val, false, nil)
	}
}
