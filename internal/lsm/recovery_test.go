package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"costperf/internal/fault"
	"costperf/internal/ssd"
)

func reopen(t *testing.T, dev *ssd.Device) *Tree {
	t.Helper()
	tr, err := Open(Config{
		Device:         dev,
		MemtableBytes:  8 << 10,
		L0Tables:       3,
		LevelBytesBase: 64 << 10,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return tr
}

func TestOpenNoManifest(t *testing.T) {
	dev := ssd.New(ssd.SamsungSSD)
	if _, err := Open(Config{Device: dev}); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("Open on empty device = %v, want ErrNoManifest", err)
	}
}

func TestOpenRecoversFlushedData(t *testing.T) {
	tr, dev := newTree(t)
	const n = 2000 // enough to flush several tables and compact
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a slice of keys so tombstones are exercised too.
	for i := 0; i < n; i += 10 {
		if err := tr.Delete([]byte(fmt.Sprintf("key-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	seq := tr.ManifestSeq()
	if seq == 0 {
		t.Fatal("no manifest committed after flush")
	}

	rec := reopen(t, dev)
	if got := rec.ManifestSeq(); got != seq {
		t.Fatalf("recovered manifest seq %d, want %d", got, seq)
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		v, found, err := rec.Get(key)
		if err != nil {
			t.Fatalf("Get %s: %v", key, err)
		}
		if i%10 == 0 {
			if found {
				t.Fatalf("deleted key %s resurrected as %q", key, v)
			}
			continue
		}
		if !found || !bytes.Equal(v, []byte(fmt.Sprintf("val-%d", i))) {
			t.Fatalf("Get %s = %q,%v after recovery", key, v, found)
		}
	}
	// The recovered tree must keep working as a writer.
	if err := rec.Put([]byte("post-recovery"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenSurvivesTornManifestWrite(t *testing.T) {
	tr, dev := newTree(t)
	inj := fault.NewInjector(7)
	dev.SetFaultInjector(inj)

	if err := tr.Put([]byte("committed"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil { // commits manifest seq 1
		t.Fatal(err)
	}
	// Each flush performs two device writes: the L0 table, then the
	// manifest. The first flush used writes 1-2; tear the second flush's
	// manifest (write 4) mid-frame — a power loss during the commit write.
	inj.TearWrite(4, 5)
	if err := tr.Put([]byte("torn"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil { // tear is silent, like real power loss
		t.Fatal(err)
	}

	rec := reopen(t, dev)
	if got := rec.ManifestSeq(); got != 1 {
		t.Fatalf("recovered manifest seq %d, want 1 (torn commit discarded)", got)
	}
	if _, found, err := rec.Get([]byte("committed")); err != nil || !found {
		t.Fatalf("committed key lost: found=%v err=%v", found, err)
	}
	if _, found, err := rec.Get([]byte("torn")); err != nil || found {
		t.Fatalf("uncommitted key visible after torn manifest: found=%v err=%v", found, err)
	}
}

func TestOpenDetectsCorruptTable(t *testing.T) {
	tr, dev := newTree(t)
	if err := tr.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the table data region (above the manifest slots).
	raw, err := dev.ReadAt(tablesBase, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteAt(tablesBase, []byte{raw[0] ^ 0xFF}, nil); err != nil {
		t.Fatal(err)
	}
	_, err = Open(Config{Device: dev})
	if !errors.Is(err, fault.ErrCorrupt) {
		t.Fatalf("Open over corrupt table = %v, want fault.ErrCorrupt", err)
	}
}

func TestPersistentWriteFailureDegradesTree(t *testing.T) {
	tr, dev := newTree(t)
	inj := fault.NewInjector(11)
	dev.SetFaultInjector(inj)

	if err := tr.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	inj.FailNextWrites(1, fault.ClassPersistent)
	if err := tr.Flush(); !errors.Is(err, fault.ErrPersistent) {
		t.Fatalf("Flush under persistent fault = %v, want ErrPersistent", err)
	}
	if !tr.Stats().Health.Degraded() {
		t.Fatal("tree not degraded after persistent write failure")
	}
	if err := tr.Put([]byte("b"), []byte("2")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put on degraded tree = %v, want ErrDegraded", err)
	}
	// Reads keep working on the degraded tree (read-only availability).
	if _, _, err := tr.Get([]byte("a")); err != nil {
		t.Fatalf("Get on degraded tree: %v", err)
	}
}

func TestTransientWriteFaultAbsorbedByRetry(t *testing.T) {
	tr, dev := newTree(t)
	inj := fault.NewInjector(13)
	dev.SetFaultInjector(inj)

	inj.FailNextWrites(1, fault.ClassTransient)
	if err := tr.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush with transient fault = %v, want absorbed", err)
	}
	if tr.Stats().Retry.Absorbed.Value() == 0 {
		t.Fatal("retry absorption not metered")
	}
	if tr.Stats().Health.Degraded() {
		t.Fatal("transient fault must not degrade the tree")
	}
}
