// Package lsm implements a log-structured merge tree in the style of
// RocksDB/LevelDB — the open-source data caching system the paper pairs
// with Deuteronomy (Sections 1.3 and 6).
//
// Updates are "accepted" into an in-memory skiplist memtable without
// reading secondary storage (the LSM form of the paper's blind updates,
// Section 6.2). When the memtable fills it is written to level 0 as an
// immutable sorted-string table (SSTable) in one large device write
// (log-structuring: all writes are large writes, Section 6.1). Background
// compaction merges overlapping tables downward, keeping per-level key
// ranges disjoint from level 1 on and bounding read amplification with
// per-table bloom filters.
package lsm

import (
	"bytes"

	"costperf/internal/sim"
)

const maxSkipHeight = 12

// memEntry is a memtable record; a nil value with tombstone set records a
// deletion that must mask older versions in lower levels.
type memEntry struct {
	key       []byte
	val       []byte
	tombstone bool
	next      [maxSkipHeight]*memEntry
	height    int
}

// memtable is a single-writer skiplist (the Tree serializes writers; the
// skiplist keeps ordered iteration cheap, as in LevelDB).
type memtable struct {
	head  *memEntry
	bytes int
	count int
	rng   uint64
}

func newMemtable() *memtable {
	return &memtable{head: &memEntry{height: maxSkipHeight}, rng: 0x2545f4914f6cdd1d}
}

func (m *memtable) randomHeight() int {
	m.rng ^= m.rng << 13
	m.rng ^= m.rng >> 7
	m.rng ^= m.rng << 17
	h := 1
	for v := m.rng; v&1 == 1 && h < maxSkipHeight; v >>= 1 {
		h++
	}
	return h
}

// put inserts or overwrites; tombstone records a delete.
func (m *memtable) put(key, val []byte, tombstone bool, ch *sim.Charger) {
	var prev [maxSkipHeight]*memEntry
	x := m.head
	for lvl := maxSkipHeight - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && bytes.Compare(x.next[lvl].key, key) < 0 {
			x = x.next[lvl]
			if ch != nil {
				ch.Chase(1)
				ch.Compare(1)
			}
		}
		prev[lvl] = x
	}
	if e := x.next[0]; e != nil && bytes.Equal(e.key, key) {
		m.bytes += len(val) - len(e.val)
		e.val = val
		e.tombstone = tombstone
		return
	}
	e := &memEntry{key: key, val: val, tombstone: tombstone, height: m.randomHeight()}
	for lvl := 0; lvl < e.height; lvl++ {
		e.next[lvl] = prev[lvl].next[lvl]
		prev[lvl].next[lvl] = e
	}
	m.bytes += len(key) + len(val) + 64
	m.count++
}

// get returns (value, tombstone, found).
func (m *memtable) get(key []byte, ch *sim.Charger) ([]byte, bool, bool) {
	x := m.head
	for lvl := maxSkipHeight - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && bytes.Compare(x.next[lvl].key, key) < 0 {
			x = x.next[lvl]
			if ch != nil {
				ch.Chase(1)
				ch.Compare(1)
			}
		}
	}
	if e := x.next[0]; e != nil && bytes.Equal(e.key, key) {
		if ch != nil {
			ch.Compare(1)
		}
		return e.val, e.tombstone, true
	}
	return nil, false, false
}

// seek returns the first entry with key >= target (nil if none).
func (m *memtable) seek(target []byte) *memEntry {
	x := m.head
	for lvl := maxSkipHeight - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && bytes.Compare(x.next[lvl].key, target) < 0 {
			x = x.next[lvl]
		}
	}
	return x.next[0]
}

// first returns the smallest entry.
func (m *memtable) first() *memEntry { return m.head.next[0] }
