package tc

import (
	"testing"

	"costperf/internal/fault"
	"costperf/internal/ssd"
)

// TestReplayTornFlushSweep tears the second log flush at every byte
// boundary of its frame — header and body — and checks that replay always
// recovers exactly the committed prefix: the first record survives, the
// torn record is discarded (unless the tear kept the whole frame), and the
// truncation offset lands on the last complete record boundary.
func TestReplayTornFlushSweep(t *testing.T) {
	recA := commitRecord{commitTS: 1, entries: []redoEntry{{key: []byte("a"), val: []byte("1")}}}
	recB := commitRecord{commitTS: 2, entries: []redoEntry{{key: []byte("bb"), val: []byte("22")}}}
	frameA := encodeCommit(recA)
	frameB := encodeCommit(recB)

	for keep := 0; keep <= len(frameB); keep++ {
		dev := ssd.New(ssd.SamsungSSD)
		inj := fault.NewInjector(int64(keep))
		dev.SetFaultInjector(inj)
		l := newRlog(dev, 1<<20, fault.DefaultRetry(), nil, nil)

		if err := l.append(recA); err != nil {
			t.Fatal(err)
		}
		if err := l.flush(); err != nil { // device write 1: intact
			t.Fatal(err)
		}
		inj.TearWrite(2, keep) // device write 2: torn after keep bytes
		if err := l.append(recB); err != nil {
			t.Fatal(err)
		}
		if err := l.flush(); err != nil { // tear is silent, like power loss
			t.Fatal(err)
		}

		var got []commitRecord
		sum, err := replayLog(dev, fault.DefaultRetry(), nil, func(r commitRecord) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("keep=%d: replay failed: %v", keep, err)
		}

		wantRecords := 1
		wantTrunc := int64(len(frameA))
		if keep == len(frameB) {
			wantRecords = 2
			wantTrunc = int64(len(frameA) + len(frameB))
		}
		if len(got) != wantRecords {
			t.Fatalf("keep=%d: replayed %d records, want %d", keep, len(got), wantRecords)
		}
		if got[0].commitTS != 1 {
			t.Fatalf("keep=%d: first record ts %d, want 1", keep, got[0].commitTS)
		}
		if wantRecords == 2 && got[1].commitTS != 2 {
			t.Fatalf("keep=%d: second record ts %d, want 2", keep, got[1].commitTS)
		}
		if sum.Records != wantRecords || sum.TruncatedAt != wantTrunc {
			t.Fatalf("keep=%d: summary %+v, want %d records truncated at %d",
				keep, sum, wantRecords, wantTrunc)
		}

		// The stop reason must match where the tear landed in the frame:
		// header tears read as zero fill (torn-tail), body tears leave a
		// complete header whose checksum unmasks the damage (bad-crc).
		var wantReason ReplayReason
		switch {
		case keep == len(frameB):
			wantReason = ReplayCleanEnd
		case keep < 5: // magic or length field torn: reads as zero fill
			wantReason = ReplayTornTail
		default: // CRC field or body torn: full header, checksum fails
			wantReason = ReplayBadCRC
		}
		if sum.Reason != wantReason {
			t.Fatalf("keep=%d: reason %s, want %s", keep, sum.Reason, wantReason)
		}
	}
}
