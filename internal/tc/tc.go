package tc

import (
	"errors"
	"sync"
	"sync/atomic"

	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/recordcache"
	"costperf/internal/sim"
	"costperf/internal/ssd"
)

// DataComponent is the interface the TC requires of its data component
// (the Bw-tree in Deuteronomy). Writes are blind: they must not require
// reading the target page.
type DataComponent interface {
	Get(key []byte) ([]byte, bool, error)
	BlindWrite(key, val []byte) error
	Delete(key []byte) error
}

// Common errors.
var (
	ErrTxDone   = errors.New("tc: transaction already finished")
	ErrConflict = errors.New("tc: write-write conflict")
	ErrClosed   = errors.New("tc: closed")
	ErrNoScan   = errors.New("tc: data component does not support scans")
	// ErrDegraded is returned by commits after a persistent log-device
	// write failure latched the TC read-only (see Stats.Health).
	ErrDegraded = errors.New("tc: degraded (read-only)")
)

// version is one committed value in the MVCC store. The value slices
// alias the recovery-log buffers conceptually: retaining them in memory is
// the paper's "recovery log as record cache".
type version struct {
	val      []byte
	commitTS uint64
	isDelete bool
}

// keyVersions is a key's version list, newest first. truncated records
// that GC dropped older versions — a reader that finds no visible version
// may then fall through to the read cache / data component, whose state is
// exactly the globally visible pre-image. Without the marker, no visible
// version means the key did not exist at the snapshot.
type keyVersions struct {
	vs        []version
	truncated bool
	// droppedAt is the clock value when GC emptied this key's list
	// entirely (vs == nil, truncated == true). The empty marker must
	// survive until every snapshot older than the drop has finished;
	// otherwise a later re-creation of the key would look brand-new to
	// those snapshots and mask the DC's globally visible pre-image.
	droppedAt uint64
}

// Stats counts TC events.
type Stats struct {
	Begins           metrics.Counter
	Commits          metrics.Counter
	Aborts           metrics.Counter
	Conflicts        metrics.Counter
	VersionStoreHits metrics.Counter // reads served by MVCC versions (log-buffer record cache)
	ReadCacheHits    metrics.Counter // reads served by the read cache
	DCReads          metrics.Counter // reads that had to go to the data component
	VersionsDropped  metrics.Counter // versions reclaimed by GC
	Scans            metrics.Counter
	// Retry meters the transient-fault retry budget spent on log I/O.
	Retry metrics.RetryStats
	// Health latches degraded (read-only) after a persistent log failure.
	Health metrics.Health
}

// Config configures a TC.
type Config struct {
	// DC is the data component.
	DC DataComponent
	// LogDevice holds the recovery log (typically a dedicated device or
	// region).
	LogDevice ssd.Dev
	// LogBufferBytes sizes the in-memory recovery-log buffer (default 1 MiB).
	LogBufferBytes int
	// ReadCacheBytes budgets the log-structured read cache (default 4 MiB).
	ReadCacheBytes int64
	// Session enables execution-cost accounting (may be nil).
	Session *sim.Session
	// Retry bounds the backoff loop around log-device I/O; the zero value
	// takes fault.DefaultRetry.
	Retry fault.RetryPolicy
	// Obs, when non-nil, receives one tracing span per transactional
	// read/commit; reads that fall through to the data component are
	// marked as misses. Nil traces nothing at zero cost.
	Obs *obs.Tracer
	// CommitGate, when non-nil, is consulted at the start of every commit;
	// a non-nil return rejects the transaction. Replication installs an
	// epoch fence here so a demoted primary cannot commit after failover.
	CommitGate func() error
	// LogStartLSN positions the recovery log's first append at this device
	// offset instead of 0. A promoted standby continues its shipped log in
	// place, keeping the whole LSN history PITR-addressable.
	LogStartLSN int64
	// InitialClock seeds the commit-timestamp clock (a promoted standby
	// passes the highest timestamp it applied, keeping timestamps
	// monotonic across failover).
	InitialClock uint64
}

// TC is the transaction component. Safe for concurrent use.
type TC struct {
	cfg Config

	clock  atomic.Uint64 // logical timestamp: even granularity is fine
	closed atomic.Bool

	mu     sync.Mutex
	mvcc   map[string]*keyVersions
	active map[uint64]uint64 // txID -> beginTS
	nextTx uint64
	log    *rlog
	rcache *recordcache.Ring
	stats  Stats
}

// New creates a TC over the given data component.
func New(cfg Config) (*TC, error) {
	if cfg.DC == nil {
		return nil, errors.New("tc: nil data component")
	}
	if cfg.LogDevice == nil {
		return nil, errors.New("tc: nil log device")
	}
	if cfg.ReadCacheBytes == 0 {
		cfg.ReadCacheBytes = 4 << 20
	}
	rc, err := recordcache.NewRing(cfg.ReadCacheBytes)
	if err != nil {
		return nil, err
	}
	tc := &TC{
		cfg:    cfg,
		mvcc:   map[string]*keyVersions{},
		active: map[uint64]uint64{},
		nextTx: 1,
		rcache: rc,
	}
	tc.log = newRlog(cfg.LogDevice, cfg.LogBufferBytes, cfg.Retry, &tc.stats.Retry, &tc.stats.Health)
	tc.log.start = cfg.LogStartLSN
	tc.clock.Store(cfg.InitialClock)
	// A self-healing log device (ssd.Mirror) escalates unrecoverable
	// dual-leg corruption by latching the TC read-only.
	if ha, ok := cfg.LogDevice.(interface {
		AttachHealth(*metrics.Health)
	}); ok {
		ha.AttachHealth(&tc.stats.Health)
	}
	return tc, nil
}

// Stats returns the TC's counters.
func (tc *TC) Stats() *Stats { return &tc.stats }

// ReadCacheStats exposes the read cache's own counters.
func (tc *TC) ReadCacheStats() *recordcache.Stats { return tc.rcache.Stats() }

// Tx is a transaction handle (snapshot isolation, first-committer-wins).
// A Tx is used by one goroutine.
type Tx struct {
	tc      *TC
	id      uint64
	beginTS uint64
	writes  map[string]redoEntry
	done    bool
}

// Begin starts a transaction reading from the current snapshot.
func (tc *TC) Begin() (*Tx, error) {
	if tc.closed.Load() {
		return nil, ErrClosed
	}
	tc.mu.Lock()
	id := tc.nextTx
	tc.nextTx++
	begin := tc.clock.Load()
	tc.active[id] = begin
	tc.mu.Unlock()
	tc.stats.Begins.Inc()
	return &Tx{tc: tc, id: id, beginTS: begin, writes: map[string]redoEntry{}}, nil
}

func (tc *TC) begin() *sim.Charger {
	if tc.cfg.Session == nil {
		return nil
	}
	return tc.cfg.Session.Begin()
}

// Read returns the value of key visible at the transaction's snapshot.
// The lookup path is the Figure 6 cascade: own writes, MVCC version store
// (recovery-log record cache), read cache, then the data component.
func (t *Tx) Read(key []byte) (_ []byte, _ bool, err error) {
	if t.done {
		return nil, false, ErrTxDone
	}
	tc := t.tc
	sp := tc.cfg.Obs.Start(obs.OpGet)
	defer func() { sp.End(err) }()
	ch := tc.begin()
	if ch != nil {
		ch.Hash()
	}
	// 1. Own writes.
	if w, ok := t.writes[string(key)]; ok {
		if ch != nil {
			ch.Settle()
		}
		if w.isDelete {
			return nil, false, nil
		}
		return w.val, true, nil
	}
	// 2. MVCC version store: newest version with commitTS <= snapshot.
	tc.mu.Lock()
	if kv := tc.mvcc[string(key)]; kv != nil {
		for _, v := range kv.vs {
			if v.commitTS <= t.beginTS {
				tc.mu.Unlock()
				tc.stats.VersionStoreHits.Inc()
				if ch != nil {
					ch.Chase(1)
					ch.Copy(len(v.val))
					ch.Settle()
				}
				if v.isDelete {
					return nil, false, nil
				}
				return v.val, true, nil
			}
		}
		if !kv.truncated {
			// Every version postdates the snapshot and nothing was GC'd:
			// the key did not exist at the snapshot.
			tc.mu.Unlock()
			tc.stats.VersionStoreHits.Inc()
			if ch != nil {
				ch.Settle()
			}
			return nil, false, nil
		}
	}
	tc.mu.Unlock()
	// A GC-truncated list's pre-image is globally visible — exactly what
	// the read cache and data component below hold.
	// 3. Read cache.
	if v, ok := tc.rcache.Get(key); ok {
		tc.stats.ReadCacheHits.Inc()
		if ch != nil {
			ch.Hash()
			ch.Copy(len(v))
			ch.Settle()
		}
		return v, true, nil
	}
	// 4. Data component. The TC's own caches all missed; whether the DC
	// itself hits memory is the DC's span to report — from the TC's view
	// this read escaped its caching tiers.
	sp.Miss()
	tc.stats.DCReads.Inc()
	if ch != nil {
		ch.Settle() // the DC charges its own operation
	}
	clockBefore := tc.clock.Load()
	v, ok, err := tc.cfg.DC.Get(key)
	if err != nil {
		return nil, false, err
	}
	if ok && !tc.keyChangedSince(key, clockBefore) {
		// Populate the read cache only if no commit touched the key while
		// the DC read was in flight — otherwise this value may predate a
		// concurrent committer's update and would poison later readers.
		tc.rcache.Add(key, v)
	}
	return v, ok, nil
}

// keyChangedSince reports whether the key gained a version (or lost its
// versions to GC after a commit) after the given clock value.
func (tc *TC) keyChangedSince(key []byte, clock uint64) bool {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	kv := tc.mvcc[string(key)]
	if kv == nil {
		return false
	}
	if len(kv.vs) > 0 && kv.vs[0].commitTS > clock {
		return true
	}
	return kv.truncated && kv.droppedAt > clock
}

// Write buffers an update; it becomes visible at commit.
func (t *Tx) Write(key, val []byte) error {
	if t.done {
		return ErrTxDone
	}
	t.writes[string(key)] = redoEntry{
		key: append([]byte(nil), key...),
		val: append([]byte(nil), val...),
	}
	return nil
}

// Delete buffers a deletion.
func (t *Tx) Delete(key []byte) error {
	if t.done {
		return ErrTxDone
	}
	t.writes[string(key)] = redoEntry{
		key:      append([]byte(nil), key...),
		isDelete: true,
	}
	return nil
}

// Commit validates (first-committer-wins), appends the redo record,
// installs versions, and posts blind updates to the data component.
func (t *Tx) Commit() (err error) {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	tc := t.tc
	sp := tc.cfg.Obs.Start(obs.OpCommit)
	defer func() { sp.End(err) }()
	if tc.closed.Load() {
		return ErrClosed
	}
	if gate := tc.cfg.CommitGate; gate != nil {
		if err := gate(); err != nil {
			tc.mu.Lock()
			delete(tc.active, t.id)
			tc.mu.Unlock()
			tc.stats.Aborts.Inc()
			return err
		}
	}
	tc.mu.Lock()
	delete(tc.active, t.id)
	if len(t.writes) == 0 {
		tc.mu.Unlock()
		tc.stats.Commits.Inc()
		return nil
	}
	// Write-write conflict check: another committer touched our keys
	// after our snapshot.
	for k := range t.writes {
		kv := tc.mvcc[k]
		if kv != nil && len(kv.vs) > 0 && kv.vs[0].commitTS > t.beginTS {
			tc.mu.Unlock()
			tc.stats.Conflicts.Inc()
			tc.stats.Aborts.Inc()
			return ErrConflict
		}
	}
	commitTS := tc.clock.Add(1)
	rec := commitRecord{commitTS: commitTS}
	for _, w := range t.writes {
		rec.entries = append(rec.entries, w)
	}
	// Redo log append, version install, and DC blind updates happen before
	// releasing the commit section: releasing earlier would let a later
	// committer's updates reach the log or the data component first,
	// reordering the durable state against commit timestamps (a lost update
	// once GC makes the DC authoritative). Deuteronomy orders DC updates by
	// timestamp; serializing the post-commit publication is our
	// equivalent. Reads remain concurrent (they take the same mutex only
	// briefly) and the log still group-commits.
	//
	// The log append comes first: if it fails, no version has been
	// installed, so the in-memory state never diverges from what recovery
	// can reconstruct — the transaction simply never committed.
	defer tc.mu.Unlock()
	if err := tc.log.append(rec); err != nil {
		tc.stats.Aborts.Inc()
		return err
	}
	for _, w := range rec.entries {
		kv := tc.mvcc[string(w.key)]
		if kv == nil {
			kv = &keyVersions{}
			tc.mvcc[string(w.key)] = kv
		}
		if len(kv.vs) == 0 && kv.truncated {
			// First commit to a key whose versions were GC-truncated: the
			// pre-image so far lived only in the data component, which
			// this commit is about to overwrite. Re-capture it into the
			// version store (at epoch timestamp 0: visible to every live
			// snapshot, all of which postdate the truncated history) so
			// active snapshots keep reading their view.
			pv, pok, err := tc.cfg.DC.Get(w.key)
			if err != nil {
				return err
			}
			kv.vs = []version{{val: pv, commitTS: 0, isDelete: !pok}}
			kv.truncated = false
		}
		kv.vs = append([]version{{
			val: w.val, commitTS: commitTS, isDelete: w.isDelete,
		}}, kv.vs...)
	}
	for _, w := range rec.entries {
		tc.rcache.Invalidate(w.key)
		var err error
		if w.isDelete {
			err = tc.cfg.DC.Delete(w.key)
		} else {
			err = tc.cfg.DC.BlindWrite(w.key, w.val)
		}
		if err != nil {
			return err
		}
	}
	tc.stats.Commits.Inc()
	return nil
}

// Abort discards the transaction.
func (t *Tx) Abort() {
	if t.done {
		return
	}
	t.done = true
	tc := t.tc
	tc.mu.Lock()
	delete(tc.active, t.id)
	tc.mu.Unlock()
	tc.stats.Aborts.Inc()
}

// Flush forces the recovery log to the device (group commit).
func (tc *TC) Flush() error { return tc.log.flush() }

// GC trims versions no active transaction can need: for each key, all
// versions strictly older than the newest version visible to the oldest
// active snapshot; keys whose newest version is globally visible are
// dropped entirely (the data component holds the value).
func (tc *TC) GC() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	oldest := tc.clock.Load()
	for _, begin := range tc.active {
		if begin < oldest {
			oldest = begin
		}
	}
	for _, kv := range tc.mvcc {
		if len(kv.vs) == 0 {
			continue // an existing truncation marker
		}
		if kv.vs[0].commitTS <= oldest {
			// Globally visible: the DC has this value; drop all versions
			// but keep a truncation marker. The marker is what lets a
			// later re-creation of the key be told apart from a
			// brand-new key: without it, a reader whose snapshot predates
			// the re-creation would wrongly see "not found" instead of
			// the DC's globally visible pre-image. Markers are ~48 bytes
			// per ever-written key — the bounded price of blind updates
			// without per-record timestamps in the DC.
			tc.stats.VersionsDropped.Add(int64(len(kv.vs)))
			kv.vs = nil
			kv.truncated = true
			kv.droppedAt = tc.clock.Load()
			continue
		}
		// Keep versions newer than oldest, plus one at-or-below it.
		cut := len(kv.vs)
		for i, v := range kv.vs {
			if v.commitTS <= oldest {
				cut = i + 1
				break
			}
		}
		if cut < len(kv.vs) {
			tc.stats.VersionsDropped.Add(int64(len(kv.vs) - cut))
			kv.vs = kv.vs[:cut]
			kv.truncated = true
		}
	}
}

// VersionCount reports the number of keys with live versions — truncation
// markers left by GC are not counted (for tests and experiments).
func (tc *TC) VersionCount() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	n := 0
	for _, kv := range tc.mvcc {
		if len(kv.vs) > 0 {
			n++
		}
	}
	return n
}

// Close flushes the log and closes the TC.
func (tc *TC) Close() error {
	if tc.closed.Swap(true) {
		return nil
	}
	return tc.log.flush()
}

// RecoverResult reports what log replay reconstructed.
type RecoverResult struct {
	// MaxTS is the highest commit timestamp replayed.
	MaxTS uint64
	// Applied is the number of redo entries applied to the data component.
	Applied int
	// Replay summarizes how far the log scan got and why it stopped.
	Replay ReplaySummary
}

// Recover replays a recovery log against a data component, reapplying all
// committed writes in commit order. Redo application uses the same blind
// updates as normal operation — the paper notes there is no difference
// between normal and recovery processing (Section 6.2). The replay summary
// (records applied, truncation offset, stop reason) is logged and returned.
func Recover(logDevice ssd.Dev, dc DataComponent) (RecoverResult, error) {
	return RecoverTo(logDevice, dc, RecoverOpts{})
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
