package tc

// This file is the log-shipping and point-in-time-recovery surface of the
// TC: the recovery log is the replication boundary of the Deuteronomy
// split, so the shipper (internal/repl) moves raw log bytes in
// record-aligned batches and the standby reapplies them with the same
// blind updates recovery uses.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log"

	"costperf/internal/fault"
	"costperf/internal/ssd"
)

// DurableLSN returns the device offset up to which the recovery log is
// durable: every byte below it is a flushed, complete frame. This is the
// shipping horizon — batches are cut from [cursor, DurableLSN).
func (tc *TC) DurableLSN() int64 {
	tc.log.mu.Lock()
	defer tc.log.mu.Unlock()
	return tc.log.start
}

// LogDevice returns the device holding the recovery log (the shipper reads
// batches straight off it).
func (tc *TC) LogDevice() ssd.Dev { return tc.cfg.LogDevice }

// Clock returns the current commit-timestamp clock value. A shard resize
// that builds a TC continuing one source's log while folding in another
// source's state seeds the new InitialClock from the max of both clocks,
// so the merged timeline stays monotonic.
func (tc *TC) Clock() uint64 { return tc.clock.Load() }

// ReadLogBatch reads a record-aligned batch of durable recovery-log bytes
// for shipping: starting at the record boundary from, it returns complete
// frames totalling at most maxBytes (but always at least one frame, so a
// record larger than maxBytes still ships), never reading past durable.
// The returned end offset is the batch's boundary LSN — the next batch's
// from, and a valid PITR target. A zero maxBytes defaults to 64 KiB.
func ReadLogBatch(dev ssd.Dev, from, durable int64, maxBytes int) ([]byte, int64, error) {
	if from >= durable {
		return nil, from, nil
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 10
	}
	retry := fault.DefaultRetry()
	readAt := func(o int64, n int64) ([]byte, error) {
		var out []byte
		err := retry.Do(nil, func() error {
			var rerr error
			out, rerr = dev.ReadAt(o, int(n), nil)
			return rerr
		})
		return out, err
	}
	n := durable - from
	if n > int64(maxBytes) {
		n = int64(maxBytes)
	}
	if n < 9 {
		return nil, 0, fmt.Errorf("tc: durable LSN %d is not a record boundary after %d (%w)",
			durable, from, fault.ErrCorrupt)
	}
	buf, err := readAt(from, n)
	if err != nil {
		return nil, 0, err
	}
	end := 0
	for end+9 <= len(buf) {
		if buf[end] != rlogMagic {
			return nil, 0, fmt.Errorf("tc: bad log magic at %d (%w)", from+int64(end), fault.ErrCorrupt)
		}
		fl := 9 + int(binary.BigEndian.Uint32(buf[end+1:]))
		if from+int64(end+fl) > durable {
			return nil, 0, fmt.Errorf("tc: record at %d runs past durable LSN %d (%w)",
				from+int64(end), durable, fault.ErrCorrupt)
		}
		if end+fl > len(buf) {
			break
		}
		end += fl
	}
	if end == 0 {
		// The first record alone exceeds maxBytes: ship it whole.
		fl := int64(9 + binary.BigEndian.Uint32(buf[1:]))
		if buf, err = readAt(from, fl); err != nil {
			return nil, 0, err
		}
		end = int(fl)
	}
	return buf[:end], from + int64(end), nil
}

// ApplyLogBytes walks the complete framed commit records in buf (a shipped
// batch cut by ReadLogBatch) and applies every redo entry to dc with the
// same blind updates recovery uses. It returns the number of commit
// records applied, the highest commit timestamp seen, and the bytes
// consumed; a frame failing verification stops application with an error
// wrapping fault.ErrCorrupt (nothing of the bad frame is applied).
func ApplyLogBytes(buf []byte, dc DataComponent) (records int, maxTS uint64, consumed int64, err error) {
	off := 0
	for off+9 <= len(buf) {
		if buf[off] != rlogMagic {
			return records, maxTS, int64(off), fmt.Errorf("tc: bad batch magic at %d (%w)", off, fault.ErrCorrupt)
		}
		blen := int(binary.BigEndian.Uint32(buf[off+1:]))
		crc := binary.BigEndian.Uint32(buf[off+5:])
		if off+9+blen > len(buf) {
			return records, maxTS, int64(off), fmt.Errorf("tc: truncated batch frame at %d (%w)", off, fault.ErrCorrupt)
		}
		body := buf[off+9 : off+9+blen]
		if crc32.ChecksumIEEE(body) != crc {
			return records, maxTS, int64(off), fmt.Errorf("tc: batch frame CRC mismatch at %d (%w)", off, fault.ErrCorrupt)
		}
		rec, derr := decodeCommit(body)
		if derr != nil {
			return records, maxTS, int64(off), fmt.Errorf("tc: corrupt batch record at %d: %v (%w)", off, derr, fault.ErrCorrupt)
		}
		for _, e := range rec.entries {
			var aerr error
			if e.isDelete {
				aerr = dc.Delete(e.key)
			} else {
				aerr = dc.BlindWrite(e.key, e.val)
			}
			if aerr != nil {
				return records, maxTS, int64(off), aerr
			}
		}
		if rec.commitTS > maxTS {
			maxTS = rec.commitTS
		}
		records++
		off += 9 + blen
	}
	if off != len(buf) {
		return records, maxTS, int64(off), fmt.Errorf("tc: batch ends mid-frame at %d (%w)", off, fault.ErrCorrupt)
	}
	return records, maxTS, int64(off), nil
}

// RecoverOpts bounds point-in-time recovery.
type RecoverOpts struct {
	// MaxLSN stops replay at the last record ending at or before this log
	// offset (0 = the whole log). PITR passes a recorded batch-boundary
	// LSN here.
	MaxLSN int64
	// MaxTS stops replay before the first record whose commit timestamp
	// exceeds this value (0 = no bound). Commit timestamps are appended in
	// order, so this reproduces the state as of commit time MaxTS.
	MaxTS uint64
}

// errStopReplay halts a bounded replay without reporting an error.
var errStopReplay = errors.New("tc: replay bound reached")

// RecoverTo replays a recovery log against a data component up to the
// given bounds — the point-in-time recovery primitive. With zero opts it
// is exactly Recover. The result's Replay.TruncatedAt reports the LSN the
// state was reconstructed to.
func RecoverTo(logDevice ssd.Dev, dc DataComponent, opts RecoverOpts) (RecoverResult, error) {
	var res RecoverResult
	sum, err := replayRange(logDevice, 0, opts.MaxLSN, fault.DefaultRetry(), nil, func(rec commitRecord, _ int64) error {
		if opts.MaxTS > 0 && rec.commitTS > opts.MaxTS {
			return errStopReplay
		}
		if rec.commitTS > res.MaxTS {
			res.MaxTS = rec.commitTS
		}
		for _, e := range rec.entries {
			var aerr error
			if e.isDelete {
				aerr = dc.Delete(e.key)
			} else {
				aerr = dc.BlindWrite(e.key, e.val)
			}
			if aerr != nil {
				return aerr
			}
			res.Applied++
		}
		return nil
	})
	if errors.Is(err, errStopReplay) {
		err = nil
	}
	res.Replay = sum
	if err == nil {
		log.Printf("tc: recovery %s, %d redo entr%s applied, max commit ts %d",
			sum, res.Applied, plural(res.Applied, "y", "ies"), res.MaxTS)
	}
	return res, err
}
