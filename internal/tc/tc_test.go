package tc

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"costperf/internal/bwtree"
	"costperf/internal/llama/logstore"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

// memDC is an in-memory DataComponent for unit tests.
type memDC struct {
	mu     sync.Mutex
	m      map[string][]byte
	gets   int
	writes int
}

func newMemDC() *memDC { return &memDC{m: map[string][]byte{}} }

func (d *memDC) Get(key []byte) ([]byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gets++
	v, ok := d.m[string(key)]
	return v, ok, nil
}

func (d *memDC) BlindWrite(key, val []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes++
	d.m[string(key)] = append([]byte(nil), val...)
	return nil
}

func (d *memDC) Delete(key []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes++
	delete(d.m, string(key))
	return nil
}

func newTC(t *testing.T, dc DataComponent) *TC {
	t.Helper()
	c, err := New(Config{DC: dc, LogDevice: ssd.New(ssd.SamsungSSD)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCommitReadBack(t *testing.T) {
	dc := newMemDC()
	c := newTC(t, dc)
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Own writes visible before commit.
	if v, ok, _ := tx.Read([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("own write = %q,%v", v, ok)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := c.Begin()
	if v, ok, _ := tx2.Read([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("committed value = %q,%v", v, ok)
	}
	if dc.writes != 1 {
		t.Fatalf("DC writes = %d, want 1 blind update", dc.writes)
	}
	// The read was served by the version store, not the DC.
	if dc.gets != 0 {
		t.Fatalf("DC gets = %d, want 0 (version-store hit)", dc.gets)
	}
	if c.Stats().VersionStoreHits.Value() == 0 {
		t.Fatal("version store hit not counted")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	dc := newMemDC()
	c := newTC(t, dc)
	// Commit v1.
	tx, _ := c.Begin()
	tx.Write([]byte("k"), []byte("v1"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Reader snapshots before v2.
	reader, _ := c.Begin()
	// Writer commits v2.
	w, _ := c.Begin()
	w.Write([]byte("k"), []byte("v2"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// Reader still sees v1.
	if v, ok, _ := reader.Read([]byte("k")); !ok || string(v) != "v1" {
		t.Fatalf("snapshot read = %q,%v, want v1", v, ok)
	}
	// New reader sees v2.
	r2, _ := c.Begin()
	if v, _, _ := r2.Read([]byte("k")); string(v) != "v2" {
		t.Fatalf("new snapshot = %q, want v2", v)
	}
}

func TestKeyCreatedAfterSnapshotInvisible(t *testing.T) {
	dc := newMemDC()
	c := newTC(t, dc)
	reader, _ := c.Begin()
	w, _ := c.Begin()
	w.Write([]byte("new"), []byte("x"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := reader.Read([]byte("new")); ok {
		t.Fatal("snapshot sees a key created after it")
	}
	// And the DC must not have been consulted (the version store decides).
	if dc.gets != 0 {
		t.Fatalf("DC gets = %d, want 0", dc.gets)
	}
}

func TestWriteWriteConflictAborts(t *testing.T) {
	dc := newMemDC()
	c := newTC(t, dc)
	t1, _ := c.Begin()
	t2, _ := c.Begin()
	t1.Write([]byte("k"), []byte("from-t1"))
	t2.Write([]byte("k"), []byte("from-t2"))
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("t2 commit err = %v, want conflict", err)
	}
	if c.Stats().Conflicts.Value() != 1 {
		t.Fatal("conflict not counted")
	}
	r, _ := c.Begin()
	if v, _, _ := r.Read([]byte("k")); string(v) != "from-t1" {
		t.Fatalf("value = %q, want first committer's", v)
	}
}

func TestDisjointWritersBothCommit(t *testing.T) {
	c := newTC(t, newMemDC())
	t1, _ := c.Begin()
	t2, _ := c.Begin()
	t1.Write([]byte("a"), []byte("1"))
	t2.Write([]byte("b"), []byte("2"))
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("disjoint writer aborted: %v", err)
	}
}

func TestDeleteVisibility(t *testing.T) {
	c := newTC(t, newMemDC())
	tx, _ := c.Begin()
	tx.Write([]byte("k"), []byte("v"))
	tx.Commit()
	reader, _ := c.Begin()
	d, _ := c.Begin()
	d.Delete([]byte("k"))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := reader.Read([]byte("k")); !ok {
		t.Fatal("snapshot should still see the deleted key")
	}
	r2, _ := c.Begin()
	if _, ok, _ := r2.Read([]byte("k")); ok {
		t.Fatal("new snapshot sees deleted key")
	}
}

func TestAbortDiscards(t *testing.T) {
	c := newTC(t, newMemDC())
	tx, _ := c.Begin()
	tx.Write([]byte("k"), []byte("v"))
	tx.Abort()
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("commit after abort = %v", err)
	}
	r, _ := c.Begin()
	if _, ok, _ := r.Read([]byte("k")); ok {
		t.Fatal("aborted write visible")
	}
}

func TestTxDoneGuards(t *testing.T) {
	c := newTC(t, newMemDC())
	tx, _ := c.Begin()
	tx.Commit()
	if _, _, err := tx.Read([]byte("x")); !errors.Is(err, ErrTxDone) {
		t.Fatal("read after commit allowed")
	}
	if err := tx.Write([]byte("x"), nil); !errors.Is(err, ErrTxDone) {
		t.Fatal("write after commit allowed")
	}
	if err := tx.Delete([]byte("x")); !errors.Is(err, ErrTxDone) {
		t.Fatal("delete after commit allowed")
	}
}

func TestReadCachePopulatedFromDC(t *testing.T) {
	dc := newMemDC()
	dc.m["cold"] = []byte("disk-value")
	c := newTC(t, dc)
	r1, _ := c.Begin()
	if v, ok, _ := r1.Read([]byte("cold")); !ok || string(v) != "disk-value" {
		t.Fatalf("cold read = %q,%v", v, ok)
	}
	if dc.gets != 1 {
		t.Fatalf("DC gets = %d, want 1", dc.gets)
	}
	// Second read: served from the read cache, no DC access.
	r2, _ := c.Begin()
	if v, ok, _ := r2.Read([]byte("cold")); !ok || string(v) != "disk-value" {
		t.Fatalf("cached read = %q,%v", v, ok)
	}
	if dc.gets != 1 {
		t.Fatalf("DC gets = %d after cached read, want 1", dc.gets)
	}
	if c.Stats().ReadCacheHits.Value() != 1 {
		t.Fatal("read-cache hit not counted")
	}
}

func TestCommitInvalidatesReadCache(t *testing.T) {
	dc := newMemDC()
	dc.m["k"] = []byte("old")
	c := newTC(t, dc)
	r, _ := c.Begin()
	r.Read([]byte("k")) // populate cache
	w, _ := c.Begin()
	w.Write([]byte("k"), []byte("new"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	c.GC() // drop the version so the read must use cache/DC
	r2, _ := c.Begin()
	if v, _, _ := r2.Read([]byte("k")); string(v) != "new" {
		t.Fatalf("post-GC read = %q, want new (stale cache not invalidated?)", v)
	}
}

func TestGCDropsGloballyVisibleVersions(t *testing.T) {
	c := newTC(t, newMemDC())
	for i := 0; i < 100; i++ {
		tx, _ := c.Begin()
		tx.Write([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if c.VersionCount() != 100 {
		t.Fatalf("VersionCount = %d", c.VersionCount())
	}
	c.GC()
	if c.VersionCount() != 0 {
		t.Fatalf("VersionCount after GC = %d, want 0 (no active tx)", c.VersionCount())
	}
	if c.Stats().VersionsDropped.Value() != 100 {
		t.Fatalf("dropped = %d", c.Stats().VersionsDropped.Value())
	}
}

func TestGCRespectsActiveSnapshots(t *testing.T) {
	dc := newMemDC()
	c := newTC(t, dc)
	tx, _ := c.Begin()
	tx.Write([]byte("k"), []byte("v1"))
	tx.Commit()
	reader, _ := c.Begin() // snapshot at v1
	w, _ := c.Begin()
	w.Write([]byte("k"), []byte("v2"))
	w.Commit()
	c.GC()
	// Reader must still see v1 (version kept, or served consistently).
	if v, ok, _ := reader.Read([]byte("k")); !ok || string(v) != "v1" {
		t.Fatalf("snapshot after GC = %q,%v, want v1", v, ok)
	}
}

func TestRecoveryReplaysCommittedOnly(t *testing.T) {
	logDev := ssd.New(ssd.SamsungSSD)
	dc := newMemDC()
	c, err := New(Config{DC: dc, LogDevice: logDev})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tx, _ := c.Begin()
		tx.Write(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 16))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// An uncommitted transaction must not be replayed.
	loser, _ := c.Begin()
	loser.Write([]byte("uncommitted"), []byte("x"))
	// (never committed)
	// A deleted key.
	d, _ := c.Begin()
	d.Delete(workload.Key(7))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": replay into a fresh DC.
	dc2 := newMemDC()
	res, err := Recover(logDev, dc2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTS == 0 || res.Applied == 0 {
		t.Fatalf("maxTS=%d applied=%d", res.MaxTS, res.Applied)
	}
	for i := 0; i < 50; i++ {
		v, ok, _ := dc2.Get(workload.Key(uint64(i)))
		if i == 7 {
			if ok {
				t.Fatal("deleted key resurrected by recovery")
			}
			continue
		}
		if !ok || !bytes.Equal(v, workload.ValueFor(uint64(i), 16)) {
			t.Fatalf("recovered key %d wrong (ok=%v)", i, ok)
		}
	}
	if _, ok, _ := dc2.Get([]byte("uncommitted")); ok {
		t.Fatal("uncommitted write replayed")
	}
}

func TestTornLogTailIgnored(t *testing.T) {
	logDev := ssd.New(ssd.SamsungSSD)
	dc := newMemDC()
	c, _ := New(Config{DC: dc, LogDevice: logDev})
	tx, _ := c.Begin()
	tx.Write([]byte("good"), []byte("1"))
	tx.Commit()
	c.Close()
	// Append garbage that looks like a frame header claiming more bytes.
	tail := logDev.HighWater()
	logDev.WriteAt(tail, []byte{rlogMagic, 0, 0, 1, 0, 0, 0, 0, 0}, nil)

	dc2 := newMemDC()
	if res, err := Recover(logDev, dc2); err != nil || res.Applied != 1 {
		t.Fatalf("applied=%d err=%v", res.Applied, err)
	}
}

func TestEndToEndWithBwTree(t *testing.T) {
	// Full Deuteronomy stack: TC over Bw-tree over LLAMA over simulated SSD.
	dataDev := ssd.New(ssd.SamsungSSD)
	logDev := ssd.New(ssd.SamsungSSD)
	st, err := logstore.Open(logstore.Config{Device: dataDev, BufferBytes: 1 << 14, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := bwtree.New(bwtree.Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{DC: tree, LogDevice: logDev})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		tx, _ := c.Begin()
		tx.Write(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 32))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	c.GC() // force reads down to the caches/DC
	// Evict all pages: reads exercise the whole path.
	for _, pid := range tree.Pages() {
		if err := tree.EvictPage(pid, false); err != nil {
			t.Fatal(err)
		}
	}
	tx, _ := c.Begin()
	for i := 0; i < n; i++ {
		v, ok, err := tx.Read(workload.Key(uint64(i)))
		if err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, workload.ValueFor(uint64(i), 32)) {
			t.Fatalf("key %d corrupt", i)
		}
	}
	// Crash-recover the TC log into a fresh Bw-tree and verify.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	dev2 := ssd.New(ssd.SamsungSSD)
	st2, _ := logstore.Open(logstore.Config{Device: dev2, BufferBytes: 1 << 14, SegmentBytes: 1 << 16})
	tree2, _ := bwtree.New(bwtree.Config{Store: st2})
	if res, err := Recover(logDev, tree2); err != nil || res.Applied != n {
		t.Fatalf("applied=%d err=%v", res.Applied, err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := tree2.Get(workload.Key(uint64(i)))
		if err != nil || !ok || !bytes.Equal(v, workload.ValueFor(uint64(i), 32)) {
			t.Fatalf("recovered key %d wrong (ok=%v err=%v)", i, ok, err)
		}
	}
}

func TestConcurrentTransactions(t *testing.T) {
	c := newTC(t, newMemDC())
	var wg sync.WaitGroup
	var commits, conflicts sync.Map
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tx, err := c.Begin()
				if err != nil {
					t.Errorf("begin: %v", err)
					return
				}
				key := []byte(fmt.Sprintf("k%d", i%20))
				tx.Read(key)
				tx.Write(key, []byte(fmt.Sprintf("w%d-%d", w, i)))
				switch err := tx.Commit(); {
				case err == nil:
					commits.Store(fmt.Sprintf("%d-%d", w, i), true)
				case errors.Is(err, ErrConflict):
					conflicts.Store(fmt.Sprintf("%d-%d", w, i), true)
				default:
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	nCommits := 0
	commits.Range(func(_, _ any) bool { nCommits++; return true })
	if nCommits == 0 {
		t.Fatal("no transactions committed")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{LogDevice: ssd.New(ssd.SamsungSSD)}); err == nil {
		t.Fatal("nil DC accepted")
	}
	if _, err := New(Config{DC: newMemDC()}); err == nil {
		t.Fatal("nil log device accepted")
	}
}

func TestClosedTC(t *testing.T) {
	c := newTC(t, newMemDC())
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("double close errored")
	}
	if _, err := c.Begin(); !errors.Is(err, ErrClosed) {
		t.Fatalf("begin after close = %v", err)
	}
}

func TestGroupCommitBatchesLogWrites(t *testing.T) {
	logDev := ssd.New(ssd.SamsungSSD)
	c, _ := New(Config{DC: newMemDC(), LogDevice: logDev})
	for i := 0; i < 200; i++ {
		tx, _ := c.Begin()
		tx.Write(workload.Key(uint64(i)), []byte("v"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// 200 commits should produce very few device writes (group commit).
	if w := logDev.Stats().Writes.Value(); w > 5 {
		t.Fatalf("log device writes = %d for 200 commits", w)
	}
}

func TestNoLostUpdatesUnderConcurrency(t *testing.T) {
	// The classic lost-update check: concurrent read-modify-write
	// transactions on one counter under snapshot isolation with
	// first-committer-wins. Every successful commit must be reflected:
	// final counter == number of commits.
	c := newTC(t, newMemDC())
	init, _ := c.Begin()
	init.Write([]byte("counter"), []byte("0"))
	if err := init.Commit(); err != nil {
		t.Fatal(err)
	}
	var commits atomic.Int64
	var wg sync.WaitGroup
	// A background GC makes the data component authoritative for cold
	// versions, so commit-publication ordering bugs surface as lost
	// updates here.
	stopGC := make(chan struct{})
	var gcWG sync.WaitGroup
	gcWG.Add(1)
	go func() {
		defer gcWG.Done()
		for {
			select {
			case <-stopGC:
				return
			default:
				c.GC()
			}
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for attempt := 0; attempt < 200; attempt++ {
					tx, err := c.Begin()
					if err != nil {
						t.Error(err)
						return
					}
					v, ok, err := tx.Read([]byte("counter"))
					if err != nil || !ok {
						t.Errorf("read: ok=%v err=%v", ok, err)
						return
					}
					n, err := strconv.Atoi(string(v))
					if err != nil {
						t.Error(err)
						return
					}
					tx.Write([]byte("counter"), []byte(strconv.Itoa(n+1)))
					err = tx.Commit()
					if err == nil {
						commits.Add(1)
						break
					}
					if !errors.Is(err, ErrConflict) {
						t.Errorf("commit: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stopGC)
	gcWG.Wait()
	c.GC() // force the final read down to the data component
	final, _ := c.Begin()
	v, ok, err := final.Read([]byte("counter"))
	if err != nil || !ok {
		t.Fatalf("final read: ok=%v err=%v", ok, err)
	}
	n, err := strconv.Atoi(string(v))
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != commits.Load() {
		t.Fatalf("counter = %d, commits = %d: lost updates", n, commits.Load())
	}
	if commits.Load() == 0 {
		t.Fatal("nothing committed")
	}
}

func TestSnapshotSurvivesGCAndRecommit(t *testing.T) {
	// The nasty interleaving: a reader's visible version is GC-truncated
	// (globally visible, so the DC held it), then a newer commit
	// overwrites the DC. The commit must re-capture the pre-image into
	// the version store so the reader still sees its snapshot.
	dc := newMemDC()
	c := newTC(t, dc)
	w1, _ := c.Begin()
	w1.Write([]byte("k"), []byte("v1"))
	if err := w1.Commit(); err != nil {
		t.Fatal(err)
	}
	reader, _ := c.Begin() // snapshot sees v1
	c.GC()                 // v1 globally visible -> truncated to the DC
	w2, _ := c.Begin()
	w2.Write([]byte("k"), []byte("v2"))
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := reader.Read([]byte("k")); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("snapshot after GC+recommit = %q,%v,%v, want v1", v, ok, err)
	}
	// A fresh snapshot sees v2.
	r2, _ := c.Begin()
	if v, _, _ := r2.Read([]byte("k")); string(v) != "v2" {
		t.Fatalf("fresh read = %q, want v2", v)
	}
	// Same story for a key that is deleted after truncation.
	w3, _ := c.Begin()
	w3.Write([]byte("gone"), []byte("old"))
	if err := w3.Commit(); err != nil {
		t.Fatal(err)
	}
	r3, _ := c.Begin()
	c.GC()
	d, _ := c.Begin()
	d.Delete([]byte("gone"))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := r3.Read([]byte("gone")); err != nil || !ok || string(v) != "old" {
		t.Fatalf("snapshot of deleted key = %q,%v,%v, want old", v, ok, err)
	}
	r4, _ := c.Begin()
	if _, ok, _ := r4.Read([]byte("gone")); ok {
		t.Fatal("fresh snapshot sees deleted key")
	}
}

func TestCorruptLogRecordFailsRecovery(t *testing.T) {
	logDev := ssd.New(ssd.SamsungSSD)
	c, _ := New(Config{DC: newMemDC(), LogDevice: logDev})
	tx, _ := c.Begin()
	tx.Write([]byte("k"), []byte("v"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the committed record's body (past the 9-byte
	// frame header): the checksum must catch it and recovery must stop
	// cleanly rather than apply garbage.
	raw, err := logDev.ReadAt(0, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xFF
	if err := logDev.WriteAt(0, raw, nil); err != nil {
		t.Fatal(err)
	}
	dc := newMemDC()
	res, err := Recover(logDev, dc)
	if err != nil {
		t.Fatalf("recovery errored instead of stopping at the bad frame: %v", err)
	}
	if res.Applied != 0 || res.MaxTS != 0 {
		t.Fatalf("corrupt record applied: n=%d ts=%d", res.Applied, res.MaxTS)
	}
	if res.Replay.Reason != ReplayBadCRC || res.Replay.TruncatedAt != 0 {
		t.Fatalf("replay summary = %v, want bad-crc at 0", res.Replay)
	}
}

func TestCommitSurfacesDCError(t *testing.T) {
	dc := &failingDC{memDC: newMemDC()}
	c := newTC(t, dc)
	tx, _ := c.Begin()
	tx.Write([]byte("k"), []byte("v"))
	dc.fail = true
	if err := tx.Commit(); err == nil {
		t.Fatal("DC write failure swallowed at commit")
	}
	// The TC remains usable for subsequent transactions.
	dc.fail = false
	tx2, _ := c.Begin()
	tx2.Write([]byte("k2"), []byte("v2"))
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

type failingDC struct {
	*memDC
	fail bool
}

func (d *failingDC) BlindWrite(key, val []byte) error {
	if d.fail {
		return errors.New("injected DC failure")
	}
	return d.memDC.BlindWrite(key, val)
}
