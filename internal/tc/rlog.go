// Package tc implements a Deuteronomy-style transaction component (paper
// Figure 6 and Section 6.3): multi-version concurrency control whose
// version store doubles as a record cache, a redo recovery log whose
// buffers are retained in memory as an updated-record cache, and a
// log-structured read cache for records fetched from the data component.
//
// All transactional updates reach the data component as blind updates
// (Section 6.2): the TC reads through its caches, and committed values are
// posted to the Bw-tree without reading the target page.
package tc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"costperf/internal/ssd"
)

// redoEntry is one write of a committed transaction.
type redoEntry struct {
	key      []byte
	val      []byte
	isDelete bool
}

// commitRecord is the unit appended to the recovery log: all writes of one
// transaction plus its commit timestamp.
type commitRecord struct {
	commitTS uint64
	entries  []redoEntry
}

const rlogMagic = 0xC7

// rlog is the redo recovery log: records accumulate in an in-memory buffer
// (which the TC retains as a record cache) and flush to the device in
// large writes.
type rlog struct {
	mu      sync.Mutex
	dev     *ssd.Device
	buf     []byte
	start   int64 // device offset of buf[0]
	bufCap  int
	flushes int64
}

func newRlog(dev *ssd.Device, bufBytes int) *rlog {
	if bufBytes <= 0 {
		bufBytes = 1 << 20
	}
	return &rlog{dev: dev, buf: make([]byte, 0, bufBytes), bufCap: bufBytes}
}

func encodeCommit(rec commitRecord) []byte {
	var body []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		body = append(body, tmp[:n]...)
	}
	putB := func(b []byte) {
		put(uint64(len(b)))
		body = append(body, b...)
	}
	put(rec.commitTS)
	put(uint64(len(rec.entries)))
	for _, e := range rec.entries {
		flag := byte(0)
		if e.isDelete {
			flag = 1
		}
		body = append(body, flag)
		putB(e.key)
		if !e.isDelete {
			putB(e.val)
		}
	}
	// Frame: magic | len(4) | crc(4) | body
	out := make([]byte, 9+len(body))
	out[0] = rlogMagic
	binary.BigEndian.PutUint32(out[1:], uint32(len(body)))
	binary.BigEndian.PutUint32(out[5:], crc32.ChecksumIEEE(body))
	copy(out[9:], body)
	return out
}

func decodeCommit(body []byte) (commitRecord, error) {
	var rec commitRecord
	pos := 0
	get := func() (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, errors.New("tc: truncated log record")
		}
		pos += n
		return v, nil
	}
	getB := func() ([]byte, error) {
		l, err := get()
		if err != nil {
			return nil, err
		}
		if pos+int(l) > len(body) {
			return nil, errors.New("tc: truncated log record")
		}
		b := append([]byte(nil), body[pos:pos+int(l)]...)
		pos += int(l)
		return b, nil
	}
	ts, err := get()
	if err != nil {
		return rec, err
	}
	rec.commitTS = ts
	n, err := get()
	if err != nil {
		return rec, err
	}
	for i := uint64(0); i < n; i++ {
		if pos >= len(body) {
			return rec, errors.New("tc: truncated log record")
		}
		e := redoEntry{isDelete: body[pos] == 1}
		pos++
		if e.key, err = getB(); err != nil {
			return rec, err
		}
		if !e.isDelete {
			if e.val, err = getB(); err != nil {
				return rec, err
			}
		}
		rec.entries = append(rec.entries, e)
	}
	return rec, nil
}

// append stages a commit record; it flushes automatically when the buffer
// fills.
func (l *rlog) append(rec commitRecord) error {
	framed := encodeCommit(rec)
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf)+len(framed) > l.bufCap {
		if err := l.flushLocked(); err != nil {
			return err
		}
	}
	l.buf = append(l.buf, framed...)
	return nil
}

// flush forces buffered records to the device (group commit boundary).
func (l *rlog) flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *rlog) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if err := l.dev.WriteAt(l.start, l.buf, nil); err != nil {
		return err
	}
	l.start += int64(len(l.buf))
	l.buf = l.buf[:0]
	l.flushes++
	return nil
}

// replay scans the durable log in order, invoking fn per commit record.
// It stops silently at the first torn or unwritten frame.
func replayLog(dev *ssd.Device, fn func(commitRecord) error) error {
	off := int64(0)
	hw := dev.HighWater()
	for off+9 <= hw {
		hdr, err := dev.ReadAt(off, 9, nil)
		if err != nil {
			return err
		}
		if hdr[0] != rlogMagic {
			return nil
		}
		blen := int64(binary.BigEndian.Uint32(hdr[1:]))
		sum := binary.BigEndian.Uint32(hdr[5:])
		if off+9+blen > hw {
			return nil // torn tail
		}
		body, err := dev.ReadAt(off+9, int(blen), nil)
		if err != nil {
			return err
		}
		if crc32.ChecksumIEEE(body) != sum {
			return nil // torn write
		}
		rec, err := decodeCommit(body)
		if err != nil {
			return fmt.Errorf("tc: corrupt log record at %d: %w", off, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += 9 + blen
	}
	return nil
}
