// Package tc implements a Deuteronomy-style transaction component (paper
// Figure 6 and Section 6.3): multi-version concurrency control whose
// version store doubles as a record cache, a redo recovery log whose
// buffers are retained in memory as an updated-record cache, and a
// log-structured read cache for records fetched from the data component.
//
// All transactional updates reach the data component as blind updates
// (Section 6.2): the TC reads through its caches, and committed values are
// posted to the Bw-tree without reading the target page.
package tc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/ssd"
)

// redoEntry is one write of a committed transaction.
type redoEntry struct {
	key      []byte
	val      []byte
	isDelete bool
}

// commitRecord is the unit appended to the recovery log: all writes of one
// transaction plus its commit timestamp.
type commitRecord struct {
	commitTS uint64
	entries  []redoEntry
}

const rlogMagic = 0xC7

// rlog is the redo recovery log: records accumulate in an in-memory buffer
// (which the TC retains as a record cache) and flush to the device in
// large writes.
type rlog struct {
	mu      sync.Mutex
	dev     ssd.Dev
	buf     []byte
	start   int64 // device offset of buf[0]
	bufCap  int
	flushes int64

	retry  fault.RetryPolicy
	meter  *metrics.RetryStats // owned by the TC's Stats (may be nil)
	health *metrics.Health     // owned by the TC's Stats (may be nil)
}

func newRlog(dev ssd.Dev, bufBytes int, retry fault.RetryPolicy, meter *metrics.RetryStats, health *metrics.Health) *rlog {
	if bufBytes <= 0 {
		bufBytes = 1 << 20
	}
	return &rlog{
		dev: dev, buf: make([]byte, 0, bufBytes), bufCap: bufBytes,
		retry: retry, meter: meter, health: health,
	}
}

func (l *rlog) degraded() bool { return l.health != nil && l.health.Degraded() }

func encodeCommit(rec commitRecord) []byte {
	var body []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		body = append(body, tmp[:n]...)
	}
	putB := func(b []byte) {
		put(uint64(len(b)))
		body = append(body, b...)
	}
	put(rec.commitTS)
	put(uint64(len(rec.entries)))
	for _, e := range rec.entries {
		flag := byte(0)
		if e.isDelete {
			flag = 1
		}
		body = append(body, flag)
		putB(e.key)
		if !e.isDelete {
			putB(e.val)
		}
	}
	// Frame: magic | len(4) | crc(4) | body
	out := make([]byte, 9+len(body))
	out[0] = rlogMagic
	binary.BigEndian.PutUint32(out[1:], uint32(len(body)))
	binary.BigEndian.PutUint32(out[5:], crc32.ChecksumIEEE(body))
	copy(out[9:], body)
	return out
}

func decodeCommit(body []byte) (commitRecord, error) {
	var rec commitRecord
	pos := 0
	get := func() (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, errors.New("tc: truncated log record")
		}
		pos += n
		return v, nil
	}
	getB := func() ([]byte, error) {
		l, err := get()
		if err != nil {
			return nil, err
		}
		if pos+int(l) > len(body) {
			return nil, errors.New("tc: truncated log record")
		}
		b := append([]byte(nil), body[pos:pos+int(l)]...)
		pos += int(l)
		return b, nil
	}
	ts, err := get()
	if err != nil {
		return rec, err
	}
	rec.commitTS = ts
	n, err := get()
	if err != nil {
		return rec, err
	}
	for i := uint64(0); i < n; i++ {
		if pos >= len(body) {
			return rec, errors.New("tc: truncated log record")
		}
		e := redoEntry{isDelete: body[pos] == 1}
		pos++
		if e.key, err = getB(); err != nil {
			return rec, err
		}
		if !e.isDelete {
			if e.val, err = getB(); err != nil {
				return rec, err
			}
		}
		rec.entries = append(rec.entries, e)
	}
	return rec, nil
}

// append stages a commit record; it flushes automatically when the buffer
// fills.
func (l *rlog) append(rec commitRecord) error {
	framed := encodeCommit(rec)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.degraded() {
		return ErrDegraded
	}
	if len(l.buf)+len(framed) > l.bufCap {
		if err := l.flushLocked(); err != nil {
			return err
		}
	}
	l.buf = append(l.buf, framed...)
	return nil
}

// flush forces buffered records to the device (group commit boundary).
func (l *rlog) flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *rlog) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if l.degraded() {
		return ErrDegraded
	}
	// A retried flush rewrites the whole buffer at the same offset, so a
	// torn first attempt is simply overwritten.
	err := l.retry.Do(l.meter, func() error {
		return l.dev.WriteAt(l.start, l.buf, nil)
	})
	if err != nil {
		if l.health != nil && fault.Classify(err) == fault.ClassPersistent {
			l.health.Degrade(fmt.Sprintf("log flush at %d: %v", l.start, err))
		}
		return err
	}
	l.start += int64(len(l.buf))
	l.buf = l.buf[:0]
	l.flushes++
	return nil
}

// ReplayReason explains why log replay stopped where it did.
type ReplayReason string

const (
	// ReplayCleanEnd: the scan consumed every written byte; the log ends at
	// a record boundary (or the remaining tail was never written).
	ReplayCleanEnd ReplayReason = "clean-end"
	// ReplayTornTail: written bytes remain after the last complete record,
	// but not enough for a whole frame — a flush torn by power loss.
	ReplayTornTail ReplayReason = "torn-tail"
	// ReplayBadCRC: a full frame was present but its body failed the
	// checksum — a torn or corrupted write inside the frame.
	ReplayBadCRC ReplayReason = "bad-crc"
	// ReplayBadMagic: the byte at the truncation offset is neither a frame
	// magic nor zero fill — foreign or corrupted data in the log region.
	ReplayBadMagic ReplayReason = "bad-magic"
)

// ReplaySummary reports how far log replay got and why it stopped.
type ReplaySummary struct {
	// Records is the number of complete commit records applied.
	Records int
	// TruncatedAt is the byte offset where replay stopped: the end of the
	// last complete record (everything at and beyond it was discarded).
	TruncatedAt int64
	// Reason explains the stop.
	Reason ReplayReason
}

// String renders the summary for logs.
func (s ReplaySummary) String() string {
	return fmt.Sprintf("replayed %d commit record(s), log truncated at byte %d (%s)",
		s.Records, s.TruncatedAt, s.Reason)
}

// replayLog scans the durable log in order, invoking fn per commit record,
// and reports where and why the scan stopped. Device reads retry transient
// faults under the given policy.
func replayLog(dev ssd.Dev, retry fault.RetryPolicy, m *metrics.RetryStats, fn func(commitRecord) error) (ReplaySummary, error) {
	return replayRange(dev, 0, 0, retry, m, func(rec commitRecord, _ int64) error {
		return fn(rec)
	})
}

// replayRange scans log records in [from, to); from must be a record
// boundary and to is an inclusive upper bound on record ends (0 = the
// device high-water mark). fn receives each record together with its end
// offset (the LSN after the record — the batch boundaries log shipping and
// PITR navigate by). A record that is complete on the device but ends past
// the bound stops the scan cleanly; only damage inside the bound reports a
// torn or corrupt stop.
func replayRange(dev ssd.Dev, from, to int64, retry fault.RetryPolicy, m *metrics.RetryStats, fn func(commitRecord, int64) error) (ReplaySummary, error) {
	sum := ReplaySummary{Reason: ReplayCleanEnd, TruncatedAt: from}
	off := from
	hw := dev.HighWater()
	limit := hw
	if to > 0 && to < hw {
		limit = to
	}
	readAt := func(o int64, n int) ([]byte, error) {
		var out []byte
		err := retry.Do(m, func() error {
			var rerr error
			out, rerr = dev.ReadAt(o, n, nil)
			return rerr
		})
		return out, err
	}
	for off+9 <= limit {
		hdr, err := readAt(off, 9)
		if err != nil {
			return sum, err
		}
		if hdr[0] != rlogMagic {
			// Zero bytes inside the written high-water are the zero-filled
			// remainder of a torn flush; anything else is foreign data.
			if hdr[0] == 0 {
				sum.Reason = ReplayTornTail
			} else {
				sum.Reason = ReplayBadMagic
			}
			sum.TruncatedAt = off
			return sum, nil
		}
		blen := int64(binary.BigEndian.Uint32(hdr[1:]))
		crc := binary.BigEndian.Uint32(hdr[5:])
		if blen == 0 {
			// encodeCommit never produces an empty body; a zero length is
			// the zero-filled remainder of a flush torn inside the header
			// (an empty body would also pass the CRC check, since the CRC
			// field reads as zero too).
			sum.TruncatedAt, sum.Reason = off, ReplayTornTail
			return sum, nil
		}
		if off+9+blen > limit {
			if off+9+blen > hw {
				sum.TruncatedAt, sum.Reason = off, ReplayTornTail
			}
			// Otherwise the record is intact but past the caller's bound:
			// a clean stop at the last in-bound boundary.
			return sum, nil
		}
		body, err := readAt(off+9, int(blen))
		if err != nil {
			return sum, err
		}
		if crc32.ChecksumIEEE(body) != crc {
			sum.TruncatedAt, sum.Reason = off, ReplayBadCRC
			return sum, nil
		}
		rec, err := decodeCommit(body)
		if err != nil {
			return sum, fmt.Errorf("tc: corrupt log record at %d: %v (%w)", off, err, fault.ErrCorrupt)
		}
		if err := fn(rec, off+9+blen); err != nil {
			return sum, err
		}
		sum.Records++
		off += 9 + blen
		sum.TruncatedAt = off
	}
	// Written bytes remain past the last complete record but inside the
	// scan bound: a final flush was torn mid-header. Bytes past a caller
	// bound are simply out of scope, not damage.
	if limit == hw && hw > off {
		sum.Reason = ReplayTornTail
	}
	sum.TruncatedAt = off
	return sum, nil
}
