package tc

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"costperf/internal/bwtree"
	"costperf/internal/ssd"
)

// scanDC wraps memDC with an ordered Scan for scan tests.
type scanDC struct{ *memDC }

func (d *scanDC) Scan(start []byte, limit int, fn func(k, v []byte) bool) error {
	d.mu.Lock()
	keys := make([]string, 0, len(d.m))
	for k := range d.m {
		if bytes.Compare([]byte(k), start) >= 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	snapshot := make(map[string][]byte, len(keys))
	for _, k := range keys {
		snapshot[k] = d.m[k]
	}
	d.mu.Unlock()
	n := 0
	for _, k := range keys {
		if limit > 0 && n >= limit {
			return nil
		}
		if !fn([]byte(k), snapshot[k]) {
			return nil
		}
		n++
	}
	return nil
}

func newScanTC(t *testing.T) (*TC, *scanDC) {
	t.Helper()
	dc := &scanDC{newMemDC()}
	c, err := New(Config{DC: dc, LogDevice: ssd.New(ssd.SamsungSSD)})
	if err != nil {
		t.Fatal(err)
	}
	return c, dc
}

func collect(t *testing.T, tx *Tx, start string, limit int) []string {
	t.Helper()
	var got []string
	if err := tx.Scan([]byte(start), limit, func(k, v []byte) bool {
		got = append(got, string(k)+"="+string(v))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestScanNoScannerDC(t *testing.T) {
	c := newTC(t, newMemDC()) // plain memDC has no Scan
	tx, _ := c.Begin()
	if err := tx.Scan(nil, 0, func(_, _ []byte) bool { return true }); !errors.Is(err, ErrNoScan) {
		t.Fatalf("err = %v, want ErrNoScan", err)
	}
}

func TestScanMergesAllSources(t *testing.T) {
	c, dc := newScanTC(t)
	// DC-only data (pre-existing, no versions).
	dc.m["a"] = []byte("dc")
	dc.m["d"] = []byte("dc")
	// Committed version (also posted to DC as a blind update).
	w, _ := c.Begin()
	w.Write([]byte("b"), []byte("committed"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	tx, _ := c.Begin()
	// Own write, not yet committed.
	tx.Write([]byte("c"), []byte("own"))
	got := collect(t, tx, "", 0)
	want := []string{"a=dc", "b=committed", "c=own", "d=dc"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
}

func TestScanSnapshotVisibility(t *testing.T) {
	c, dc := newScanTC(t)
	dc.m["k1"] = []byte("v0")
	w0, _ := c.Begin()
	w0.Write([]byte("k2"), []byte("v0"))
	if err := w0.Commit(); err != nil {
		t.Fatal(err)
	}
	reader, _ := c.Begin()
	// Post-snapshot commits: an overwrite, a delete, and a brand-new key.
	w, _ := c.Begin()
	w.Write([]byte("k2"), []byte("v1"))
	w.Write([]byte("k3"), []byte("new"))
	w.Delete([]byte("k1")) // DC still has k1? blind delete removes it from DC
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, reader, "", 0)
	// The snapshot sees k2=v0; k3 invisible. k1's delete postdates the
	// snapshot, so the version store must resurrect it... but k1 had no
	// version (DC-only), so the delete version with commitTS > snapshot
	// leaves the pre-image to the DC — which no longer has it. This is the
	// documented limit of blind updates to the DC: the version store only
	// guarantees snapshot reads for data that has a version at-or-below
	// the snapshot or is untouched. k2 must be v0 and k3 absent.
	for _, g := range got {
		if g == "k2=v1" {
			t.Fatalf("snapshot saw post-snapshot overwrite: %v", got)
		}
		if g == "k3=new" {
			t.Fatalf("snapshot saw post-snapshot insert: %v", got)
		}
	}
	found := false
	for _, g := range got {
		if g == "k2=v0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot missed k2=v0: %v", got)
	}
	// A fresh snapshot sees the new world.
	r2, _ := c.Begin()
	got2 := collect(t, r2, "", 0)
	want := []string{"k2=v1", "k3=new"}
	if fmt.Sprint(got2) != fmt.Sprint(want) {
		t.Fatalf("fresh scan = %v, want %v", got2, want)
	}
}

func TestScanOwnDeleteMasksDC(t *testing.T) {
	c, dc := newScanTC(t)
	dc.m["x"] = []byte("dc")
	tx, _ := c.Begin()
	tx.Delete([]byte("x"))
	got := collect(t, tx, "", 0)
	if len(got) != 0 {
		t.Fatalf("scan = %v, want empty (own delete masks DC)", got)
	}
}

func TestScanStartAndLimit(t *testing.T) {
	c, dc := newScanTC(t)
	for i := 0; i < 10; i++ {
		dc.m[fmt.Sprintf("k%02d", i)] = []byte("v")
	}
	tx, _ := c.Begin()
	tx.Write([]byte("k035"), []byte("own")) // sorts between k03 and k04
	got := collect(t, tx, "k03", 3)
	want := []string{"k03=v", "k035=own", "k04=v"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
}

func TestScanEarlyStop(t *testing.T) {
	c, dc := newScanTC(t)
	for i := 0; i < 10; i++ {
		dc.m[fmt.Sprintf("k%02d", i)] = []byte("v")
	}
	tx, _ := c.Begin()
	n := 0
	if err := tx.Scan(nil, 0, func(_, _ []byte) bool { n++; return n < 4 }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("visited %d", n)
	}
}

func TestScanOverBwTree(t *testing.T) {
	// Full-stack: transactional scans over the real data component.
	tree, err := bwtree.New(bwtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{DC: tree, LogDevice: ssd.New(ssd.SamsungSSD)})
	if err != nil {
		t.Fatal(err)
	}
	setup, _ := c.Begin()
	for i := 0; i < 500; i++ {
		setup.Write([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	c.GC() // push visibility authority to the DC
	tx, _ := c.Begin()
	tx.Write([]byte("key-0100x"), []byte("inserted"))
	tx.Delete([]byte("key-0101"))
	var got []string
	if err := tx.Scan([]byte("key-0100"), 4, func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"key-0100", "key-0100x", "key-0102", "key-0103"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	if c.Stats().Scans.Value() == 0 {
		t.Fatal("scan not counted")
	}
}

func TestScanDoneTx(t *testing.T) {
	c, _ := newScanTC(t)
	tx, _ := c.Begin()
	tx.Abort()
	if err := tx.Scan(nil, 0, func(_, _ []byte) bool { return true }); !errors.Is(err, ErrTxDone) {
		t.Fatalf("err = %v", err)
	}
}

// Property: a committed-state scan equals a sorted model of all commits.
func TestScanModelProperty(t *testing.T) {
	type op struct {
		Key uint8
		Val uint16
		Del bool
	}
	f := func(ops []op) bool {
		c, _ := func() (*TC, *scanDC) {
			dc := &scanDC{newMemDC()}
			tc, err := New(Config{DC: dc, LogDevice: ssd.New(ssd.SamsungSSD)})
			if err != nil {
				panic(err)
			}
			return tc, dc
		}()
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("k%03d", o.Key)
			v := fmt.Sprintf("v%d", o.Val)
			tx, err := c.Begin()
			if err != nil {
				return false
			}
			if o.Del {
				tx.Delete([]byte(k))
				delete(model, k)
			} else {
				tx.Write([]byte(k), []byte(v))
				model[k] = v
			}
			if err := tx.Commit(); err != nil {
				return false
			}
		}
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		tx, err := c.Begin()
		if err != nil {
			return false
		}
		i := 0
		okAll := true
		err = tx.Scan(nil, 0, func(k, v []byte) bool {
			if i >= len(keys) || string(k) != keys[i] || string(v) != model[keys[i]] {
				okAll = false
				return false
			}
			i++
			return true
		})
		return err == nil && okAll && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
