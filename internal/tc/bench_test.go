package tc

import (
	"testing"

	"costperf/internal/ssd"
	"costperf/internal/workload"
)

func benchTC(b *testing.B) *TC {
	b.Helper()
	c, err := New(Config{DC: newBenchDC(), LogDevice: ssd.New(ssd.SamsungSSD)})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// newBenchDC avoids testing.T plumbing in benchmarks.
func newBenchDC() *memDC { return newMemDC() }

func BenchmarkCommitSingleWrite(b *testing.B) {
	c := benchTC(b)
	val := workload.ValueFor(1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := c.Begin()
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.Write(workload.Key(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadVersionStoreHit(b *testing.B) {
	c := benchTC(b)
	const keys = 10000
	for i := uint64(0); i < keys; i++ {
		tx, _ := c.Begin()
		tx.Write(workload.Key(i), workload.ValueFor(i, 100))
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := c.Begin()
		if _, _, err := tx.Read(workload.Key(uint64(i) % keys)); err != nil {
			b.Fatal(err)
		}
		tx.Abort()
	}
}

func BenchmarkReadThroughReadCache(b *testing.B) {
	dc := newBenchDC()
	const keys = 10000
	for i := uint64(0); i < keys; i++ {
		dc.m[string(workload.Key(i))] = workload.ValueFor(i, 100)
	}
	c, err := New(Config{DC: dc, LogDevice: ssd.New(ssd.SamsungSSD)})
	if err != nil {
		b.Fatal(err)
	}
	// Prime the read cache.
	warm, _ := c.Begin()
	for i := uint64(0); i < keys; i++ {
		if _, _, err := warm.Read(workload.Key(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := c.Begin()
		if _, _, err := tx.Read(workload.Key(uint64(i) % keys)); err != nil {
			b.Fatal(err)
		}
		tx.Abort()
	}
}

func BenchmarkRecoveryReplay(b *testing.B) {
	logDev := ssd.New(ssd.SamsungSSD)
	c, err := New(Config{DC: newBenchDC(), LogDevice: logDev})
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		tx, _ := c.Begin()
		tx.Write(workload.Key(i), workload.ValueFor(i, 50))
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Recover(logDev, newBenchDC()); err != nil {
			b.Fatal(err)
		}
	}
}
