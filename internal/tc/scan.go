package tc

import (
	"bytes"
	"sort"

	"costperf/internal/obs"
)

// Scanner is the optional range-scan capability of a data component.
// The Bw-tree implements it.
type Scanner interface {
	Scan(start []byte, limit int, fn func(key, val []byte) bool) error
}

// Scan visits key/value pairs visible at the transaction's snapshot in
// ascending key order from start, until fn returns false or limit pairs
// have been visited (limit <= 0 means unlimited). It requires the data
// component to implement Scanner.
//
// The scan merges three sources, newest first: the transaction's own
// writes, the MVCC version store filtered to the snapshot, and the data
// component. DC values are superseded by any version-store entry for the
// same key — including versions newer than the snapshot, whose presence
// means the DC already holds post-snapshot state and the version store is
// the authority for visibility.
func (t *Tx) Scan(start []byte, limit int, fn func(key, val []byte) bool) (err error) {
	if t.done {
		return ErrTxDone
	}
	sp := t.tc.cfg.Obs.Start(obs.OpScan)
	defer func() { sp.End(err) }()
	sc, ok := t.tc.cfg.DC.(Scanner)
	if !ok {
		return ErrNoScan
	}
	// The DC walk below always runs, so a snapshot scan escapes the TC's
	// caching tiers by construction.
	sp.Miss()
	// Collect the overlay: own writes + visible versions, with own writes
	// winning; record keys whose visible state is "absent".
	type overlayEntry struct {
		val     []byte
		deleted bool
	}
	overlay := map[string]overlayEntry{}
	t.tc.mu.Lock()
	for k, kv := range t.tc.mvcc {
		if bytes.Compare([]byte(k), start) < 0 {
			continue
		}
		decided := false
		for _, v := range kv.vs {
			if v.commitTS <= t.beginTS {
				overlay[k] = overlayEntry{val: v.val, deleted: v.isDelete}
				decided = true
				break
			}
		}
		if !decided && !kv.truncated {
			// Key created after the snapshot: invisible, and the DC may
			// already hold it — mask it.
			overlay[k] = overlayEntry{deleted: true}
		}
		// decided==false && truncated: the DC holds the globally visible
		// pre-image; let the DC supply it.
	}
	t.tc.mu.Unlock()
	for k, w := range t.writes {
		if bytes.Compare([]byte(k), start) < 0 {
			continue
		}
		overlay[k] = overlayEntry{val: w.val, deleted: w.isDelete}
	}

	// Sorted overlay keys for the merge.
	keys := make([]string, 0, len(overlay))
	for k := range overlay {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	visited := 0
	emit := func(k, v []byte) bool {
		if limit > 0 && visited >= limit {
			return false
		}
		if !fn(k, v) {
			return false
		}
		visited++
		return !(limit > 0 && visited >= limit)
	}
	oi := 0
	cont := true
	err = sc.Scan(start, 0, func(dk, dv []byte) bool {
		// Emit overlay keys strictly before the DC key.
		for oi < len(keys) && keys[oi] < string(dk) {
			e := overlay[keys[oi]]
			if !e.deleted {
				if !emit([]byte(keys[oi]), e.val) {
					cont = false
					return false
				}
			}
			oi++
		}
		// Same key: the overlay wins.
		if oi < len(keys) && keys[oi] == string(dk) {
			e := overlay[keys[oi]]
			oi++
			if e.deleted {
				return true
			}
			if !emit(dk, e.val) {
				cont = false
				return false
			}
			return true
		}
		if !emit(dk, dv) {
			cont = false
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	// Drain overlay keys beyond the DC's last key.
	for cont && oi < len(keys) {
		e := overlay[keys[oi]]
		if !e.deleted {
			if !emit([]byte(keys[oi]), e.val) {
				break
			}
		}
		oi++
	}
	t.tc.stats.Scans.Inc()
	return nil
}
