package wire

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"costperf/internal/shard"
)

// movedBackend wraps a backend and fails each key's first Put with a
// fenced-owner error — the stale-owner race surfacing at the wire layer.
type movedBackend struct {
	Backend
	mapper *shard.Router
	trip   atomic.Bool
}

func (b *movedBackend) Put(ctx context.Context, key, val []byte) error {
	if b.trip.Swap(false) {
		return shard.ErrMoved
	}
	return b.Backend.Put(ctx, key, val)
}

func (b *movedBackend) ShardMap() *shard.Map { return b.mapper.ShardMap() }

func TestMovedCrossesWireWithShardMap(t *testing.T) {
	r, err := shard.New(shard.Config{Shards: 4, Seed: 3})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	mb := &movedBackend{Backend: r, mapper: r}
	srv, err := NewServer(ServerConfig{Backend: mb})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cl := pipeServer(t, srv, ClientConfig{Seed: 9, RetryBase: time.Millisecond})

	ctx := context.Background()
	// Move a shard first so the map the client learns is post-cutover.
	m, err := r.Migrate(shard.MigrateConfig{Shard: 2})
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if err := m.Run(ctx); err != nil {
		t.Fatalf("migration: %v", err)
	}

	if _, _, ok := cl.ShardMap(); ok {
		t.Fatal("client claims a shard map before any MOVED")
	}
	mb.trip.Store(true)
	if err := cl.Put(ctx, []byte("k1"), []byte("v1")); err != nil {
		t.Fatalf("put through a MOVED: %v", err)
	}
	if got := cl.Stats().Moves.Value(); got != 1 {
		t.Fatalf("client Moves = %d, want 1", got)
	}
	if got := srv.Stats().Moves.Value(); got != 1 {
		t.Fatalf("server Moves = %d, want 1", got)
	}
	epoch, shards, ok := cl.ShardMap()
	if !ok || epoch != 1 || shards != 4 {
		t.Fatalf("client learned map (%d, %d, %v), want (1, 4, true)", epoch, shards, ok)
	}
	// The learned map is the full placement table, and it routes exactly
	// like the server's.
	cm := cl.Map()
	if cm == nil || cm.Validate() != nil {
		t.Fatalf("client Map() = %+v, want a valid placement table", cm)
	}
	for _, k := range [][]byte{[]byte("k1"), []byte("another"), []byte("zz")} {
		if got, want := cm.SlotOfKey(k), r.SlotOfKey(k); got != want {
			t.Fatalf("client map routes %q to %d, server to %d", k, got, want)
		}
	}
	// The retried write landed.
	v, found, err := cl.Get(ctx, []byte("k1"))
	if err != nil || !found || string(v) != "v1" {
		t.Fatalf("get after moved retry = %q/%v/%v", v, found, err)
	}
}

// noMapperBackend rejects each key's first Put with ErrMoved but has no
// ShardMap capability, so its MOVED responses carry an empty body.
type noMapperBackend struct {
	Backend
	trip atomic.Bool
}

func (b *noMapperBackend) Put(ctx context.Context, key, val []byte) error {
	if b.trip.Swap(false) {
		return shard.ErrMoved
	}
	return b.Backend.Put(ctx, key, val)
}

// TestMovedWithoutMapperStillRetries: a MOVED from a backend without the
// ShardMap capability has an empty body; the client retries but learns
// nothing.
func TestMovedWithoutMapperStillRetries(t *testing.T) {
	nb := &noMapperBackend{Backend: newMemBackend()}
	srv, err := NewServer(ServerConfig{Backend: nb})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cl := pipeServer(t, srv, ClientConfig{Seed: 4, RetryBase: time.Millisecond})

	ctx := context.Background()
	nb.trip.Store(true)
	if err := cl.Put(ctx, []byte("a"), []byte("b")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, _, ok := cl.ShardMap(); ok {
		t.Fatal("client invented a shard map from an empty MOVED body")
	}
	if cl.Stats().Moves.Value() != 1 {
		t.Fatalf("Moves = %d, want 1", cl.Stats().Moves.Value())
	}
}

// TestMovedStatusCodec pins the wire behavior of the new status: it
// decodes, renders, and survives the response codec with its map body.
func TestMovedStatusCodec(t *testing.T) {
	if StatusMoved != StatusInternal+1 {
		t.Fatalf("StatusMoved = %d, must extend the taxonomy, not renumber it", StatusMoved)
	}
	if StatusMoved.String() != "moved" {
		t.Fatalf("String = %q", StatusMoved.String())
	}
	want := shard.NewEvenMap(16)
	want.Epoch = 7
	buf := encodeResponse(nil, 42, StatusMoved, encodeMovedBody(want))
	seq, st, body, err := decodeResponse(buf)
	if err != nil || seq != 42 || st != StatusMoved {
		t.Fatalf("decode = %d/%v/%v", seq, st, err)
	}
	m, ok := decodeMovedBody(body)
	if !ok || m.Epoch != 7 || len(m.Entries) != 16 {
		t.Fatalf("moved body = (%+v, %v)", m, ok)
	}
	for i, e := range m.Entries {
		if e != want.Entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, e, want.Entries[i])
		}
	}
	if _, ok := decodeMovedBody(body[:5]); ok {
		t.Fatal("truncated moved body decoded")
	}
	if _, ok := decodeMovedBody(body[:len(body)-3]); ok {
		t.Fatal("short moved body decoded")
	}
	if encodeMovedBody(nil) != nil {
		t.Fatal("nil map encoded to a non-empty body")
	}
	if !errors.Is(errFromStatus(StatusMoved, ""), shard.ErrMoved) {
		t.Fatal("errFromStatus(StatusMoved) does not unwrap to shard.ErrMoved")
	}
	if st, _ := statusOf(shard.ErrMoved); st != StatusMoved {
		t.Fatalf("statusOf(ErrMoved) = %v", st)
	}
	// One past the taxonomy still fails decode.
	bad := encodeResponse(nil, 1, StatusMoved+1, nil)
	if _, _, _, err := decodeResponse(bad); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("decode of status %d = %v, want ErrBadMessage", StatusMoved+1, err)
	}
}
