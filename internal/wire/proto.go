// Package wire serves the store over a wire: a length-prefixed,
// CRC-framed binary protocol (internal/wire/frame) with a pipelining
// server front-end over the engine front-end and a retry-storm-proof
// client.
//
// The paper's cost/performance argument assumes a data caching system
// serving real traffic; this package supplies the connection boundary
// that "heavy traffic from millions of users" implies, with the failure
// surface that boundary creates — slow clients, half-closed sockets,
// retry storms, partitions — handled explicitly:
//
//   - Every request carries an idempotency identity (client ID +
//     sequence number). The server holds a dedup window of acked writes,
//     so a retry of an acked Put or Delete is answered from the window
//     without re-applying: retried writes are exactly-once.
//   - Every engine rejection crosses the wire as a typed status code
//     (overload, read-only, circuit-open, too-stale, quarantined,
//     corrupt, deadline), never a torn connection or a silent drop.
//   - Per-connection pipelining is bounded by an in-flight window; a
//     full window stops the read loop, which is exactly TCP backpressure
//     composing with the engine's admission queue behind it.
//   - A client that stops draining responses is evicted when the
//     server's write stalls past a bound; a server that stops answering
//     is abandoned by the client after jittered exponential backoff.
package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"costperf/internal/engine"
	"costperf/internal/fault"
	"costperf/internal/overload"
	"costperf/internal/repl"
	"costperf/internal/shard"
	"costperf/internal/ssd"
)

// Operation codes. The low 5 bits of the op byte carry the code; the
// top 3 bits carry the request's priority class (see classToWire), so
// adding priority to the protocol cost zero header bytes and a legacy
// op byte (top bits zero) still decodes as a normal-class request.
const (
	opGet byte = iota + 1
	opPut
	opDelete
	opScan
	opPing

	opMask = 0x1f // low 5 bits: op code; high 3: priority class
)

// classToWire encodes a priority class into the op byte's top 3 bits:
// 0 means "unspecified" (decodes as ClassNormal, and is what normal
// requests encode so legacy byte streams and fixtures stay identical),
// otherwise the wire value is class+1. ClassProbe is deliberately not
// encodable: probes originate inside the process that owns the breaker,
// never from a remote client.
func classToWire(c overload.Class) byte {
	if c == overload.ClassNormal || c > overload.ClassHigh {
		return 0
	}
	return byte(c) + 1
}

// classFromWire decodes the op byte's top 3 bits. ok is false for wire
// values past the encodable range (6, 7): a damaged or hostile byte,
// not a future class. A remote attempt to claim probe class (5 — only
// producible by a hand-rolled byte, never by classToWire) is clamped to
// ClassHigh rather than rejected: the request is well-formed, it just
// may not starve the breaker's own probes.
func classFromWire(v byte) (overload.Class, bool) {
	switch {
	case v == 0:
		return overload.ClassNormal, true
	case v <= byte(overload.ClassHigh)+1:
		return overload.Class(v - 1), true
	case v == byte(overload.ClassProbe)+1:
		return overload.ClassHigh, true
	default:
		return overload.ClassNormal, false
	}
}

// Status is the wire-level outcome of one request. Every engine-side
// typed error maps onto exactly one status, and the client maps each
// status back onto the original typed sentinel, so errors.Is works the
// same on both sides of the connection.
type Status byte

const (
	// StatusOK: the operation was applied/answered.
	StatusOK Status = iota
	// StatusOverload: shed by the engine's admission queue.
	StatusOverload
	// StatusReadOnly: the store's health has latched degraded.
	StatusReadOnly
	// StatusCircuitOpen: the engine's breaker is failing writes fast.
	StatusCircuitOpen
	// StatusDeadline: the request's deadline expired server-side.
	StatusDeadline
	// StatusCanceled: the request's context was cancelled server-side.
	StatusCanceled
	// StatusTooStale: a standby read exceeded its staleness bound.
	StatusTooStale
	// StatusQuarantined: the touched page is quarantined on both mirror legs.
	StatusQuarantined
	// StatusCorrupt: the store surfaced unrecoverable corruption.
	StatusCorrupt
	// StatusDraining: the server is draining and refuses new work.
	StatusDraining
	// StatusBadRequest: the request payload did not decode.
	StatusBadRequest
	// StatusInternal: any other backend error (message attached).
	StatusInternal
	// StatusMoved: the key's shard changed owners mid-request (a live
	// migration cut over and the cutover wait expired). When the backend
	// exposes its shard map (ShardMapper), the response body carries
	// epoch(8) shards(4) so the client learns the new map without an
	// extra round trip. Appended after StatusInternal to keep the wire
	// values of the original taxonomy stable.
	StatusMoved
)

// String names the status for logs.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusOverload:
		return "overload"
	case StatusReadOnly:
		return "readonly"
	case StatusCircuitOpen:
		return "circuit-open"
	case StatusDeadline:
		return "deadline"
	case StatusCanceled:
		return "canceled"
	case StatusTooStale:
		return "too-stale"
	case StatusQuarantined:
		return "quarantined"
	case StatusCorrupt:
		return "corrupt"
	case StatusDraining:
		return "draining"
	case StatusBadRequest:
		return "bad-request"
	case StatusInternal:
		return "internal"
	case StatusMoved:
		return "moved"
	}
	return fmt.Sprintf("status(%d)", byte(s))
}

// Typed wire-side errors (the engine/storage sentinels cross unchanged).
var (
	// ErrBadMessage reports a payload that did not decode (corrupt-class).
	ErrBadMessage = fmt.Errorf("wire: malformed message (%w)", fault.ErrCorrupt)
	// ErrDraining is surfaced for requests refused by a draining server.
	ErrDraining = errors.New("wire: server draining")
	// ErrUnavailable wraps the last transport error once a client's retry
	// budget is exhausted.
	ErrUnavailable = errors.New("wire: server unavailable")
	// ErrClientClosed is returned by operations on a closed client.
	ErrClientClosed = errors.New("wire: client closed")
	// ErrRemote carries an uncategorized server-side failure.
	ErrRemote = errors.New("wire: remote error")
)

// statusOf maps a backend error onto the status taxonomy. Order matters:
// ErrQuarantined wraps ErrCorrupt, and context errors may arrive wrapped
// by the engine's admission path.
func statusOf(err error) (Status, string) {
	switch {
	case err == nil:
		return StatusOK, ""
	case errors.Is(err, engine.ErrOverload):
		return StatusOverload, ""
	case errors.Is(err, engine.ErrReadOnly):
		return StatusReadOnly, ""
	case errors.Is(err, engine.ErrCircuitOpen):
		return StatusCircuitOpen, ""
	case errors.Is(err, context.DeadlineExceeded):
		return StatusDeadline, ""
	case errors.Is(err, context.Canceled):
		return StatusCanceled, ""
	case errors.Is(err, repl.ErrTooStale):
		return StatusTooStale, ""
	case errors.Is(err, ssd.ErrQuarantined):
		return StatusQuarantined, ""
	case errors.Is(err, fault.ErrCorrupt):
		return StatusCorrupt, ""
	case errors.Is(err, shard.ErrMoved):
		return StatusMoved, ""
	case errors.Is(err, engine.ErrClosed):
		return StatusDraining, ""
	default:
		return StatusInternal, err.Error()
	}
}

// errFromStatus is the client-side inverse of statusOf: each status maps
// back to the typed sentinel callers already know, wrapped with wire
// context.
func errFromStatus(s Status, msg string) error {
	switch s {
	case StatusOK:
		return nil
	case StatusOverload:
		return fmt.Errorf("wire: %w", engine.ErrOverload)
	case StatusReadOnly:
		return fmt.Errorf("wire: %w", engine.ErrReadOnly)
	case StatusCircuitOpen:
		return fmt.Errorf("wire: %w", engine.ErrCircuitOpen)
	case StatusDeadline:
		return fmt.Errorf("wire: server-side %w", context.DeadlineExceeded)
	case StatusCanceled:
		return fmt.Errorf("wire: server-side %w", context.Canceled)
	case StatusTooStale:
		return fmt.Errorf("wire: %w", repl.ErrTooStale)
	case StatusQuarantined:
		return fmt.Errorf("wire: %w", ssd.ErrQuarantined)
	case StatusCorrupt:
		return fmt.Errorf("wire: store corruption (%w)", fault.ErrCorrupt)
	case StatusDraining:
		return ErrDraining
	case StatusBadRequest:
		return ErrBadMessage
	case StatusMoved:
		return fmt.Errorf("wire: %w", shard.ErrMoved)
	default:
		return fmt.Errorf("%w: %s", ErrRemote, msg)
	}
}

// request is one decoded client request.
//
// Encoded request payload layout (inside one frame envelope):
//
//	op(1) clientID(8) seq(8) deadlineMicros(4) keyLen(4) key
//	  Put:  valLen(4) val
//	  Scan: limit(4)
type request struct {
	Op       byte
	Class    overload.Class // priority class, carried in the op byte's top bits
	ClientID uint64
	Seq      uint64
	Deadline time.Duration // 0 = none
	Key      []byte
	Val      []byte
	Limit    int
}

const reqHeader = 1 + 8 + 8 + 4 + 4

// maxDeadlineMicros caps the deadline field; ~71 minutes is far past any
// sane request deadline.
const maxDeadlineMicros = 1<<32 - 1

func encodeRequest(dst []byte, r request) []byte {
	micros := r.Deadline.Microseconds()
	if micros < 0 {
		micros = 0
	}
	if micros > maxDeadlineMicros {
		micros = maxDeadlineMicros
	}
	var hdr [reqHeader]byte
	hdr[0] = r.Op | classToWire(r.Class)<<5
	binary.BigEndian.PutUint64(hdr[1:9], r.ClientID)
	binary.BigEndian.PutUint64(hdr[9:17], r.Seq)
	binary.BigEndian.PutUint32(hdr[17:21], uint32(micros))
	binary.BigEndian.PutUint32(hdr[21:25], uint32(len(r.Key)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.Key...)
	switch r.Op {
	case opPut:
		var vl [4]byte
		binary.BigEndian.PutUint32(vl[:], uint32(len(r.Val)))
		dst = append(dst, vl[:]...)
		dst = append(dst, r.Val...)
	case opScan:
		var lim [4]byte
		binary.BigEndian.PutUint32(lim[:], uint32(r.Limit))
		dst = append(dst, lim[:]...)
	}
	return dst
}

func decodeRequest(b []byte) (request, error) {
	var r request
	if len(b) < reqHeader {
		return r, ErrBadMessage
	}
	r.Op = b[0] & opMask
	if r.Op < opGet || r.Op > opPing {
		return r, ErrBadMessage
	}
	var ok bool
	if r.Class, ok = classFromWire(b[0] >> 5); !ok {
		return r, ErrBadMessage
	}
	if b[0]>>5 == 0 && r.Op == opScan {
		// An unspecified class takes the op's natural default: scans are
		// the first rung of the brownout ladder unless the client says
		// otherwise, matching the engine's own untagged-scan behavior.
		r.Class = overload.ClassScan
	}
	r.ClientID = binary.BigEndian.Uint64(b[1:9])
	r.Seq = binary.BigEndian.Uint64(b[9:17])
	r.Deadline = time.Duration(binary.BigEndian.Uint32(b[17:21])) * time.Microsecond
	keyLen := int(binary.BigEndian.Uint32(b[21:25]))
	rest := b[reqHeader:]
	if keyLen < 0 || keyLen > len(rest) {
		return r, ErrBadMessage
	}
	r.Key, rest = rest[:keyLen], rest[keyLen:]
	switch r.Op {
	case opPut:
		if len(rest) < 4 {
			return r, ErrBadMessage
		}
		valLen := int(binary.BigEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if valLen < 0 || valLen != len(rest) {
			return r, ErrBadMessage
		}
		r.Val = rest
	case opScan:
		if len(rest) != 4 {
			return r, ErrBadMessage
		}
		r.Limit = int(int32(binary.BigEndian.Uint32(rest)))
	default:
		if len(rest) != 0 {
			return r, ErrBadMessage
		}
	}
	return r, nil
}

// Encoded response payload layout:
//
//	status(1) seq(8) body
//
// body by status/op: OK Get → found(1) val; OK Scan → count(4) then
// count × (kLen(4) k vLen(4) v), then truncated(1); OK Put/Delete/Ping →
// empty; error statuses → UTF-8 message.
const respHeader = 1 + 8

func encodeResponse(dst []byte, seq uint64, s Status, body []byte) []byte {
	var hdr [respHeader]byte
	hdr[0] = byte(s)
	binary.BigEndian.PutUint64(hdr[1:9], seq)
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

func decodeResponse(b []byte) (seq uint64, s Status, body []byte, err error) {
	if len(b) < respHeader {
		return 0, 0, nil, ErrBadMessage
	}
	s = Status(b[0])
	if s > StatusMoved {
		return 0, 0, nil, ErrBadMessage
	}
	seq = binary.BigEndian.Uint64(b[1:9])
	return seq, s, b[respHeader:], nil
}

// An OVERLOAD body is the server's advisory retry-after hint:
// micros(4), big-endian. The server computes it from its limiter's view
// of the backlog (overload.Limiter.RetryAfter), so a shed client backs
// off for as long as the backlog actually needs to drain instead of a
// hardcoded guess — the difference between a thundering-herd retry and
// a paced one. An empty body is legal (backend without an Adviser) and
// means "no hint"; a malformed body is ignored the same way, since a
// hint can never be load-bearing for correctness.
func encodeOverloadBody(d time.Duration) []byte {
	micros := d.Microseconds()
	if micros <= 0 {
		return nil
	}
	if micros > maxDeadlineMicros {
		micros = maxDeadlineMicros
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(micros))
	return b[:]
}

func decodeOverloadBody(b []byte) time.Duration {
	if len(b) != 4 {
		return 0
	}
	return time.Duration(binary.BigEndian.Uint32(b)) * time.Microsecond
}

// A MOVED body is the server's full epoch-numbered shard map
// (shard.EncodeMap): epoch(8) count(4) then count × (start(8) slot(4)).
// Carrying the placement table — not just the epoch and a shard count —
// is what lets a client keep routing knowledge through a resize, where
// the count changes AND the ranges move. An empty body is legal (backend
// without a ShardMapper); anything else must validate as a map, or the
// client learns nothing.
func encodeMovedBody(m *shard.Map) []byte {
	if m == nil {
		return nil
	}
	return shard.EncodeMap(m)
}

func decodeMovedBody(b []byte) (*shard.Map, bool) {
	m, err := shard.DecodeMap(b)
	if err != nil {
		return nil, false
	}
	return m, true
}

// scanPair is one key/value pair crossing the wire in a scan response.
type scanPair struct{ K, V []byte }

func encodeScanBody(pairs []scanPair, truncated bool) []byte {
	n := 5
	for _, p := range pairs {
		n += 8 + len(p.K) + len(p.V)
	}
	body := make([]byte, 0, n)
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(len(pairs)))
	body = append(body, cnt[:]...)
	for _, p := range pairs {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(p.K)))
		body = append(body, l[:]...)
		body = append(body, p.K...)
		binary.BigEndian.PutUint32(l[:], uint32(len(p.V)))
		body = append(body, l[:]...)
		body = append(body, p.V...)
	}
	if truncated {
		body = append(body, 1)
	} else {
		body = append(body, 0)
	}
	return body
}

func decodeScanBody(b []byte) (pairs []scanPair, truncated bool, err error) {
	if len(b) < 5 {
		return nil, false, ErrBadMessage
	}
	count := int(binary.BigEndian.Uint32(b[:4]))
	rest := b[4:]
	// Each pair needs at least its two length fields (8 bytes): a count
	// beyond that is a damaged or hostile field — refuse before allocating.
	if count < 0 || count > len(rest)/8 {
		return nil, false, ErrBadMessage
	}
	pairs = make([]scanPair, 0, count)
	for i := 0; i < count; i++ {
		var p scanPair
		if p.K, rest, err = takeChunk(rest); err != nil {
			return nil, false, err
		}
		if p.V, rest, err = takeChunk(rest); err != nil {
			return nil, false, err
		}
		pairs = append(pairs, p)
	}
	if len(rest) != 1 || rest[0] > 1 {
		return nil, false, ErrBadMessage
	}
	return pairs, rest[0] == 1, nil
}

func takeChunk(b []byte) (chunk, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, ErrBadMessage
	}
	n := int(binary.BigEndian.Uint32(b[:4]))
	b = b[4:]
	if n < 0 || n > len(b) {
		return nil, nil, ErrBadMessage
	}
	return b[:n], b[n:], nil
}
