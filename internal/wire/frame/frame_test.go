package frame

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"costperf/internal/fault"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	var payloads [][]byte
	for i := 0; i < 50; i++ {
		p := make([]byte, rng.Intn(512))
		rng.Read(p)
		payloads = append(payloads, p)
		if err := Write(&buf, p); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := Read(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, err := Read(&buf, 0); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestDecodeRest(t *testing.T) {
	b := Append(nil, []byte("one"))
	b = Append(b, []byte("two"))
	p1, rest, err := Decode(b, 0)
	if err != nil || string(p1) != "one" {
		t.Fatalf("first: %q %v", p1, err)
	}
	p2, rest, err := Decode(rest, 0)
	if err != nil || string(p2) != "two" {
		t.Fatalf("second: %q %v", p2, err)
	}
	if len(rest) != 0 {
		t.Fatalf("rest: %d bytes left", len(rest))
	}
}

// TestCorruptionMatrix is the property test shared (by construction) with
// every user of the codec: truncations, bit flips, and oversized length
// fields of a valid encoding must yield typed ErrCorrupt-class errors —
// never a panic, a hang, or a silently wrong payload.
func TestCorruptionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		payload := make([]byte, 1+rng.Intn(256))
		rng.Read(payload)
		enc := Append(nil, payload)

		// Truncation at every boundary class.
		cut := rng.Intn(len(enc)) // strictly shorter
		if _, _, err := Decode(enc[:cut], 0); !errors.Is(err, fault.ErrCorrupt) {
			t.Fatalf("truncate@%d: got %v, want corrupt-class", cut, err)
		}
		if cut > 0 { // stream variant: mid-frame EOF
			_, err := Read(bytes.NewReader(enc[:cut]), 0)
			if !errors.Is(err, fault.ErrCorrupt) {
				t.Fatalf("stream truncate@%d: got %v, want corrupt-class", cut, err)
			}
		}

		// Single bit flip anywhere in the frame.
		flipped := append([]byte(nil), enc...)
		bit := rng.Intn(len(flipped) * 8)
		flipped[bit/8] ^= 1 << (bit % 8)
		p, _, err := Decode(flipped, 0)
		if err == nil && !bytes.Equal(p, payload) {
			t.Fatalf("bitflip@%d: silently wrong payload", bit)
		}
		if err != nil && !errors.Is(err, fault.ErrCorrupt) {
			t.Fatalf("bitflip@%d: got %v, want corrupt-class", bit, err)
		}

		// Oversized announced length must refuse before allocating.
		huge := append([]byte(nil), enc...)
		huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
		if _, _, err := Decode(huge, 0); !errors.Is(err, ErrTooBig) {
			t.Fatalf("oversize: got %v, want ErrTooBig", err)
		}
		if _, err := Read(bytes.NewReader(huge), 0); !errors.Is(err, ErrTooBig) {
			t.Fatalf("stream oversize: got %v, want ErrTooBig", err)
		}
	}
}

func TestMaxBound(t *testing.T) {
	enc := Append(nil, make([]byte, 128))
	if _, _, err := Decode(enc, 64); !errors.Is(err, ErrTooBig) {
		t.Fatalf("tight bound: got %v, want ErrTooBig", err)
	}
	if _, _, err := Decode(enc, 128); err != nil {
		t.Fatalf("exact bound: %v", err)
	}
}

// FuzzDecode drives the buffer decoder with arbitrary bytes: any outcome
// is acceptable except a panic or an out-of-bounds read.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Append(nil, []byte("seed")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, rest, err := Decode(b, 0)
		if err == nil {
			if len(payload)+HeaderLen+len(rest) != len(b) {
				t.Fatalf("decode accounting: %d+%d+%d != %d",
					len(payload), HeaderLen, len(rest), len(b))
			}
		}
	})
}

// FuzzRead drives the stream decoder with arbitrary bytes.
func FuzzRead(f *testing.F) {
	f.Add([]byte{})
	f.Add(Append(nil, []byte("seed")))
	f.Fuzz(func(t *testing.T, b []byte) {
		r := bytes.NewReader(b)
		for {
			if _, err := Read(r, 0); err != nil {
				break
			}
		}
	})
}
