// Package frame is the byte-level framing shared by every link in the
// system that crosses a lossy boundary: the replication ship link
// (internal/repl) and the client-facing wire protocol (internal/wire).
//
// A frame is a length-prefixed, CRC-protected byte payload:
//
//	offset  size  field
//	0       4     payload length N (big-endian uint32)
//	4       4     CRC-32 (IEEE) over the payload
//	8       N     payload
//
// The framing is self-delimiting: a receiver that sees a valid header can
// always find the next frame boundary, and a *whole* frame lost in
// transit leaves the stream decodable — which is exactly the loss model
// fault.NetInjector applies (messages vanish, byte streams do not tear).
// Anything else — a truncated buffer, a flipped bit, a length field
// larger than the negotiated bound — yields a typed ErrCorrupt-class
// error, never a panic and never an unbounded read.
package frame

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"costperf/internal/fault"
)

// HeaderLen is the fixed frame header size (length + CRC).
const HeaderLen = 8

// MaxBytes is the default payload size bound. A header announcing more
// than the bound is treated as corruption: it is far more likely to be a
// damaged or hostile length field than a legitimate message, and honoring
// it would let one bad frame make the receiver allocate without limit.
const MaxBytes = 1 << 20

// Typed decode errors. All of them wrap fault.ErrCorrupt, so callers that
// already classify storage corruption (fault.Classify) handle wire
// corruption with the same switch.
var (
	// ErrCRC reports a payload that does not match its header checksum.
	ErrCRC = fmt.Errorf("frame: payload failed CRC (%w)", fault.ErrCorrupt)
	// ErrTooBig reports a header announcing a payload over the bound.
	ErrTooBig = fmt.Errorf("frame: announced payload exceeds bound (%w)", fault.ErrCorrupt)
	// ErrTruncated reports a buffer or stream that ends mid-frame.
	ErrTruncated = fmt.Errorf("frame: truncated (%w)", fault.ErrCorrupt)
)

// crcOf is the frame checksum (CRC-32 IEEE, matching the replication
// link's historical choice).
func crcOf(payload []byte) uint32 { return crc32.ChecksumIEEE(payload) }

// Append appends one encoded frame carrying payload to dst and returns
// the extended slice.
func Append(dst, payload []byte) []byte {
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crcOf(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Decode decodes the first frame in b, returning its payload (aliasing b,
// not copied) and the remaining bytes after the frame. max bounds the
// accepted payload size; max <= 0 means MaxBytes.
func Decode(b []byte, max int) (payload, rest []byte, err error) {
	if max <= 0 {
		max = MaxBytes
	}
	if len(b) < HeaderLen {
		return nil, nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if n > uint32(max) {
		return nil, nil, ErrTooBig
	}
	want := binary.BigEndian.Uint32(b[4:8])
	body := b[HeaderLen:]
	if uint32(len(body)) < n {
		return nil, nil, ErrTruncated
	}
	payload = body[:n]
	if crcOf(payload) != want {
		return nil, nil, ErrCRC
	}
	return payload, body[n:], nil
}

// Write writes one frame carrying payload to w as a single Write call, so
// transports that apply per-message fault outcomes (fault.Conn) treat the
// frame as one unit.
func Write(w io.Writer, payload []byte) error {
	buf := Append(make([]byte, 0, HeaderLen+len(payload)), payload)
	_, err := w.Write(buf)
	return err
}

// Read reads exactly one frame from r and returns its payload (freshly
// allocated). max bounds the accepted payload size; max <= 0 means
// MaxBytes.
//
// A clean EOF on the first header byte is returned as io.EOF (the peer
// closed between frames); an EOF anywhere else is ErrTruncated, since the
// stream died mid-frame.
func Read(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = MaxBytes
	}
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // io.EOF here is a clean close
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, truncated(err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > uint32(max) {
		return nil, ErrTooBig
	}
	want := binary.BigEndian.Uint32(hdr[4:8])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, truncated(err)
	}
	if crcOf(payload) != want {
		return nil, ErrCRC
	}
	return payload, nil
}

// truncated folds stream-ending errors into ErrTruncated but passes
// through transport errors (deadlines, closed connections) untouched, so
// callers can tell "the stream tore mid-frame" from "the socket failed".
func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}
