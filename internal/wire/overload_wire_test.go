package wire

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"costperf/internal/engine"
	"costperf/internal/metrics"
	"costperf/internal/overload"
	"costperf/internal/wire/frame"
)

// The engine front-end must advertise retry-after hints to the server.
var _ Adviser = (*engine.Engine)(nil)

// TestClassWireEncoding pins the op-byte class encoding: classes
// round-trip through the top 3 bits, a normal-class request encodes
// byte-identically to the legacy format, unspecified scans default to
// the scan class, remote probe claims clamp to high, and out-of-range
// wire values are rejected as malformed.
func TestClassWireEncoding(t *testing.T) {
	for _, c := range []overload.Class{
		overload.ClassScan, overload.ClassLow, overload.ClassNormal, overload.ClassHigh,
	} {
		p := encodeRequest(nil, request{Op: opPut, Class: c, Key: []byte("k"), Val: []byte("v")})
		r, err := decodeRequest(p)
		if err != nil {
			t.Fatalf("decode class %v: %v", c, err)
		}
		if r.Class != c || r.Op != opPut {
			t.Fatalf("class %v round-tripped as %v (op %d)", c, r.Class, r.Op)
		}
	}

	// Byte stability: a normal-class request is the legacy encoding — a
	// bare op byte with zero class bits — so pre-priority fixtures and
	// captures still decode and new normal traffic is byte-identical.
	tagged := encodeRequest(nil, request{Op: opGet, Class: overload.ClassNormal, Key: []byte("k")})
	if tagged[0] != opGet {
		t.Fatalf("normal-class op byte = %#x, want bare opGet (legacy bytes)", tagged[0])
	}

	// An unspecified class on a scan decodes as the scan class — the
	// op's natural rung on the brownout ladder.
	p := encodeRequest(nil, request{Op: opScan, Class: overload.ClassNormal, Key: []byte("a"), Limit: 1})
	r, err := decodeRequest(p)
	if err != nil || r.Class != overload.ClassScan {
		t.Fatalf("unspecified scan class = %v, %v; want ClassScan", r.Class, err)
	}

	// A remote probe claim (wire value 5, never produced by classToWire)
	// is clamped to high, not honored and not rejected.
	raw := encodeRequest(nil, request{Op: opGet, Key: []byte("k")})
	raw[0] = opGet | (byte(overload.ClassProbe)+1)<<5
	r, err = decodeRequest(raw)
	if err != nil || r.Class != overload.ClassHigh {
		t.Fatalf("probe claim decoded as %v, %v; want clamp to ClassHigh", r.Class, err)
	}

	// Wire values past the encodable range are malformed bytes.
	for _, v := range []byte{6, 7} {
		raw[0] = opGet | v<<5
		if _, err := decodeRequest(raw); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("wire class %d decoded without error", v)
		}
	}
}

// advisingBackend wraps memBackend with a fixed retry-after hint,
// standing in for an engine or router whose limiter advises one.
type advisingBackend struct {
	*memBackend
	hint time.Duration
}

func (a *advisingBackend) RetryAfterHint() time.Duration { return a.hint }

// TestOverloadHintCrossesWire pins the hint loop: the server attaches
// its adviser's retry-after to StatusOverload, and the shed client
// waits at least that long before retrying — the server's estimate of
// its backlog outranks the client's blind schedule.
func TestOverloadHintCrossesWire(t *testing.T) {
	const hint = 30 * time.Millisecond
	ab := &advisingBackend{memBackend: newMemBackend(), hint: hint}
	srv, _ := newTestServer(t, ServerConfig{Backend: ab})
	cl := pipeServer(t, srv, ClientConfig{
		Seed: 11, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
	})
	ctx := context.Background()

	ab.failNext(1, engine.ErrOverload)
	start := time.Now()
	if err := cl.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatalf("put through hinted overload: %v", err)
	}
	elapsed := time.Since(start)
	// The blind schedule would retry within ~2ms; honoring the hint
	// means the retry waited the hint out.
	if elapsed < hint {
		t.Fatalf("retried after %v, want at least the %v hint", elapsed, hint)
	}
	if got := cl.Stats().HintedMicros.Value(); got != hint.Microseconds() {
		t.Fatalf("HintedMicros = %d, want %d", got, hint.Microseconds())
	}
	if srv.Stats().Sheds.Value() != 1 {
		t.Fatalf("server Sheds = %d, want 1", srv.Stats().Sheds.Value())
	}
}

// TestRetryBudgetExhaustion pins the token bucket: under persistent
// overload the client's retries drain the budget, after which shed
// operations fail immediately instead of feeding the storm.
func TestRetryBudgetExhaustion(t *testing.T) {
	srv, mb := newTestServer(t, ServerConfig{})
	cl := pipeServer(t, srv, ClientConfig{
		Seed: 13, MaxRetries: 3,
		RetryBase: 100 * time.Microsecond, RetryMax: 200 * time.Microsecond,
		RetryBudget: 0.5,
	})
	ctx := context.Background()

	mb.failNext(1 << 30, engine.ErrOverload)
	var denied bool
	var lastErr error
	// The bucket starts full (10 tokens); each op earns 0.5 and may
	// spend up to MaxRetries — a handful of ops drains it.
	for i := 0; i < 12 && !denied; i++ {
		lastErr = cl.Put(ctx, []byte("k"), []byte("v"))
		if lastErr == nil {
			t.Fatal("put succeeded under forced overload")
		}
		denied = cl.Stats().BudgetDenied.Value() > 0
	}
	mb.failN.Store(0)
	if !denied {
		t.Fatalf("budget never ran dry: %v", cl.Stats())
	}
	if !errors.Is(lastErr, ErrUnavailable) || !errors.Is(lastErr, engine.ErrOverload) {
		t.Fatalf("budget-dry error = %v, want ErrUnavailable wrapping overload", lastErr)
	}

	// Recovery: once the server serves again, successes re-earn tokens
	// and the client is not wedged.
	for i := 0; i < 30; i++ {
		if err := cl.Put(ctx, []byte("k"), []byte("v")); err != nil {
			t.Fatalf("put after recovery: %v", err)
		}
	}
}

// TestDedupShedExactlyOnce (satellite of the overload PR) pins the
// dedup window against server-side shedding: a write that was shed
// AFTER its dedup entry was inserted must be forgotten (so the retry
// re-executes, exactly once), while a write that was acked stays in the
// window (so a retry during a later overload is answered from the
// window, not shed and not re-applied).
func TestDedupShedExactlyOnce(t *testing.T) {
	srv, mb := newTestServer(t, ServerConfig{})
	a, b := net.Pipe()
	defer a.Close()
	srv.ServeConn(b)

	roundTrip := func(req request) Status {
		t.Helper()
		if err := frame.Write(a, encodeRequest(nil, req)); err != nil {
			t.Fatalf("write: %v", err)
		}
		resp, err := frame.Read(a, frame.MaxBytes)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		seq, st, _, err := decodeResponse(resp)
		if err != nil || seq != req.Seq {
			t.Fatalf("resp: seq=%d st=%v err=%v", seq, st, err)
		}
		return st
	}

	// Shed after dedup insertion: the engine sheds the Put AFTER the
	// server registered (clientID, seq) in the window. The failed entry
	// must be forgotten so the retry executes — once.
	mb.failNext(1, engine.ErrOverload)
	req := request{Op: opPut, ClientID: 21, Seq: 1, Key: []byte("k"), Val: []byte("v")}
	if st := roundTrip(req); st != StatusOverload {
		t.Fatalf("shed attempt = %v, want StatusOverload", st)
	}
	if n := mb.applies.Load(); n != 0 {
		t.Fatalf("shed write applied %d times", n)
	}
	if st := roundTrip(req); st != StatusOK {
		t.Fatalf("retry of shed write = %v, want StatusOK", st)
	}
	if n := mb.applies.Load(); n != 1 {
		t.Fatalf("retry applied %d times, want exactly once", n)
	}

	// Acked then retried during overload: the window answers the retry
	// without consulting the (currently shedding) backend, and without
	// re-applying.
	req2 := request{Op: opPut, ClientID: 21, Seq: 2, Key: []byte("k2"), Val: []byte("v2")}
	if st := roundTrip(req2); st != StatusOK {
		t.Fatalf("first ack = %v", st)
	}
	mb.failNext(1<<30, engine.ErrOverload)
	if st := roundTrip(req2); st != StatusOK {
		t.Fatalf("retry of acked write during overload = %v, want StatusOK from the dedup window", st)
	}
	mb.failN.Store(0)
	if n := mb.applies.Load(); n != 2 {
		t.Fatalf("applies = %d, want 2 (no re-execution of the acked write)", n)
	}
	if srv.Stats().DedupHits.Value() != 1 {
		t.Fatalf("DedupHits = %d, want 1", srv.Stats().DedupHits.Value())
	}
}

// TestClassReachesEngine drives a class-tagged scan against a real
// engine backend whose queue is saturated and asserts the wire class
// is what the engine sheds by.
func TestClassReachesEngine(t *testing.T) {
	blocker := newMemBackend()
	blocker.getDelay = 200 * time.Millisecond
	eng, err := engine.New(engine.Config{Store: wrapBackend{blocker}, MaxConcurrent: 1, MaxQueue: 4})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	srv, _ := newTestServer(t, ServerConfig{Backend: eng})
	cl := pipeServer(t, srv, ClientConfig{
		Seed: 17, MaxRetries: 1, AttemptTimeout: 5 * time.Second,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
	})
	ctx := context.Background()

	// Saturate: one slow Get holds the engine's only slot; two more
	// queue to scan's bound (4/4 = 1... two normals reach depth 2 > 1).
	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, _, err := cl.Get(ctx, []byte("x"))
			done <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().QueueDepth.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("engine queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	// An untagged scan crosses the wire as scan-class and sheds at its
	// bound while normal reads are still being queued.
	err = cl.Scan(ctx, nil, 1, func(k, v []byte) bool { return true })
	if !errors.Is(err, engine.ErrOverload) && !errors.Is(err, ErrUnavailable) {
		t.Fatalf("scan against saturated engine = %v, want overload-shed", err)
	}
	if eng.Limiter().Stats().ShedScan.Value() == 0 {
		t.Fatal("the wire scan was not shed at scan class")
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatalf("saturating get: %v", err)
		}
	}
}

// wrapBackend adapts memBackend to engine.Store (Health/Close).
type wrapBackend struct{ *memBackend }

func (wrapBackend) Health() *metrics.Health { return nil }
func (wrapBackend) Close() error            { return nil }
