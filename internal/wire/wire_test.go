package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"costperf/internal/engine"
	"costperf/internal/wire/frame"
)

// memBackend is a minimal in-memory Backend with fault hooks and apply
// counters, standing in for the engine front-end in unit tests.
type memBackend struct {
	mu      sync.Mutex
	data    map[string][]byte
	applies atomic.Int64
	gets    atomic.Int64

	// failNext errors the next n operations with err.
	failN   atomic.Int64
	failErr error
	// getDelay sleeps Gets, for hedging/drain tests.
	getDelay time.Duration
}

func newMemBackend() *memBackend {
	return &memBackend{data: make(map[string][]byte)}
}

func (m *memBackend) failNext(n int, err error) {
	m.failErr = err
	m.failN.Store(int64(n))
}

func (m *memBackend) hookErr() error {
	if m.failN.Load() > 0 && m.failN.Add(-1) >= 0 {
		return m.failErr
	}
	return nil
}

func (m *memBackend) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	m.gets.Add(1)
	if err := m.hookErr(); err != nil {
		return nil, false, err
	}
	if m.getDelay > 0 {
		select {
		case <-time.After(m.getDelay):
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.data[string(key)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

func (m *memBackend) Put(ctx context.Context, key, val []byte) error {
	if err := m.hookErr(); err != nil {
		return err
	}
	m.applies.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data[string(key)] = append([]byte(nil), val...)
	return nil
}

func (m *memBackend) Delete(ctx context.Context, key []byte) error {
	if err := m.hookErr(); err != nil {
		return err
	}
	m.applies.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.data, string(key))
	return nil
}

func (m *memBackend) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	if err := m.hookErr(); err != nil {
		return err
	}
	m.mu.Lock()
	keys := make([]string, 0, len(m.data))
	for k := range m.data {
		if k >= string(start) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	snap := make([]scanPair, 0, len(keys))
	for _, k := range keys {
		snap = append(snap, scanPair{K: []byte(k), V: append([]byte(nil), m.data[k]...)})
	}
	m.mu.Unlock()
	for i, p := range snap {
		if limit > 0 && i >= limit {
			break
		}
		if !fn(p.K, p.V) {
			break
		}
	}
	return nil
}

// pipeServer wires a client straight into a server via net.Pipe, no TCP.
func pipeServer(t *testing.T, srv *Server, cfg ClientConfig) *Client {
	t.Helper()
	cfg.Dial = func() (net.Conn, error) {
		a, b := net.Pipe()
		srv.ServeConn(b)
		return a, nil
	}
	cl, err := NewClient(cfg)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *memBackend) {
	t.Helper()
	mb := newMemBackend()
	if cfg.Backend == nil {
		cfg.Backend = mb
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, mb
}

func TestBasicOpsOverTCP(t *testing.T) {
	srv, _ := newTestServer(t, ServerConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(l)
	addr := l.Addr().String()

	cl, err := NewClient(ClientConfig{
		Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Seed: 42,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cl.Close()

	ctx := context.Background()
	if err := cl.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		if err := cl.Put(ctx, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	v, ok, err := cl.Get(ctx, []byte("k07"))
	if err != nil || !ok || !bytes.Equal(v, []byte("v7")) {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if _, ok, err := cl.Get(ctx, []byte("nope")); err != nil || ok {
		t.Fatalf("get miss: %v %v", ok, err)
	}
	if err := cl.Delete(ctx, []byte("k07")); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, ok, _ := cl.Get(ctx, []byte("k07")); ok {
		t.Fatal("deleted key still present")
	}
	var got []string
	if err := cl.Scan(ctx, []byte("k10"), 5, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	want := []string{"k10", "k11", "k12", "k13", "k14"}
	if len(got) != len(want) {
		t.Fatalf("scan got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan got %v want %v", got, want)
		}
	}
	if srv.Stats().Requests.Value() == 0 || srv.Stats().Responses.Value() == 0 {
		t.Fatalf("stats not counting: %v", srv.Stats())
	}
}

// TestDedupExactlyOnce drives the server with raw frames: the same Put
// (client ID, seq) sent twice must apply once and ack twice.
func TestDedupExactlyOnce(t *testing.T) {
	srv, mb := newTestServer(t, ServerConfig{})
	a, b := net.Pipe()
	defer a.Close()
	srv.ServeConn(b)

	req := request{Op: opPut, ClientID: 7, Seq: 1, Key: []byte("k"), Val: []byte("v")}
	payload := encodeRequest(nil, req)
	for i := 0; i < 2; i++ {
		if err := frame.Write(a, payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		resp, err := frame.Read(a, frame.MaxBytes)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		seq, st, _, err := decodeResponse(resp)
		if err != nil || seq != 1 || st != StatusOK {
			t.Fatalf("resp %d: seq=%d st=%v err=%v", i, seq, st, err)
		}
	}
	if n := mb.applies.Load(); n != 1 {
		t.Fatalf("applied %d times, want exactly once", n)
	}
	if n := srv.Stats().DedupHits.Value(); n != 1 {
		t.Fatalf("dedup hits = %d, want 1", n)
	}

	// A failed write must NOT be cached: a retry re-executes it.
	mb.failNext(1, errors.New("transient disk burp"))
	req2 := request{Op: opPut, ClientID: 7, Seq: 2, Key: []byte("k2"), Val: []byte("v2")}
	p2 := encodeRequest(nil, req2)
	for i := 0; i < 2; i++ {
		if err := frame.Write(a, p2); err != nil {
			t.Fatalf("write2 %d: %v", i, err)
		}
		resp, err := frame.Read(a, frame.MaxBytes)
		if err != nil {
			t.Fatalf("read2 %d: %v", i, err)
		}
		_, st, _, _ := decodeResponse(resp)
		if i == 0 && st == StatusOK {
			t.Fatal("first attempt should have failed")
		}
		if i == 1 && st != StatusOK {
			t.Fatalf("retry after failure: st=%v", st)
		}
	}
	if v := mb.data["k2"]; !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("retry did not re-execute: %q", v)
	}
}

// TestStatusTaxonomy pins that typed engine errors cross the wire and come
// back as the same sentinels, and that overload is retried.
func TestStatusTaxonomy(t *testing.T) {
	srv, mb := newTestServer(t, ServerConfig{})
	cl := pipeServer(t, srv, ClientConfig{Seed: 7, RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond})
	ctx := context.Background()

	// Overload: shed twice, then admitted — the client retries through it.
	mb.failNext(2, engine.ErrOverload)
	if err := cl.Put(ctx, []byte("a"), []byte("1")); err != nil {
		t.Fatalf("put through overload: %v", err)
	}
	if cl.Stats().Retries.Value() < 2 || cl.Stats().Overloads.Value() < 2 {
		t.Fatalf("overload not retried: %v", cl.Stats())
	}

	// Non-retryable statuses surface typed immediately.
	for _, tc := range []struct {
		inject, want error
	}{
		{engine.ErrReadOnly, engine.ErrReadOnly},
		{engine.ErrCircuitOpen, engine.ErrCircuitOpen},
		{context.DeadlineExceeded, context.DeadlineExceeded},
	} {
		mb.failNext(1, tc.inject)
		err := cl.Put(ctx, []byte("b"), []byte("2"))
		if !errors.Is(err, tc.want) {
			t.Fatalf("injected %v, got %v", tc.inject, err)
		}
	}

	// Persistent overload exhausts the budget and reports both sentinels.
	cl2 := pipeServer(t, srv, ClientConfig{
		Seed: 8, MaxRetries: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
	})
	mb.failNext(1000, engine.ErrOverload)
	err := cl2.Put(ctx, []byte("c"), []byte("3"))
	mb.failN.Store(0)
	if !errors.Is(err, ErrUnavailable) || !errors.Is(err, engine.ErrOverload) {
		t.Fatalf("exhausted overload: %v", err)
	}
}

// TestDrainFinishesInFlight starts a slow request, drains mid-flight, and
// requires the request to complete and ack before the connection closes.
func TestDrainFinishesInFlight(t *testing.T) {
	srv, mb := newTestServer(t, ServerConfig{})
	mb.getDelay = 50 * time.Millisecond
	mb.data["k"] = []byte("v")
	cl := pipeServer(t, srv, ClientConfig{Seed: 9, AttemptTimeout: 2 * time.Second})

	if err := cl.Ping(context.Background()); err != nil {
		t.Fatalf("ping: %v", err)
	}

	type res struct {
		v   []byte
		ok  bool
		err error
	}
	ch := make(chan res, 1)
	go func() {
		v, ok, err := cl.Get(context.Background(), []byte("k"))
		ch <- res{v, ok, err}
	}()
	time.Sleep(10 * time.Millisecond) // let the Get reach the backend

	dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	r := <-ch
	if r.err != nil || !r.ok || !bytes.Equal(r.v, []byte("v")) {
		t.Fatalf("in-flight get during drain: %q %v %v", r.v, r.ok, r.err)
	}
	if srv.Stats().CurConns.Value() != 0 {
		t.Fatalf("connections survived drain: %v", srv.Stats())
	}
}

// TestDrainRefusesNew pins the StatusDraining path for requests arriving
// after drain begins.
func TestDrainRefusesNew(t *testing.T) {
	srv, _ := newTestServer(t, ServerConfig{})
	a, b := net.Pipe()
	defer a.Close()
	srv.ServeConn(b)
	srv.draining.Store(true)

	if err := frame.Write(a, encodeRequest(nil, request{Op: opGet, Seq: 5, Key: []byte("k")})); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := frame.Read(a, frame.MaxBytes)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	_, st, _, _ := decodeResponse(resp)
	if st != StatusDraining {
		t.Fatalf("status = %v, want draining", st)
	}
	if srv.Stats().DrainRejects.Value() != 1 {
		t.Fatalf("drain rejects = %d", srv.Stats().DrainRejects.Value())
	}
}

// TestSlowClientEviction wedges a client that never reads its responses;
// the server's write stall bound must evict it rather than leak the conn.
func TestSlowClientEviction(t *testing.T) {
	srv, mb := newTestServer(t, ServerConfig{WriteStallTimeout: 30 * time.Millisecond})
	mb.data["k"] = []byte("v")
	a, b := net.Pipe()
	defer a.Close()
	srv.ServeConn(b)

	// Send a request but never read the response: net.Pipe is unbuffered,
	// so the server's response write blocks until the stall bound fires.
	if err := frame.Write(a, encodeRequest(nil, request{Op: opGet, Seq: 1, Key: []byte("k")})); err != nil {
		t.Fatalf("write: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Evicted.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slow client never evicted: %v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	for srv.Stats().CurConns.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("evicted conn not deregistered: %v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClientReconnect kills the serving side and requires the client to
// re-dial transparently on the next operation.
func TestClientReconnect(t *testing.T) {
	srv1, _ := newTestServer(t, ServerConfig{})
	srv2, _ := newTestServer(t, ServerConfig{})
	var current atomic.Pointer[Server]
	current.Store(srv1)

	cl, err := NewClient(ClientConfig{
		Seed:      11,
		RetryBase: time.Millisecond,
		RetryMax:  4 * time.Millisecond,
		Dial: func() (net.Conn, error) {
			a, b := net.Pipe()
			current.Load().ServeConn(b)
			return a, nil
		},
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cl.Close()

	ctx := context.Background()
	if err := cl.Put(ctx, []byte("k"), []byte("v1")); err != nil {
		t.Fatalf("put 1: %v", err)
	}
	current.Store(srv2)
	srv1.Close()
	if err := cl.Put(ctx, []byte("k"), []byte("v2")); err != nil {
		t.Fatalf("put after server death: %v", err)
	}
	if cl.Stats().Reconnects.Value() < 1 {
		t.Fatalf("no reconnect recorded: %v", cl.Stats())
	}
}

// TestHedgedRead pins that a slow read gets a hedge and still one result.
func TestHedgedRead(t *testing.T) {
	srv, mb := newTestServer(t, ServerConfig{})
	mb.getDelay = 60 * time.Millisecond
	mb.data["k"] = []byte("v")
	cl := pipeServer(t, srv, ClientConfig{
		Seed:           12,
		HedgeAfter:     10 * time.Millisecond,
		AttemptTimeout: 2 * time.Second,
	})
	v, ok, err := cl.Get(context.Background(), []byte("k"))
	if err != nil || !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("hedged get: %q %v %v", v, ok, err)
	}
	if cl.Stats().Hedges.Value() != 1 {
		t.Fatalf("hedges = %d, want 1", cl.Stats().Hedges.Value())
	}
	// Both executions ran server-side; the duplicate response was dropped.
	if mb.gets.Load() != 2 {
		t.Fatalf("server-side gets = %d, want 2", mb.gets.Load())
	}
}

// TestScanTruncation bounds one scan response and requires the truncated
// flag to end the scan early rather than blow the frame bound.
func TestScanTruncation(t *testing.T) {
	srv, mb := newTestServer(t, ServerConfig{MaxScanBytes: 64})
	for i := 0; i < 32; i++ {
		mb.data[fmt.Sprintf("k%02d", i)] = bytes.Repeat([]byte("x"), 16)
	}
	cl := pipeServer(t, srv, ClientConfig{Seed: 13})
	n := 0
	if err := cl.Scan(context.Background(), nil, 0, func(k, v []byte) bool {
		n++
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if n == 0 || n >= 32 {
		t.Fatalf("truncated scan visited %d of 32", n)
	}
}

// TestBadFramesDoNotKillStream sends a CRC-damaged frame between two good
// requests; the damaged one is dropped, the stream keeps serving.
func TestBadFramesDoNotKillStream(t *testing.T) {
	srv, mb := newTestServer(t, ServerConfig{})
	mb.data["k"] = []byte("v")
	a, b := net.Pipe()
	defer a.Close()
	srv.ServeConn(b)

	good := frame.Append(nil, encodeRequest(nil, request{Op: opGet, Seq: 1, Key: []byte("k")}))
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff // damage the payload, CRC catches it

	done := make(chan error, 1)
	go func() {
		if _, err := a.Write(bad); err != nil {
			done <- err
			return
		}
		_, err := a.Write(good)
		done <- err
	}()
	resp, err := frame.Read(a, frame.MaxBytes)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("write: %v", werr)
	}
	seq, st, body, err := decodeResponse(resp)
	if err != nil || seq != 1 || st != StatusOK || len(body) < 1 || body[0] != 1 {
		t.Fatalf("resp after bad frame: seq=%d st=%v err=%v", seq, st, err)
	}
	if srv.Stats().BadFrames.Value() != 1 {
		t.Fatalf("bad frames = %d, want 1", srv.Stats().BadFrames.Value())
	}
}

// TestPipeliningBackpressure floods one connection with more concurrent
// requests than the window; all must complete, and the in-flight peak must
// respect the bound.
func TestPipeliningBackpressure(t *testing.T) {
	srv, mb := newTestServer(t, ServerConfig{MaxInFlight: 4})
	mb.getDelay = time.Millisecond
	mb.data["k"] = []byte("v")
	cl := pipeServer(t, srv, ClientConfig{Seed: 14, MaxInFlight: 64, AttemptTimeout: 5 * time.Second})

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := cl.Get(context.Background(), []byte("k"))
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("get under pipelining: %v", err)
		}
	}
	if peak := srv.Stats().InFlightPeak.Value(); peak > 4 {
		t.Fatalf("in-flight peak %d exceeds window 4", peak)
	}
}

// TestNoGoroutineLeaks closes everything and requires the goroutine count
// to return to baseline — the drain/close machinery leaks nothing.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, mb := newTestServer(t, ServerConfig{})
	mb.data["k"] = []byte("v")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); srv.Serve(l) }()
	addr := l.Addr().String()

	for i := 0; i < 4; i++ {
		cl, err := NewClient(ClientConfig{
			Seed: int64(20 + i),
			Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
		})
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		for j := 0; j < 8; j++ {
			if _, _, err := cl.Get(context.Background(), []byte("k")); err != nil {
				t.Fatalf("get: %v", err)
			}
		}
		cl.Close()
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	<-serveDone

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
