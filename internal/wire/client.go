package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"costperf/internal/backoff"
	"costperf/internal/engine"
	"costperf/internal/metrics"
	"costperf/internal/overload"
	"costperf/internal/shard"
	"costperf/internal/wire/frame"
)

// ClientConfig configures a Client.
type ClientConfig struct {
	// Dial opens a connection to the server (required). It is called for
	// the first connection and after every connection failure.
	Dial func() (net.Conn, error)
	// ClientID is the stable idempotency identity presented to the
	// server's dedup window; it must survive reconnects. 0 derives one
	// from Seed; to opt out of deduplication set DisableDedup.
	ClientID uint64
	// DisableDedup sends a zero client ID, opting out of server-side
	// write deduplication.
	DisableDedup bool
	// Seed seeds retry jitter and the derived ClientID (default 1).
	Seed int64
	// MaxInFlight bounds pipelined requests in flight (default 32).
	MaxInFlight int
	// AttemptTimeout bounds one request attempt: past it the attempt is
	// presumed lost (dropped frame, dead peer) and retried (default 1s).
	AttemptTimeout time.Duration
	// MaxRetries bounds retries per operation — with the exponential
	// backoff this is what keeps a retry storm's amplification bounded
	// (default 8).
	MaxRetries int
	// RetryBase/RetryMax shape the jittered exponential backoff between
	// retries, the same [d/2, d] half-jitter the engine's breaker probes
	// use (defaults 2ms / 250ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// HedgeAfter, when >0, sends a duplicate of a read still unanswered
	// after this long — but only when the remaining deadline leaves room
	// for the hedge to matter. Writes are never hedged; the dedup window
	// would absorb them anyway, but reads are where tail latency hides.
	HedgeAfter time.Duration
	// ConsecTimeouts is the run of attempt timeouts on one connection
	// that makes the client presume it dead and reconnect (default 3).
	ConsecTimeouts int
	// Class is the priority class sent with every request ("scan", "low",
	// "normal", "high"; empty = normal). The server's admission limiter
	// sheds lower classes first under pressure. A per-operation override
	// travels in the context via overload.WithClass.
	Class string
	// RetryBudget, when >0, bounds retry amplification with a token
	// bucket: each logical operation earns RetryBudget tokens (so e.g.
	// 0.1 sustains one retry per ten ops) and every retry spends one;
	// when the bucket is dry the operation fails with ErrUnavailable
	// instead of retrying. This is the client-side half of metastable-
	// failure protection — a storm of retries against a struggling
	// server is exactly the load that keeps it struggling. 0 disables
	// the budget (retries bounded only by MaxRetries).
	RetryBudget float64
}

// retryBucketCap bounds the retry token bucket: enough burst for a
// transient blip, not enough to fuel a storm.
const retryBucketCap = 10

func (c *ClientConfig) setDefaults() error {
	if c.Dial == nil {
		return errors.New("wire: nil dial func")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ClientID == 0 && !c.DisableDedup {
		// Derive a stable nonzero identity from the seed (splitmix64).
		z := uint64(c.Seed) + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		c.ClientID = z ^ (z >> 31)
		if c.ClientID == 0 {
			c.ClientID = 1
		}
	}
	if c.DisableDedup {
		c.ClientID = 0
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 2 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.RetryMax < c.RetryBase {
		c.RetryMax = c.RetryBase
	}
	if c.ConsecTimeouts <= 0 {
		c.ConsecTimeouts = 3
	}
	if c.Class != "" {
		if _, ok := overload.ParseClass(c.Class); !ok {
			return fmt.Errorf("wire: unknown priority class %q", c.Class)
		}
	}
	return nil
}

// defaultClass resolves the configured class name (empty = normal).
func (c *ClientConfig) defaultClass() overload.Class {
	if c.Class == "" {
		return overload.ClassNormal
	}
	cl, _ := overload.ParseClass(c.Class)
	return cl
}

// ClientStats meters the client; Sent/Ops is the retry amplification the
// chaos harness bounds.
type ClientStats struct {
	// Ops counts logical operations started; Sent counts request frames
	// written (first attempts + retries + hedges).
	Ops  metrics.Counter
	Sent metrics.Counter
	// Retries counts re-sent attempts; Hedges counts duplicate reads sent
	// for tail latency; Reconnects counts re-dials after the first.
	Retries    metrics.Counter
	Hedges     metrics.Counter
	Reconnects metrics.Counter
	// AttemptTimeouts counts attempts presumed lost; Overloads counts
	// StatusOverload responses (each retried with backoff).
	AttemptTimeouts metrics.Counter
	Overloads       metrics.Counter
	// BudgetDenied counts retries suppressed by a dry retry budget —
	// each one is load NOT sent at a struggling server.
	BudgetDenied metrics.Counter
	// HintedMicros gauges the last server-provided retry-after hint.
	HintedMicros metrics.Gauge
	// Moves counts StatusMoved responses: shard cutovers observed on the
	// wire, each teaching the client the server's new shard map.
	Moves metrics.Counter
}

// String renders the counters for experiment logs.
func (s *ClientStats) String() string {
	return fmt.Sprintf("ops=%d sent=%d retries=%d hedges=%d reconnects=%d timeouts=%d overloads=%d moves=%d denied=%d",
		s.Ops.Value(), s.Sent.Value(), s.Retries.Value(), s.Hedges.Value(),
		s.Reconnects.Value(), s.AttemptTimeouts.Value(), s.Overloads.Value(), s.Moves.Value(),
		s.BudgetDenied.Value())
}

// Client is a resilient connection to a wire server: pipelined requests,
// reconnects with jittered exponential backoff, idempotent retries, and
// deadline-aware hedged reads. All methods are safe for concurrent use.
type Client struct {
	cfg   ClientConfig
	stats ClientStats

	seq    atomic.Uint64
	window chan struct{}

	// Shard map learned from MOVED responses: the full epoch-numbered
	// placement table. Advisory — routing stays server-side — but it lets
	// a fleet-aware caller observe cutovers and resizes. A stale-epoch
	// MOVED body never regresses the learned map.
	shardMap atomic.Pointer[shard.Map]

	mu     sync.Mutex // guards cc, dialed
	cc     *clientConn
	dialed bool

	// src draws the jittered exponential retry schedule (shared with the
	// engine's breaker probes and the shard router via internal/backoff).
	src *backoff.Source

	// Retry token bucket (see ClientConfig.RetryBudget).
	budMu  sync.Mutex
	tokens float64

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewClient creates a client; no connection is made until the first
// operation.
func NewClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	return &Client{
		cfg:    cfg,
		window: make(chan struct{}, cfg.MaxInFlight),
		src:    backoff.New(backoff.Policy{Base: cfg.RetryBase, Max: cfg.RetryMax}, cfg.Seed),
		tokens: retryBucketCap, // start full: a transient blip can retry at once
		closed: make(chan struct{}),
	}, nil
}

// Stats returns the client's counters.
func (c *Client) Stats() *ClientStats { return &c.stats }

// ShardMap summarizes the server's shard map as last taught by a MOVED
// response; ok is false until the client has seen one.
func (c *Client) ShardMap() (epoch uint64, shards int, ok bool) {
	m := c.shardMap.Load()
	if m == nil {
		return 0, 0, false
	}
	return m.Epoch, len(m.Entries), true
}

// Map returns the full placement table last taught by a MOVED response
// (nil until one arrives). The map is immutable; callers may route with
// it, diff it, or re-encode it.
func (c *Client) Map() *shard.Map { return c.shardMap.Load() }

// Get returns the value for key.
func (c *Client) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	body, err := c.do(ctx, request{Op: opGet, Key: key}, true)
	if err != nil {
		return nil, false, err
	}
	if len(body) < 1 || body[0] > 1 {
		return nil, false, ErrBadMessage
	}
	if body[0] == 0 {
		return nil, false, nil
	}
	return body[1:], true, nil
}

// Put upserts key -> val. Retries are exactly-once: the server's dedup
// window answers a retry of an acked Put without re-applying it.
func (c *Client) Put(ctx context.Context, key, val []byte) error {
	_, err := c.do(ctx, request{Op: opPut, Key: key, Val: val}, false)
	return err
}

// Delete removes key, with the same exactly-once retry contract as Put.
func (c *Client) Delete(ctx context.Context, key []byte) error {
	_, err := c.do(ctx, request{Op: opDelete, Key: key}, false)
	return err
}

// Scan visits pairs with key >= start in order until fn returns false or
// limit pairs are visited. The server bounds one response's size; a
// truncated scan simply ends early, like a short read.
func (c *Client) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	body, err := c.do(ctx, request{Op: opScan, Key: start, Limit: limit}, true)
	if err != nil {
		return err
	}
	pairs, _, err := decodeScanBody(body)
	if err != nil {
		return err
	}
	for _, p := range pairs {
		if !fn(p.K, p.V) {
			break
		}
	}
	return nil
}

// Ping round-trips an empty request, establishing the connection.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.do(ctx, request{Op: opPing}, false)
	return err
}

// Close fails in-flight operations and releases the connection. After
// Close returns no client goroutines remain.
func (c *Client) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	c.mu.Lock()
	if c.cc != nil {
		c.cc.fail(ErrClientClosed)
		c.cc = nil
	}
	c.mu.Unlock()
	c.wg.Wait()
	return nil
}

// do runs one logical operation: acquire a window slot, then attempt,
// retry with jittered exponential backoff on transport failures and
// overload, and (for reads) hedge the tail.
func (c *Client) do(ctx context.Context, req request, isRead bool) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-c.closed:
		return nil, ErrClientClosed
	default:
	}
	c.stats.Ops.Inc()
	select {
	case c.window <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.closed:
		return nil, ErrClientClosed
	}
	defer func() { <-c.window }()

	req.ClientID = c.cfg.ClientID
	req.Seq = c.seq.Add(1)
	req.Class = overload.ClassFrom(ctx, c.cfg.defaultClass())
	c.earnRetryTokens()
	lastErr := error(nil)
	var hint time.Duration // server's retry-after, from the last overload

	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			if !c.spendRetryToken() {
				// The budget is dry: sending this retry would add load to a
				// server already shedding it. Failing here is the choice
				// that lets the server drain.
				c.stats.BudgetDenied.Inc()
				return nil, fmt.Errorf("%w (retry budget exhausted): %w", ErrUnavailable, lastErr)
			}
			c.stats.Retries.Inc()
			if err := c.backoff(ctx, attempt, hint); err != nil {
				return nil, err
			}
			hint = 0
		}
		body, retry, h, err := c.attempt(ctx, req, isRead)
		if err == nil {
			return body, nil
		}
		if !retry {
			return nil, err
		}
		lastErr, hint = err, h
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("%w after %d attempts: %w", ErrUnavailable, c.cfg.MaxRetries+1, lastErr)
}

// earnRetryTokens credits the retry bucket for one logical operation.
func (c *Client) earnRetryTokens() {
	if c.cfg.RetryBudget <= 0 {
		return
	}
	c.budMu.Lock()
	c.tokens += c.cfg.RetryBudget
	if c.tokens > retryBucketCap {
		c.tokens = retryBucketCap
	}
	c.budMu.Unlock()
}

// spendRetryToken takes one token; false means the budget is dry and
// the retry must not be sent.
func (c *Client) spendRetryToken() bool {
	if c.cfg.RetryBudget <= 0 {
		return true
	}
	c.budMu.Lock()
	defer c.budMu.Unlock()
	if c.tokens < 1 {
		return false
	}
	c.tokens--
	return true
}

// attempt sends the request once (plus at most one hedge) and waits for
// its response, the attempt timeout, or a dead connection. retry=true
// means the failure is transient and the caller's budget decides; hint
// is the server's retry-after advice when it shed the request.
func (c *Client) attempt(ctx context.Context, req request, isRead bool) (body []byte, retry bool, hint time.Duration, err error) {
	cc, err := c.conn()
	if err != nil {
		return nil, true, 0, err
	}

	// The attempt deadline is the response-loss detector; the request
	// carries the tighter of it and the caller's deadline so the server
	// stops burning work the moment we stop waiting.
	attemptDl := time.Now().Add(c.cfg.AttemptTimeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(attemptDl) {
		attemptDl = dl
	}
	req.Deadline = time.Until(attemptDl)
	if req.Deadline <= 0 {
		return nil, false, 0, ctx.Err()
	}

	call := cc.register(req.Seq)
	defer cc.unregister(req.Seq)
	payload := encodeRequest(nil, req)
	if err := cc.send(payload, attemptDl); err != nil {
		cc.fail(err)
		return nil, true, 0, err
	}
	c.stats.Sent.Inc()

	timer := time.NewTimer(time.Until(attemptDl))
	defer timer.Stop()
	var hedge <-chan time.Time
	if isRead && c.cfg.HedgeAfter > 0 && time.Until(attemptDl) > 2*c.cfg.HedgeAfter {
		ht := time.NewTimer(c.cfg.HedgeAfter)
		defer ht.Stop()
		hedge = ht.C
	}

	for {
		select {
		case <-call.done:
			cc.consecTO.Store(0)
			return c.settleStatus(call)
		case <-hedge:
			// Tail-latency hedge: same seq, same connection — a duplicate
			// response is ignored, a duplicate write would be deduped, but
			// only reads hedge.
			hedge = nil
			c.stats.Hedges.Inc()
			if err := cc.send(payload, attemptDl); err == nil {
				c.stats.Sent.Inc()
			}
		case <-timer.C:
			c.stats.AttemptTimeouts.Inc()
			if cc.consecTO.Add(1) >= int64(c.cfg.ConsecTimeouts) {
				// The connection has eaten several attempts in a row:
				// presume it half-dead and rebuild it.
				cc.fail(fmt.Errorf("wire: %d consecutive attempt timeouts", c.cfg.ConsecTimeouts))
			}
			return nil, true, 0, fmt.Errorf("wire: attempt timed out after %v", c.cfg.AttemptTimeout)
		case <-cc.broken:
			return nil, true, 0, cc.brokenErr()
		case <-ctx.Done():
			return nil, false, 0, ctx.Err()
		case <-c.closed:
			return nil, false, 0, ErrClientClosed
		}
	}
}

// settleStatus turns a completed call into the operation's result.
func (c *Client) settleStatus(call *call) ([]byte, bool, time.Duration, error) {
	switch call.status {
	case StatusOK:
		return call.body, false, 0, nil
	case StatusOverload:
		// The server shed us: retry after backoff, within budget,
		// honoring the server's own estimate of how long its backlog
		// needs to drain.
		c.stats.Overloads.Inc()
		hint := decodeOverloadBody(call.body)
		if hint > 0 {
			c.stats.HintedMicros.Set(hint.Microseconds())
		}
		return nil, true, hint, errFromStatus(call.status, "")
	case StatusDraining:
		// The server is going away: drop the connection so the next
		// attempt re-dials (after failover/restart), and retry.
		c.dropConn()
		return nil, true, 0, ErrDraining
	case StatusMoved:
		// The key's shard cut over to a new owner mid-request. Learn the
		// map the server attached, then retry: by the next attempt the
		// router has installed the new owner.
		c.stats.Moves.Inc()
		if m, ok := decodeMovedBody(call.body); ok {
			for {
				old := c.shardMap.Load()
				if old != nil && old.Epoch >= m.Epoch {
					break
				}
				if c.shardMap.CompareAndSwap(old, m) {
					break
				}
			}
		}
		return nil, true, 0, errFromStatus(call.status, "")
	default:
		return nil, false, 0, errFromStatus(call.status, string(call.body))
	}
}

// backoff sleeps the jittered exponential interval for the given attempt
// number — d = min(base<<(attempt-1), max), drawn uniformly from [d/2, d]
// by the shared internal/backoff source — or the server's retry-after
// hint when that is longer: the server knows its backlog, the client
// only knows its schedule.
func (c *Client) backoff(ctx context.Context, attempt int, minWait time.Duration) error {
	d := c.src.Next(attempt)
	if minWait > d {
		d = minWait
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-c.closed:
		return ErrClientClosed
	}
}

// conn returns the live connection, dialing a fresh one if needed.
func (c *Client) conn() (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cc != nil {
		select {
		case <-c.cc.broken:
			c.cc = nil
		default:
			return c.cc, nil
		}
	}
	select {
	case <-c.closed:
		return nil, ErrClientClosed
	default:
	}
	raw, err := c.cfg.Dial()
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	if c.dialed {
		c.stats.Reconnects.Inc()
	}
	c.dialed = true
	cc := &clientConn{
		c:       raw,
		pending: make(map[uint64]*call),
		broken:  make(chan struct{}),
	}
	c.cc = cc
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		cc.receive()
	}()
	return cc, nil
}

// dropConn discards the current connection (e.g. on StatusDraining) so
// the next attempt re-dials.
func (c *Client) dropConn() {
	c.mu.Lock()
	if c.cc != nil {
		c.cc.fail(ErrDraining)
		c.cc = nil
	}
	c.mu.Unlock()
}

// clientConn is one dialed connection with its pending-call table.
type clientConn struct {
	c   net.Conn
	wmu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]*call
	err     error

	broken   chan struct{}
	failOnce sync.Once
	consecTO atomic.Int64
}

// call is one in-flight request registration.
type call struct {
	done   chan struct{}
	status Status
	body   []byte
}

func (cc *clientConn) register(seq uint64) *call {
	cl := &call{done: make(chan struct{})}
	cc.mu.Lock()
	cc.pending[seq] = cl
	cc.mu.Unlock()
	return cl
}

func (cc *clientConn) unregister(seq uint64) {
	cc.mu.Lock()
	delete(cc.pending, seq)
	cc.mu.Unlock()
}

// send writes one framed request as a single Write with the attempt
// deadline as the write deadline, so a stalled connection surfaces as a
// failed attempt rather than a wedged goroutine.
func (cc *clientConn) send(payload []byte, deadline time.Time) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	cc.c.SetWriteDeadline(deadline)
	return frame.Write(cc.c, payload)
}

// receive decodes responses and settles pending calls until the
// connection dies.
func (cc *clientConn) receive() {
	for {
		payload, err := frame.Read(cc.c, frame.MaxBytes)
		if err != nil {
			cc.fail(err)
			return
		}
		seq, st, body, err := decodeResponse(payload)
		if err != nil {
			continue // damaged response frame: the attempt timer recovers
		}
		cc.mu.Lock()
		cl := cc.pending[seq]
		delete(cc.pending, seq)
		cc.mu.Unlock()
		if cl == nil {
			continue // duplicate or hedged response already settled
		}
		cl.status, cl.body = st, body
		close(cl.done)
	}
}

// fail marks the connection dead and wakes everyone waiting on it.
func (cc *clientConn) fail(err error) {
	cc.failOnce.Do(func() {
		cc.mu.Lock()
		cc.err = err
		cc.mu.Unlock()
		close(cc.broken)
		cc.c.Close()
	})
}

func (cc *clientConn) brokenErr() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err == nil {
		return errors.New("wire: connection failed")
	}
	return cc.err
}

// Unavailable reports whether err is the client's gave-up error (every
// retry exhausted), as opposed to a typed server status.
func Unavailable(err error) bool { return errors.Is(err, ErrUnavailable) }

// Overloaded reports whether err is the server's typed overload status
// crossing the wire.
func Overloaded(err error) bool { return errors.Is(err, engine.ErrOverload) }
