package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/overload"
	"costperf/internal/shard"
	"costperf/internal/wire/frame"
)

// Backend is what the server fronts: the engine front-end satisfies it
// directly, so every wire request inherits admission control, circuit
// breaking, and deadline propagation.
type Backend interface {
	Get(ctx context.Context, key []byte) ([]byte, bool, error)
	Put(ctx context.Context, key, val []byte) error
	Delete(ctx context.Context, key []byte) error
	Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error
}

// ShardMapper is the optional Backend capability a sharded backend
// (shard.Router) exposes: the current epoch-numbered placement map. A
// server whose backend has it attaches the full map to every StatusMoved
// response, so one MOVED round trip teaches the client the new placement
// — epoch, shard count, and range boundaries — even mid-resize.
type ShardMapper interface {
	ShardMap() *shard.Map
}

// Adviser is the optional Backend capability an overload-aware backend
// (engine.Engine, shard.Router) exposes: the advisory backoff a shed
// request should wait before retrying, derived from the admission
// limiter's live backlog. A server whose backend has it attaches the
// hint to every StatusOverload response, closing the control loop that
// turns a thundering-herd retry into a paced one.
type Adviser interface {
	RetryAfterHint() time.Duration
}

// ServerConfig configures a Server.
type ServerConfig struct {
	// Backend serves the requests (required).
	Backend Backend
	// MaxInFlight bounds per-connection pipelining: at most this many
	// requests execute concurrently per connection; beyond it the read
	// loop stops, pushing backpressure into the client's send path
	// (default 32).
	MaxInFlight int
	// WriteStallTimeout evicts a connection whose client has stopped
	// draining responses: a single response write blocked past this bound
	// closes the connection (default 2s; <0 disables).
	WriteStallTimeout time.Duration
	// ReadIdleTimeout closes a connection that has sent nothing for this
	// long with nothing in flight — the hung half of a half-closed peer
	// (default 0 = never).
	ReadIdleTimeout time.Duration
	// DedupWindow is the per-client count of acked writes remembered for
	// retry deduplication (default 1024).
	DedupWindow int
	// MaxDedupClients bounds the number of client dedup windows held;
	// the least-recently-active window is evicted beyond it (default 1024).
	MaxDedupClients int
	// MaxScanBytes bounds the encoded size of one scan response; a scan
	// that would exceed it is truncated and flagged (default 256 KiB).
	MaxScanBytes int
}

func (c *ServerConfig) setDefaults() error {
	if c.Backend == nil {
		return errors.New("wire: nil backend")
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.WriteStallTimeout == 0 {
		c.WriteStallTimeout = 2 * time.Second
	}
	if c.DedupWindow <= 0 {
		c.DedupWindow = 1024
	}
	if c.MaxDedupClients <= 0 {
		c.MaxDedupClients = 1024
	}
	if c.MaxScanBytes <= 0 {
		c.MaxScanBytes = 256 << 10
	}
	return nil
}

// ServerStats meters the server. All fields are safe for concurrent use.
type ServerStats struct {
	// Accepted counts connections taken on; CurConns is the live gauge.
	Accepted metrics.Counter
	CurConns metrics.Gauge
	// Evicted counts connections closed because a response write stalled
	// past WriteStallTimeout (slow or wedged clients).
	Evicted metrics.Counter
	// Requests counts decoded requests; Responses counts responses
	// written to the wire.
	Requests  metrics.Counter
	Responses metrics.Counter
	// DedupHits counts retried writes answered from the dedup window
	// without re-applying.
	DedupHits metrics.Counter
	// BadFrames counts undecodable frames and request payloads.
	BadFrames metrics.Counter
	// DrainRejects counts requests refused with StatusDraining.
	DrainRejects metrics.Counter
	// Moves counts StatusMoved responses (shard cutovers that escaped the
	// router's transparent retry and crossed the wire).
	Moves metrics.Counter
	// Sheds counts StatusOverload responses — load the admission limiter
	// refused that crossed the wire (each carries a retry-after hint when
	// the backend advises one).
	Sheds metrics.Counter
	// InFlight gauges currently executing requests; InFlightPeak is its
	// high-water mark.
	InFlight     metrics.Gauge
	InFlightPeak metrics.Gauge
}

// String renders the counters for experiment logs.
func (s *ServerStats) String() string {
	return fmt.Sprintf("accepted=%d cur=%d evicted=%d req=%d resp=%d dedup=%d bad=%d drained=%d moved=%d peak=%d",
		s.Accepted.Value(), s.CurConns.Value(), s.Evicted.Value(), s.Requests.Value(),
		s.Responses.Value(), s.DedupHits.Value(), s.BadFrames.Value(),
		s.DrainRejects.Value(), s.Moves.Value(), s.InFlightPeak.Value())
}

// Server fronts a Backend over framed connections. All methods are safe
// for concurrent use.
type Server struct {
	cfg   ServerConfig
	stats ServerStats

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	conns     map[*srvConn]struct{}
	listeners map[net.Listener]struct{}

	draining atomic.Bool
	closed   atomic.Bool
	wg       sync.WaitGroup

	dedup   *dedupTable
	mapper  ShardMapper // non-nil when the backend is sharded
	adviser Adviser     // non-nil when the backend advises retry-after
}

// NewServer creates a server over the given backend.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	mapper, _ := cfg.Backend.(ShardMapper)
	adviser, _ := cfg.Backend.(Adviser)
	return &Server{
		cfg:       cfg,
		ctx:       ctx,
		cancel:    cancel,
		conns:     make(map[*srvConn]struct{}),
		listeners: make(map[net.Listener]struct{}),
		dedup:     newDedupTable(cfg.DedupWindow, cfg.MaxDedupClients),
		mapper:    mapper,
		adviser:   adviser,
	}, nil
}

// Stats returns the server's counters.
func (s *Server) Stats() *ServerStats { return &s.stats }

// Draining reports whether the server has begun draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// Serve accepts connections from l until the listener fails or the
// server closes/drains. It returns nil on clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	if s.closed.Load() || s.draining.Load() {
		l.Close()
		return ErrDraining
	}
	s.mu.Lock()
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		c, err := l.Accept()
		if err != nil {
			if s.closed.Load() || s.draining.Load() {
				return nil
			}
			return err
		}
		s.ServeConn(c)
	}
}

// ServeConn adopts one connection and serves it asynchronously. It is the
// entry point tests and in-process transports use directly.
func (s *Server) ServeConn(c net.Conn) {
	if s.closed.Load() || s.draining.Load() {
		c.Close()
		return
	}
	sc := &srvConn{
		s:    s,
		c:    c,
		sem:  make(chan struct{}, s.cfg.MaxInFlight),
		out:  make(chan []byte, s.cfg.MaxInFlight+2),
		done: make(chan struct{}),
	}
	sc.infCond.L = &sc.infMu
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		c.Close()
		return
	}
	s.conns[sc] = struct{}{}
	s.mu.Unlock()
	s.stats.Accepted.Inc()
	s.stats.CurConns.Add(1)
	s.wg.Add(2)
	go sc.reader()
	go sc.writer()
}

// Drain gracefully shuts the server down: stop accepting, refuse new
// requests with StatusDraining, finish and acknowledge everything already
// in flight, flush, then close every connection. It returns nil when all
// connections closed cleanly, or the context error after force-closing
// what remained.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	conns := make([]*srvConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()

	for _, sc := range conns {
		go sc.gracefulClose()
	}
	// Wait for every connection to deregister.
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			s.Close()
			return fmt.Errorf("wire: drain timed out with %d conns: %w", n, ctx.Err())
		case <-tick.C:
		}
	}
}

// Close hard-closes the server: cancels in-flight request contexts,
// closes every connection and listener, and waits for all goroutines to
// exit — after Close returns, the server has leaked nothing.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		s.wg.Wait()
		return nil
	}
	s.cancel()
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	// Copy out before closing: srvConn.close deregisters under s.mu.
	conns := make([]*srvConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.close()
	}
	s.wg.Wait()
	return nil
}

// srvConn is one served connection: a reader that decodes and dispatches
// under the in-flight window, a writer that serializes responses with
// stall eviction, and a handler goroutine per in-flight request.
type srvConn struct {
	s *Server
	c net.Conn

	sem chan struct{} // in-flight window slots
	out chan []byte   // encoded response frames

	// infMu guards the in-flight request count and the drain gate. A plain
	// WaitGroup cannot express "wait for zero while arrivals may still
	// race in": the gate and the count must flip under one lock.
	infMu   sync.Mutex
	infCond sync.Cond
	infN    int
	noMore  bool // set by gracefulClose: no new requests may start

	closeOnce sync.Once
	done      chan struct{}
}

// beginRequest counts a request in flight; false means the connection is
// past its drain gate and the request must be refused.
func (sc *srvConn) beginRequest() bool {
	sc.infMu.Lock()
	defer sc.infMu.Unlock()
	if sc.noMore {
		return false
	}
	sc.infN++
	return true
}

// endRequest retires one in-flight request.
func (sc *srvConn) endRequest() {
	sc.infMu.Lock()
	sc.infN--
	if sc.infN == 0 && sc.noMore {
		sc.infCond.Broadcast()
	}
	sc.infMu.Unlock()
}

// close hard-closes the connection and deregisters it.
func (sc *srvConn) close() {
	sc.closeOnce.Do(func() {
		close(sc.done)
		sc.c.Close()
		sc.s.mu.Lock()
		delete(sc.s.conns, sc)
		sc.s.mu.Unlock()
		sc.s.stats.CurConns.Add(-1)
	})
}

// gracefulClose gates out new requests, waits for in-flight ones to
// finish and queue their responses, then asks the writer to
// flush-and-close.
func (sc *srvConn) gracefulClose() {
	sc.infMu.Lock()
	sc.noMore = true
	for sc.infN > 0 {
		sc.infCond.Wait()
	}
	sc.infMu.Unlock()
	sc.trySend(nil) // flush sentinel; writer closes after writing everything before it
}

// trySend queues an encoded frame (or the nil flush sentinel) without
// ever blocking past a hard close.
func (sc *srvConn) trySend(buf []byte) {
	select {
	case sc.out <- buf:
	case <-sc.done:
	}
}

// respond encodes and queues one response.
func (sc *srvConn) respond(seq uint64, st Status, body []byte) {
	sc.trySend(frame.Append(nil, encodeResponse(nil, seq, st, body)))
}

// reader decodes requests and dispatches them under the in-flight window.
func (sc *srvConn) reader() {
	defer sc.s.wg.Done()
	for {
		if idle := sc.s.cfg.ReadIdleTimeout; idle > 0 {
			sc.c.SetReadDeadline(time.Now().Add(idle))
		}
		payload, err := frame.Read(sc.c, frame.MaxBytes)
		if err != nil {
			if errors.Is(err, frame.ErrCRC) {
				// The stream is still framed; the damaged request is simply
				// lost and the client's retry machinery recovers it.
				sc.s.stats.BadFrames.Inc()
				continue
			}
			if errors.Is(err, fault.ErrCorrupt) {
				sc.s.stats.BadFrames.Inc() // desynced stream: kill the conn
			}
			// EOF, closed, idle timeout, or desync: finish in-flight work,
			// flush what can still be flushed, and close.
			go sc.gracefulClose()
			return
		}
		req, err := decodeRequest(payload)
		if err != nil {
			sc.s.stats.BadFrames.Inc()
			continue // no decodable seq to answer
		}
		sc.s.stats.Requests.Inc()
		if req.Op == opPing {
			sc.respond(req.Seq, StatusOK, nil)
			continue
		}
		if sc.s.draining.Load() {
			sc.s.stats.DrainRejects.Inc()
			sc.respond(req.Seq, StatusDraining, nil)
			continue
		}
		// Count the request as in flight before waiting for a window slot,
		// so a drain that starts while we queue still finishes it. The
		// drain gate refusing here is the race-free version of the flag
		// check above.
		if !sc.beginRequest() {
			sc.s.stats.DrainRejects.Inc()
			sc.respond(req.Seq, StatusDraining, nil)
			continue
		}
		select {
		case sc.sem <- struct{}{}:
		case <-sc.done:
			sc.endRequest()
			return
		}
		sc.s.stats.InFlight.Add(1)
		sc.s.stats.InFlightPeak.Max(sc.s.stats.InFlight.Value())
		// Requests own their key/val bytes: the read buffer is per-frame,
		// but the handler outlives this loop iteration.
		sc.s.wg.Add(1)
		go sc.handle(req)
	}
}

// writer serializes responses with slow-client eviction.
func (sc *srvConn) writer() {
	defer sc.s.wg.Done()
	for {
		select {
		case buf := <-sc.out:
			if buf == nil {
				// Flush sentinel: everything queued before it has been
				// written; the graceful close completes here.
				sc.close()
				return
			}
			if stall := sc.s.cfg.WriteStallTimeout; stall > 0 {
				sc.c.SetWriteDeadline(time.Now().Add(stall))
			}
			if _, err := sc.c.Write(buf); err != nil {
				if errors.Is(err, os.ErrDeadlineExceeded) {
					sc.s.stats.Evicted.Inc()
				}
				sc.close()
				return
			}
			sc.s.stats.Responses.Inc()
		case <-sc.done:
			return
		}
	}
}

// handle executes one request and queues its response.
func (sc *srvConn) handle(req request) {
	defer sc.s.wg.Done()
	defer func() {
		<-sc.sem
		sc.s.stats.InFlight.Add(-1)
		sc.endRequest()
	}()

	// The request's priority class rides the context into the engine's
	// admission limiter: the wire is how remote tenants reach the
	// brownout ladder.
	ctx := overload.WithClass(sc.s.ctx, req.Class)
	if req.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
		defer cancel()
	}

	var st Status
	var msg string
	var body []byte
	switch req.Op {
	case opGet:
		v, ok, err := sc.s.cfg.Backend.Get(ctx, req.Key)
		st, msg = statusOf(err)
		if st == StatusOK {
			body = make([]byte, 0, 1+len(v))
			if ok {
				body = append(body, 1)
				body = append(body, v...)
			} else {
				body = append(body, 0)
			}
		}
	case opPut, opDelete:
		st, msg = sc.write(ctx, req)
	case opScan:
		body, st, msg = sc.scan(ctx, req)
	default:
		st = StatusBadRequest
	}
	if msg != "" {
		body = []byte(msg)
	}
	if st == StatusMoved {
		sc.s.stats.Moves.Inc()
		if sc.s.mapper != nil {
			body = encodeMovedBody(sc.s.mapper.ShardMap())
		}
	}
	if st == StatusOverload {
		sc.s.stats.Sheds.Inc()
		if sc.s.adviser != nil {
			body = encodeOverloadBody(sc.s.adviser.RetryAfterHint())
		}
	}
	sc.respond(req.Seq, st, body)
}

// write applies a Put/Delete through the dedup window: a retry of an
// acked write is answered from the window without touching the backend.
func (sc *srvConn) write(ctx context.Context, req request) (Status, string) {
	if req.ClientID == 0 {
		return sc.apply(ctx, req)
	}
	for {
		e, dup := sc.s.dedup.begin(req.ClientID, req.Seq)
		if !dup {
			st, msg := sc.apply(ctx, req)
			sc.s.dedup.settle(req.ClientID, req.Seq, e, st == StatusOK)
			return st, msg
		}
		// A twin of this request is in flight or already acked: wait for
		// its verdict rather than double-applying.
		select {
		case <-e.settled:
			if e.ok {
				sc.s.stats.DedupHits.Inc()
				return StatusOK, ""
			}
			// The twin failed and was forgotten; this retry re-executes.
			continue
		case <-ctx.Done():
			st, _ := statusOf(ctx.Err())
			return st, ""
		case <-sc.done:
			st, _ := statusOf(context.Canceled)
			return st, ""
		}
	}
}

func (sc *srvConn) apply(ctx context.Context, req request) (Status, string) {
	var err error
	if req.Op == opPut {
		err = sc.s.cfg.Backend.Put(ctx, req.Key, req.Val)
	} else {
		err = sc.s.cfg.Backend.Delete(ctx, req.Key)
	}
	return statusOf(err)
}

// scan runs a bounded scan and encodes its pairs, truncating at the
// response size bound.
func (sc *srvConn) scan(ctx context.Context, req request) ([]byte, Status, string) {
	var pairs []scanPair
	truncated := false
	bytes := 0
	err := sc.s.cfg.Backend.Scan(ctx, req.Key, req.Limit, func(k, v []byte) bool {
		if bytes += 8 + len(k) + len(v); bytes > sc.s.cfg.MaxScanBytes {
			truncated = true
			return false
		}
		pairs = append(pairs, scanPair{
			K: append([]byte(nil), k...),
			V: append([]byte(nil), v...),
		})
		return true
	})
	st, msg := statusOf(err)
	if st != StatusOK {
		return nil, st, msg
	}
	return encodeScanBody(pairs, truncated), StatusOK, ""
}

// dedupTable holds per-client windows of acked writes.
type dedupTable struct {
	mu         sync.Mutex
	clients    map[uint64]*clientWindow
	window     int
	maxClients int
	clock      int64
}

type clientWindow struct {
	touch   int64
	entries map[uint64]*dedupEntry
	ring    []uint64 // settled-OK seqs in ack order, for eviction
}

type dedupEntry struct {
	settled chan struct{}
	ok      bool
}

func newDedupTable(window, maxClients int) *dedupTable {
	return &dedupTable{
		clients:    make(map[uint64]*clientWindow),
		window:     window,
		maxClients: maxClients,
	}
}

// begin registers seq for client. dup=true returns the existing entry (in
// flight or acked); dup=false hands the caller a fresh pending entry it
// must settle.
func (d *dedupTable) begin(client, seq uint64) (*dedupEntry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock++
	w := d.clients[client]
	if w == nil {
		w = &clientWindow{entries: make(map[uint64]*dedupEntry)}
		d.clients[client] = w
		d.evictClientsLocked()
	}
	w.touch = d.clock
	if e, ok := w.entries[seq]; ok {
		return e, true
	}
	e := &dedupEntry{settled: make(chan struct{})}
	w.entries[seq] = e
	return e, false
}

// settle resolves a pending entry: acked writes stay in the window (so
// retries dedup), failures are forgotten (so retries re-execute).
func (d *dedupTable) settle(client, seq uint64, e *dedupEntry, ok bool) {
	d.mu.Lock()
	w := d.clients[client]
	if w != nil {
		if ok {
			w.ring = append(w.ring, seq)
			for len(w.ring) > d.window {
				delete(w.entries, w.ring[0])
				w.ring = w.ring[1:]
			}
		} else {
			delete(w.entries, seq)
		}
	}
	e.ok = ok
	d.mu.Unlock()
	close(e.settled)
}

// evictClientsLocked drops the least-recently-active client window when
// over budget. Caller holds d.mu.
func (d *dedupTable) evictClientsLocked() {
	for len(d.clients) > d.maxClients {
		var oldest uint64
		var oldestTouch int64 = 1<<63 - 1
		for id, w := range d.clients {
			if w.touch < oldestTouch {
				oldest, oldestTouch = id, w.touch
			}
		}
		delete(d.clients, oldest)
	}
}
