package shard

// The rebalancer closes the loop the five-minute-rule roll-up opened:
// the per-shard $/op table (rollup.go) says which shard the fleet is
// spending its money on; the rebalancer acts on it. Each Step compares
// every shard's spend over the last window — operations completed in the
// window times that shard's live $/op — against the fair share 1/N. A
// shard persistently over the high-water band is split at its range
// midpoint; a hash-adjacent pair of shards persistently under the cold
// band is merged. The band between the high and low water marks is the
// hysteresis that keeps a shard oscillating around fair share from
// flapping the map, and a post-action cooldown plus a
// must-have-been-seen-before rule for merges keeps a freshly split
// (zero-traffic) child from being merged straight back.

import (
	"context"
	"fmt"

	"costperf/internal/core"
)

// RebalanceConfig tunes the rebalancer.
type RebalanceConfig struct {
	// Base prices the per-shard snapshots (required: the trigger is $,
	// not ops).
	Base core.Costs

	// HighFactor arms a split when one shard's spend share exceeds
	// HighFactor/N (default 1.4); LowFactor re-arms the trigger once the
	// hottest share falls back below LowFactor/N (default 1.1). The gap
	// is the hysteresis band.
	HighFactor float64
	LowFactor  float64
	// ColdFrac merges a hash-adjacent pair when their combined spend
	// share is below ColdFrac/N (default 0.5).
	ColdFrac float64

	// MinShards / MaxShards bound the fleet size (defaults 1 and
	// MaxMapEntries).
	MinShards int
	MaxShards int
	// Cooldown is the number of Steps skipped after an action, letting
	// the new shards accumulate a window of real traffic (default 2).
	Cooldown int
}

// RebalanceAction reports what one Step did.
type RebalanceAction struct {
	// Kind is "split" or "merge".
	Kind string
	// Slot is the split source or the merge's left shard; With is the
	// merge's right shard (-1 for splits).
	Slot, With int
	// Share is the triggering spend share; Fair is 1/N at decision time.
	Share, Fair float64
	// Reason is the human-readable trigger.
	Reason string
}

// Rebalancer drives cost-share rebalancing over one router. Call Step on
// whatever cadence fits the workload; each call looks at the spend since
// the previous call.
type Rebalancer struct {
	r   *Router
	cfg RebalanceConfig

	prevOps map[int]int64 // per-slot cumulative ops at the last Step
	armed   bool
	cool    int
}

// NewRebalancer builds a rebalancer over the router. The router must
// have a Registry (the $/op table is the input signal).
func (r *Router) NewRebalancer(cfg RebalanceConfig) (*Rebalancer, error) {
	if r.cfg.Registry == nil {
		return nil, fmt.Errorf("shard: rebalancer needs a router with a Registry")
	}
	if cfg.HighFactor <= 1 {
		cfg.HighFactor = 1.4
	}
	if cfg.LowFactor <= 1 || cfg.LowFactor > cfg.HighFactor {
		cfg.LowFactor = 1.1
		if cfg.LowFactor > cfg.HighFactor {
			cfg.LowFactor = cfg.HighFactor
		}
	}
	if cfg.ColdFrac <= 0 || cfg.ColdFrac >= 1 {
		cfg.ColdFrac = 0.5
	}
	if cfg.MinShards < 1 {
		cfg.MinShards = 1
	}
	if cfg.MaxShards <= 0 || cfg.MaxShards > MaxMapEntries {
		cfg.MaxShards = MaxMapEntries
	}
	if cfg.Cooldown < 0 {
		cfg.Cooldown = 0
	} else if cfg.Cooldown == 0 {
		cfg.Cooldown = 2
	}
	return &Rebalancer{r: r, cfg: cfg, prevOps: map[int]int64{}, armed: true}, nil
}

// Step observes one window of spend and performs at most one action —
// splitting the hottest shard or merging the coldest adjacent pair —
// driving the resize to completion before returning. A nil action means
// the fleet is inside the band (or the trigger is in cooldown /
// disarmed). The error reports a failed or refused resize; the
// rebalancer state survives it, so the next Step retries naturally.
func (b *Rebalancer) Step(ctx context.Context) (*RebalanceAction, error) {
	m := b.r.Map()
	n := len(m.Entries)
	snaps := b.r.LiveSnapshots()

	// Spend per live slot over the window: ops completed since the last
	// Step, priced at the shard's live $/op. Both guards matter for
	// freshly split shards: zero cumulative ops means DollarPerOp has no
	// measurement to price with, and zero window ops means no spend.
	spend := make([]float64, n)
	seen := make(map[int]bool, n)
	var total float64
	nextOps := make(map[int]int64, n)
	for i, s := range snaps {
		slot := m.Entries[i].Slot
		nextOps[slot] = s.Ops
		_, seen[slot] = b.prevOps[slot]
		delta := s.Ops - b.prevOps[slot]
		if delta > 0 && s.Ops > 0 {
			spend[i] = float64(delta) * s.DollarPerOp(b.cfg.Base)
			total += spend[i]
		}
	}
	b.prevOps = nextOps

	if b.cool > 0 {
		b.cool--
		return nil, nil
	}
	if total <= 0 {
		return nil, nil
	}
	fair := 1 / float64(n)

	// Hottest shard vs the band.
	hotIdx, hotShare := -1, 0.0
	for i := range spend {
		if share := spend[i] / total; share > hotShare {
			hotIdx, hotShare = i, share
		}
	}
	if !b.armed && hotShare < b.cfg.LowFactor*fair {
		b.armed = true
	}
	if b.armed && n > 1 && hotShare > b.cfg.HighFactor*fair && n < b.cfg.MaxShards {
		slot := m.Entries[hotIdx].Slot
		act := &RebalanceAction{
			Kind: "split", Slot: slot, With: -1,
			Share: hotShare, Fair: fair,
			Reason: fmt.Sprintf("shard %d spend share %.3f > %.3f (%.1fx fair)",
				slot, hotShare, b.cfg.HighFactor*fair, b.cfg.HighFactor),
		}
		s, err := b.r.Split(SplitConfig{Shard: slot})
		if err != nil {
			return nil, fmt.Errorf("rebalance split shard %d: %w", slot, err)
		}
		if err := s.Run(ctx); err != nil {
			return nil, fmt.Errorf("rebalance split shard %d: %w", slot, err)
		}
		b.armed = false
		b.cool = b.cfg.Cooldown
		return act, nil
	}

	// Coldest adjacent pair vs the cold band. Only pairs whose slots
	// were both observed in a previous window qualify — a child shard
	// minted by the last split has no window yet and must not be merged
	// back on sight.
	coldIdx, coldShare := -1, 0.0
	for i := 0; i+1 < n; i++ {
		l, r := m.Entries[i].Slot, m.Entries[i+1].Slot
		if !seen[l] || !seen[r] {
			continue
		}
		pair := (spend[i] + spend[i+1]) / total
		if coldIdx < 0 || pair < coldShare {
			coldIdx, coldShare = i, pair
		}
	}
	if coldIdx >= 0 && n > b.cfg.MinShards && coldShare < b.cfg.ColdFrac*fair {
		l, rr := m.Entries[coldIdx].Slot, m.Entries[coldIdx+1].Slot
		act := &RebalanceAction{
			Kind: "merge", Slot: l, With: rr,
			Share: coldShare, Fair: fair,
			Reason: fmt.Sprintf("shards %d+%d spend share %.3f < %.3f (%.1fx fair)",
				l, rr, coldShare, b.cfg.ColdFrac*fair, b.cfg.ColdFrac),
		}
		mg, err := b.r.Merge(MergeConfig{Left: l, Right: rr})
		if err != nil {
			return nil, fmt.Errorf("rebalance merge shards %d+%d: %w", l, rr, err)
		}
		if err := mg.Run(ctx); err != nil {
			return nil, fmt.Errorf("rebalance merge shards %d+%d: %w", l, rr, err)
		}
		b.cool = b.cfg.Cooldown
		return act, nil
	}
	return nil, nil
}
