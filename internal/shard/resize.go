package shard

// Elastic resize: Split and Merge change the shard count while traffic
// continues, reusing the live-migration six-phase fence-and-stream
// cutover (migrate.go) with the same robustness contract — every phase
// boundary is crash-resumable by idempotent blind redo, fenced source
// owners reject commits forever, and zero acked writes are lost.
//
// A split streams the source's recovery log into TWO fresh owners (each
// a full standby applying the whole log), fences and drains the source,
// seals both targets at the source's exact durable LSN, prunes each
// target's data component down to its half of the hash range, and
// installs a map where the source's range is owned by the two new slots.
// Because placement is by range, the only keys that change owner are the
// source's own — the bounded-movement claim the sweep measures.
//
// A merge streams the LEFT source's log into one fresh owner, fences and
// drains BOTH sources, seals the target at the left's durable LSN, then
// folds the right source's final (fenced, immutable) state in through
// logged transactions on the new TC — a copy that is idempotent under
// re-streaming, so a crash at any pre-install boundary redoes it safely.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"costperf/internal/engine"
	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/repl"
	"costperf/internal/ssd"
	"costperf/internal/tc"
)

// resizeCore is the shared resumable-run skeleton of Split and Merge:
// the same phase ledger and abort/resume discipline Migration uses.
type resizeCore struct {
	mu       sync.Mutex
	phase    Phase
	done     bool
	lastErr  error
	attempts int
}

// Phase reports the next phase to run; Done whether the cutover
// installed; Err the error that aborted the last Run.
func (c *resizeCore) Phase() Phase {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phase
}

func (c *resizeCore) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

func (c *resizeCore) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// run drives the phase loop: resume() picks the restart point (install
// when the sealed owners survive, prepare otherwise — everything earlier
// re-streams from scratch and re-applies blindly), step() runs one phase,
// suspend() tears the stream down after an abort, and onPhase is the
// chaos harness's crash hook at each completed boundary.
func (c *resizeCore) run(ctx context.Context, label string,
	resume func() Phase, step func(context.Context, Phase) error,
	suspend func(), onPhase func(Phase) error) (err error) {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return nil
	}
	c.attempts++
	c.phase = resume()
	c.lastErr = nil
	c.mu.Unlock()

	defer func() {
		if err != nil {
			suspend()
			c.mu.Lock()
			c.lastErr = err
			c.mu.Unlock()
		}
	}()

	for {
		c.mu.Lock()
		ph := c.phase
		done := c.done
		c.mu.Unlock()
		if done {
			return nil
		}
		if err := step(ctx, ph); err != nil {
			return fmt.Errorf("%s, %v: %w", label, ph, err)
		}
		c.mu.Lock()
		if ph == PhaseInstall {
			c.done = true
		} else {
			c.phase = ph + 1
		}
		c.mu.Unlock()
		if onPhase != nil {
			if herr := onPhase(ph); herr != nil && ph != PhaseInstall {
				return fmt.Errorf("%s aborted after %v: %w", label, ph, herr)
			}
		}
		if ph == PhaseInstall {
			return nil
		}
	}
}

// SplitConfig parameterizes one shard split.
type SplitConfig struct {
	// Shard is the slot to split (required; must be a plain shard).
	Shard int
	// At is the hash split point; the source's range [lo, hi) becomes
	// [lo, At) and [At, hi). Zero means the range midpoint.
	At uint64
	// Net injects faults into both child streams (nil = perfect links).
	Net *fault.NetInjector
	// OnPhase is the per-boundary crash hook (see MigrateConfig.OnPhase).
	OnPhase func(Phase) error
	// CatchupWait / DrainWait bound the stream phases (defaults 5s / 2s).
	CatchupWait time.Duration
	DrainWait   time.Duration
	// Seed seeds the ship backoff jitter.
	Seed int64
}

// Split is one in-flight shard split. Run drives it; it resumes from any
// aborted boundary.
type Split struct {
	resizeCore
	r   *Router
	cfg SplitConfig
	src *owner

	lo, hi, at        uint64
	lowSlot, highSlot int
	lowDC, highDC     tc.DataComponent
	lowLog, highLog   ssd.Dev
	links             [2]*repl.Link
	ships             [2]*repl.Shipper
	stbys             [2]*repl.Standby
	stats             metrics.ReplStats
	newLow, newHigh   *owner
}

// Split starts splitting one shard's hash range across two freshly
// minted slots and returns the handle; call Run to drive it. The source
// slot is locked against concurrent migration/resize until the split
// installs.
func (r *Router) Split(cfg SplitConfig) (*Split, error) {
	t := r.tab.Load()
	src := t.owners[cfg.Shard]
	if src == nil {
		return nil, fmt.Errorf("shard %d: %w", cfg.Shard, ErrNoShard)
	}
	if src.cluster != nil {
		return nil, fmt.Errorf("shard %d: %w", cfg.Shard, ErrReplicatedShard)
	}
	lo, hi := t.m.Range(t.m.indexOfSlot(cfg.Shard))
	at := cfg.At
	if at == 0 {
		at = midpoint(lo, hi)
	}
	if !InRange(at, lo, hi) || at == lo {
		return nil, fmt.Errorf("split point %#x outside shard %d range [%#x, %#x): %w",
			at, cfg.Shard, lo, hi, ErrBadMap)
	}
	if cfg.CatchupWait <= 0 {
		cfg.CatchupWait = 5 * time.Second
	}
	if cfg.DrainWait <= 0 {
		cfg.DrainWait = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = r.cfg.Seed + int64(cfg.Shard)*104729
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if r.resizing[cfg.Shard] {
		r.mu.Unlock()
		return nil, fmt.Errorf("shard %d: %w", cfg.Shard, ErrMigrating)
	}
	if len(r.tab.Load().m.Entries)+1 > MaxMapEntries {
		r.mu.Unlock()
		return nil, fmt.Errorf("split would exceed %d map entries: %w", MaxMapEntries, ErrBadMap)
	}
	r.resizing[cfg.Shard] = true
	lowSlot, highSlot := r.nextSlot, r.nextSlot+1
	r.nextSlot += 2
	r.mu.Unlock()

	s := &Split{
		r: r, cfg: cfg, src: src,
		lo: lo, hi: hi, at: at,
		lowSlot: lowSlot, highSlot: highSlot,
		lowDC: r.cfg.NewDC(lowSlot), highDC: r.cfg.NewDC(highSlot),
		lowLog:  r.cfg.NewLog(fmt.Sprintf("shard%d-log.1", lowSlot)),
		highLog: r.cfg.NewLog(fmt.Sprintf("shard%d-log.1", highSlot)),
	}
	if tr := r.tracer(lowSlot); tr != nil {
		s.lowLog.SetObserver(tr)
	}
	if tr := r.tracer(highSlot); tr != nil {
		s.highLog.SetObserver(tr)
	}
	return s, nil
}

// Slots returns the two slot numbers the split mints (stable across
// resumes; live once the split installs).
func (s *Split) Slots() (low, high int) { return s.lowSlot, s.highSlot }

// At returns the hash split point.
func (s *Split) At() uint64 { return s.at }

// SourceTC exposes the retired owner's TC so audits can prove the fence
// holds.
func (s *Split) SourceTC() *tc.TC { return s.src.tc }

// Stats exposes the split streams' replication counters (both children
// share them).
func (s *Split) Stats() *metrics.ReplStats { return &s.stats }

// Run drives the split to completion, resuming after a prior abort.
func (s *Split) Run(ctx context.Context) error {
	return s.run(ctx, fmt.Sprintf("shard %d split", s.cfg.Shard),
		func() Phase {
			if s.newLow != nil && s.newHigh != nil {
				return PhaseInstall
			}
			return PhasePrepare
		},
		s.step, s.suspend, s.cfg.OnPhase)
}

func (s *Split) suspend() {
	for i := range s.ships {
		if s.ships[i] != nil {
			s.ships[i].Stop()
			s.ships[i] = nil
		}
		if s.stbys[i] != nil {
			s.stbys[i].Stop()
			s.stbys[i] = nil
		}
		s.links[i] = nil
	}
}

func (s *Split) step(ctx context.Context, ph Phase) error {
	switch ph {
	case PhasePrepare:
		return s.prepare()
	case PhaseCatchup:
		return s.catchup(ctx)
	case PhaseFence:
		s.src.fenced.Store(true)
		s.r.stats.Fences.Inc()
		return nil
	case PhaseDrain:
		return s.drain(ctx)
	case PhaseSeal:
		return s.seal()
	case PhaseInstall:
		s.r.installSplit(s.cfg.Shard, s.at, s.newLow, s.newHigh)
		return nil
	}
	return fmt.Errorf("unknown phase %v", ph)
}

// prepare dials the resize links (refused while partitioned) and starts
// both children streaming the FULL source log — each child is a complete
// standby of the source until the seal prunes it to its half-range.
func (s *Split) prepare() error {
	if s.cfg.Net != nil {
		if err := s.cfg.Net.DialErr(); err != nil {
			return err
		}
	}
	dcs := [2]tc.DataComponent{s.lowDC, s.highDC}
	logs := [2]ssd.Dev{s.lowLog, s.highLog}
	for i := 0; i < 2; i++ {
		s.links[i] = repl.NewLink(s.cfg.Net)
		s.stbys[i] = repl.NewStandby(repl.StandbyConfig{
			Link: s.links[i], LogDevice: logs[i], DC: dcs[i],
			Epoch: 1, Stats: &s.stats,
		})
		s.ships[i] = repl.NewShipper(repl.ShipperConfig{
			TC: s.src.tc, Link: s.links[i], Epoch: 1, Stats: &s.stats,
			Window: 8, AckTimeout: 5 * time.Millisecond,
			RetryBase: 200 * time.Microsecond, RetryMax: 5 * time.Millisecond,
			Poll: 50 * time.Microsecond, Seed: s.cfg.Seed + int64(i),
		})
		s.stbys[i].Start()
		s.ships[i].Start()
	}
	return nil
}

func (s *Split) catchup(ctx context.Context) error {
	if err := s.src.tc.Flush(); err != nil {
		return err
	}
	target := s.src.tc.DurableLSN()
	deadline := time.Now().Add(s.cfg.CatchupWait)
	for s.stbys[0].AppliedLSN() < target || s.stbys[1].AppliedLSN() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("applied %d/%d < durable %d after %v: %w",
				s.stbys[0].AppliedLSN(), s.stbys[1].AppliedLSN(), target,
				s.cfg.CatchupWait, ErrCatchup)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

func (s *Split) drain(ctx context.Context) error {
	deadline := time.Now().Add(s.cfg.DrainWait)
	for s.src.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("%d operations still in flight on the fenced owner after %v: %w",
				s.src.inflight.Load(), s.cfg.DrainWait, ErrCatchup)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := s.src.tc.Flush(); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if err := s.ships[i].Drain(s.cfg.DrainWait); err != nil {
			return err
		}
	}
	final := s.src.tc.DurableLSN()
	for s.stbys[0].AppliedLSN() < final || s.stbys[1].AppliedLSN() < final {
		if time.Now().After(deadline) {
			return fmt.Errorf("targets applied %d/%d < source durable %d: %w",
				s.stbys[0].AppliedLSN(), s.stbys[1].AppliedLSN(), final, ErrCatchup)
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// seal stops both streams, seals both standbys at a higher epoch, prunes
// each child's data component to its half of the hash range, and builds
// the two new owners' TCs — each continuing the source's LSN sequence
// and commit clock in place. The prune is a direct (unlogged) data-
// component operation: if the split dies before install, the resume
// re-streams the whole source log, whose blind redo restores every
// pruned key before the prune runs again.
func (s *Split) seal() error {
	for i := 0; i < 2; i++ {
		s.ships[i].Stop()
		s.stbys[i].Stop()
	}
	durable := s.src.tc.DurableLSN()
	applied0, ts0 := s.stbys[0].Seal(2)
	applied1, ts1 := s.stbys[1].Seal(2)
	if applied0 != durable || applied1 != durable {
		return fmt.Errorf("sealed at applied %d/%d but source durable is %d: %w",
			applied0, applied1, durable, ErrCatchup)
	}
	if err := pruneDC(s.lowDC, s.lo, s.at); err != nil {
		return fmt.Errorf("prune low child: %w", err)
	}
	if err := pruneDC(s.highDC, s.at, s.hi); err != nil {
		return fmt.Errorf("prune high child: %w", err)
	}
	low, err := s.r.sealedOwner(s.lowSlot, s.lowDC, s.lowLog, applied0, ts0, s.cfg.Seed)
	if err != nil {
		return err
	}
	high, err := s.r.sealedOwner(s.highSlot, s.highDC, s.highLog, applied1, ts1, s.cfg.Seed+1)
	if err != nil {
		low.eng.Close()
		return err
	}
	s.newLow, s.newHigh = low, high
	return nil
}

// sealedOwner builds a fresh gen-1 owner over a sealed, shipped log:
// the TC continues the source's LSN sequence and commit clock in place,
// exactly like a promoted warm standby.
func (r *Router) sealedOwner(slot int, dc tc.DataComponent, log ssd.Dev,
	startLSN int64, clock uint64, seed int64) (*owner, error) {
	o := &owner{shard: slot, gen: 1}
	t, err := tc.New(tc.Config{
		DC: dc, LogDevice: log,
		LogBufferBytes: r.cfg.LogBufferBytes,
		CommitGate:     o.gate,
		LogStartLSN:    startLSN,
		InitialClock:   clock,
		Obs:            r.tracer(slot),
	})
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Config{
		Store:           engine.WrapTC(t),
		MaxConcurrent:   r.cfg.MaxConcurrent,
		MaxQueue:        r.cfg.MaxQueue,
		DefaultTimeout:  r.cfg.DefaultTimeout,
		ProbeJitterSeed: seed,
	})
	if err != nil {
		t.Close()
		return nil, err
	}
	o.tc = t
	o.log = log
	o.eng = eng
	return o, nil
}

// pruneDC deletes every key outside [lo, hi) from the data component.
// The DC must expose an ordered scan (tc.Scanner) — the same capability
// router scans already require.
func pruneDC(dc tc.DataComponent, lo, hi uint64) error {
	sc, ok := dc.(tc.Scanner)
	if !ok {
		return fmt.Errorf("data component %T does not support scans", dc)
	}
	var drop [][]byte
	if err := sc.Scan(nil, 0, func(k, _ []byte) bool {
		if !InRange(Hash(k), lo, hi) {
			drop = append(drop, append([]byte(nil), k...))
		}
		return true
	}); err != nil {
		return err
	}
	for _, k := range drop {
		if err := dc.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// MergeConfig parameterizes one shard merge.
type MergeConfig struct {
	// Left and Right are the slots to merge; Right's range must
	// immediately follow Left's in hash order (both plain shards).
	Left, Right int
	// Net injects faults into the merge stream (nil = perfect link).
	Net *fault.NetInjector
	// OnPhase is the per-boundary crash hook.
	OnPhase func(Phase) error
	// CatchupWait / DrainWait bound the stream phases (defaults 5s / 2s).
	CatchupWait time.Duration
	DrainWait   time.Duration
	// Seed seeds the ship backoff jitter.
	Seed int64
}

// Merge is one in-flight shard merge. Run drives it; it resumes from any
// aborted boundary.
type Merge struct {
	resizeCore
	r           *Router
	cfg         MergeConfig
	left, right *owner

	mergedSlot int
	dc         tc.DataComponent
	log        ssd.Dev
	link       *repl.Link
	ship       *repl.Shipper
	stby       *repl.Standby
	stats      metrics.ReplStats
	newOwn     *owner
}

// Merge starts merging two hash-adjacent shards into one freshly minted
// slot and returns the handle; call Run to drive it. Both source slots
// are locked against concurrent migration/resize until the merge
// installs.
func (r *Router) Merge(cfg MergeConfig) (*Merge, error) {
	t := r.tab.Load()
	li, ri := t.m.indexOfSlot(cfg.Left), t.m.indexOfSlot(cfg.Right)
	if li < 0 {
		return nil, fmt.Errorf("shard %d: %w", cfg.Left, ErrNoShard)
	}
	if ri < 0 {
		return nil, fmt.Errorf("shard %d: %w", cfg.Right, ErrNoShard)
	}
	if ri != li+1 {
		return nil, fmt.Errorf("shards %d and %d: %w", cfg.Left, cfg.Right, ErrNotAdjacent)
	}
	left, right := t.owners[cfg.Left], t.owners[cfg.Right]
	if left.cluster != nil || right.cluster != nil {
		return nil, fmt.Errorf("shards %d+%d: %w", cfg.Left, cfg.Right, ErrReplicatedShard)
	}
	if cfg.CatchupWait <= 0 {
		cfg.CatchupWait = 5 * time.Second
	}
	if cfg.DrainWait <= 0 {
		cfg.DrainWait = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = r.cfg.Seed + int64(cfg.Left)*104729 + int64(cfg.Right)
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if r.resizing[cfg.Left] || r.resizing[cfg.Right] {
		r.mu.Unlock()
		return nil, fmt.Errorf("shards %d+%d: %w", cfg.Left, cfg.Right, ErrMigrating)
	}
	r.resizing[cfg.Left] = true
	r.resizing[cfg.Right] = true
	mergedSlot := r.nextSlot
	r.nextSlot++
	r.mu.Unlock()

	m := &Merge{
		r: r, cfg: cfg, left: left, right: right,
		mergedSlot: mergedSlot,
		dc:         r.cfg.NewDC(mergedSlot),
		log:        r.cfg.NewLog(fmt.Sprintf("shard%d-log.1", mergedSlot)),
	}
	if tr := r.tracer(mergedSlot); tr != nil {
		m.log.SetObserver(tr)
	}
	return m, nil
}

// Slot returns the merged slot number (stable across resumes; live once
// the merge installs).
func (m *Merge) Slot() int { return m.mergedSlot }

// SourceTCs exposes both retired owners' TCs for fence audits.
func (m *Merge) SourceTCs() (left, right *tc.TC) { return m.left.tc, m.right.tc }

// Stats exposes the merge stream's replication counters.
func (m *Merge) Stats() *metrics.ReplStats { return &m.stats }

// Run drives the merge to completion, resuming after a prior abort.
func (m *Merge) Run(ctx context.Context) error {
	return m.run(ctx, fmt.Sprintf("shard %d+%d merge", m.cfg.Left, m.cfg.Right),
		func() Phase {
			if m.newOwn != nil {
				return PhaseInstall
			}
			return PhasePrepare
		},
		m.step, m.suspend, m.cfg.OnPhase)
}

func (m *Merge) suspend() {
	if m.ship != nil {
		m.ship.Stop()
		m.ship = nil
	}
	if m.stby != nil {
		m.stby.Stop()
		m.stby = nil
	}
	m.link = nil
}

func (m *Merge) step(ctx context.Context, ph Phase) error {
	switch ph {
	case PhasePrepare:
		return m.prepare()
	case PhaseCatchup:
		return m.catchup(ctx)
	case PhaseFence:
		m.left.fenced.Store(true)
		m.r.stats.Fences.Inc()
		m.right.fenced.Store(true)
		m.r.stats.Fences.Inc()
		return nil
	case PhaseDrain:
		return m.drain(ctx)
	case PhaseSeal:
		return m.seal(ctx)
	case PhaseInstall:
		m.r.installMerge(m.cfg.Left, m.cfg.Right, m.newOwn)
		return nil
	}
	return fmt.Errorf("unknown phase %v", ph)
}

// prepare dials the merge link and streams the LEFT source's log into
// the merged owner; the right source's state is folded in at the seal.
func (m *Merge) prepare() error {
	if m.cfg.Net != nil {
		if err := m.cfg.Net.DialErr(); err != nil {
			return err
		}
	}
	m.link = repl.NewLink(m.cfg.Net)
	m.stby = repl.NewStandby(repl.StandbyConfig{
		Link: m.link, LogDevice: m.log, DC: m.dc,
		Epoch: 1, Stats: &m.stats,
	})
	m.ship = repl.NewShipper(repl.ShipperConfig{
		TC: m.left.tc, Link: m.link, Epoch: 1, Stats: &m.stats,
		Window: 8, AckTimeout: 5 * time.Millisecond,
		RetryBase: 200 * time.Microsecond, RetryMax: 5 * time.Millisecond,
		Poll: 50 * time.Microsecond, Seed: m.cfg.Seed,
	})
	m.stby.Start()
	m.ship.Start()
	return nil
}

func (m *Merge) catchup(ctx context.Context) error {
	if err := m.left.tc.Flush(); err != nil {
		return err
	}
	target := m.left.tc.DurableLSN()
	deadline := time.Now().Add(m.cfg.CatchupWait)
	for m.stby.AppliedLSN() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("applied %d < durable %d after %v: %w",
				m.stby.AppliedLSN(), target, m.cfg.CatchupWait, ErrCatchup)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

func (m *Merge) drain(ctx context.Context) error {
	deadline := time.Now().Add(m.cfg.DrainWait)
	for m.left.inflight.Load() > 0 || m.right.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("%d+%d operations still in flight on the fenced owners after %v: %w",
				m.left.inflight.Load(), m.right.inflight.Load(), m.cfg.DrainWait, ErrCatchup)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := m.left.tc.Flush(); err != nil {
		return err
	}
	if err := m.right.tc.Flush(); err != nil {
		return err
	}
	if err := m.ship.Drain(m.cfg.DrainWait); err != nil {
		return err
	}
	final := m.left.tc.DurableLSN()
	for m.stby.AppliedLSN() < final {
		if time.Now().After(deadline) {
			return fmt.Errorf("target applied %d < left durable %d: %w",
				m.stby.AppliedLSN(), final, ErrCatchup)
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// seal stops the stream, seals the standby, builds the merged owner's TC
// continuing the left source's log, and copies the right source's final
// state in through batched, logged transactions. The right source is
// fenced and drained, so its state is immutable; re-running the copy
// after a crash writes the same values again — idempotent, like every
// other redo in the machine. The new TC's commit clock starts at the max
// of both sources' clocks so the merged timeline stays monotonic.
func (m *Merge) seal(ctx context.Context) error {
	m.ship.Stop()
	m.stby.Stop()
	applied, maxTS := m.stby.Seal(2)
	if durable := m.left.tc.DurableLSN(); applied != durable {
		return fmt.Errorf("sealed at applied %d but left durable is %d: %w",
			applied, durable, ErrCatchup)
	}
	if clk := m.right.tc.Clock(); clk > maxTS {
		maxTS = clk
	}
	o, err := m.r.sealedOwner(m.mergedSlot, m.dc, m.log, applied, maxTS, m.cfg.Seed)
	if err != nil {
		return err
	}
	if err := m.copyRight(ctx, o.tc); err != nil {
		o.eng.Close()
		return fmt.Errorf("fold right shard state: %w", err)
	}
	m.newOwn = o
	return nil
}

// copyRight replays the right source's final state onto the merged TC in
// batched transactions.
func (m *Merge) copyRight(ctx context.Context, dst *tc.TC) error {
	var keys, vals [][]byte
	err := m.right.eng.Scan(ctx, nil, 0, func(k, v []byte) bool {
		keys = append(keys, append([]byte(nil), k...))
		vals = append(vals, append([]byte(nil), v...))
		return true
	})
	if err != nil {
		return err
	}
	const batch = 128
	for i := 0; i < len(keys); i += batch {
		tx, err := dst.Begin()
		if err != nil {
			return err
		}
		for j := i; j < len(keys) && j < i+batch; j++ {
			if err := tx.Write(keys[j], vals[j]); err != nil {
				tx.Abort()
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}
