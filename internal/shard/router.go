package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"costperf/internal/backoff"
	"costperf/internal/engine"
	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/repl"
	"costperf/internal/ssd"
	"costperf/internal/tc"
)

// Config builds a Router.
type Config struct {
	// Shards is the number of initial hash-range partitions (required,
	// >= 1). The count is elastic for the router's lifetime: Split and
	// Merge resize the map, Migrate moves one shard to a new owner.
	Shards int

	// NewDC builds a fresh data component for one shard replica. Nil
	// defaults to NewMassDC. It is called once per plain shard, twice per
	// replicated shard (primary + standby), and once per migration or
	// resize target.
	NewDC func(shard int) tc.DataComponent
	// NewLog builds a fresh recovery-log device with the given name. Nil
	// defaults to a fast plain ssd.Device; pass a constructor returning
	// an ssd.Mirror to give every shard log self-healing redundancy.
	NewLog func(name string) ssd.Dev

	// Standby, when set, runs every shard as a repl.Cluster: a warm
	// standby continuously applies the shard's shipped log, writes are
	// semi-synchronous, and a latched-degraded primary fails over
	// automatically — per-shard, without touching the other shards.
	Standby bool
	// Net supplies the ship-link fault injector for a replicated shard
	// (nil shard injector = perfect link). Ignored without Standby.
	Net func(shard int) *fault.NetInjector
	// CommitWait bounds each replicated shard's semi-synchronous ack wait
	// (default per repl.ClusterConfig).
	CommitWait time.Duration

	// MaxConcurrent / MaxQueue / DefaultTimeout configure each shard's
	// engine front-end (per-shard admission control and breaker; zero
	// values take the engine defaults).
	MaxConcurrent  int
	MaxQueue       int
	DefaultTimeout time.Duration

	// Adaptive switches every shard engine's admission limiter from the
	// static MaxConcurrent semaphore to the gradient limiter, with
	// AdaptiveMin/AdaptiveMax bounding the learned limit and LimitWindow
	// the samples per adjustment (zero values take the engine defaults).
	// Each shard learns its own limit: a slow shard sheds while its
	// siblings keep serving.
	Adaptive    bool
	AdaptiveMin int
	AdaptiveMax int
	LimitWindow int

	// CutoverWait bounds how long an operation that hit a fenced owner
	// waits for the new owner to install before ErrMoved escapes to the
	// caller (default 2s).
	CutoverWait time.Duration
	// MovedRetryBase/MovedRetryMax shape the jittered exponential backoff
	// between a moved operation's re-dispatches — the same
	// d = min(base<<n, max), uniform [d/2, d] shape the engine's breaker
	// probes and the wire client use, so a cutover waking hundreds of
	// parked writers does not re-dispatch them as one thundering herd
	// (defaults 100us / 5ms).
	MovedRetryBase time.Duration
	MovedRetryMax  time.Duration
	// FailFastScans makes scatter-gather scans return the first shard
	// failure instead of merging the survivors and reporting a
	// *PartialScanError.
	FailFastScans bool

	// Registry, when non-nil, traces every shard into its own named
	// tracer ("shard<slot>"): per-shard CostSnapshots that Rollup folds
	// into a fleet-level $/op table. Each shard's log devices report
	// their physical I/O to the same tracer.
	Registry *obs.Registry

	// LogBufferBytes passes through to each shard's TC (0 = tc default).
	LogBufferBytes int
	// Seed seeds per-shard jitter (breaker probes, ship backoff, moved
	// re-dispatch).
	Seed int64
}

// Stats counts router-level events; per-shard operation counts live in
// the shards' engines and tracers.
type Stats struct {
	// MovedRetries counts operations that hit a fenced owner and were
	// re-run against the newly installed one.
	MovedRetries metrics.Counter
	// CutoverTimeouts counts operations that gave up waiting for a new
	// owner (ErrMoved escaped to the caller).
	CutoverTimeouts metrics.Counter
	// PartialScans counts scatter-gather scans that returned a
	// *PartialScanError.
	PartialScans metrics.Counter
	// Fences counts owners fenced by migrations and resizes; Migrations
	// counts completed single-shard cutovers; Splits and Merges count
	// completed resizes.
	Fences     metrics.Counter
	Migrations metrics.Counter
	Splits     metrics.Counter
	Merges     metrics.Counter
}

// owner is one shard's current backing instance. A migration builds a new
// owner at gen+1 and atomically replaces the old one; a resize retires
// the source owners entirely and mints fresh slots. Either way the
// replaced owner's fenced flag stays set forever — its generation can
// never become current again.
type owner struct {
	shard int
	gen   uint64

	eng     *engine.Engine
	tc      *tc.TC        // plain shards (migration/resize source/target)
	cluster *repl.Cluster // replicated shards
	log     ssd.Dev       // plain shards: the recovery-log device

	fenced atomic.Bool
	// inflight counts writes in progress on this owner. Reads never
	// count: they don't touch the log, so a migration drain only has to
	// wait out the writes that slipped past the gate before the fence.
	inflight atomic.Int64
}

// gate is the owner's commit gate: installed into its TC, consulted at
// the start of every commit, so a stale owner cannot acknowledge writes
// after the fence — the same mechanism repl uses to fence demoted
// primaries.
func (o *owner) gate() error {
	if o.fenced.Load() {
		return fmt.Errorf("shard %d owner gen %d fenced: %w", o.shard, o.gen, ErrMoved)
	}
	return nil
}

// health returns the owner's store-level health latch.
func (o *owner) health() *metrics.Health {
	if o.cluster != nil {
		return o.cluster.Health()
	}
	return &o.tc.Stats().Health
}

// table is one immutable routing state: the placement map plus the live
// owner of every slot the map names. Installs build a new table and swap
// the pointer; readers route through whatever table they loaded without
// locks.
type table struct {
	m      *Map
	owners map[int]*owner
}

// clone copies the table for mutation at epoch+1.
func (t *table) clone(m *Map) *table {
	owners := make(map[int]*owner, len(t.owners))
	for id, o := range t.owners {
		owners[id] = o
	}
	return &table{m: m, owners: owners}
}

// Router hash-partitions keys across independent shards by an
// epoch-versioned range map. It satisfies engine.Store (and therefore
// wire.Backend), so everything that fronts a single store can front a
// fleet unchanged — and the fleet can change shape underneath it.
type Router struct {
	cfg Config
	tab atomic.Pointer[table]

	mu       sync.Mutex
	wake     chan struct{} // closed+replaced on every install
	retired  []*owner      // fenced ex-owners kept alive for audits; closed on Close
	resizing map[int]bool  // slots with a migration or resize in flight
	nextSlot int           // next fresh slot number a resize mints
	closed   bool

	moved *backoff.Source // jittered backoff between moved re-dispatches

	stats  Stats
	health metrics.Health // router-level: latches only if every shard is degraded
}

// New builds the router and its shards under the even epoch-0 map.
func New(cfg Config) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.NewDC == nil {
		cfg.NewDC = func(int) tc.DataComponent { return NewMassDC() }
	}
	if cfg.NewLog == nil {
		cfg.NewLog = func(name string) ssd.Dev {
			return ssd.New(ssd.Config{Name: name, MaxIOPS: 1e6, LatencySec: 20e-6})
		}
	}
	if cfg.CutoverWait <= 0 {
		cfg.CutoverWait = 2 * time.Second
	}
	if cfg.MovedRetryBase <= 0 {
		cfg.MovedRetryBase = 100 * time.Microsecond
	}
	if cfg.MovedRetryMax < cfg.MovedRetryBase {
		cfg.MovedRetryMax = 5 * time.Millisecond
		if cfg.MovedRetryMax < cfg.MovedRetryBase {
			cfg.MovedRetryMax = cfg.MovedRetryBase
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	r := &Router{
		cfg:      cfg,
		wake:     make(chan struct{}),
		resizing: map[int]bool{},
		nextSlot: cfg.Shards,
		moved: backoff.New(backoff.Policy{
			Base: cfg.MovedRetryBase, Max: cfg.MovedRetryMax,
		}, cfg.Seed^0x7e1a57),
	}
	t := &table{m: NewEvenMap(cfg.Shards), owners: make(map[int]*owner, cfg.Shards)}
	for i := 0; i < cfg.Shards; i++ {
		o, err := r.newOwner(i, 1)
		if err != nil {
			for _, built := range t.owners {
				built.eng.Close()
			}
			return nil, err
		}
		t.owners[i] = o
	}
	r.tab.Store(t)
	return r, nil
}

// tracer returns the shard's named tracer, or nil without a registry.
func (r *Router) tracer(shard int) *obs.Tracer {
	if r.cfg.Registry == nil {
		return nil
	}
	return r.cfg.Registry.Tracer(fmt.Sprintf("shard%d", shard))
}

// newOwner builds a fresh owner for a shard at the given generation:
// either a plain gated TC or a replicated cluster, behind its own engine
// front-end.
func (r *Router) newOwner(shard int, gen uint64) (*owner, error) {
	tr := r.tracer(shard)
	o := &owner{shard: shard, gen: gen}
	var store engine.Store
	if r.cfg.Standby {
		var net *fault.NetInjector
		if r.cfg.Net != nil {
			net = r.cfg.Net(shard)
		}
		plog := r.cfg.NewLog(fmt.Sprintf("shard%d-primary-log.%d", shard, gen))
		slog := r.cfg.NewLog(fmt.Sprintf("shard%d-standby-log.%d", shard, gen))
		if tr != nil {
			plog.SetObserver(tr)
			slog.SetObserver(tr)
		}
		cl, err := repl.NewCluster(repl.ClusterConfig{
			PrimaryDC: r.cfg.NewDC(shard), PrimaryLog: plog,
			StandbyDC: r.cfg.NewDC(shard), StandbyLog: slog,
			Net:          net,
			CommitWait:   r.cfg.CommitWait,
			AutoFailover: true,
			AckTimeout:   5 * time.Millisecond,
			RetryBase:    200 * time.Microsecond,
			RetryMax:     5 * time.Millisecond,
			Poll:         50 * time.Microsecond,
			Window:       8,
			Seed:         r.cfg.Seed + int64(shard),
			Obs:          tr,
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d cluster: %w", shard, err)
		}
		o.cluster = cl
		store = cl
	} else {
		log := r.cfg.NewLog(fmt.Sprintf("shard%d-log.%d", shard, gen))
		if tr != nil {
			log.SetObserver(tr)
		}
		t, err := tc.New(tc.Config{
			DC: r.cfg.NewDC(shard), LogDevice: log,
			LogBufferBytes: r.cfg.LogBufferBytes,
			CommitGate:     o.gate,
			Obs:            tr,
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d tc: %w", shard, err)
		}
		o.tc = t
		o.log = log
		store = engine.WrapTC(t)
	}
	eng, err := engine.New(engine.Config{
		Store:           store,
		MaxConcurrent:   r.cfg.MaxConcurrent,
		MaxQueue:        r.cfg.MaxQueue,
		DefaultTimeout:  r.cfg.DefaultTimeout,
		ProbeJitterSeed: r.cfg.Seed + int64(shard),
		Adaptive:        r.cfg.Adaptive,
		AdaptiveMin:     r.cfg.AdaptiveMin,
		AdaptiveMax:     r.cfg.AdaptiveMax,
		LimitWindow:     r.cfg.LimitWindow,
	})
	if err != nil {
		return nil, fmt.Errorf("shard %d engine: %w", shard, err)
	}
	o.eng = eng
	if tr != nil {
		tr.FoldLimiter(eng.Limiter().Stats())
	}
	return o, nil
}

// Shards reports the live shard count (elastic: splits grow it, merges
// shrink it); MapEpoch the map version. Together with the placement
// table they are what a MOVED response teaches wire clients.
func (r *Router) Shards() int      { return len(r.tab.Load().m.Entries) }
func (r *Router) MapEpoch() uint64 { return r.tab.Load().m.Epoch }
func (r *Router) Stats() *Stats    { return &r.stats }

// Map returns the live placement map. The map is immutable; callers may
// hold it, encode it, or diff it against a later one to measure key
// movement.
func (r *Router) Map() *Map { return r.tab.Load().m }

// ShardMap implements the optional wire ShardMapper capability: the
// server attaches the full epoch-numbered placement table to every MOVED
// status so clients re-learn the map mid-resize without an extra round
// trip.
func (r *Router) ShardMap() *Map { return r.tab.Load().m }

// SlotOfKey routes a key under the live map (tests and fleet-aware
// callers; SlotOf covers the static pre-resize placement).
func (r *Router) SlotOfKey(key []byte) int { return r.tab.Load().m.SlotOfKey(key) }

// ShardHealth returns the health latch of one shard's current owner —
// the per-shard fault-domain view — or nil if the slot is not in the
// live map.
func (r *Router) ShardHealth(shard int) *metrics.Health {
	if o := r.tab.Load().owners[shard]; o != nil {
		return o.health()
	}
	return nil
}

// Engine exposes one shard's engine front-end (stats, direct access for
// harnesses that fault a single shard); nil if the slot is not live.
func (r *Router) Engine(shard int) *engine.Engine {
	if o := r.tab.Load().owners[shard]; o != nil {
		return o.eng
	}
	return nil
}

// Cluster exposes one shard's replicated cluster (nil for plain shards
// and slots not in the live map).
func (r *Router) Cluster(shard int) *repl.Cluster {
	if o := r.tab.Load().owners[shard]; o != nil {
		return o.cluster
	}
	return nil
}

// ShardSnapshot returns one live shard's cost snapshot (zero, false
// without a registry or for a slot not in the map). The rebalancer polls
// these into its decision window.
func (r *Router) ShardSnapshot(shard int) (obs.CostSnapshot, bool) {
	if r.cfg.Registry == nil {
		return obs.CostSnapshot{}, false
	}
	if !r.tab.Load().m.HasSlot(shard) {
		return obs.CostSnapshot{}, false
	}
	return r.tracer(shard).Snapshot(), true
}

// Health implements engine.Store. The router's own latch never trips —
// partial availability is the point — so it reports healthy as long as
// the router is open; per-shard state is in ShardHealth.
func (r *Router) Health() *metrics.Health { return &r.health }

// RetryAfterHint implements the wire server's Adviser capability for a
// sharded backend: the hint a shed client should wait is the worst of
// the live shards' hints — a retry routed anywhere must clear the most
// congested shard it might land on.
func (r *Router) RetryAfterHint() time.Duration {
	var worst time.Duration
	for _, o := range r.tab.Load().owners {
		if d := o.eng.RetryAfterHint(); d > worst {
			worst = d
		}
	}
	return worst
}

// awaitInstall blocks until the map epoch passes the one the caller
// routed under, the cutover wait elapses, or ctx ends.
func (r *Router) awaitInstall(ctx context.Context, epoch uint64) error {
	timer := time.NewTimer(r.cfg.CutoverWait)
	defer timer.Stop()
	for {
		r.mu.Lock()
		wake := r.wake
		r.mu.Unlock()
		if r.tab.Load().m.Epoch > epoch {
			return nil
		}
		select {
		case <-wake:
		case <-timer.C:
			r.stats.CutoverTimeouts.Inc()
			return fmt.Errorf("cutover not installed within %v: %w",
				r.cfg.CutoverWait, ErrMoved)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// movedBackoff sleeps the jittered exponential interval before a moved
// operation re-dispatches — the shared backoff shape the engine's
// breaker probes and the wire client also draw from.
func (r *Router) movedBackoff(ctx context.Context, attempt int) error {
	return r.moved.Sleep(ctx, attempt)
}

// do routes one operation to the key's shard and absorbs the races a
// live migration or resize creates: a fenced owner rejecting the op with
// ErrMoved, and a retired owner closed under the op. Both wait for the
// next map install and retry against the new placement, with jittered
// exponential backoff between re-dispatches.
func (r *Router) do(ctx context.Context, key []byte, write bool, op func(o *owner) error) error {
	h := Hash(key)
	for attempt := 1; ; attempt++ {
		t := r.tab.Load()
		o := t.owners[t.m.Slot(h)]
		if write {
			o.inflight.Add(1)
		}
		err := op(o)
		if write {
			o.inflight.Add(-1)
		}
		switch {
		case err == nil:
			return nil
		case errorsIsMovedOrRetired(err):
			r.stats.MovedRetries.Inc()
			if werr := r.awaitInstall(ctx, t.m.Epoch); werr != nil {
				return werr
			}
			if berr := r.movedBackoff(ctx, attempt); berr != nil {
				return berr
			}
			continue
		default:
			return err
		}
	}
}

// errorsIsMovedOrRetired classifies errors worth retrying on the next
// owner: a fenced commit (ErrMoved) or an op that raced the retirement of
// an already-replaced owner (engine/tc closed).
func errorsIsMovedOrRetired(err error) bool {
	return errors.Is(err, ErrMoved) || errors.Is(err, engine.ErrClosed) || errors.Is(err, tc.ErrClosed)
}

// Get implements engine.Store.
func (r *Router) Get(ctx context.Context, key []byte) (val []byte, ok bool, err error) {
	err = r.do(ctx, key, false, func(o *owner) error {
		val, ok, err = o.eng.Get(ctx, key)
		return err
	})
	return val, ok, err
}

// Put implements engine.Store.
func (r *Router) Put(ctx context.Context, key, val []byte) error {
	return r.do(ctx, key, true, func(o *owner) error { return o.eng.Put(ctx, key, val) })
}

// Delete implements engine.Store.
func (r *Router) Delete(ctx context.Context, key []byte) error {
	return r.do(ctx, key, true, func(o *owner) error { return o.eng.Delete(ctx, key) })
}

// finishInstall publishes the new table and wakes every operation parked
// in awaitInstall. Callers hold r.mu. Replaced owners stay fenced and
// alive — audits can still prove their commits are rejected — until the
// router closes.
func (r *Router) finishInstall(t *table, retire ...*owner) {
	r.retired = append(r.retired, retire...)
	r.tab.Store(t)
	close(r.wake)
	r.wake = make(chan struct{})
}

// installOwner is the migration cutover: same slot, new owner generation,
// epoch+1.
func (r *Router) installOwner(slot int, o *owner) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.tab.Load()
	t := cur.clone(cur.m.withEpochBump())
	old := t.owners[slot]
	t.owners[slot] = o
	r.finishInstall(t, old)
	r.stats.Migrations.Inc()
	delete(r.resizing, slot)
}

// installSplit is the split cutover: the source slot's entry becomes two
// entries owned by the freshly minted low/high slots, the source owner is
// retired, epoch+1.
func (r *Router) installSplit(srcSlot int, at uint64, low, high *owner) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.tab.Load()
	t := cur.clone(cur.m.withSplit(srcSlot, at, low.shard, high.shard))
	old := t.owners[srcSlot]
	delete(t.owners, srcSlot)
	t.owners[low.shard] = low
	t.owners[high.shard] = high
	r.finishInstall(t, old)
	r.stats.Splits.Inc()
	delete(r.resizing, srcSlot)
}

// installMerge is the merge cutover: the two adjacent source entries
// become one entry owned by the freshly minted slot, both source owners
// are retired, epoch+1.
func (r *Router) installMerge(leftSlot, rightSlot int, merged *owner) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.tab.Load()
	t := cur.clone(cur.m.withMerge(leftSlot, rightSlot, merged.shard))
	left, right := t.owners[leftSlot], t.owners[rightSlot]
	delete(t.owners, leftSlot)
	delete(t.owners, rightSlot)
	t.owners[merged.shard] = merged
	r.finishInstall(t, left, right)
	r.stats.Merges.Inc()
	delete(r.resizing, leftSlot)
	delete(r.resizing, rightSlot)
}

// Snapshots returns the per-shard cost snapshots (nil without a
// registry); feed them to Rollup for the fleet-level $/op view. The
// registry accumulates tracers across resizes, so retired slots' rows
// remain until the registry is reset.
func (r *Router) Snapshots() []obs.CostSnapshot {
	if r.cfg.Registry == nil {
		return nil
	}
	return r.cfg.Registry.Snapshots()
}

// LiveSnapshots returns cost snapshots for the live slots only, in hash
// order — the rebalancer's view (retired slots can no longer be acted
// on).
func (r *Router) LiveSnapshots() []obs.CostSnapshot {
	if r.cfg.Registry == nil {
		return nil
	}
	t := r.tab.Load()
	out := make([]obs.CostSnapshot, 0, len(t.m.Entries))
	for _, e := range t.m.Entries {
		out = append(out, r.tracer(e.Slot).Snapshot())
	}
	return out
}

// Close shuts every shard (current and retired owners) down.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	retired := r.retired
	r.retired = nil
	r.mu.Unlock()

	var first error
	for _, o := range retired {
		if err := o.eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, o := range r.tab.Load().owners {
		if err := o.eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
