package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"costperf/internal/engine"
	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/repl"
	"costperf/internal/ssd"
	"costperf/internal/tc"
)

// Config builds a Router.
type Config struct {
	// Shards is the number of hash partitions (required, >= 1). The count
	// is fixed for the router's lifetime; migration moves a shard to a
	// new owner, it does not resize the map.
	Shards int

	// NewDC builds a fresh data component for one shard replica. Nil
	// defaults to NewMassDC. It is called once per plain shard, twice per
	// replicated shard (primary + standby), and once per migration target.
	NewDC func(shard int) tc.DataComponent
	// NewLog builds a fresh recovery-log device with the given name. Nil
	// defaults to a fast plain ssd.Device; pass a constructor returning
	// an ssd.Mirror to give every shard log self-healing redundancy.
	NewLog func(name string) ssd.Dev

	// Standby, when set, runs every shard as a repl.Cluster: a warm
	// standby continuously applies the shard's shipped log, writes are
	// semi-synchronous, and a latched-degraded primary fails over
	// automatically — per-shard, without touching the other shards.
	Standby bool
	// Net supplies the ship-link fault injector for a replicated shard
	// (nil shard injector = perfect link). Ignored without Standby.
	Net func(shard int) *fault.NetInjector
	// CommitWait bounds each replicated shard's semi-synchronous ack wait
	// (default per repl.ClusterConfig).
	CommitWait time.Duration

	// MaxConcurrent / MaxQueue / DefaultTimeout configure each shard's
	// engine front-end (per-shard admission control and breaker; zero
	// values take the engine defaults).
	MaxConcurrent  int
	MaxQueue       int
	DefaultTimeout time.Duration

	// CutoverWait bounds how long an operation that hit a fenced owner
	// waits for the new owner to install before ErrMoved escapes to the
	// caller (default 2s).
	CutoverWait time.Duration
	// FailFastScans makes scatter-gather scans return the first shard
	// failure instead of merging the survivors and reporting a
	// *PartialScanError.
	FailFastScans bool

	// Registry, when non-nil, traces every shard into its own named
	// tracer ("shard0".."shardN-1"): per-shard CostSnapshots that
	// Rollup folds into a fleet-level $/op table. Each shard's log
	// devices report their physical I/O to the same tracer.
	Registry *obs.Registry

	// LogBufferBytes passes through to each shard's TC (0 = tc default).
	LogBufferBytes int
	// Seed seeds per-shard jitter (breaker probes, ship backoff).
	Seed int64
}

// Stats counts router-level events; per-shard operation counts live in
// the shards' engines and tracers.
type Stats struct {
	// MovedRetries counts operations that hit a fenced owner and were
	// re-run against the newly installed one.
	MovedRetries metrics.Counter
	// CutoverTimeouts counts operations that gave up waiting for a new
	// owner (ErrMoved escaped to the caller).
	CutoverTimeouts metrics.Counter
	// PartialScans counts scatter-gather scans that returned a
	// *PartialScanError.
	PartialScans metrics.Counter
	// Fences counts owners fenced by migrations; Migrations counts
	// completed cutovers.
	Fences     metrics.Counter
	Migrations metrics.Counter
}

// owner is one shard's current backing instance. A migration builds a new
// owner at gen+1 and atomically replaces the old one, whose fenced flag
// stays set forever — its generation can never become current again.
type owner struct {
	shard int
	gen   uint64

	eng     *engine.Engine
	tc      *tc.TC        // plain shards (migration source/target)
	cluster *repl.Cluster // replicated shards
	log     ssd.Dev       // plain shards: the recovery-log device

	fenced atomic.Bool
	// inflight counts writes in progress on this owner. Reads never
	// count: they don't touch the log, so a migration drain only has to
	// wait out the writes that slipped past the gate before the fence.
	inflight atomic.Int64
}

// gate is the owner's commit gate: installed into its TC, consulted at
// the start of every commit, so a stale owner cannot acknowledge writes
// after the fence — the same mechanism repl uses to fence demoted
// primaries.
func (o *owner) gate() error {
	if o.fenced.Load() {
		return fmt.Errorf("shard %d owner gen %d fenced: %w", o.shard, o.gen, ErrMoved)
	}
	return nil
}

// health returns the owner's store-level health latch.
func (o *owner) health() *metrics.Health {
	if o.cluster != nil {
		return o.cluster.Health()
	}
	return &o.tc.Stats().Health
}

// slot is one entry of the shard map.
type slot struct {
	cur  atomic.Pointer[owner]
	wake chan struct{} // closed+replaced on install (guarded by Router.mu)
}

// Router hash-partitions keys across independent shards. It satisfies
// engine.Store (and therefore wire.Backend), so everything that fronts a
// single store can front a fleet unchanged.
type Router struct {
	cfg   Config
	slots []*slot

	mu        sync.Mutex
	retired   []*owner     // fenced ex-owners kept alive for audits; closed on Close
	migrating map[int]bool // shards with a migration in flight
	closed    bool

	mapEpoch atomic.Uint64 // bumped on every install; crosses the wire in MOVED
	stats    Stats
	health   metrics.Health // router-level: latches only if every shard is degraded
}

// New builds the router and its shards.
func New(cfg Config) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.NewDC == nil {
		cfg.NewDC = func(int) tc.DataComponent { return NewMassDC() }
	}
	if cfg.NewLog == nil {
		cfg.NewLog = func(name string) ssd.Dev {
			return ssd.New(ssd.Config{Name: name, MaxIOPS: 1e6, LatencySec: 20e-6})
		}
	}
	if cfg.CutoverWait <= 0 {
		cfg.CutoverWait = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	r := &Router{cfg: cfg, migrating: map[int]bool{}}
	r.slots = make([]*slot, cfg.Shards)
	for i := range r.slots {
		r.slots[i] = &slot{wake: make(chan struct{})}
		o, err := r.newOwner(i, 1)
		if err != nil {
			for j := 0; j < i; j++ {
				r.slots[j].cur.Load().eng.Close()
			}
			return nil, err
		}
		r.slots[i].cur.Store(o)
	}
	return r, nil
}

// tracer returns the shard's named tracer, or nil without a registry.
func (r *Router) tracer(shard int) *obs.Tracer {
	if r.cfg.Registry == nil {
		return nil
	}
	return r.cfg.Registry.Tracer(fmt.Sprintf("shard%d", shard))
}

// newOwner builds a fresh owner for a shard at the given generation:
// either a plain gated TC or a replicated cluster, behind its own engine
// front-end.
func (r *Router) newOwner(shard int, gen uint64) (*owner, error) {
	tr := r.tracer(shard)
	o := &owner{shard: shard, gen: gen}
	var store engine.Store
	if r.cfg.Standby {
		var net *fault.NetInjector
		if r.cfg.Net != nil {
			net = r.cfg.Net(shard)
		}
		plog := r.cfg.NewLog(fmt.Sprintf("shard%d-primary-log.%d", shard, gen))
		slog := r.cfg.NewLog(fmt.Sprintf("shard%d-standby-log.%d", shard, gen))
		if tr != nil {
			plog.SetObserver(tr)
			slog.SetObserver(tr)
		}
		cl, err := repl.NewCluster(repl.ClusterConfig{
			PrimaryDC: r.cfg.NewDC(shard), PrimaryLog: plog,
			StandbyDC: r.cfg.NewDC(shard), StandbyLog: slog,
			Net:          net,
			CommitWait:   r.cfg.CommitWait,
			AutoFailover: true,
			AckTimeout:   5 * time.Millisecond,
			RetryBase:    200 * time.Microsecond,
			RetryMax:     5 * time.Millisecond,
			Poll:         50 * time.Microsecond,
			Window:       8,
			Seed:         r.cfg.Seed + int64(shard),
			Obs:          tr,
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d cluster: %w", shard, err)
		}
		o.cluster = cl
		store = cl
	} else {
		log := r.cfg.NewLog(fmt.Sprintf("shard%d-log.%d", shard, gen))
		if tr != nil {
			log.SetObserver(tr)
		}
		t, err := tc.New(tc.Config{
			DC: r.cfg.NewDC(shard), LogDevice: log,
			LogBufferBytes: r.cfg.LogBufferBytes,
			CommitGate:     o.gate,
			Obs:            tr,
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d tc: %w", shard, err)
		}
		o.tc = t
		o.log = log
		store = engine.WrapTC(t)
	}
	eng, err := engine.New(engine.Config{
		Store:           store,
		MaxConcurrent:   r.cfg.MaxConcurrent,
		MaxQueue:        r.cfg.MaxQueue,
		DefaultTimeout:  r.cfg.DefaultTimeout,
		ProbeJitterSeed: r.cfg.Seed + int64(shard),
	})
	if err != nil {
		return nil, fmt.Errorf("shard %d engine: %w", shard, err)
	}
	o.eng = eng
	return o, nil
}

// Shards reports the shard count; MapEpoch the installs so far. Together
// they are the shard map a MOVED response teaches wire clients.
func (r *Router) Shards() int      { return len(r.slots) }
func (r *Router) MapEpoch() uint64 { return r.mapEpoch.Load() }
func (r *Router) Stats() *Stats    { return &r.stats }

// ShardMap implements the optional wire ShardMapper capability: the
// server attaches (epoch, shards) to every MOVED status so clients learn
// the new map without an extra round trip.
func (r *Router) ShardMap() (epoch uint64, shards int) {
	return r.mapEpoch.Load(), len(r.slots)
}

// ShardHealth returns the health latch of one shard's current owner —
// the per-shard fault-domain view (a degraded shard is 1/N of the keys).
func (r *Router) ShardHealth(shard int) *metrics.Health {
	return r.slots[shard].cur.Load().health()
}

// Engine exposes one shard's engine front-end (stats, direct access for
// harnesses that fault a single shard).
func (r *Router) Engine(shard int) *engine.Engine {
	return r.slots[shard].cur.Load().eng
}

// Cluster exposes one shard's replicated cluster (nil for plain shards).
func (r *Router) Cluster(shard int) *repl.Cluster {
	return r.slots[shard].cur.Load().cluster
}

// Health implements engine.Store. The router's own latch never trips —
// partial availability is the point — so it reports healthy as long as
// the router is open; per-shard state is in ShardHealth.
func (r *Router) Health() *metrics.Health { return &r.health }

// cur returns a shard's current owner.
func (r *Router) cur(shard int) *owner { return r.slots[shard].cur.Load() }

// awaitInstall blocks until the shard's owner generation passes gen, the
// cutover wait elapses, or ctx ends.
func (r *Router) awaitInstall(ctx context.Context, shard int, gen uint64) error {
	timer := time.NewTimer(r.cfg.CutoverWait)
	defer timer.Stop()
	for {
		s := r.slots[shard]
		r.mu.Lock()
		wake := s.wake
		r.mu.Unlock()
		if s.cur.Load().gen > gen {
			return nil
		}
		select {
		case <-wake:
		case <-timer.C:
			r.stats.CutoverTimeouts.Inc()
			return fmt.Errorf("shard %d cutover not installed within %v: %w",
				shard, r.cfg.CutoverWait, ErrMoved)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// do routes one operation to the key's shard and absorbs the two races a
// live migration creates: a fenced owner rejecting the op with ErrMoved,
// and a retired owner closed under the op. Both retry transparently
// against the newly installed owner.
func (r *Router) do(ctx context.Context, key []byte, write bool, op func(o *owner) error) error {
	shard := SlotOf(key, len(r.slots))
	for {
		o := r.cur(shard)
		if write {
			o.inflight.Add(1)
		}
		err := op(o)
		if write {
			o.inflight.Add(-1)
		}
		switch {
		case err == nil:
			return nil
		case errorsIsMovedOrRetired(err):
			r.stats.MovedRetries.Inc()
			if werr := r.awaitInstall(ctx, shard, o.gen); werr != nil {
				return werr
			}
			continue
		default:
			return err
		}
	}
}

// errorsIsMovedOrRetired classifies errors worth retrying on the next
// owner: a fenced commit (ErrMoved) or an op that raced the retirement of
// an already-replaced owner (engine/tc closed).
func errorsIsMovedOrRetired(err error) bool {
	return errors.Is(err, ErrMoved) || errors.Is(err, engine.ErrClosed) || errors.Is(err, tc.ErrClosed)
}

// Get implements engine.Store.
func (r *Router) Get(ctx context.Context, key []byte) (val []byte, ok bool, err error) {
	err = r.do(ctx, key, false, func(o *owner) error {
		val, ok, err = o.eng.Get(ctx, key)
		return err
	})
	return val, ok, err
}

// Put implements engine.Store.
func (r *Router) Put(ctx context.Context, key, val []byte) error {
	return r.do(ctx, key, true, func(o *owner) error { return o.eng.Put(ctx, key, val) })
}

// Delete implements engine.Store.
func (r *Router) Delete(ctx context.Context, key []byte) error {
	return r.do(ctx, key, true, func(o *owner) error { return o.eng.Delete(ctx, key) })
}

// install makes o the shard's current owner (the migration cutover) and
// wakes every operation parked in awaitInstall. The replaced owner stays
// fenced and alive — audits can still prove its commits are rejected —
// until the router closes.
func (r *Router) install(shard int, o *owner) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.slots[shard]
	old := s.cur.Load()
	r.retired = append(r.retired, old)
	s.cur.Store(o)
	close(s.wake)
	s.wake = make(chan struct{})
	r.mapEpoch.Add(1)
	r.stats.Migrations.Inc()
	delete(r.migrating, shard)
}

// Snapshots returns the per-shard cost snapshots (nil without a
// registry); feed them to Rollup for the fleet-level $/op view.
func (r *Router) Snapshots() []obs.CostSnapshot {
	if r.cfg.Registry == nil {
		return nil
	}
	return r.cfg.Registry.Snapshots()
}

// Close shuts every shard (current and retired owners) down.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	retired := r.retired
	r.retired = nil
	r.mu.Unlock()

	var first error
	for _, o := range retired {
		if err := o.eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range r.slots {
		if err := s.cur.Load().eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
