// Package shard hash-partitions the keyspace across N independent
// engine+TC instances so a fault degrades 1/N of the keys instead of
// 100%.
//
// The paper's cost/performance argument (Eq. 7-8) assumes the caching
// hierarchy scales with traffic; Deuteronomy separates the transaction
// component from the data component exactly so data-management instances
// can be multiplied and moved independently. This package applies that
// idea to the hardened single-store front-end built in earlier PRs:
//
//   - Every shard is a full fault domain: its own recovery log (plain or
//     mirrored device), its own engine front-end (admission queue +
//     circuit breaker), its own health, and optionally its own warm
//     standby (repl.Cluster) with automatic failover. A latched-degraded
//     store, a quarantined mirror, or a dead log device takes down one
//     shard; the router keeps serving the rest.
//   - Scatter-gather scans merge the per-shard iterators into one
//     globally ordered stream. When a shard cannot serve its range the
//     caller chooses the failure mode: fail fast, or take the surviving
//     shards' data plus a typed *PartialScanError naming what is missing.
//   - Live migration moves one shard to a fresh owner while traffic
//     continues: the shard's recovery log is streamed to the new owner
//     with the internal/repl shipper, the old owner is fenced behind an
//     owner-generation epoch (its in-flight commits are rejected with
//     ErrMoved), the tail is drained, and the router cuts over. Requests
//     that race the cutover wait briefly for the new owner and retry
//     transparently.
package shard

import (
	"errors"

	"costperf/internal/masstree"
)

// Typed sentinels. errors.Is works through every wrapper in the package.
var (
	// ErrMoved reports a write routed to a shard owner that has been
	// fenced by a migration: the owner's generation is stale and its
	// commits are rejected. The router retries moved writes against the
	// new owner once it installs; ErrMoved escapes to the caller only
	// when the cutover outlasts the configured wait.
	ErrMoved = errors.New("shard: owner superseded by migration")
	// ErrPartialScan reports a scatter-gather scan that completed with
	// one or more shards unavailable. The concrete error is always a
	// *PartialScanError carrying the per-shard failures; the merged
	// output delivered before the error is the surviving shards' data,
	// correctly ordered.
	ErrPartialScan = errors.New("shard: partial scan result")
	// ErrMigrating rejects a migration of a shard that already has one
	// in flight (resume the existing *Migration instead).
	ErrMigrating = errors.New("shard: migration already in flight")
	// ErrReplicatedShard rejects live migration of a shard running as a
	// replicated cluster: its mobility story is the cluster's own
	// failover (promote the warm standby), not log re-shipping — the
	// standby already holds the byte-identical log.
	ErrReplicatedShard = errors.New("shard: replicated shards move by failover, not migration")
	// ErrCatchup reports a migration that could not bring the target's
	// applied log even with the source's durable log within the
	// configured bounds (for example because the migration link stayed
	// partitioned). The migration is resumable once the link heals.
	ErrCatchup = errors.New("shard: migration target failed to catch up")
	// ErrClosed is returned by operations on a closed router.
	ErrClosed = errors.New("shard: router closed")
	// ErrBadMap reports a shard map (typically a wire MOVED body) that
	// failed structural validation: wrong length, unsorted ranges,
	// duplicate slots. A damaged map is refused, never routed with.
	ErrBadMap = errors.New("shard: malformed shard map")
	// ErrNotAdjacent rejects a merge of two shards whose hash ranges are
	// not contiguous — only neighbors in the placement table can merge
	// into one range.
	ErrNotAdjacent = errors.New("shard: shards are not hash-adjacent")
	// ErrNoShard reports an operation naming a slot the current map does
	// not place (retired by a resize, or never existed).
	ErrNoShard = errors.New("shard: no such shard in the current map")
)

// fnv64 offset/prime (FNV-1a), inlined so routing needs no allocation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// SlotOf routes a key under the default n-shard placement: the even
// range map an n-shard router is born with (shardmap.go). Tests,
// benchmarks, and wire clients that pre-route use it; a router that has
// been resized routes by its live map instead (Router.SlotOfKey).
func SlotOf(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	return NewEvenMap(n).SlotOfKey(key)
}

// MassDC adapts a main-memory MassTree to tc.DataComponent (and
// tc.Scanner, so snapshot scans work). It is the default data component
// for router shards and the shared oracle/replica adapter the kvbench
// standby mode and the integration harnesses use.
type MassDC struct{ t *masstree.Tree }

// NewMassDC returns an empty MassTree-backed data component.
func NewMassDC() *MassDC { return &MassDC{t: masstree.New(nil)} }

// Get implements tc.DataComponent.
func (d *MassDC) Get(key []byte) ([]byte, bool, error) {
	v, ok := d.t.Get(key)
	return v, ok, nil
}

// BlindWrite implements tc.DataComponent.
func (d *MassDC) BlindWrite(key, val []byte) error { d.t.Put(key, val); return nil }

// Delete implements tc.DataComponent.
func (d *MassDC) Delete(key []byte) error { d.t.Delete(key); return nil }

// Scan implements tc.Scanner.
func (d *MassDC) Scan(start []byte, limit int, fn func(key, val []byte) bool) error {
	d.t.Scan(start, limit, fn)
	return nil
}

// Len reports the number of keys held.
func (d *MassDC) Len() int { return d.t.Len() }
