package shard

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// This file is the elastic shard map: a versioned, epoch-numbered
// placement table over the 64-bit FNV-1a hash space. Placement is by
// range over hash values — entry i owns [Entries[i].Start,
// Entries[i+1].Start) and the last entry runs to the top of the space —
// so a split moves only the upper half of ONE shard's range (~1/2N of
// the keys) and a merge moves only the two ranges it unites. The old
// FNV-modulo placement would have reshuffled nearly every key on any
// change of shard count; the range map is what makes resizing affordable
// (bounded movement) and teachable (the whole table fits in a MOVED
// response body).
//
// Slot numbers are stable identities, not positions: a split retires the
// parent's slot and mints two fresh ones, a merge retires both parents
// and mints one. A slot number therefore never changes meaning across
// the map's history — exactly like an owner generation, it can be fenced
// forever.

// Hash is the routing hash: FNV-1a over the key, finished with a 64-bit
// avalanche mix. Raw FNV-1a concentrates its entropy in the low bits —
// short sequential keys land in one range of a range-partitioned map —
// so the finalizer (the murmur3 fmix64 constants) spreads it across all
// 64 bits before range comparison. Stable across processes and releases:
// the wire client and server must agree on it for MOVED map teaching to
// mean anything.
func Hash(key []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Entry is one contiguous hash range of the map: the slot owns
// [Start, nextEntry.Start), and the last entry owns [Start, 2^64).
type Entry struct {
	Start uint64
	Slot  int
}

// Map is an immutable placement table at one epoch. Mutations return new
// maps at a higher epoch; readers hold a loaded map without locks.
type Map struct {
	Epoch   uint64
	Entries []Entry
}

// MaxMapEntries bounds a decoded map's size: far above any real fleet,
// low enough that a hostile MOVED body cannot make the client allocate
// unbounded memory.
const MaxMapEntries = 4096

// NewEvenMap builds the epoch-0 map: n even ranges owned by slots 0..n-1.
func NewEvenMap(n int) *Map {
	m := &Map{Entries: make([]Entry, n)}
	for i := 0; i < n; i++ {
		// Start_i = floor(i * 2^64 / n), computed without overflow.
		q, _ := bits.Div64(uint64(i), 0, uint64(n))
		m.Entries[i] = Entry{Start: q, Slot: i}
	}
	return m
}

// EntryIndex returns the index of the entry owning hash h.
func (m *Map) EntryIndex(h uint64) int {
	// First entry with Start > h, minus one. Entries[0].Start is 0, so
	// the result is always in range.
	i := sort.Search(len(m.Entries), func(i int) bool { return m.Entries[i].Start > h }) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// Slot returns the slot owning hash h.
func (m *Map) Slot(h uint64) int { return m.Entries[m.EntryIndex(h)].Slot }

// SlotOfKey routes a key: Slot(Hash(key)).
func (m *Map) SlotOfKey(key []byte) int { return m.Slot(Hash(key)) }

// Range returns entry i's hash range [lo, hi). hi == 0 means the range
// runs to the top of the 64-bit space (the last entry, or a map of one).
func (m *Map) Range(i int) (lo, hi uint64) {
	lo = m.Entries[i].Start
	if i+1 < len(m.Entries) {
		hi = m.Entries[i+1].Start
	}
	return lo, hi
}

// InRange reports whether h falls in [lo, hi), where hi == 0 means the
// top of the hash space.
func InRange(h, lo, hi uint64) bool {
	return h >= lo && (hi == 0 || h < hi)
}

// RangeFrac returns the fraction of the hash space [lo, hi) covers —
// the bounded-movement claim in measurable form.
func RangeFrac(lo, hi uint64) float64 {
	const full = float64(1<<63) * 2
	if hi == 0 {
		return (full - float64(lo)) / full
	}
	return float64(hi-lo) / full
}

// indexOfSlot returns the entry index owned by slot, or -1.
func (m *Map) indexOfSlot(slot int) int {
	for i, e := range m.Entries {
		if e.Slot == slot {
			return i
		}
	}
	return -1
}

// HasSlot reports whether the map has an entry owned by slot.
func (m *Map) HasSlot(slot int) bool { return m.indexOfSlot(slot) >= 0 }

// Slots returns the live slot numbers in hash order.
func (m *Map) Slots() []int {
	out := make([]int, len(m.Entries))
	for i, e := range m.Entries {
		out[i] = e.Slot
	}
	return out
}

// midpoint returns the hash midpoint of [lo, hi) (hi == 0 meaning 2^64).
func midpoint(lo, hi uint64) uint64 {
	// hi-lo is the range width even when hi == 0: 0-lo wraps to 2^64-lo.
	return lo + (hi-lo)/2
}

// withEpochBump returns a copy at epoch+1 with the same placement (a
// migration: same slot, new owner generation).
func (m *Map) withEpochBump() *Map {
	return &Map{Epoch: m.Epoch + 1, Entries: m.Entries}
}

// withSplit returns a copy at epoch+1 where the entry owned by srcSlot is
// replaced by two entries: [lo, at) owned by lowSlot and [at, hi) owned
// by highSlot.
func (m *Map) withSplit(srcSlot int, at uint64, lowSlot, highSlot int) *Map {
	idx := m.indexOfSlot(srcSlot)
	entries := make([]Entry, 0, len(m.Entries)+1)
	for i, e := range m.Entries {
		if i == idx {
			entries = append(entries, Entry{Start: e.Start, Slot: lowSlot})
			entries = append(entries, Entry{Start: at, Slot: highSlot})
			continue
		}
		entries = append(entries, e)
	}
	return &Map{Epoch: m.Epoch + 1, Entries: entries}
}

// withMerge returns a copy at epoch+1 where the adjacent entries owned by
// leftSlot and rightSlot are replaced by one entry owned by mergedSlot.
func (m *Map) withMerge(leftSlot, rightSlot, mergedSlot int) *Map {
	idx := m.indexOfSlot(leftSlot)
	entries := make([]Entry, 0, len(m.Entries)-1)
	for i, e := range m.Entries {
		switch i {
		case idx:
			entries = append(entries, Entry{Start: e.Start, Slot: mergedSlot})
		case idx + 1:
			// rightSlot's entry, absorbed into the merged one.
			_ = rightSlot
		default:
			entries = append(entries, e)
		}
	}
	return &Map{Epoch: m.Epoch + 1, Entries: entries}
}

// Validate checks the map invariants: at least one entry, the first
// starting at 0, strictly ascending starts, and unique non-negative
// slots. Decode enforces it, so a map learned over the wire is always
// routable.
func (m *Map) Validate() error {
	if len(m.Entries) == 0 {
		return fmt.Errorf("%w: empty placement table", ErrBadMap)
	}
	if len(m.Entries) > MaxMapEntries {
		return fmt.Errorf("%w: %d entries (max %d)", ErrBadMap, len(m.Entries), MaxMapEntries)
	}
	if m.Entries[0].Start != 0 {
		return fmt.Errorf("%w: first range starts at %d, not 0", ErrBadMap, m.Entries[0].Start)
	}
	seen := make(map[int]bool, len(m.Entries))
	for i, e := range m.Entries {
		if i > 0 && e.Start <= m.Entries[i-1].Start {
			return fmt.Errorf("%w: range starts not strictly ascending at entry %d", ErrBadMap, i)
		}
		if e.Slot < 0 {
			return fmt.Errorf("%w: negative slot %d", ErrBadMap, e.Slot)
		}
		if seen[e.Slot] {
			return fmt.Errorf("%w: slot %d owns two ranges", ErrBadMap, e.Slot)
		}
		seen[e.Slot] = true
	}
	return nil
}

// Map codec: the body of a wire MOVED response. Layout:
//
//	epoch(8) count(4) then count x (start(8) slot(4))
//
// Slots are encoded as uint32: a slot number past 2^31-1 would mean
// billions of resizes; Decode refuses anything that does not round-trip
// through int.
const mapEntryLen = 8 + 4

// EncodeMap serializes the map for the wire.
func EncodeMap(m *Map) []byte {
	b := make([]byte, 12, 12+len(m.Entries)*mapEntryLen)
	binary.BigEndian.PutUint64(b[:8], m.Epoch)
	binary.BigEndian.PutUint32(b[8:12], uint32(len(m.Entries)))
	for _, e := range m.Entries {
		var eb [mapEntryLen]byte
		binary.BigEndian.PutUint64(eb[:8], e.Start)
		binary.BigEndian.PutUint32(eb[8:12], uint32(e.Slot))
		b = append(b, eb[:]...)
	}
	return b
}

// DecodeMap parses and validates a wire shard map. Every failure wraps
// ErrBadMap, so a damaged MOVED body is classified, never trusted.
func DecodeMap(b []byte) (*Map, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("%w: %d-byte body", ErrBadMap, len(b))
	}
	count := int(binary.BigEndian.Uint32(b[8:12]))
	if count < 1 || count > MaxMapEntries {
		return nil, fmt.Errorf("%w: %d entries", ErrBadMap, count)
	}
	if len(b) != 12+count*mapEntryLen {
		return nil, fmt.Errorf("%w: %d bytes for %d entries", ErrBadMap, len(b), count)
	}
	m := &Map{Epoch: binary.BigEndian.Uint64(b[:8]), Entries: make([]Entry, count)}
	for i := 0; i < count; i++ {
		off := 12 + i*mapEntryLen
		slot := binary.BigEndian.Uint32(b[off+8 : off+12])
		if slot > 1<<31-1 {
			return nil, fmt.Errorf("%w: slot %d out of range", ErrBadMap, slot)
		}
		m.Entries[i] = Entry{
			Start: binary.BigEndian.Uint64(b[off : off+8]),
			Slot:  int(slot),
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
