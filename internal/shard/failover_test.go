package shard

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"costperf/internal/core"
	"costperf/internal/fault"
	"costperf/internal/obs"
	"costperf/internal/ssd"
)

// TestPerShardFaultDomainFailover runs every shard as a replicated
// cluster and kills ONE shard's primary log. Only that shard fails over;
// the other shards never notice — the definition of a per-shard fault
// domain.
func TestPerShardFaultDomainFailover(t *testing.T) {
	const n, keys = 3, 150
	logs := map[string]ssd.Dev{}
	r, err := New(Config{
		Shards:     n,
		Standby:    true,
		CommitWait: 50 * time.Millisecond,
		Seed:       11,
		NewLog: func(name string) ssd.Dev {
			d := ssd.New(ssd.Config{Name: name, MaxIOPS: 1e6, LatencySec: 20e-6})
			logs[name] = d
			return d
		},
	})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	defer r.Close()
	loadRouter(t, r, keys)

	const bad = 1
	plog := logs[fmt.Sprintf("shard%d-primary-log.1", bad)]
	if plog == nil {
		t.Fatalf("primary log for shard %d not captured (have %d logs)", bad, len(logs))
	}
	inj := fault.NewInjector(1)
	plog.SetFaultInjector(inj)
	inj.FailNextWrites(1<<30, fault.ClassPersistent)

	// Poke the failing shard until its cluster promotes the standby. Some
	// writes may fail during the transition; the cluster's watcher
	// promotes on the degraded latch.
	ctx := testCtx()
	deadline := time.Now().Add(5 * time.Second)
	for !r.Cluster(bad).Promoted() {
		if time.Now().After(deadline) {
			t.Fatal("shard never failed over")
		}
		_ = r.Put(ctx, pickKeyFor(bad, n), []byte("poke"))
		time.Sleep(time.Millisecond)
	}

	// The failed-over shard serves writes again, from its promoted standby.
	wdeadline := time.Now().Add(5 * time.Second)
	for {
		if err := r.Put(ctx, pickKeyFor(bad, n), []byte("recovered")); err == nil {
			break
		} else if time.Now().After(wdeadline) {
			t.Fatalf("failed-over shard still rejecting writes: %v", err)
		}
		time.Sleep(time.Millisecond)
	}

	// The fault stayed inside its domain: every other shard took writes
	// throughout and never promoted.
	for s := 0; s < n; s++ {
		if s == bad {
			continue
		}
		if r.Cluster(s).Promoted() {
			t.Fatalf("healthy shard %d promoted its standby", s)
		}
		if err := r.Put(ctx, pickKeyFor(s, n), []byte("untouched")); err != nil {
			t.Fatalf("healthy shard %d write failed during neighbor failover: %v", s, err)
		}
	}
	// Pre-fault data survives the promotion (acked writes were replicated
	// semi-synchronously).
	missing := 0
	for i := 0; i < keys; i++ {
		if SlotOf(key(i), n) != bad {
			continue
		}
		if _, ok, err := r.Get(ctx, key(i)); err != nil || !ok {
			missing++
		}
	}
	if missing != 0 {
		t.Fatalf("%d acked keys missing from shard %d after failover", missing, bad)
	}
}

func TestRollupFleetCost(t *testing.T) {
	base := core.PaperCosts()
	snaps := []obs.CostSnapshot{
		{Store: "shard0", Ops: 300, Errors: 2, DeviceReads: 40, DeviceWrites: 60, BytesRead: 4096, BytesWritten: 8192, F: 0.1, ShipBytes: 100},
		{Store: "shard1", Ops: 100, Shed: 5, DeviceReads: 10, DeviceWrites: 20, F: 0.5},
		{Store: "shard2"}, // idle shard: contributes nothing to the weighted mean
	}
	f := Rollup(snaps, base)
	if f.Shards != 3 || f.Ops != 400 || f.Errors != 2 || f.Shed != 5 {
		t.Fatalf("rollup sums wrong: %+v", f)
	}
	if f.DeviceReads != 50 || f.DeviceWrites != 80 || f.BytesRead != 4096 || f.BytesWritten != 8192 || f.ShipBytes != 100 {
		t.Fatalf("device sums wrong: %+v", f)
	}
	want := (300*snaps[0].DollarPerOp(base) + 100*snaps[1].DollarPerOp(base)) / 400
	if diff := f.DollarPerOp - want; diff > 1e-18 || diff < -1e-18 {
		t.Fatalf("fleet $/op = %g, want ops-weighted %g", f.DollarPerOp, want)
	}
	// A busier expensive shard must pull the fleet mean toward itself.
	if f.DollarPerOp <= snaps[0].DollarPerOp(base) {
		t.Fatalf("weighted mean %g not above the cheap shard's %g", f.DollarPerOp, snaps[0].DollarPerOp(base))
	}

	tbl := f.Table(base)
	for _, want := range []string{"shard0", "shard1", "shard2", "fleet", "$/Mop"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	if lines := strings.Count(tbl, "\n"); lines != 5 { // header + 3 shards + fleet
		t.Fatalf("table has %d lines, want 5:\n%s", lines, tbl)
	}

	// Empty fleet: no division by zero.
	if z := Rollup(nil, base); z.DollarPerOp != 0 || z.Ops != 0 {
		t.Fatalf("empty rollup = %+v", z)
	}
}

// TestRouterSnapshotsPerShard proves the obs wiring: with a registry,
// every shard reports its own tracer and traffic lands in the right row.
func TestRouterSnapshotsPerShard(t *testing.T) {
	reg := obs.NewRegistry()
	r := newTestRouter(t, 3, func(c *Config) { c.Registry = reg })
	loadRouter(t, r, 90)
	for i := 0; i < 3; i++ { // push buffered log tails to the devices
		if err := r.tab.Load().owners[i].tc.Flush(); err != nil {
			t.Fatalf("flush shard %d: %v", i, err)
		}
	}

	snaps := r.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	byName := map[string]obs.CostSnapshot{}
	var total int64
	for _, s := range snaps {
		byName[s.Store] = s
		total += s.Ops
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("shard%d", i)
		s, ok := byName[name]
		if !ok {
			t.Fatalf("no snapshot named %q", name)
		}
		if s.Ops == 0 {
			t.Fatalf("shard %d tracer saw no ops", i)
		}
		if s.DeviceWrites == 0 {
			t.Fatalf("shard %d log device I/O not attributed to its tracer", i)
		}
	}
	if total < 90 {
		t.Fatalf("tracers saw %d ops for 90 puts", total)
	}
	f := Rollup(snaps, core.PaperCosts())
	if f.Ops != total || f.Shards != 3 {
		t.Fatalf("rollup of live snapshots: %+v", f)
	}
}
