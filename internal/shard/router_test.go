package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func key(i int) []byte         { return []byte(fmt.Sprintf("key%05d", i)) }
func val(i, gen int) []byte    { return []byte(fmt.Sprintf("val%05d#%d", i, gen)) }
func testCtx() context.Context { return context.Background() }

// newTestRouter builds a plain (non-replicated) router with fast cutover
// bounds suitable for tests.
func newTestRouter(t *testing.T, shards int, mut func(*Config)) *Router {
	t.Helper()
	cfg := Config{Shards: shards, CutoverWait: 2 * time.Second, Seed: 42}
	if mut != nil {
		mut(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestRouterRoutesAcrossAllShards(t *testing.T) {
	const n, keys = 4, 400
	r := newTestRouter(t, n, nil)
	ctx := testCtx()
	for i := 0; i < keys; i++ {
		if err := r.Put(ctx, key(i), val(i, 0)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Every key reads back through the router.
	for i := 0; i < keys; i++ {
		v, ok, err := r.Get(ctx, key(i))
		if err != nil || !ok || string(v) != string(val(i, 0)) {
			t.Fatalf("get %d = %q/%v/%v", i, v, ok, err)
		}
	}
	// The hash actually spreads: every shard holds some keys, and per-shard
	// direct reads agree with the routing function.
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		s := SlotOf(key(i), n)
		counts[s]++
		v, ok, err := r.Engine(s).Get(ctx, key(i))
		if err != nil || !ok || string(v) != string(val(i, 0)) {
			t.Fatalf("shard %d does not own key %d: %q/%v/%v", s, i, v, ok, err)
		}
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys out of %d", s, keys)
		}
	}
	// Delete routes too.
	if err := r.Delete(ctx, key(7)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, ok, _ := r.Get(ctx, key(7)); ok {
		t.Fatal("deleted key still readable")
	}
}

func TestRouterSingleShardDegradesAlone(t *testing.T) {
	// A fault domain is per shard: latch one shard's store read-only and
	// the other shards keep accepting writes.
	r := newTestRouter(t, 4, nil)
	ctx := testCtx()
	const bad = 2
	r.ShardHealth(bad).Degrade("test: injected latch")

	okShards, failed := 0, 0
	for i := 0; i < 200; i++ {
		err := r.Put(ctx, key(i), val(i, 1))
		if SlotOf(key(i), 4) == bad {
			if err == nil {
				t.Fatalf("write to degraded shard %d succeeded", bad)
			}
			failed++
			continue
		}
		if err != nil {
			t.Fatalf("write to healthy shard failed: %v", err)
		}
		okShards++
	}
	if failed == 0 || okShards == 0 {
		t.Fatalf("degenerate split: failed=%d ok=%d", failed, okShards)
	}
	// Reads on the degraded shard still work (read-only, not dead).
	for i := 0; i < 200; i++ {
		if SlotOf(key(i), 4) == bad {
			if _, _, err := r.Get(ctx, key(i)); err != nil {
				t.Fatalf("read on degraded shard: %v", err)
			}
		}
	}
	if r.Health().Degraded() {
		t.Fatal("router-level health latched from a single-shard fault")
	}
}

func TestRouterRejectsBadConfigAndClosedUse(t *testing.T) {
	if _, err := New(Config{Shards: 0}); err == nil {
		t.Fatal("New accepted 0 shards")
	}
	r := newTestRouter(t, 2, nil)
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := r.Migrate(MigrateConfig{Shard: 0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("migrate on closed router = %v, want ErrClosed", err)
	}
	if _, err := r.Migrate(MigrateConfig{Shard: 9}); err == nil {
		t.Fatal("migrate accepted an out-of-range shard")
	}
}
