package shard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectEntry drains one scanEntry call into a map, returning the
// entry's error.
func collectEntry(r *Router, t *table, idx int) (map[string]string, error) {
	ch := make(chan scanItem, 64)
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer close(ch)
		err = r.scanEntry(context.Background(), t, idx, nil, 0, ch)
	}()
	out := map[string]string{}
	for it := range ch {
		out[string(it.k)] = string(it.v)
	}
	<-done
	return out, err
}

// TestScanEntryRetriesOnMergedCover: a scan holding a pre-merge table
// loses its owner mid-flight; the retry resolves the merged slot — a
// SUPERSET of the stale range — and filters it back down to exactly the
// stale entry's hash range. No duplicates, no leakage from the sibling.
func TestScanEntryRetriesOnMergedCover(t *testing.T) {
	r := newTestRouter(t, 4, nil)
	want := loadKeys(t, r, 300)
	ctx := testCtx()

	s, err := r.Split(SplitConfig{Shard: 1})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if err := s.Run(ctx); err != nil {
		t.Fatalf("split run: %v", err)
	}
	low, high := s.Slots()

	stale := r.tab.Load() // post-split table: children live
	m, err := r.Merge(MergeConfig{Left: low, Right: high})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := m.Run(ctx); err != nil {
		t.Fatalf("merge run: %v", err)
	}
	// Simulate the stale owners dying under the scan (a crashed process
	// would take them with it; in-process they are merely retired).
	stale.owners[low].eng.Close()
	stale.owners[high].eng.Close()

	idx := stale.m.indexOfSlot(low)
	lo, hi := stale.m.Range(idx)
	got, err := collectEntry(r, stale, idx)
	if err != nil {
		t.Fatalf("scanEntry over merged cover: %v", err)
	}
	expect := map[string]string{}
	for k, v := range want {
		if InRange(Hash([]byte(k)), lo, hi) {
			expect[k] = v
		}
	}
	if len(expect) == 0 {
		t.Fatal("no keys hash into the stale child's range; test is vacuous")
	}
	sameKV(t, got, expect, "merged-cover retry")
}

// TestScanEntrySplitRangeReportsTyped: when the stale entry's range is
// now SPLIT across new owners, no single engine covers it; the entry
// must fail with an ErrMoved-classified error naming the range — never
// return a silently truncated stream.
func TestScanEntrySplitRangeReportsTyped(t *testing.T) {
	r := newTestRouter(t, 4, nil)
	loadKeys(t, r, 200)
	ctx := testCtx()

	stale := r.tab.Load() // epoch-0 table
	s, err := r.Split(SplitConfig{Shard: 1})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if err := s.Run(ctx); err != nil {
		t.Fatalf("split run: %v", err)
	}
	stale.owners[1].eng.Close() // the parent died with its process

	idx := stale.m.indexOfSlot(1)
	got, err := collectEntry(r, stale, idx)
	if !errors.Is(err, ErrMoved) {
		t.Fatalf("scanEntry over split range = %v, want ErrMoved classification", err)
	}
	if len(got) != 0 {
		t.Fatalf("split-range entry leaked %d items before failing", len(got))
	}
}

// TestScanRacingResizeNeverDropsSilently hammers full scatter scans
// while a split and a merge install new maps underneath. Every scan must
// either fail loudly (a classified error) or deliver the complete,
// correct key set — a quietly truncated result is the one forbidden
// outcome.
func TestScanRacingResizeNeverDropsSilently(t *testing.T) {
	const keys = 200
	r := newTestRouter(t, 4, nil)
	want := loadKeys(t, r, keys)
	ctx := testCtx()

	var (
		stop  atomic.Bool
		wg    sync.WaitGroup
		scans atomic.Int64
	)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got := map[string]string{}
				err := r.Scan(ctx, nil, 0, func(k, v []byte) bool {
					got[string(k)] = string(v)
					return true
				})
				if err != nil {
					var pse *PartialScanError
					if !errors.As(err, &pse) && !errorsIsMovedOrRetired(err) {
						t.Errorf("scan failed unclassified: %v", err)
						return
					}
					continue // loud failure: allowed
				}
				scans.Add(1)
				if len(got) != keys {
					t.Errorf("silent drop: scan returned %d keys, want %d", len(got), keys)
					return
				}
				for k, v := range want {
					if got[k] != v {
						t.Errorf("scan returned %q=%q, want %q", k, got[k], v)
						return
					}
				}
			}
		}()
	}

	s, err := r.Split(SplitConfig{Shard: 2})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if err := s.Run(ctx); err != nil {
		t.Fatalf("split run: %v", err)
	}
	low, high := s.Slots()
	m, err := r.Merge(MergeConfig{Left: low, Right: high})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := m.Run(ctx); err != nil {
		t.Fatalf("merge run: %v", err)
	}
	stop.Store(true)
	wg.Wait()
	if scans.Load() == 0 {
		t.Fatal("no scan completed during the resize window")
	}
}

// TestMovedBackoffShape pins the jittered exponential: attempt k draws
// uniformly from [d/2, d] with d = min(base<<(k-1), max), and a
// canceled context aborts the wait immediately.
func TestMovedBackoffShape(t *testing.T) {
	base, max := 20*time.Millisecond, 40*time.Millisecond
	r := newTestRouter(t, 1, func(c *Config) {
		c.MovedRetryBase = base
		c.MovedRetryMax = max
	})
	for attempt, d := range map[int]time.Duration{1: base, 2: max, 3: max, 50: max} {
		start := time.Now()
		if err := r.movedBackoff(context.Background(), attempt); err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		el := time.Since(start)
		if el < d/2 {
			t.Fatalf("attempt %d slept %v, below the %v floor", attempt, el, d/2)
		}
		if el > d+200*time.Millisecond {
			t.Fatalf("attempt %d slept %v, far above the %v ceiling", attempt, el, d)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.movedBackoff(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled backoff = %v, want context.Canceled", err)
	}
}
