package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// ShardError names one shard a scatter-gather scan could not read.
type ShardError struct {
	Shard int
	Err   error
}

// PartialScanError reports a scatter-gather scan that completed with some
// shards unavailable. The merged stream the caller already received is
// the surviving shards' data in correct global order; Failed names the
// holes. It unwraps to ErrPartialScan so errors.Is classifies it.
type PartialScanError struct {
	Failed []ShardError
}

// Error implements error.
func (e *PartialScanError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v (%d shard%s down:", ErrPartialScan, len(e.Failed), plural(len(e.Failed)))
	for _, f := range e.Failed {
		fmt.Fprintf(&b, " %d: %v;", f.Shard, f.Err)
	}
	b.WriteString(")")
	return b.String()
}

// Unwrap lets errors.Is(err, ErrPartialScan) classify the typed error.
func (e *PartialScanError) Unwrap() error { return ErrPartialScan }

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// scanItem is one pair crossing from a shard scanner to the merger. Keys
// and values are copied: the store's scan callbacks may reuse their
// slices, and these cross goroutines.
type scanItem struct{ k, v []byte }

// Scan implements engine.Store with a scatter-gather merge: every shard
// scans its range concurrently and the results interleave into one
// globally ordered stream (the hash partitions are disjoint, so a plain
// min-merge is exact). fn and limit mean what they mean on a single
// store. When a shard cannot serve, the failure mode is the caller's
// choice via Config.FailFastScans: fail on the first shard error, or
// deliver the surviving shards' data and return a *PartialScanError.
func (r *Router) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	n := len(r.slots)
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	chans := make([]chan scanItem, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		chans[i] = make(chan scanItem, 32)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = r.scanShard(sctx, i, start, limit, chans[i])
			close(chans[i])
		}(i)
	}
	// settle unblocks and joins every shard goroutine — the errs slice is
	// only safe to read after it returns.
	settle := func() {
		cancel()
		for i := 0; i < n; i++ {
			for range chans[i] {
			}
		}
		wg.Wait()
	}

	// Min-merge the per-shard ordered streams.
	heads := make([]*scanItem, n)
	live := 0
	for i := 0; i < n; i++ {
		if it, ok := <-chans[i]; ok {
			h := it
			heads[i] = &h
			live++
		}
	}
	emitted := 0
	stopped := false
	for live > 0 && !stopped {
		min := -1
		for i, h := range heads {
			if h != nil && (min < 0 || bytes.Compare(h.k, heads[min].k) < 0) {
				min = i
			}
		}
		if !fn(heads[min].k, heads[min].v) {
			stopped = true
			break
		}
		emitted++
		if limit > 0 && emitted >= limit {
			stopped = true
			break
		}
		if it, ok := <-chans[min]; ok {
			h := it
			heads[min] = &h
		} else {
			heads[min] = nil
			live--
			// The channel close happens after the shard's error is
			// recorded, so the read is safe; fail-fast callers abort the
			// merge on the first shard that went down mid-scan.
			if r.cfg.FailFastScans && errs[min] != nil && ctx.Err() == nil {
				settle()
				return fmt.Errorf("shard %d scan: %w", min, errs[min])
			}
		}
	}
	settle()

	var failed []ShardError
	for i, err := range errs {
		if err == nil {
			continue
		}
		// Cancellation we caused by stopping early is not a shard failure.
		if stopped && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && ctx.Err() == nil {
			continue
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		failed = append(failed, ShardError{Shard: i, Err: err})
	}
	if len(failed) == 0 {
		return nil
	}
	if r.cfg.FailFastScans {
		return fmt.Errorf("shard %d scan: %w", failed[0].Shard, failed[0].Err)
	}
	r.stats.PartialScans.Inc()
	return &PartialScanError{Failed: failed}
}

// scanShard runs one shard's ordered scan, pushing copied pairs into out
// until the shard range is exhausted, limit pairs have been sent, or ctx
// ends. Failures racing a migration cutover retry on the new owner.
func (r *Router) scanShard(ctx context.Context, shard int, start []byte, limit int, out chan<- scanItem) error {
	for attempt := 0; ; attempt++ {
		o := r.cur(shard)
		sent := 0
		err := o.eng.Scan(ctx, start, limit, func(k, v []byte) bool {
			it := scanItem{k: append([]byte(nil), k...), v: append([]byte(nil), v...)}
			select {
			case out <- it:
				sent++
				return true
			case <-ctx.Done():
				return false
			}
		})
		if err != nil && sent == 0 && attempt < 2 && errorsIsMovedOrRetired(err) {
			continue
		}
		if err == nil && ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
}
