package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"costperf/internal/engine"
	"costperf/internal/overload"
)

// ShardError names one shard a scatter-gather scan could not read.
type ShardError struct {
	Shard int
	Err   error
}

// PartialScanError reports a scatter-gather scan that completed with some
// shards unavailable. The merged stream the caller already received is
// the surviving shards' data in correct global order; Failed names the
// holes. It unwraps to ErrPartialScan so errors.Is classifies it.
type PartialScanError struct {
	Failed []ShardError
}

// Error implements error.
func (e *PartialScanError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v (%d shard%s down:", ErrPartialScan, len(e.Failed), plural(len(e.Failed)))
	for _, f := range e.Failed {
		fmt.Fprintf(&b, " %d: %v;", f.Shard, f.Err)
	}
	b.WriteString(")")
	return b.String()
}

// Unwrap lets errors.Is(err, ErrPartialScan) classify the typed error.
func (e *PartialScanError) Unwrap() error { return ErrPartialScan }

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// scanItem is one pair crossing from a shard scanner to the merger. Keys
// and values are copied: the store's scan callbacks may reuse their
// slices, and these cross goroutines.
type scanItem struct{ k, v []byte }

// Scan implements engine.Store with a scatter-gather merge: every shard
// scans its range concurrently and the results interleave into one
// globally ordered stream (the hash partitions are disjoint, so a plain
// min-merge is exact). fn and limit mean what they mean on a single
// store. When a shard cannot serve, the failure mode is the caller's
// choice via Config.FailFastScans: fail on the first shard error, or
// deliver the surviving shards' data and return a *PartialScanError.
func (r *Router) Scan(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	// Snapshot the routing table: the scan's unit of work is one hash
	// range of THIS map, not a slot number. A resize installing mid-scan
	// cannot make a range disappear — its snapshot owner stays alive
	// (retired owners close only with the router), and a range whose
	// owner does go away retries against whichever current owner covers
	// it, or reports the range in the *PartialScanError.
	t := r.tab.Load()
	n := len(t.m.Entries)

	// Respect per-shard limiter state before scattering: a fail-fast
	// scan against a fleet with any shard already past its scan bound is
	// doomed, so refuse it here — before n goroutines fan out and n-1
	// healthy shards do work the merge will throw away.
	if r.cfg.FailFastScans {
		cls := overload.ClassFrom(ctx, overload.ClassScan)
		for i := 0; i < n; i++ {
			if o := t.owners[t.m.Entries[i].Slot]; o.eng.Limiter().WouldShed(cls) {
				return fmt.Errorf("shard %d scan: %w", o.shard, engine.ErrOverload)
			}
		}
	}

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	chans := make([]chan scanItem, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		chans[i] = make(chan scanItem, 32)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = r.scanEntry(sctx, t, i, start, limit, chans[i])
			close(chans[i])
		}(i)
	}
	// settle unblocks and joins every shard goroutine — the errs slice is
	// only safe to read after it returns.
	settle := func() {
		cancel()
		for i := 0; i < n; i++ {
			for range chans[i] {
			}
		}
		wg.Wait()
	}

	// Min-merge the per-shard ordered streams.
	heads := make([]*scanItem, n)
	live := 0
	for i := 0; i < n; i++ {
		if it, ok := <-chans[i]; ok {
			h := it
			heads[i] = &h
			live++
		}
	}
	emitted := 0
	stopped := false
	for live > 0 && !stopped {
		min := -1
		for i, h := range heads {
			if h != nil && (min < 0 || bytes.Compare(h.k, heads[min].k) < 0) {
				min = i
			}
		}
		if !fn(heads[min].k, heads[min].v) {
			stopped = true
			break
		}
		emitted++
		if limit > 0 && emitted >= limit {
			stopped = true
			break
		}
		if it, ok := <-chans[min]; ok {
			h := it
			heads[min] = &h
		} else {
			heads[min] = nil
			live--
			// The channel close happens after the shard's error is
			// recorded, so the read is safe; fail-fast callers abort the
			// merge on the first shard that went down mid-scan.
			if r.cfg.FailFastScans && errs[min] != nil && ctx.Err() == nil {
				settle()
				return fmt.Errorf("shard %d scan: %w", t.m.Entries[min].Slot, errs[min])
			}
		}
	}
	settle()

	var failed []ShardError
	for i, err := range errs {
		if err == nil {
			continue
		}
		// Cancellation we caused by stopping early is not a shard failure.
		if stopped && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && ctx.Err() == nil {
			continue
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		failed = append(failed, ShardError{Shard: t.m.Entries[i].Slot, Err: err})
	}
	if len(failed) == 0 {
		return nil
	}
	if r.cfg.FailFastScans {
		return fmt.Errorf("shard %d scan: %w", failed[0].Shard, failed[0].Err)
	}
	r.stats.PartialScans.Inc()
	return &PartialScanError{Failed: failed}
}

// scanEntry runs one hash range's ordered scan, pushing copied pairs
// into out until the range is exhausted, limit pairs have been sent, or
// ctx ends. The first attempt reads the range's owner under the
// snapshotted table; a failure racing a migration or resize re-resolves
// the SAME hash range against the current table — on the slot's new
// owner, or on a merged owner covering a superset (filtered back down to
// the range) — so a resize can delay a range's data but never silently
// drop it. A range a split has since divided across two new owners
// cannot be served by one ordered stream; it surfaces as that range's
// ShardError inside the typed *PartialScanError.
func (r *Router) scanEntry(ctx context.Context, t *table, idx int, start []byte, limit int, out chan<- scanItem) error {
	lo, hi := t.m.Range(idx)
	o := t.owners[t.m.Entries[idx].Slot]
	cls := overload.ClassFrom(ctx, overload.ClassScan)
	exact := true // owner's range is exactly [lo, hi)
	for attempt := 0; ; attempt++ {
		// A shard whose limiter would shed this arrival fails the range
		// here, before the scan goroutine starts copying pairs it will
		// never deliver; partial-mode callers see the hole as this
		// range's overload ShardError.
		if o.eng.Limiter().WouldShed(cls) {
			return fmt.Errorf("limiter at class %v bound: %w", cls, engine.ErrOverload)
		}
		sent := 0
		eff := limit
		if !exact {
			// A superset owner: its engine-level limit would count keys
			// outside [lo, hi), so the cap moves into the callback.
			eff = 0
		}
		err := o.eng.Scan(ctx, start, eff, func(k, v []byte) bool {
			if !InRange(Hash(k), lo, hi) {
				return true
			}
			it := scanItem{k: append([]byte(nil), k...), v: append([]byte(nil), v...)}
			select {
			case out <- it:
				sent++
				return limit <= 0 || sent < limit
			case <-ctx.Done():
				return false
			}
		})
		if err != nil && sent == 0 && attempt < 2 && errorsIsMovedOrRetired(err) {
			cur := r.tab.Load()
			no, cover := coveringOwner(cur, lo, hi)
			if no == nil {
				return fmt.Errorf("hash range [%#x, %#x) now split across new owners, rescan under map epoch %d: %w",
					lo, hi, cur.m.Epoch, ErrMoved)
			}
			o, exact = no, cover
			continue
		}
		if err == nil && ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
}

// coveringOwner resolves the current owner whose range contains all of
// [lo, hi), reporting whether the cover is exact. Nil when the range now
// spans more than one owner (it was split).
func coveringOwner(t *table, lo, hi uint64) (o *owner, exact bool) {
	i := t.m.EntryIndex(lo)
	elo, ehi := t.m.Range(i)
	if elo > lo || (ehi != 0 && (hi == 0 || hi > ehi)) {
		return nil, false
	}
	return t.owners[t.m.Entries[i].Slot], elo == lo && ehi == hi
}
