package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"costperf/internal/tc"
)

// loadKeys puts n sequential keys through the router and returns the set.
func loadKeys(t *testing.T, r *Router, n int) map[string]string {
	t.Helper()
	ctx := testCtx()
	out := make(map[string]string, n)
	for i := 0; i < n; i++ {
		if err := r.Put(ctx, key(i), val(i, 0)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		out[string(key(i))] = string(val(i, 0))
	}
	return out
}

// dumpRouter scatter-gathers the router's full contents.
func dumpRouter(t *testing.T, r *Router) map[string]string {
	t.Helper()
	out := map[string]string{}
	if err := r.Scan(testCtx(), nil, 0, func(k, v []byte) bool {
		out[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

func sameKV(t *testing.T, got, want map[string]string, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d keys, want %d", label, len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: key %q = %q, want %q", label, k, got[k], v)
		}
	}
}

// TestSplitMovesBoundedKeyRange is the bounded-movement claim in unit
// form: after a split, exactly the keys hashing into the parent's range
// changed owner; every other key's placement is untouched.
func TestSplitMovesBoundedKeyRange(t *testing.T) {
	const n, keys = 4, 400
	r := newTestRouter(t, n, nil)
	want := loadKeys(t, r, keys)
	ctx := testCtx()

	before := r.Map()
	const srcSlot = 1
	lo, hi := before.Range(before.indexOfSlot(srcSlot))

	s, err := r.Split(SplitConfig{Shard: srcSlot})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if err := s.Run(ctx); err != nil {
		t.Fatalf("split run: %v", err)
	}
	if !s.Done() {
		t.Fatal("split not done after Run")
	}
	low, high := s.Slots()

	after := r.Map()
	if after.Epoch != 1 || len(after.Entries) != n+1 {
		t.Fatalf("post-split map epoch %d entries %d, want 1/%d", after.Epoch, len(after.Entries), n+1)
	}
	if after.HasSlot(srcSlot) {
		t.Fatal("retired parent slot still in the map")
	}
	if r.Shards() != n+1 {
		t.Fatalf("Shards() = %d, want %d", r.Shards(), n+1)
	}

	moved := 0
	for i := 0; i < keys; i++ {
		h := Hash(key(i))
		bSlot, aSlot := before.Slot(h), after.Slot(h)
		if !InRange(h, lo, hi) {
			if bSlot != aSlot {
				t.Fatalf("key %d outside the split range moved %d→%d", i, bSlot, aSlot)
			}
			continue
		}
		moved++
		wantSlot := low
		if h >= s.At() {
			wantSlot = high
		}
		if aSlot != wantSlot {
			t.Fatalf("key %d in split range routed to %d, want %d", i, aSlot, wantSlot)
		}
		// The new owner really holds it.
		v, ok, err := r.Engine(aSlot).Get(ctx, key(i))
		if err != nil || !ok || string(v) != want[string(key(i))] {
			t.Fatalf("new owner %d missing key %d: %q/%v/%v", aSlot, i, v, ok, err)
		}
	}
	if moved == 0 || moved == keys {
		t.Fatalf("moved %d of %d keys, want a bounded fraction", moved, keys)
	}

	// Children are pruned to their halves: no residue outside their range.
	for _, slot := range []int{low, high} {
		slo, shi := after.Range(after.indexOfSlot(slot))
		if err := r.Engine(slot).Scan(ctx, nil, 0, func(k, _ []byte) bool {
			if !InRange(Hash(k), slo, shi) {
				t.Errorf("slot %d holds out-of-range key %q", slot, k)
			}
			return true
		}); err != nil {
			t.Fatalf("scan child %d: %v", slot, err)
		}
	}

	// The fenced parent rejects commits forever.
	tx, err := s.SourceTC().Begin()
	if err != nil {
		t.Fatalf("begin on fenced source: %v", err)
	}
	if err := tx.Write([]byte("late"), []byte("write")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrMoved) {
		t.Fatalf("commit on fenced source = %v, want ErrMoved", err)
	}

	// Full data set intact through router reads and scatter scan.
	for i := 0; i < keys; i++ {
		v, ok, err := r.Get(ctx, key(i))
		if err != nil || !ok || string(v) != want[string(key(i))] {
			t.Fatalf("get %d after split = %q/%v/%v", i, v, ok, err)
		}
	}
	sameKV(t, dumpRouter(t, r), want, "post-split dump")
	if r.Stats().Splits.Value() != 1 || r.Stats().Fences.Value() != 1 {
		t.Fatalf("stats splits=%d fences=%d", r.Stats().Splits.Value(), r.Stats().Fences.Value())
	}
}

// TestMergeAdjacentShards merges a split's children back and checks the
// merged owner serves the union, both sources stay fenced, and
// non-adjacent merges are refused.
func TestMergeAdjacentShards(t *testing.T) {
	const n, keys = 4, 300
	r := newTestRouter(t, n, nil)
	want := loadKeys(t, r, keys)
	ctx := testCtx()

	s, err := r.Split(SplitConfig{Shard: 2})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if err := s.Run(ctx); err != nil {
		t.Fatalf("split run: %v", err)
	}
	low, high := s.Slots()

	// Write fresh values into both children so the merge carries
	// post-split history, not just the preload.
	gen1 := 0
	for i := 0; i < keys; i++ {
		slot := r.SlotOfKey(key(i))
		if slot == low || slot == high {
			if err := r.Put(ctx, key(i), val(i, 1)); err != nil {
				t.Fatalf("post-split put %d: %v", i, err)
			}
			want[string(key(i))] = string(val(i, 1))
			gen1++
		}
	}
	if gen1 == 0 {
		t.Fatal("no keys landed on the split children")
	}

	if _, err := r.Merge(MergeConfig{Left: 0, Right: 3}); !errors.Is(err, ErrNotAdjacent) {
		t.Fatalf("non-adjacent merge = %v, want ErrNotAdjacent", err)
	}
	if _, err := r.Merge(MergeConfig{Left: 99, Right: low}); !errors.Is(err, ErrNoShard) {
		t.Fatalf("merge of unknown slot = %v, want ErrNoShard", err)
	}

	m, err := r.Merge(MergeConfig{Left: low, Right: high})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := m.Run(ctx); err != nil {
		t.Fatalf("merge run: %v", err)
	}

	after := r.Map()
	if after.Epoch != 2 || len(after.Entries) != n {
		t.Fatalf("post-merge map epoch %d entries %d, want 2/%d", after.Epoch, len(after.Entries), n)
	}
	if after.HasSlot(low) || after.HasSlot(high) {
		t.Fatal("retired child slot still in the map")
	}

	// Both fenced sources reject commits.
	lt, rt := m.SourceTCs()
	for i, src := range []*tc.TC{lt, rt} {
		tx, err := src.Begin()
		if err != nil {
			t.Fatalf("begin on fenced source %d: %v", i, err)
		}
		if err := tx.Write([]byte("late"), []byte("w")); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := tx.Commit(); !errors.Is(err, ErrMoved) {
			t.Fatalf("commit on fenced merge source %d = %v, want ErrMoved", i, err)
		}
	}

	for i := 0; i < keys; i++ {
		v, ok, err := r.Get(ctx, key(i))
		if err != nil || !ok || string(v) != want[string(key(i))] {
			t.Fatalf("get %d after merge = %q/%v/%v", i, v, ok, err)
		}
	}
	sameKV(t, dumpRouter(t, r), want, "post-merge dump")
	if r.Stats().Merges.Value() != 1 {
		t.Fatalf("Merges = %d, want 1", r.Stats().Merges.Value())
	}
}

// TestSplitCrashResumeAtEveryBoundary aborts a split after each phase and
// resumes it — the blind-redo contract — while concurrent writers keep
// acking writes that must all survive.
func TestSplitCrashResumeAtEveryBoundary(t *testing.T) {
	for crashAfter := PhasePrepare; crashAfter <= PhaseSeal; crashAfter++ {
		crashAfter := crashAfter
		t.Run(fmt.Sprintf("crash-after-%v", crashAfter), func(t *testing.T) {
			r := newTestRouter(t, 3, nil)
			want := loadKeys(t, r, 150)
			ctx := testCtx()

			crashed := false
			s, err := r.Split(SplitConfig{
				Shard: 1,
				OnPhase: func(p Phase) error {
					if p == crashAfter && !crashed {
						crashed = true
						return fmt.Errorf("injected crash after %v", p)
					}
					return nil
				},
			})
			if err != nil {
				t.Fatalf("split: %v", err)
			}
			if err := s.Run(ctx); err == nil {
				t.Fatalf("run survived the injected crash after %v", crashAfter)
			}
			if s.Done() {
				t.Fatal("split claims done after crash")
			}
			// Resume: blind redo from the recorded resume point.
			if err := s.Run(ctx); err != nil {
				t.Fatalf("resume after %v crash: %v", crashAfter, err)
			}
			if !s.Done() {
				t.Fatal("split not done after resume")
			}
			if r.Shards() != 4 || r.MapEpoch() != 1 {
				t.Fatalf("post-resume shards=%d epoch=%d", r.Shards(), r.MapEpoch())
			}
			for i := 0; i < 150; i++ {
				v, ok, err := r.Get(ctx, key(i))
				if err != nil || !ok || string(v) != want[string(key(i))] {
					t.Fatalf("get %d = %q/%v/%v", i, v, ok, err)
				}
			}
			sameKV(t, dumpRouter(t, r), want, "post-resume dump")
		})
	}
}

// TestMergeCrashResumeAtEveryBoundary is the merge twin, with the right
// shard's folded copy re-done idempotently on resume.
func TestMergeCrashResumeAtEveryBoundary(t *testing.T) {
	for crashAfter := PhasePrepare; crashAfter <= PhaseSeal; crashAfter++ {
		crashAfter := crashAfter
		t.Run(fmt.Sprintf("crash-after-%v", crashAfter), func(t *testing.T) {
			r := newTestRouter(t, 4, nil)
			want := loadKeys(t, r, 150)
			ctx := testCtx()

			crashed := false
			m, err := r.Merge(MergeConfig{
				Left: 1, Right: 2,
				OnPhase: func(p Phase) error {
					if p == crashAfter && !crashed {
						crashed = true
						return fmt.Errorf("injected crash after %v", p)
					}
					return nil
				},
			})
			if err != nil {
				t.Fatalf("merge: %v", err)
			}
			if err := m.Run(ctx); err == nil {
				t.Fatalf("run survived the injected crash after %v", crashAfter)
			}
			if err := m.Run(ctx); err != nil {
				t.Fatalf("resume after %v crash: %v", crashAfter, err)
			}
			if !m.Done() {
				t.Fatal("merge not done after resume")
			}
			if r.Shards() != 3 || r.MapEpoch() != 1 {
				t.Fatalf("post-resume shards=%d epoch=%d", r.Shards(), r.MapEpoch())
			}
			for i := 0; i < 150; i++ {
				v, ok, err := r.Get(ctx, key(i))
				if err != nil || !ok || string(v) != want[string(key(i))] {
					t.Fatalf("get %d = %q/%v/%v", i, v, ok, err)
				}
			}
			sameKV(t, dumpRouter(t, r), want, "post-resume dump")
		})
	}
}

// TestResizeUnderConcurrentWriters runs a split and then a merge of its
// children under continuous writer load: every acked write must be
// readable afterwards, and writers may only ever see moved-class errors.
func TestResizeUnderConcurrentWriters(t *testing.T) {
	r := newTestRouter(t, 4, nil)
	want := loadKeys(t, r, 200)
	ctx := testCtx()

	var (
		mu    sync.Mutex
		acked = map[string]string{}
		stop  atomic.Bool
		wg    sync.WaitGroup
	)
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each writer owns a disjoint key stripe (3 divides the
			// modulus, so wraparound preserves it): writer-vs-writer
			// OCC conflicts are not what this test is about.
			for i := w; !stop.Load(); i += 3 {
				k, v := key(i%198), val(i%198, 100+w)
				if err := r.Put(ctx, k, v); err != nil {
					if errorsIsMovedOrRetired(err) {
						continue // unacked; the old value stands
					}
					t.Errorf("writer %d: unexpected error %v", w, err)
					return
				}
				mu.Lock()
				acked[string(k)] = string(v)
				mu.Unlock()
			}
		}()
	}

	s, err := r.Split(SplitConfig{Shard: 2})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if err := s.Run(ctx); err != nil {
		t.Fatalf("split run: %v", err)
	}
	low, high := s.Slots()
	m, err := r.Merge(MergeConfig{Left: low, Right: high})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := m.Run(ctx); err != nil {
		t.Fatalf("merge run: %v", err)
	}
	stop.Store(true)
	wg.Wait()

	mu.Lock()
	for k, v := range acked {
		want[k] = v
	}
	mu.Unlock()
	for k, v := range want {
		got, ok, err := r.Get(ctx, []byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("acked key %q = %q/%v/%v, want %q", k, got, ok, err, v)
		}
	}
	sameKV(t, dumpRouter(t, r), want, "post-resize dump")
	if r.MapEpoch() != 2 {
		t.Fatalf("map epoch %d, want 2", r.MapEpoch())
	}
}

// TestSplitRefusals pins the guard rails.
func TestSplitRefusals(t *testing.T) {
	r := newTestRouter(t, 2, nil)
	if _, err := r.Split(SplitConfig{Shard: 9}); !errors.Is(err, ErrNoShard) {
		t.Fatalf("split unknown slot = %v, want ErrNoShard", err)
	}
	lo, _ := r.Map().Range(r.Map().indexOfSlot(1))
	if _, err := r.Split(SplitConfig{Shard: 1, At: lo}); !errors.Is(err, ErrBadMap) {
		t.Fatalf("split at range start = %v, want ErrBadMap", err)
	}
	if _, err := r.Split(SplitConfig{Shard: 0, At: lo}); !errors.Is(err, ErrBadMap) {
		t.Fatalf("split outside range = %v, want ErrBadMap", err)
	}
	if _, err := r.Split(SplitConfig{Shard: 1}); err != nil {
		t.Fatalf("first split: %v", err)
	}
	if _, err := r.Split(SplitConfig{Shard: 1}); !errors.Is(err, ErrMigrating) {
		t.Fatalf("second split of same slot = %v, want ErrMigrating", err)
	}
	if _, err := r.Migrate(MigrateConfig{Shard: 1}); !errors.Is(err, ErrMigrating) {
		t.Fatalf("migrate of splitting slot = %v, want ErrMigrating", err)
	}

	rs := newTestRouter(t, 2, func(c *Config) { c.Standby = true; c.CommitWait = time.Second })
	if _, err := rs.Split(SplitConfig{Shard: 0}); !errors.Is(err, ErrReplicatedShard) {
		t.Fatalf("split replicated shard = %v, want ErrReplicatedShard", err)
	}
	if _, err := rs.Merge(MergeConfig{Left: 0, Right: 1}); !errors.Is(err, ErrReplicatedShard) {
		t.Fatalf("merge replicated shards = %v, want ErrReplicatedShard", err)
	}
}
