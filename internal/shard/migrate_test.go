package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"costperf/internal/fault"
	"costperf/internal/tc"
)

// runWriters hammers every shard (including the moving one) from w
// goroutines until stop closes, recording acked writes. Writers own
// disjoint key slices, so "last acked value" is well defined per key.
type writerPool struct {
	mu    sync.Mutex
	acked map[string]string // key -> last acked value
	errs  map[int]int       // shard -> non-nil op errors
	stop  chan struct{}
	wg    sync.WaitGroup
}

func startWriters(r *Router, workers, keys int) *writerPool {
	p := &writerPool{acked: map[string]string{}, errs: map[int]int{}, stop: make(chan struct{})}
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func(w int) {
			defer p.wg.Done()
			gen := 0
			for {
				select {
				case <-p.stop:
					return
				default:
				}
				gen++
				for i := w; i < keys; i += workers {
					k, v := key(i), val(i, gen*workers+w)
					err := r.Put(ctx, k, v)
					p.mu.Lock()
					if err == nil {
						p.acked[string(k)] = string(v)
					} else {
						p.errs[SlotOf(k, r.Shards())]++
					}
					p.mu.Unlock()
				}
			}
		}(w)
	}
	return p
}

func (p *writerPool) halt() {
	close(p.stop)
	p.wg.Wait()
}

// verifyAcked proves zero lost acked writes: every acked key reads back
// byte-identical through the router.
func verifyAcked(t *testing.T, r *Router, p *writerPool) {
	t.Helper()
	ctx := context.Background()
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, want := range p.acked {
		v, ok, err := r.Get(ctx, []byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("acked write lost: %q = %q/%v/%v, want %q", k, v, ok, err, want)
		}
	}
}

// verifyFenced proves the stale owner rejects commits forever.
func verifyFenced(t *testing.T, m *Migration) {
	t.Helper()
	tx, err := m.SourceTC().Begin()
	if err != nil {
		t.Fatalf("begin on fenced source: %v", err)
	}
	if err := tx.Write([]byte("zombie"), []byte("write")); err != nil {
		t.Fatalf("stage write on fenced source: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrMoved) {
		t.Fatalf("commit on fenced source = %v, want ErrMoved", err)
	}
}

func TestLiveMigrationUnderLoad(t *testing.T) {
	const shards, keys = 4, 240
	r := newTestRouter(t, shards, nil)
	loadRouter(t, r, keys)

	p := startWriters(r, 3, keys)
	time.Sleep(5 * time.Millisecond)

	const moving = 1
	m, err := r.Migrate(MigrateConfig{Shard: moving})
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if err := m.Run(context.Background()); err != nil {
		t.Fatalf("migration run: %v", err)
	}
	if !m.Done() || m.Phase() != PhaseInstall {
		t.Fatalf("migration not done: phase %v", m.Phase())
	}
	time.Sleep(5 * time.Millisecond)
	p.halt()

	// No shard but the moving one may see a single error; with a clean
	// cutover even the moving shard should have none (writes park on the
	// cutover and retry transparently).
	p.mu.Lock()
	for s, n := range p.errs {
		p.mu.Unlock()
		t.Fatalf("shard %d saw %d write errors during a clean migration", s, n)
	}
	p.mu.Unlock()

	verifyAcked(t, r, p)
	verifyFenced(t, m)
	if got := r.MapEpoch(); got != 1 {
		t.Fatalf("map epoch = %d, want 1", got)
	}
	if r.Stats().Migrations.Value() != 1 || r.Stats().Fences.Value() != 1 {
		t.Fatalf("stats = %+v", r.Stats())
	}
	// The new owner keeps accepting writes after the cutover.
	if err := r.Put(context.Background(), pickKeyFor(moving, shards), []byte("post-move")); err != nil {
		t.Fatalf("write after migration: %v", err)
	}
}

// pickKeyFor finds a key routed to the given shard.
func pickKeyFor(shard, n int) []byte {
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("probe%06d", i))
		if SlotOf(k, n) == shard {
			return k
		}
	}
}

func TestMigrationCrashAtEveryBoundaryResumes(t *testing.T) {
	errCrash := errors.New("test: injected crash")
	for ph := PhasePrepare; ph <= PhaseSeal; ph++ {
		ph := ph
		t.Run(ph.String(), func(t *testing.T) {
			t.Parallel()
			const shards, keys = 3, 120
			r := newTestRouter(t, shards, func(c *Config) { c.CutoverWait = 200 * time.Millisecond })
			loadRouter(t, r, keys)
			p := startWriters(r, 2, keys)

			var crashed atomic.Bool
			m, err := r.Migrate(MigrateConfig{
				Shard: 0,
				OnPhase: func(got Phase) error {
					if got == ph && !crashed.Swap(true) {
						return errCrash
					}
					return nil
				},
			})
			if err != nil {
				t.Fatalf("migrate: %v", err)
			}
			ctx := context.Background()
			if err := m.Run(ctx); !errors.Is(err, errCrash) {
				t.Fatalf("run with crash at %v = %v, want the crash", ph, err)
			}
			if m.Done() {
				t.Fatal("migration claims done after crashing")
			}
			if !errors.Is(m.Err(), errCrash) {
				t.Fatalf("Err() = %v", m.Err())
			}
			// Resume: the second run must complete and converge.
			if err := m.Run(ctx); err != nil {
				t.Fatalf("resume after crash at %v: %v", ph, err)
			}
			if !m.Done() {
				t.Fatal("resumed migration not done")
			}
			time.Sleep(5 * time.Millisecond)
			p.halt()
			verifyAcked(t, r, p)
			verifyFenced(t, m)
		})
	}
}

func TestMigrationLinkPartitionRefusesDialAndResumes(t *testing.T) {
	const shards, keys = 2, 80
	net := fault.NewNetInjector(7)
	r := newTestRouter(t, shards, func(c *Config) { c.CutoverWait = 200 * time.Millisecond })
	loadRouter(t, r, keys)

	// Partition before the migration starts: the fresh dial must be
	// refused — chaos is not dodgeable by dialing after the partition.
	net.Partition()
	m, err := r.Migrate(MigrateConfig{Shard: 0, Net: net})
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	ctx := context.Background()
	if err := m.Run(ctx); !errors.Is(err, fault.ErrPartitioned) {
		t.Fatalf("run during partition = %v, want ErrPartitioned", err)
	}
	if net.Stats().DialsRefused == 0 {
		t.Fatal("dial gate never consulted")
	}

	// Heal, run with a mid-catchup bounded partition: the shipper's
	// retries ride it out and the migration still completes.
	net.Heal()
	net.SetRates(0.05, 0.05, 0.05)
	p := startWriters(r, 2, keys)
	go func() {
		time.Sleep(2 * time.Millisecond)
		net.PartitionFor(20)
	}()
	if err := m.Run(ctx); err != nil {
		t.Fatalf("run after heal: %v", err)
	}
	p.halt()
	verifyAcked(t, r, p)
	verifyFenced(t, m)
}

func TestMigrationRefusals(t *testing.T) {
	r := newTestRouter(t, 2, nil)
	if _, err := r.Migrate(MigrateConfig{Shard: 0}); err != nil {
		t.Fatalf("first migrate: %v", err)
	}
	if _, err := r.Migrate(MigrateConfig{Shard: 0}); !errors.Is(err, ErrMigrating) {
		t.Fatalf("second migrate = %v, want ErrMigrating", err)
	}

	rs, err := New(Config{Shards: 2, Standby: true, CommitWait: time.Second, Seed: 5})
	if err != nil {
		t.Fatalf("standby router: %v", err)
	}
	defer rs.Close()
	if _, err := rs.Migrate(MigrateConfig{Shard: 1}); !errors.Is(err, ErrReplicatedShard) {
		t.Fatalf("migrate replicated shard = %v, want ErrReplicatedShard", err)
	}
}

// TestMigratedShardContinuesLogInPlace checks the promoted-standby
// property carries over: the new owner's TC appends after the shipped
// prefix instead of restarting LSNs, and its commit clock advances past
// the source's.
func TestMigratedShardContinuesLogInPlace(t *testing.T) {
	r := newTestRouter(t, 1, nil)
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if err := r.Put(ctx, key(i), val(i, 0)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	m, err := r.Migrate(MigrateConfig{Shard: 0})
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if err := m.Run(ctx); err != nil {
		t.Fatalf("run: %v", err)
	}
	oldDurable := m.SourceTC().DurableLSN()
	if err := r.Put(ctx, []byte("after"), []byte("move")); err != nil {
		t.Fatalf("put after move: %v", err)
	}
	newTC := r.tab.Load().owners[0].tc
	if err := newTC.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if d := newTC.DurableLSN(); d <= oldDurable {
		t.Fatalf("new owner durable LSN %d, want > %d (log continued in place)", d, oldDurable)
	}
	var _ tc.DataComponent = NewMassDC() // MassDC stays a DataComponent
}
