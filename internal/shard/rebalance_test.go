package shard

import (
	"math"
	"testing"

	"costperf/internal/core"
	"costperf/internal/obs"
)

// withRegistry is the router mutator every rebalancer test needs.
func withRegistry(c *Config) { c.Registry = obs.NewRegistry() }

// hammer drives `rounds` reads over every loaded key owned by slot,
// skewing the window's spend toward it.
func hammer(t *testing.T, r *Router, slot, keys, rounds int) {
	t.Helper()
	ctx := testCtx()
	hit := 0
	for round := 0; round < rounds; round++ {
		for i := 0; i < keys; i++ {
			if r.SlotOfKey(key(i)) != slot {
				continue
			}
			if _, ok, err := r.Get(ctx, key(i)); err != nil || !ok {
				t.Fatalf("hammer get %d: %v/%v", i, ok, err)
			}
			hit++
		}
	}
	if hit == 0 {
		t.Fatalf("no loaded keys route to slot %d", slot)
	}
}

// hammerN drives exactly n reads at one key owned by slot.
func hammerN(t *testing.T, r *Router, slot, keys, n int) {
	t.Helper()
	ctx := testCtx()
	for i := 0; i < keys; i++ {
		if r.SlotOfKey(key(i)) != slot {
			continue
		}
		for j := 0; j < n; j++ {
			if _, ok, err := r.Get(ctx, key(i)); err != nil || !ok {
				t.Fatalf("hammerN get %d: %v/%v", i, ok, err)
			}
		}
		return
	}
	t.Fatalf("no loaded key routes to slot %d", slot)
}

// calmWindow drives traffic that equalizes SPEND (not ops) across the
// live slots: each shard's measured $/op differs, so equal op counts do
// not make equal shares. One inverse-dpo pass is not enough — Step
// prices the window with the $/op measured AFTER the traffic, and the
// live estimate moves as ops land (and with wall-clock rate, which
// scheduler skew and -race stretch unpredictably). So the helper closes
// the same loop Step does: drive, re-measure window spend with the
// current $/op, and top up whichever shards fell behind, until every
// share sits well inside the hysteresis and cold bands.
func calmWindow(t *testing.T, r *Router, keys int, base core.Costs) {
	t.Helper()
	m := r.Map()
	n := len(m.Entries)
	startOps := make([]int64, n)
	for i, s := range r.LiveSnapshots() {
		startOps[i] = s.Ops
	}
	dpoOf := func(s obs.CostSnapshot) float64 {
		d := s.DollarPerOp(base)
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			return 0
		}
		return d
	}
	// Baseline pass so every shard has window ops and a measurement.
	for i := range m.Entries {
		hammerN(t, r, m.Entries[i].Slot, keys, 300)
	}
	for iter := 0; iter < 8; iter++ {
		snaps := r.LiveSnapshots()
		spend := make([]float64, n)
		total := 0.0
		for i, s := range snaps {
			spend[i] = float64(s.Ops-startOps[i]) * dpoOf(s)
			total += spend[i]
		}
		if total <= 0 {
			continue
		}
		// Inside [0.7, 1.3]x fair for every shard? Then the hottest
		// share is far below any re-arm band and every adjacent pair is
		// far above any cold band.
		mean := total / float64(n)
		calm := true
		for i := range spend {
			if spend[i] < 0.7*mean || spend[i] > 1.3*mean {
				calm = false
			}
		}
		if calm {
			return
		}
		// Top up the shards that fell behind the mean; the leaders get
		// nothing and the laggards close the gap at their own $/op.
		for i, s := range snaps {
			if spend[i] >= mean {
				continue
			}
			extra := 100
			if d := dpoOf(s); d > 0 {
				if extra = int((mean - spend[i]) / d); extra < 50 {
					extra = 50
				} else if extra > 3000 {
					extra = 3000
				}
			}
			hammerN(t, r, m.Entries[i].Slot, keys, extra)
		}
	}
}

// TestRebalancerSplitsHotShard: one shard carrying an outsized spend
// share is split at its midpoint; then the trigger disarms, cools down,
// re-arms on a calm window, and can fire again.
func TestRebalancerSplitsHotShard(t *testing.T) {
	const keys = 200
	base := core.PaperCosts()
	r := newTestRouter(t, 4, withRegistry)
	ctx := testCtx()

	// ColdFrac is pinned tiny because this test is about splits: the calm
	// window equalizes spend through the live (rate-sensitive) $/op, and
	// scheduler skew — -race in particular — can leave an adjacent pair
	// under the default cold band, arming a merge where the test expects
	// a quiet re-arm. Merges have their own test below.
	b, err := r.NewRebalancer(RebalanceConfig{
		Base: base, HighFactor: 2.0, LowFactor: 1.9, ColdFrac: 0.01,
	})
	if err != nil {
		t.Fatalf("NewRebalancer: %v", err)
	}
	// Seed the window baseline before any traffic exists.
	if act, err := b.Step(ctx); err != nil || act != nil {
		t.Fatalf("seed step = (%+v, %v), want (nil, nil)", act, err)
	}

	loadKeys(t, r, keys)
	hammer(t, r, 1, keys, 100)
	act, err := b.Step(ctx)
	if err != nil {
		t.Fatalf("hot step: %v", err)
	}
	if act == nil || act.Kind != "split" || act.Slot != 1 || act.With != -1 {
		t.Fatalf("hot step action = %+v, want split of shard 1", act)
	}
	if act.Share <= act.Fair*b.cfg.HighFactor {
		t.Fatalf("action share %.3f not past the band %.3f", act.Share, act.Fair*b.cfg.HighFactor)
	}
	if r.Shards() != 5 || r.MapEpoch() != 1 {
		t.Fatalf("post-split shards=%d epoch=%d", r.Shards(), r.MapEpoch())
	}
	if b.armed {
		t.Fatal("trigger still armed right after a split")
	}

	// Default cooldown is 2 steps: even sustained heat does nothing yet.
	hammer(t, r, 0, keys, 30)
	for i := 0; i < 2; i++ {
		if act, err := b.Step(ctx); err != nil || act != nil {
			t.Fatalf("cooldown step %d = (%+v, %v), want (nil, nil)", i, act, err)
		}
	}
	// Out of cooldown but disarmed: a calm window re-arms without acting.
	calmWindow(t, r, keys, base)
	if act, err := b.Step(ctx); err != nil || act != nil {
		t.Fatalf("disarmed step = (%+v, %v), want (nil, nil)", act, err)
	}
	if !b.armed {
		t.Fatal("calm window did not re-arm the trigger")
	}
	// Armed again: a window where only shard 0 spends must split it.
	hammer(t, r, 0, keys, 30)
	act, err = b.Step(ctx)
	if err != nil || act == nil || act.Kind != "split" || act.Slot != 0 {
		t.Fatalf("re-armed hot step = (%+v, %v), want split of shard 0", act, err)
	}
}

// TestRebalancerMergesColdPairWithSeenGuard: after a split, the
// zero-traffic children become merge candidates only once observed for a
// full window — never merged back on sight.
func TestRebalancerMergesColdPairWithSeenGuard(t *testing.T) {
	const keys = 200
	r := newTestRouter(t, 2, withRegistry)
	ctx := testCtx()

	b, err := r.NewRebalancer(RebalanceConfig{
		Base:     core.PaperCosts(),
		Cooldown: -1, // disable: this test isolates the seen guard
	})
	if err != nil {
		t.Fatalf("NewRebalancer: %v", err)
	}
	if act, err := b.Step(ctx); err != nil || act != nil {
		t.Fatalf("seed step = (%+v, %v)", act, err)
	}

	loadKeys(t, r, keys)
	hammer(t, r, 1, keys, 100)
	act, err := b.Step(ctx)
	if err != nil || act == nil || act.Kind != "split" || act.Slot != 1 {
		t.Fatalf("hot step = (%+v, %v), want split of shard 1", act, err)
	}
	low, high := 2, 3 // slots minted by the split of a 2-shard router

	// Window 1 after the split: only shard 0 spends, so the children's
	// combined share is 0 — but they are unseen, so no merge yet.
	hammer(t, r, 0, keys, 5)
	if act, err := b.Step(ctx); err != nil || act != nil {
		t.Fatalf("unseen-children step = (%+v, %v), want (nil, nil)", act, err)
	}

	// Window 2: the children have now been observed for a full window;
	// the same cold signal merges them back.
	hammer(t, r, 0, keys, 5)
	act, err = b.Step(ctx)
	if err != nil {
		t.Fatalf("cold step: %v", err)
	}
	if act == nil || act.Kind != "merge" || act.Slot != low || act.With != high {
		t.Fatalf("cold step action = %+v, want merge of %d+%d", act, low, high)
	}
	if r.Shards() != 2 || r.MapEpoch() != 2 {
		t.Fatalf("post-merge shards=%d epoch=%d", r.Shards(), r.MapEpoch())
	}
}

// TestRollupSkipsZeroOpsShards: a freshly split shard with no traffic
// contributes neither weight nor a divide-by-zero to the fleet $/op and
// breakeven means.
func TestRollupSkipsZeroOpsShards(t *testing.T) {
	base := core.PaperCosts()
	busy := obs.CostSnapshot{Store: "shard0", Ops: 1000, Hits: 900, Misses: 100,
		F: 0.1, ROPS: 50, DeviceReads: 100, BytesRead: 4096}
	idle := obs.CostSnapshot{Store: "shard7"} // zero ops, zero everything
	fleet := Rollup([]obs.CostSnapshot{busy, idle}, base)

	if fleet.Shards != 2 || fleet.Ops != 1000 {
		t.Fatalf("fleet shards=%d ops=%d", fleet.Shards, fleet.Ops)
	}
	if math.IsNaN(fleet.DollarPerOp) || math.IsInf(fleet.DollarPerOp, 0) {
		t.Fatalf("fleet $/op = %v", fleet.DollarPerOp)
	}
	if math.IsNaN(fleet.BreakevenSec) || math.IsInf(fleet.BreakevenSec, 0) {
		t.Fatalf("fleet breakeven = %v", fleet.BreakevenSec)
	}
	// The zero-ops shard must not dilute the weighted means: the fleet
	// numbers equal the busy shard's own.
	if want := busy.DollarPerOp(base); fleet.DollarPerOp != want {
		t.Fatalf("fleet $/op %v diluted from %v by a zero-ops shard", fleet.DollarPerOp, want)
	}
	if want := busy.BreakevenInterval(base); fleet.BreakevenSec != want {
		t.Fatalf("fleet breakeven %v diluted from %v", fleet.BreakevenSec, want)
	}

	// All-idle fleet: defined zeros, no NaN.
	empty := Rollup([]obs.CostSnapshot{idle, {Store: "shard8"}}, base)
	if empty.DollarPerOp != 0 || empty.BreakevenSec != 0 {
		t.Fatalf("idle fleet = %v/%v, want zeros", empty.DollarPerOp, empty.BreakevenSec)
	}
	// The rendered table guards the same way per row.
	_ = fleet.Table(base)
	_ = empty.Table(base)
}
