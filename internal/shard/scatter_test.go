package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"costperf/internal/engine"
	"costperf/internal/tc"
)

// flakyScanDC wraps MassDC with a scanner that, once armed, yields a few
// pairs and then fails — a shard going down mid-scan, deterministically.
type flakyScanDC struct {
	*MassDC
	armed atomic.Bool
	after int
	fail  error
}

func (d *flakyScanDC) Scan(start []byte, limit int, fn func(k, v []byte) bool) error {
	if !d.armed.Load() {
		return d.MassDC.Scan(start, limit, fn)
	}
	n := 0
	if err := d.MassDC.Scan(start, limit, func(k, v []byte) bool {
		if n >= d.after {
			return false
		}
		n++
		return fn(k, v)
	}); err != nil {
		return err
	}
	return d.fail
}

func loadRouter(t *testing.T, r *Router, keys int) {
	t.Helper()
	ctx := testCtx()
	for i := 0; i < keys; i++ {
		if err := r.Put(ctx, key(i), val(i, 0)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
}

func collectScan(t *testing.T, r *Router, start []byte, limit int) ([]string, error) {
	t.Helper()
	var got []string
	var prev []byte
	err := r.Scan(testCtx(), start, limit, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("merge order violated: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		got = append(got, string(k))
		return true
	})
	return got, err
}

func TestScatterGatherScanMergesInOrder(t *testing.T) {
	const keys = 300
	r := newTestRouter(t, 4, nil)
	loadRouter(t, r, keys)

	got, err := collectScan(t, r, nil, 0)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(got) != keys {
		t.Fatalf("scan returned %d keys, want %d", len(got), keys)
	}
	for i, k := range got {
		if k != string(key(i)) {
			t.Fatalf("position %d = %q, want %q", i, k, key(i))
		}
	}

	// Start offset and limit behave like a single store's scan.
	got, err = collectScan(t, r, key(100), 25)
	if err != nil {
		t.Fatalf("bounded scan: %v", err)
	}
	if len(got) != 25 || got[0] != string(key(100)) || got[24] != string(key(124)) {
		t.Fatalf("bounded scan = %d keys [%s..%s]", len(got), got[0], got[len(got)-1])
	}

	// Early stop from the callback is a success, not an error.
	n := 0
	if err := r.Scan(testCtx(), nil, 0, func(k, v []byte) bool {
		n++
		return n < 10
	}); err != nil {
		t.Fatalf("early-stop scan: %v", err)
	}
	if n != 10 {
		t.Fatalf("early-stop visited %d, want 10", n)
	}
}

func TestScatterGatherShardDownMidScanIsPartial(t *testing.T) {
	const n, keys = 4, 400
	errDown := errors.New("test: shard storage died mid-scan")
	flaky := map[int]*flakyScanDC{}
	r := newTestRouter(t, n, func(c *Config) {
		c.NewDC = func(shard int) tc.DataComponent {
			d := &flakyScanDC{MassDC: NewMassDC(), after: 3, fail: errDown}
			flaky[shard] = d
			return d
		}
	})
	loadRouter(t, r, keys)

	const bad = 1
	flaky[bad].armed.Store(true)

	got, err := collectScan(t, r, nil, 0)
	var pse *PartialScanError
	if !errors.As(err, &pse) || !errors.Is(err, ErrPartialScan) {
		t.Fatalf("scan with shard %d down = %v, want *PartialScanError", bad, err)
	}
	if len(pse.Failed) != 1 || pse.Failed[0].Shard != bad || !errors.Is(pse.Failed[0].Err, errDown) {
		t.Fatalf("partial error names %+v, want shard %d / errDown", pse.Failed, bad)
	}
	if r.Stats().PartialScans.Value() != 1 {
		t.Fatalf("PartialScans = %d, want 1", r.Stats().PartialScans.Value())
	}

	// The surviving shards' data is complete and correctly merged: every
	// key not owned by the failed shard is present, in global order
	// (collectScan already asserted ordering).
	seen := map[string]bool{}
	for _, k := range got {
		seen[k] = true
	}
	for i := 0; i < keys; i++ {
		k := string(key(i))
		if SlotOf(key(i), n) == bad {
			continue
		}
		if !seen[k] {
			t.Fatalf("surviving shard's key %q missing from partial result", k)
		}
	}

	// Healed shard: the next scan is whole again.
	flaky[bad].armed.Store(false)
	got, err = collectScan(t, r, nil, 0)
	if err != nil || len(got) != keys {
		t.Fatalf("scan after heal = %d keys, err %v", len(got), err)
	}
}

func TestScatterGatherFailFast(t *testing.T) {
	const n = 3
	r := newTestRouter(t, n, func(c *Config) { c.FailFastScans = true })
	loadRouter(t, r, 150)

	const bad = 2
	if err := r.Engine(bad).Close(); err != nil {
		t.Fatalf("close shard engine: %v", err)
	}
	err := r.Scan(testCtx(), nil, 0, func(k, v []byte) bool { return true })
	if err == nil {
		t.Fatal("fail-fast scan returned nil with a shard down")
	}
	if errors.Is(err, ErrPartialScan) {
		t.Fatalf("fail-fast scan returned the partial-tolerant error: %v", err)
	}
	if !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("fail-fast scan = %v, want the shard's own error", err)
	}
}

func TestPartialScanErrorRendering(t *testing.T) {
	e := &PartialScanError{Failed: []ShardError{{Shard: 3, Err: errors.New("boom")}}}
	if !errors.Is(e, ErrPartialScan) {
		t.Fatal("PartialScanError does not unwrap to ErrPartialScan")
	}
	s := e.Error()
	if want := "shard"; len(s) == 0 || !bytes.Contains([]byte(s), []byte(want)) {
		t.Fatalf("error string %q", s)
	}
	if !bytes.Contains([]byte(s), []byte(fmt.Sprintf("%d: boom", 3))) {
		t.Fatalf("error string %q does not name the failed shard", s)
	}
}
