package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"costperf/internal/engine"
	"costperf/internal/overload"
)

// saturateScanBound drives one shard's limiter to the point where a
// scan-class arrival would shed: fills the concurrency limit, then
// parks one normal-class waiter so the queue prefix is at scan's bound.
// The returned release func unwinds everything.
func saturateScanBound(t *testing.T, eng *engine.Engine) (release func()) {
	t.Helper()
	lim := eng.Limiter()
	ctx, cancel := context.WithCancel(context.Background())
	var held []*overload.Ticket
	for lim.Stats().Inflight.Value() < int64(lim.Limit()) {
		tk, err := lim.Acquire(ctx, overload.ClassNormal)
		if err != nil {
			t.Fatalf("saturating acquire: %v", err)
		}
		held = append(held, tk)
	}
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		if tk, err := lim.Acquire(ctx, overload.ClassNormal); err == nil {
			lim.Release(tk, false)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !lim.WouldShed(overload.ClassScan) {
		if time.Now().After(deadline) {
			t.Fatal("limiter never reached the scan bound")
		}
		time.Sleep(time.Millisecond)
	}
	return func() {
		cancel()
		for _, tk := range held {
			lim.Release(tk, false)
		}
		<-parked
	}
}

// TestScatterRespectsShardLimiter pins the scatter-gather limiter check
// in partial mode: a shard at its scan bound becomes a typed hole in the
// PartialScanError — carrying ErrOverload — while the surviving shards'
// data still arrives.
func TestScatterRespectsShardLimiter(t *testing.T) {
	r := newTestRouter(t, 2, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 4
	})
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		if err := r.Put(ctx, key(i), val(i, 0)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	release := saturateScanBound(t, r.Engine(0))
	defer release()

	var got int
	err := r.Scan(ctx, nil, 0, func(k, v []byte) bool { got++; return true })
	var pse *PartialScanError
	if !errors.As(err, &pse) {
		t.Fatalf("scan with one shard at bound = %v, want *PartialScanError", err)
	}
	if len(pse.Failed) != 1 || pse.Failed[0].Shard != 0 {
		t.Fatalf("failed shards = %+v, want exactly shard 0", pse.Failed)
	}
	if !errors.Is(pse.Failed[0].Err, engine.ErrOverload) {
		t.Fatalf("hole error = %v, want ErrOverload", pse.Failed[0].Err)
	}
	if got == 0 {
		t.Fatal("surviving shard delivered no data")
	}
	// The refused shard never consumed an admission slot: its engine saw
	// no scan at all, so the shed is visible only at the scatter layer.
	if r.Engine(0).Limiter().Stats().ShedScan.Value() != 0 {
		t.Fatal("scatter dispatched a doomed scan into the shard's limiter")
	}
}

// TestScatterFailFastRefusesBeforeFanOut pins the fail-fast pre-check: a
// fleet with any shard past its scan bound refuses the scan up front —
// no goroutines fan out, no healthy shard does work the merge would
// discard.
func TestScatterFailFastRefusesBeforeFanOut(t *testing.T) {
	r := newTestRouter(t, 2, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 4
		c.FailFastScans = true
	})
	ctx := context.Background()
	for i := 0; i < 32; i++ {
		if err := r.Put(ctx, key(i), val(i, 0)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	release := saturateScanBound(t, r.Engine(0))

	var got int
	err := r.Scan(ctx, nil, 0, func(k, v []byte) bool { got++; return true })
	if !errors.Is(err, engine.ErrOverload) {
		release()
		t.Fatalf("fail-fast scan = %v, want ErrOverload", err)
	}
	if got != 0 {
		release()
		t.Fatalf("refused scan still delivered %d pairs", got)
	}

	// The refusal is load, not a latch: capacity back means scans back.
	release()
	if err := r.Scan(ctx, nil, 0, func(k, v []byte) bool { got++; return true }); err != nil {
		t.Fatalf("scan after release: %v", err)
	}
	if got == 0 {
		t.Fatal("recovered scan delivered no data")
	}
}

// TestRouterRetryAfterHint pins the Adviser capability: the router's
// hint is the worst live shard's hint, so a shed client's wait clears
// the most congested shard a retry might land on.
func TestRouterRetryAfterHint(t *testing.T) {
	r := newTestRouter(t, 2, func(c *Config) {
		c.MaxConcurrent = 2
	})
	idle := r.RetryAfterHint()
	if idle <= 0 {
		t.Fatalf("idle hint = %v, want positive", idle)
	}

	// Load shard 0's limiter; the fleet hint must track it.
	lim := r.Engine(0).Limiter()
	ctx := context.Background()
	var held []*overload.Ticket
	for i := 0; i < 2; i++ {
		tk, err := lim.Acquire(ctx, overload.ClassNormal)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		held = append(held, tk)
	}
	loaded := r.RetryAfterHint()
	if loaded < r.Engine(0).RetryAfterHint() {
		t.Fatalf("fleet hint %v below loaded shard's %v", loaded, r.Engine(0).RetryAfterHint())
	}
	if loaded <= r.Engine(1).RetryAfterHint() {
		t.Fatalf("fleet hint %v not above the idle shard's %v", loaded, r.Engine(1).RetryAfterHint())
	}
	for _, tk := range held {
		lim.Release(tk, false)
	}
}

// TestAdaptivePassThrough pins the Config plumbing: Adaptive reaches
// every shard engine's limiter, and stays off by default.
func TestAdaptivePassThrough(t *testing.T) {
	r := newTestRouter(t, 2, nil)
	for i := 0; i < 2; i++ {
		if r.Engine(i).Limiter().Adaptive() {
			t.Fatalf("shard %d limiter adaptive without opting in", i)
		}
	}
	ra := newTestRouter(t, 2, func(c *Config) {
		c.Adaptive = true
		c.AdaptiveMin = 1
		c.AdaptiveMax = 8
		c.LimitWindow = 16
	})
	for i := 0; i < 2; i++ {
		if !ra.Engine(i).Limiter().Adaptive() {
			t.Fatalf("shard %d limiter static despite Adaptive config", i)
		}
	}
}
