package shard

import (
	"fmt"
	"strings"

	"costperf/internal/core"
	"costperf/internal/obs"
)

// FleetCost aggregates per-shard CostSnapshots into the fleet-level view:
// what the whole sharded service costs per operation, with the per-shard
// rows kept for attribution. The paper's $/op model (Section 3.2) is
// evaluated per shard with its own measured F, R, and ROPS; the fleet
// number is the ops-weighted mean, so a cold or degraded shard moves the
// fleet cost in proportion to the traffic it actually carried.
type FleetCost struct {
	Shards int

	// Summed span-level accounting across shards.
	Ops, Errors, Shed int64
	// Summed physical accounting.
	DeviceReads, DeviceWrites int64
	BytesRead, BytesWritten   int64
	ShipBytes                 int64

	// DollarPerOp is the ops-weighted mean of the per-shard live $/op
	// (zero when no shard completed an operation).
	DollarPerOp float64
	// BreakevenSec is the ops-weighted mean of the per-shard five-minute-
	// rule breakeven interval, over the shards that completed operations.
	// A zero-ops shard — freshly split, no traffic yet — contributes
	// neither weight nor value: its per-op ratios are undefined, and
	// folding it in as zero would skew the fleet toward "cache nothing".
	BreakevenSec float64

	// PerShard keeps the inputs for attribution, in input order.
	PerShard []obs.CostSnapshot
}

// Rollup folds per-shard snapshots into the fleet view under base costs.
func Rollup(snaps []obs.CostSnapshot, base core.Costs) FleetCost {
	f := FleetCost{Shards: len(snaps), PerShard: snaps}
	var weighted, beWeighted float64
	var rated int64
	for _, s := range snaps {
		f.Ops += s.Ops
		f.Errors += s.Errors
		f.Shed += s.Shed
		f.DeviceReads += s.DeviceReads
		f.DeviceWrites += s.DeviceWrites
		f.BytesRead += s.BytesRead
		f.BytesWritten += s.BytesWritten
		f.ShipBytes += s.ShipBytes
		// Per-op ratios are only defined for shards that completed
		// operations; the Ops > 0 guard keeps a zero-ops shard from
		// dividing by zero or dragging the weighted means.
		if s.Ops > 0 {
			weighted += float64(s.Ops) * s.DollarPerOp(base)
			beWeighted += float64(s.Ops) * s.BreakevenInterval(base)
			rated += s.Ops
		}
	}
	if rated > 0 {
		f.DollarPerOp = weighted / float64(rated)
		f.BreakevenSec = beWeighted / float64(rated)
	}
	return f
}

// Table renders the per-shard rows plus the fleet total line.
func (f FleetCost) Table(base core.Costs) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %8s %8s %10s %10s %12s\n",
		"shard", "ops", "errors", "shed", "dev-reads", "dev-writes", "$/Mop")
	for _, s := range f.PerShard {
		dpm := 0.0
		if s.Ops > 0 {
			dpm = 1e6 * s.DollarPerOp(base)
		}
		fmt.Fprintf(&b, "%-10s %10d %8d %8d %10d %10d %12.3f\n",
			s.Store, s.Ops, s.Errors, s.Shed, s.DeviceReads, s.DeviceWrites, dpm)
	}
	fmt.Fprintf(&b, "%-10s %10d %8d %8d %10d %10d %12.3f\n",
		"fleet", f.Ops, f.Errors, f.Shed, f.DeviceReads, f.DeviceWrites, 1e6*f.DollarPerOp)
	return b.String()
}
