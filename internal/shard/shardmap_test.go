package shard

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// TestEvenMapRouting pins the epoch-0 contract: SlotOf and the even map
// agree, every slot gets traffic, and range lookups match a brute-force
// scan of the entries.
func TestEvenMapRouting(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		m := NewEvenMap(n)
		if err := m.Validate(); err != nil {
			t.Fatalf("even map %d invalid: %v", n, err)
		}
		if m.Epoch != 0 {
			t.Fatalf("even map %d born at epoch %d", n, m.Epoch)
		}
		counts := make([]int, n)
		for i := 0; i < 500; i++ {
			k := []byte(fmt.Sprintf("key%05d", i))
			s := m.SlotOfKey(k)
			if got := SlotOf(k, n); got != s {
				t.Fatalf("n=%d key %s: SlotOf=%d map=%d", n, k, got, s)
			}
			counts[s]++
		}
		for s, c := range counts {
			if c == 0 && n <= 16 {
				t.Fatalf("n=%d slot %d got no keys of 500", n, s)
			}
			_ = s
		}
	}
}

// TestMapRangeGeometry checks Range/InRange/RangeFrac around the wrap at
// the top of the hash space.
func TestMapRangeGeometry(t *testing.T) {
	m := NewEvenMap(4)
	var covered float64
	for i := range m.Entries {
		lo, hi := m.Range(i)
		covered += RangeFrac(lo, hi)
		if !InRange(lo, lo, hi) {
			t.Fatalf("entry %d: lo not in own range", i)
		}
		if hi != 0 && InRange(hi, lo, hi) {
			t.Fatalf("entry %d: hi inside half-open range", i)
		}
	}
	if math.Abs(covered-1) > 1e-9 {
		t.Fatalf("ranges cover %.12f of the space, want 1", covered)
	}
	lo, hi := m.Range(len(m.Entries) - 1)
	if hi != 0 {
		t.Fatalf("last range hi = %#x, want 0 (top of space)", hi)
	}
	if !InRange(math.MaxUint64, lo, hi) {
		t.Fatal("top hash value not in the last range")
	}
	if mid := midpoint(lo, hi); !InRange(mid, lo, hi) || mid == lo {
		t.Fatalf("midpoint %#x of wrap range [%#x, 0) unusable", mid, lo)
	}
}

// TestMapSplitMerge walks a split and the reversing merge, checking
// epochs, slot identity, and that only the split range changed owners.
func TestMapSplitMerge(t *testing.T) {
	m := NewEvenMap(4)
	lo, hi := m.Range(2)
	at := midpoint(lo, hi)
	sm := m.withSplit(2, at, 4, 5)
	if err := sm.Validate(); err != nil {
		t.Fatalf("split map invalid: %v", err)
	}
	if sm.Epoch != 1 || len(sm.Entries) != 5 {
		t.Fatalf("split map epoch %d entries %d", sm.Epoch, len(sm.Entries))
	}
	if sm.HasSlot(2) {
		t.Fatal("split map still places the retired parent slot")
	}
	// Movement is bounded to the parent's range: every hash outside
	// [lo, hi) routes exactly as before.
	for h := uint64(0); h < math.MaxUint64-1e15; h += 1e15 {
		before, after := m.Slot(h), sm.Slot(h)
		switch {
		case !InRange(h, lo, hi):
			if before != after {
				t.Fatalf("hash %#x outside the split range moved %d→%d", h, before, after)
			}
		case InRange(h, lo, at):
			if after != 4 {
				t.Fatalf("hash %#x in low half owned by %d, want 4", h, after)
			}
		default:
			if after != 5 {
				t.Fatalf("hash %#x in high half owned by %d, want 5", h, after)
			}
		}
	}

	mm := sm.withMerge(4, 5, 6)
	if err := mm.Validate(); err != nil {
		t.Fatalf("merge map invalid: %v", err)
	}
	if mm.Epoch != 2 || len(mm.Entries) != 4 {
		t.Fatalf("merge map epoch %d entries %d", mm.Epoch, len(mm.Entries))
	}
	if mm.HasSlot(4) || mm.HasSlot(5) {
		t.Fatal("merge map still places a retired child slot")
	}
	mlo, mhi := mm.Range(mm.indexOfSlot(6))
	if mlo != lo || mhi != hi {
		t.Fatalf("merged range [%#x, %#x), want the original [%#x, %#x)", mlo, mhi, lo, hi)
	}
}

// TestMapValidate enumerates the rejection cases.
func TestMapValidate(t *testing.T) {
	bad := []*Map{
		{},
		{Entries: []Entry{{Start: 5, Slot: 0}}},
		{Entries: []Entry{{Start: 0, Slot: 0}, {Start: 0, Slot: 1}}},
		{Entries: []Entry{{Start: 0, Slot: 0}, {Start: 9, Slot: 3}, {Start: 4, Slot: 1}}},
		{Entries: []Entry{{Start: 0, Slot: 1}, {Start: 4, Slot: 1}}},
		{Entries: []Entry{{Start: 0, Slot: -2}}},
	}
	for i, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrBadMap) {
			t.Fatalf("case %d: Validate = %v, want ErrBadMap", i, err)
		}
	}
}

// TestMapCodecRoundTrip pins the wire layout and the decode rejections.
func TestMapCodecRoundTrip(t *testing.T) {
	m := NewEvenMap(6).withSplit(3, midpointOfSlot(t, NewEvenMap(6), 3), 6, 7)
	b := EncodeMap(m)
	if len(b) != 12+len(m.Entries)*mapEntryLen {
		t.Fatalf("encoded %d bytes, want %d", len(b), 12+len(m.Entries)*mapEntryLen)
	}
	got, err := DecodeMap(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Epoch != m.Epoch || len(got.Entries) != len(m.Entries) {
		t.Fatalf("round trip = %+v, want %+v", got, m)
	}
	for i := range got.Entries {
		if got.Entries[i] != m.Entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got.Entries[i], m.Entries[i])
		}
	}
	for name, mut := range map[string][]byte{
		"empty":     {},
		"short":     b[:8],
		"truncated": b[:len(b)-1],
		"padded":    append(append([]byte(nil), b...), 0),
	} {
		if _, err := DecodeMap(mut); !errors.Is(err, ErrBadMap) {
			t.Fatalf("%s body: decode = %v, want ErrBadMap", name, err)
		}
	}
	// A structurally valid buffer whose map breaks invariants is refused.
	zero := EncodeMap(&Map{Entries: []Entry{{Start: 0, Slot: 0}, {Start: 0, Slot: 1}}})
	if _, err := DecodeMap(zero); !errors.Is(err, ErrBadMap) {
		t.Fatalf("duplicate-start map decoded: %v", err)
	}
}

func midpointOfSlot(t *testing.T, m *Map, slot int) uint64 {
	t.Helper()
	lo, hi := m.Range(m.indexOfSlot(slot))
	return midpoint(lo, hi)
}

// FuzzMapCodec fuzzes the shard-map codec the same way the frame fuzzers
// cover the wire framing: any byte string either fails to decode with
// ErrBadMap or round-trips byte-identically — a hostile MOVED body can
// never produce a map the encoder would not have written.
func FuzzMapCodec(f *testing.F) {
	f.Add(EncodeMap(NewEvenMap(1)))
	f.Add(EncodeMap(NewEvenMap(4)))
	m := NewEvenMap(3)
	lo, hi := m.Range(1)
	f.Add(EncodeMap(m.withSplit(1, midpoint(lo, hi), 3, 4)))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMap(b)
		if err != nil {
			if !errors.Is(err, ErrBadMap) {
				t.Fatalf("decode error %v does not wrap ErrBadMap", err)
			}
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("decoded map fails validation: %v", verr)
		}
		re := EncodeMap(m)
		if string(re) != string(b) {
			t.Fatalf("re-encode mismatch:\n in %x\nout %x", b, re)
		}
		// A decoded map must be routable: every lookup lands on an entry
		// whose range contains the hash.
		for _, h := range []uint64{0, 1, math.MaxUint64, 1 << 63} {
			i := m.EntryIndex(h)
			lo, hi := m.Range(i)
			if !InRange(h, lo, hi) {
				t.Fatalf("hash %#x routed to entry %d range [%#x, %#x)", h, i, lo, hi)
			}
		}
	})
}
