package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"costperf/internal/engine"
	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/repl"
	"costperf/internal/ssd"
	"costperf/internal/tc"
)

// Phase is one step of the live-migration state machine. Phases run in
// order; MigrateConfig.OnPhase fires at every completed boundary, which
// is where the chaos sweep injects crashes.
type Phase int

const (
	// PhasePrepare: the migration link is dialed (refused while the
	// injector is partitioned — a fresh dial cannot dodge chaos), a
	// standby is built over the target's log device and data component,
	// and the repl shipper starts streaming the source's recovery log.
	PhasePrepare Phase = iota
	// PhaseCatchup: the target has applied the source's durable log up to
	// a recent snapshot of its durable LSN, while writes keep landing.
	PhaseCatchup
	// PhaseFence: the source owner's commit gate flips — every commit on
	// the old owner from here on is rejected with ErrMoved, forever.
	PhaseFence
	// PhaseDrain: in-flight operations on the old owner have finished,
	// its log is flushed, and the shipper has drained the tail — the
	// target's applied log now byte-for-byte equals the source's.
	PhaseDrain
	// PhaseSeal: the standby is sealed at a higher epoch (late frames
	// from the old stream are fenced) and the target TC is built over the
	// shipped log, continuing the LSN sequence and commit clock in place.
	PhaseSeal
	// PhaseInstall: the router now routes the shard to the new owner and
	// wakes every request parked on the cutover. The migration is done.
	PhaseInstall
)

// String names the phase for logs and sweep labels.
func (p Phase) String() string {
	switch p {
	case PhasePrepare:
		return "prepare"
	case PhaseCatchup:
		return "catchup"
	case PhaseFence:
		return "fence"
	case PhaseDrain:
		return "drain"
	case PhaseSeal:
		return "seal"
	case PhaseInstall:
		return "install"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// MigrateConfig parameterizes one live migration.
type MigrateConfig struct {
	// Shard is the partition to move (required).
	Shard int
	// TargetDC / TargetLog are the new owner's data component and
	// recovery-log device; nil defaults to the router's factories. They
	// must be reused across Run retries of the same migration.
	TargetDC  tc.DataComponent
	TargetLog ssd.Dev
	// Net injects faults into the migration link (nil = perfect link).
	// Dials are refused while it is partitioned (fault.ErrPartitioned).
	Net *fault.NetInjector
	// OnPhase, when non-nil, is called after each phase completes. A
	// non-nil return aborts the migration at that boundary — the chaos
	// harness's simulated crash. Run may be called again to resume.
	OnPhase func(Phase) error
	// CatchupWait bounds each catch-up round (default 5s); DrainWait
	// bounds the in-flight drain and the final tail ship (default 2s).
	CatchupWait time.Duration
	DrainWait   time.Duration
	// Seed seeds the ship backoff jitter (default router seed).
	Seed int64
}

// Migration is one live shard move. Run drives it to completion; if a
// run aborts (injected crash, partitioned link), Run resumes it: the
// stream is rebuilt from scratch and re-applied blindly — the same
// idempotent redo application recovery uses — so every pre-install
// boundary is safe to die at. After the fence the shard's writes park on
// the cutover until the migration finishes.
type Migration struct {
	r   *Router
	cfg MigrateConfig
	src *owner

	mu       sync.Mutex
	phase    Phase
	done     bool
	lastErr  error
	attempts int

	link   *repl.Link
	ship   *repl.Shipper
	stby   *repl.Standby
	stats  metrics.ReplStats
	newOwn *owner
}

// Migrate starts a live migration of one shard to a fresh owner and
// returns the handle; call Run to drive it. One migration per shard at a
// time; replicated shards are refused (their mobility is failover).
func (r *Router) Migrate(cfg MigrateConfig) (*Migration, error) {
	t := r.tab.Load()
	src := t.owners[cfg.Shard]
	if src == nil {
		return nil, fmt.Errorf("shard %d: %w", cfg.Shard, ErrNoShard)
	}
	if src.cluster != nil {
		return nil, fmt.Errorf("shard %d: %w", cfg.Shard, ErrReplicatedShard)
	}
	if cfg.CatchupWait <= 0 {
		cfg.CatchupWait = 5 * time.Second
	}
	if cfg.DrainWait <= 0 {
		cfg.DrainWait = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = r.cfg.Seed + int64(cfg.Shard)*7919
	}
	if cfg.TargetDC == nil {
		cfg.TargetDC = r.cfg.NewDC(cfg.Shard)
	}
	if cfg.TargetLog == nil {
		cfg.TargetLog = r.cfg.NewLog(fmt.Sprintf("shard%d-log.%d", cfg.Shard, src.gen+1))
		if tr := r.tracer(cfg.Shard); tr != nil {
			cfg.TargetLog.SetObserver(tr)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.resizing[cfg.Shard] {
		return nil, fmt.Errorf("shard %d: %w", cfg.Shard, ErrMigrating)
	}
	r.resizing[cfg.Shard] = true
	return &Migration{r: r, cfg: cfg, src: src}, nil
}

// Phase reports the next phase to run (PhaseInstall and Done()==true
// once complete); Attempts counts Run calls; Err the last abort.
func (m *Migration) Phase() Phase {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.phase
}

// Done reports whether the cutover installed.
func (m *Migration) Done() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.done
}

// Err returns the error that aborted the last Run (nil after success).
func (m *Migration) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// Stats exposes the migration stream's replication counters.
func (m *Migration) Stats() *metrics.ReplStats { return &m.stats }

// SourceTC exposes the old owner's transaction component so audits can
// prove the fence holds (a direct commit on it must fail with ErrMoved).
func (m *Migration) SourceTC() *tc.TC { return m.src.tc }

// Run drives the migration to completion, resuming after a prior abort.
// Every restart rebuilds the stream from the beginning of the source log;
// the standby's blind redo application makes the replay idempotent, and
// an already-set fence stays set, so resuming is safe at every boundary.
func (m *Migration) Run(ctx context.Context) (err error) {
	m.mu.Lock()
	if m.done {
		m.mu.Unlock()
		return nil
	}
	m.attempts++
	// Resume point: a sealed target only needs installing; anything
	// earlier re-streams from scratch.
	if m.newOwn != nil {
		m.phase = PhaseInstall
	} else {
		m.phase = PhasePrepare
	}
	m.lastErr = nil
	m.mu.Unlock()

	defer func() {
		if err != nil {
			m.suspend()
			m.mu.Lock()
			m.lastErr = err
			m.mu.Unlock()
		}
	}()

	for {
		m.mu.Lock()
		ph := m.phase
		done := m.done
		m.mu.Unlock()
		if done {
			return nil
		}
		if err := m.step(ctx, ph); err != nil {
			return fmt.Errorf("shard %d migration, %v: %w", m.cfg.Shard, ph, err)
		}
		m.mu.Lock()
		if ph == PhaseInstall {
			m.done = true
		} else {
			m.phase = ph + 1
		}
		m.mu.Unlock()
		if m.cfg.OnPhase != nil {
			if herr := m.cfg.OnPhase(ph); herr != nil && ph != PhaseInstall {
				return fmt.Errorf("shard %d migration aborted after %v: %w", m.cfg.Shard, ph, herr)
			}
		}
		if ph == PhaseInstall {
			return nil
		}
	}
}

// suspend tears the stream down after an abort (the simulated crash
// kills the shipper and standby); Run rebuilds it.
func (m *Migration) suspend() {
	if m.ship != nil {
		m.ship.Stop()
		m.ship = nil
	}
	if m.stby != nil {
		m.stby.Stop()
		m.stby = nil
	}
	m.link = nil
}

func (m *Migration) step(ctx context.Context, ph Phase) error {
	switch ph {
	case PhasePrepare:
		return m.prepare()
	case PhaseCatchup:
		return m.catchup(ctx)
	case PhaseFence:
		m.src.fenced.Store(true)
		m.r.stats.Fences.Inc()
		return nil
	case PhaseDrain:
		return m.drain(ctx)
	case PhaseSeal:
		return m.seal()
	case PhaseInstall:
		m.r.installOwner(m.cfg.Shard, m.newOwn)
		return nil
	}
	return fmt.Errorf("unknown phase %v", ph)
}

// prepare dials the migration link and starts streaming the source log
// into the target. Establishing the link consults the injector's dial
// gate: a partition refuses fresh dials, so migration chaos cannot be
// dodged by redialing (see fault.NetInjector.DialErr).
func (m *Migration) prepare() error {
	if m.cfg.Net != nil {
		if err := m.cfg.Net.DialErr(); err != nil {
			return err
		}
	}
	m.link = repl.NewLink(m.cfg.Net)
	m.stby = repl.NewStandby(repl.StandbyConfig{
		Link: m.link, LogDevice: m.cfg.TargetLog, DC: m.cfg.TargetDC,
		Epoch: 1, Stats: &m.stats,
	})
	m.ship = repl.NewShipper(repl.ShipperConfig{
		TC: m.src.tc, Link: m.link, Epoch: 1, Stats: &m.stats,
		Window: 8, AckTimeout: 5 * time.Millisecond,
		RetryBase: 200 * time.Microsecond, RetryMax: 5 * time.Millisecond,
		Poll: 50 * time.Microsecond, Seed: m.cfg.Seed,
	})
	m.stby.Start()
	m.ship.Start()
	return nil
}

// catchup waits until the target has applied everything durable on the
// source as of now; later writes are the drain's problem.
func (m *Migration) catchup(ctx context.Context) error {
	if err := m.src.tc.Flush(); err != nil {
		return err
	}
	target := m.src.tc.DurableLSN()
	deadline := time.Now().Add(m.cfg.CatchupWait)
	for m.stby.AppliedLSN() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("applied %d < durable %d after %v: %w",
				m.stby.AppliedLSN(), target, m.cfg.CatchupWait, ErrCatchup)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// drain finishes the fenced owner: waits for its in-flight operations to
// retire, flushes its log, and ships the tail until the target's applied
// LSN equals the source's durable LSN exactly.
func (m *Migration) drain(ctx context.Context) error {
	deadline := time.Now().Add(m.cfg.DrainWait)
	for m.src.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("%d operations still in flight on the fenced owner after %v: %w",
				m.src.inflight.Load(), m.cfg.DrainWait, ErrCatchup)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := m.src.tc.Flush(); err != nil {
		return err
	}
	if err := m.ship.Drain(m.cfg.DrainWait); err != nil {
		return err
	}
	final := m.src.tc.DurableLSN()
	for m.stby.AppliedLSN() < final {
		if time.Now().After(deadline) {
			return fmt.Errorf("target applied %d < source durable %d: %w",
				m.stby.AppliedLSN(), final, ErrCatchup)
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// seal stops the stream, seals the standby at a higher epoch (late
// frames from this stream are fenced, exactly like a demoted primary's),
// and builds the new owner's TC over the shipped log — continuing the
// source's LSN sequence and commit clock in place, the same continuation
// a promoted warm standby performs.
func (m *Migration) seal() error {
	m.ship.Stop()
	m.stby.Stop()
	applied, maxTS := m.stby.Seal(2)
	if durable := m.src.tc.DurableLSN(); applied != durable {
		return fmt.Errorf("sealed at applied %d but source durable is %d: %w",
			applied, durable, ErrCatchup)
	}
	o := &owner{shard: m.cfg.Shard, gen: m.src.gen + 1}
	t, err := tc.New(tc.Config{
		DC: m.cfg.TargetDC, LogDevice: m.cfg.TargetLog,
		LogBufferBytes: m.r.cfg.LogBufferBytes,
		CommitGate:     o.gate,
		LogStartLSN:    applied,
		InitialClock:   maxTS,
		Obs:            m.r.tracer(m.cfg.Shard),
	})
	if err != nil {
		return err
	}
	eng, err := engine.New(engine.Config{
		Store:           engine.WrapTC(t),
		MaxConcurrent:   m.r.cfg.MaxConcurrent,
		MaxQueue:        m.r.cfg.MaxQueue,
		DefaultTimeout:  m.r.cfg.DefaultTimeout,
		ProbeJitterSeed: m.cfg.Seed,
	})
	if err != nil {
		return err
	}
	o.tc = t
	o.log = m.cfg.TargetLog
	o.eng = eng
	m.newOwn = o
	return nil
}
