package obs

import (
	"encoding/json"
	"testing"
	"time"

	"costperf/internal/core"
)

func TestSnapshotExportFields(t *testing.T) {
	s := CostSnapshot{
		Store: "lsm", Ops: 1000, Errors: 3, Shed: 5, Timeouts: 2,
		F: 0.25, R: 8, ROPS: 2e6, IOPS: 1500,
		P50: 40 * time.Microsecond, P95: 90 * time.Microsecond, P99: 250 * time.Microsecond,
		DeviceReads: 111, DeviceWrites: 222,
		Mirrored: true,
	}
	base := core.PaperCosts()
	e := s.Export(base)

	if e.Store != "lsm" || e.Ops != 1000 || e.Errors != 3 || e.Shed != 5 || e.Timeouts != 2 {
		t.Fatalf("operation counters mangled: %+v", e)
	}
	if e.F != 0.25 || e.R != 8 || e.ROPS != 2e6 || e.IOPS != 1500 {
		t.Fatalf("model inputs mangled: %+v", e)
	}
	if e.P50Micros != 40 || e.P95Micros != 90 || e.P99Micros != 250 {
		t.Fatalf("latency micros wrong: p50=%v p95=%v p99=%v", e.P50Micros, e.P95Micros, e.P99Micros)
	}
	if e.DeviceReads != 111 || e.DeviceWrites != 222 {
		t.Fatalf("device counters mangled: %+v", e)
	}
	if !e.Mirrored || e.Replicated {
		t.Fatalf("redundancy flags mangled: %+v", e)
	}
	if want := 1e6 * s.DollarPerOp(base); e.DollarPerMop != want {
		t.Fatalf("DollarPerMop = %v, want %v", e.DollarPerMop, want)
	}
	if want := s.BreakevenInterval(base); e.BreakevenSec != want {
		t.Fatalf("BreakevenSec = %v, want %v", e.BreakevenSec, want)
	}
}

// The JSON field names are the cross-snapshot schema cmd/benchdiff keys
// on; renaming one must fail here before it silently breaks the diff.
func TestSnapshotExportJSONSchema(t *testing.T) {
	e := CostSnapshot{Store: "x", Ops: 1}.Export(core.PaperCosts())
	buf, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"store", "ops", "errors", "shed", "timeouts", "f",
		"p50_us", "p95_us", "p99_us", "device_reads", "device_writes",
		"dollar_per_mop", "breakeven_s",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("export JSON missing %q (keys: %v)", key, keysOf(m))
		}
	}
}

func keysOf(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
