package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"costperf/internal/core"
	"costperf/internal/metrics"
)

// Registry aggregates per-store tracers and renders their CostSnapshots.
type Registry struct {
	mu      sync.Mutex
	tracers map[string]*Tracer
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tracers: make(map[string]*Tracer)}
}

// Tracer returns the tracer registered under name, creating it on first
// use. Safe for concurrent use.
func (r *Registry) Tracer(name string) *Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tracers[name]; ok {
		return t
	}
	t := NewTracer(name)
	r.tracers[name] = t
	r.order = append(r.order, name)
	return t
}

// ResetAll resets every registered tracer — a phase boundary for all stores
// at once (kvbench uses it to drop the load phase from the measured run).
func (r *Registry) ResetAll() {
	r.mu.Lock()
	ts := make([]*Tracer, 0, len(r.tracers))
	for _, t := range r.tracers {
		ts = append(ts, t)
	}
	r.mu.Unlock()
	for _, t := range ts {
		t.Reset()
	}
}

// Snapshots returns one CostSnapshot per registered tracer, in
// registration order.
func (r *Registry) Snapshots() []CostSnapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	ts := make([]*Tracer, len(names))
	for i, n := range names {
		ts[i] = r.tracers[n]
	}
	r.mu.Unlock()
	out := make([]CostSnapshot, len(ts))
	for i, t := range ts {
		out[i] = t.Snapshot()
	}
	return out
}

// CostSnapshot is a point-in-time summary of one store's measured
// cost/performance inputs: everything the core model (paper Eq. 1-8) needs,
// taken from live counters instead of assumed constants.
type CostSnapshot struct {
	Store   string
	Elapsed time.Duration

	// Span-level operation accounting.
	Ops      int64
	Errors   int64
	Shed     int64
	Timeouts int64
	Canceled int64
	ByOp     map[string]int64

	// Cache behaviour over completed ops: Hits stayed in memory, Misses
	// synchronously touched secondary storage. F is the measured miss
	// ratio (the paper's cache-miss fraction).
	Hits   int64
	Misses int64
	F      float64

	// Latency over all ended spans (nanoseconds in the histograms,
	// durations here).
	P50, P95, P99 time.Duration
	Mean          time.Duration
	MeanHit       time.Duration // measured MM-op latency
	MeanMiss      time.Duration // measured SS-op latency

	// Model inputs derived from the above. ROPS is the measured
	// main-memory op rate (1/MeanHit); R is the measured SS/MM latency
	// ratio (paper's R, clamped >= 1); PF is the modeled throughput at
	// the measured F and R per Eq. 2, P0/((1-F) + F*R).
	ROPS float64
	R    float64
	PF   float64

	// Physical device accounting (from the device observer when wired,
	// else folded from attached metrics.IOStats).
	DeviceReads  int64
	DeviceWrites int64
	FailedIOs    int64 // failed physical attempts (counted, but no bytes)
	BytesRead    int64
	BytesWritten int64
	IOPS         float64       // successful physical I/Os per wall second
	DeviceBusy   time.Duration // accumulated device-busy time observed
	Utilization  float64       // device busy time / elapsed wall time

	// Folded retry accounting.
	RetryAttempts  int64
	Retries        int64
	RetryAbsorbed  int64
	RetryExhausted int64

	// Folded self-healing mirror accounting (zero when the store runs on
	// a bare device). Mirrored reports double the secondary-storage rent
	// in the cost model (core.Costs.WithReplication).
	Mirrored     bool
	ReadRepairs  int64 // pages healed by the verified read path
	ScrubRepairs int64 // pages healed by the background scrubber
	ScrubReads   int64 // scrubber verification reads (per leg per page)
	ScrubPasses  int64 // completed scrub sweeps
	Quarantined  int64 // pages lost on both legs and disabled

	// Folded warm-standby replication accounting (internal/repl). A
	// replicated store rents a second copy of the flash plus the ship
	// bandwidth — one extra replication leg in the cost model.
	Replicated   bool
	ShipBatches  int64 // frames handed to the transport (incl. resends)
	ShipBytes    int64 // payload bytes handed to the transport
	ShipResends  int64 // frames re-shipped after a timeout or nak
	ReplLagBytes int64 // standby applied-LSN lag behind primary durable
	Promotions   int64 // standby promotions (failovers)
	FencedWrites int64 // stale-primary commits rejected by the epoch gate

	// Folded adaptive-admission accounting (internal/overload). Limited
	// reports a limiter is attached; Limit is the live (learned or
	// static) concurrency limit and LimitChanges the gradient's up+down
	// adjustments. The ShedBy* fields break shed admissions down by
	// priority class — the brownout ladder's footprint: a healthy
	// degradation sheds scans long before it sheds normal traffic.
	Limited          bool
	Limit            int64
	LimitChanges     int64
	ShedByScan       int64
	ShedByLow        int64
	ShedByNormal     int64
	ShedByHigh       int64
	RetryAfterMicros int64

	Health string
}

// Snapshot summarizes the tracer's counters right now. Nil-safe.
func (t *Tracer) Snapshot() CostSnapshot {
	if t == nil {
		return CostSnapshot{}
	}
	s := CostSnapshot{
		Store:   t.name,
		Elapsed: time.Since(t.start),
		ByOp:    make(map[string]int64, int(opCount)),
	}
	for op := Op(0); op < opCount; op++ {
		m := &t.ops[op]
		n := m.count.Load()
		if n != 0 {
			s.ByOp[op.String()] = n
		}
		s.Ops += n
		s.Errors += m.errs.Load()
		s.Shed += m.shed.Load()
		s.Timeouts += m.timeouts.Load()
		s.Canceled += m.canceled.Load()
		s.Hits += m.hits.Load()
		s.Misses += m.misses.Load()
	}
	if s.Hits+s.Misses > 0 {
		s.F = float64(s.Misses) / float64(s.Hits+s.Misses)
	}

	ls := t.lat.Snapshot()
	s.P50, s.P95, s.P99 = time.Duration(ls.P50), time.Duration(ls.P95), time.Duration(ls.P99)
	s.Mean = time.Duration(ls.Mean)
	s.MeanHit = time.Duration(t.hitLat.Mean())
	s.MeanMiss = time.Duration(t.missLat.Mean())

	if s.MeanHit > 0 {
		s.ROPS = 1e9 / float64(s.MeanHit.Nanoseconds())
		if s.MeanMiss > 0 {
			s.R = float64(s.MeanMiss) / float64(s.MeanHit)
			if s.R < 1 {
				s.R = 1
			}
		}
	}
	if s.ROPS > 0 {
		r := s.R
		if r < 1 {
			r = 1
		}
		s.PF = core.MixedThroughput(s.ROPS, s.F, r)
	}

	// Device accounting: prefer the observer feed; fall back to folded
	// IOStats when no observer events arrived (pure in-memory stores, or
	// stores metered only through legacy counters).
	s.DeviceReads = t.io.reads.Load()
	s.DeviceWrites = t.io.writes.Load()
	s.FailedIOs = t.io.failed.Load()
	s.BytesRead = t.io.bytesR.Load()
	s.BytesWritten = t.io.bytesW.Load()
	busy := time.Duration(t.io.busyNanos.Load())
	s.DeviceBusy = busy

	t.mu.Lock()
	ioStats := append([]*metrics.IOStats(nil), t.ioStats...)
	retries := append([]*metrics.RetryStats(nil), t.retries...)
	healths := append([]*metrics.Health(nil), t.healths...)
	mirrors := append([]*metrics.MirrorStats(nil), t.mirrors...)
	repls := append([]*metrics.ReplStats(nil), t.repls...)
	limiters := append([]*metrics.LimiterStats(nil), t.limiters...)
	t.mu.Unlock()

	if s.DeviceReads+s.DeviceWrites+s.FailedIOs == 0 {
		for _, io := range ioStats {
			s.DeviceReads += io.Reads.Value()
			s.DeviceWrites += io.Writes.Value()
			s.FailedIOs += io.FailedReads.Value() + io.FailedWrites.Value()
			s.BytesRead += io.BytesRead.Value()
			s.BytesWritten += io.BytesWritten.Value()
		}
	}
	for _, r := range retries {
		s.RetryAttempts += r.Attempts.Value()
		s.Retries += r.Retries.Value()
		s.RetryAbsorbed += r.Absorbed.Value()
		s.RetryExhausted += r.Exhausted.Value()
	}
	for _, m := range mirrors {
		s.Mirrored = true
		s.ReadRepairs += m.ReadRepairs.Value()
		s.ScrubRepairs += m.ScrubRepairs.Value()
		s.ScrubReads += m.ScrubReads.Value()
		s.ScrubPasses += m.ScrubPasses.Value()
		s.Quarantined += m.Quarantined.Value()
	}
	for _, rp := range repls {
		s.Replicated = true
		s.ShipBatches += rp.BatchesShipped.Value()
		s.ShipBytes += rp.BytesShipped.Value()
		s.ShipResends += rp.Resends.Value()
		s.ReplLagBytes += rp.LagBytes()
		s.Promotions += rp.Promotions.Value()
		s.FencedWrites += rp.FencedWrites.Value()
	}
	for _, l := range limiters {
		s.Limited = true
		s.Limit += l.Limit.Value()
		s.LimitChanges += l.LimitUps.Value() + l.LimitDowns.Value()
		s.ShedByScan += l.ShedScan.Value()
		s.ShedByLow += l.ShedLow.Value()
		s.ShedByNormal += l.ShedNormal.Value()
		s.ShedByHigh += l.ShedHigh.Value()
		if ra := l.RetryAfterMicros.Value(); ra > s.RetryAfterMicros {
			s.RetryAfterMicros = ra
		}
	}
	s.Health = "healthy"
	for _, h := range healths {
		if st := h.State(); st != metrics.HealthHealthy {
			s.Health = st.String()
		}
	}

	if sec := s.Elapsed.Seconds(); sec > 0 {
		s.IOPS = float64(s.DeviceReads+s.DeviceWrites) / sec
		s.Utilization = busy.Seconds() / sec
	}
	return s
}

// LiveCosts substitutes the snapshot's measured ROPS and R into base,
// yielding a cost model parameterized by what this store actually did.
// Unmeasured inputs (no completed hits, no misses) keep the base values.
// A mirrored store pays the two-leg secondary-storage rent, and a
// replicated one pays an extra leg for the warm standby's copy of the
// flash (core.Costs.WithReplication) — so live $/op and breakeven reflect
// the redundancy each configuration bought.
func (s CostSnapshot) LiveCosts(base core.Costs) core.Costs {
	c := base
	legs := 1
	if s.Mirrored {
		legs = 2
	}
	if s.Replicated {
		legs++ // the standby's full second copy (DESIGN.md, Eq. 4-6)
	}
	if legs > 1 {
		c = c.WithReplication(legs)
	}
	if s.ROPS > 0 {
		c.ROPS = s.ROPS
	}
	if s.R >= 1 {
		c.R = s.R
	}
	return c
}

// DollarPerOp returns the measured execution cost per operation under the
// live model: (1-F) ops pay the MM execution cost, F ops pay the SS
// execution cost (paper Section 3.2, with F, R, ROPS measured).
func (s CostSnapshot) DollarPerOp(base core.Costs) float64 {
	c := s.LiveCosts(base)
	return (1-s.F)*c.MMExecCostPerOp() + s.F*c.SSExecCostPerOp()
}

// BreakevenInterval returns the live five-minute-rule breakeven (seconds)
// computed from the measured model inputs.
func (s CostSnapshot) BreakevenInterval(base core.Costs) float64 {
	return s.LiveCosts(base).BreakevenInterval()
}

// Line renders a one-line narrator summary of the snapshot against base
// rental rates — used by the chaos harness to make overload and recovery
// episodes visible in traces.
func (s CostSnapshot) Line(base core.Costs) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s ops=%-7d err=%d shed=%d tmo=%d F=%.4f", s.Store, s.Ops, s.Errors, s.Shed, s.Timeouts, s.F)
	if s.R >= 1 {
		fmt.Fprintf(&b, " R=%.1f", s.R)
	}
	fmt.Fprintf(&b, " p50=%s p99=%s io=%.0f/s util=%.0f%%", s.P50, s.P99, s.IOPS, 100*s.Utilization)
	fmt.Fprintf(&b, " $/Mop=%.3f be=%.0fs", 1e6*s.DollarPerOp(base), s.BreakevenInterval(base))
	if s.Limited {
		fmt.Fprintf(&b, " limit=%d", s.Limit)
		if shed := s.ShedByScan + s.ShedByLow + s.ShedByNormal + s.ShedByHigh; shed > 0 {
			fmt.Fprintf(&b, " shed[s/l/n/h]=%d/%d/%d/%d",
				s.ShedByScan, s.ShedByLow, s.ShedByNormal, s.ShedByHigh)
		}
	}
	if s.Mirrored {
		fmt.Fprintf(&b, " repair=%d quar=%d", s.ReadRepairs+s.ScrubRepairs, s.Quarantined)
	}
	if s.Replicated {
		fmt.Fprintf(&b, " ship=%dB lag=%dB", s.ShipBytes, s.ReplLagBytes)
		if s.Promotions > 0 {
			fmt.Fprintf(&b, " failovers=%d", s.Promotions)
		}
	}
	if s.Health != "" && s.Health != "healthy" {
		fmt.Fprintf(&b, " health=%s", s.Health)
	}
	return b.String()
}

// Table renders all registered stores' snapshots as an aligned text table
// with measured model inputs and live costs (kvbench -obs output).
func (r *Registry) Table(base core.Costs) string {
	snaps := r.Snapshots()
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %9s %7s %6s %8s %8s %8s %8s %7s %10s %8s %6s %10s %9s\n",
		"store", "ops", "errs", "shed", "p50", "p95", "p99", "F", "R",
		"ROPS", "IOPS", "util", "$/Mop", "breakeven")
	for _, s := range snaps {
		fmt.Fprintf(&b, "%-9s %9d %7d %6d %8s %8s %8s %8.4f %7.1f %10.0f %8.0f %5.0f%% %10.4f %8.1fs",
			s.Store, s.Ops, s.Errors, s.Shed,
			s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
			s.F, s.R, s.ROPS, s.IOPS, 100*s.Utilization,
			1e6*s.DollarPerOp(base), s.BreakevenInterval(base))
		if s.Limited {
			fmt.Fprintf(&b, "  [limiter: limit=%d adj=%d shed scan=%d low=%d normal=%d high=%d retry-after=%dus]",
				s.Limit, s.LimitChanges,
				s.ShedByScan, s.ShedByLow, s.ShedByNormal, s.ShedByHigh, s.RetryAfterMicros)
		}
		if s.Mirrored {
			// The mirrored $/Mop and breakeven above already include the
			// doubled SS rent (LiveCosts applies WithReplication(2)).
			fmt.Fprintf(&b, "  [mirror x2: repairs=%d (read=%d scrub=%d) quarantined=%d scrub-reads=%d passes=%d]",
				s.ReadRepairs+s.ScrubRepairs, s.ReadRepairs, s.ScrubRepairs,
				s.Quarantined, s.ScrubReads, s.ScrubPasses)
		}
		if s.Replicated {
			// The replicated $/Mop and breakeven above already include the
			// standby's extra flash leg (LiveCosts adds a replication leg).
			fmt.Fprintf(&b, "  [standby: shipped=%d/%dB resends=%d lag=%dB failovers=%d fenced=%d]",
				s.ShipBatches, s.ShipBytes, s.ShipResends,
				s.ReplLagBytes, s.Promotions, s.FencedWrites)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Narrate renders one narrator line per store with recorded ops, sorted by
// store name — compact enough for periodic emission from a harness.
func (r *Registry) Narrate(base core.Costs) []string {
	snaps := r.Snapshots()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Store < snaps[j].Store })
	var out []string
	for _, s := range snaps {
		if s.Ops == 0 {
			continue
		}
		out = append(out, s.Line(base))
	}
	return out
}
