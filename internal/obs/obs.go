// Package obs is the repo's observability layer: lock-cheap per-operation
// tracing spans, atomic sliding-window histograms, and a registry that folds
// per-store telemetry into CostSnapshots the internal/core cost model can
// consume directly. The point (following the paper's Eq. 1-8) is that hit
// rates, R, ROPS, and IOPS are *measured* here, not assumed: a live
// five-minute-rule breakeven is recomputed from what the stores actually did.
//
// The disabled path is free: a nil *Tracer hands out zero-value Spans whose
// methods are no-ops, without allocating or reading the clock, so stores can
// thread spans unconditionally.
package obs

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"costperf/internal/metrics"
)

// Op classifies a traced operation.
type Op uint8

const (
	OpGet Op = iota
	OpPut
	OpDelete
	OpScan
	OpCommit
	OpFlush
	opCount
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpCommit:
		return "commit"
	case OpFlush:
		return "flush"
	}
	return "op?"
}

// Outcome classifies how a traced operation ended.
type Outcome uint8

const (
	OutcomeOK Outcome = iota
	OutcomeError
	OutcomeShed     // rejected by admission control / circuit breaker
	OutcomeTimeout  // deadline exceeded
	OutcomeCanceled // caller canceled
)

// opMeter accumulates per-op-type counters. All fields are atomics so spans
// from any number of goroutines can end concurrently.
type opMeter struct {
	count    atomic.Int64
	errs     atomic.Int64
	shed     atomic.Int64
	timeouts atomic.Int64
	canceled atomic.Int64
	hits     atomic.Int64 // ops served without touching secondary storage
	misses   atomic.Int64 // ops that synchronously touched secondary storage
	bytesR   atomic.Int64
	bytesW   atomic.Int64
	retries  atomic.Int64
}

// ioMeter accumulates device-level accounting delivered via ObserveIO.
type ioMeter struct {
	reads     atomic.Int64
	writes    atomic.Int64
	failed    atomic.Int64 // failed physical attempts (retried or not)
	bytesR    atomic.Int64
	bytesW    atomic.Int64
	busyNanos atomic.Int64
}

// windowSlotDur is the slot width of each tracer's recent-latency window;
// with windowSlots slots the narrator sees roughly the last 4 seconds.
const windowSlotDur = 500 * time.Millisecond

// Tracer collects spans and device I/O accounting for one store. All hot
// paths are atomic-only; the mutex guards only the attachment lists, which
// change at setup time.
type Tracer struct {
	name  string
	start time.Time

	ops [opCount]opMeter

	lat     Histogram // all ended spans, nanoseconds
	hitLat  Histogram // spans that stayed in memory
	missLat Histogram // spans that synchronously touched the device
	recent  *Window   // sliding window over all spans, for narrator lines

	io ioMeter

	mu       sync.Mutex
	ioStats  []*metrics.IOStats
	retries  []*metrics.RetryStats
	healths  []*metrics.Health
	mirrors  []*metrics.MirrorStats
	repls    []*metrics.ReplStats
	limiters []*metrics.LimiterStats
}

// NewTracer returns a standalone tracer. Prefer Registry.Tracer so snapshots
// aggregate; a nil *Tracer is itself valid and means "tracing off".
func NewTracer(name string) *Tracer {
	return &Tracer{name: name, start: time.Now(), recent: NewWindow(windowSlotDur)}
}

// Name returns the store name this tracer was registered under.
func (t *Tracer) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Span is a value-typed in-flight operation record. It is created by
// Tracer.Start and finished by exactly one End* call. The zero Span (from a
// nil tracer) is valid and every method on it is a no-op, so instrumented
// code needs no enabled-checks.
type Span struct {
	tr      *Tracer
	op      Op
	t0      time.Time
	miss    bool
	bytesR  int64
	bytesW  int64
	retries int64
}

// Start begins a span for op. On a nil tracer it returns the zero Span and
// does not read the clock.
func (t *Tracer) Start(op Op) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, op: op, t0: time.Now()}
}

// Enabled reports whether the span is actually recording.
func (s *Span) Enabled() bool { return s.tr != nil }

// Miss marks the operation as having synchronously touched secondary
// storage (a cache/buffer-pool miss, a forced flush, a log-structured
// page load). Unmarked spans count as hits: pure main-memory operations.
func (s *Span) Miss() { s.miss = true }

// Bytes attributes payload bytes moved on behalf of this operation.
func (s *Span) Bytes(read, written int) {
	s.bytesR += int64(read)
	s.bytesW += int64(written)
}

// Retries records device-level retry attempts absorbed by this operation.
func (s *Span) Retries(n int) { s.retries += int64(n) }

// End finishes the span, classifying the outcome from err: nil is OK,
// context deadline/cancel map to timeout/canceled, anything else is an
// error. Safe on the zero Span.
func (s *Span) End(err error) {
	switch {
	case err == nil:
		s.EndOutcome(OutcomeOK)
	case errors.Is(err, context.DeadlineExceeded):
		s.EndOutcome(OutcomeTimeout)
	case errors.Is(err, context.Canceled):
		s.EndOutcome(OutcomeCanceled)
	default:
		s.EndOutcome(OutcomeError)
	}
}

// EndOutcome finishes the span with an explicit outcome (the engine uses
// this to tag shed and circuit-rejected operations).
func (s *Span) EndOutcome(o Outcome) {
	t := s.tr
	if t == nil {
		return
	}
	s.tr = nil // guard against double End
	now := time.Now()
	lat := now.Sub(s.t0).Nanoseconds()

	m := &t.ops[s.op]
	m.count.Add(1)
	switch o {
	case OutcomeError:
		m.errs.Add(1)
	case OutcomeShed:
		m.shed.Add(1)
	case OutcomeTimeout:
		m.timeouts.Add(1)
	case OutcomeCanceled:
		m.canceled.Add(1)
	}
	if s.bytesR != 0 || s.bytesW != 0 {
		m.bytesR.Add(s.bytesR)
		m.bytesW.Add(s.bytesW)
	}
	if s.retries != 0 {
		m.retries.Add(s.retries)
	}

	t.lat.Observe(lat)
	t.recent.Observe(lat, now)
	// Hit/miss (and the split latency histograms feeding measured R and
	// ROPS) only count operations that ran to completion: shed or
	// timed-out ops never learned whether they would have hit.
	if o == OutcomeOK || o == OutcomeError {
		if s.miss {
			m.misses.Add(1)
			t.missLat.Observe(lat)
		} else {
			m.hits.Add(1)
			t.hitLat.Observe(lat)
		}
	}
}

// Reset zeroes every counter and restarts the tracer's clock. It is meant
// for phase boundaries (e.g. discarding a benchmark's load phase) while the
// store is quiescent; it is not atomic with respect to in-flight spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.ops {
		m := &t.ops[i]
		m.count.Store(0)
		m.errs.Store(0)
		m.shed.Store(0)
		m.timeouts.Store(0)
		m.canceled.Store(0)
		m.hits.Store(0)
		m.misses.Store(0)
		m.bytesR.Store(0)
		m.bytesW.Store(0)
		m.retries.Store(0)
	}
	t.lat.reset()
	t.hitLat.reset()
	t.missLat.reset()
	for i := range t.recent.slots {
		t.recent.slots[i].epoch.Store(0)
		t.recent.slots[i].h.reset()
	}
	t.io.reads.Store(0)
	t.io.writes.Store(0)
	t.io.failed.Store(0)
	t.io.bytesR.Store(0)
	t.io.bytesW.Store(0)
	t.io.busyNanos.Store(0)
	t.start = time.Now()
}

// ObserveIO receives one physical device transfer. It implements the
// ssd.IOObserver interface structurally (obs does not import ssd), so a
// tracer can be handed straight to Device.SetObserver. failed attempts are
// counted (and their busy time accrued) but move no payload bytes. Nil-safe.
func (t *Tracer) ObserveIO(write bool, bytes int, busySec float64, failed bool) {
	if t == nil {
		return
	}
	if failed {
		t.io.failed.Add(1)
	} else if write {
		t.io.writes.Add(1)
		t.io.bytesW.Add(int64(bytes))
	} else {
		t.io.reads.Add(1)
		t.io.bytesR.Add(int64(bytes))
	}
	t.io.busyNanos.Add(int64(busySec * 1e9))
}

// FoldIOStats attaches an existing ad-hoc counter block; its values are
// folded into snapshots (used when a store is not wired to a device
// observer, e.g. pure in-memory stores tracking cache counters).
func (t *Tracer) FoldIOStats(s *metrics.IOStats) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	t.ioStats = append(t.ioStats, s)
	t.mu.Unlock()
}

// FoldRetries attaches a RetryStats block to fold into snapshots.
func (t *Tracer) FoldRetries(r *metrics.RetryStats) {
	if t == nil || r == nil {
		return
	}
	t.mu.Lock()
	t.retries = append(t.retries, r)
	t.mu.Unlock()
}

// FoldHealth attaches a Health gauge; snapshots report the worst state.
func (t *Tracer) FoldHealth(h *metrics.Health) {
	if t == nil || h == nil {
		return
	}
	t.mu.Lock()
	t.healths = append(t.healths, h)
	t.mu.Unlock()
}

// FoldMirror attaches a mirrored device's self-healing counters (ssd.Mirror
// read-repair, scrub, and quarantine activity) to fold into snapshots.
func (t *Tracer) FoldMirror(m *metrics.MirrorStats) {
	if t == nil || m == nil {
		return
	}
	t.mu.Lock()
	t.mirrors = append(t.mirrors, m)
	t.mu.Unlock()
}

// FoldRepl attaches a log-shipping replication counter block (shared by an
// internal/repl shipper/standby pair) to fold into snapshots. A snapshot
// with a folded ReplStats reports Replicated, which charges the standby's
// secondary-storage rent in the live cost model.
func (t *Tracer) FoldRepl(r *metrics.ReplStats) {
	if t == nil || r == nil {
		return
	}
	t.mu.Lock()
	t.repls = append(t.repls, r)
	t.mu.Unlock()
}

// FoldLimiter attaches an admission limiter's meters (internal/overload)
// to fold into snapshots: the live learned concurrency limit, gradient
// adjustment counts, and the per-priority-class shed breakdown that makes
// a brownout episode's shape visible in cost tables.
func (t *Tracer) FoldLimiter(l *metrics.LimiterStats) {
	if t == nil || l == nil {
		return
	}
	t.mu.Lock()
	t.limiters = append(t.limiters, l)
	t.mu.Unlock()
}

// RecentSnapshot summarizes only the sliding latency window (roughly the
// last few seconds) — the narrator's view of "now".
func (t *Tracer) RecentSnapshot() HistSnapshot {
	if t == nil {
		return HistSnapshot{}
	}
	return t.recent.Merged(time.Now()).Snapshot()
}
