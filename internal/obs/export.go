package obs

import (
	"time"

	"costperf/internal/core"
)

// SnapshotExport is the JSON-stable, comparable slice of a CostSnapshot
// priced against a base cost model. Every BENCH_*.json kvbench emits
// embeds this block (matrix cells one each, wire/shard one per run), so
// cmd/benchdiff can compare $/op and breakeven across snapshots from
// different modes and PRs without schema archaeology.
type SnapshotExport struct {
	Store    string `json:"store"`
	Ops      int64  `json:"ops"`
	Errors   int64  `json:"errors"`
	Shed     int64  `json:"shed"`
	Timeouts int64  `json:"timeouts"`

	// Measured model inputs (paper Eq. 1-8): cache-miss fraction F,
	// SS/MM latency ratio R, main-memory op rate ROPS, device IOPS.
	F    float64 `json:"f"`
	R    float64 `json:"r,omitempty"`
	ROPS float64 `json:"rops,omitempty"`
	IOPS float64 `json:"iops,omitempty"`

	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`

	DeviceReads  int64 `json:"device_reads"`
	DeviceWrites int64 `json:"device_writes"`

	// Redundancy configuration folded into the live model: mirrored
	// stores pay two flash legs, replicated ones a standby's copy.
	Mirrored   bool `json:"mirrored,omitempty"`
	Replicated bool `json:"replicated,omitempty"`

	// Adaptive-admission accounting (internal/overload), absent for
	// stores without a folded limiter. Limit is the live concurrency
	// limit; the shed breakdown is per priority class, so a diff can
	// tell a healthy brownout (scans first) from an indiscriminate one.
	Limited      bool  `json:"limited,omitempty"`
	Limit        int64 `json:"limit,omitempty"`
	LimitChanges int64 `json:"limit_changes,omitempty"`
	ShedScan     int64 `json:"shed_scan,omitempty"`
	ShedLow      int64 `json:"shed_low,omitempty"`
	ShedNormal   int64 `json:"shed_normal,omitempty"`
	ShedHigh     int64 `json:"shed_high,omitempty"`

	// DollarPerMop is the live execution cost per million operations and
	// BreakevenSec the live five-minute-rule breakeven, both from the
	// measured inputs above substituted into the base model.
	DollarPerMop float64 `json:"dollar_per_mop"`
	BreakevenSec float64 `json:"breakeven_s"`
}

// Export prices the snapshot against base and returns its JSON-stable form.
func (s CostSnapshot) Export(base core.Costs) SnapshotExport {
	return SnapshotExport{
		Store:    s.Store,
		Ops:      s.Ops,
		Errors:   s.Errors,
		Shed:     s.Shed,
		Timeouts: s.Timeouts,

		F:    s.F,
		R:    s.R,
		ROPS: s.ROPS,
		IOPS: s.IOPS,

		P50Micros: micros(s.P50),
		P95Micros: micros(s.P95),
		P99Micros: micros(s.P99),

		DeviceReads:  s.DeviceReads,
		DeviceWrites: s.DeviceWrites,

		Mirrored:   s.Mirrored,
		Replicated: s.Replicated,

		Limited:      s.Limited,
		Limit:        s.Limit,
		LimitChanges: s.LimitChanges,
		ShedScan:     s.ShedByScan,
		ShedLow:      s.ShedByLow,
		ShedNormal:   s.ShedByNormal,
		ShedHigh:     s.ShedByHigh,

		DollarPerMop: 1e6 * s.DollarPerOp(base),
		BreakevenSec: s.BreakevenInterval(base),
	}
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
