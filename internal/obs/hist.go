package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets. Bucket i holds
// values whose bit length is i: bucket 0 is exactly zero, bucket 1 is [1,2),
// bucket 2 is [2,4), and so on. 63 buckets cover every positive int64.
const histBuckets = 64

// Histogram is a lock-free log-scaled histogram. Observe, Merge, and the
// read-side accessors are all safe for concurrent use; every mutation is a
// single atomic add, so recording a sample never takes a lock and never
// allocates — the property the per-operation span path depends on.
//
// Quantiles are approximate (bucket-midpoint resolution, under 50% relative
// error by construction) but strictly monotone in q, so p50 <= p95 <= p99
// always holds on any fixed state.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketValue returns the representative (midpoint) value of bucket i.
func bucketValue(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i == 1:
		return 1
	default:
		return 3 << (i - 2) // midpoint of [2^(i-1), 2^i)
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Merge adds src's samples into h. Both histograms may be concurrently
// observed and merged: every transfer is an atomic add, so no sample is
// lost or double-counted by the merge itself (counts are conserved).
func (h *Histogram) Merge(src *Histogram) {
	if src == nil {
		return
	}
	for i := range src.counts {
		if n := src.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
}

// reset zeroes the histogram. Not atomic with respect to concurrent
// observers: a sample racing a reset may be partially dropped. Only the
// sliding window uses it, where slot recycling tolerates that.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the exact mean of all samples (the sum is tracked exactly,
// not reconstructed from buckets), or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the approximate q-quantile (0 < q <= 1).
func (h *Histogram) Quantile(q float64) int64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var counts [histBuckets]int64
	total := int64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	for i, n := range counts {
		cum += n
		if cum >= target {
			return bucketValue(i)
		}
	}
	return bucketValue(histBuckets - 1)
}

// HistSnapshot is a point-in-time histogram summary.
type HistSnapshot struct {
	Count         int64
	Mean          float64
	P50, P95, P99 int64
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// windowSlots is the number of time slots a sliding window keeps.
const windowSlots = 8

// Window is an atomic sliding-window histogram: samples land in the slot of
// their arrival time, slots are recycled lazily as time advances, and
// Merged summarizes only the slots still inside the window. It gives the
// chaos-harness narrator a "recent behaviour" view that an
// all-of-history histogram cannot (a latency spike five minutes ago should
// not dominate the current p99).
type Window struct {
	slotNanos int64
	slots     [windowSlots]windowSlot
}

type windowSlot struct {
	epoch atomic.Int64 // time bucket this slot currently holds (0 = never used)
	h     Histogram
}

// NewWindow returns a sliding window of windowSlots slots of the given
// duration each (minimum 1ms).
func NewWindow(slot time.Duration) *Window {
	if slot < time.Millisecond {
		slot = time.Millisecond
	}
	return &Window{slotNanos: int64(slot)}
}

func (w *Window) slotFor(now int64) (*windowSlot, int64) {
	e := now/w.slotNanos + 1 // +1 keeps epoch 0 meaning "never used"
	return &w.slots[e%windowSlots], e
}

// Observe records one sample at time now.
func (w *Window) Observe(v int64, now time.Time) {
	s, e := w.slotFor(now.UnixNano())
	if old := s.epoch.Load(); old != e {
		// The slot holds an expired time bucket: the first arrival of the
		// new bucket recycles it. A concurrent sample racing the reset may
		// be dropped; the window trades that for lock-freedom.
		if s.epoch.CompareAndSwap(old, e) {
			s.h.reset()
		}
	}
	s.h.Observe(v)
}

// Merged merges every slot still inside the window (relative to now) into a
// fresh histogram.
func (w *Window) Merged(now time.Time) *Histogram {
	_, cur := w.slotFor(now.UnixNano())
	out := &Histogram{}
	for i := range w.slots {
		s := &w.slots[i]
		if e := s.epoch.Load(); e > 0 && cur-e < windowSlots {
			out.Merge(&s.h)
		}
	}
	return out
}
