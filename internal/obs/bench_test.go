package obs_test

import (
	"context"
	"fmt"
	"testing"

	"costperf/internal/engine"
	"costperf/internal/masstree"
	"costperf/internal/obs"
)

// TestDisabledSpanPathAllocFree pins the core overhead contract: with no
// tracer installed (nil *Tracer), starting, annotating, and ending a span
// allocates nothing — instrumented hot paths cost a nil check.
func TestDisabledSpanPathAllocFree(t *testing.T) {
	var tr *obs.Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(obs.OpGet)
		sp.Miss()
		sp.Bytes(64, 0)
		sp.End(nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per op, want 0", allocs)
	}
}

// TestEnabledSpanPathAllocFree keeps the enabled path allocation-free too:
// spans are value types and every counter update is an atomic add.
func TestEnabledSpanPathAllocFree(t *testing.T) {
	tr := obs.NewTracer("bench")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(obs.OpGet)
		sp.End(nil)
	})
	if allocs != 0 {
		t.Fatalf("enabled span path allocates %v per op, want 0", allocs)
	}
}

func newEngineForBench(b *testing.B, tr *obs.Tracer) *engine.Engine {
	b.Helper()
	mt := masstree.New(nil)
	mt.SetObs(tr)
	for i := 0; i < 1024; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		mt.Put(k, []byte("value-payload-0123456789"))
	}
	e, err := engine.New(engine.Config{Store: engine.WrapMassTree(mt), Obs: tr})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkEngineGet measures the front-end read path with tracing off
// (nil tracer) and on (engine + store spans, histograms, sliding window),
// so the observability overhead is visible in benchmark diffs.
func BenchmarkEngineGet(b *testing.B) {
	ctx := context.Background()
	key := []byte("key-000512")
	for _, mode := range []struct {
		name string
		tr   *obs.Tracer
	}{
		{"obs-off", nil},
		{"obs-on", obs.NewTracer("bench")},
	} {
		b.Run(mode.name, func(b *testing.B) {
			e := newEngineForBench(b, mode.tr)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := e.Get(ctx, key); err != nil || !ok {
					b.Fatalf("get: ok=%v err=%v", ok, err)
				}
			}
		})
	}
}
