package obs_test

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"costperf/internal/core"
	"costperf/internal/fault"
	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/ssd"
)

// --- Histogram properties -------------------------------------------------

// TestHistogramQuantileMonotone drives seeded random sample sets and checks
// the quantile invariants the cost tables rely on: p50 <= p95 <= p99,
// quantiles bracket the sample range (within bucket resolution), and the
// exact mean matches the tracked sum.
func TestHistogramQuantileMonotone(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var h obs.Histogram
		n := 1 + rng.Intn(5000)
		var sum, max int64
		min := int64(math.MaxInt64)
		for i := 0; i < n; i++ {
			// Mix of magnitudes: sub-microsecond to tens of milliseconds.
			v := rng.Int63n(1 << uint(10+rng.Intn(25)))
			h.Observe(v)
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if h.Count() != int64(n) {
			t.Fatalf("seed %d: count = %d, want %d", seed, h.Count(), n)
		}
		if h.Sum() != sum {
			t.Fatalf("seed %d: sum = %d, want %d", seed, h.Sum(), sum)
		}
		if got := h.Mean(); math.Abs(got-float64(sum)/float64(n)) > 1e-9 {
			t.Fatalf("seed %d: mean = %v, want %v", seed, got, float64(sum)/float64(n))
		}
		p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
		if p50 > p95 || p95 > p99 {
			t.Fatalf("seed %d: quantiles not monotone: p50=%d p95=%d p99=%d", seed, p50, p95, p99)
		}
		// Log-bucket resolution: a quantile may be off by at most 2x in
		// either direction from the true sample range.
		if p99 > 2*max || (min > 0 && p50 < min/2) {
			t.Fatalf("seed %d: quantiles outside range: p50=%d p99=%d min=%d max=%d", seed, p50, p99, min, max)
		}
		// Monotone in q across a fine sweep.
		prev := int64(0)
		for q := 0.01; q <= 1.0; q += 0.01 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("seed %d: Quantile(%v)=%d < Quantile(prev)=%d", seed, q, v, prev)
			}
			prev = v
		}
	}
}

// TestHistogramConcurrentMergeConservesCounts runs concurrent observers and
// concurrent merges and checks that no sample is lost or duplicated: the
// destination ends up with exactly the union of all sources.
func TestHistogramConcurrentMergeConservesCounts(t *testing.T) {
	const (
		sources = 8
		samples = 4000
	)
	srcs := make([]*obs.Histogram, sources)
	for i := range srcs {
		srcs[i] = &obs.Histogram{}
	}
	var dst obs.Histogram
	var wg sync.WaitGroup
	for i := range srcs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for j := 0; j < samples; j++ {
				srcs[i].Observe(rng.Int63n(1 << 30))
			}
		}(i)
	}
	wg.Wait()
	// Merge all sources concurrently into one destination.
	for i := range srcs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dst.Merge(srcs[i])
		}(i)
	}
	wg.Wait()
	var wantCount, wantSum int64
	for _, s := range srcs {
		wantCount += s.Count()
		wantSum += s.Sum()
	}
	if dst.Count() != wantCount || dst.Sum() != wantSum {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d", dst.Count(), dst.Sum(), wantCount, wantSum)
	}
	if wantCount != sources*samples {
		t.Fatalf("source count = %d, want %d", wantCount, sources*samples)
	}
}

// TestWindowExpiresOldSlots checks the sliding window forgets samples older
// than its span and keeps recent ones.
func TestWindowExpiresOldSlots(t *testing.T) {
	w := obs.NewWindow(100 * time.Millisecond)
	t0 := time.Unix(1000, 0)
	w.Observe(5, t0)
	w.Observe(7, t0.Add(50*time.Millisecond))
	if got := w.Merged(t0.Add(60 * time.Millisecond)).Count(); got != 2 {
		t.Fatalf("recent count = %d, want 2", got)
	}
	// 10 slots x 100ms later the old samples must be gone.
	late := t0.Add(2 * time.Second)
	w.Observe(9, late)
	m := w.Merged(late)
	if m.Count() != 1 || m.Sum() != 9 {
		t.Fatalf("after expiry count/sum = %d/%d, want 1/9", m.Count(), m.Sum())
	}
}

// --- Span accounting vs device totals -------------------------------------

// TestObserverMatchesDeviceTotals wires a tracer as the device's observer,
// drives a seeded mix of reads, writes, and injected failures, and checks
// the tracer's device accounting agrees exactly with ssd.Device's own
// stats — including the retried-I/O split into logical vs failed attempts.
func TestObserverMatchesDeviceTotals(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		dev := ssd.New(ssd.SamsungSSD)
		tr := obs.NewTracer("dev")
		dev.SetObserver(tr)
		inj := fault.NewInjector(seed)
		dev.SetFaultInjector(inj)
		inj.SetReadErrorRate(0.2)
		inj.SetWriteErrorRate(0.2)

		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, 512)
		for i := 0; i < 400; i++ {
			off := int64(rng.Intn(64)) * 512
			if rng.Intn(2) == 0 {
				_ = dev.WriteAt(off, buf, nil)
			} else {
				_, _ = dev.ReadAt(0, 512, nil) // offset 0 is always written below
			}
		}
		dev.SetFaultInjector(nil)
		if err := dev.WriteAt(0, buf, nil); err != nil {
			t.Fatal(err)
		}

		snap := tr.Snapshot()
		st := dev.Stats()
		if snap.DeviceReads != st.Reads.Value() || snap.DeviceWrites != st.Writes.Value() {
			t.Fatalf("seed %d: observer reads/writes = %d/%d, device %d/%d",
				seed, snap.DeviceReads, snap.DeviceWrites, st.Reads.Value(), st.Writes.Value())
		}
		wantFailed := st.FailedReads.Value() + st.FailedWrites.Value()
		if snap.FailedIOs != wantFailed {
			t.Fatalf("seed %d: observer failed = %d, device %d", seed, snap.FailedIOs, wantFailed)
		}
		if wantFailed == 0 {
			t.Fatalf("seed %d: expected some injected failures", seed)
		}
		if snap.BytesRead != st.BytesRead.Value() || snap.BytesWritten != st.BytesWritten.Value() {
			t.Fatalf("seed %d: observer bytes = %d/%d, device %d/%d",
				seed, snap.BytesRead, snap.BytesWritten, st.BytesRead.Value(), st.BytesWritten.Value())
		}
		if got, want := snap.DeviceBusy.Seconds(), dev.BusySeconds(); math.Abs(got-want) > 1e-6 {
			t.Fatalf("seed %d: observer busy = %v, device %v", seed, got, want)
		}
	}
}

// TestRetriedIOCountsPhysicalPerAttemptLogicalOnce is the regression test
// for the retry double-counting fix: a read that succeeds on its third
// physical attempt must charge two failed attempts and exactly one logical
// read, with payload bytes counted once.
func TestRetriedIOCountsPhysicalPerAttemptLogicalOnce(t *testing.T) {
	dev := ssd.New(ssd.SamsungSSD)
	if err := dev.WriteAt(0, make([]byte, 4096), nil); err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(1)
	dev.SetFaultInjector(inj)
	inj.FailNextReads(2, fault.ClassTransient)

	st := dev.Stats()
	writes0 := st.Writes.Value()
	var policy fault.RetryPolicy
	var rs metrics.RetryStats
	err := policy.Do(&rs, func() error {
		_, rerr := dev.ReadAt(0, 4096, nil)
		return rerr
	})
	if err != nil {
		t.Fatalf("retried read failed: %v", err)
	}
	if got := st.Reads.Value(); got != 1 {
		t.Fatalf("logical reads = %d, want 1 (retries must not inflate logical ops)", got)
	}
	if got := st.FailedReads.Value(); got != 2 {
		t.Fatalf("failed read attempts = %d, want 2", got)
	}
	if got := st.BytesRead.Value(); got != 4096 {
		t.Fatalf("bytes read = %d, want 4096 (payload counted once)", got)
	}
	if got := st.Writes.Value(); got != writes0 {
		t.Fatalf("writes moved from %d to %d during a read retry", writes0, got)
	}
	// All three attempts occupied the device.
	want := 3.0 / ssd.SamsungSSD.MaxIOPS
	if got := dev.BusySeconds() - 1.0/ssd.SamsungSSD.MaxIOPS; math.Abs(got-want) > 1e-9 {
		t.Fatalf("busy for retried read = %v, want %v", got, want)
	}
	if rs.Attempts.Value() != 3 || rs.Retries.Value() != 2 {
		t.Fatalf("retry stats = %s, want attempts=3 retries=2", rs.String())
	}
}

// --- Spans ----------------------------------------------------------------

// TestSpanOutcomesAndHitMiss drives a tracer through every outcome class
// and checks the snapshot's accounting identities.
func TestSpanOutcomesAndHitMiss(t *testing.T) {
	tr := obs.NewTracer("x")
	for i := 0; i < 10; i++ {
		sp := tr.Start(obs.OpGet)
		if i%2 == 0 {
			sp.Miss()
		}
		sp.End(nil)
	}
	sp := tr.Start(obs.OpPut)
	sp.End(errors.New("boom"))
	sp = tr.Start(obs.OpGet)
	sp.EndOutcome(obs.OutcomeShed)
	sp = tr.Start(obs.OpScan)
	sp.EndOutcome(obs.OutcomeTimeout)

	s := tr.Snapshot()
	if s.Ops != 13 {
		t.Fatalf("ops = %d, want 13", s.Ops)
	}
	if s.Errors != 1 || s.Shed != 1 || s.Timeouts != 1 {
		t.Fatalf("errors/shed/timeouts = %d/%d/%d, want 1/1/1", s.Errors, s.Shed, s.Timeouts)
	}
	// Shed and timed-out spans don't count toward hit/miss: 10 gets + 1
	// errored put completed.
	if s.Hits+s.Misses != 11 {
		t.Fatalf("hits+misses = %d, want 11", s.Hits+s.Misses)
	}
	if s.Misses != 5 {
		t.Fatalf("misses = %d, want 5", s.Misses)
	}
	if want := 5.0 / 11.0; math.Abs(s.F-want) > 1e-9 {
		t.Fatalf("F = %v, want %v", s.F, want)
	}
	if s.ByOp["get"] != 11 || s.ByOp["put"] != 1 || s.ByOp["scan"] != 1 {
		t.Fatalf("ByOp = %v", s.ByOp)
	}
}

// TestNilTracerIsSafe exercises the whole disabled path.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *obs.Tracer
	sp := tr.Start(obs.OpGet)
	if sp.Enabled() {
		t.Fatal("nil tracer span reports enabled")
	}
	sp.Miss()
	sp.Bytes(10, 20)
	sp.Retries(1)
	sp.End(nil)
	sp.EndOutcome(obs.OutcomeShed) // double-end must also be safe
	tr.ObserveIO(true, 1, 1e-6, false)
	tr.FoldIOStats(nil)
	if s := tr.Snapshot(); s.Ops != 0 {
		t.Fatalf("nil tracer snapshot ops = %d", s.Ops)
	}
}

// --- CostSnapshot vs core closed forms ------------------------------------

// TestCostSnapshotMatchesCoreClosedForms cross-checks the live-model
// arithmetic against internal/core's closed-form expressions for a sweep of
// measured (F, R, ROPS) triples.
func TestCostSnapshotMatchesCoreClosedForms(t *testing.T) {
	base := core.PaperCosts()
	for _, tc := range []struct {
		f, r, rops float64
	}{
		{0, 1, 4e6},
		{0.01, 5.8, 4e6},
		{0.1, 3.0, 2e6},
		{0.5, 10.0, 1e6},
		{1.0, 2.0, 5e5},
	} {
		s := obs.CostSnapshot{F: tc.f, R: tc.r, ROPS: tc.rops}
		live := s.LiveCosts(base)
		if live.ROPS != tc.rops || live.R != tc.r {
			t.Fatalf("LiveCosts did not substitute measured inputs: %+v", live)
		}
		// $/op: (1-F) * P/ROPS + F * (I/IOPS + R*P/ROPS), per Section 3.2.
		mm := base.Processor / tc.rops
		ss := base.IOPSCost/base.IOPS + tc.r*base.Processor/tc.rops
		want := (1-tc.f)*mm + tc.f*ss
		if got := s.DollarPerOp(base); math.Abs(got-want)/want > 1e-12 {
			t.Fatalf("F=%v R=%v: DollarPerOp = %v, want %v", tc.f, tc.r, got, want)
		}
		if got, want := s.DollarPerOp(base), (1-tc.f)*live.MMExecCostPerOp()+tc.f*live.SSExecCostPerOp(); math.Abs(got-want) > 1e-18 {
			t.Fatalf("DollarPerOp disagrees with core methods: %v vs %v", got, want)
		}
		// Live breakeven: (I/IOPS + (R-1)*P/ROPS) / ($M * Ps), Eq. 7 shape.
		wantBE := (base.IOPSCost/base.IOPS + (tc.r-1)*base.Processor/tc.rops) / (base.DRAMPerByte * base.PageSize)
		if got := s.BreakevenInterval(base); math.Abs(got-wantBE)/wantBE > 1e-12 {
			t.Fatalf("F=%v R=%v: breakeven = %v, want %v", tc.f, tc.r, got, wantBE)
		}
		if got, want := s.BreakevenInterval(base), live.BreakevenInterval(); got != want {
			t.Fatalf("breakeven disagrees with core method: %v vs %v", got, want)
		}
	}
}

// TestSnapshotDerivedModelInputs checks that a tracer driven with known
// hit/miss latencies reports R and PF consistent with core.MixedThroughput.
func TestSnapshotDerivedModelInputs(t *testing.T) {
	tr := obs.NewTracer("drive")
	// Synthesize spans by sleeping is flaky; instead verify the derived
	// identities on whatever latencies real spans produce.
	for i := 0; i < 200; i++ {
		sp := tr.Start(obs.OpGet)
		if i%4 == 0 {
			sp.Miss()
			for j := 0; j < 2000; j++ {
				_ = j * j // burn a little time so misses are slower
			}
		}
		sp.End(nil)
	}
	s := tr.Snapshot()
	if s.MeanHit <= 0 {
		t.Fatal("no hit latency measured")
	}
	if got, want := s.ROPS, 1e9/float64(s.MeanHit.Nanoseconds()); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("ROPS = %v, want 1/MeanHit = %v", got, want)
	}
	if s.R < 1 {
		t.Fatalf("R = %v, must be clamped >= 1", s.R)
	}
	r := s.R
	if got, want := s.PF, core.MixedThroughput(s.ROPS, s.F, r); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("PF = %v, want MixedThroughput = %v", got, want)
	}
	if s.PF > s.ROPS+1e-9 {
		t.Fatalf("PF = %v exceeds P0 = %v", s.PF, s.ROPS)
	}
}

// TestRegistryFoldsLegacyCounters checks IOStats/RetryStats attachments
// surface in snapshots when no device observer is wired.
func TestRegistryFoldsLegacyCounters(t *testing.T) {
	reg := obs.NewRegistry()
	tr := reg.Tracer("legacy")
	if got := reg.Tracer("legacy"); got != tr {
		t.Fatal("Tracer not idempotent by name")
	}
	var io metrics.IOStats
	io.Reads.Add(7)
	io.Writes.Add(3)
	io.FailedReads.Add(2)
	io.BytesRead.Add(4096)
	var rs metrics.RetryStats
	rs.Attempts.Add(9)
	rs.Retries.Add(2)
	tr.FoldIOStats(&io)
	tr.FoldRetries(&rs)

	snaps := reg.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snaps))
	}
	s := snaps[0]
	if s.DeviceReads != 7 || s.DeviceWrites != 3 || s.FailedIOs != 2 || s.BytesRead != 4096 {
		t.Fatalf("folded io = %+v", s)
	}
	if s.RetryAttempts != 9 || s.Retries != 2 {
		t.Fatalf("folded retries = %+v", s)
	}
	if s.Health != "healthy" {
		t.Fatalf("health = %q", s.Health)
	}
}

// TestRegistryFoldsReplStats pins the warm-standby fold: ship volume, lag,
// and failover counters surface in the snapshot, and the live cost model
// charges the standby's extra flash leg (Eq. 4-6 with one more replica).
func TestRegistryFoldsReplStats(t *testing.T) {
	reg := obs.NewRegistry()
	tr := reg.Tracer("cluster")
	var rs metrics.ReplStats
	rs.BatchesShipped.Add(12)
	rs.BytesShipped.Add(4096)
	rs.Resends.Add(3)
	rs.Promotions.Add(1)
	rs.FencedWrites.Add(2)
	rs.PrimaryDurable.Set(1000)
	rs.AppliedLSN.Set(900)
	tr.FoldRepl(&rs)

	s := reg.Snapshots()[0]
	if !s.Replicated {
		t.Fatal("snapshot not marked replicated")
	}
	if s.ShipBatches != 12 || s.ShipBytes != 4096 || s.ShipResends != 3 {
		t.Fatalf("ship accounting = %+v", s)
	}
	if s.ReplLagBytes != 100 || s.Promotions != 1 || s.FencedWrites != 2 {
		t.Fatalf("lag/failover accounting = %+v", s)
	}
	// One extra replication leg: flash rent and IOPS rent double vs base.
	base := core.PaperCosts()
	live := s.LiveCosts(base)
	if live.FlashPerByte != 2*base.FlashPerByte || live.IOPSCost != 2*base.IOPSCost {
		t.Fatalf("replicated legs: FlashPerByte=%v IOPSCost=%v, want doubled", live.FlashPerByte, live.IOPSCost)
	}
	// Mirrored AND replicated = three legs (two mirror legs + standby copy).
	s.Mirrored = true
	live = s.LiveCosts(base)
	if live.FlashPerByte != 3*base.FlashPerByte {
		t.Fatalf("mirror+standby legs: FlashPerByte=%v, want tripled", live.FlashPerByte)
	}
}

// TestRegistryFoldsLimiterStats pins the adaptive-admission fold: the live
// limit, gradient adjustment count, per-class shed breakdown, and
// retry-after hint surface in the snapshot, in the narrator line, and in
// the JSON export benchdiff compares.
func TestRegistryFoldsLimiterStats(t *testing.T) {
	reg := obs.NewRegistry()
	tr := reg.Tracer("adaptive")
	var ls metrics.LimiterStats
	ls.Limit.Set(24)
	ls.Inflight.Set(5)
	ls.LimitUps.Add(4)
	ls.LimitDowns.Add(6)
	ls.ShedScan.Add(40)
	ls.ShedLow.Add(7)
	ls.ShedNormal.Add(2)
	ls.RetryAfterMicros.Set(1500)
	tr.FoldLimiter(&ls)

	s := reg.Snapshots()[0]
	if !s.Limited {
		t.Fatal("snapshot not marked Limited")
	}
	if s.Limit != 24 || s.LimitChanges != 10 {
		t.Fatalf("limit fold = limit=%d changes=%d", s.Limit, s.LimitChanges)
	}
	if s.ShedByScan != 40 || s.ShedByLow != 7 || s.ShedByNormal != 2 || s.ShedByHigh != 0 {
		t.Fatalf("shed fold = %d/%d/%d/%d", s.ShedByScan, s.ShedByLow, s.ShedByNormal, s.ShedByHigh)
	}
	if s.RetryAfterMicros != 1500 {
		t.Fatalf("retry-after fold = %d", s.RetryAfterMicros)
	}

	base := core.PaperCosts()
	line := s.Line(base)
	if !strings.Contains(line, "limit=24") || !strings.Contains(line, "shed[s/l/n/h]=40/7/2/0") {
		t.Fatalf("narrator line missing limiter fields: %s", line)
	}
	exp := s.Export(base)
	if !exp.Limited || exp.Limit != 24 || exp.ShedScan != 40 || exp.ShedLow != 7 ||
		exp.ShedNormal != 2 || exp.ShedHigh != 0 || exp.LimitChanges != 10 {
		t.Fatalf("export missing limiter fields: %+v", exp)
	}
}
