package recordcache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r, err := NewRing(1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get([]byte("a")); ok {
		t.Fatal("empty ring hit")
	}
	r.Add([]byte("a"), []byte("1"))
	if v, ok := r.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("get = %q,%v", v, ok)
	}
	r.Add([]byte("a"), []byte("2")) // supersede
	if v, _ := r.Get([]byte("a")); string(v) != "2" {
		t.Fatalf("superseded value = %q", v)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	r.Invalidate([]byte("a"))
	if _, ok := r.Get([]byte("a")); ok {
		t.Fatal("invalidated key hit")
	}
	if r.UsedBytes() != 0 {
		t.Fatalf("used = %d after invalidate", r.UsedBytes())
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	r, err := NewRing(5 * 80) // room for ~5 records of ~80 bytes
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.Add([]byte(fmt.Sprintf("key%02d", i)), []byte("valuepayload"))
	}
	// Oldest must be gone, newest present.
	if _, ok := r.Get([]byte("key00")); ok {
		t.Fatal("oldest record survived wrap")
	}
	if _, ok := r.Get([]byte("key09")); !ok {
		t.Fatal("newest record evicted")
	}
	if r.Stats().Evictions.Value() == 0 {
		t.Fatal("no evictions counted")
	}
	if r.UsedBytes() > 5*80 {
		t.Fatalf("used %d over budget", r.UsedBytes())
	}
}

func TestRingHitDoesNotPromote(t *testing.T) {
	r, err := NewRing(3 * 75)
	if err != nil {
		t.Fatal(err)
	}
	r.Add([]byte("a"), []byte("1"))
	r.Add([]byte("b"), []byte("2"))
	r.Get([]byte("a")) // would promote in an LRU
	r.Add([]byte("c"), []byte("3"))
	r.Add([]byte("d"), []byte("4"))
	// FIFO: a leaves first despite the recent hit.
	if _, ok := r.Get([]byte("a")); ok {
		t.Fatal("ring promoted on hit (should be FIFO)")
	}
}

func TestLRUPromotesOnHit(t *testing.T) {
	c, err := NewLRU(3 * 75)
	if err != nil {
		t.Fatal(err)
	}
	c.Add([]byte("a"), []byte("1"))
	c.Add([]byte("b"), []byte("2"))
	c.Get([]byte("a")) // promote
	c.Add([]byte("c"), []byte("3"))
	c.Add([]byte("d"), []byte("4"))
	if _, ok := c.Get([]byte("a")); !ok {
		t.Fatal("promoted record evicted")
	}
	if _, ok := c.Get([]byte("b")); ok {
		t.Fatal("LRU victim survived")
	}
}

func TestLRUOverwriteAdjustsBytes(t *testing.T) {
	c, err := NewLRU(1024)
	if err != nil {
		t.Fatal(err)
	}
	c.Add([]byte("k"), make([]byte, 100))
	u1 := c.UsedBytes()
	c.Add([]byte("k"), make([]byte, 10))
	if c.UsedBytes() >= u1 {
		t.Fatalf("used %d -> %d, want shrink after smaller overwrite", u1, c.UsedBytes())
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestHitRatio(t *testing.T) {
	c, _ := NewLRU(1 << 20)
	c.Add([]byte("a"), []byte("1"))
	c.Get([]byte("a"))
	c.Get([]byte("a"))
	c.Get([]byte("zz"))
	want := 2.0 / 3.0
	if got := c.Stats().HitRatio(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("hit ratio = %v, want %v", got, want)
	}
	var empty Stats
	if empty.HitRatio() != 0 {
		t.Fatal("empty ratio nonzero")
	}
}

func TestBadBudget(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Fatal("zero ring budget accepted")
	}
	if _, err := NewLRU(-5); err == nil {
		t.Fatal("negative LRU budget accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	r, _ := NewRing(1 << 20)
	c, _ := NewLRU(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", w, i%50))
				r.Add(k, []byte("v"))
				r.Get(k)
				c.Add(k, []byte("v"))
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
}

// Property: budgets are never exceeded.
func TestBudgetInvariantProperty(t *testing.T) {
	f := func(keys []uint8, budgetRaw uint16) bool {
		budget := int64(budgetRaw)%2000 + 200
		r, err := NewRing(budget)
		if err != nil {
			return false
		}
		c, err := NewLRU(budget)
		if err != nil {
			return false
		}
		for _, k := range keys {
			key := []byte(fmt.Sprintf("key-%d", k))
			val := make([]byte, int(k)%100)
			r.Add(key, val)
			c.Add(key, val)
			// The budget may be exceeded only while a single record is
			// larger than the budget; our records never are.
			if r.Len() > 1 && r.UsedBytes() > budget {
				return false
			}
			if c.Len() > 1 && c.UsedBytes() > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
