// Package recordcache implements record-granularity caches (paper Section
// 6.3). A record is typically a small fraction of its page — often under
// 10% — so caching records instead of pages shifts the breakeven interval
// T_i of Equation 6 by the same factor, widening the access-frequency
// range where main-memory operations are the cheaper choice.
//
// Two structures are provided, mirroring Deuteronomy's transaction
// component (Figure 6):
//
//   - Ring: a log-structured read cache. Records read from the data
//     component are appended to a fixed-size ring; when the ring wraps,
//     the oldest records are dropped. A hash index finds live records.
//   - LRU: a byte-budgeted least-recently-used record cache, used where
//     exact recency matters (and as an ablation comparator for Ring).
package recordcache

import (
	"container/list"
	"errors"
	"sync"

	"costperf/internal/metrics"
)

// Stats counts cache events.
type Stats struct {
	Hits      metrics.Counter
	Misses    metrics.Counter
	Inserts   metrics.Counter
	Evictions metrics.Counter
}

// HitRatio returns hits / (hits + misses), or 0 when empty.
func (s *Stats) HitRatio() float64 {
	h, m := s.Hits.Value(), s.Misses.Value()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Ring is a log-structured read cache: appends go to a rolling byte
// budget; the oldest entries fall off as new ones arrive. Safe for
// concurrent use.
type Ring struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List // front = oldest
	index  map[string]*list.Element
	stats  Stats
}

type ringEntry struct {
	key string
	val []byte
}

// NewRing creates a ring with the given byte budget.
func NewRing(budgetBytes int64) (*Ring, error) {
	if budgetBytes <= 0 {
		return nil, errors.New("recordcache: non-positive budget")
	}
	return &Ring{
		budget: budgetBytes,
		order:  list.New(),
		index:  make(map[string]*list.Element),
	}, nil
}

// Stats returns the cache's counters.
func (r *Ring) Stats() *Stats { return &r.stats }

// Add appends a record. An existing record for the key is superseded (the
// log-structured behaviour: the newest version wins; the stale one ages
// out with the ring).
func (r *Ring) Add(key, val []byte) {
	sz := int64(len(key) + len(val) + 64)
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.index[string(key)]; ok {
		e := old.Value.(*ringEntry)
		r.used -= int64(len(e.key) + len(e.val) + 64)
		r.order.Remove(old)
	}
	el := r.order.PushBack(&ringEntry{key: string(key), val: append([]byte(nil), val...)})
	r.index[string(key)] = el
	r.used += sz
	r.stats.Inserts.Inc()
	for r.used > r.budget && r.order.Len() > 1 {
		front := r.order.Front()
		e := front.Value.(*ringEntry)
		r.order.Remove(front)
		delete(r.index, e.key)
		r.used -= int64(len(e.key) + len(e.val) + 64)
		r.stats.Evictions.Inc()
	}
}

// Get returns the cached record. Unlike an LRU, a hit does not promote
// the record (log-structured caches are FIFO by arrival).
func (r *Ring) Get(key []byte) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.index[string(key)]
	if !ok {
		r.stats.Misses.Inc()
		return nil, false
	}
	r.stats.Hits.Inc()
	return el.Value.(*ringEntry).val, true
}

// Invalidate removes a record (e.g. after an update elsewhere).
func (r *Ring) Invalidate(key []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.index[string(key)]; ok {
		e := el.Value.(*ringEntry)
		r.order.Remove(el)
		delete(r.index, e.key)
		r.used -= int64(len(e.key) + len(e.val) + 64)
	}
}

// Len returns the number of cached records.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.order.Len()
}

// UsedBytes returns the current byte usage.
func (r *Ring) UsedBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// LRU is a byte-budgeted least-recently-used record cache. Safe for
// concurrent use.
type LRU struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List // front = most recent
	index  map[string]*list.Element
	stats  Stats
}

// NewLRU creates an LRU cache with the given byte budget.
func NewLRU(budgetBytes int64) (*LRU, error) {
	if budgetBytes <= 0 {
		return nil, errors.New("recordcache: non-positive budget")
	}
	return &LRU{
		budget: budgetBytes,
		order:  list.New(),
		index:  make(map[string]*list.Element),
	}, nil
}

// Stats returns the cache's counters.
func (c *LRU) Stats() *Stats { return &c.stats }

// Add inserts or refreshes a record.
func (c *LRU) Add(key, val []byte) {
	sz := int64(len(key) + len(val) + 64)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[string(key)]; ok {
		e := el.Value.(*ringEntry)
		c.used += int64(len(val)) - int64(len(e.val))
		e.val = append([]byte(nil), val...)
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&ringEntry{key: string(key), val: append([]byte(nil), val...)})
		c.index[string(key)] = el
		c.used += sz
	}
	c.stats.Inserts.Inc()
	for c.used > c.budget && c.order.Len() > 1 {
		back := c.order.Back()
		e := back.Value.(*ringEntry)
		c.order.Remove(back)
		delete(c.index, e.key)
		c.used -= int64(len(e.key) + len(e.val) + 64)
		c.stats.Evictions.Inc()
	}
}

// Get returns the cached record, promoting it on a hit.
func (c *LRU) Get(key []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[string(key)]
	if !ok {
		c.stats.Misses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.stats.Hits.Inc()
	return el.Value.(*ringEntry).val, true
}

// Invalidate removes a record.
func (c *LRU) Invalidate(key []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[string(key)]; ok {
		e := el.Value.(*ringEntry)
		c.order.Remove(el)
		delete(c.index, e.key)
		c.used -= int64(len(e.key) + len(e.val) + 64)
	}
}

// Len returns the number of cached records.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// UsedBytes returns current byte usage.
func (c *LRU) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
