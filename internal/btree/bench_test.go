package btree

import (
	"testing"

	"costperf/internal/ssd"
	"costperf/internal/workload"
)

func benchBT(b *testing.B, pool int) *Tree {
	b.Helper()
	tr, err := New(Config{Device: ssd.New(ssd.SamsungSSD), PoolPages: pool})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkGetPoolHit(b *testing.B) {
	tr := benchBT(b, 1<<16) // everything fits
	const keys = 50000
	for i := uint64(0); i < keys; i++ {
		if err := tr.Insert(workload.Key(i), workload.ValueFor(i, 100)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Get(workload.Key(uint64(i) % keys)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetPoolMiss(b *testing.B) {
	tr := benchBT(b, 8) // tiny pool: nearly every access pages in
	const keys = 50000
	for i := uint64(0); i < keys; i++ {
		if err := tr.Insert(workload.Key(i), workload.ValueFor(i, 100)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Get(workload.Key(uint64(i*977) % keys)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := benchBT(b, 1<<16)
	val := workload.ValueFor(1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageSerialize(b *testing.B) {
	p := &page{id: 1, leaf: true}
	for i := uint64(0); i < 30; i++ {
		p.keys = append(p.keys, workload.Key(i))
		p.vals = append(p.vals, workload.ValueFor(i, 80))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := serialize(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := deserialize(1, raw); err != nil {
			b.Fatal(err)
		}
	}
}
