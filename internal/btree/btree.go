// Package btree implements a classic data-caching B-tree of the kind the
// paper's introduction describes: fixed-size pages live on secondary
// storage in a page-slot file, a latched buffer pool caches them in main
// memory with LRU replacement, and every dirty-page write-back writes a
// full fixed-size block.
//
// It serves two roles in the reproduction:
//
//   - the "traditional caching system" baseline whose ~ln 2 ≈ 69% page
//     utilization underlies the paper's average-page-size model
//     (Section 4.1), and
//   - the fixed-block-store contrast for the write-reduction experiment
//     (Section 6.1: variable-size log-structured pages write ~30% less).
//
// Concurrency: operations serialize on a tree-level lock (classic latch
// crabbing is not reproduced); the paper's analysis uses this engine only
// for storage-shape measurements, not concurrency experiments.
package btree

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"costperf/internal/metrics"
	"costperf/internal/obs"
	"costperf/internal/sim"
	"costperf/internal/ssd"
)

// PageSize is the fixed on-device page size (paper: 4K pages).
const PageSize = 4096

const (
	pageLeaf     = 1
	pageInterior = 2
	nilPage      = 0
	metaPage     = 0 // slot 0 holds {root, nextID}
)

// Common errors.
var (
	ErrTooLarge = errors.New("btree: record too large for a page")
	ErrClosed   = errors.New("btree: closed")
)

type pageID uint32

// page is the in-memory (deserialized) image of a fixed-size page.
type page struct {
	id       pageID
	leaf     bool
	keys     [][]byte
	vals     [][]byte // leaf payloads
	children []pageID // interior children (len(keys)+1)
	next     pageID   // leaf sibling chain for scans
	dirty    bool
	lastUse  int64 // LRU tick
}

// contentBytes is the page's logical payload size (the utilization
// numerator).
func (p *page) contentBytes() int {
	n := 0
	for i := range p.keys {
		n += len(p.keys[i])
		if p.leaf {
			n += len(p.vals[i])
		} else {
			n += 4
		}
	}
	return n
}

// serializedBytes estimates the on-page encoding size.
func (p *page) serializedBytes() int {
	n := 16 // header
	for i := range p.keys {
		n += 4 + len(p.keys[i])
		if p.leaf {
			n += 4 + len(p.vals[i])
		} else {
			n += 4
		}
	}
	if !p.leaf {
		n += 4
	}
	return n
}

// Stats counts tree events.
type Stats struct {
	Gets       metrics.Counter
	Inserts    metrics.Counter
	Deletes    metrics.Counter
	Scans      metrics.Counter
	Splits     metrics.Counter
	PoolHits   metrics.Counter
	PoolMisses metrics.Counter
	WriteBacks metrics.Counter
	// Health latches degraded (read-only) when the backing device reports
	// unrecoverable corruption (an ssd.Mirror quarantining a page).
	Health metrics.Health
}

// Config configures a Tree.
type Config struct {
	// Device is the backing page-slot device — a plain *ssd.Device or an
	// *ssd.Mirror for checksum-verified, self-healing storage.
	Device ssd.Dev
	// PoolPages is the buffer-pool capacity in pages (default 1024).
	PoolPages int
	// Session enables execution-cost accounting (may be nil).
	Session *sim.Session
	// Obs, when non-nil, receives one tracing span per operation; pool
	// misses and eviction write-backs mark the span as having touched
	// the device. Nil traces nothing at zero cost.
	Obs *obs.Tracer
}

// Tree is a classic buffer-pool B-tree.
type Tree struct {
	cfg    Config
	mu     sync.Mutex
	pool   map[pageID]*page
	root   pageID
	nextID pageID
	tick   int64
	closed bool
	stats  Stats
}

// New creates an empty tree on the device.
func New(cfg Config) (*Tree, error) {
	if cfg.Device == nil {
		return nil, errors.New("btree: nil device")
	}
	if cfg.PoolPages == 0 {
		cfg.PoolPages = 1024
	}
	if cfg.PoolPages < 3 {
		return nil, fmt.Errorf("btree: pool of %d pages too small", cfg.PoolPages)
	}
	t := &Tree{cfg: cfg, pool: map[pageID]*page{}, nextID: 1}
	// A self-healing device (ssd.Mirror) escalates unrecoverable dual-leg
	// corruption by latching the tree's health read-only.
	if ha, ok := cfg.Device.(interface {
		AttachHealth(*metrics.Health)
	}); ok {
		ha.AttachHealth(&t.stats.Health)
	}
	root := t.allocLocked(true)
	t.root = root.id
	return t, nil
}

// Stats returns the tree's counters.
func (t *Tree) Stats() *Stats { return &t.stats }

func (t *Tree) begin() *sim.Charger {
	if t.cfg.Session == nil {
		return nil
	}
	return t.cfg.Session.Begin()
}

// beginCtx is begin with the operation's context bound to the charger, so
// cancellation propagates into page reads, write-backs, and pool eviction
// even when no Session is configured.
func (t *Tree) beginCtx(ctx context.Context) *sim.Charger {
	if t.cfg.Session == nil {
		return sim.DetachedCharger(ctx)
	}
	return t.cfg.Session.Begin().WithContext(ctx)
}

func (t *Tree) allocLocked(leaf bool) *page {
	p := &page{id: t.nextID, leaf: leaf, dirty: true}
	t.nextID++
	t.pool[p.id] = p
	return p
}

// fetch returns the page, reading it from the device on a pool miss.
func (t *Tree) fetch(id pageID, ch *sim.Charger) (*page, error) {
	t.tick++
	if p, ok := t.pool[id]; ok {
		p.lastUse = t.tick
		t.stats.PoolHits.Inc()
		if ch != nil {
			ch.Chase(1)
		}
		return p, nil
	}
	t.stats.PoolMisses.Inc()
	raw, err := t.cfg.Device.ReadAt(int64(id)*PageSize, PageSize, ch)
	if err != nil {
		return nil, err
	}
	p, err := deserialize(id, raw)
	if err != nil {
		// The transfer succeeded but the page image is garbage: count a
		// failed physical read, not a logical one.
		t.cfg.Device.Stats().ReclassifyRead()
		return nil, err
	}
	if ch != nil {
		ch.Add(ch.Profile().PageDeserialize)
	}
	p.lastUse = t.tick
	t.pool[id] = p
	return p, t.enforcePoolLocked(ch)
}

// enforcePoolLocked evicts LRU clean-or-written-back pages until the pool
// is within capacity.
func (t *Tree) enforcePoolLocked(ch *sim.Charger) error {
	for len(t.pool) > t.cfg.PoolPages {
		var victim *page
		for _, p := range t.pool {
			if p.id == t.root {
				continue // keep the root resident
			}
			if victim == nil || p.lastUse < victim.lastUse {
				victim = p
			}
		}
		if victim == nil {
			return nil
		}
		if victim.dirty {
			if err := t.writeBackLocked(victim, ch); err != nil {
				return err
			}
		}
		delete(t.pool, victim.id)
		t.cfg.Device.Stats().Evictions.Inc()
	}
	return nil
}

// writeBackLocked writes a full fixed-size block (the classic-store write
// pattern the paper contrasts with log-structuring).
func (t *Tree) writeBackLocked(p *page, ch *sim.Charger) error {
	raw, err := serialize(p)
	if err != nil {
		return err
	}
	if err := t.cfg.Device.WriteAt(int64(p.id)*PageSize, raw, ch); err != nil {
		return err
	}
	p.dirty = false
	t.stats.WriteBacks.Inc()
	return nil
}

// Get returns the value for key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	return t.get(key, t.begin())
}

// GetCtx is Get bounded by ctx: pool-miss page reads abort promptly once
// ctx is cancelled or past deadline.
func (t *Tree) GetCtx(ctx context.Context, key []byte) ([]byte, bool, error) {
	return t.get(key, t.beginCtx(ctx))
}

func (t *Tree) get(key []byte, ch *sim.Charger) (_ []byte, _ bool, err error) {
	sp := t.cfg.Obs.Start(obs.OpGet)
	t.mu.Lock()
	defer t.mu.Unlock()
	m0, wb0 := t.stats.PoolMisses.Value(), t.stats.WriteBacks.Value()
	defer func() { t.endOpLocked(&sp, m0, wb0, err) }()
	if t.closed {
		abandon(ch)
		return nil, false, ErrClosed
	}
	p, err := t.descend(key, ch)
	if err != nil {
		abandon(ch)
		return nil, false, err
	}
	i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], key) >= 0 })
	if ch != nil {
		ch.Compare(4)
	}
	t.stats.Gets.Inc()
	if i < len(p.keys) && bytes.Equal(p.keys[i], key) {
		v := p.vals[i]
		if ch != nil {
			ch.Copy(len(v))
			ch.Settle()
		}
		return v, true, nil
	}
	settle(ch)
	return nil, false, nil
}

func abandon(ch *sim.Charger) {
	if ch != nil {
		ch.Abandon()
	}
}

func settle(ch *sim.Charger) {
	if ch != nil {
		ch.Settle()
	}
}

// endOpLocked finishes an operation span, marking it a miss when the
// operation performed device I/O (pool-miss reads or eviction
// write-backs) since the recorded baselines. Caller holds t.mu, so the
// counter deltas are exactly this operation's.
func (t *Tree) endOpLocked(sp *obs.Span, m0, wb0 int64, err error) {
	if t.stats.PoolMisses.Value() != m0 || t.stats.WriteBacks.Value() != wb0 {
		sp.Miss()
	}
	sp.End(err)
}

// descend walks to the leaf owning key.
func (t *Tree) descend(key []byte, ch *sim.Charger) (*page, error) {
	p, err := t.fetch(t.root, ch)
	if err != nil {
		return nil, err
	}
	for !p.leaf {
		i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(key, p.keys[i]) < 0 })
		if ch != nil {
			ch.Compare(4)
		}
		p, err = t.fetch(p.children[i], ch)
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Insert upserts key -> val.
func (t *Tree) Insert(key, val []byte) error {
	return t.insert(key, val, t.begin())
}

// InsertCtx is Insert bounded by ctx.
func (t *Tree) InsertCtx(ctx context.Context, key, val []byte) error {
	return t.insert(key, val, t.beginCtx(ctx))
}

func (t *Tree) insert(key, val []byte, ch *sim.Charger) (err error) {
	sp := t.cfg.Obs.Start(obs.OpPut)
	if len(key)+len(val)+24 > PageSize/2 {
		abandon(ch)
		sp.End(ErrTooLarge)
		return ErrTooLarge
	}
	key = append([]byte(nil), key...)
	val = append([]byte(nil), val...)
	t.mu.Lock()
	defer t.mu.Unlock()
	m0, wb0 := t.stats.PoolMisses.Value(), t.stats.WriteBacks.Value()
	defer func() { t.endOpLocked(&sp, m0, wb0, err) }()
	if t.closed {
		abandon(ch)
		return ErrClosed
	}
	sep, right, err := t.insertRec(t.root, key, val, ch)
	if err != nil {
		abandon(ch)
		return err
	}
	if right != nilPage {
		// Root split: new root.
		old := t.root
		nr := t.allocLocked(false)
		nr.keys = [][]byte{sep}
		nr.children = []pageID{old, right}
		t.root = nr.id
	}
	t.stats.Inserts.Inc()
	if ch != nil {
		ch.Copy(len(key) + len(val))
		ch.Settle()
	}
	return nil
}

// insertRec inserts under page id; on split it returns (separator, new
// right sibling id).
func (t *Tree) insertRec(id pageID, key, val []byte, ch *sim.Charger) ([]byte, pageID, error) {
	p, err := t.fetch(id, ch)
	if err != nil {
		return nil, nilPage, err
	}
	if p.leaf {
		i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], key) >= 0 })
		if ch != nil {
			ch.Compare(4)
		}
		if i < len(p.keys) && bytes.Equal(p.keys[i], key) {
			p.vals[i] = val
		} else {
			p.keys = append(p.keys, nil)
			copy(p.keys[i+1:], p.keys[i:])
			p.keys[i] = key
			p.vals = append(p.vals, nil)
			copy(p.vals[i+1:], p.vals[i:])
			p.vals[i] = val
		}
		p.dirty = true
		return t.maybeSplitLocked(p)
	}
	i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(key, p.keys[i]) < 0 })
	if ch != nil {
		ch.Compare(4)
	}
	sep, right, err := t.insertRec(p.children[i], key, val, ch)
	if err != nil {
		return nil, nilPage, err
	}
	if right == nilPage {
		return nil, nilPage, nil
	}
	p.keys = append(p.keys, nil)
	copy(p.keys[i+1:], p.keys[i:])
	p.keys[i] = sep
	p.children = append(p.children, nilPage)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
	p.dirty = true
	return t.maybeSplitLocked(p)
}

// maybeSplitLocked performs the classic half split when the page's
// serialized size exceeds the fixed block — this is what produces the
// ~ln 2 steady-state utilization.
func (t *Tree) maybeSplitLocked(p *page) ([]byte, pageID, error) {
	if p.serializedBytes() <= PageSize {
		return nil, nilPage, nil
	}
	if len(p.keys) < 2 {
		return nil, nilPage, ErrTooLarge
	}
	t.stats.Splits.Inc()
	m := len(p.keys) / 2
	if p.leaf {
		r := t.allocLocked(true)
		r.keys = append([][]byte(nil), p.keys[m:]...)
		r.vals = append([][]byte(nil), p.vals[m:]...)
		r.next = p.next
		p.keys = p.keys[:m]
		p.vals = p.vals[:m]
		p.next = r.id
		p.dirty = true
		return r.keys[0], r.id, t.enforcePoolLocked(nil)
	}
	sep := p.keys[m]
	r := t.allocLocked(false)
	r.keys = append([][]byte(nil), p.keys[m+1:]...)
	r.children = append([]pageID(nil), p.children[m+1:]...)
	p.keys = p.keys[:m]
	p.children = p.children[:m+1]
	p.dirty = true
	return sep, r.id, t.enforcePoolLocked(nil)
}

// Delete removes key (idempotent). Pages are not merged (classic lazy
// deletion).
func (t *Tree) Delete(key []byte) error {
	return t.delete(key, t.begin())
}

// DeleteCtx is Delete bounded by ctx.
func (t *Tree) DeleteCtx(ctx context.Context, key []byte) error {
	return t.delete(key, t.beginCtx(ctx))
}

func (t *Tree) delete(key []byte, ch *sim.Charger) (err error) {
	sp := t.cfg.Obs.Start(obs.OpDelete)
	t.mu.Lock()
	defer t.mu.Unlock()
	m0, wb0 := t.stats.PoolMisses.Value(), t.stats.WriteBacks.Value()
	defer func() { t.endOpLocked(&sp, m0, wb0, err) }()
	if t.closed {
		abandon(ch)
		return ErrClosed
	}
	p, err := t.descend(key, ch)
	if err != nil {
		abandon(ch)
		return err
	}
	i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], key) >= 0 })
	if i < len(p.keys) && bytes.Equal(p.keys[i], key) {
		p.keys = append(p.keys[:i], p.keys[i+1:]...)
		p.vals = append(p.vals[:i], p.vals[i+1:]...)
		p.dirty = true
	}
	t.stats.Deletes.Inc()
	settle(ch)
	return nil
}

// Scan visits keys >= start in order via the leaf sibling chain.
func (t *Tree) Scan(start []byte, limit int, fn func(k, v []byte) bool) error {
	return t.scan(start, limit, fn, t.begin())
}

// ScanCtx is Scan bounded by ctx: the context is checked at every sibling
// hop, so a cancelled scan stops fetching pages.
func (t *Tree) ScanCtx(ctx context.Context, start []byte, limit int, fn func(k, v []byte) bool) error {
	return t.scan(start, limit, fn, t.beginCtx(ctx))
}

func (t *Tree) scan(start []byte, limit int, fn func(k, v []byte) bool, ch *sim.Charger) (err error) {
	sp := t.cfg.Obs.Start(obs.OpScan)
	t.mu.Lock()
	defer t.mu.Unlock()
	m0, wb0 := t.stats.PoolMisses.Value(), t.stats.WriteBacks.Value()
	defer func() { t.endOpLocked(&sp, m0, wb0, err) }()
	if t.closed {
		abandon(ch)
		return ErrClosed
	}
	t.stats.Scans.Inc()
	p, err := t.descend(start, ch)
	if err != nil {
		abandon(ch)
		return err
	}
	visited := 0
	i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], start) >= 0 })
	for {
		for ; i < len(p.keys); i++ {
			if limit > 0 && visited >= limit {
				settle(ch)
				return nil
			}
			if !fn(p.keys[i], p.vals[i]) {
				settle(ch)
				return nil
			}
			visited++
		}
		if p.next == nilPage || (limit > 0 && visited >= limit) {
			settle(ch)
			return nil
		}
		if err := ch.Err(); err != nil {
			abandon(ch)
			return err
		}
		p, err = t.fetch(p.next, ch)
		if err != nil {
			abandon(ch)
			return err
		}
		i = 0
	}
}

// FlushAll writes back every dirty page plus the meta page, making the
// tree recoverable via Open.
func (t *Tree) FlushAll() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	for _, p := range t.pool {
		if p.dirty {
			if err := t.writeBackLocked(p, nil); err != nil {
				return err
			}
		}
	}
	var meta [PageSize]byte
	meta[0] = 0xB7
	binary.BigEndian.PutUint32(meta[1:], uint32(t.root))
	binary.BigEndian.PutUint32(meta[5:], uint32(t.nextID))
	return t.cfg.Device.WriteAt(metaPage, meta[:], nil)
}

// Open recovers a tree previously persisted with FlushAll.
func Open(cfg Config) (*Tree, error) {
	if cfg.Device == nil {
		return nil, errors.New("btree: nil device")
	}
	if cfg.PoolPages == 0 {
		cfg.PoolPages = 1024
	}
	raw, err := cfg.Device.ReadAt(metaPage, PageSize, nil)
	if err != nil {
		return nil, err
	}
	if raw[0] != 0xB7 {
		return nil, errors.New("btree: no meta page on device")
	}
	t := &Tree{cfg: cfg, pool: map[pageID]*page{}}
	t.root = pageID(binary.BigEndian.Uint32(raw[1:]))
	t.nextID = pageID(binary.BigEndian.Uint32(raw[5:]))
	return t, nil
}

// Utilization returns average content bytes per leaf page relative to the
// fixed page size. Under random inserts this converges toward ln 2 ≈ 0.69
// (paper Section 4.1).
func (t *Tree) Utilization() (float64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var used, pages int64
	if err := t.walkLeaves(func(p *page) {
		if len(p.keys) > 0 {
			used += int64(p.serializedBytes())
			pages++
		}
	}); err != nil {
		return 0, err
	}
	if pages == 0 {
		return 0, nil
	}
	return float64(used) / float64(pages) / PageSize, nil
}

// AveragePageBytes returns the mean content size of leaf pages.
func (t *Tree) AveragePageBytes() (float64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var used, pages int64
	if err := t.walkLeaves(func(p *page) {
		if len(p.keys) > 0 {
			used += int64(p.contentBytes())
			pages++
		}
	}); err != nil {
		return 0, err
	}
	if pages == 0 {
		return 0, nil
	}
	return float64(used) / float64(pages), nil
}

// walkLeaves visits all leaves via the sibling chain from the leftmost.
func (t *Tree) walkLeaves(fn func(*page)) error {
	p, err := t.fetch(t.root, nil)
	if err != nil {
		return err
	}
	for !p.leaf {
		p, err = t.fetch(p.children[0], nil)
		if err != nil {
			return err
		}
	}
	for {
		fn(p)
		if p.next == nilPage {
			return nil
		}
		p, err = t.fetch(p.next, nil)
		if err != nil {
			return err
		}
	}
}

// Close flushes and closes the tree.
func (t *Tree) Close() error {
	if err := t.FlushAll(); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return nil
}

// serialize encodes a page into a fixed-size block.
func serialize(p *page) ([]byte, error) {
	buf := make([]byte, PageSize)
	if p.leaf {
		buf[0] = pageLeaf
	} else {
		buf[0] = pageInterior
	}
	binary.BigEndian.PutUint32(buf[1:], uint32(len(p.keys)))
	binary.BigEndian.PutUint32(buf[5:], uint32(p.next))
	off := 16
	put := func(b []byte) error {
		if off+4+len(b) > PageSize {
			return ErrTooLarge
		}
		binary.BigEndian.PutUint32(buf[off:], uint32(len(b)))
		off += 4
		copy(buf[off:], b)
		off += len(b)
		return nil
	}
	for i := range p.keys {
		if err := put(p.keys[i]); err != nil {
			return nil, err
		}
		if p.leaf {
			if err := put(p.vals[i]); err != nil {
				return nil, err
			}
		}
	}
	if !p.leaf {
		for _, c := range p.children {
			if off+4 > PageSize {
				return nil, ErrTooLarge
			}
			binary.BigEndian.PutUint32(buf[off:], uint32(c))
			off += 4
		}
	}
	return buf, nil
}

// deserialize decodes a fixed-size block.
func deserialize(id pageID, raw []byte) (*page, error) {
	if len(raw) != PageSize || (raw[0] != pageLeaf && raw[0] != pageInterior) {
		return nil, fmt.Errorf("btree: corrupt page %d", id)
	}
	p := &page{id: id, leaf: raw[0] == pageLeaf}
	n := int(binary.BigEndian.Uint32(raw[1:]))
	p.next = pageID(binary.BigEndian.Uint32(raw[5:]))
	off := 16
	get := func() ([]byte, error) {
		if off+4 > PageSize {
			return nil, fmt.Errorf("btree: truncated page %d", id)
		}
		l := int(binary.BigEndian.Uint32(raw[off:]))
		off += 4
		if off+l > PageSize {
			return nil, fmt.Errorf("btree: truncated page %d", id)
		}
		b := make([]byte, l)
		copy(b, raw[off:off+l])
		off += l
		return b, nil
	}
	for i := 0; i < n; i++ {
		k, err := get()
		if err != nil {
			return nil, err
		}
		p.keys = append(p.keys, k)
		if p.leaf {
			v, err := get()
			if err != nil {
				return nil, err
			}
			p.vals = append(p.vals, v)
		}
	}
	if !p.leaf {
		for i := 0; i <= n; i++ {
			if off+4 > PageSize {
				return nil, fmt.Errorf("btree: truncated page %d", id)
			}
			p.children = append(p.children, pageID(binary.BigEndian.Uint32(raw[off:])))
			off += 4
		}
	}
	return p, nil
}
