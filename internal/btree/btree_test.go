package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"costperf/internal/sim"
	"costperf/internal/ssd"
	"costperf/internal/workload"
)

func newTree(t *testing.T, pool int) (*Tree, *ssd.Device) {
	t.Helper()
	dev := ssd.New(ssd.SamsungSSD)
	tr, err := New(Config{Device: dev, PoolPages: pool})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dev
}

func TestBasicCRUD(t *testing.T) {
	tr, _ := newTree(t, 64)
	if _, ok, err := tr.Get([]byte("a")); err != nil || ok {
		t.Fatalf("empty get = %v,%v", ok, err)
	}
	if err := tr.Insert([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("a"), []byte("1v2")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte("a"))
	if err != nil || !ok || string(v) != "1v2" {
		t.Fatalf("get = %q,%v,%v", v, ok, err)
	}
	if err := tr.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tr.Get([]byte("a")); ok {
		t.Fatal("deleted key found")
	}
	if err := tr.Delete([]byte("missing")); err != nil {
		t.Fatal(err)
	}
}

func TestTooLargeRecord(t *testing.T) {
	tr, _ := newTree(t, 64)
	if err := tr.Insert([]byte("k"), make([]byte, PageSize)); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestManyKeysWithTinyPool(t *testing.T) {
	// Pool far smaller than the tree: every op exercises the buffer pool.
	tr, dev := newTree(t, 8)
	const n = 3000
	perm := rand.New(rand.NewSource(2)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats().Splits.Value() == 0 {
		t.Fatal("no splits")
	}
	if tr.Stats().PoolMisses.Value() == 0 {
		t.Fatal("no pool misses with an 8-page pool")
	}
	if dev.Stats().Writes.Value() == 0 {
		t.Fatal("no write-backs to the device")
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr.Get(workload.Key(uint64(i)))
		if err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, workload.ValueFor(uint64(i), 64)) {
			t.Fatalf("key %d corrupt", i)
		}
	}
}

func TestScanOrderAcrossSiblings(t *testing.T) {
	tr, _ := newTree(t, 64)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var prev []byte
	count := 0
	if err := tr.Scan(nil, 0, func(k, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("scan out of order")
		}
		prev = append(prev[:0], k...)
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan visited %d, want %d", count, n)
	}
	// Bounded scan.
	var got []uint64
	if err := tr.Scan(workload.Key(100), 5, func(k, _ []byte) bool {
		got = append(got, workload.KeyID(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != 100 || got[4] != 104 {
		t.Fatalf("bounded scan = %v", got)
	}
}

func TestUtilizationApproachesLn2(t *testing.T) {
	// Paper Section 4.1: B-tree pages average just under 70% utilization
	// under random insertion.
	tr, _ := newTree(t, 4096)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30000; i++ {
		id := uint64(rng.Int63())
		if err := tr.Insert(workload.Key(id), workload.ValueFor(id, 80)); err != nil {
			t.Fatal(err)
		}
	}
	u, err := tr.Utilization()
	if err != nil {
		t.Fatal(err)
	}
	if u < 0.60 || u > 0.80 {
		t.Fatalf("utilization = %.3f, want ≈ ln2 (0.69)", u)
	}
	ps, err := tr.AveragePageBytes()
	if err != nil {
		t.Fatal(err)
	}
	// Content ≈ 2.4-3.0 KB for 4K pages at ~69% utilization.
	if ps < 2000 || ps > 3300 {
		t.Fatalf("average page bytes = %.0f, want ≈ 2700 (paper P_s)", ps)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dev := ssd.New(ssd.SamsungSSD)
	tr, err := New(Config{Device: dev, PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(Config{Device: dev, PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr2.Get(workload.Key(uint64(i)))
		if err != nil || !ok || !bytes.Equal(v, workload.ValueFor(uint64(i), 32)) {
			t.Fatalf("recovered key %d wrong (ok=%v err=%v)", i, ok, err)
		}
	}
}

func TestOpenWithoutMetaFails(t *testing.T) {
	dev := ssd.New(ssd.SamsungSSD)
	if err := dev.WriteAt(0, make([]byte, PageSize), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Device: dev}); err == nil {
		t.Fatal("open without meta succeeded")
	}
}

func TestClosedOps(t *testing.T) {
	tr, _ := newTree(t, 16)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Get([]byte("x")); err != ErrClosed {
		t.Fatalf("get err = %v", err)
	}
	if err := tr.Insert([]byte("x"), []byte("y")); err != ErrClosed {
		t.Fatalf("insert err = %v", err)
	}
}

func TestFixedBlockWritesFullPages(t *testing.T) {
	// Every write-back is a full 4K block regardless of content: the
	// contrast with variable-size log-structured pages (Section 6.1).
	tr, dev := newTree(t, 4)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), []byte("tiny")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.FlushAll(); err != nil {
		t.Fatal(err)
	}
	w := dev.Stats().Writes.Value()
	bw := dev.Stats().BytesWritten.Value()
	if w == 0 {
		t.Fatal("no writes")
	}
	if bw != w*PageSize {
		t.Fatalf("bytes/write = %d, want %d (full fixed blocks)", bw/w, PageSize)
	}
}

func TestCostAccounting(t *testing.T) {
	sess := sim.NewSession(sim.DefaultCosts())
	dev := ssd.New(ssd.SamsungSSD)
	tr, err := New(Config{Device: dev, PoolPages: 8, Session: sess})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(workload.Key(uint64(i)), workload.ValueFor(uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	sess.Tracker().Reset()
	for i := 0; i < 300; i++ {
		if _, _, err := tr.Get(workload.Key(uint64(i * 6))); err != nil {
			t.Fatal(err)
		}
	}
	tk := sess.Tracker()
	if tk.Ops(sim.OpSS) == 0 {
		t.Fatal("tiny pool produced no SS operations")
	}
	if tk.R() <= 1 {
		t.Fatalf("R = %v, want > 1", tk.R())
	}
}

func TestOrderedMapEquivalence(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
		Val  uint16
	}
	f := func(ops []op) bool {
		dev := ssd.New(ssd.SamsungSSD)
		tr, err := New(Config{Device: dev, PoolPages: 6})
		if err != nil {
			return false
		}
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("key-%05d", o.Key%400)
			v := fmt.Sprintf("val-%d", o.Val)
			switch o.Kind % 3 {
			case 0:
				if err := tr.Insert([]byte(k), []byte(v)); err != nil {
					return false
				}
				model[k] = v
			case 1:
				if err := tr.Delete([]byte(k)); err != nil {
					return false
				}
				delete(model, k)
			case 2:
				got, ok, err := tr.Get([]byte(k))
				if err != nil {
					return false
				}
				want, wok := model[k]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			}
		}
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		okAll := true
		err = tr.Scan(nil, 0, func(k, v []byte) bool {
			if i >= len(keys) || string(k) != keys[i] || string(v) != model[keys[i]] {
				okAll = false
				return false
			}
			i++
			return true
		})
		return err == nil && okAll && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
