package sim

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestOpClassString(t *testing.T) {
	cases := map[OpClass]string{OpMM: "MM", OpSS: "SS", OpCSS: "CSS"}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
	if got := OpClass(99).String(); got != "OpClass(99)" {
		t.Errorf("invalid class String = %q", got)
	}
}

func TestTrackerChargeAndMeans(t *testing.T) {
	var tr Tracker
	tr.Charge(OpMM, 100)
	tr.Charge(OpMM, 100)
	tr.Charge(OpSS, 580)
	if got := tr.Ops(OpMM); got != 2 {
		t.Fatalf("Ops(MM) = %d, want 2", got)
	}
	if got := tr.Ops(OpSS); got != 1 {
		t.Fatalf("Ops(SS) = %d, want 1", got)
	}
	if got := tr.TotalOps(); got != 3 {
		t.Fatalf("TotalOps = %d, want 3", got)
	}
	if got := tr.MeanCost(OpMM); got != 100 {
		t.Fatalf("MeanCost(MM) = %v, want 100", got)
	}
	if got := tr.R(); math.Abs(got-5.8) > 1e-6 {
		t.Fatalf("R = %v, want 5.8", got)
	}
	wantF := 1.0 / 3.0
	if got := tr.MissFraction(); math.Abs(got-wantF) > 1e-9 {
		t.Fatalf("F = %v, want %v", got, wantF)
	}
}

func TestTrackerEmpty(t *testing.T) {
	var tr Tracker
	if tr.R() != 0 || tr.MissFraction() != 0 || tr.Throughput() != 0 || tr.MMThroughput() != 0 {
		t.Fatal("empty tracker should report zeros")
	}
}

func TestTrackerThroughputMatchesEquation2(t *testing.T) {
	// Construct a mix with known F and R and verify the tracker's measured
	// throughput equals P0 / ((1-F) + F*R), Equation 2 of the paper.
	var tr Tracker
	const mmCost, r = 100.0, 5.8
	const nMM, nSS = 700, 300
	for i := 0; i < nMM; i++ {
		tr.Charge(OpMM, mmCost)
	}
	for i := 0; i < nSS; i++ {
		tr.Charge(OpSS, mmCost*r)
	}
	f := tr.MissFraction()
	p0 := tr.MMThroughput()
	wantPF := p0 / ((1 - f) + f*r)
	if got := tr.Throughput(); math.Abs(got-wantPF)/wantPF > 1e-6 {
		t.Fatalf("Throughput = %v, Equation 2 predicts %v", got, wantPF)
	}
}

func TestTrackerAddCost(t *testing.T) {
	var tr Tracker
	tr.Charge(OpSS, 100)
	tr.AddCost(OpSS, 50) // background work: cost, no op
	if got := tr.Ops(OpSS); got != 1 {
		t.Fatalf("Ops = %d, want 1", got)
	}
	if got := tr.CostOf(OpSS); math.Abs(float64(got)-150) > 1e-3 {
		t.Fatalf("CostOf = %v, want 150", got)
	}
}

func TestTrackerInvalidClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid class did not panic")
		}
	}()
	var tr Tracker
	tr.Charge(OpClass(12), 1)
}

func TestTrackerNegativeCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative cost did not panic")
		}
	}()
	var tr Tracker
	tr.Charge(OpMM, -1)
}

func TestTrackerConcurrent(t *testing.T) {
	var tr Tracker
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Charge(OpMM, 10)
			}
		}()
	}
	wg.Wait()
	if got := tr.Ops(OpMM); got != workers*each {
		t.Fatalf("Ops = %d, want %d", got, workers*each)
	}
	if got := float64(tr.CostOf(OpMM)); math.Abs(got-float64(workers*each*10)) > 1 {
		t.Fatalf("CostOf = %v, want %d", got, workers*each*10)
	}
}

func TestTrackerResetAndString(t *testing.T) {
	var tr Tracker
	tr.Charge(OpMM, 5)
	if tr.String() == "" {
		t.Fatal("empty String")
	}
	tr.Reset()
	if tr.TotalOps() != 0 || tr.TotalCost() != 0 {
		t.Fatal("Reset did not clear tracker")
	}
}

func TestChargerLifecycle(t *testing.T) {
	s := NewSession(DefaultCosts())
	ch := s.Begin()
	ch.Compare(3)
	ch.Chase(2)
	ch.Copy(100)
	ch.Hash()
	p := s.Profile()
	want := 3*p.Compare + 2*p.PointerChase + 100*p.MemCopyPerByte + p.HashStep
	if got := ch.Cost(); math.Abs(float64(got-want)) > 1e-9 {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
	if ch.Class() != OpMM {
		t.Fatalf("Class = %v, want MM", ch.Class())
	}
	ch.Escalate(OpSS)
	ch.Escalate(OpMM) // must not downgrade
	if ch.Class() != OpSS {
		t.Fatalf("Class after escalate = %v, want SS", ch.Class())
	}
	ch.Settle()
	if got := s.Tracker().Ops(OpSS); got != 1 {
		t.Fatalf("settled ops = %d, want 1", got)
	}
	if ch.Cost() != 0 || ch.Class() != OpMM {
		t.Fatal("Settle did not reset charger")
	}
}

func TestChargerAbandon(t *testing.T) {
	s := NewSession(DefaultCosts())
	ch := s.Begin()
	ch.Compare(5)
	ch.Escalate(OpSS)
	ch.Abandon()
	if s.Tracker().TotalOps() != 0 {
		t.Fatal("Abandon recorded an operation")
	}
	if ch.Cost() != 0 || ch.Class() != OpMM {
		t.Fatal("Abandon did not reset charger")
	}
}

func TestChargerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	s := NewSession(DefaultCosts())
	s.Begin().Add(-1)
}

func TestVirtualClock(t *testing.T) {
	var c VirtualClock
	if c.Now() != 0 {
		t.Fatal("zero clock not at 0")
	}
	c.Advance(1.5)
	c.Advance(0.5)
	if got := c.Now(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("Now = %v, want 2.0", got)
	}
	c.Set(10)
	if got := c.Now(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Now = %v, want 10", got)
	}
}

func TestVirtualClockBackwardsPanics(t *testing.T) {
	var c VirtualClock
	c.Advance(5)
	for name, f := range map[string]func(){
		"Advance": func() { c.Advance(-1) },
		"Set":     func() { c.Set(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s backwards did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: for any non-negative charge sequence, TotalCost equals the sum
// of per-class costs and MissFraction lies in [0, 1].
func TestTrackerInvariantsProperty(t *testing.T) {
	f := func(mm, ss, css []uint16) bool {
		var tr Tracker
		for _, v := range mm {
			tr.Charge(OpMM, Cost(v))
		}
		for _, v := range ss {
			tr.Charge(OpSS, Cost(v))
		}
		for _, v := range css {
			tr.Charge(OpCSS, Cost(v))
		}
		sum := tr.CostOf(OpMM) + tr.CostOf(OpSS) + tr.CostOf(OpCSS)
		if math.Abs(float64(sum-tr.TotalCost())) > 1e-3 {
			return false
		}
		fr := tr.MissFraction()
		return fr >= 0 && fr <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCostsOrdering(t *testing.T) {
	p := DefaultCosts()
	if p.IOIssueKernel <= p.IOIssueUser {
		t.Fatal("kernel I/O path must cost more than user-level path (paper Section 7.1.1)")
	}
	if p.Compare <= 0 || p.PointerChase <= p.Compare {
		t.Fatal("pointer chase should cost more than a warm compare")
	}
}
