// Package sim provides deterministic execution-cost accounting for the
// storage engines in this repository.
//
// The paper measures performance as "the execution time that one core needs
// to complete an operation" (Section 2.1) — the computational load, not the
// I/O-wait latency. Measuring that faithfully with wall clocks in Go is
// confounded by the garbage collector, so every engine here additionally
// charges abstract CPU cost units to a Tracker as it executes. Relative
// quantities — R (SS/MM execution ratio), P0, PF, the mixed-workload curve
// of Figure 1 — are then derived from these deterministic charges, while
// wall-clock testing.B benchmarks remain available as a cross-check.
//
// One cost unit is calibrated as "the work of one cache-resident key
// comparison"; all other charges are expressed relative to that. The
// calibration constants live in DefaultCosts and are configurable so
// ablations can explore, e.g., a longer kernel I/O path (paper Section 7.1).
package sim

import (
	"fmt"
	"sync/atomic"
)

// Cost is an abstract CPU execution cost, in comparison-equivalent units.
type Cost float64

// CostProfile holds the per-primitive execution charges the engines use.
// The defaults were chosen so that a fully cached Bw-tree read costs ~100
// units and the optimized (user-level I/O) secondary-storage path multiplies
// that by roughly the paper's R ≈ 5.8, while the kernel path yields R ≈ 9
// (paper Section 7.1.1).
type CostProfile struct {
	// Compare is the cost of one key comparison against cache-warm data.
	Compare Cost
	// PointerChase is the cost of following one pointer likely to miss the
	// processor cache (e.g., a delta-chain hop or mapping-table indirection).
	PointerChase Cost
	// MemCopyPerByte is the per-byte cost of copying record payloads.
	MemCopyPerByte Cost
	// HashStep is the cost of hashing a key for cache/MVCC table lookups.
	HashStep Cost
	// IOIssueUser is the CPU cost of issuing one I/O on a user-level
	// (SPDK-style) path: no protection-boundary crossing.
	IOIssueUser Cost
	// IOIssueKernel is the CPU cost of issuing one I/O through the OS:
	// boundary crossing plus longer code path.
	IOIssueKernel Cost
	// ContextSwitch is the cost of switching execution to other work while
	// an I/O is in flight and back again (charged once per I/O).
	ContextSwitch Cost
	// PageDeserialize is the fixed cost of installing a page read from the
	// device into the cache (directory updates, checksums).
	PageDeserialize Cost
	// DecompressPerByte is the per-byte cost of decompressing a page for a
	// CSS (compressed secondary storage) operation, paper Section 7.2.
	DecompressPerByte Cost
	// CompressPerByte is the per-byte cost of compressing a page.
	CompressPerByte Cost
}

// DefaultCosts is the calibrated profile described in the package comment.
func DefaultCosts() CostProfile {
	return CostProfile{
		Compare:           1,
		PointerChase:      4,
		MemCopyPerByte:    0.05,
		HashStep:          6,
		IOIssueUser:       110,
		IOIssueKernel:     290,
		ContextSwitch:     60,
		PageDeserialize:   45,
		DecompressPerByte: 0.12,
		CompressPerByte:   0.20,
	}
}

// OpClass labels the two operation forms of paper Section 2.1 plus the
// compressed variant of Section 7.2.
type OpClass int

const (
	// OpMM is a main-memory operation: data found in cache.
	OpMM OpClass = iota
	// OpSS is a secondary-storage operation: data read from the device.
	OpSS
	// OpCSS is a compressed secondary-storage operation.
	OpCSS
	numOpClasses
)

// String returns the paper's abbreviation for the class.
func (c OpClass) String() string {
	switch c {
	case OpMM:
		return "MM"
	case OpSS:
		return "SS"
	case OpCSS:
		return "CSS"
	default:
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
}

// Tracker accumulates per-class operation counts and execution costs.
// It is safe for concurrent use. The zero value is ready to use.
type Tracker struct {
	ops  [numOpClasses]atomic.Int64
	cost [numOpClasses]atomic.Int64 // fixed-point: units * costScale
}

// costScale converts Cost to fixed-point so accumulation can be atomic.
const costScale = 1 << 16

// Charge records one completed operation of class c that consumed the given
// execution cost.
func (t *Tracker) Charge(c OpClass, cost Cost) {
	if c < 0 || c >= numOpClasses {
		panic(fmt.Sprintf("sim: invalid OpClass %d", c))
	}
	if cost < 0 {
		panic("sim: negative cost charged")
	}
	t.ops[c].Add(1)
	t.cost[c].Add(int64(float64(cost) * costScale))
}

// AddCost adds execution cost to class c without counting an operation.
// Engines use this to attribute background work (e.g., GC, compaction).
func (t *Tracker) AddCost(c OpClass, cost Cost) {
	if c < 0 || c >= numOpClasses {
		panic(fmt.Sprintf("sim: invalid OpClass %d", c))
	}
	t.cost[c].Add(int64(float64(cost) * costScale))
}

// Ops returns the number of operations recorded for class c.
func (t *Tracker) Ops(c OpClass) int64 { return t.ops[c].Load() }

// TotalOps returns operations across all classes.
func (t *Tracker) TotalOps() int64 {
	var n int64
	for i := range t.ops {
		n += t.ops[i].Load()
	}
	return n
}

// CostOf returns the accumulated execution cost for class c.
func (t *Tracker) CostOf(c OpClass) Cost {
	return Cost(float64(t.cost[c].Load()) / costScale)
}

// TotalCost returns execution cost across all classes.
func (t *Tracker) TotalCost() Cost {
	var c Cost
	for i := range t.cost {
		c += Cost(float64(t.cost[i].Load()) / costScale)
	}
	return c
}

// MeanCost returns the average execution cost per operation of class c,
// or 0 when no operations of that class were recorded.
func (t *Tracker) MeanCost(c OpClass) Cost {
	n := t.ops[c].Load()
	if n == 0 {
		return 0
	}
	return t.CostOf(c) / Cost(n)
}

// MissFraction returns F, the fraction of operations that were SS (or CSS)
// operations — the cache-miss ratio of paper Section 2.2.
func (t *Tracker) MissFraction() float64 {
	total := t.TotalOps()
	if total == 0 {
		return 0
	}
	miss := t.ops[OpSS].Load() + t.ops[OpCSS].Load()
	return float64(miss) / float64(total)
}

// R returns the measured relative execution cost of SS vs MM operations
// (paper Section 2.2, Equation 3 measured directly). It returns 0 when
// either class has no samples.
func (t *Tracker) R() float64 {
	mm, ss := t.MeanCost(OpMM), t.MeanCost(OpSS)
	if mm == 0 || ss == 0 {
		return 0
	}
	return float64(ss / mm)
}

// Throughput returns operations per cost unit for the whole recorded mix —
// the deterministic analogue of PF in Equation 2. With no recorded cost it
// returns 0.
func (t *Tracker) Throughput() float64 {
	c := t.TotalCost()
	if c == 0 {
		return 0
	}
	return float64(t.TotalOps()) / float64(c)
}

// MMThroughput returns operations per cost unit as if every operation were
// an MM operation — the deterministic analogue of P0. With no MM samples it
// returns 0.
func (t *Tracker) MMThroughput() float64 {
	mc := t.MeanCost(OpMM)
	if mc == 0 {
		return 0
	}
	return 1 / float64(mc)
}

// Reset zeroes all counters.
func (t *Tracker) Reset() {
	for i := range t.ops {
		t.ops[i].Store(0)
		t.cost[i].Store(0)
	}
}

// String summarizes the tracker for experiment logs.
func (t *Tracker) String() string {
	return fmt.Sprintf("MM{n=%d mean=%.1f} SS{n=%d mean=%.1f} CSS{n=%d mean=%.1f} F=%.4f R=%.2f",
		t.Ops(OpMM), float64(t.MeanCost(OpMM)),
		t.Ops(OpSS), float64(t.MeanCost(OpSS)),
		t.Ops(OpCSS), float64(t.MeanCost(OpCSS)),
		t.MissFraction(), t.R())
}
