package sim

import (
	"context"
	"sync"
	"sync/atomic"
)

// Charger accumulates the execution cost of a single in-flight operation
// and settles it into a Tracker when the operation completes. Engines
// thread one Charger through each operation's call path; substrates (the
// mapping table, the cache, the device) add their charges to it.
//
// A Charger optionally carries the operation's context.Context. Because
// the charger is already threaded through every layer of an operation —
// store, log store, device — it doubles as the cancellation conduit:
// substrates call Err before starting expensive work (a device I/O, a
// retry backoff) so a cancelled or deadline-expired request stops burning
// IOPS instead of running to completion.
//
// A Charger is used by a single goroutine for a single operation and is
// therefore not synchronized. The zero value is unusable; obtain one from
// Session.Begin.
type Charger struct {
	profile *CostProfile
	tracker *Tracker
	cost    Cost
	class   OpClass
	ctx     context.Context // nil means context.Background()
}

// WithContext binds ctx to the charger for the duration of the operation
// and returns the charger for chaining. A nil ctx clears the binding.
func (c *Charger) WithContext(ctx context.Context) *Charger {
	c.ctx = ctx
	return c
}

// Context returns the operation's context. It is nil-receiver-safe and
// returns context.Background() when no context was bound, so substrates
// can call ch.Context() without guarding against nil chargers.
func (c *Charger) Context() context.Context {
	if c == nil || c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Err returns the bound context's cancellation error, if any. Like
// Context, it is nil-receiver-safe: a nil charger is never cancelled.
func (c *Charger) Err() error {
	if c == nil || c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// discardSession backs DetachedCharger: charges settle into a shared
// tracker nobody reads. Created lazily so stores without sessions pay
// nothing until they run a cancellable operation.
var (
	discardOnce    sync.Once
	discardSession *Session
)

// DetachedCharger returns a charger that carries ctx but records into a
// discard tracker. Stores configured without a Session use it so that
// cancellable operations still propagate their context down the I/O path.
// When ctx can never be cancelled (nil ctx or no Done channel, e.g.
// context.Background()), it returns nil — the store's uninstrumented fast
// path is unchanged.
func DetachedCharger(ctx context.Context) *Charger {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	discardOnce.Do(func() { discardSession = NewSession(DefaultCosts()) })
	return discardSession.Begin().WithContext(ctx)
}

// Profile returns the cost profile charges should be computed against.
func (c *Charger) Profile() *CostProfile { return c.profile }

// Add accrues raw cost units to the in-flight operation.
func (c *Charger) Add(cost Cost) {
	if cost < 0 {
		panic("sim: negative cost")
	}
	c.cost += cost
}

// Compare charges n key comparisons.
func (c *Charger) Compare(n int) { c.cost += Cost(n) * c.profile.Compare }

// Chase charges n cache-missing pointer dereferences.
func (c *Charger) Chase(n int) { c.cost += Cost(n) * c.profile.PointerChase }

// Copy charges a payload copy of n bytes.
func (c *Charger) Copy(n int) { c.cost += Cost(n) * c.profile.MemCopyPerByte }

// Hash charges one hash computation.
func (c *Charger) Hash() { c.cost += c.profile.HashStep }

// Escalate marks the operation as (at least) the given class. Class only
// ever increases: an operation that touched the device stays an SS
// operation even if later steps hit cache.
func (c *Charger) Escalate(class OpClass) {
	if class > c.class {
		c.class = class
	}
}

// Class returns the operation's current class.
func (c *Charger) Class() OpClass { return c.class }

// Cost returns the cost accrued so far.
func (c *Charger) Cost() Cost { return c.cost }

// Settle records the finished operation in the session's tracker and
// resets the charger for reuse.
func (c *Charger) Settle() {
	c.tracker.Charge(c.class, c.cost)
	c.cost = 0
	c.class = OpMM
}

// Abandon discards the in-flight charges without recording an operation
// (used when an operation fails before doing meaningful work).
func (c *Charger) Abandon() {
	c.cost = 0
	c.class = OpMM
}

// Session couples a cost profile with a tracker and a virtual clock. One
// Session typically spans one experiment run.
type Session struct {
	profile CostProfile
	tracker Tracker
	clock   VirtualClock
}

// NewSession returns a Session charging against the given profile.
func NewSession(p CostProfile) *Session {
	return &Session{profile: p}
}

// Begin returns a fresh Charger for one operation.
func (s *Session) Begin() *Charger {
	return &Charger{profile: &s.profile, tracker: &s.tracker}
}

// Tracker exposes the session's accumulated statistics.
func (s *Session) Tracker() *Tracker { return &s.tracker }

// Clock exposes the session's virtual clock.
func (s *Session) Clock() *VirtualClock { return &s.clock }

// Profile returns a copy of the session's cost profile.
func (s *Session) Profile() CostProfile { return s.profile }

// VirtualClock is a logical clock advanced explicitly by the experiment
// harness. Engines use it to timestamp page accesses so that eviction
// policies based on the paper's breakeven interval T_i (Section 4.2) can be
// evaluated deterministically, independent of wall time.
//
// Time is in virtual seconds, stored as fixed-point microseconds.
type VirtualClock struct {
	micros atomic.Int64
}

// Now returns the current virtual time in seconds.
func (c *VirtualClock) Now() float64 {
	return float64(c.micros.Load()) / 1e6
}

// Advance moves the clock forward by d seconds (d must be non-negative).
func (c *VirtualClock) Advance(d float64) {
	if d < 0 {
		panic("sim: clock moved backwards")
	}
	c.micros.Add(int64(d * 1e6))
}

// Set jumps the clock to t seconds (t must not be in the past).
func (c *VirtualClock) Set(t float64) {
	target := int64(t * 1e6)
	for {
		cur := c.micros.Load()
		if target < cur {
			panic("sim: clock moved backwards")
		}
		if c.micros.CompareAndSwap(cur, target) {
			return
		}
	}
}
