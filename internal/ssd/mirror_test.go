package ssd

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"costperf/internal/metrics"
)

// scriptInjector is a minimal programmable FaultInjector for mirror tests
// (the canonical fault.Injector lives in internal/fault, which imports ssd
// and therefore cannot be used here).
type scriptInjector struct {
	mu      sync.Mutex
	writeN  int64
	readN   int64
	onWrite map[int64]FaultOutcome // keyed by 1-based write ordinal
	onRead  map[int64]FaultOutcome
}

func newScript() *scriptInjector {
	return &scriptInjector{onWrite: map[int64]FaultOutcome{}, onRead: map[int64]FaultOutcome{}}
}

func (s *scriptInjector) WriteFault(off int64, data []byte) FaultOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeN++
	return s.onWrite[s.writeN]
}

func (s *scriptInjector) ReadFault(off int64, length int) FaultOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readN++
	return s.onRead[s.readN]
}

func testMirror() *Mirror { return NewMirror(SamsungSSD) }

func pattern(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestMirrorRoundTrip(t *testing.T) {
	m := testMirror()
	oracle := New(SamsungSSD)
	writes := []struct {
		off int64
		n   int
	}{
		{0, MirrorPageSize},            // aligned full page
		{MirrorPageSize, 3 * MirrorPageSize}, // aligned multi-page
		{100, 50},                      // sub-page
		{MirrorPageSize - 10, 20},      // straddles a page boundary
		{5*MirrorPageSize + 7, 2*MirrorPageSize + 100}, // unaligned multi-page
		{0, 1 << 16},                   // big overwrite from zero
		{0, 100},                       // aligned-start sub-page overwrite: tail pre-image required
	}
	for i, w := range writes {
		data := pattern(w.n, int64(i+1))
		if err := m.WriteAt(w.off, data, nil); err != nil {
			t.Fatalf("mirror write %d: %v", i, err)
		}
		if err := oracle.WriteAt(w.off, data, nil); err != nil {
			t.Fatalf("oracle write %d: %v", i, err)
		}
	}
	if m.HighWater() != oracle.HighWater() {
		t.Fatalf("high water: mirror %d oracle %d", m.HighWater(), oracle.HighWater())
	}
	reads := []struct {
		off int64
		n   int
	}{
		{0, int(oracle.HighWater())}, {100, 50}, {MirrorPageSize - 10, 20}, {5 * MirrorPageSize, 4096},
	}
	for i, r := range reads {
		got, err := m.ReadAt(r.off, r.n, nil)
		if err != nil {
			t.Fatalf("mirror read %d: %v", i, err)
		}
		want, err := oracle.ReadAt(r.off, r.n, nil)
		if err != nil {
			t.Fatalf("oracle read %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %d mismatch at off=%d len=%d", i, r.off, r.n)
		}
	}
	if rep := m.MirrorStats().ReadRepairs.Value(); rep != 0 {
		t.Fatalf("clean run performed %d read repairs", rep)
	}
	// Both legs must hold identical images.
	for _, leg := range []int{0, 1} {
		got, err := m.Leg(leg).ReadAt(0, int(oracle.HighWater()), nil)
		if err != nil {
			t.Fatalf("leg %d read: %v", leg, err)
		}
		want, _ := oracle.ReadAt(0, int(oracle.HighWater()), nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("leg %d diverged from oracle", leg)
		}
	}
}

func TestMirrorReadRepairsSingleLegFlip(t *testing.T) {
	m := testMirror()
	data := pattern(3*MirrorPageSize, 7)
	if err := m.WriteAt(0, data, nil); err != nil {
		t.Fatal(err)
	}
	// Silently corrupt one bit of leg 0's copy of page 1 on the next write
	// it receives (a direct sub-page write to that page).
	inj := newScript()
	inj.onWrite[1] = FaultOutcome{Flip: true, FlipBit: 13}
	m.Leg(0).SetFaultInjector(inj)
	if err := m.WriteAt(MirrorPageSize+64, data[MirrorPageSize+64:MirrorPageSize+96], nil); err != nil {
		t.Fatal(err)
	}
	m.Leg(0).SetFaultInjector(nil)

	failedBefore := m.Leg(0).Stats().FailedReads.Value()
	got, err := m.ReadAt(0, len(data), nil)
	if err != nil {
		t.Fatalf("read over flipped page: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read returned corrupt data instead of repairing")
	}
	if rep := m.MirrorStats().ReadRepairs.Value(); rep != 1 {
		t.Fatalf("ReadRepairs = %d, want 1", rep)
	}
	if f := m.Leg(0).Stats().FailedReads.Value(); f != failedBefore+1 {
		t.Fatalf("corrupt leg transfer not reclassified: FailedReads %d -> %d", failedBefore, f)
	}
	// The repair healed leg 0: a second read is clean and repairs nothing.
	if _, err := m.ReadAt(0, len(data), nil); err != nil {
		t.Fatal(err)
	}
	if rep := m.MirrorStats().ReadRepairs.Value(); rep != 1 {
		t.Fatalf("second read repaired again (ReadRepairs=%d): leg 0 was not healed", rep)
	}
}

func TestMirrorFailoverOnLegReadError(t *testing.T) {
	m := testMirror()
	data := pattern(2*MirrorPageSize, 3)
	if err := m.WriteAt(0, data, nil); err != nil {
		t.Fatal(err)
	}
	inj := newScript()
	inj.onRead[1] = FaultOutcome{Err: ErrInjectedRead}
	m.Leg(0).SetFaultInjector(inj)
	got, err := m.ReadAt(0, len(data), nil)
	if err != nil {
		t.Fatalf("read with leg-0 I/O error: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover read returned wrong data")
	}
	if fo := m.MirrorStats().Failovers.Value(); fo != 1 {
		t.Fatalf("Failovers = %d, want 1", fo)
	}
}

func TestMirrorDualLegCorruptionQuarantines(t *testing.T) {
	m := testMirror()
	var health metrics.Health
	m.AttachHealth(&health)
	data := pattern(2*MirrorPageSize, 11)
	if err := m.WriteAt(0, data, nil); err != nil {
		t.Fatal(err)
	}
	// Flip the same page on both legs via per-leg injectors during a
	// sub-page write to page 0.
	for leg := 0; leg < 2; leg++ {
		inj := newScript()
		inj.onWrite[1] = FaultOutcome{Flip: true, FlipBit: 5}
		m.Leg(leg).SetFaultInjector(inj)
	}
	if err := m.WriteAt(16, data[16:48], nil); err != nil {
		t.Fatal(err)
	}
	m.Leg(0).SetFaultInjector(nil)
	m.Leg(1).SetFaultInjector(nil)

	_, err := m.ReadAt(0, MirrorPageSize, nil)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("dual-leg corruption returned %v, want ErrQuarantined", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatal("ErrQuarantined must wrap ErrCorrupt for fault classification")
	}
	if !health.Degraded() {
		t.Fatal("attached health did not degrade on quarantine")
	}
	if q := m.MirrorStats().Quarantined.Value(); q != 1 {
		t.Fatalf("Quarantined = %d, want 1", q)
	}
	if pages := m.QuarantinedPages(); len(pages) != 1 || pages[0] != 0 {
		t.Fatalf("QuarantinedPages = %v, want [0]", pages)
	}
	// Still quarantined on the next read; page 1 is unaffected.
	if _, err := m.ReadAt(0, 16, nil); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("second read got %v, want ErrQuarantined", err)
	}
	if _, err := m.ReadAt(MirrorPageSize, MirrorPageSize, nil); err != nil {
		t.Fatalf("healthy neighbour page read failed: %v", err)
	}
	// A sub-page write cannot resurrect the page...
	if err := m.WriteAt(8, []byte("x"), nil); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("sub-page write into quarantined page got %v, want ErrQuarantined", err)
	}
	// ...but a full-page overwrite supplies fresh data and clears it.
	fresh := pattern(MirrorPageSize, 99)
	if err := m.WriteAt(0, fresh, nil); err != nil {
		t.Fatalf("full-page overwrite of quarantined page: %v", err)
	}
	got, err := m.ReadAt(0, MirrorPageSize, nil)
	if err != nil {
		t.Fatalf("read after overwrite: %v", err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("overwritten page returned stale data")
	}
}

func TestMirrorScrubRepairsLatentFlip(t *testing.T) {
	m := testMirror()
	data := pattern(4*MirrorPageSize, 23)
	if err := m.WriteAt(0, data, nil); err != nil {
		t.Fatal(err)
	}
	// Latent flip on leg 1 (the leg the read path never verifies first):
	// only the scrubber can find it before a failover would.
	inj := newScript()
	inj.onWrite[1] = FaultOutcome{Flip: true, FlipBit: 1000}
	m.Leg(1).SetFaultInjector(inj)
	if err := m.WriteAt(2*MirrorPageSize+10, data[2*MirrorPageSize+10:2*MirrorPageSize+40], nil); err != nil {
		t.Fatal(err)
	}
	m.Leg(1).SetFaultInjector(nil)

	rep := m.ScrubOnce()
	if rep.Repaired != 1 || rep.Quarantined != 0 {
		t.Fatalf("ScrubOnce = %+v, want 1 repaired, 0 quarantined", rep)
	}
	if sr := m.MirrorStats().ScrubRepairs.Value(); sr != 1 {
		t.Fatalf("ScrubRepairs = %d, want 1", sr)
	}
	if p := m.MirrorStats().ScrubPasses.Value(); p != 1 {
		t.Fatalf("ScrubPasses = %d, want 1", p)
	}
	// Idempotent: the next pass finds nothing.
	rep = m.ScrubOnce()
	if rep.Repaired != 0 || rep.Quarantined != 0 {
		t.Fatalf("second ScrubOnce = %+v, want clean", rep)
	}
	// Both legs identical again.
	b0, _ := m.Leg(0).ReadAt(0, len(data), nil)
	b1, _ := m.Leg(1).ReadAt(0, len(data), nil)
	if !bytes.Equal(b0, b1) {
		t.Fatal("legs diverged after scrub repair")
	}
}

func TestMirrorScrubQuarantinesDualCorruption(t *testing.T) {
	m := testMirror()
	var health metrics.Health
	m.AttachHealth(&health)
	data := pattern(2*MirrorPageSize, 31)
	if err := m.WriteAt(0, data, nil); err != nil {
		t.Fatal(err)
	}
	for leg := 0; leg < 2; leg++ {
		inj := newScript()
		inj.onWrite[1] = FaultOutcome{Flip: true, FlipBit: 7}
		m.Leg(leg).SetFaultInjector(inj)
	}
	if err := m.WriteAt(MirrorPageSize+100, data[100:132], nil); err != nil {
		t.Fatal(err)
	}
	m.Leg(0).SetFaultInjector(nil)
	m.Leg(1).SetFaultInjector(nil)

	rep := m.ScrubOnce()
	if rep.Quarantined != 1 {
		t.Fatalf("ScrubOnce = %+v, want 1 quarantined", rep)
	}
	if !health.Degraded() {
		t.Fatal("health did not degrade on scrub quarantine")
	}
	if _, err := m.ReadAt(MirrorPageSize, 10, nil); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("read of scrub-quarantined page got %v", err)
	}
}

func TestMirrorTornWriteRecoversIntactLeg(t *testing.T) {
	// Simulate a crash mid-mirrored-write: leg 0 takes a torn write and the
	// device errors; leg 1's write fails outright (no media change). The
	// checksums must keep describing the old, intact image on both legs.
	m := testMirror()
	old := pattern(2*MirrorPageSize, 41)
	if err := m.WriteAt(0, old, nil); err != nil {
		t.Fatal(err)
	}
	inj0 := newScript()
	inj0.onWrite[1] = FaultOutcome{Err: ErrInjectedWrite, Tear: true, TearKeep: 100}
	m.Leg(0).SetFaultInjector(inj0)
	inj1 := newScript()
	inj1.onWrite[1] = FaultOutcome{Err: ErrInjectedWrite}
	m.Leg(1).SetFaultInjector(inj1)

	newData := pattern(MirrorPageSize, 43)
	if err := m.WriteAt(0, newData, nil); err == nil {
		t.Fatal("write with both legs failing reported success")
	}
	m.Leg(0).SetFaultInjector(nil)
	m.Leg(1).SetFaultInjector(nil)

	// Reads see the old image: leg 0's torn page fails verification and is
	// served (and repaired) from leg 1.
	got, err := m.ReadAt(0, len(old), nil)
	if err != nil {
		t.Fatalf("read after torn write: %v", err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("read did not recover the intact pre-write image")
	}
	if rep := m.MirrorStats().ReadRepairs.Value(); rep != 1 {
		t.Fatalf("ReadRepairs = %d, want 1 (torn page healed from leg 1)", rep)
	}
}

func TestMirrorTornWriteSecondLegKeepsNewImage(t *testing.T) {
	// Leg 0 accepts the write, then leg 1 tears: the new checksums are
	// already installed, so reads serve leg 0's complete new image and
	// heal leg 1.
	m := testMirror()
	old := pattern(MirrorPageSize, 51)
	if err := m.WriteAt(0, old, nil); err != nil {
		t.Fatal(err)
	}
	inj1 := newScript()
	inj1.onWrite[1] = FaultOutcome{Err: ErrInjectedWrite, Tear: true, TearKeep: 64}
	m.Leg(1).SetFaultInjector(inj1)
	newData := pattern(MirrorPageSize, 53)
	if err := m.WriteAt(0, newData, nil); err != nil {
		t.Fatalf("single-leg failure must not fail the mirror write: %v", err)
	}
	m.Leg(1).SetFaultInjector(nil)

	got, err := m.ReadAt(0, MirrorPageSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("read did not serve the acknowledged new image")
	}
	// Scrub heals leg 1 back into sync.
	if rep := m.ScrubOnce(); rep.Repaired != 1 {
		t.Fatalf("scrub after one-leg tear: %+v, want 1 repair", rep)
	}
	b1, _ := m.Leg(1).ReadAt(0, MirrorPageSize, nil)
	if !bytes.Equal(b1, newData) {
		t.Fatal("leg 1 not healed to the new image")
	}
}

func TestMirrorTrimDropsChecksumsAndQuarantine(t *testing.T) {
	m := testMirror()
	data := pattern(3*MirrorPageSize, 61)
	if err := m.WriteAt(0, data, nil); err != nil {
		t.Fatal(err)
	}
	// Quarantine page 1 the hard way.
	for leg := 0; leg < 2; leg++ {
		inj := newScript()
		inj.onWrite[1] = FaultOutcome{Flip: true, FlipBit: 3}
		m.Leg(leg).SetFaultInjector(inj)
	}
	if err := m.WriteAt(MirrorPageSize+5, data[5:37], nil); err != nil {
		t.Fatal(err)
	}
	m.Leg(0).SetFaultInjector(nil)
	m.Leg(1).SetFaultInjector(nil)
	if _, err := m.ReadAt(MirrorPageSize, 8, nil); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("setup: expected quarantine, got %v", err)
	}

	// Trimming the whole page releases it; the trimmed range reads as
	// zeros with no checksum complaints.
	if err := m.Trim(MirrorPageSize, MirrorPageSize); err != nil {
		t.Fatal(err)
	}
	if pages := m.QuarantinedPages(); len(pages) != 0 {
		t.Fatalf("quarantine survived full trim: %v", pages)
	}
	got, err := m.ReadAt(MirrorPageSize, MirrorPageSize, nil)
	if err != nil {
		t.Fatalf("read of trimmed page: %v", err)
	}
	if !bytes.Equal(got, make([]byte, MirrorPageSize)) {
		t.Fatal("trimmed page not zeroed")
	}
	// Untrimmed neighbours still verify.
	if _, err := m.ReadAt(0, MirrorPageSize, nil); err != nil {
		t.Fatalf("neighbour page after trim: %v", err)
	}
}

func TestMirrorAggregateMeters(t *testing.T) {
	m := testMirror()
	data := pattern(8*MirrorPageSize, 71)
	if err := m.WriteAt(0, data, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadAt(0, len(data), nil); err != nil {
		t.Fatal(err)
	}
	if m.HighWater() != int64(len(data)) {
		t.Fatalf("HighWater = %d, want %d", m.HighWater(), len(data))
	}
	if fp, leg := m.FootprintBytes(), m.Leg(0).FootprintBytes(); fp != 2*leg {
		t.Fatalf("FootprintBytes = %d, want doubled leg footprint %d", fp, 2*leg)
	}
	if busy := m.BusySeconds(); busy != m.Leg(0).BusySeconds()+m.Leg(1).BusySeconds() {
		t.Fatalf("BusySeconds = %v not the sum of the legs", busy)
	}
	// Logical mirror stats: one write, one read.
	if w, r := m.Stats().Writes.Value(), m.Stats().Reads.Value(); w != 1 || r != 1 {
		t.Fatalf("logical stats writes=%d reads=%d, want 1/1", w, r)
	}
	// Physical: the write landed on both legs.
	if w0, w1 := m.Leg(0).Stats().Writes.Value(), m.Leg(1).Stats().Writes.Value(); w0 != 1 || w1 != 1 {
		t.Fatalf("leg writes = %d/%d, want 1/1", w0, w1)
	}
}

func TestMirrorBackgroundScrubRateLimit(t *testing.T) {
	m := testMirror()
	// 64 checksummed pages of data.
	if err := m.WriteAt(0, pattern(64*MirrorPageSize, 81), nil); err != nil {
		t.Fatal(err)
	}
	const rate = 200.0 // pages/sec -> at most 400 leg reads/sec
	m.StartScrub(rate)
	const wait = 500 * time.Millisecond
	time.Sleep(wait)
	m.StopScrub()
	reads := m.MirrorStats().ScrubReads.Value()
	// Budget: 2 reads per page at `rate` pages/sec, +50% slack for timer
	// coarseness. The scrubber must also have made progress.
	budget := int64(2*rate*wait.Seconds()*1.5) + 2
	if reads > budget {
		t.Fatalf("scrubber issued %d reads in %v, budget %d", reads, wait, budget)
	}
	if reads == 0 {
		t.Fatal("scrubber made no progress")
	}
}

func TestMirrorClosed(t *testing.T) {
	m := testMirror()
	if err := m.WriteAt(0, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAt(0, []byte("y"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if _, err := m.ReadAt(0, 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if err := m.Trim(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("trim after close: %v", err)
	}
}

func TestMirrorConcurrentIO(t *testing.T) {
	m := testMirror()
	m.StartScrub(10000)
	defer m.StopScrub()
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * 16 * MirrorPageSize
			data := pattern(2*MirrorPageSize+33, int64(w+1))
			for i := 0; i < 20; i++ {
				off := base + int64(i%3)*517
				if err := m.WriteAt(off, data, nil); err != nil {
					errc <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				got, err := m.ReadAt(off, len(data), nil)
				if err != nil {
					errc <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				if !bytes.Equal(got, data) {
					errc <- fmt.Errorf("worker %d read mismatch", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
