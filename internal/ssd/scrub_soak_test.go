package ssd

import (
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// TestScrubSoakLong is the CHECK_SCRUB=1 long-running scrub soak: a mirror
// under continuous append traffic with latent flips planted on the standby
// leg, scrubbed in the background at a fixed page budget for several
// seconds. It asserts the hard properties the short tests cannot: the
// scrubber's I/O never exceeds its token-bucket budget in any sampling
// window, latent damage is repaired without a single user-visible error,
// and the legs converge to identical images once traffic stops.
func TestScrubSoakLong(t *testing.T) {
	if os.Getenv("CHECK_SCRUB") == "" {
		t.Skip("set CHECK_SCRUB=1 to run the long scrub soak")
	}

	const (
		rate    = 400.0 // pages/sec -> scrub budget of 800 leg reads/sec
		soak    = 8 * time.Second
		window  = 2 * time.Second
		slack   = 1.5 // timer coarseness allowance per window
		payload = 1536
	)

	m := NewMirror(SamsungSSD)
	defer m.Close()

	// Seed data so the scrubber has extents to walk from the start.
	if err := m.WriteAt(0, pattern(256*MirrorPageSize, 1), nil); err != nil {
		t.Fatal(err)
	}

	// Latent flips on the standby leg (leg 1): invisible to the read path,
	// only the scrubber can find them. One flip roughly every 50 writes.
	flipInj := newScript()
	for n := int64(25); n < 100000; n += 50 {
		flipInj.onWrite[n] = FaultOutcome{Flip: true, FlipBit: (n * 131) % (8 * MirrorPageSize)}
	}
	m.Leg(1).SetFaultInjector(flipInj)

	m.StartScrub(rate)

	// Writer: steady append traffic plus verified reads of what it wrote.
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var writeErrs, readErrs atomic.Int64
	go func() {
		defer close(writerDone)
		off := int64(256 * MirrorPageSize)
		i := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			data := pattern(payload, i)
			if err := m.WriteAt(off, data, nil); err != nil {
				writeErrs.Add(1)
			}
			if _, err := m.ReadAt(off, payload, nil); err != nil {
				readErrs.Add(1)
			}
			off += payload
			i++
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Sample the scrub read counter: no window may exceed the token-bucket
	// budget of 2 leg reads per page at `rate` pages/sec.
	budget := int64(2 * rate * window.Seconds() * slack)
	start := time.Now()
	prev := m.MirrorStats().ScrubReads.Value()
	for time.Since(start) < soak {
		time.Sleep(window)
		cur := m.MirrorStats().ScrubReads.Value()
		if d := cur - prev; d > budget {
			t.Errorf("scrub window issued %d leg reads, budget %d (rate %.0f pages/s over %v)",
				d, budget, rate, window)
		}
		prev = cur
	}
	close(stop)
	<-writerDone
	m.StopScrub()
	// End of the fault episode: detach the injector so repair writes stop
	// being re-flipped, then require convergence.
	m.Leg(1).SetFaultInjector(nil)

	if w, r := writeErrs.Load(), readErrs.Load(); w != 0 || r != 0 {
		t.Fatalf("traffic saw errors under scrub: %d write, %d read", w, r)
	}
	ms := m.MirrorStats()
	if ms.ScrubReads.Value() == 0 || ms.ScrubPasses.Value() == 0 {
		t.Fatalf("scrubber made no progress: %s", ms.String())
	}
	if ms.Quarantined.Value() != 0 {
		t.Fatalf("single-leg flips caused %d quarantines", ms.Quarantined.Value())
	}
	if ms.ScrubRepairs.Value() == 0 {
		t.Fatalf("soak planted latent flips but the scrubber repaired none: %s", ms.String())
	}

	// Drain the remaining damage synchronously, then prove convergence: a
	// pass over a healed mirror repairs nothing.
	if rep := m.ScrubOnce(); rep.Quarantined != 0 {
		t.Fatalf("final scrub quarantined %d pages", rep.Quarantined)
	}
	if rep := m.ScrubOnce(); rep.Repaired != 0 || rep.Quarantined != 0 {
		t.Fatalf("legs still inconsistent after full scrub: %+v", rep)
	}
	t.Logf("soak done: %s", ms.String())
}
