// Package ssd simulates the secondary-storage devices of the paper: flash
// SSDs (the Samsung drives of Sections 4.1 and 7.1.2), hard disks
// (Section 8.3), and NVRAM-style devices (Section 8.2).
//
// The simulator is deliberately simple — the paper's analysis needs exactly
// three things from a device, and the simulator exposes exactly those:
//
//  1. a maximum I/O rate (IOPS) and the device-busy accounting to tell when
//     a workload becomes I/O bound (Section 2.2 excludes that regime);
//  2. the CPU execution cost of issuing an I/O, which differs between a
//     kernel I/O path and a user-level SPDK-style path (Section 7.1.1);
//  3. purchase-cost parameters ($Fl per byte, $I for IOPS capability) that
//     feed the cost model.
//
// Data is held in a sparse chunked address space so multi-gigabyte virtual
// devices cost only what is actually written.
package ssd

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"costperf/internal/metrics"
	"costperf/internal/sim"
)

// IOPath selects the CPU cost profile for issuing I/O.
type IOPath int

const (
	// UserLevelPath models an SPDK-style user-mode I/O path: no
	// protection-boundary crossing (paper Section 7.1.1).
	UserLevelPath IOPath = iota
	// KernelPath models conventional OS-mediated I/O.
	KernelPath
)

// String names the path.
func (p IOPath) String() string {
	if p == KernelPath {
		return "kernel"
	}
	return "user-level"
}

// Config describes a simulated device.
type Config struct {
	// Name labels the device in experiment output.
	Name string
	// MaxIOPS is the device's maximum I/O rate (ops per virtual second).
	MaxIOPS float64
	// LatencySec is the per-I/O device latency in virtual seconds (time the
	// request spends in the device, not CPU time).
	LatencySec float64
	// Path selects the CPU cost charged per I/O issue.
	Path IOPath
	// CostPerByte is the device's purchase cost per byte ($Fl).
	CostPerByte float64
	// IOPSCost is the purchase cost attributed to the device's I/O
	// capability ($I), e.g. SSD price minus flash storage price.
	IOPSCost float64
	// CapacityBytes bounds the media the device will allocate (0 =
	// unbounded). Writes that would allocate past the bound fail with
	// ErrNoSpace; Trim returns media to the free pool. Capacity is
	// accounted in whole sparse chunks, matching FootprintBytes.
	CapacityBytes int64
}

// Paper-grade device presets. Prices follow Section 4.1; IOPS follow
// Sections 4.1, 7.1.2, and 8.3.
var (
	// SamsungSSD is the paper's measured device: 0.5 TB, $I = $50,
	// $Fl = $0.5e-9/byte, 200K IOPS achieved (Section 4.1).
	SamsungSSD = Config{
		Name: "samsung-ssd", MaxIOPS: 2.0e5, LatencySec: 100e-6,
		Path: UserLevelPath, CostPerByte: 0.5e-9, IOPSCost: 50,
	}
	// NextGenSSD is the 500K-IOPS drive of Section 7.1.2 at a similar
	// price point (≈40% cheaper per I/O).
	NextGenSSD = Config{
		Name: "nextgen-ssd", MaxIOPS: 5.0e5, LatencySec: 80e-6,
		Path: UserLevelPath, CostPerByte: 0.5e-9, IOPSCost: 50,
	}
	// EnterpriseHDD is Section 8.3's best-case disk: 200 IOPS, 5 ms.
	EnterpriseHDD = Config{
		Name: "enterprise-hdd", MaxIOPS: 200, LatencySec: 5e-3,
		Path: KernelPath, CostPerByte: 0.03e-9, IOPSCost: 150,
	}
	// CommodityHDD is Section 8.3's commodity disk: 100 IOPS, 10 ms.
	CommodityHDD = Config{
		Name: "commodity-hdd", MaxIOPS: 100, LatencySec: 10e-3,
		Path: KernelPath, CostPerByte: 0.02e-9, IOPSCost: 40,
	}
	// NVRAM approximates Section 8.2: cost and performance between DRAM
	// and flash, accessed without an I/O path.
	NVRAM = Config{
		Name: "nvram", MaxIOPS: 5e6, LatencySec: 1e-6,
		Path: UserLevelPath, CostPerByte: 2e-9, IOPSCost: 0,
	}
)

// Common errors.
var (
	ErrClosed        = errors.New("ssd: device closed")
	ErrOutOfRange    = errors.New("ssd: address out of range")
	ErrInjectedRead  = errors.New("ssd: injected read failure")
	ErrInjectedWrite = errors.New("ssd: injected write failure")
	// ErrNoSpace is returned by writes that would allocate media beyond
	// Config.CapacityBytes. It classifies as persistent (retrying cannot
	// free space), so flush paths latch their store's Health degraded
	// (read-only) instead of panicking or looping.
	ErrNoSpace = errors.New("ssd: device full")
)

// FaultOutcome describes what a fault injector wants to happen to one I/O.
// The zero value means "no fault": the I/O proceeds normally.
type FaultOutcome struct {
	// Err, when non-nil, fails the operation with this error. For writes,
	// nothing reaches the media unless Tear is also set.
	Err error
	// Tear truncates a write: only the first TearKeep bytes reach the
	// media (a torn/prefix-only write, as after power loss mid-flush).
	// With a nil Err the device still reports success — a silently torn
	// write that only checksum verification can catch later.
	Tear     bool
	TearKeep int
	// Flip flips bit FlipBit of the transferred data (modulo its length):
	// on writes the corrupted bytes reach the media, on reads the caller
	// receives them. Models bit rot / firmware corruption.
	Flip    bool
	FlipBit int64
	// ExtraBusySec adds a latency spike to the device-busy accounting.
	ExtraBusySec float64
}

// FaultInjector decides, per I/O, whether and how to misbehave. The
// canonical implementation is internal/fault.Injector; the interface lives
// here so the device does not depend on the fault package. Implementations
// must be safe for concurrent use; the device calls them with its own lock
// held, so they must not call back into the device.
type FaultInjector interface {
	// ReadFault is consulted before a read of length bytes at off.
	ReadFault(off int64, length int) FaultOutcome
	// WriteFault is consulted before a write of data at off.
	WriteFault(off int64, data []byte) FaultOutcome
}

// IOObserver receives one callback per physical I/O attempt the device
// executes. The canonical implementation is internal/obs.Tracer (matched
// structurally so the device does not depend on the obs package): the SSD
// charges the store's tracer with the simulated IOPS cost and busy latency
// of every transfer, including failed attempts that a retry loop will
// re-issue. Implementations must be cheap (atomic adds) and safe for
// concurrent use; the device may invoke them with its own lock held.
type IOObserver interface {
	// ObserveIO reports one attempt: direction, payload bytes moved
	// (0 for failed attempts), device-busy seconds charged, and whether
	// the attempt failed with an injected fault.
	ObserveIO(write bool, bytes int, busySec float64, failed bool)
}

const chunkSize = 1 << 16 // 64 KiB sparse chunks

// Device is a simulated secondary-storage device. It is safe for
// concurrent use.
//
// Accounting note: the high-water mark, device-busy time, and I/O stats
// are atomics rather than lock-guarded fields so that concurrent meter
// readers (the engine front-end, the cost model's rental accounting, and
// experiment harnesses polling mid-run) never tear a counter and never
// contend with the I/O path's data lock.
type Device struct {
	cfg          Config
	busyPerIONos int64 // 1/MaxIOPS in nanoseconds, precomputed

	mu       sync.RWMutex
	chunks   map[int64][]byte
	closed   bool
	injector FaultInjector // programmable fault injection (may be nil)
	shim     *legacyShim   // lazily created by the deprecated fault hooks
	observer IOObserver    // per-attempt telemetry sink (may be nil)

	written   atomic.Int64 // high-water mark of bytes addressed
	busyNanos atomic.Int64 // accumulated device-busy virtual nanoseconds

	stats metrics.IOStats
}

// New returns a device with the given configuration.
func New(cfg Config) *Device {
	if cfg.MaxIOPS <= 0 {
		panic(fmt.Sprintf("ssd: non-positive MaxIOPS %v", cfg.MaxIOPS))
	}
	return &Device{
		cfg:          cfg,
		busyPerIONos: int64(1e9/cfg.MaxIOPS + 0.5),
		chunks:       make(map[int64][]byte),
	}
}

// Config returns the device's configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns the device's I/O statistics.
func (d *Device) Stats() *metrics.IOStats { return &d.stats }

// chargeIO accrues the CPU cost of one I/O to the in-flight operation and
// escalates it to an SS operation. A nil charger skips CPU accounting
// (e.g., background flush paths measured separately).
func (d *Device) chargeIO(ch *sim.Charger) {
	if ch == nil {
		return
	}
	p := ch.Profile()
	if d.cfg.Path == KernelPath {
		ch.Add(p.IOIssueKernel)
	} else {
		ch.Add(p.IOIssueUser)
	}
	ch.Add(p.ContextSwitch)
	ch.Escalate(sim.OpSS)
}

// accountBusy charges device-busy time for one I/O.
func (d *Device) accountBusy() {
	d.busyNanos.Add(d.busyPerIONos)
}

// observeLocked reports one physical attempt to the installed observer.
// Caller holds d.mu (observers must be atomic-cheap, see IOObserver).
func (d *Device) observeLocked(write bool, bytes int, busySec float64, failed bool) {
	if d.observer != nil {
		d.observer.ObserveIO(write, bytes, busySec, failed)
	}
}

// BusySeconds returns accumulated device-busy virtual time; the harness
// compares it against elapsed virtual time to detect I/O-bound operation.
// Safe to poll concurrently with in-flight I/O.
func (d *Device) BusySeconds() float64 {
	return float64(d.busyNanos.Load()) / 1e9
}

// Latency returns the device latency per I/O in virtual seconds.
func (d *Device) Latency() float64 { return d.cfg.LatencySec }

// faultOnWriteLocked consults the legacy shim and the installed injector,
// first non-zero outcome wins. Caller holds d.mu.
func (d *Device) faultOnWriteLocked(off int64, data []byte) FaultOutcome {
	if d.shim != nil {
		if fo := d.shim.WriteFault(off, data); fo != (FaultOutcome{}) {
			return fo
		}
	}
	if d.injector != nil {
		return d.injector.WriteFault(off, data)
	}
	return FaultOutcome{}
}

func (d *Device) faultOnReadLocked(off int64, length int) FaultOutcome {
	if d.shim != nil {
		if fo := d.shim.ReadFault(off, length); fo != (FaultOutcome{}) {
			return fo
		}
	}
	if d.injector != nil {
		return d.injector.ReadFault(off, length)
	}
	return FaultOutcome{}
}

// flipBit flips bit fo.FlipBit (modulo the buffer length) in a copy of b.
func flipBit(b []byte, bit int64) []byte {
	if len(b) == 0 {
		return b
	}
	cp := append([]byte(nil), b...)
	bit %= int64(len(cp) * 8)
	if bit < 0 {
		bit += int64(len(cp) * 8)
	}
	cp[bit/8] ^= 1 << (bit % 8)
	return cp
}

// WriteAt writes data at the given offset as one device write I/O,
// charging ch for the CPU cost (ch may be nil for background writes).
// If the charger carries a cancelled context, the write fails before any
// I/O is issued or busy time accrued: a caller that stopped waiting must
// not keep consuming the device's IOPS budget.
func (d *Device) WriteAt(off int64, data []byte, ch *sim.Charger) error {
	if err := ch.Err(); err != nil {
		return err
	}
	if off < 0 {
		return ErrOutOfRange
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.wouldExceedCapacityLocked(off, len(data)) {
		// A full device rejects the write deterministically, before any
		// injected fault: like a real ENOSPC it still occupied the device
		// for the attempt but moved no payload.
		d.accountBusy()
		d.stats.FailedWrites.Inc()
		d.observeLocked(true, 0, float64(d.busyPerIONos)/1e9, true)
		return fmt.Errorf("%w: write [%d,%d) over capacity %d (footprint %d)",
			ErrNoSpace, off, off+int64(len(data)), d.cfg.CapacityBytes, int64(len(d.chunks))*chunkSize)
	}
	fo := d.faultOnWriteLocked(off, data)
	attemptBusy := float64(d.busyPerIONos) / 1e9
	if fo.ExtraBusySec > 0 {
		d.busyNanos.Add(int64(fo.ExtraBusySec * 1e9))
		attemptBusy += fo.ExtraBusySec
	}
	towrite := data
	if fo.Tear {
		keep := fo.TearKeep
		if keep < 0 {
			keep = 0
		}
		if keep > len(data) {
			keep = len(data)
		}
		towrite = data[:keep]
	}
	if fo.Flip {
		towrite = flipBit(towrite, fo.FlipBit)
	}
	if fo.Tear {
		// Only the prefix hit the media, but the full address range stays
		// readable (as stale/zero bytes), like a real torn sector range —
		// recovery must detect the damage by checksum, not by short read.
		d.raiseHighWater(off + int64(len(data)))
	}
	if fo.Err != nil {
		// A torn write's prefix reached the media before the failure.
		if fo.Tear && len(towrite) > 0 {
			d.writeLocked(off, towrite)
		}
		// The failed attempt still occupied the device and consumed an
		// I/O slot: charge busy time and the physical-attempt counter,
		// but no logical write and no payload bytes — a bounded-retry
		// loop re-issuing this request must not inflate logical counts.
		d.accountBusy()
		d.stats.FailedWrites.Inc()
		d.observeLocked(true, 0, attemptBusy, true)
		return fo.Err
	}
	d.writeLocked(off, towrite)
	d.accountBusy()
	d.stats.Writes.Inc()
	d.stats.BytesWritten.Add(int64(len(data)))
	d.observeLocked(true, len(data), attemptBusy, false)
	d.chargeIO(ch)
	return nil
}

// wouldExceedCapacityLocked reports whether writing [off, off+n) would
// allocate chunks past the configured capacity. Rewrites of already
// allocated chunks are always in budget. Caller holds d.mu.
func (d *Device) wouldExceedCapacityLocked(off int64, n int) bool {
	if d.cfg.CapacityBytes <= 0 || n == 0 {
		return false
	}
	fresh := int64(0)
	for ci := off / chunkSize; ci*chunkSize < off+int64(n); ci++ {
		if _, ok := d.chunks[ci]; !ok {
			fresh++
		}
	}
	return (int64(len(d.chunks))+fresh)*chunkSize > d.cfg.CapacityBytes
}

func (d *Device) raiseHighWater(end int64) {
	for {
		cur := d.written.Load()
		if end <= cur || d.written.CompareAndSwap(cur, end) {
			return
		}
	}
}

func (d *Device) writeLocked(off int64, data []byte) {
	d.raiseHighWater(off + int64(len(data)))
	for len(data) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		n := chunkSize - co
		if int64(len(data)) < n {
			n = int64(len(data))
		}
		chunk, ok := d.chunks[ci]
		if !ok {
			chunk = make([]byte, chunkSize)
			d.chunks[ci] = chunk
		}
		copy(chunk[co:co+n], data[:n])
		off += n
		data = data[n:]
	}
}

// ReadAt reads length bytes at the given offset as one device read I/O,
// charging ch for the CPU cost. Like WriteAt, a cancelled context on the
// charger fails the read before it reaches the media.
func (d *Device) ReadAt(off int64, length int, ch *sim.Charger) ([]byte, error) {
	if err := ch.Err(); err != nil {
		return nil, err
	}
	if off < 0 || length < 0 {
		return nil, ErrOutOfRange
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	fo := d.faultOnReadLocked(off, length)
	attemptBusy := float64(d.busyPerIONos) / 1e9
	if fo.ExtraBusySec > 0 {
		d.busyNanos.Add(int64(fo.ExtraBusySec * 1e9))
		attemptBusy += fo.ExtraBusySec
	}
	if fo.Err != nil {
		// Failed physical attempt: busy time and attempt counter, no
		// logical read (see WriteAt's failure path).
		d.accountBusy()
		d.stats.FailedReads.Inc()
		d.observeLocked(false, 0, attemptBusy, true)
		d.mu.Unlock()
		return nil, fo.Err
	}
	if hw := d.written.Load(); off+int64(length) > hw {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: read [%d,%d) beyond high-water %d", ErrOutOfRange, off, off+int64(length), hw)
	}
	out := make([]byte, length)
	d.readLocked(off, out)
	if fo.Flip {
		out = flipBit(out, fo.FlipBit)
	}
	d.accountBusy()
	d.stats.Reads.Inc()
	d.stats.BytesRead.Add(int64(length))
	d.observeLocked(false, length, attemptBusy, false)
	d.mu.Unlock()
	d.chargeIO(ch)
	return out, nil
}

func (d *Device) readLocked(off int64, out []byte) {
	for len(out) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		n := chunkSize - co
		if int64(len(out)) < n {
			n = int64(len(out))
		}
		if chunk, ok := d.chunks[ci]; ok {
			copy(out[:n], chunk[co:co+n])
		} else {
			for i := int64(0); i < n; i++ {
				out[i] = 0
			}
		}
		off += n
		out = out[n:]
	}
}

// Trim releases the storage backing [off, off+length) back to the device
// (log-structured GC uses this after reclaiming a segment). Partial chunks
// at the boundaries are zeroed rather than freed. Trimming a closed device
// returns ErrClosed without mutating the freed state.
func (d *Device) Trim(off int64, length int64) error {
	if off < 0 || length < 0 {
		return ErrOutOfRange
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	end := off + length
	for ci := off / chunkSize; ci*chunkSize < end; ci++ {
		cs, ce := ci*chunkSize, (ci+1)*chunkSize
		if cs >= off && ce <= end {
			delete(d.chunks, ci)
			continue
		}
		chunk, ok := d.chunks[ci]
		if !ok {
			continue
		}
		zs, ze := off, end
		if zs < cs {
			zs = cs
		}
		if ze > ce {
			ze = ce
		}
		for i := zs - cs; i < ze-cs; i++ {
			chunk[i] = 0
		}
	}
	return nil
}

// FootprintBytes returns the bytes of simulated media currently allocated.
func (d *Device) FootprintBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.chunks)) * chunkSize
}

// HighWater returns the highest written address (the log tail for
// log-structured users). Safe to poll concurrently with in-flight I/O.
func (d *Device) HighWater() int64 {
	return d.written.Load()
}

// SetFaultInjector installs (or, with nil, removes) a programmable fault
// injector consulted on every I/O. See internal/fault for the canonical
// deterministic implementation.
func (d *Device) SetFaultInjector(fi FaultInjector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.injector = fi
}

// SetObserver installs (or, with nil, removes) a per-attempt I/O telemetry
// sink. See internal/obs.Tracer for the canonical implementation.
func (d *Device) SetObserver(o IOObserver) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.observer = o
}

// legacyShim implements FaultInjector for the deprecated ad-hoc fault
// hooks below, so the whole fault path is uniform: every injected fault —
// legacy or programmed — flows through a FaultOutcome.
type legacyShim struct {
	mu       sync.Mutex
	failRead int
	failRate float64
	rng      *rand.Rand
}

func (s *legacyShim) ReadFault(int64, int) FaultOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failRead > 0 {
		s.failRead--
		return FaultOutcome{Err: ErrInjectedRead}
	}
	return FaultOutcome{}
}

func (s *legacyShim) WriteFault(int64, []byte) FaultOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failRate > 0 && s.rng.Float64() < s.failRate {
		return FaultOutcome{Err: ErrInjectedWrite}
	}
	return FaultOutcome{}
}

func (d *Device) ensureShim() *legacyShim {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.shim == nil {
		d.shim = &legacyShim{rng: rand.New(rand.NewSource(1))}
	}
	return d.shim
}

// FailNextReads makes the next n reads fail with ErrInjectedRead.
//
// Deprecated: thin compatibility shim. New code should install an
// internal/fault.Injector via SetFaultInjector, which supports error
// classification, torn writes, corruption, and crash points.
func (d *Device) FailNextReads(n int) {
	s := d.ensureShim()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failRead = n
}

// SetWriteFailureRate makes each write fail with the given probability.
//
// Deprecated: thin compatibility shim; see FailNextReads.
func (d *Device) SetWriteFailureRate(p float64) {
	s := d.ensureShim()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failRate = p
}

// Close marks the device closed; subsequent I/O fails with ErrClosed.
func (d *Device) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}
