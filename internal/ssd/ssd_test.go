package ssd

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"costperf/internal/sim"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d := New(SamsungSSD)
	data := []byte("hello flash world")
	if err := d.WriteAt(100, data, nil); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadAt(100, len(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
}

func TestCrossChunkIO(t *testing.T) {
	d := New(SamsungSSD)
	// Write a buffer spanning three chunks.
	data := make([]byte, chunkSize*2+500)
	for i := range data {
		data[i] = byte(i % 251)
	}
	off := int64(chunkSize - 100)
	if err := d.WriteAt(off, data, nil); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadAt(off, len(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-chunk round trip mismatch")
	}
}

func TestReadBeyondHighWater(t *testing.T) {
	d := New(SamsungSSD)
	if err := d.WriteAt(0, []byte("abc"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(0, 10, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestNegativeOffsets(t *testing.T) {
	d := New(SamsungSSD)
	if err := d.WriteAt(-1, []byte("x"), nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write err = %v", err)
	}
	if _, err := d.ReadAt(-1, 1, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read err = %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := New(SamsungSSD)
	if err := d.WriteAt(0, make([]byte, 4096), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(0, 4096, nil); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Writes.Value() != 1 || s.Reads.Value() != 1 {
		t.Fatalf("writes=%d reads=%d, want 1/1", s.Writes.Value(), s.Reads.Value())
	}
	if s.BytesWritten.Value() != 4096 || s.BytesRead.Value() != 4096 {
		t.Fatalf("bytesW=%d bytesR=%d, want 4096/4096", s.BytesWritten.Value(), s.BytesRead.Value())
	}
}

func TestBusyTimeReflectsIOPS(t *testing.T) {
	d := New(SamsungSSD)
	const n = 100
	for i := 0; i < n; i++ {
		if err := d.WriteAt(int64(i)*100, []byte("x"), nil); err != nil {
			t.Fatal(err)
		}
	}
	want := float64(n) / SamsungSSD.MaxIOPS
	if got := d.BusySeconds(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("BusySeconds = %v, want %v", got, want)
	}
}

func TestChargerCosts(t *testing.T) {
	s := sim.NewSession(sim.DefaultCosts())
	p := s.Profile()

	user := New(SamsungSSD)
	ch := s.Begin()
	if err := user.WriteAt(0, []byte("abc"), ch); err != nil {
		t.Fatal(err)
	}
	wantUser := p.IOIssueUser + p.ContextSwitch
	if got := ch.Cost(); math.Abs(float64(got-wantUser)) > 1e-9 {
		t.Fatalf("user path cost = %v, want %v", got, wantUser)
	}
	if ch.Class() != sim.OpSS {
		t.Fatalf("class = %v, want SS", ch.Class())
	}
	ch.Abandon()

	kcfg := SamsungSSD
	kcfg.Path = KernelPath
	kernel := New(kcfg)
	ch2 := s.Begin()
	if err := kernel.WriteAt(0, []byte("abc"), ch2); err != nil {
		t.Fatal(err)
	}
	wantKernel := p.IOIssueKernel + p.ContextSwitch
	if got := ch2.Cost(); math.Abs(float64(got-wantKernel)) > 1e-9 {
		t.Fatalf("kernel path cost = %v, want %v", got, wantKernel)
	}
	if float64(wantKernel)/float64(wantUser) < 1.3 {
		t.Fatal("kernel path should be substantially more expensive (paper: ~1/3 path reduction)")
	}
}

func TestFailureInjection(t *testing.T) {
	d := New(SamsungSSD)
	if err := d.WriteAt(0, []byte("abcd"), nil); err != nil {
		t.Fatal(err)
	}
	d.FailNextReads(2)
	for i := 0; i < 2; i++ {
		if _, err := d.ReadAt(0, 4, nil); !errors.Is(err, ErrInjectedRead) {
			t.Fatalf("read %d err = %v, want injected", i, err)
		}
	}
	if _, err := d.ReadAt(0, 4, nil); err != nil {
		t.Fatalf("read after injection window: %v", err)
	}

	d.SetWriteFailureRate(1.0)
	if err := d.WriteAt(0, []byte("x"), nil); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("write err = %v, want injected", err)
	}
	d.SetWriteFailureRate(0)
	if err := d.WriteAt(0, []byte("x"), nil); err != nil {
		t.Fatalf("write after clearing rate: %v", err)
	}
}

func TestClose(t *testing.T) {
	d := New(SamsungSSD)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(0, []byte("x"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("write err = %v, want ErrClosed", err)
	}
	if _, err := d.ReadAt(0, 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("read err = %v, want ErrClosed", err)
	}
}

func TestTrimReleasesChunks(t *testing.T) {
	d := New(SamsungSSD)
	data := make([]byte, chunkSize*4)
	if err := d.WriteAt(0, data, nil); err != nil {
		t.Fatal(err)
	}
	before := d.FootprintBytes()
	d.Trim(0, chunkSize*2)
	after := d.FootprintBytes()
	if after >= before {
		t.Fatalf("footprint %d -> %d, want reduction", before, after)
	}
}

func TestTrimPartialChunkZeroes(t *testing.T) {
	d := New(SamsungSSD)
	if err := d.WriteAt(0, bytes.Repeat([]byte{0xff}, 1024), nil); err != nil {
		t.Fatal(err)
	}
	d.Trim(100, 100)
	got, err := d.ReadAt(0, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got[i] != 0xff {
			t.Fatalf("byte %d clobbered", i)
		}
	}
	for i := 100; i < 200; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d = %x, want zero after trim", i, got[i])
		}
	}
	for i := 200; i < 1024; i++ {
		if got[i] != 0xff {
			t.Fatalf("byte %d clobbered", i)
		}
	}
}

func TestConcurrentIO(t *testing.T) {
	d := New(SamsungSSD)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * 1 << 20
			buf := bytes.Repeat([]byte{byte(w + 1)}, 512)
			for i := 0; i < 50; i++ {
				off := base + int64(i)*512
				if err := d.WriteAt(off, buf, nil); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				got, err := d.ReadAt(off, 512, nil)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if !bytes.Equal(got, buf) {
					t.Errorf("worker %d: corrupt read", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDevicePresetsSane(t *testing.T) {
	for _, cfg := range []Config{SamsungSSD, NextGenSSD, EnterpriseHDD, CommodityHDD, NVRAM} {
		if cfg.MaxIOPS <= 0 || cfg.LatencySec <= 0 || cfg.CostPerByte <= 0 {
			t.Errorf("%s: invalid preset %+v", cfg.Name, cfg)
		}
	}
	if NextGenSSD.MaxIOPS <= SamsungSSD.MaxIOPS {
		t.Error("next-gen SSD should have more IOPS (Section 7.1.2)")
	}
	if EnterpriseHDD.MaxIOPS >= SamsungSSD.MaxIOPS/100 {
		t.Error("HDD IOPS should be orders of magnitude below SSD (Section 8.3)")
	}
}

func TestIOPathString(t *testing.T) {
	if UserLevelPath.String() != "user-level" || KernelPath.String() != "kernel" {
		t.Fatal("IOPath strings wrong")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxIOPS=0 did not panic")
		}
	}()
	New(Config{})
}

// Property: any sequence of non-overlapping writes reads back intact.
func TestRoundTripProperty(t *testing.T) {
	f := func(blobs [][]byte) bool {
		d := New(SamsungSSD)
		off := int64(0)
		type ext struct {
			off  int64
			data []byte
		}
		var exts []ext
		for _, b := range blobs {
			if len(b) == 0 {
				continue
			}
			if err := d.WriteAt(off, b, nil); err != nil {
				return false
			}
			exts = append(exts, ext{off, b})
			off += int64(len(b)) + 37 // gap between extents
		}
		for _, e := range exts {
			got, err := d.ReadAt(e.off, len(e.data), nil)
			if err != nil || !bytes.Equal(got, e.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCapacityEnforcedAndTrimFrees pins the simulated-capacity contract:
// writes that need fresh media beyond CapacityBytes fail with the typed
// ErrNoSpace (a persistent fault — retries cannot help), overwrites of
// already-allocated media always fit, and Trim returns media to the free
// pool so writes succeed again.
func TestCapacityEnforcedAndTrimFrees(t *testing.T) {
	d := New(Config{Name: "tiny", MaxIOPS: 1e6, LatencySec: 1e-6, CapacityBytes: 2 * chunkSize})
	buf := make([]byte, chunkSize)
	// Two chunks fit exactly.
	if err := d.WriteAt(0, buf, nil); err != nil {
		t.Fatalf("chunk 0: %v", err)
	}
	if err := d.WriteAt(chunkSize, buf, nil); err != nil {
		t.Fatalf("chunk 1: %v", err)
	}
	// A third fresh chunk is over capacity.
	err := d.WriteAt(2*chunkSize, buf, nil)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-capacity write = %v, want ErrNoSpace", err)
	}
	if got := d.Stats().FailedWrites.Value(); got != 1 {
		t.Fatalf("FailedWrites = %d, want 1", got)
	}
	// Overwriting allocated media is always in budget.
	if err := d.WriteAt(10, []byte("rewrite"), nil); err != nil {
		t.Fatalf("rewrite within capacity: %v", err)
	}
	// A straddling write that needs one fresh chunk also fails...
	if err := d.WriteAt(2*chunkSize-10, make([]byte, 20), nil); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("straddling write = %v, want ErrNoSpace", err)
	}
	// ...until Trim frees a chunk.
	if err := d.Trim(0, chunkSize); err != nil {
		t.Fatalf("trim: %v", err)
	}
	if err := d.WriteAt(2*chunkSize, buf, nil); err != nil {
		t.Fatalf("write after trim: %v", err)
	}
	if fp := d.FootprintBytes(); fp != 2*chunkSize {
		t.Fatalf("footprint = %d, want %d", fp, 2*chunkSize)
	}
}
