package ssd

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"

	"costperf/internal/metrics"
	"costperf/internal/sim"
)

// Dev is the device surface every disk-backed store in this repository
// programs against: the plain simulated *Device and the self-healing
// *Mirror both satisfy it, so stores pick redundancy at construction time
// without code changes.
type Dev interface {
	Config() Config
	Stats() *metrics.IOStats
	WriteAt(off int64, data []byte, ch *sim.Charger) error
	ReadAt(off int64, length int, ch *sim.Charger) ([]byte, error)
	Trim(off, length int64) error
	BusySeconds() float64
	Latency() float64
	FootprintBytes() int64
	HighWater() int64
	SetFaultInjector(FaultInjector)
	SetObserver(IOObserver)
	Close() error
}

var (
	_ Dev = (*Device)(nil)
	_ Dev = (*Mirror)(nil)
)

// Corruption errors. ErrQuarantined wraps ErrCorrupt, so a single
// errors.Is(err, ssd.ErrCorrupt) classifies both; internal/fault maps them
// to ClassCorrupt (never retried — retrying cannot repair media).
var (
	// ErrCorrupt reports a payload that failed per-page checksum
	// verification with no intact copy available to serve instead.
	ErrCorrupt = errors.New("ssd: page failed checksum verification")
	// ErrQuarantined reports an access to a page disabled after both
	// mirror legs failed verification — the data is lost until the page
	// is fully overwritten or trimmed.
	ErrQuarantined = fmt.Errorf("%w (quarantined: corrupt on both legs)", ErrCorrupt)
)

// MirrorPageSize is the verification granularity of a Mirror: one CRC is
// kept per 4 KiB page, matching the btree page size and the flash mapping
// unit real drives checksum at.
const MirrorPageSize = 4096

// crcTable is the Castagnoli polynomial — hardware-accelerated on the
// platforms the paper measures, and a different polynomial from the IEEE
// CRCs the store formats use, so a mirror checksum can never accidentally
// validate a store-level frame (or vice versa).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

func pageSum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// Mirror is a self-healing pair of Devices behind the Dev surface.
//
// Every write goes to both legs (the honest 2x IOPS and rent tax of
// mirroring); a per-4KiB-page CRC computed from the caller's buffer is
// recorded once either leg has durably accepted the write. Reads are
// served from leg 0, verified page-by-page against the recorded sums, and
// transparently healed: an I/O error fails over to leg 1, a checksum
// mismatch is re-read from leg 1 and the good copy written back
// (read-repair). A background scrubber (StartScrub) walks the checksummed
// page set under a token bucket and repairs latent flips before any
// reader sees them. Pages that fail verification on BOTH legs are
// quarantined: subsequent reads fail with ErrQuarantined, every attached
// Health latches degraded (read-only), and only a full-page overwrite or
// trim clears the entry.
//
// Mirror is safe for concurrent use. Its mutex serializes the
// verify/repair critical sections; the legs keep their own locks and
// atomic meters.
type Mirror struct {
	legs [2]*Device

	mu      sync.Mutex
	sums    map[int64]uint32   // page index -> CRC32-C of the full 4 KiB page
	quar    map[int64]struct{} // pages corrupt on both legs
	healths []*metrics.Health  // latched read-only on quarantine
	closed  bool

	stats  metrics.IOStats    // logical mirror-level I/O (one per caller request)
	mstats metrics.MirrorStats

	scrubMu   sync.Mutex
	scrubStop chan struct{}
	scrubDone chan struct{}
}

// NewMirror returns a mirror over two fresh Devices with the given
// configuration.
func NewMirror(cfg Config) *Mirror {
	return NewMirrorOf(New(cfg), New(cfg))
}

// NewMirrorOf returns a mirror over two existing legs — tests use this to
// install per-leg fault injectors.
func NewMirrorOf(a, b *Device) *Mirror {
	if a == nil || b == nil {
		panic("ssd: nil mirror leg")
	}
	return &Mirror{
		legs: [2]*Device{a, b},
		sums: make(map[int64]uint32),
		quar: make(map[int64]struct{}),
	}
}

// Leg returns one of the underlying devices (0 or 1) so harnesses can
// inject faults into, or inspect, a single leg.
func (m *Mirror) Leg(i int) *Device { return m.legs[i] }

// Config returns leg 0's configuration with the name marked as mirrored.
// Purchase-cost parameters are per leg; the cost model doubles the rent
// explicitly (core.Costs.WithReplication).
func (m *Mirror) Config() Config {
	cfg := m.legs[0].Config()
	cfg.Name += "+mirror"
	return cfg
}

// Stats returns the mirror's logical I/O statistics: one read/write per
// caller request regardless of how many physical leg transfers it took.
// Per-leg physical counters stay on Leg(i).Stats().
func (m *Mirror) Stats() *metrics.IOStats { return &m.stats }

// MirrorStats returns the self-healing counters.
func (m *Mirror) MirrorStats() *metrics.MirrorStats { return &m.mstats }

// AttachHealth registers a health indicator to latch degraded (read-only)
// when a page is quarantined — dual-leg corruption means data loss, and
// the store must stop accepting writes it can no longer protect.
func (m *Mirror) AttachHealth(h *metrics.Health) {
	if h == nil {
		return
	}
	m.mu.Lock()
	m.healths = append(m.healths, h)
	m.mu.Unlock()
}

// QuarantinedPages returns the sorted indexes of quarantined pages.
func (m *Mirror) QuarantinedPages() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, 0, len(m.quar))
	for p := range m.quar {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// quarantineLocked disables a page and degrades every attached health.
func (m *Mirror) quarantineLocked(page int64, reason string) {
	if _, ok := m.quar[page]; !ok {
		m.quar[page] = struct{}{}
		m.mstats.Quarantined.Inc()
	}
	for _, h := range m.healths {
		h.Degrade(reason)
	}
}

// readLegRangeLocked reads [start,end) from one leg, clamping to that
// leg's high-water mark and zero-filling the remainder — the legs can have
// different high-water marks after a torn or failed write, and bytes a leg
// never stored read as zeros (exactly what its media would return).
func (m *Mirror) readLegRangeLocked(leg int, start, end int64, ch *sim.Charger) ([]byte, error) {
	out := make([]byte, end-start)
	hw := m.legs[leg].HighWater()
	if hw > end {
		hw = end
	}
	if hw > start {
		b, err := m.legs[leg].ReadAt(start, int(hw-start), ch)
		if err != nil {
			return nil, err
		}
		copy(out, b)
	}
	return out, nil
}

// readLegPageLocked reads one full page from one leg (clamped/zero-filled
// like readLegRangeLocked).
func (m *Mirror) readLegPageLocked(leg int, page int64, ch *sim.Charger) ([]byte, error) {
	start := page * MirrorPageSize
	return m.readLegRangeLocked(leg, start, start+MirrorPageSize, ch)
}

// preimageLocked returns the current verified contents of one page, for
// the read-modify-write a sub-page write needs before new checksums can be
// computed. Pages with no recorded sum (never written through the mirror,
// or trimmed) are returned unverified — the same trust level a bare
// device offers.
func (m *Mirror) preimageLocked(page int64, ch *sim.Charger) ([]byte, error) {
	sum, verifiable := m.sums[page]
	b0, err0 := m.readLegPageLocked(0, page, ch)
	if err0 == nil && (!verifiable || pageSum(b0) == sum) {
		return b0, nil
	}
	// Leg 0 unreadable or corrupt: try leg 1.
	if err0 != nil {
		m.mstats.Failovers.Inc()
	} else {
		m.legs[0].Stats().ReclassifyRead()
	}
	b1, err1 := m.readLegPageLocked(1, page, ch)
	if err1 == nil && (!verifiable || pageSum(b1) == sum) {
		if err0 == nil {
			// Leg 0 was readable but corrupt: heal it now so the
			// subsequent sub-page write lands on repaired media.
			if m.legs[0].WriteAt(page*MirrorPageSize, b1, nil) == nil {
				m.mstats.ReadRepairs.Inc()
			}
		}
		return b1, nil
	}
	if err0 == nil && err1 == nil {
		// Both legs readable, both corrupt: the page is gone.
		m.quarantineLocked(page, fmt.Sprintf("mirror: page %d corrupt on both legs", page))
		return nil, fmt.Errorf("%w: page %d", ErrQuarantined, page)
	}
	if err1 != nil {
		return nil, err1
	}
	return nil, fmt.Errorf("%w: page %d unverifiable during read-modify-write", ErrCorrupt, page)
}

// WriteAt writes data to both legs as one logical mirror write. The
// caller's charger is charged for both leg I/Os — the doubled CPU, busy
// time, and IOPS are the real price of mirroring and feed the cost model
// unfudged. The write succeeds if either leg accepted it (the stale leg is
// healed lazily by read-repair or the scrubber); it fails only when both
// legs failed, and no checksum is recorded in that case, so recovery
// verifies against the pre-crash page images.
func (m *Mirror) WriteAt(off int64, data []byte, ch *sim.Charger) error {
	if err := ch.Err(); err != nil {
		return err
	}
	if off < 0 {
		return ErrOutOfRange
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if len(data) == 0 {
		if err := m.legs[0].WriteAt(off, data, ch); err != nil {
			return err
		}
		return m.legs[1].WriteAt(off, data, ch)
	}

	first := off / MirrorPageSize
	last := (off + int64(len(data)) - 1) / MirrorPageSize
	start, end := first*MirrorPageSize, (last+1)*MirrorPageSize
	fullyCovers := func(p int64) bool {
		return off <= p*MirrorPageSize && off+int64(len(data)) >= (p+1)*MirrorPageSize
	}
	for p := first; p <= last; p++ {
		if _, q := m.quar[p]; q && !fullyCovers(p) {
			m.stats.FailedWrites.Inc()
			return fmt.Errorf("%w: sub-page write into page %d", ErrQuarantined, p)
		}
	}

	// Assemble the aligned image the new page checksums cover. Only a
	// partial head or tail page needs its pre-image read back (and
	// verified); fully overwritten pages are taken from the caller.
	buf := make([]byte, end-start)
	if off > start {
		pre, err := m.preimageLocked(first, ch)
		if err != nil {
			m.stats.FailedWrites.Inc()
			return err
		}
		copy(buf[:MirrorPageSize], pre)
	}
	// The tail page needs its pre-image whenever the write ends short of a
	// page boundary — including the single-page aligned-start case, which
	// the head branch above does not cover.
	if tail := off + int64(len(data)); tail < end && (last != first || off == start) {
		pre, err := m.preimageLocked(last, ch)
		if err != nil {
			m.stats.FailedWrites.Inc()
			return err
		}
		copy(buf[end-start-MirrorPageSize:], pre)
	}
	copy(buf[off-start:], data)

	newSums := make(map[int64]uint32, last-first+1)
	for p := first; p <= last; p++ {
		o := (p - first) * MirrorPageSize
		newSums[p] = pageSum(buf[o : o+MirrorPageSize])
	}
	install := func() {
		for p, s := range newSums {
			m.sums[p] = s
			if fullyCovers(p) {
				delete(m.quar, p) // fresh data on both... at least one leg
			}
		}
	}

	// Write the legs in order, recording the new checksums as soon as the
	// FIRST leg has durably accepted the data: if leg 1 then tears or
	// crashes, the sums still match leg 0 and verified reads serve it. If
	// leg 0 fails first, the old sums stay and keep matching leg 1's
	// intact old image — either way exactly one consistent (sums, leg)
	// pair survives any single fault.
	err0 := m.legs[0].WriteAt(off, data, ch)
	if err0 == nil {
		install()
	}
	err1 := m.legs[1].WriteAt(off, data, ch)
	if err0 != nil && err1 == nil {
		install()
	}
	if err0 != nil && err1 != nil {
		m.stats.FailedWrites.Inc()
		return err0
	}
	m.stats.Writes.Inc()
	m.stats.BytesWritten.Add(int64(len(data)))
	return nil
}

// ReadAt reads length bytes as one logical mirror read, serving from
// leg 0 and verifying every covered page against its recorded checksum.
// Leg I/O errors fail over to leg 1; checksum mismatches are re-read from
// leg 1, served from the verified copy, and repaired back onto leg 0.
// Only when both legs fail verification does the caller see an error —
// ErrQuarantined, after the page has been disabled and every attached
// Health degraded.
func (m *Mirror) ReadAt(off int64, length int, ch *sim.Charger) ([]byte, error) {
	if err := ch.Err(); err != nil {
		return nil, err
	}
	if off < 0 || length < 0 {
		return nil, ErrOutOfRange
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	hw := m.legs[0].HighWater()
	if h1 := m.legs[1].HighWater(); h1 > hw {
		hw = h1
	}
	if off+int64(length) > hw {
		return nil, fmt.Errorf("%w: read [%d,%d) beyond high-water %d", ErrOutOfRange, off, off+int64(length), hw)
	}
	if length == 0 {
		return []byte{}, nil
	}

	first := off / MirrorPageSize
	last := (off + int64(length) - 1) / MirrorPageSize
	for p := first; p <= last; p++ {
		if _, q := m.quar[p]; q {
			m.stats.FailedReads.Inc()
			return nil, fmt.Errorf("%w: page %d", ErrQuarantined, p)
		}
	}

	start, end := first*MirrorPageSize, (last+1)*MirrorPageSize
	src := 0
	buf, err := m.readLegRangeLocked(0, start, end, ch)
	if err != nil {
		m.mstats.Failovers.Inc()
		src = 1
		buf, err = m.readLegRangeLocked(1, start, end, ch)
		if err != nil {
			m.stats.FailedReads.Inc()
			return nil, err
		}
	}

	for p := first; p <= last; p++ {
		sum, ok := m.sums[p]
		if !ok {
			continue // never written through the mirror (gap or torn tail): unverifiable
		}
		o := (p - first) * MirrorPageSize
		if pageSum(buf[o:o+MirrorPageSize]) == sum {
			continue
		}
		// The serving leg's transfer carried a corrupt payload: it must
		// count as a failed physical read, not a logical one.
		m.legs[src].Stats().ReclassifyRead()
		if src != 0 {
			// Already on the fallback leg (leg 0's I/O failed outright),
			// so there is no second copy to cross-check. Leg 0's media
			// state is unknown — fail typed, but do not quarantine.
			m.stats.FailedReads.Inc()
			return nil, fmt.Errorf("%w: page %d failed verification on fallback leg", ErrCorrupt, p)
		}
		alt, altErr := m.readLegPageLocked(1, p, ch)
		if altErr != nil {
			m.stats.FailedReads.Inc()
			return nil, altErr
		}
		if pageSum(alt) != sum {
			m.legs[1].Stats().ReclassifyRead()
			m.quarantineLocked(p, fmt.Sprintf("mirror: page %d corrupt on both legs", p))
			m.stats.FailedReads.Inc()
			return nil, fmt.Errorf("%w: page %d", ErrQuarantined, p)
		}
		copy(buf[o:o+MirrorPageSize], alt)
		if m.legs[0].WriteAt(p*MirrorPageSize, alt, nil) == nil {
			m.mstats.ReadRepairs.Inc()
		}
	}

	m.mstats.VerifiedReads.Inc()
	m.stats.Reads.Inc()
	m.stats.BytesRead.Add(int64(length))
	return buf[off-start : off-start+int64(length)], nil
}

// Trim forwards to both legs and drops the checksums of every overlapped
// page (the data is dead; it re-verifies from its next write). A
// quarantined page is released only when the trim covers it entirely.
func (m *Mirror) Trim(off, length int64) error {
	if off < 0 || length < 0 {
		return ErrOutOfRange
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if err := m.legs[0].Trim(off, length); err != nil {
		return err
	}
	if err := m.legs[1].Trim(off, length); err != nil {
		return err
	}
	end := off + length
	for p := off / MirrorPageSize; p*MirrorPageSize < end; p++ {
		delete(m.sums, p)
		if off <= p*MirrorPageSize && end >= (p+1)*MirrorPageSize {
			delete(m.quar, p)
		}
	}
	return nil
}

// BusySeconds returns the summed busy time of both legs — mirrored writes
// genuinely occupy two devices.
func (m *Mirror) BusySeconds() float64 {
	return m.legs[0].BusySeconds() + m.legs[1].BusySeconds()
}

// Latency returns the per-I/O latency (both legs share a config).
func (m *Mirror) Latency() float64 { return m.legs[0].Latency() }

// FootprintBytes returns the summed allocated media of both legs — the
// doubled rent the cost model charges for mirroring.
func (m *Mirror) FootprintBytes() int64 {
	return m.legs[0].FootprintBytes() + m.legs[1].FootprintBytes()
}

// HighWater returns the higher of the two legs' high-water marks: a torn
// write that reached only one leg still extends the addressable range,
// exactly as on a bare device.
func (m *Mirror) HighWater() int64 {
	hw := m.legs[0].HighWater()
	if h1 := m.legs[1].HighWater(); h1 > hw {
		hw = h1
	}
	return hw
}

// SetFaultInjector installs the injector on both legs. A shared
// deterministic injector sees the legs' interleaved I/O stream, so an
// injected fault (a flip, a torn write, a crash point) lands on exactly
// one leg's copy of a request — the single-fault scenarios mirroring
// exists to absorb. Use Leg(i).SetFaultInjector for per-leg programs.
func (m *Mirror) SetFaultInjector(fi FaultInjector) {
	m.legs[0].SetFaultInjector(fi)
	m.legs[1].SetFaultInjector(fi)
}

// SetObserver installs the telemetry sink on both legs: obs sees every
// physical attempt, including the mirror's doubled writes and the
// scrubber's verification reads.
func (m *Mirror) SetObserver(o IOObserver) {
	m.legs[0].SetObserver(o)
	m.legs[1].SetObserver(o)
}

// Close stops the scrubber and closes both legs.
func (m *Mirror) Close() error {
	m.StopScrub()
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	err0 := m.legs[0].Close()
	err1 := m.legs[1].Close()
	if err0 != nil {
		return err0
	}
	return err1
}

// ScrubReport summarizes one synchronous scrub pass.
type ScrubReport struct {
	Pages       int // checksummed pages examined
	Repaired    int // pages healed from the intact leg
	Quarantined int // pages found corrupt on both legs
}

// scrubPageList snapshots the checksummed, non-quarantined pages in
// address order.
func (m *Mirror) scrubPageList() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, 0, len(m.sums))
	for p := range m.sums {
		if _, q := m.quar[p]; !q {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// scrubPage verifies one page on both legs and heals or quarantines it.
// The scrubber charges no CPU (nil charger) — it is background work — but
// its reads still consume device busy time and IOPS, which is what the
// token bucket bounds.
func (m *Mirror) scrubPage(page int64) (repaired, quarantined bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, false
	}
	sum, ok := m.sums[page]
	if !ok {
		return false, false
	}
	if _, q := m.quar[page]; q {
		return false, false
	}
	b0, err0 := m.readLegPageLocked(0, page, nil)
	b1, err1 := m.readLegPageLocked(1, page, nil)
	m.mstats.ScrubReads.Add(2)
	ok0 := err0 == nil && pageSum(b0) == sum
	ok1 := err1 == nil && pageSum(b1) == sum
	switch {
	case ok0 && ok1:
	case ok0:
		if err1 == nil {
			m.legs[1].Stats().ReclassifyRead()
		}
		if m.legs[1].WriteAt(page*MirrorPageSize, b0, nil) == nil {
			m.mstats.ScrubRepairs.Inc()
			repaired = true
		}
	case ok1:
		if err0 == nil {
			m.legs[0].Stats().ReclassifyRead()
		}
		if m.legs[0].WriteAt(page*MirrorPageSize, b1, nil) == nil {
			m.mstats.ScrubRepairs.Inc()
			repaired = true
		}
	default:
		if err0 == nil {
			m.legs[0].Stats().ReclassifyRead()
		}
		if err1 == nil {
			m.legs[1].Stats().ReclassifyRead()
		}
		m.quarantineLocked(page, fmt.Sprintf("scrub: page %d corrupt on both legs", page))
		quarantined = true
	}
	return repaired, quarantined
}

// ScrubOnce runs one full synchronous scrub pass with no rate limiting —
// deterministic tests and recovery paths use it to force latent-error
// detection right now.
func (m *Mirror) ScrubOnce() ScrubReport {
	var r ScrubReport
	for _, p := range m.scrubPageList() {
		rep, q := m.scrubPage(p)
		r.Pages++
		if rep {
			r.Repaired++
		}
		if q {
			r.Quarantined++
		}
	}
	m.mstats.ScrubPasses.Inc()
	return r
}

// StartScrub launches the background scrubber at the given budget in
// pages per (wall-clock) second. Each scrubbed page costs one read per
// leg, so the scrubber's device traffic is bounded by 2*pagesPerSec IOPS.
// The token bucket is a ticker: one page per tick, so a long pass can
// never burst past the budget and an idle mirror spends nothing but the
// tick. Calling StartScrub on a running scrubber or with a non-positive
// rate is a no-op.
func (m *Mirror) StartScrub(pagesPerSec float64) {
	if pagesPerSec <= 0 {
		return
	}
	m.scrubMu.Lock()
	defer m.scrubMu.Unlock()
	if m.scrubStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	m.scrubStop, m.scrubDone = stop, done
	interval := time.Duration(float64(time.Second) / pagesPerSec)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	go m.scrubLoop(interval, stop, done)
}

func (m *Mirror) scrubLoop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		pages := m.scrubPageList()
		if len(pages) == 0 {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			continue
		}
		for _, p := range pages {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			m.scrubPage(p)
		}
		m.mstats.ScrubPasses.Inc()
	}
}

// StopScrub stops the background scrubber and waits for it to exit. Safe
// to call when no scrubber is running.
func (m *Mirror) StopScrub() {
	m.scrubMu.Lock()
	stop, done := m.scrubStop, m.scrubDone
	m.scrubStop, m.scrubDone = nil, nil
	m.scrubMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
